// Shared trace/schedule fixtures for the test suites.
//
// These replace the per-file `phased()` / `phased_pair()` / hand-rolled
// random-trace loops that used to be duplicated across the solver tests.
// Everything is deterministic in the caller-supplied seed or generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/machine.hpp"
#include "model/schedule.hpp"
#include "model/trace.hpp"
#include "support/rng.hpp"

namespace hyperrec::testutil {

/// Single-task trace from "0101"-style requirement strings (index 0
/// leftmost); all strings must have equal length = the local universe.
[[nodiscard]] TaskTrace trace_from_strings(
    const std::vector<std::string>& requirements);

/// Multi-task phased workload shorthand over workload::make_multi_phased.
[[nodiscard]] MultiTaskTrace phased_multi(std::uint64_t seed,
                                          std::size_t tasks, std::size_t steps,
                                          std::size_t universe,
                                          std::size_t phases = 3);

/// The canonical tiny fixture of the DP tests: task 0 phases
/// {s0,s1} → {s2,s3}, task 1 constant {s0}; 2 tasks × 4 steps, universe 4.
[[nodiscard]] MultiTaskTrace phased_pair();

/// One i.i.d. random requirement: each switch requested with `density`.
[[nodiscard]] DynamicBitset random_requirement(Xoshiro256& rng,
                                               std::size_t universe,
                                               double density = 0.35);

/// Single-task trace of `steps` i.i.d. random requirements.
[[nodiscard]] TaskTrace random_task_trace(Xoshiro256& rng, std::size_t steps,
                                          std::size_t universe,
                                          double density = 0.35);

/// Synchronized multi-task trace of i.i.d. random requirements.
[[nodiscard]] MultiTaskTrace random_multi_trace(Xoshiro256& rng,
                                                std::size_t tasks,
                                                std::size_t steps,
                                                std::size_t universe,
                                                double density = 0.4);

/// Random valid schedule for a synchronized trace: every task gets boundary
/// 0 plus later boundaries with `boundary_probability`; machines with global
/// resources get the mandatory global boundary at step 0.
[[nodiscard]] MultiTaskSchedule random_schedule(
    Xoshiro256& rng, const MultiTaskTrace& trace, const MachineSpec& machine,
    double boundary_probability = 0.25);

}  // namespace hyperrec::testutil
