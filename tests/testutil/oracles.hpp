// Brute-force reference oracles shared by the solver tests.
//
// These enumerate entire schedule spaces (exponential, tiny instances only)
// and evaluate them with the library evaluators, providing ground truth for
// the DP/heuristic solvers.  Formerly duplicated across tests/core/*.cpp and
// tests/core/brute_force.hpp; now a single compiled library.
#pragma once

#include <cstdint>
#include <vector>

#include "model/cost_general.hpp"
#include "model/cost_switch.hpp"
#include "model/machine.hpp"
#include "model/schedule.hpp"
#include "model/trace.hpp"

namespace hyperrec::testutil {

/// Minimum cost over all single-task partitions (2^{n-1} of them) under
/// interval cost v + (|U| + maxpriv)·len.
[[nodiscard]] Cost brute_force_single_task(const TaskTrace& trace, Cost v);

/// Minimum single-task changeover cost (§4.1 end): each boundary charges
/// v + |h_k Δ h_{k-1}| with minimal hypercontexts, first diff against ∅.
[[nodiscard]] Cost brute_force_changeover(const TaskTrace& trace, Cost v);

/// Minimum §4.2 cost over all per-task boundary combinations.
[[nodiscard]] Cost brute_force_multi_task(const MultiTaskTrace& trace,
                                          const MachineSpec& machine,
                                          const EvalOptions& options);

/// Minimum §4.2 cost over aligned (identical across tasks) partitions only.
[[nodiscard]] Cost brute_force_aligned(const MultiTaskTrace& trace,
                                       const MachineSpec& machine,
                                       const EvalOptions& options);

/// Minimum §4.1 asynchronous cost over the full product of per-task
/// partitions (the solver decomposes per task; this validates the argument).
[[nodiscard]] Cost brute_force_async(const MultiTaskTrace& trace,
                                     const MachineSpec& machine,
                                     const EvalOptions& options);

/// Minimum general-model cost over all partitions × all feasible
/// hypercontext choices per interval.
[[nodiscard]] Cost brute_force_general(const GeneralCostModel& model,
                                       const std::vector<std::size_t>& sequence);

}  // namespace hyperrec::testutil
