// Seeded multi-task instances drawn from every workload generator family.
//
// The engine suites (portfolio races, batch sharding, deadline contracts)
// all need "one instance per generator kind, deterministic in the seed";
// this helper builds them so the five families stay in sync across tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/machine.hpp"
#include "model/trace.hpp"

namespace hyperrec::testutil {

struct WorkloadInstance {
  std::string name;  ///< generator family: phased, random, ...
  MultiTaskTrace trace;
  MachineSpec machine;  ///< local-only, l_j = trace universe
};

/// One instance per generator family (workload::family_names(), built via
/// workload::make_family), each with `tasks` tasks of ~`steps` steps over
/// `universe` switches.  Deterministic in `seed`.  The periodic family
/// rounds `steps` up to a whole number of periods.
[[nodiscard]] std::vector<WorkloadInstance> seeded_workload_instances(
    std::size_t tasks, std::size_t steps, std::size_t universe,
    std::uint64_t seed);

}  // namespace hyperrec::testutil
