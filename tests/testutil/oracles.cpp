#include "testutil/oracles.hpp"

#include <algorithm>
#include <limits>

namespace hyperrec::testutil {

Cost brute_force_single_task(const TaskTrace& trace, Cost v) {
  const std::size_t n = trace.size();
  Cost best = std::numeric_limits<Cost>::max();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << (n - 1)); ++mask) {
    std::vector<std::size_t> starts{0};
    for (std::size_t s = 1; s < n; ++s) {
      if ((mask >> (s - 1)) & 1u) starts.push_back(s);
    }
    starts.push_back(n);
    Cost total = 0;
    for (std::size_t k = 0; k + 1 < starts.size(); ++k) {
      const std::size_t lo = starts[k];
      const std::size_t hi = starts[k + 1];
      const Cost size = static_cast<Cost>(trace.local_union_naive(lo, hi).count()) +
                        static_cast<Cost>(trace.max_private_demand_naive(lo, hi));
      total += v + size * static_cast<Cost>(hi - lo);
    }
    best = std::min(best, total);
  }
  return best;
}

Cost brute_force_changeover(const TaskTrace& trace, Cost v) {
  const std::size_t n = trace.size();
  Cost best = std::numeric_limits<Cost>::max();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << (n - 1)); ++mask) {
    std::vector<std::size_t> starts{0};
    for (std::size_t s = 1; s < n; ++s) {
      if ((mask >> (s - 1)) & 1u) starts.push_back(s);
    }
    starts.push_back(n);
    Cost total = 0;
    DynamicBitset previous(trace.local_universe());
    for (std::size_t k = 0; k + 1 < starts.size(); ++k) {
      const DynamicBitset current = trace.local_union_naive(starts[k], starts[k + 1]);
      total += v +
               static_cast<Cost>(current.symmetric_difference_count(previous)) +
               static_cast<Cost>(current.count()) *
                   static_cast<Cost>(starts[k + 1] - starts[k]);
      previous = current;
    }
    best = std::min(best, total);
  }
  return best;
}

Cost brute_force_multi_task(const MultiTaskTrace& trace,
                            const MachineSpec& machine,
                            const EvalOptions& options) {
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  Cost best = std::numeric_limits<Cost>::max();
  const std::uint64_t limit = std::uint64_t{1} << (m * (n - 1));
  for (std::uint64_t code = 0; code < limit; ++code) {
    MultiTaskSchedule schedule;
    for (std::size_t j = 0; j < m; ++j) {
      DynamicBitset mask(n);
      mask.set(0);
      for (std::size_t s = 1; s < n; ++s) {
        if ((code >> (j * (n - 1) + (s - 1))) & 1u) mask.set(s);
      }
      schedule.tasks.push_back(Partition::from_boundary_mask(mask));
    }
    if (machine.has_global_resources()) {
      schedule.global_boundaries.push_back(0);
    }
    best = std::min(
        best,
        evaluate_fully_sync_switch(trace, machine, schedule, options).total);
  }
  return best;
}

Cost brute_force_aligned(const MultiTaskTrace& trace,
                         const MachineSpec& machine,
                         const EvalOptions& options) {
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  Cost best = std::numeric_limits<Cost>::max();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << (n - 1)); ++mask) {
    DynamicBitset bits(n);
    bits.set(0);
    for (std::size_t s = 1; s < n; ++s) {
      if ((mask >> (s - 1)) & 1u) bits.set(s);
    }
    MultiTaskSchedule schedule;
    schedule.tasks.assign(m, Partition::from_boundary_mask(bits));
    if (machine.has_global_resources()) {
      schedule.global_boundaries.push_back(0);
    }
    best = std::min(
        best,
        evaluate_fully_sync_switch(trace, machine, schedule, options).total);
  }
  return best;
}

Cost brute_force_async(const MultiTaskTrace& trace, const MachineSpec& machine,
                       const EvalOptions& options) {
  const std::size_t m = trace.task_count();
  Cost best = std::numeric_limits<Cost>::max();
  std::vector<std::uint64_t> masks(m, 0);

  std::vector<std::uint64_t> limits(m);
  for (std::size_t j = 0; j < m; ++j) {
    limits[j] = std::uint64_t{1} << (trace.task(j).size() - 1);
  }
  for (;;) {
    MultiTaskSchedule schedule;
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t n = trace.task(j).size();
      DynamicBitset bits(n);
      bits.set(0);
      for (std::size_t s = 1; s < n; ++s) {
        if ((masks[j] >> (s - 1)) & 1u) bits.set(s);
      }
      schedule.tasks.push_back(Partition::from_boundary_mask(bits));
    }
    best = std::min(
        best, evaluate_async_switch(trace, machine, schedule, options).total);

    std::size_t j = 0;
    while (j < m && ++masks[j] == limits[j]) {
      masks[j] = 0;
      ++j;
    }
    if (j == m) break;
  }
  return best;
}

Cost brute_force_general(const GeneralCostModel& model,
                         const std::vector<std::size_t>& sequence) {
  const std::size_t n = sequence.size();
  Cost best = std::numeric_limits<Cost>::max();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << (n - 1)); ++mask) {
    std::vector<std::size_t> starts{0};
    for (std::size_t s = 1; s < n; ++s) {
      if ((mask >> (s - 1)) & 1u) starts.push_back(s);
    }
    starts.push_back(n);
    Cost total = 0;
    bool feasible = true;
    for (std::size_t k = 0; k + 1 < starts.size() && feasible; ++k) {
      DynamicBitset needed(model.kind_count());
      for (std::size_t i = starts[k]; i < starts[k + 1]; ++i) {
        needed.set(sequence[i]);
      }
      Cost interval_best = std::numeric_limits<Cost>::max();
      for (std::size_t h = 0; h < model.hypercontext_count(); ++h) {
        if (!model.satisfies_all(h, needed)) continue;
        interval_best = std::min(
            interval_best,
            model.init(h) + model.cost(h) * static_cast<Cost>(starts[k + 1] -
                                                              starts[k]));
      }
      if (interval_best == std::numeric_limits<Cost>::max()) {
        feasible = false;
      } else {
        total += interval_best;
      }
    }
    if (feasible) best = std::min(best, total);
  }
  return best;
}

}  // namespace hyperrec::testutil
