#include "testutil/trace_builders.hpp"

#include "support/ensure.hpp"
#include "workload/generators.hpp"

namespace hyperrec::testutil {

TaskTrace trace_from_strings(const std::vector<std::string>& requirements) {
  const std::size_t universe =
      requirements.empty() ? 0 : requirements.front().size();
  TaskTrace trace(universe);
  for (const auto& bits : requirements) {
    HYPERREC_ENSURE(bits.size() == universe,
                    "requirement strings must share one universe");
    trace.push_back_local(DynamicBitset::from_string(bits));
  }
  return trace;
}

MultiTaskTrace phased_multi(std::uint64_t seed, std::size_t tasks,
                            std::size_t steps, std::size_t universe,
                            std::size_t phases) {
  workload::MultiPhasedConfig config;
  config.tasks = tasks;
  config.task_config.steps = steps;
  config.task_config.universe = universe;
  config.task_config.phases = phases;
  return workload::make_multi_phased(config, seed);
}

MultiTaskTrace phased_pair() {
  return MultiTaskTrace::from_local(
      {4, 4},
      {{DynamicBitset::from_string("1100"), DynamicBitset::from_string("1100"),
        DynamicBitset::from_string("0011"), DynamicBitset::from_string("0011")},
       {DynamicBitset::from_string("1000"), DynamicBitset::from_string("1000"),
        DynamicBitset::from_string("1000"),
        DynamicBitset::from_string("1000")}});
}

DynamicBitset random_requirement(Xoshiro256& rng, std::size_t universe,
                                 double density) {
  DynamicBitset req(universe);
  for (std::size_t s = 0; s < universe; ++s) {
    if (rng.flip(density)) req.set(s);
  }
  return req;
}

TaskTrace random_task_trace(Xoshiro256& rng, std::size_t steps,
                            std::size_t universe, double density) {
  TaskTrace trace(universe);
  for (std::size_t i = 0; i < steps; ++i) {
    trace.push_back_local(random_requirement(rng, universe, density));
  }
  return trace;
}

MultiTaskTrace random_multi_trace(Xoshiro256& rng, std::size_t tasks,
                                  std::size_t steps, std::size_t universe,
                                  double density) {
  MultiTaskTrace trace;
  for (std::size_t j = 0; j < tasks; ++j) {
    trace.add_task(random_task_trace(rng, steps, universe, density));
  }
  return trace;
}

MultiTaskSchedule random_schedule(Xoshiro256& rng, const MultiTaskTrace& trace,
                                  const MachineSpec& machine,
                                  double boundary_probability) {
  const std::size_t n = trace.steps();
  MultiTaskSchedule schedule;
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    DynamicBitset mask(n);
    mask.set(0);
    for (std::size_t s = 1; s < n; ++s) {
      if (rng.flip(boundary_probability)) mask.set(s);
    }
    schedule.tasks.push_back(Partition::from_boundary_mask(mask));
  }
  if (machine.has_global_resources()) {
    schedule.global_boundaries.push_back(0);
  }
  return schedule;
}

}  // namespace hyperrec::testutil
