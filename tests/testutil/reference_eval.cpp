#include "testutil/reference_eval.hpp"

#include <algorithm>

namespace hyperrec::testutil {

Cost reference_fully_sync(const MultiTaskTrace& trace,
                          const MachineSpec& machine,
                          const MultiTaskSchedule& schedule,
                          const EvalOptions& options) {
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  auto combine = [](UploadMode mode, Cost a, Cost b) {
    return mode == UploadMode::kTaskParallel ? std::max(a, b) : a + b;
  };

  Cost total = 0;
  for (std::size_t l = 0; l < n; ++l) {
    Cost hyper = 0;
    Cost reconfig = static_cast<Cost>(machine.public_context_size);
    for (std::size_t j = 0; j < m; ++j) {
      const Partition& partition = schedule.tasks[j];
      const std::size_t k = partition.interval_of(l);
      const auto [lo, hi] = partition.interval_bounds(k);
      const DynamicBitset h = trace.task(j).local_union_naive(lo, hi);
      const std::uint32_t priv = trace.task(j).max_private_demand_naive(lo, hi);

      if (partition.is_boundary(l)) {
        Cost v = machine.tasks[j].local_init;
        if (options.changeover) {
          if (k == 0) {
            v += static_cast<Cost>(h.count());
          } else {
            const auto [plo, phi] = partition.interval_bounds(k - 1);
            const DynamicBitset prev = trace.task(j).local_union_naive(plo, phi);
            v += static_cast<Cost>(h.symmetric_difference_count(prev));
          }
        }
        hyper = combine(options.hyper_upload, hyper, v);
      }
      reconfig = combine(options.reconfig_upload, reconfig,
                         static_cast<Cost>(h.count()) +
                             static_cast<Cost>(priv));
    }
    total += hyper + reconfig;
    for (const std::size_t g : schedule.global_boundaries) {
      if (g == l) total += machine.global_init;
    }
  }
  return total;
}

CostBreakdown reference_fully_sync_breakdown(const MultiTaskTrace& trace,
                                             const MachineSpec& machine,
                                             const MultiTaskSchedule& schedule,
                                             const EvalOptions& options) {
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  auto combine = [](UploadMode mode, Cost a, Cost b) {
    return mode == UploadMode::kTaskParallel ? std::max(a, b) : a + b;
  };

  CostBreakdown breakdown;
  breakdown.per_step.resize(n);
  for (std::size_t l = 0; l < n; ++l) {
    bool any_boundary = false;
    Cost hyper = 0;
    Cost reconfig = static_cast<Cost>(machine.public_context_size);
    for (std::size_t j = 0; j < m; ++j) {
      const Partition& partition = schedule.tasks[j];
      const std::size_t k = partition.interval_of(l);
      const auto [lo, hi] = partition.interval_bounds(k);
      const DynamicBitset h = trace.task(j).local_union_naive(lo, hi);
      const std::uint32_t priv = trace.task(j).max_private_demand_naive(lo, hi);

      if (partition.is_boundary(l)) {
        any_boundary = true;
        Cost v = machine.tasks[j].local_init;
        if (options.changeover) {
          if (k == 0) {
            v += static_cast<Cost>(h.count());
          } else {
            const auto [plo, phi] = partition.interval_bounds(k - 1);
            const DynamicBitset prev =
                trace.task(j).local_union_naive(plo, phi);
            v += static_cast<Cost>(h.symmetric_difference_count(prev));
          }
        }
        hyper = combine(options.hyper_upload, hyper, v);
      }
      reconfig = combine(options.reconfig_upload, reconfig,
                         static_cast<Cost>(h.count()) +
                             static_cast<Cost>(priv));
    }
    if (any_boundary) ++breakdown.partial_hyper_steps;
    breakdown.per_step[l] = StepCost{hyper, reconfig};
    breakdown.hyper += hyper;
    breakdown.reconfig += reconfig;
    for (const std::size_t g : schedule.global_boundaries) {
      if (g == l) breakdown.global_hyper += machine.global_init;
    }
  }
  breakdown.total =
      breakdown.hyper + breakdown.reconfig + breakdown.global_hyper;
  return breakdown;
}

}  // namespace hyperrec::testutil
