// Independent, deliberately naive re-implementation of the §4.2 evaluator.
//
// The production evaluator walks the steps with interval cursors; this
// reference recomputes everything from first principles per step: find each
// task's interval by searching the partition, re-union the requirements to
// get the minimal hypercontext, and combine.  Differential tests compare the
// two on random (trace, schedule, options) triples — any divergence is a bug
// in one of them.
#pragma once

#include "model/cost_switch.hpp"
#include "model/machine.hpp"
#include "model/schedule.hpp"
#include "model/trace.hpp"

namespace hyperrec::testutil {

[[nodiscard]] Cost reference_fully_sync(const MultiTaskTrace& trace,
                                        const MachineSpec& machine,
                                        const MultiTaskSchedule& schedule,
                                        const EvalOptions& options);

/// Full CostBreakdown via the naive linear-rescan oracles
/// (local_union_naive / max_private_demand_naive) — the pre-SolveInstance
/// evaluator, kept verbatim so the stats-backed production evaluator can be
/// checked for bit-identical breakdowns, not just equal totals.
[[nodiscard]] CostBreakdown reference_fully_sync_breakdown(
    const MultiTaskTrace& trace, const MachineSpec& machine,
    const MultiTaskSchedule& schedule, const EvalOptions& options);

}  // namespace hyperrec::testutil
