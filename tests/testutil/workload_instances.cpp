#include "testutil/workload_instances.hpp"

#include "workload/generators.hpp"

namespace hyperrec::testutil {

std::vector<WorkloadInstance> seeded_workload_instances(std::size_t tasks,
                                                        std::size_t steps,
                                                        std::size_t universe,
                                                        std::uint64_t seed) {
  std::vector<WorkloadInstance> instances;
  Xoshiro256 root(seed);
  std::uint64_t family_index = 0;
  for (const std::string& kind : workload::family_names()) {
    WorkloadInstance instance;
    instance.name = kind;
    Xoshiro256 family_rng = root.split(family_index++);
    instance.trace =
        workload::make_multi_family(kind, tasks, steps, universe, family_rng);
    instance.machine =
        MachineSpec::local_only(std::vector<std::size_t>(tasks, universe));
    instances.push_back(std::move(instance));
  }
  return instances;
}

}  // namespace hyperrec::testutil
