#include "model/cost_dag.hpp"

#include <gtest/gtest.h>

namespace hyperrec {
namespace {

/// Chain h0 → h1 → h2 over kinds {k0, k1}:
///   h0: {k0} cost 1;  h1: {k0,k1} cost 3;  h2: {k0,k1} cost 5.  w = 4.
DagCostModel chain_model() {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset::from_string("10"));
  sat.push_back(DynamicBitset::from_string("11"));
  sat.push_back(DynamicBitset::from_string("11"));
  return DagCostModel(std::move(dag), std::move(sat), {1, 3, 5}, 4);
}

TEST(DagCostModel, ValidatesMonotoneChain) {
  EXPECT_NO_THROW(chain_model().validate());
}

TEST(DagCostModel, RejectsCapabilityViolation) {
  Dag dag(2);
  dag.add_edge(0, 1);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset::from_string("11"));
  sat.push_back(DynamicBitset::from_string("10"));  // shrinks along edge
  DagCostModel model(std::move(dag), std::move(sat), {1, 2}, 1);
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(DagCostModel, RejectsCostViolation) {
  Dag dag(2);
  dag.add_edge(0, 1);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset::from_string("10"));
  sat.push_back(DynamicBitset::from_string("11"));
  DagCostModel model(std::move(dag), std::move(sat), {5, 2}, 1);  // cost drops
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(DagCostModel, RejectsMissingUniversalHypercontext) {
  Dag dag(1);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset::from_string("10"));
  DagCostModel model(std::move(dag), std::move(sat), {1}, 1);
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(DagCostModel, RejectsNonPositiveCost) {
  Dag dag(1);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset::from_string("11"));
  DagCostModel model(std::move(dag), std::move(sat), {0}, 1);
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(DagCostModel, MinimalSatisfiersOnChain) {
  const auto model = chain_model();
  const auto for_k0 = model.minimal_satisfiers(0);
  ASSERT_EQ(for_k0.size(), 1u);
  EXPECT_EQ(for_k0[0], 0u) << "h0 is the minimal satisfier of k0";
  const auto for_k1 = model.minimal_satisfiers(1);
  ASSERT_EQ(for_k1.size(), 1u);
  EXPECT_EQ(for_k1[0], 1u) << "h1 precedes h2";
}

TEST(DagCostModel, MinimalSatisfiersOnAntichain) {
  Dag dag(3);
  dag.add_edge(0, 2);
  dag.add_edge(1, 2);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset::from_string("10"));
  sat.push_back(DynamicBitset::from_string("10"));
  sat.push_back(DynamicBitset::from_string("11"));
  DagCostModel model(std::move(dag), std::move(sat), {1, 1, 3}, 1);
  EXPECT_EQ(model.minimal_satisfiers(0).size(), 2u)
      << "both branch roots satisfy k0 and are incomparable";
}

TEST(DagCostModel, CheapestSatisfying) {
  const auto model = chain_model();
  DynamicBitset k0(2);
  k0.set(0);
  EXPECT_EQ(model.cheapest_satisfying(k0), 0u);
  DynamicBitset both(2);
  both.set(0).set(1);
  EXPECT_EQ(model.cheapest_satisfying(both), 1u) << "h1 cheaper than h2";
}

TEST(DagCostModel, CheapestSatisfyingNoneReturnsSentinel) {
  Dag dag(1);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset::from_string("10"));
  DagCostModel model(std::move(dag), std::move(sat), {1}, 1);
  DynamicBitset k1(2);
  k1.set(1);
  EXPECT_EQ(model.cheapest_satisfying(k1), 1u) << "== hypercontext_count()";
}

TEST(EvaluateDagModel, HandComputedTwoIntervals) {
  const auto model = chain_model();
  const std::vector<std::size_t> sequence{0, 0, 1};
  const DagSchedule schedule{{0, 2}, {0, 1}};
  // (w + cost(h0)·2) + (w + cost(h1)·1) = (4+2) + (4+3) = 13.
  EXPECT_EQ(evaluate_dag_model(model, sequence, schedule), 13);
}

TEST(EvaluateDagModel, UnsatisfiedRequirementThrows) {
  const auto model = chain_model();
  const std::vector<std::size_t> sequence{1};
  const DagSchedule schedule{{0}, {0}};  // h0 lacks k1
  EXPECT_THROW((void)evaluate_dag_model(model, sequence, schedule),
               PreconditionError);
}

TEST(DagCostModel, SizeMismatchRejectedAtConstruction) {
  Dag dag(2);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset(1));
  EXPECT_THROW(DagCostModel(std::move(dag), std::move(sat), {1, 2}, 1),
               PreconditionError);
}

}  // namespace
}  // namespace hyperrec
