#include "model/cost_general.hpp"

#include <gtest/gtest.h>

namespace hyperrec {
namespace {

/// Three hypercontexts over two requirement kinds:
///   h0 satisfies {k0},      init 5, cost 1
///   h1 satisfies {k1},      init 5, cost 2
///   h2 satisfies {k0, k1},  init 8, cost 4  (universal)
GeneralCostModel sample_model() {
  GeneralCostModel model(3, 2);
  model.set_init(0, 5);
  model.set_cost(0, 1);
  model.set_satisfies(0, 0);
  model.set_init(1, 5);
  model.set_cost(1, 2);
  model.set_satisfies(1, 1);
  model.set_init(2, 8);
  model.set_cost(2, 4);
  model.set_satisfies(2, 0);
  model.set_satisfies(2, 1);
  return model;
}

TEST(GeneralCostModel, AccessorsRoundTrip) {
  const auto model = sample_model();
  EXPECT_EQ(model.hypercontext_count(), 3u);
  EXPECT_EQ(model.kind_count(), 2u);
  EXPECT_EQ(model.init(2), 8);
  EXPECT_EQ(model.cost(1), 2);
  EXPECT_TRUE(model.satisfies(0, 0));
  EXPECT_FALSE(model.satisfies(0, 1));
}

TEST(GeneralCostModel, SatisfiesAllUsesSubset) {
  const auto model = sample_model();
  DynamicBitset both(2);
  both.set(0).set(1);
  EXPECT_FALSE(model.satisfies_all(0, both));
  EXPECT_TRUE(model.satisfies_all(2, both));
  DynamicBitset none(2);
  EXPECT_TRUE(model.satisfies_all(0, none));
}

TEST(GeneralCostModel, UniversalHypercontextCheck) {
  const auto model = sample_model();
  EXPECT_NO_THROW(model.require_universal_hypercontext());

  GeneralCostModel partial(1, 2);
  partial.set_satisfies(0, 0);
  EXPECT_THROW(partial.require_universal_hypercontext(), PreconditionError);
}

TEST(GeneralCostModel, OutOfRangeAccessThrows) {
  auto model = sample_model();
  EXPECT_THROW(model.set_init(3, 1), PreconditionError);
  EXPECT_THROW((void)model.cost(3), PreconditionError);
  EXPECT_THROW(model.set_satisfies(0, 2), PreconditionError);
}

TEST(EvaluateGeneral, HandComputedTwoIntervals) {
  const auto model = sample_model();
  const std::vector<std::size_t> sequence{0, 0, 1, 1, 1};
  const GeneralSchedule schedule{{0, 2}, {0, 1}};
  // init(h0) + cost(h0)·2 + init(h1) + cost(h1)·3 = 5+2 + 5+6 = 18.
  EXPECT_EQ(evaluate_general(model, sequence, schedule), 18);
}

TEST(EvaluateGeneral, UniversalHypercontextCoversMixedInterval) {
  const auto model = sample_model();
  const std::vector<std::size_t> sequence{0, 1, 0};
  const GeneralSchedule schedule{{0}, {2}};
  EXPECT_EQ(evaluate_general(model, sequence, schedule), 8 + 4 * 3);
}

TEST(EvaluateGeneral, UnsatisfiedIntervalThrows) {
  const auto model = sample_model();
  const std::vector<std::size_t> sequence{0, 1};
  const GeneralSchedule schedule{{0}, {0}};  // h0 cannot satisfy kind 1
  EXPECT_THROW((void)evaluate_general(model, sequence, schedule),
               PreconditionError);
}

TEST(EvaluateGeneral, MalformedScheduleThrows) {
  const auto model = sample_model();
  const std::vector<std::size_t> sequence{0, 1};
  EXPECT_THROW((void)evaluate_general(model, sequence, GeneralSchedule{{1}, {2}}),
               PreconditionError)
      << "first interval must start at 0";
  EXPECT_THROW((void)evaluate_general(model, sequence, GeneralSchedule{{0}, {}}),
               PreconditionError)
      << "one hypercontext per interval";
  EXPECT_THROW((void)evaluate_general(model, {}, GeneralSchedule{{0}, {2}}),
               PreconditionError)
      << "empty sequence";
}

}  // namespace
}  // namespace hyperrec
