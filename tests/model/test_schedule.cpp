#include "model/schedule.hpp"

#include <gtest/gtest.h>

namespace hyperrec {
namespace {

TEST(Partition, SingleCoversWholeRange) {
  const Partition partition = Partition::single(7);
  EXPECT_EQ(partition.n(), 7u);
  EXPECT_EQ(partition.interval_count(), 1u);
  EXPECT_EQ(partition.interval_bounds(0), (std::pair<std::size_t,
                                           std::size_t>{0, 7}));
}

TEST(Partition, EveryStepHasNIntervals) {
  const Partition partition = Partition::every_step(4);
  EXPECT_EQ(partition.interval_count(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(partition.interval_bounds(k),
              (std::pair<std::size_t, std::size_t>{k, k + 1}));
  }
}

TEST(Partition, FromStartsValidCase) {
  const Partition partition = Partition::from_starts({0, 3, 5}, 8);
  EXPECT_EQ(partition.interval_count(), 3u);
  EXPECT_EQ(partition.interval_bounds(1),
            (std::pair<std::size_t, std::size_t>{3, 5}));
  EXPECT_EQ(partition.interval_bounds(2),
            (std::pair<std::size_t, std::size_t>{5, 8}));
}

TEST(Partition, FromStartsRejectsMissingZero) {
  EXPECT_THROW(Partition::from_starts({1, 3}, 5), PreconditionError);
  EXPECT_THROW(Partition::from_starts({}, 5), PreconditionError);
}

TEST(Partition, FromStartsRejectsNonIncreasing) {
  EXPECT_THROW(Partition::from_starts({0, 3, 3}, 5), PreconditionError);
  EXPECT_THROW(Partition::from_starts({0, 4, 2}, 5), PreconditionError);
}

TEST(Partition, FromStartsRejectsStartBeyondRange) {
  EXPECT_THROW(Partition::from_starts({0, 5}, 5), PreconditionError);
}

TEST(Partition, EmptyRangeRejected) {
  EXPECT_THROW(Partition::single(0), PreconditionError);
  EXPECT_THROW(Partition::every_step(0), PreconditionError);
}

TEST(Partition, IntervalOfFindsContainingInterval) {
  const Partition partition = Partition::from_starts({0, 3, 5}, 8);
  EXPECT_EQ(partition.interval_of(0), 0u);
  EXPECT_EQ(partition.interval_of(2), 0u);
  EXPECT_EQ(partition.interval_of(3), 1u);
  EXPECT_EQ(partition.interval_of(4), 1u);
  EXPECT_EQ(partition.interval_of(7), 2u);
  EXPECT_THROW((void)partition.interval_of(8), PreconditionError);
}

TEST(Partition, IsBoundary) {
  const Partition partition = Partition::from_starts({0, 3, 5}, 8);
  EXPECT_TRUE(partition.is_boundary(0));
  EXPECT_TRUE(partition.is_boundary(3));
  EXPECT_TRUE(partition.is_boundary(5));
  EXPECT_FALSE(partition.is_boundary(4));
  EXPECT_THROW((void)partition.is_boundary(8), PreconditionError);
}

TEST(Partition, BoundaryMaskRoundTrip) {
  const Partition partition = Partition::from_starts({0, 2, 6}, 9);
  const DynamicBitset mask = partition.to_boundary_mask();
  EXPECT_EQ(mask.to_string(), "101000100");
  const Partition rebuilt = Partition::from_boundary_mask(mask);
  EXPECT_EQ(rebuilt.starts(), partition.starts());
}

TEST(Partition, FromBoundaryMaskForcesStepZero) {
  DynamicBitset mask(5);
  mask.set(2);  // bit 0 unset on purpose
  const Partition partition = Partition::from_boundary_mask(mask);
  EXPECT_EQ(partition.starts(), (std::vector<std::size_t>{0, 2}));
}

TEST(MultiTaskSchedule, FactoryShapes) {
  const auto single = MultiTaskSchedule::all_single(3, 5);
  EXPECT_EQ(single.tasks.size(), 3u);
  EXPECT_EQ(single.partial_hyper_steps(), 1u);

  const auto every = MultiTaskSchedule::all_every_step(2, 5);
  EXPECT_EQ(every.partial_hyper_steps(), 5u);
}

TEST(MultiTaskSchedule, PartialHyperStepsCountsUnion) {
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(Partition::from_starts({0, 2}, 6));
  schedule.tasks.push_back(Partition::from_starts({0, 4}, 6));
  EXPECT_EQ(schedule.partial_hyper_steps(), 3u) << "steps 0, 2 and 4";
}

TEST(MultiTaskSchedule, ValidateChecksShape) {
  auto schedule = MultiTaskSchedule::all_single(2, 5);
  EXPECT_NO_THROW(schedule.validate(2, 5));
  EXPECT_THROW(schedule.validate(3, 5), PreconditionError);
  EXPECT_THROW(schedule.validate(2, 6), PreconditionError);
}

TEST(MultiTaskSchedule, GlobalBoundaryNeedsLocalBoundaryEverywhere) {
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(Partition::from_starts({0, 2}, 6));
  schedule.tasks.push_back(Partition::from_starts({0, 3}, 6));
  schedule.global_boundaries = {2};
  EXPECT_THROW(schedule.validate(2, 6), PreconditionError)
      << "task 1 has no boundary at step 2";

  schedule.tasks[1] = Partition::from_starts({0, 2, 3}, 6);
  EXPECT_NO_THROW(schedule.validate(2, 6));
}

TEST(MultiTaskSchedule, GlobalBoundaryBeyondRangeRejected) {
  auto schedule = MultiTaskSchedule::all_single(1, 4);
  schedule.global_boundaries = {4};
  EXPECT_THROW(schedule.validate(1, 4), PreconditionError);
}

TEST(MultiTaskSchedule, GlobalBoundariesMustBeStrictlyIncreasing) {
  // The evaluators binary-search this vector; unsorted or duplicated lists
  // must fail validation instead of silently mis-counting global
  // hyperreconfigurations.
  auto schedule = MultiTaskSchedule::all_every_step(1, 4);
  schedule.global_boundaries = {2, 0};
  EXPECT_THROW(schedule.validate(1, 4), PreconditionError);
  schedule.global_boundaries = {0, 0};
  EXPECT_THROW(schedule.validate(1, 4), PreconditionError);
  schedule.global_boundaries = {0, 2};
  EXPECT_NO_THROW(schedule.validate(1, 4));
}

}  // namespace
}  // namespace hyperrec
