#include "model/machine.hpp"

#include <gtest/gtest.h>

namespace hyperrec {
namespace {

TEST(MachineSpec, LocalOnlyFactoryUsesDefaultInits) {
  const MachineSpec machine = MachineSpec::local_only({8, 8, 8, 24});
  ASSERT_EQ(machine.task_count(), 4u);
  EXPECT_EQ(machine.tasks[3].local_switches, 24u);
  EXPECT_EQ(machine.tasks[3].local_init, 24);
  EXPECT_EQ(machine.total_local_switches(), 48u);
  EXPECT_EQ(machine.total_switches(), 48u);
  EXPECT_FALSE(machine.has_global_resources());
}

TEST(MachineSpec, UniformLocalFactory) {
  const MachineSpec machine = MachineSpec::uniform_local(3, 5);
  ASSERT_EQ(machine.task_count(), 3u);
  for (const TaskSpec& task : machine.tasks) {
    EXPECT_EQ(task.local_switches, 5u);
    EXPECT_EQ(task.local_init, 5);
  }
}

TEST(MachineSpec, TotalSwitchesIncludesGlobalResources) {
  MachineSpec machine = MachineSpec::uniform_local(2, 4);
  machine.private_global_units = 6;
  machine.public_context_size = 3;
  EXPECT_EQ(machine.total_switches(), 8u + 6u + 3u);
  EXPECT_TRUE(machine.has_global_resources());
}

TEST(MachineSpec, ValidateTraceAcceptsMatchingShape) {
  const MachineSpec machine = MachineSpec::uniform_local(2, 3);
  const auto trace = MultiTaskTrace::from_local(
      {3, 3}, {{DynamicBitset(3)}, {DynamicBitset(3)}});
  EXPECT_NO_THROW(machine.validate_trace(trace));
}

TEST(MachineSpec, ValidateTraceRejectsTaskCountMismatch) {
  const MachineSpec machine = MachineSpec::uniform_local(2, 3);
  const auto trace = MultiTaskTrace::from_local({3}, {{DynamicBitset(3)}});
  EXPECT_THROW(machine.validate_trace(trace), PreconditionError);
}

TEST(MachineSpec, ValidateTraceRejectsUniverseMismatch) {
  const MachineSpec machine = MachineSpec::uniform_local(1, 3);
  const auto trace = MultiTaskTrace::from_local({4}, {{DynamicBitset(4)}});
  EXPECT_THROW(machine.validate_trace(trace), PreconditionError);
}

TEST(MachineSpec, ValidateTraceRejectsExcessPrivateDemand) {
  MachineSpec machine = MachineSpec::uniform_local(1, 3);
  machine.private_global_units = 2;
  MultiTaskTrace trace;
  TaskTrace task(3);
  task.push_back({DynamicBitset(3), 5});  // demand 5 > pool 2
  trace.add_task(std::move(task));
  EXPECT_THROW(machine.validate_trace(trace), PreconditionError);
}

}  // namespace
}  // namespace hyperrec
