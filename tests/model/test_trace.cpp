#include "model/trace.hpp"

#include <gtest/gtest.h>

namespace hyperrec {
namespace {

TaskTrace sample_trace() {
  TaskTrace trace(4);
  trace.push_back_local(DynamicBitset::from_string("1000"));
  trace.push_back_local(DynamicBitset::from_string("0100"));
  trace.push_back_local(DynamicBitset::from_string("0110"));
  return trace;
}

TEST(TaskTrace, SizeAndAccess) {
  const TaskTrace trace = sample_trace();
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.local_universe(), 4u);
  EXPECT_TRUE(trace.at(0).local.test(0));
  EXPECT_EQ(trace.at(2).local.count(), 2u);
}

TEST(TaskTrace, SliceMatchesPerStepCopyAcrossWordSeams) {
  // slice() is the bulk window-cut used on the streaming hot path; it must
  // agree bit-for-bit with the per-step push_back oracle, in particular at
  // the 64-bit word seams of the underlying bitsets.
  for (const std::size_t universe : {std::size_t{63}, std::size_t{64},
                                     std::size_t{65}}) {
    TaskTrace trace(universe);
    for (std::size_t i = 0; i < 12; ++i) {
      DynamicBitset bits(universe);
      bits.set(i % universe);
      bits.set(universe - 1 - (i % universe));
      if (i % 3 == 0) bits.set(universe / 2);
      trace.push_back({std::move(bits), static_cast<std::uint32_t>(i)});
    }
    for (const auto& [lo, hi] :
         {std::pair<std::size_t, std::size_t>{0, 12}, {3, 9}, {5, 5},
          {11, 12}, {0, 1}}) {
      const TaskTrace cut = trace.slice(lo, hi);
      TaskTrace oracle(universe);
      for (std::size_t i = lo; i < hi; ++i) oracle.push_back(trace.at(i));
      ASSERT_EQ(cut.size(), oracle.size()) << universe << " [" << lo << ","
                                           << hi << ")";
      EXPECT_EQ(cut.local_universe(), universe);
      for (std::size_t i = 0; i < cut.size(); ++i) {
        EXPECT_TRUE(cut.at(i).local == oracle.at(i).local);
        EXPECT_EQ(cut.at(i).private_demand, oracle.at(i).private_demand);
      }
    }
  }
}

TEST(TaskTrace, SliceOutOfBoundsThrows) {
  const TaskTrace trace = sample_trace();
  EXPECT_THROW((void)trace.slice(2, 1), PreconditionError);
  EXPECT_THROW((void)trace.slice(0, 4), PreconditionError);
}

TEST(TaskTrace, UniverseMismatchRejected) {
  TaskTrace trace(4);
  EXPECT_THROW(trace.push_back_local(DynamicBitset(5)), PreconditionError);
}

TEST(TaskTrace, OutOfRangeStepThrows) {
  const TaskTrace trace = sample_trace();
  EXPECT_THROW((void)trace.at(3), PreconditionError);
}

TEST(TaskTrace, LocalUnionOverRanges) {
  const TaskTrace trace = sample_trace();
  EXPECT_EQ(trace.local_union_naive(0, 3).to_string(), "1110");
  EXPECT_EQ(trace.local_union_naive(1, 3).to_string(), "0110");
  EXPECT_EQ(trace.local_union_naive(0, 1).to_string(), "1000");
}

TEST(TaskTrace, LocalUnionEmptyRangeIsEmptySet) {
  const TaskTrace trace = sample_trace();
  EXPECT_EQ(trace.local_union_naive(2, 2).count(), 0u);
}

TEST(TaskTrace, LocalUnionBadRangeThrows) {
  const TaskTrace trace = sample_trace();
  EXPECT_THROW((void)trace.local_union_naive(2, 1), PreconditionError);
  EXPECT_THROW((void)trace.local_union_naive(0, 4), PreconditionError);
}

TEST(TaskTrace, MaxPrivateDemand) {
  TaskTrace trace(2);
  trace.push_back({DynamicBitset(2), 3});
  trace.push_back({DynamicBitset(2), 7});
  trace.push_back({DynamicBitset(2), 1});
  EXPECT_EQ(trace.max_private_demand_naive(0, 3), 7u);
  EXPECT_EQ(trace.max_private_demand_naive(2, 3), 1u);
  EXPECT_EQ(trace.max_private_demand_naive(1, 1), 0u) << "empty range is zero";
}

TEST(MultiTaskTrace, SynchronizedDetection) {
  MultiTaskTrace trace;
  trace.add_task(sample_trace());
  trace.add_task(sample_trace());
  EXPECT_TRUE(trace.synchronized());
  EXPECT_EQ(trace.steps(), 3u);

  TaskTrace shorter(4);
  shorter.push_back_local(DynamicBitset(4));
  trace.add_task(std::move(shorter));
  EXPECT_FALSE(trace.synchronized());
  EXPECT_THROW((void)trace.steps(), PreconditionError);
}

TEST(MultiTaskTrace, TaskAccessBounds) {
  MultiTaskTrace trace;
  trace.add_task(sample_trace());
  EXPECT_EQ(trace.task_count(), 1u);
  EXPECT_NO_THROW((void)trace.task(0));
  EXPECT_THROW((void)trace.task(1), PreconditionError);
}

TEST(MultiTaskTrace, StepsOnEmptyTraceThrows) {
  MultiTaskTrace trace;
  EXPECT_THROW((void)trace.steps(), PreconditionError);
}

TEST(MultiTaskTrace, FromLocalBuildsTasks) {
  const auto trace = MultiTaskTrace::from_local(
      {2, 3},
      {{DynamicBitset::from_string("10"), DynamicBitset::from_string("01")},
       {DynamicBitset::from_string("111"), DynamicBitset::from_string("001")}});
  EXPECT_EQ(trace.task_count(), 2u);
  EXPECT_EQ(trace.task(0).local_universe(), 2u);
  EXPECT_EQ(trace.task(1).local_universe(), 3u);
  EXPECT_EQ(trace.steps(), 2u);
  EXPECT_EQ(trace.task(1).at(0).local.count(), 3u);
}

TEST(MultiTaskTrace, FromLocalSizeMismatchThrows) {
  EXPECT_THROW(MultiTaskTrace::from_local({2}, {}), PreconditionError);
}

}  // namespace
}  // namespace hyperrec
