#include "model/cost_switch.hpp"

#include <gtest/gtest.h>

#include "model/instance.hpp"
#include "testutil/reference_eval.hpp"
#include "testutil/trace_builders.hpp"

namespace hyperrec {
namespace {

/// Two tasks over 4-switch universes, three synchronized steps.
///   task 0: {s0}, {s1}, {s1}
///   task 1: {s2,s3}, {s2,s3}, {}
MultiTaskTrace small_trace() {
  return MultiTaskTrace::from_local(
      {4, 4},
      {{DynamicBitset::from_string("1000"), DynamicBitset::from_string("0100"),
        DynamicBitset::from_string("0100")},
       {DynamicBitset::from_string("0011"), DynamicBitset::from_string("0011"),
        DynamicBitset::from_string("0000")}});
}

MachineSpec small_machine() { return MachineSpec::local_only({4, 4}); }

TEST(DeriveLocalHypercontexts, MinimalUnionsPerInterval) {
  const auto trace = small_trace();
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(Partition::from_starts({0, 1}, 3));
  schedule.tasks.push_back(Partition::single(3));
  const auto contexts = derive_local_hypercontexts(trace, schedule);
  ASSERT_EQ(contexts.size(), 2u);
  ASSERT_EQ(contexts[0].size(), 2u);
  EXPECT_EQ(contexts[0][0].local.to_string(), "1000");
  EXPECT_EQ(contexts[0][1].local.to_string(), "0100");
  ASSERT_EQ(contexts[1].size(), 1u);
  EXPECT_EQ(contexts[1][0].local.to_string(), "0011");
}

TEST(FullySyncSwitch, SingleIntervalHandComputedParallelParallel) {
  const auto trace = small_trace();
  const auto machine = small_machine();
  const auto schedule = MultiTaskSchedule::all_single(2, 3);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskParallel,
                      false};
  const auto breakdown =
      evaluate_fully_sync_switch(trace, machine, schedule, options);
  // Hypercontexts: t0 = {s0,s1} (2), t1 = {s2,s3} (2).
  // Step 0: hyper max(4,4)=4; every step reconfig max(2,2)=2.
  EXPECT_EQ(breakdown.hyper, 4);
  EXPECT_EQ(breakdown.reconfig, 6);
  EXPECT_EQ(breakdown.total, 10);
  EXPECT_EQ(breakdown.partial_hyper_steps, 1u);
  ASSERT_EQ(breakdown.per_step.size(), 3u);
  EXPECT_EQ(breakdown.per_step[0].hyper, 4);
  EXPECT_EQ(breakdown.per_step[1].hyper, 0);
  EXPECT_EQ(breakdown.per_step[2].reconfig, 2);
}

TEST(FullySyncSwitch, SingleIntervalHandComputedSequentialUploads) {
  const auto trace = small_trace();
  const auto machine = small_machine();
  const auto schedule = MultiTaskSchedule::all_single(2, 3);
  EvalOptions options{UploadMode::kTaskSequential, UploadMode::kTaskSequential,
                      false};
  const auto breakdown =
      evaluate_fully_sync_switch(trace, machine, schedule, options);
  // Step 0: hyper 4+4=8; every step reconfig 2+2=4.
  EXPECT_EQ(breakdown.hyper, 8);
  EXPECT_EQ(breakdown.reconfig, 12);
  EXPECT_EQ(breakdown.total, 20);
}

TEST(FullySyncSwitch, PerTaskBoundariesHandComputed) {
  const auto trace = small_trace();
  const auto machine = small_machine();
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(Partition::from_starts({0, 1}, 3));
  schedule.tasks.push_back(Partition::single(3));
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                      false};
  const auto breakdown =
      evaluate_fully_sync_switch(trace, machine, schedule, options);
  // t0 intervals: {s0} (1), {s1} (1); t1: {s2,s3} (2).
  // Hyper: step 0 max(4,4)=4; step 1 only t0: 4.  Total 8.
  // Reconfig (sequential): per step 1+2=3.  Total 9.
  EXPECT_EQ(breakdown.hyper, 8);
  EXPECT_EQ(breakdown.reconfig, 9);
  EXPECT_EQ(breakdown.total, 17);
  EXPECT_EQ(breakdown.partial_hyper_steps, 2u);
}

TEST(FullySyncSwitch, EveryStepScheduleMatchesPerStepRequirements) {
  const auto trace = small_trace();
  const auto machine = small_machine();
  const auto schedule = MultiTaskSchedule::all_every_step(2, 3);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskParallel,
                      false};
  const auto breakdown =
      evaluate_fully_sync_switch(trace, machine, schedule, options);
  // Hyper: max(4,4)=4 at every step → 12.
  // Reconfig: max(|c0|,|c1|) = max(1,2), max(1,2), max(1,0) → 2+2+1 = 5.
  EXPECT_EQ(breakdown.hyper, 12);
  EXPECT_EQ(breakdown.reconfig, 5);
  EXPECT_EQ(breakdown.partial_hyper_steps, 3u);
}

TEST(FullySyncSwitch, ChangeoverAddsSymmetricDifferences) {
  const auto trace = small_trace();
  const auto machine = small_machine();
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(Partition::from_starts({0, 1}, 3));
  schedule.tasks.push_back(Partition::single(3));
  EvalOptions options{UploadMode::kTaskSequential, UploadMode::kTaskSequential,
                      true};
  const auto breakdown =
      evaluate_fully_sync_switch(trace, machine, schedule, options);
  // Changeover: t0 step0: |{s0}|=1; t0 step1: |{s0}Δ{s1}|=2; t1 step0:
  // |{s2,s3}|=2.  Hyper = (4+1) + (4+2) [t0] + (4+2) [t1 at step 0] = 17.
  EXPECT_EQ(breakdown.hyper, 17);
  EXPECT_EQ(breakdown.reconfig, 9);
}

TEST(FullySyncSwitch, UnsynchronizedTraceRejected) {
  MultiTaskTrace trace;
  TaskTrace t0(2);
  t0.push_back_local(DynamicBitset(2));
  TaskTrace t1(2);
  t1.push_back_local(DynamicBitset(2));
  t1.push_back_local(DynamicBitset(2));
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  const auto machine = MachineSpec::uniform_local(2, 2);
  const auto schedule = MultiTaskSchedule::all_single(2, 1);
  EXPECT_THROW(evaluate_fully_sync_switch(trace, machine, schedule, {}),
               PreconditionError);
}

TEST(FullySyncSwitch, GlobalBoundariesForbiddenWithoutGlobalResources) {
  const auto trace = small_trace();
  const auto machine = small_machine();
  auto schedule = MultiTaskSchedule::all_single(2, 3);
  schedule.global_boundaries = {0};
  EXPECT_THROW(evaluate_fully_sync_switch(trace, machine, schedule, {}),
               PreconditionError);
}

TEST(FullySyncSwitch, GlobalResourcesRequireInitialGlobalBoundary) {
  const auto trace = small_trace();
  auto machine = small_machine();
  machine.public_context_size = 2;
  machine.global_init = 10;
  const auto schedule = MultiTaskSchedule::all_single(2, 3);  // no globals
  EXPECT_THROW(evaluate_fully_sync_switch(trace, machine, schedule, {}),
               PreconditionError);
}

TEST(FullySyncSwitch, PublicContextEntersReconfigCombine) {
  const auto trace = small_trace();
  auto machine = small_machine();
  machine.public_context_size = 5;
  machine.global_init = 10;
  auto schedule = MultiTaskSchedule::all_single(2, 3);
  schedule.global_boundaries = {0};

  EvalOptions parallel{UploadMode::kTaskParallel, UploadMode::kTaskParallel,
                       false};
  const auto par =
      evaluate_fully_sync_switch(trace, machine, schedule, parallel);
  // Reconfig per step: max(|h^pub|=5, 2, 2) = 5 → 15.  w = 10 once.
  EXPECT_EQ(par.reconfig, 15);
  EXPECT_EQ(par.global_hyper, 10);
  EXPECT_EQ(par.total, 4 + 15 + 10);

  EvalOptions sequential{UploadMode::kTaskParallel,
                         UploadMode::kTaskSequential, false};
  const auto seq =
      evaluate_fully_sync_switch(trace, machine, schedule, sequential);
  // Reconfig per step: 5 + 2 + 2 = 9 → 27.
  EXPECT_EQ(seq.reconfig, 27);
}

TEST(FullySyncSwitch, PrivateDemandAddsToReconfigAndChecksPool) {
  MultiTaskTrace trace;
  TaskTrace t0(2);
  t0.push_back({DynamicBitset::from_string("10"), 2});
  t0.push_back({DynamicBitset::from_string("10"), 1});
  TaskTrace t1(2);
  t1.push_back({DynamicBitset::from_string("01"), 1});
  t1.push_back({DynamicBitset::from_string("01"), 3});
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));

  MachineSpec machine = MachineSpec::uniform_local(2, 2);
  machine.private_global_units = 5;
  machine.global_init = 7;
  auto schedule = MultiTaskSchedule::all_single(2, 2);
  schedule.global_boundaries = {0};

  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                      false};
  const auto breakdown =
      evaluate_fully_sync_switch(trace, machine, schedule, options);
  // h0 = {s0} + priv max 2 → size 3; h1 = {s1} + priv max 3 → size 4.
  // Reconfig per step: 3 + 4 = 7 → 14.  Global w = 7.
  EXPECT_EQ(breakdown.reconfig, 14);
  EXPECT_EQ(breakdown.global_hyper, 7);

  machine.private_global_units = 4;  // quotas 2 + 3 no longer fit
  EXPECT_THROW(evaluate_fully_sync_switch(trace, machine, schedule, options),
               PreconditionError);
}

TEST(NoHyperBaseline, IsStepsTimesTotalSwitches) {
  const auto machine = MachineSpec::local_only({8, 8, 8, 24});
  EXPECT_EQ(no_hyperreconfiguration_cost(machine, 110), 5280);
}

TEST(AsyncSwitch, MaxOverPerTaskTotals) {
  // Task 0: 2 steps of {s0}; task 1: 1 step of {s1,s2} — lengths differ.
  MultiTaskTrace trace;
  TaskTrace t0(3);
  t0.push_back_local(DynamicBitset::from_string("100"));
  t0.push_back_local(DynamicBitset::from_string("100"));
  TaskTrace t1(3);
  t1.push_back_local(DynamicBitset::from_string("011"));
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));

  const auto machine = MachineSpec::uniform_local(2, 3);
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(Partition::single(2));
  schedule.tasks.push_back(Partition::single(1));

  const auto breakdown = evaluate_async_switch(trace, machine, schedule, {});
  // Task 0: v=3 + |{s0}|·2 = 5.  Task 1: 3 + 2·1 = 5.
  EXPECT_EQ(breakdown.per_task[0], 5);
  EXPECT_EQ(breakdown.per_task[1], 5);
  EXPECT_EQ(breakdown.total, 5);
}

TEST(AsyncSwitch, PublicResourcesRejected) {
  const auto trace = small_trace();
  auto machine = small_machine();
  machine.public_context_size = 1;
  const auto schedule = MultiTaskSchedule::all_single(2, 3);
  EXPECT_THROW(evaluate_async_switch(trace, machine, schedule, {}),
               PreconditionError);
}

TEST(AsyncSwitch, SlowestTaskDominates) {
  MultiTaskTrace trace;
  TaskTrace t0(4);
  for (int i = 0; i < 5; ++i)
    t0.push_back_local(DynamicBitset::from_string("1111"));
  TaskTrace t1(4);
  t1.push_back_local(DynamicBitset::from_string("1000"));
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  const auto machine = MachineSpec::uniform_local(2, 4);
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(Partition::single(5));
  schedule.tasks.push_back(Partition::single(1));
  const auto breakdown = evaluate_async_switch(trace, machine, schedule, {});
  EXPECT_EQ(breakdown.per_task[0], 4 + 4 * 5);
  EXPECT_EQ(breakdown.total, 24);
}

TEST(EvaluateSwitchTotal, DispatcherMatchesDirectCalls) {
  const auto trace = small_trace();
  const auto machine = small_machine();
  const auto schedule = MultiTaskSchedule::all_single(2, 3);
  EvalOptions options{UploadMode::kTaskSequential, UploadMode::kTaskSequential,
                      false};

  EXPECT_EQ(
      evaluate_switch_total(SyncMode::kFullySynchronized, trace, machine,
                            schedule, options),
      evaluate_fully_sync_switch(trace, machine, schedule, options).total);

  // Hypercontext-sync forces task-parallel reconfiguration upload.
  EvalOptions hyper_sync = options;
  hyper_sync.reconfig_upload = UploadMode::kTaskParallel;
  EXPECT_EQ(
      evaluate_switch_total(SyncMode::kHypercontextSynchronized, trace,
                            machine, schedule, options),
      evaluate_fully_sync_switch(trace, machine, schedule, hyper_sync).total);

  // Context-sync forces task-parallel hyperreconfiguration upload.
  EvalOptions ctx_sync = options;
  ctx_sync.hyper_upload = UploadMode::kTaskParallel;
  EXPECT_EQ(
      evaluate_switch_total(SyncMode::kContextSynchronized, trace, machine,
                            schedule, options),
      evaluate_fully_sync_switch(trace, machine, schedule, ctx_sync).total);

  EXPECT_EQ(evaluate_switch_total(SyncMode::kNonSynchronized, trace, machine,
                                  schedule, options),
            evaluate_async_switch(trace, machine, schedule, options).total);
}

void expect_breakdowns_identical(const CostBreakdown& actual,
                                 const CostBreakdown& expected,
                                 const char* label) {
  EXPECT_EQ(actual.total, expected.total) << label;
  EXPECT_EQ(actual.hyper, expected.hyper) << label;
  EXPECT_EQ(actual.reconfig, expected.reconfig) << label;
  EXPECT_EQ(actual.global_hyper, expected.global_hyper) << label;
  EXPECT_EQ(actual.partial_hyper_steps, expected.partial_hyper_steps) << label;
  ASSERT_EQ(actual.per_step.size(), expected.per_step.size()) << label;
  for (std::size_t l = 0; l < actual.per_step.size(); ++l) {
    ASSERT_EQ(actual.per_step[l].hyper, expected.per_step[l].hyper)
        << label << " step " << l;
    ASSERT_EQ(actual.per_step[l].reconfig, expected.per_step[l].reconfig)
        << label << " step " << l;
  }
}

TEST(FullySyncSwitch, StatsBackedEvaluatorIsBitIdenticalToNaiveOracle) {
  // Regression gate for the SolveInstance re-plumb: the evaluator now
  // queries precomputed interval tables instead of rescanning the trace per
  // boundary interval; on seeded random schedules every CostBreakdown field
  // — including the per-step vector — must match the naive-rescan oracle
  // exactly, for both upload-combine settings and with changeover on.
  Xoshiro256 rng(0xC057C057ull);
  const EvalOptions grids[] = {
      {UploadMode::kTaskParallel, UploadMode::kTaskSequential, false},
      {UploadMode::kTaskSequential, UploadMode::kTaskParallel, false},
      {UploadMode::kTaskParallel, UploadMode::kTaskSequential, true},
  };
  for (std::size_t round = 0; round < 12; ++round) {
    const std::size_t tasks = 1 + rng.uniform(3);
    const std::size_t steps = 2 + rng.uniform(14);
    const std::size_t universe = 1 + rng.uniform(70);
    const MultiTaskTrace trace =
        testutil::random_multi_trace(rng, tasks, steps, universe);
    const MachineSpec machine = MachineSpec::local_only(
        std::vector<std::size_t>(tasks, universe));
    for (const EvalOptions& options : grids) {
      const SolveInstance instance(trace, machine, options);
      for (std::size_t s = 0; s < 4; ++s) {
        const MultiTaskSchedule schedule =
            testutil::random_schedule(rng, trace, machine, 0.3);
        const CostBreakdown expected =
            testutil::reference_fully_sync_breakdown(trace, machine, schedule,
                                                     options);
        expect_breakdowns_identical(
            evaluate_fully_sync_switch(instance, schedule), expected,
            "instance evaluator");
        expect_breakdowns_identical(
            evaluate_fully_sync_switch(trace, machine, schedule, options),
            expected, "trace-overload evaluator");
      }
    }
  }
}

}  // namespace
}  // namespace hyperrec
