// Property tests for the precomputed interval-query views
// (model/trace_stats.hpp) against the naive linear-rescan oracles kept on
// TaskTrace, plus SolveInstance construction contracts.
//
// The fuzz grid deliberately straddles the 64-bit word seams (universes 63,
// 64, 65) where tail-masking bugs live, the degenerate universes 0 and 1,
// and a multi-word universe (300).  Every (lo, hi) pair is checked,
// including empty ranges and the full-trace range.
#include "model/trace_stats.hpp"

#include <gtest/gtest.h>

#include "model/instance.hpp"
#include "support/rng.hpp"

namespace hyperrec {
namespace {

TaskTrace random_trace(std::size_t universe, std::size_t steps,
                       double density, std::uint32_t priv_cap,
                       Xoshiro256& rng) {
  TaskTrace trace(universe);
  for (std::size_t i = 0; i < steps; ++i) {
    DynamicBitset local(universe);
    for (std::size_t b = 0; b < universe; ++b) {
      if (rng.flip(density)) local.set(b);
    }
    const std::uint32_t priv =
        priv_cap == 0 ? 0
                      : static_cast<std::uint32_t>(rng.uniform(priv_cap + 1));
    trace.push_back({std::move(local), priv});
  }
  return trace;
}

TEST(TraceStatsProperty, MatchesNaiveOraclesOnEveryRange) {
  Xoshiro256 rng(0xDECAF5EEDull);
  const std::size_t universes[] = {0, 1, 63, 64, 65, 300};
  const std::size_t step_counts[] = {1, 2, 7, 33};
  const double densities[] = {0.0, 0.08, 0.5, 1.0};

  for (const std::size_t universe : universes) {
    for (const std::size_t steps : step_counts) {
      for (const double density : densities) {
        const TaskTrace trace =
            random_trace(universe, steps, density, 5, rng);
        const TaskTraceStats stats(trace);
        ASSERT_EQ(&stats.trace(), &trace);
        ASSERT_EQ(stats.steps(), steps);
        ASSERT_EQ(stats.universe(), universe);

        for (std::size_t lo = 0; lo <= steps; ++lo) {
          for (std::size_t hi = lo; hi <= steps; ++hi) {
            const DynamicBitset expected = trace.local_union_naive(lo, hi);
            const DynamicBitset actual = stats.local_union(lo, hi);
            ASSERT_EQ(actual, expected)
                << "universe " << universe << " range [" << lo << ", " << hi
                << ")";
            ASSERT_EQ(stats.local_union_count(lo, hi), expected.count());
            ASSERT_EQ(stats.max_private_demand(lo, hi),
                      trace.max_private_demand_naive(lo, hi));
            // Fused |base ∪ U(lo, hi)| against an independently built union.
            const DynamicBitset base =
                trace.local_union_naive(0, std::min(lo, std::size_t{2}));
            ASSERT_EQ(stats.local_union_count_with(base, lo, hi),
                      (base | expected).count());
          }
        }
      }
    }
  }
}

TEST(TraceStatsProperty, SwitchPresenceMatchesNaiveMembership) {
  Xoshiro256 rng(0xB17);
  const TaskTrace trace = random_trace(65, 21, 0.2, 0, rng);
  const TaskTraceStats stats(trace);
  for (std::size_t lo = 0; lo <= trace.size(); ++lo) {
    for (std::size_t hi = lo; hi <= trace.size(); ++hi) {
      const DynamicBitset expected = trace.local_union_naive(lo, hi);
      for (std::size_t b = 0; b < trace.local_universe(); ++b) {
        ASSERT_EQ(stats.switch_present(b, lo, hi), expected.test(b))
            << "switch " << b << " range [" << lo << ", " << hi << ")";
      }
    }
  }
  // Step counts: cross-check a switch's per-step occurrences by hand.
  for (std::size_t b = 0; b < trace.local_universe(); b += 7) {
    std::uint32_t count = 0;
    for (std::size_t i = 3; i < 17; ++i) {
      if (trace.at(i).local.test(b)) ++count;
    }
    EXPECT_EQ(stats.switch_step_count(b, 3, 17), count);
  }
}

TEST(TraceStatsProperty, SupportListsExactlyTheSwitchesThatEverAppear) {
  Xoshiro256 rng(0x5150);
  const TaskTrace trace = random_trace(64, 16, 0.1, 0, rng);
  const TaskTraceStats stats(trace);
  const DynamicBitset everything = trace.local_union_naive(0, trace.size());
  EXPECT_EQ(stats.support().size(), everything.count());
  for (const std::size_t b : stats.support()) {
    EXPECT_TRUE(everything.test(b));
  }
}

TEST(TraceStats, EmptyTraceAnswersEmptyRangeQueries) {
  const TaskTrace trace(48);
  const TaskTraceStats stats(trace);
  EXPECT_EQ(stats.local_union(0, 0).count(), 0u);
  EXPECT_EQ(stats.local_union_count(0, 0), 0u);
  EXPECT_EQ(stats.max_private_demand(0, 0), 0u);
  EXPECT_TRUE(stats.support().empty());
}

TEST(TraceStats, OutOfBoundsRangesThrow) {
  Xoshiro256 rng(0xE44);
  const TaskTrace trace = random_trace(8, 5, 0.5, 0, rng);
  const TaskTraceStats stats(trace);
  EXPECT_THROW((void)stats.local_union(3, 2), PreconditionError);
  EXPECT_THROW((void)stats.local_union(0, 6), PreconditionError);
  EXPECT_THROW((void)stats.local_union_count(0, 6), PreconditionError);
  EXPECT_THROW((void)stats.max_private_demand(4, 6), PreconditionError);
  EXPECT_THROW((void)stats.switch_present(8, 0, 5), PreconditionError);
}

TEST(MultiTaskTraceStats, DemandSumsMatchManualAccumulation) {
  Xoshiro256 rng(0xAB);
  MultiTaskTrace trace;
  for (std::size_t j = 0; j < 3; ++j) {
    trace.add_task(random_trace(10 + j, 12, 0.3, 4, rng));
  }
  const MultiTaskTraceStats stats(trace);
  ASSERT_TRUE(stats.synchronized());
  ASSERT_EQ(stats.task_count(), 3u);
  for (std::size_t i = 0; i < 12; ++i) {
    std::uint64_t sum = 0;
    for (std::size_t j = 0; j < 3; ++j) {
      sum += trace.task(j).at(i).private_demand;
    }
    EXPECT_EQ(stats.step_demand_sum(i), sum);
  }
  for (std::size_t lo = 0; lo <= 12; ++lo) {
    for (std::size_t hi = lo; hi <= 12; ++hi) {
      std::uint64_t expected = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        expected = std::max(expected, stats.step_demand_sum(i));
      }
      EXPECT_EQ(stats.max_step_demand_sum(lo, hi), expected);
    }
  }
}

TEST(MultiTaskTraceStats, NonSynchronizedTracesSkipDemandSums) {
  Xoshiro256 rng(0xCD);
  MultiTaskTrace trace;
  trace.add_task(random_trace(4, 3, 0.5, 2, rng));
  trace.add_task(random_trace(4, 5, 0.5, 2, rng));
  const MultiTaskTraceStats stats(trace);
  EXPECT_FALSE(stats.synchronized());
  EXPECT_THROW((void)stats.step_demand_sum(0), PreconditionError);
  EXPECT_THROW((void)stats.max_step_demand_sum(0, 1), PreconditionError);
  // Per-task views still work.
  EXPECT_EQ(stats.task(1).local_union(0, 5),
            trace.task(1).local_union_naive(0, 5));
}

TEST(SolveInstance, ValidatesAndExposesTheTriple) {
  Xoshiro256 rng(0xEF);
  MultiTaskTrace trace;
  trace.add_task(random_trace(6, 8, 0.4, 0, rng));
  trace.add_task(random_trace(9, 8, 0.4, 0, rng));
  const MachineSpec machine = MachineSpec::local_only({6, 9});
  EvalOptions options;
  options.changeover = true;

  const SolveInstance instance(trace, machine, options);
  EXPECT_EQ(instance.task_count(), 2u);
  EXPECT_EQ(instance.steps(), 8u);
  EXPECT_TRUE(instance.synchronized());
  EXPECT_TRUE(instance.options().changeover);
  EXPECT_EQ(instance.task_stats(1).local_union(0, 8),
            instance.trace().task(1).local_union_naive(0, 8));

  // Shape mismatch must be rejected at the boundary, not deep in a solver.
  const MachineSpec wrong = MachineSpec::local_only({6});
  EXPECT_THROW(SolveInstance(trace, wrong, options), PreconditionError);
}

TEST(SolveInstance, MoveKeepsTheStatsViewsValid) {
  Xoshiro256 rng(0x1234);
  MultiTaskTrace trace;
  trace.add_task(random_trace(65, 20, 0.25, 3, rng));
  MachineSpec machine = MachineSpec::local_only({65});
  machine.private_global_units = 8;  // the trace carries private demands
  SolveInstance original(trace, machine);
  const DynamicBitset expected = trace.task(0).local_union_naive(2, 17);

  const SolveInstance moved = std::move(original);
  EXPECT_EQ(moved.task_stats(0).local_union(2, 17), expected);
  EXPECT_EQ(moved.task_stats(0).max_private_demand(0, 20),
            trace.task(0).max_private_demand_naive(0, 20));
}

}  // namespace
}  // namespace hyperrec
