// LatencySketch: the geometric-bucket streaming-quantile estimator behind
// the /statz p50/p99 numbers.
#include "service/latency_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

namespace hyperrec::service {
namespace {

using std::chrono::microseconds;

TEST(LatencySketch, EmptySketchAnswersZero) {
  LatencySketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.max(), 0u);
  EXPECT_EQ(sketch.quantile(0.50), 0u);
  EXPECT_EQ(sketch.quantile(0.99), 0u);
}

TEST(LatencySketch, SingleSampleIsEveryQuantile) {
  LatencySketch sketch;
  sketch.record(microseconds{1234});
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_EQ(sketch.max(), 1234u);
  // One sample: every quantile is that sample, up to bucket resolution
  // (the estimate is a bucket upper bound, never below the true value by
  // more than the bucket width and never above the observed max).
  EXPECT_EQ(sketch.quantile(0.50), 1234u);
  EXPECT_EQ(sketch.quantile(1.0), 1234u);
}

TEST(LatencySketch, QuantilesAreMonotoneAndBracketTheData) {
  LatencySketch sketch;
  for (std::uint64_t us = 1; us <= 1000; ++us) {
    sketch.record(microseconds{static_cast<long>(us)});
  }
  const std::uint64_t p50 = sketch.quantile(0.50);
  const std::uint64_t p90 = sketch.quantile(0.90);
  const std::uint64_t p99 = sketch.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, sketch.max());
  EXPECT_EQ(sketch.max(), 1000u);
  // Geometric buckets guarantee ~12.5% relative error: p50 of 1..1000 is
  // 500, so the estimate must land in [500, 570].
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 570u);
  EXPECT_GE(p99, 990u);
}

TEST(LatencySketch, ZeroAndHugeSamplesLandInRange) {
  LatencySketch sketch;
  sketch.record(microseconds{0});
  sketch.record(microseconds::max());
  EXPECT_EQ(sketch.count(), 2u);
  EXPECT_EQ(sketch.quantile(1.0), sketch.max());
}

TEST(LatencySketch, ConcurrentRecordsAllLand) {
  LatencySketch sketch;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sketch, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sketch.record(microseconds{(t + 1) * 100 + (i % 50)});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(sketch.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(sketch.quantile(0.50), 100u);
  EXPECT_LE(sketch.quantile(1.0), sketch.max());
}

}  // namespace
}  // namespace hyperrec::service
