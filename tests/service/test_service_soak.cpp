// Compressed soak: an hours-equivalent request mix squeezed into seconds.
//
// Several client threads hammer one SolveService with thousands of solve
// requests — mostly repeating shapes (the daemon's bread and butter: cache
// hits), a trickle of fresh shapes (inserts + evictions past the cache
// bound), a rate-limited tenant bouncing off its quota, and streaming
// tenants appending through the shared multiplexer — then the gates check
// what a long-lived daemon must guarantee:
//
//   * no unbounded growth: cache entries <= capacity, inflight drains to 0,
//     the admission queue returns to depth 0;
//   * quota accounting closes: received == admitted + rejected_* per
//     tenant and in aggregate, and every admitted job was answered
//     (admitted == completed + failed == documents the clients saw);
//   * the drain at the end loses nothing.
#include "service/solve_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "service/json.hpp"

namespace hyperrec::service {
namespace {

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 300;
constexpr int kStreams = 2;
constexpr int kStepsPerStream = 150;

std::string solve_line(const std::string& tenant, std::uint64_t seed,
                       std::size_t steps) {
  return R"({"op":"solve","tenant":")" + tenant +
         R"(","job":{"workload":"random","tasks":2,"steps":)" +
         std::to_string(steps) + R"(,"universe":6,"seed":)" +
         std::to_string(seed) + "}}";
}

TEST(ServiceSoak, ThousandsOfRequestsNoUnboundedGrowth) {
  ServiceConfig config;
  config.workers = 3;
  config.queue_capacity = 24;
  config.cache.capacity = 48;  // far fewer than distinct shapes: evictions
  config.portfolio = {"aligned-dp"};
  config.stream_window = 64;
  config.stream_trigger = "steps:16";
  config.tenant_quotas["metered"] = QuotaConfig{50.0, 4.0};
  SolveService service(std::move(config));

  std::atomic<std::uint64_t> documents{0};
  std::atomic<std::uint64_t> rejections{0};
  std::atomic<std::uint64_t> errors{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &documents, &rejections, &errors, c] {
      // Client 0 is the metered tenant (quota bounces expected); the rest
      // run unlimited.  Seeds mostly repeat (8 hot shapes) with a fresh
      // shape every 10th request to churn the cache.
      const std::string tenant = c == 0 ? "metered" : "bulk-" +
                                                          std::to_string(c);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const bool fresh = i % 10 == 9;
        const std::uint64_t seed =
            fresh ? 1000u + static_cast<std::uint64_t>(c * kRequestsPerClient
                                                       + i)
                  : static_cast<std::uint64_t>(i % 8);
        const std::size_t steps = fresh ? 8 + i % 5 : 8;
        const std::string response =
            service.handle_line(solve_line(tenant, seed, steps));
        const JsonValue doc = parse_json(response);
        if (doc.get("schema") != nullptr &&
            doc.get("schema")->as_string() == "hyperrec-batch-result") {
          documents.fetch_add(1);
        } else if (doc.get("reject") != nullptr) {
          rejections.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }

  // Streaming tenants ride along on the shared multiplexer.
  std::vector<std::thread> streamers;
  std::atomic<std::uint64_t> appended{0};
  for (int s = 0; s < kStreams; ++s) {
    streamers.emplace_back([&service, &appended, s] {
      const JsonValue opened = parse_json(service.handle_line(
          R"({"op":"stream_open","tenant":"streamer","universes":[5,5]})"));
      ASSERT_TRUE(opened.get("ok")->as_bool());
      const std::uint64_t id = opened.get("stream")->as_uint();
      for (int i = 0; i < kStepsPerStream; ++i) {
        const std::string append =
            R"({"op":"stream_append","stream":)" + std::to_string(id) +
            R"(,"step":[{"bits":[)" + std::to_string((i + s) % 5) +
            R"(]},{"bits":[)" + std::to_string(i % 5) + "]}]}";
        const JsonValue ack = parse_json(service.handle_line(append));
        if (ack.get("ok") != nullptr && ack.get("ok")->as_bool()) {
          appended.fetch_add(1);
        }
      }
    });
  }

  for (std::thread& client : clients) client.join();
  for (std::thread& streamer : streamers) streamer.join();
  service.shutdown();

  const std::uint64_t total_requests =
      static_cast<std::uint64_t>(kClients) * kRequestsPerClient;
  EXPECT_EQ(documents.load() + rejections.load() + errors.load(),
            total_requests);
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_GE(documents.load(), total_requests / 2);  // mostly admitted

  // --- no unbounded growth ------------------------------------------------
  EXPECT_LE(service.cache().size(), service.cache().capacity());
  EXPECT_EQ(service.cache().inflight(), 0u);
  EXPECT_EQ(service.queue_depth(), 0u);

  const JsonValue statz = parse_json(service.statz_json());
  const JsonValue& requests = *statz.get("requests");
  const std::uint64_t admitted = requests.get("admitted")->as_uint();
  const std::uint64_t received = requests.get("received")->as_uint();

  // --- accounting closes --------------------------------------------------
  EXPECT_EQ(received, admitted + requests.get("rejected_rate")->as_uint() +
                          requests.get("rejected_backpressure")->as_uint() +
                          requests.get("rejected_draining")->as_uint());
  for (const JsonValue& tenant : statz.get("tenants")->as_array()) {
    EXPECT_EQ(tenant.get("received")->as_uint(),
              tenant.get("admitted")->as_uint() +
                  tenant.get("rejected_rate")->as_uint() +
                  tenant.get("rejected_backpressure")->as_uint() +
                  tenant.get("rejected_draining")->as_uint())
        << "tenant " << tenant.get("name")->as_string();
  }
  // Every admitted solve was answered (stream_opens are admitted too).
  EXPECT_EQ(admitted, requests.get("completed")->as_uint() +
                          requests.get("failed")->as_uint() +
                          static_cast<std::uint64_t>(kStreams));
  EXPECT_EQ(documents.load(), requests.get("completed")->as_uint() +
                                  requests.get("failed")->as_uint());

  // The hot shapes must actually have been served by the shared cache.
  EXPECT_GT(statz.get("cache")->get("hits")->as_uint(), total_requests / 4);
  // Streams all arrived and were applied by the drained fleet.
  EXPECT_EQ(statz.get("requests")->get("appends")->as_uint(),
            appended.load());
  const JsonValue& fleet = *statz.get("fleet");
  EXPECT_EQ(fleet.get("streams")->as_uint(),
            static_cast<std::uint64_t>(kStreams));
  EXPECT_EQ(fleet.get("accepted")->as_uint(), appended.load());
  EXPECT_EQ(fleet.get("applied")->as_uint(), appended.load());
  EXPECT_EQ(fleet.get("dropped")->as_uint(), 0u);
}

}  // namespace
}  // namespace hyperrec::service
