// SolveService end-to-end (in-process, no socket): admission pipeline,
// shared-cache reuse, quota and backpressure rejections, strict trigger
// validation on daemon requests, /statz accounting, graceful drain.
#include "service/solve_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/json.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace hyperrec::service {
namespace {

ServiceConfig small_config() {
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 16;
  config.cache.capacity = 32;
  config.portfolio = {"aligned-dp", "greedy-w8"};
  config.stream_window = 32;
  config.stream_trigger = "steps:8";
  return config;
}

std::string solve_line(const std::string& tenant, std::uint64_t seed,
                       std::size_t steps = 12) {
  return R"({"op":"solve","tenant":")" + tenant +
         R"(","id":"t","job":{"workload":"phased","tasks":2,"steps":)" +
         std::to_string(steps) + R"(,"universe":8,"seed":)" +
         std::to_string(seed) + "}}";
}

TEST(SolveService, SolveMatchesADirectEngineRun) {
  SolveService service(small_config());
  const std::string response = service.handle_line(solve_line("acme", 5));
  const JsonValue doc = parse_json(response);
  EXPECT_EQ(doc.get("schema")->as_string(), "hyperrec-batch-result");
  EXPECT_EQ(doc.get("version")->as_int(), 6);
  EXPECT_EQ(doc.get("tenant")->as_string(), "acme");
  ASSERT_NE(doc.get("queue"), nullptr);
  EXPECT_GE(doc.get("queue")->get("wait_us")->as_int(), 0);
  const JsonValue& job = doc.get("jobs")->as_array().at(0);
  ASSERT_TRUE(job.get("ok")->as_bool());

  // Reference: the same job solved directly through a fresh engine.
  Xoshiro256 root(5);
  Xoshiro256 rng = root.split(0);
  engine::BatchJob reference;
  reference.trace = workload::make_multi_family("phased", 2, 12, 8, rng);
  std::vector<std::size_t> locals;
  for (std::size_t j = 0; j < reference.trace.task_count(); ++j) {
    locals.push_back(reference.trace.task(j).local_universe());
  }
  reference.machine = MachineSpec::local_only(locals);
  engine::BatchEngineConfig engine_config;
  engine_config.parallelism = 1;
  engine_config.portfolio.solvers = {"aligned-dp", "greedy-w8"};
  const engine::BatchEngine engine(std::move(engine_config));
  const engine::BatchResult direct = engine.solve({reference});
  ASSERT_TRUE(direct.jobs.front().ok);

  EXPECT_EQ(job.get("cost")->get("total")->as_uint(),
            direct.jobs.front().solution.breakdown.total);
  EXPECT_EQ(job.get("winner")->as_string(), direct.jobs.front().winner);
  EXPECT_EQ(job.get("name")->as_string(), "phased-0");
}

TEST(SolveService, RepeatRequestsHitTheSharedCache) {
  SolveService service(small_config());
  const JsonValue first = parse_json(service.handle_line(solve_line("a", 7)));
  EXPECT_EQ(first.get("jobs")->as_array().at(0).get("cache")->as_string(),
            "miss");
  const JsonValue second = parse_json(service.handle_line(solve_line("b", 7)));
  EXPECT_EQ(second.get("jobs")->as_array().at(0).get("cache")->as_string(),
            "hit");
  // Cached schedules are bit-identical by construction.
  EXPECT_EQ(second.get("jobs")->as_array().at(0).get("cost")->get("total")
                ->as_uint(),
            first.get("jobs")->as_array().at(0).get("cost")->get("total")
                ->as_uint());
  const JsonValue statz = parse_json(service.statz_json());
  EXPECT_GE(statz.get("cache")->get("hits")->as_uint(), 1u);
  EXPECT_EQ(statz.get("cache")->get("inflight")->as_uint(), 0u);
}

TEST(SolveService, QuotaRejectsWithRetryAfterWhileOthersComplete) {
  ServiceConfig config = small_config();
  config.tenant_quotas["limited"] = QuotaConfig{0.000001, 1.0};
  SolveService service(std::move(config));

  const JsonValue admitted =
      parse_json(service.handle_line(solve_line("limited", 3)));
  EXPECT_EQ(admitted.get("schema")->as_string(), "hyperrec-batch-result");
  const JsonValue rejected =
      parse_json(service.handle_line(solve_line("limited", 3)));
  EXPECT_EQ(rejected.get("reject")->as_string(), "rate");
  EXPECT_GT(rejected.get("retry_after_ms")->as_int(), 0);
  // The default-quota tenant is unaffected.
  const JsonValue other = parse_json(service.handle_line(solve_line("ok", 3)));
  EXPECT_EQ(other.get("schema")->as_string(), "hyperrec-batch-result");
}

TEST(SolveService, MalformedRequestsAnswerErrorLinesNotExceptions) {
  SolveService service(small_config());
  const JsonValue bad_json = parse_json(service.handle_line("{nope"));
  EXPECT_FALSE(bad_json.get("ok")->as_bool());
  EXPECT_NE(bad_json.get("error")->as_string().find("JSON"),
            std::string::npos);
  const JsonValue bad_op =
      parse_json(service.handle_line(R"({"op":"fly"})"));
  EXPECT_NE(bad_op.get("error")->as_string().find("unknown op"),
            std::string::npos);
}

TEST(SolveService, StreamOpenValidatesTriggerSpecsStrictly) {
  SolveService service(small_config());
  // Satellite: a malformed trigger key in a daemon request dies loudly,
  // naming the offending item — never silently ignored.
  const JsonValue typo = parse_json(service.handle_line(
      R"({"op":"stream_open","universes":[6],"trigger":"spkie:2.0"})"));
  EXPECT_FALSE(typo.get("ok")->as_bool());
  EXPECT_NE(typo.get("error")->as_string().find("spkie"), std::string::npos);

  // A VALID spec that differs from the fleet-wide one is an explicit
  // error, not a silent override (one trigger config per multiplexer).
  const JsonValue divergent = parse_json(service.handle_line(
      R"({"op":"stream_open","universes":[6],"trigger":"steps:4"})"));
  EXPECT_FALSE(divergent.get("ok")->as_bool());
  EXPECT_NE(divergent.get("error")->as_string().find("fleet-wide"),
            std::string::npos);

  // Matching the fleet spec (or omitting it) opens the stream.
  const JsonValue opened = parse_json(service.handle_line(
      R"({"op":"stream_open","universes":[6],"trigger":"steps:8"})"));
  EXPECT_TRUE(opened.get("ok")->as_bool());
}

TEST(SolveService, StreamLifecycleThroughTheSharedMux) {
  SolveService service(small_config());
  const JsonValue opened = parse_json(service.handle_line(
      R"({"op":"stream_open","tenant":"s","universes":[5,5]})"));
  ASSERT_TRUE(opened.get("ok")->as_bool());
  const std::uint64_t stream = opened.get("stream")->as_uint();
  for (int i = 0; i < 20; ++i) {
    const std::string append =
        R"({"op":"stream_append","stream":)" + std::to_string(stream) +
        R"(,"step":[{"bits":[)" + std::to_string(i % 5) +
        R"(]},{"bits":[)" + std::to_string((i + 2) % 5) + "]}]}";
    ASSERT_TRUE(parse_json(service.handle_line(append)).get("ok")->as_bool())
        << "append " << i;
  }
  // Out-of-universe bits and private demands are answered at the boundary.
  const JsonValue bad_bit = parse_json(service.handle_line(
      R"({"op":"stream_append","stream":)" + std::to_string(stream) +
      R"(,"step":[{"bits":[5]},{"bits":[0]}]})"));
  EXPECT_NE(bad_bit.get("error")->as_string().find("universe"),
            std::string::npos);
  const JsonValue demand = parse_json(service.handle_line(
      R"({"op":"stream_append","stream":)" + std::to_string(stream) +
      R"(,"step":[{"bits":[0],"demand":2},{"bits":[0]}]})"));
  EXPECT_NE(demand.get("error")->as_string().find("demand"),
            std::string::npos);
  const JsonValue unknown = parse_json(service.handle_line(
      R"({"op":"stream_append","stream":99,"step":[{"bits":[0]}]})"));
  EXPECT_NE(unknown.get("error")->as_string().find("unknown stream"),
            std::string::npos);

  const JsonValue summary = parse_json(service.handle_line(
      R"({"op":"stream_result","stream":)" + std::to_string(stream) + "}"));
  ASSERT_TRUE(summary.get("ok")->as_bool());
  EXPECT_EQ(summary.get("steps")->as_uint(), 20u);
  EXPECT_GE(summary.get("resolves")->as_uint(), 2u);  // steps:8 over 20 steps
  EXPECT_FALSE(summary.get("poisoned")->as_bool());
  EXPECT_NE(summary.get("published_cost"), nullptr);
}

TEST(SolveService, GracefulDrainLosesNoAcceptedJob) {
  ServiceConfig config = small_config();
  config.workers = 1;  // one worker: jobs queue up, the drain has work left
  SolveService service(std::move(config));

  constexpr int kClients = 6;
  std::atomic<int> documents{0};
  std::atomic<int> rejections{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &documents, &rejections, c] {
      for (int i = 0; i < 4; ++i) {
        const std::string response = service.handle_line(
            solve_line("drain", static_cast<std::uint64_t>(c * 10 + i)));
        const JsonValue doc = parse_json(response);
        if (doc.get("schema")->as_string() == "hyperrec-batch-result") {
          documents.fetch_add(1);
        } else {
          rejections.fetch_add(1);
          EXPECT_NE(doc.get("reject"), nullptr) << response;
        }
      }
    });
  }
  // Shut down while requests are in flight: every admitted job must still
  // be answered with a full document, never dropped.
  std::this_thread::sleep_for(std::chrono::milliseconds{30});
  service.shutdown();
  for (std::thread& client : clients) client.join();

  const JsonValue statz = parse_json(service.statz_json());
  const JsonValue& requests = *statz.get("requests");
  EXPECT_EQ(requests.get("received")->as_uint(),
            requests.get("admitted")->as_uint() +
                requests.get("rejected_rate")->as_uint() +
                requests.get("rejected_backpressure")->as_uint() +
                requests.get("rejected_draining")->as_uint());
  // Accepted == answered-with-document: nothing admitted was lost.
  EXPECT_EQ(requests.get("admitted")->as_uint(),
            requests.get("completed")->as_uint() +
                requests.get("failed")->as_uint());
  EXPECT_EQ(static_cast<std::uint64_t>(documents.load()),
            requests.get("admitted")->as_uint());
  EXPECT_EQ(static_cast<std::uint64_t>(documents.load() + rejections.load()),
            requests.get("received")->as_uint());
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_TRUE(statz.get("draining")->as_bool());

  // Draining is sticky: post-shutdown requests are rejected, and a second
  // shutdown() is a no-op.
  const JsonValue late = parse_json(service.handle_line(solve_line("x", 1)));
  EXPECT_EQ(late.get("reject")->as_string(), "draining");
  service.shutdown();
}

TEST(SolveService, StatzCarriesSolverWinsAndLatency) {
  SolveService service(small_config());
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    (void)service.handle_line(solve_line("t", seed));
  }
  const JsonValue statz = parse_json(service.statz_json());
  std::uint64_t wins = 0;
  for (const JsonValue& row : statz.get("solvers")->as_array()) {
    wins += row.get("wins")->as_uint();
  }
  EXPECT_EQ(wins, 3u);
  EXPECT_EQ(statz.get("latency")->get("solve")->get("count")->as_uint(), 3u);
  EXPECT_GE(statz.get("latency")->get("solve")->get("p99_us")->as_uint(),
            statz.get("latency")->get("solve")->get("p50_us")->as_uint());
  EXPECT_EQ(statz.get("queue")->get("depth")->as_uint(), 0u);
}

TEST(SolveService, StatzAggregatesCertificates) {
  // certify defaults on, so every completed offline solve lands in the
  // certificates block; the averaged gap is a finite non-negative percent.
  SolveService service(small_config());
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    (void)service.handle_line(solve_line("t", seed));
  }
  const JsonValue statz = parse_json(service.statz_json());
  const JsonValue* certs = statz.get("certificates");
  ASSERT_NE(certs, nullptr);
  EXPECT_EQ(certs->get("count")->as_uint(), 3u);
  EXPECT_GE(certs->get("gap_avg_pct")->as_double(), 0.0);
  EXPECT_GE(certs->get("gap_max_pct")->as_double(),
            certs->get("gap_avg_pct")->as_double());

  ServiceConfig uncertified = small_config();
  uncertified.certify = false;
  SolveService plain(uncertified);
  (void)plain.handle_line(solve_line("t", 0));
  const JsonValue off = parse_json(plain.statz_json());
  EXPECT_EQ(off.get("certificates")->get("count")->as_uint(), 0u);
}

TEST(SolveService, ConcurrentStreamsWinsAndStatzStayConsistent) {
  // Regression for the guarded-field sweep: the stream registry (behind a
  // reader/writer SharedMutex) and the solver-win tallies (behind their own
  // Mutex) are hammered from concurrent opens, appends, solves and statz
  // polls.  Every acquisition runs through the annotated wrappers, so this
  // doubles as a lock-order workload; the bookkeeping must balance exactly
  // once the dust settles.
  SolveService service(small_config());

  constexpr int kThreads = 4;
  constexpr int kSolvesPerThread = 3;
  std::atomic<bool> stop{false};
  std::thread statz_poller([&]() {
    std::uint64_t last_wins = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const JsonValue statz = parse_json(service.statz_json());
      std::uint64_t wins = 0;
      for (const JsonValue& row : statz.get("solvers")->as_array()) {
        wins += row.get("wins")->as_uint();
      }
      // Wins only ever grow, and never past the work actually issued.
      EXPECT_GE(wins, last_wins);
      EXPECT_LE(wins,
                static_cast<std::uint64_t>(kThreads * kSolvesPerThread));
      last_wins = wins;
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, t]() {
      const JsonValue opened = parse_json(service.handle_line(
          R"({"op":"stream_open","tenant":"w","universes":[5,5]})"));
      ASSERT_TRUE(opened.get("ok")->as_bool());
      const std::uint64_t stream = opened.get("stream")->as_uint();
      for (int i = 0; i < 12; ++i) {
        const std::string append =
            R"({"op":"stream_append","stream":)" + std::to_string(stream) +
            R"(,"step":[{"bits":[)" + std::to_string((t + i) % 5) +
            R"(]},{"bits":[)" + std::to_string((t + i + 2) % 5) + "]}]}";
        ASSERT_TRUE(
            parse_json(service.handle_line(append)).get("ok")->as_bool());
      }
      for (int i = 0; i < kSolvesPerThread; ++i) {
        const JsonValue doc = parse_json(service.handle_line(solve_line(
            "w", static_cast<std::uint64_t>(t * 100 + i))));
        EXPECT_EQ(doc.get("schema")->as_string(), "hyperrec-batch-result");
      }
      const JsonValue summary = parse_json(service.handle_line(
          R"({"op":"stream_result","stream":)" + std::to_string(stream) +
          "}"));
      ASSERT_TRUE(summary.get("ok")->as_bool());
      EXPECT_EQ(summary.get("steps")->as_uint(), 12u);
    });
  }
  for (std::thread& worker : workers) worker.join();
  stop.store(true, std::memory_order_release);
  statz_poller.join();

  const JsonValue statz = parse_json(service.statz_json());
  std::uint64_t wins = 0;
  for (const JsonValue& row : statz.get("solvers")->as_array()) {
    wins += row.get("wins")->as_uint();
  }
  EXPECT_EQ(wins, static_cast<std::uint64_t>(kThreads * kSolvesPerThread));
  EXPECT_EQ(statz.get("fleet")->get("streams")->as_uint(),
            static_cast<std::uint64_t>(kThreads));
}

}  // namespace
}  // namespace hyperrec::service
