// Wire protocol: request parsing (strict — malformed requests throw with a
// message naming the problem), CLI-identical job derivation, and the
// service response line shapes.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "service/json.hpp"
#include "support/ensure.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace hyperrec::service {
namespace {

TEST(Protocol, ParsesAGeneratedSolveRequest) {
  const Request request = parse_request(
      R"({"op":"solve","tenant":"acme","priority":7,"id":"r1",)"
      R"("job":{"workload":"phased","tasks":3,"steps":48,"universe":16,)"
      R"("seed":42,"stream":2}})");
  EXPECT_EQ(request.op, Op::kSolve);
  EXPECT_EQ(request.tenant, "acme");
  EXPECT_EQ(request.priority, 7u);
  EXPECT_EQ(request.id, "r1");
  EXPECT_EQ(request.job.workload, "phased");
  EXPECT_EQ(request.job.tasks, 3u);
  EXPECT_EQ(request.job.steps, 48u);
  EXPECT_EQ(request.job.universe, 16u);
  EXPECT_EQ(request.job.seed, 42u);
  EXPECT_EQ(request.job.stream, 2u);
  EXPECT_EQ(request.job.name, "phased-2");  // CLI naming convention
  EXPECT_FALSE(request.job.inline_trace.has_value());
}

TEST(Protocol, DefaultsMatchTheCli) {
  const Request request =
      parse_request(R"({"op":"solve","job":{"workload":"random"}})");
  EXPECT_EQ(request.tenant, "default");
  EXPECT_EQ(request.priority, 0u);
  EXPECT_EQ(request.job.tasks, 4u);
  EXPECT_EQ(request.job.steps, 96u);
  EXPECT_EQ(request.job.universe, 32u);
  EXPECT_EQ(request.job.seed, 1u);
  EXPECT_EQ(request.job.name, "random-0");
}

TEST(Protocol, GeneratedJobIsBitIdenticalToDirectDerivation) {
  const Request request = parse_request(
      R"({"op":"solve","job":{"workload":"bursty","tasks":2,"steps":30,)"
      R"("universe":10,"seed":9,"stream":3}})");
  const engine::BatchJob job = make_job(request.job);

  // The reference: exactly what hyperrec_cli does for job 3 of a
  // --workload=bursty --seed=9 batch.
  Xoshiro256 root(9);
  Xoshiro256 rng = root.split(3);
  const MultiTaskTrace expected =
      workload::make_multi_family("bursty", 2, 30, 10, rng);

  ASSERT_EQ(job.trace.task_count(), expected.task_count());
  ASSERT_EQ(job.trace.steps(), expected.steps());
  for (std::size_t j = 0; j < expected.task_count(); ++j) {
    const TaskTrace& got = job.trace.task(j);
    const TaskTrace& want = expected.task(j);
    ASSERT_EQ(got.local_universe(), want.local_universe());
    for (std::size_t t = 0; t < expected.steps(); ++t) {
      EXPECT_EQ(got.at(t).local, want.at(t).local)
          << "task " << j << " step " << t;
      EXPECT_EQ(got.at(t).private_demand, want.at(t).private_demand);
    }
  }
  EXPECT_EQ(job.name, "bursty-3");
  ASSERT_EQ(job.machine.task_count(), 2u);
}

TEST(Protocol, ParsesAnInlineTrace) {
  const Request request = parse_request(
      R"({"op":"solve","job":{"name":"handmade","trace":{)"
      R"("universes":[4,3],)"
      R"("steps":[[{"bits":[0,2]},{"bits":[1],"demand":2}],)"
      R"(         [{"bits":[3]},{"bits":[0]}]]}}})");
  ASSERT_TRUE(request.job.inline_trace.has_value());
  const MultiTaskTrace& trace = *request.job.inline_trace;
  ASSERT_EQ(trace.task_count(), 2u);
  ASSERT_EQ(trace.steps(), 2u);
  EXPECT_EQ(trace.task(0).local_universe(), 4u);
  EXPECT_EQ(trace.task(1).local_universe(), 3u);
  EXPECT_TRUE(trace.task(0).at(0).local.test(0));
  EXPECT_TRUE(trace.task(0).at(0).local.test(2));
  EXPECT_FALSE(trace.task(0).at(0).local.test(1));
  EXPECT_EQ(trace.task(1).at(0).private_demand, 2u);
  EXPECT_EQ(request.job.name, "handmade");
  const engine::BatchJob job = make_job(request.job);
  EXPECT_EQ(job.machine.task_count(), 2u);
}

TEST(Protocol, ParsesStreamOps) {
  const Request open = parse_request(
      R"({"op":"stream_open","tenant":"s","universes":[6,6],)"
      R"("trigger":"steps:4"})");
  EXPECT_EQ(open.op, Op::kStreamOpen);
  EXPECT_EQ(open.universes, (std::vector<std::size_t>{6, 6}));
  EXPECT_EQ(open.trigger, "steps:4");

  const Request append = parse_request(
      R"({"op":"stream_append","stream":3,)"
      R"("step":[{"bits":[0,5]},{"bits":[],"demand":1}]})");
  EXPECT_EQ(append.op, Op::kStreamAppend);
  EXPECT_EQ(append.stream, 3u);
  ASSERT_EQ(append.step.size(), 2u);
  EXPECT_EQ(append.step[0].bits, (std::vector<std::size_t>{0, 5}));
  EXPECT_TRUE(append.step[1].bits.empty());
  EXPECT_EQ(append.step[1].demand, 1u);

  EXPECT_EQ(parse_request(R"({"op":"stream_flush","stream":1})").op,
            Op::kStreamFlush);
  EXPECT_EQ(parse_request(R"({"op":"stream_result","stream":1})").op,
            Op::kStreamResult);
  EXPECT_EQ(parse_request(R"({"op":"statz"})").op, Op::kStatz);
  EXPECT_EQ(parse_request(R"({"op":"shutdown"})").op, Op::kShutdown);
}

TEST(Protocol, MalformedRequestsThrowNamingTheProblem) {
  const std::pair<const char*, const char*> cases[] = {
      {"", "JSON"},
      {"not json", "JSON"},
      {R"({"op":"solve","job":{"workload":"phased"})", "JSON"},  // truncated
      {R"([1,2,3])", "object"},
      {R"({})", "op"},
      {R"({"op":"frobnicate"})", "unknown op"},
      {R"({"op":"solve"})", "job"},
      {R"({"op":"solve","job":{}})", "workload"},
      {R"({"op":"solve","job":{"workload":"no-such-family"}})",
       "no-such-family"},
      {R"({"op":"solve","job":{"workload":"phased","tasks":0}})",
       "at least 1"},
      {R"({"op":"solve","tenant":"","job":{"workload":"phased"}})",
       "tenant"},
      {R"({"op":"solve","priority":-1,"job":{"workload":"phased"}})",
       "non-negative"},
      {R"({"op":"solve","priority":"high","job":{"workload":"phased"}})",
       "integer"},
      {R"({"op":"solve","job":{"trace":{"universes":[],"steps":[]}}})",
       "universes"},
      {R"({"op":"solve","job":{"trace":{"universes":[4],"steps":[]}}})",
       "at least one step"},
      {R"({"op":"solve","job":{"trace":{"universes":[4],)"
       R"("steps":[[{"bits":[4]}]]}}})",
       "outside"},
      {R"({"op":"solve","job":{"trace":{"universes":[4,4],)"
       R"("steps":[[{"bits":[0]}]]}}})",
       "per task"},
      {R"({"op":"stream_open"})", "universes"},
      {R"({"op":"stream_append","stream":0})", "step"},
      {R"({"op":"stream_append","stream":0,"step":[]})", "non-empty"},
      {R"({"op":"stream_append","stream":0,"step":[{}]})", "bits"},
      {R"({"op":"solve","job":{"workload":"phased"},"op":"statz"})",
       "duplicate"},  // duplicate keys are a parse error, not last-wins
  };
  for (const auto& [line, expected] : cases) {
    try {
      (void)parse_request(line);
      FAIL() << "no exception for: " << line;
    } catch (const PreconditionError& error) {
      EXPECT_NE(std::string(error.what()).find(expected), std::string::npos)
          << "message for `" << line << "` was: " << error.what();
    }
  }
}

TEST(Protocol, DeeplyNestedJsonIsRejectedNotAStackOverflow) {
  // The parser reads untrusted socket input; a '[[[[…' line must come back
  // as a parse error, not recurse the daemon into a stack overflow.
  const std::string open(100000, '[');
  try {
    (void)parse_json(open + std::string(100000, ']'));
    FAIL() << "no exception for 100k-deep nesting";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("nesting"), std::string::npos)
        << "message was: " << error.what();
  }
  // Unbalanced variant dies on depth too (never on end-of-input first).
  EXPECT_THROW((void)parse_json(open), PreconditionError);
  // Mixed object/array nesting counts both container kinds.
  std::string mixed;
  for (int i = 0; i < 200; ++i) mixed += R"({"k":[)";
  EXPECT_THROW((void)parse_json(mixed), PreconditionError);

  // Sane depth stays parseable: 63 levels is comfortably within the limit.
  std::string sane(63, '[');
  sane += std::string(63, ']');
  EXPECT_EQ(parse_json(sane).as_array().size(), 1u);
}

TEST(Protocol, ResponseLinesAreWellFormedJson) {
  const std::string error = error_line("r1", "bad \"thing\"\n");
  const JsonValue error_doc = parse_json(error);
  EXPECT_EQ(error_doc.get("schema")->as_string(), "hyperrec-service");
  EXPECT_EQ(error_doc.get("id")->as_string(), "r1");
  EXPECT_FALSE(error_doc.get("ok")->as_bool());
  EXPECT_EQ(error_doc.get("error")->as_string(), "bad \"thing\"\n");

  const JsonValue reject = parse_json(reject_line(
      "r2", RejectReason::kRate, std::chrono::milliseconds{250}));
  EXPECT_EQ(reject.get("reject")->as_string(), "rate");
  EXPECT_EQ(reject.get("retry_after_ms")->as_int(), 250);

  const JsonValue ack = parse_json(ack_line(""));
  EXPECT_TRUE(ack.get("ok")->as_bool());

  const JsonValue opened = parse_json(stream_opened_line("r3", 17));
  EXPECT_EQ(opened.get("stream")->as_uint(), 17u);
}

}  // namespace
}  // namespace hyperrec::service
