// Admission control: token buckets, the tenant registry's accounting
// identity, and the bounded priority queue's ordering/drain semantics.
#include "service/admission.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace hyperrec::service {
namespace {

using Clock = TokenBucket::Clock;
using std::chrono::milliseconds;
using std::chrono::seconds;

TEST(TokenBucket, UnlimitedQuotaAlwaysAdmits) {
  TokenBucket bucket(QuotaConfig{0.0, 1.0});
  const Clock::time_point now = Clock::now();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bucket.try_acquire(now).admitted);
  }
}

TEST(TokenBucket, BurstThenRateRejectionWithRetryAfter) {
  TokenBucket bucket(QuotaConfig{2.0, 3.0});
  const Clock::time_point t0 = Clock::now();
  // Burst of 3 at the same instant, then empty.
  EXPECT_TRUE(bucket.try_acquire(t0).admitted);
  EXPECT_TRUE(bucket.try_acquire(t0).admitted);
  EXPECT_TRUE(bucket.try_acquire(t0).admitted);
  const Admission rejected = bucket.try_acquire(t0);
  EXPECT_FALSE(rejected.admitted);
  // 2 tokens/s: one token refills in 500 ms.
  EXPECT_GE(rejected.retry_after, milliseconds{1});
  EXPECT_LE(rejected.retry_after, milliseconds{500});
  // Sleeping exactly retry_after must admit, never re-reject at 0 ms.
  EXPECT_TRUE(bucket.try_acquire(t0 + rejected.retry_after).admitted);
}

TEST(TokenBucket, RefillIsCappedAtBurst) {
  TokenBucket bucket(QuotaConfig{10.0, 2.0});
  const Clock::time_point t0 = Clock::now();
  EXPECT_TRUE(bucket.try_acquire(t0).admitted);
  // An hour of idle refill still caps at burst = 2.
  const Clock::time_point t1 = t0 + seconds{3600};
  EXPECT_TRUE(bucket.try_acquire(t1).admitted);
  EXPECT_TRUE(bucket.try_acquire(t1).admitted);
  EXPECT_FALSE(bucket.try_acquire(t1).admitted);
}

TEST(TokenBucket, BurstBelowOneStillAdmitsOneRequest) {
  TokenBucket bucket(QuotaConfig{1.0, 0.0});  // burst clamps up to 1
  const Clock::time_point t0 = Clock::now();
  EXPECT_TRUE(bucket.try_acquire(t0).admitted);
  EXPECT_FALSE(bucket.try_acquire(t0).admitted);
}

TEST(TenantRegistry, AccountingIdentityHoldsAcrossVerdicts) {
  TenantRegistry registry(QuotaConfig{0.0, 1.0},
                          {{"limited", QuotaConfig{0.001, 1.0}}});
  const Clock::time_point now = Clock::now();

  // default-quota tenant: 3 admitted (bucket + queue), 1 backpressure.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(registry.admit("acme", now).admitted);
    registry.record_admitted("acme");
  }
  ASSERT_TRUE(registry.admit("acme", now).admitted);
  registry.record_backpressure("acme");
  registry.record_completed("acme");
  registry.record_completed("acme");
  registry.record_failed("acme");

  // limited tenant: 1 admitted, then rate-rejected, then a draining turn.
  ASSERT_TRUE(registry.admit("limited", now).admitted);
  registry.record_admitted("limited");
  EXPECT_FALSE(registry.admit("limited", now).admitted);
  registry.record_draining("limited");

  const auto rows = registry.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& [name, counters] : rows) {
    EXPECT_EQ(counters.received,
              counters.admitted + counters.rejected_rate +
                  counters.rejected_backpressure + counters.rejected_draining)
        << "identity broken for tenant " << name;
  }
  EXPECT_EQ(rows[0].first, "acme");
  EXPECT_EQ(rows[0].second.received, 4u);
  EXPECT_EQ(rows[0].second.admitted, 3u);
  EXPECT_EQ(rows[0].second.rejected_backpressure, 1u);
  EXPECT_EQ(rows[0].second.completed, 2u);
  EXPECT_EQ(rows[0].second.failed, 1u);
  EXPECT_EQ(rows[1].first, "limited");
  EXPECT_EQ(rows[1].second.received, 3u);
  EXPECT_EQ(rows[1].second.admitted, 1u);
  EXPECT_EQ(rows[1].second.rejected_rate, 1u);
  EXPECT_EQ(rows[1].second.rejected_draining, 1u);
}

TEST(TenantRegistry, OverrideQuotaBindsToTheNamedTenantOnly) {
  TenantRegistry registry(QuotaConfig{0.0, 1.0},
                          {{"limited", QuotaConfig{0.001, 1.0}}});
  const Clock::time_point now = Clock::now();
  ASSERT_TRUE(registry.admit("limited", now).admitted);
  EXPECT_FALSE(registry.admit("limited", now).admitted);
  // Everyone else inherits the unlimited default.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(registry.admit("other", now).admitted);
  }
}

TEST(BoundedPriorityQueue, HigherPriorityPopsFirstFifoWithin) {
  BoundedPriorityQueue<int> queue(16);
  ASSERT_TRUE(queue.try_push(10, 0));
  ASSERT_TRUE(queue.try_push(20, 5));
  ASSERT_TRUE(queue.try_push(21, 5));
  ASSERT_TRUE(queue.try_push(30, 9));
  EXPECT_EQ(queue.pop(), 30);  // highest priority
  EXPECT_EQ(queue.pop(), 20);  // FIFO within priority 5
  EXPECT_EQ(queue.pop(), 21);
  EXPECT_EQ(queue.pop(), 10);
}

TEST(BoundedPriorityQueue, FullQueueRejectsWithoutBlocking) {
  BoundedPriorityQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1, 0));
  EXPECT_TRUE(queue.try_push(2, 0));
  EXPECT_FALSE(queue.try_push(3, 99));  // priority does not bypass the bound
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.peak_depth(), 2u);
  ASSERT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.try_push(3, 0));
}

TEST(BoundedPriorityQueue, CloseDrainsAcceptedItemsThenSignalsEnd) {
  BoundedPriorityQueue<int> queue(8);
  ASSERT_TRUE(queue.try_push(1, 0));
  ASSERT_TRUE(queue.try_push(2, 0));
  queue.close();
  EXPECT_FALSE(queue.try_push(3, 0));  // closed: no new admissions
  // ...but everything accepted before close() still pops (drain), and only
  // then do waiters see the end-of-queue signal.
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedPriorityQueue, CloseWakesBlockedConsumers) {
  BoundedPriorityQueue<int> queue(4);
  std::atomic<int> finished{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&queue, &finished] {
      while (queue.pop().has_value()) {
      }
      finished.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(milliseconds{20});
  queue.close();
  for (std::thread& consumer : consumers) consumer.join();
  EXPECT_EQ(finished.load(), 3);
}

TEST(BoundedPriorityQueue, ConcurrentProducersConsumersLoseNothing) {
  BoundedPriorityQueue<std::uint64_t> queue(32);
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 500;
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> pushed_sum{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (auto value = queue.pop()) {
        popped_sum.fetch_add(*value);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value =
            static_cast<std::uint64_t>(p) * kPerProducer + i + 1;
        while (!queue.try_push(value, i % 3)) {
          std::this_thread::yield();  // backpressure: retry like a client
        }
        pushed_sum.fetch_add(value);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  queue.close();
  for (std::thread& consumer : consumers) consumer.join();
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_LE(queue.peak_depth(), queue.capacity());
}

}  // namespace
}  // namespace hyperrec::service
