// SocketServer transport tests: round-trips over a real AF_UNIX socket,
// handler-requested shutdown unblocking wait()/wait_for(), and — the
// regression targets for the guarded-field sweep — stop() draining the
// per-connection counter before reclaiming the listener, and the accept
// loop working off a by-value fd snapshot so no unlocked read of the
// guarded listen_fd_ member exists.
#include "service/socket_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace hyperrec::service {
namespace {

std::string test_socket_path(const std::string& tag) {
  return "/tmp/hyperrec-test-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

/// Minimal blocking line client for the tests.
class LineClient {
 public:
  explicit LineClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    // The acceptor may still be between listen() and accept(); retry briefly.
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)) == 0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  /// Sends bytes as-is — no newline, so the server parks in recv() on them.
  bool send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads until '\n' (stripped) or the peer closes (returns false).
  bool recv_line(std::string* line) {
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[256];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t newline = buffer_.find('\n');
    *line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return true;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

TEST(SocketServer, EchoRoundTripInOrder) {
  const std::string path = test_socket_path("echo");
  SocketServer server(path, [](const std::string& line) {
    return SocketServer::LineResponse{"echo:" + line, false};
  });

  LineClient client(path);
  ASSERT_TRUE(client.connected());
  std::string reply;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.send_line("ping-" + std::to_string(i)));
    ASSERT_TRUE(client.recv_line(&reply));
    EXPECT_EQ(reply, "echo:ping-" + std::to_string(i));
  }
  server.stop();
}

TEST(SocketServer, WaitForTimesOutWhileRunning) {
  const std::string path = test_socket_path("waitfor");
  SocketServer server(path, [](const std::string& line) {
    return SocketServer::LineResponse{line, false};
  });
  EXPECT_FALSE(server.wait_for(std::chrono::milliseconds{50}));
  server.stop();
  EXPECT_TRUE(server.wait_for(std::chrono::milliseconds{50}));
}

TEST(SocketServer, HandlerStopUnblocksWaiters) {
  // The guarded stopped_ flag must flip exactly once and wake every waiter
  // when a handler requests shutdown — the drain path the daemon takes.
  const std::string path = test_socket_path("stopline");
  SocketServer server(path, [](const std::string& line) {
    return SocketServer::LineResponse{"bye", line == "quit"};
  });

  std::atomic<int> woken{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&]() {
      server.wait();
      woken.fetch_add(1, std::memory_order_relaxed);
    });
  }

  LineClient client(path);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line("quit"));
  std::string reply;
  ASSERT_TRUE(client.recv_line(&reply));
  EXPECT_EQ(reply, "bye");

  for (std::thread& w : waiters) w.join();
  EXPECT_EQ(woken.load(), 3);
  server.stop();  // idempotent after handler-requested shutdown
}

TEST(SocketServer, StopDrainsEveryActiveConnection) {
  // Regression for the per-connection counter: stop() must block until
  // active_connections_ reaches zero, so when it returns no connection
  // thread can still be touching server state.  Clients park mid-request
  // (connected, no newline sent) to keep their connection threads alive in
  // recv() when stop() runs.
  const std::string path = test_socket_path("drain");
  std::atomic<int> handled{0};
  SocketServer server(path, [&](const std::string& line) {
    handled.fetch_add(1, std::memory_order_relaxed);
    return SocketServer::LineResponse{line, false};
  });

  constexpr int kClients = 8;
  std::vector<std::unique_ptr<LineClient>> clients;
  std::string reply;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<LineClient>(path));
    ASSERT_TRUE(clients.back()->connected());
    // One full round-trip proves the connection thread is up ...
    ASSERT_TRUE(clients.back()->send_line("warm"));
    ASSERT_TRUE(clients.back()->recv_line(&reply));
    // ... then a half-line (no newline) parks it inside recv().
    ASSERT_TRUE(clients.back()->send_raw("never-terminated partial"));
  }
  EXPECT_EQ(handled.load(), kClients);

  server.stop();
  // stop() returned: the drain loop saw the counter hit zero, so every
  // parked connection was shut down and untracked.  A second stop() must
  // find nothing left to do.
  server.stop();
  // Every parked client observes its connection closing (recv -> 0).
  for (const auto& client : clients) {
    EXPECT_FALSE(client->recv_line(&reply));
  }
  EXPECT_EQ(handled.load(), kClients)
      << "the parked bytes held no full line, so no extra handler call";
}

TEST(SocketServer, AcceptsNewConnectionsWhileOthersAreParked) {
  // The accept loop runs off its by-value fd and must keep admitting
  // clients while earlier connections sit in recv(); the connection
  // bookkeeping is per-fd, not global.
  const std::string path = test_socket_path("parked");
  SocketServer server(path, [](const std::string& line) {
    return SocketServer::LineResponse{"ok:" + line, false};
  });

  LineClient parked(path);
  ASSERT_TRUE(parked.connected());  // never sends: parked in recv()

  std::string reply;
  for (int i = 0; i < 3; ++i) {
    LineClient active(path);
    ASSERT_TRUE(active.connected());
    std::string request = "n";
    request += std::to_string(i);
    ASSERT_TRUE(active.send_line(request));
    ASSERT_TRUE(active.recv_line(&reply));
    std::string expected = "ok:";
    expected += request;
    EXPECT_EQ(reply, expected);
  }
  server.stop();
  EXPECT_FALSE(parked.recv_line(&reply)) << "stop() shut the parked fd";
}

}  // namespace
}  // namespace hyperrec::service
