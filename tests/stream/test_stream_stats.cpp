// Incremental trace stats: bit-identical to a from-scratch rebuild at every
// appended step (word-seam universes included), naive-oracle agreement on
// random ranges, bulk-append rebuild fallback, and contract violations.
#include "streaming/stream_stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "model/trace_stats.hpp"
#include "support/ensure.hpp"
#include "support/rng.hpp"

namespace hyperrec::streaming {
namespace {

ContextRequirement random_requirement(std::size_t universe, Xoshiro256& rng,
                                      double density = 0.3,
                                      std::uint32_t max_demand = 5) {
  ContextRequirement req{DynamicBitset(universe), 0};
  for (std::size_t b = 0; b < universe; ++b) {
    if (rng.flip(density)) req.local.set(b);
  }
  req.private_demand =
      static_cast<std::uint32_t>(rng.uniform(max_demand + 1));
  return req;
}

TEST(TaskStreamStats, AppendIsBitIdenticalToRebuildAtEveryStep) {
  // Universe 0 (no words), 1, the 63/64/65 word seams, and a multi-word
  // case; every appended step is checked against a fresh offline build.
  for (const std::size_t universe : {0ul, 1ul, 63ul, 64ul, 65ul, 300ul}) {
    Xoshiro256 rng(0x5EED0 + universe);
    TaskTrace trace(universe);
    TaskStreamStats stream(universe);
    for (std::size_t i = 0; i < 33; ++i) {
      const ContextRequirement req = random_requirement(universe, rng);
      trace.push_back(req);
      stream.append(req);
      ASSERT_EQ(stream.steps(), i + 1);
      const TaskTraceStats full(trace);
      ASSERT_NO_THROW(stream.assert_consistent_with(full))
          << "universe " << universe << " step " << i;
    }
  }
}

TEST(TaskStreamStats, MatchesNaiveOraclesOnRandomRanges) {
  const std::size_t universe = 65;
  Xoshiro256 rng(0xACE);
  TaskTrace trace(universe);
  TaskStreamStats stream(universe);
  for (std::size_t i = 0; i < 48; ++i) {
    const ContextRequirement req = random_requirement(universe, rng, 0.2, 9);
    trace.push_back(req);
    stream.append(req);
  }
  for (int check = 0; check < 200; ++check) {
    const std::size_t lo = rng.uniform(trace.size() + 1);
    const std::size_t hi = lo + rng.uniform(trace.size() + 1 - lo);
    EXPECT_EQ(stream.local_union(lo, hi), trace.local_union_naive(lo, hi));
    EXPECT_EQ(stream.local_union_count(lo, hi),
              trace.local_union_naive(lo, hi).count());
    EXPECT_EQ(stream.max_private_demand(lo, hi),
              trace.max_private_demand_naive(lo, hi));
    const std::size_t b = rng.uniform(universe);
    std::uint32_t count = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (trace.at(i).local.test(b)) ++count;
    }
    EXPECT_EQ(stream.switch_step_count(b, lo, hi), count);
    EXPECT_EQ(stream.switch_present(b, lo, hi), count > 0);
  }
}

TEST(TaskStreamStats, BulkBuildEqualsAppendedBuild) {
  const std::size_t universe = 64;
  Xoshiro256 rng(0xB17);
  TaskTrace trace(universe);
  TaskStreamStats appended(universe);
  for (std::size_t i = 0; i < 40; ++i) {
    const ContextRequirement req = random_requirement(universe, rng, 0.15);
    trace.push_back(req);
    appended.append(req);
  }
  const TaskStreamStats bulk(trace);
  const TaskTraceStats full(trace);
  ASSERT_NO_THROW(bulk.assert_consistent_with(full));
  ASSERT_NO_THROW(appended.assert_consistent_with(full));
  // Both paths discover switches in first-appearance order.
  EXPECT_EQ(bulk.support(), appended.support());
}

TEST(TaskStreamStats, EmptyRangesAndEmptyStream) {
  TaskStreamStats stream(10);
  EXPECT_EQ(stream.steps(), 0u);
  EXPECT_EQ(stream.local_union(0, 0), DynamicBitset(10));
  EXPECT_EQ(stream.local_union_count(0, 0), 0u);
  EXPECT_EQ(stream.max_private_demand(0, 0), 0u);
  EXPECT_FALSE(stream.switch_present(3, 0, 0));
  EXPECT_THROW(stream.local_union(0, 1), PreconditionError);

  ContextRequirement req{DynamicBitset(10), 7};
  req.local.set(2);
  stream.append(req);
  EXPECT_EQ(stream.local_union_count(0, 1), 1u);
  EXPECT_EQ(stream.max_private_demand(0, 1), 7u);
  EXPECT_THROW(static_cast<void>(stream.switch_step_count(10, 0, 1)),
               PreconditionError);
  ContextRequirement wrong{DynamicBitset(9), 0};
  EXPECT_THROW(stream.append(wrong), PreconditionError);
}

TEST(TraceBuilderStats, PerStepAppendStaysConsistentWithRebuild) {
  const std::vector<std::size_t> universes = {63, 64, 65};
  Xoshiro256 rng(0xD00D);
  TraceBuilderStats builder(universes);
  for (std::size_t i = 0; i < 24; ++i) {
    std::vector<ContextRequirement> step;
    for (const std::size_t universe : universes) {
      step.push_back(random_requirement(universe, rng, 0.25, 6));
    }
    std::uint64_t expected_sum = 0;
    for (const ContextRequirement& req : step) {
      expected_sum += req.private_demand;
    }
    builder.append_step(std::move(step));
    ASSERT_EQ(builder.steps(), i + 1);
    EXPECT_EQ(builder.step_demand_sum(i), expected_sum);
    ASSERT_NO_THROW(builder.assert_consistent_with_rebuild()) << "step " << i;
  }
  EXPECT_EQ(builder.rebuild_count(), 0u);
  EXPECT_EQ(builder.trace().steps(), 24u);

  // Range maxima agree with a scan.
  for (std::size_t lo = 0; lo <= builder.steps(); ++lo) {
    for (std::size_t hi = lo; hi <= builder.steps(); ++hi) {
      std::uint64_t expected = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        expected = std::max(expected, builder.step_demand_sum(i));
      }
      EXPECT_EQ(builder.max_step_demand_sum(lo, hi), expected);
    }
  }
}

TEST(TraceBuilderStats, BulkAppendFallsBackToRebuildAtThreshold) {
  const std::vector<std::size_t> universes = {32, 32};
  Xoshiro256 rng(0xFA11);

  auto make_chunk = [&](std::size_t count) {
    std::vector<std::vector<ContextRequirement>> chunk;
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<ContextRequirement> step;
      for (const std::size_t universe : universes) {
        step.push_back(random_requirement(universe, rng));
      }
      chunk.push_back(std::move(step));
    }
    return chunk;
  };

  TraceBuilderConfig config;
  config.rebuild_threshold = 8;
  TraceBuilderStats builder(universes, config);
  builder.append_steps(make_chunk(7));  // below threshold: per-step appends
  EXPECT_EQ(builder.rebuild_count(), 0u);
  EXPECT_EQ(builder.steps(), 7u);
  builder.append_steps(make_chunk(8));  // at threshold: one full rebuild
  EXPECT_EQ(builder.rebuild_count(), 1u);
  EXPECT_EQ(builder.steps(), 15u);
  ASSERT_NO_THROW(builder.assert_consistent_with_rebuild());

  // Appends after a rebuild continue incrementally and stay consistent.
  builder.append_steps(make_chunk(3));
  EXPECT_EQ(builder.rebuild_count(), 1u);
  EXPECT_EQ(builder.steps(), 18u);
  ASSERT_NO_THROW(builder.assert_consistent_with_rebuild());

  // Threshold 0 disables the fallback outright.
  TraceBuilderConfig no_fallback;
  no_fallback.rebuild_threshold = 0;
  TraceBuilderStats incremental(universes, no_fallback);
  incremental.append_steps(make_chunk(20));
  EXPECT_EQ(incremental.rebuild_count(), 0u);
  ASSERT_NO_THROW(incremental.assert_consistent_with_rebuild());
}

TEST(TraceBuilderStats, AdoptsAnExistingTraceAndKeepsGrowing) {
  Xoshiro256 rng(0xADE);
  MultiTaskTrace trace;
  TaskTrace a(16);
  TaskTrace b(5);
  for (std::size_t i = 0; i < 10; ++i) {
    a.push_back(random_requirement(16, rng));
    b.push_back(random_requirement(5, rng));
  }
  trace.add_task(std::move(a));
  trace.add_task(std::move(b));

  TraceBuilderStats builder(std::move(trace));
  EXPECT_EQ(builder.steps(), 10u);
  EXPECT_EQ(builder.rebuild_count(), 0u);
  ASSERT_NO_THROW(builder.assert_consistent_with_rebuild());

  builder.append_step({random_requirement(16, rng), random_requirement(5, rng)});
  EXPECT_EQ(builder.steps(), 11u);
  ASSERT_NO_THROW(builder.assert_consistent_with_rebuild());

  EXPECT_THROW(builder.append_step({random_requirement(16, rng)}),
               PreconditionError);
}

TEST(TraceBuilderStats, RejectsEmptyAndUnsynchronizedConstruction) {
  EXPECT_THROW(TraceBuilderStats(std::vector<std::size_t>{}),
               PreconditionError);
  MultiTaskTrace ragged;
  TaskTrace a(4);
  a.push_back_local(DynamicBitset(4));
  TaskTrace b(4);
  ragged.add_task(std::move(a));
  ragged.add_task(std::move(b));
  EXPECT_THROW(TraceBuilderStats(std::move(ragged)), PreconditionError);
}

}  // namespace
}  // namespace hyperrec::streaming
