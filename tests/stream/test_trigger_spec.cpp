// Strict trigger-spec parsing: every well-formed item lands in the right
// TriggerConfig field, and every malformed spec — unknown keys, typos,
// missing/partial/negative values, values on flag-only keys, duplicates —
// throws loudly instead of silently running the wrong re-solve policy.
#include "streaming/trigger_spec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/ensure.hpp"

namespace hyperrec::streaming {
namespace {

TEST(TriggerSpec, ParsesEveryKindIntoTheRightField) {
  const TriggerConfig trigger =
      parse_trigger_spec("steps:16,spike:2.5,spike-min:3,rent-or-buy,tick:40");
  EXPECT_EQ(trigger.every_steps, 16u);
  EXPECT_DOUBLE_EQ(trigger.spike_factor, 2.5);
  EXPECT_EQ(trigger.spike_min_demand, 3u);
  EXPECT_TRUE(trigger.rent_or_buy);
  EXPECT_EQ(trigger.tick, std::chrono::milliseconds{40});
}

TEST(TriggerSpec, SingleItemSpecsLeaveOtherTriggersAtDefaults) {
  const TriggerConfig trigger = parse_trigger_spec("steps:8");
  EXPECT_EQ(trigger.every_steps, 8u);
  EXPECT_DOUBLE_EQ(trigger.spike_factor, 0.0);
  EXPECT_EQ(trigger.spike_min_demand, TriggerConfig{}.spike_min_demand);
  EXPECT_FALSE(trigger.rent_or_buy);
  EXPECT_EQ(trigger.tick.count(), 0);
}

TEST(TriggerSpec, ZeroValuesAreRejected) {
  // 0 used to mean "disabled", but a disabled trigger is expressed by
  // omitting the key — "steps:0" in a daemon config is always a bug (most
  // often a templating variable that rendered empty-ish), so it throws.
  const std::vector<std::string> zeros = {
      "steps:0", "tick:0", "spike:0", "spike:0.0", "steps:16,tick:0"};
  for (const std::string& spec : zeros) {
    EXPECT_THROW((void)parse_trigger_spec(spec), PreconditionError) << spec;
  }
}

TEST(TriggerSpec, UnknownKeysThrowLoudly) {
  // The motivating bug: a typo'd key used to be silently dropped, so the
  // daemon ran with the wrong re-solve policy and nobody noticed.
  const std::vector<std::string> typos = {
      "spkie:2.0", "step:16", "ticks:40", "steps:16,spkie:2.0", "bogus"};
  for (const std::string& spec : typos) {
    EXPECT_THROW((void)parse_trigger_spec(spec), PreconditionError) << spec;
  }
}

TEST(TriggerSpec, MalformedValuesThrow) {
  const std::vector<std::string> bad = {
      "steps",        // missing value
      "steps:",       // empty value
      "steps:16abc",  // trailing junk (std::stoul used to accept this)
      "steps:-4",     // negative
      "steps: 16",    // embedded space
      "spike",        // missing value
      "spike:",       // empty value
      "spike:fast",   // not a number
      "spike:-1.5",   // negative
      "spike:1e999",  // overflows to inf
      "spike:nan",    // not finite
      "spike:0x1p4",  // hex float (strtod would accept it as 16.0)
      "spike:0X1P4",  // hex float, upper-case prefix/exponent
      "spike-min:",   // empty value
      "spike-min:2x", // trailing junk
      "tick:-5",      // negative (std::stoll used to accept this)
      "tick:5ms",     // trailing junk
      "tick:",        // empty value
  };
  for (const std::string& spec : bad) {
    EXPECT_THROW((void)parse_trigger_spec(spec), PreconditionError) << spec;
  }
}

TEST(TriggerSpec, ValueOnFlagOnlyKeyThrows) {
  // "rent-or-buy:5" used to parse with the value silently dropped.
  EXPECT_THROW((void)parse_trigger_spec("rent-or-buy:5"), PreconditionError);
  EXPECT_THROW((void)parse_trigger_spec("rent-or-buy:"), PreconditionError);
  EXPECT_NO_THROW((void)parse_trigger_spec("rent-or-buy"));
}

TEST(TriggerSpec, DuplicateKeysThrow) {
  EXPECT_THROW((void)parse_trigger_spec("steps:4,steps:8"), PreconditionError);
  EXPECT_THROW((void)parse_trigger_spec("rent-or-buy,rent-or-buy"),
               PreconditionError);
}

TEST(TriggerSpec, EmptySpecAndEmptyItemsThrow) {
  EXPECT_THROW((void)parse_trigger_spec(""), PreconditionError);
  EXPECT_THROW((void)parse_trigger_spec(","), PreconditionError);
  EXPECT_THROW((void)parse_trigger_spec("steps:4,"), PreconditionError);
  EXPECT_THROW((void)parse_trigger_spec(",steps:4"), PreconditionError);
}

TEST(TriggerSpec, ErrorMessagesNameTheOffendingItem) {
  try {
    (void)parse_trigger_spec("steps:16,spkie:2.0");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("spkie"), std::string::npos)
        << error.what();
  }
  try {
    (void)parse_trigger_spec("steps:16abc");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("steps:16abc"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace hyperrec::streaming
