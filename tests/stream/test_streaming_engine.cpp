// StreamingEngine: published-schedule validity at every step, window
// splicing (frozen prefix + fresh suffix), warm starts, cache integration,
// and the BatchEngine streaming-replay plumbing.
#include "streaming/streaming_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "engine/batch_engine.hpp"
#include "model/cost_switch.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace hyperrec::streaming {
namespace {

StreamingConfig fast_config(std::size_t window, std::size_t every_steps) {
  StreamingConfig config;
  config.window = window;
  config.trigger.every_steps = every_steps;
  config.portfolio.solvers = {"aligned-dp", "greedy-w8"};
  return config;
}

TEST(StreamingEngine, PublishedScheduleValidatesAtEveryStep) {
  const std::size_t tasks = 2;
  const std::size_t universe = 12;
  Xoshiro256 rng(0x51E);
  const MultiTaskTrace trace =
      workload::make_multi_family("phased", tasks, 30, universe, rng);
  const MachineSpec machine =
      MachineSpec::local_only(std::vector<std::size_t>(tasks, universe));

  StreamingEngine engine(machine, EvalOptions{}, fast_config(8, 5));
  for (std::size_t i = 0; i < trace.steps(); ++i) {
    engine.append_step(trace.step(i));
    ASSERT_EQ(engine.steps(), i + 1);
    ASSERT_NO_THROW(engine.schedule().validate(tasks, i + 1)) << "step " << i;
    // The published schedule must evaluate cleanly over everything seen.
    ASSERT_NO_THROW(engine.current_solution()) << "step " << i;
  }
  EXPECT_GE(engine.resolve_count(), 2u);
  EXPECT_TRUE(engine.windows().front().trigger == TriggerKind::kInitial);
  for (const WindowReport& window : engine.windows()) {
    EXPECT_TRUE(window.ok) << window.error;
    EXPECT_LE(window.window_hi - window.window_lo, 8u);
  }
}

TEST(StreamingEngine, SpliceFreezesTheStablePrefix) {
  const std::size_t universe = 10;
  Xoshiro256 rng(0xF0);
  const MultiTaskTrace trace =
      workload::make_multi_family("random-walk", 1, 24, universe, rng);
  const MachineSpec machine = MachineSpec::local_only({universe});

  StreamingEngine engine(machine, EvalOptions{}, fast_config(6, 6));
  std::vector<std::size_t> before;
  for (std::size_t i = 0; i < trace.steps(); ++i) {
    const std::size_t resolves = engine.resolve_count();
    const std::vector<std::size_t> starts =
        engine.schedule().tasks.empty()
            ? std::vector<std::size_t>{}
            : engine.schedule().tasks[0].starts();
    engine.append_step(trace.step(i));
    if (engine.resolve_count() > resolves && engine.windows().back().ok) {
      const WindowReport& report = engine.windows().back();
      // Boundaries strictly before the window must be exactly the previous
      // published boundaries below window_lo.
      std::vector<std::size_t> expected;
      for (const std::size_t s : starts) {
        if (s < report.window_lo) expected.push_back(s);
      }
      std::vector<std::size_t> frozen;
      for (const std::size_t s : engine.schedule().tasks[0].starts()) {
        if (s < report.window_lo) frozen.push_back(s);
      }
      EXPECT_EQ(frozen, expected) << "resolve " << report.index;
      EXPECT_EQ(report.splice_prefix_boundaries, expected.size());
      // ... and the window always re-anchors a boundary at window_lo.
      EXPECT_TRUE(engine.schedule().tasks[0].is_boundary(report.window_lo));
    }
  }
}

TEST(StreamingEngine, WarmStartsAfterTheInitialSolve) {
  const std::size_t universe = 8;
  Xoshiro256 rng(0x3A);
  const MultiTaskTrace trace =
      workload::make_multi_family("periodic", 1, 20, universe, rng);
  StreamingEngine engine(MachineSpec::local_only({universe}), EvalOptions{},
                         fast_config(8, 4));
  for (std::size_t i = 0; i < trace.steps(); ++i) {
    engine.append_step(trace.step(i));
  }
  ASSERT_GE(engine.resolve_count(), 2u);
  EXPECT_FALSE(engine.windows().front().warm_started);
  for (std::size_t k = 1; k < engine.windows().size(); ++k) {
    EXPECT_TRUE(engine.windows()[k].warm_started) << "window " << k;
  }
}

TEST(StreamingEngine, FlushSolvesPendingStepsOnceAndOnlyOnce) {
  const std::size_t universe = 6;
  Xoshiro256 rng(0x11);
  const MultiTaskTrace trace =
      workload::make_multi_family("bursty", 1, 9, universe, rng);
  // No periodic trigger: only the initial solve fires during the stream.
  StreamingEngine engine(MachineSpec::local_only({universe}), EvalOptions{},
                         fast_config(16, 0));
  for (std::size_t i = 0; i < trace.steps(); ++i) {
    engine.append_step(trace.step(i));
  }
  EXPECT_EQ(engine.resolve_count(), 1u);
  EXPECT_TRUE(engine.flush());
  EXPECT_EQ(engine.resolve_count(), 2u);
  EXPECT_EQ(engine.windows().back().trigger, TriggerKind::kFlush);
  EXPECT_FALSE(engine.flush());  // nothing pending anymore
  EXPECT_EQ(engine.resolve_count(), 2u);
}

TEST(StreamingEngine, SharedCacheServesRepeatedWindowsAcrossStreams) {
  const std::size_t universe = 10;
  Xoshiro256 rng(0xCAC);
  const MultiTaskTrace trace =
      workload::make_multi_family("phased", 2, 16, universe, rng);
  const MachineSpec machine =
      MachineSpec::local_only(std::vector<std::size_t>(2, universe));

  auto cache = std::make_shared<cache::SolveCache>(
      cache::SolveCacheConfig{.capacity = 256});
  auto run_stream = [&]() {
    StreamingConfig config = fast_config(8, 4);
    config.cache = cache;
    StreamingEngine engine(machine, EvalOptions{}, config);
    for (std::size_t i = 0; i < trace.steps(); ++i) {
      engine.append_step(trace.step(i));
    }
    return engine;
  };

  const StreamingEngine first = run_stream();
  const std::uint64_t misses_after_first = cache->stats().misses;
  EXPECT_GT(misses_after_first, 0u);

  const StreamingEngine second = run_stream();
  // The identical replay hits every window in the cache.
  EXPECT_EQ(cache->stats().misses, misses_after_first);
  EXPECT_GT(cache->stats().hits, 0u);
  ASSERT_EQ(second.resolve_count(), first.resolve_count());
  for (std::size_t k = 0; k < second.windows().size(); ++k) {
    // Attribution: a verified hit reports winner "cache" AND outcome kHit;
    // "cache" must never stand in for a coalesced wait (that is a distinct
    // outcome with its own winner label) or a fresh solve.
    EXPECT_EQ(second.windows()[k].winner, "cache") << "window " << k;
    ASSERT_TRUE(second.windows()[k].cache.has_value()) << "window " << k;
    EXPECT_EQ(*second.windows()[k].cache, cache::CacheOutcome::kHit)
        << "window " << k;
    EXPECT_EQ(second.windows()[k].published_cost,
              first.windows()[k].published_cost);
  }
  // The first stream solved fresh: its windows are misses won by a real
  // portfolio member, never mislabelled "cache".
  for (std::size_t k = 0; k < first.windows().size(); ++k) {
    ASSERT_TRUE(first.windows()[k].cache.has_value()) << "window " << k;
    EXPECT_EQ(*first.windows()[k].cache, cache::CacheOutcome::kMiss)
        << "window " << k;
    EXPECT_NE(first.windows()[k].winner, "cache") << "window " << k;
    EXPECT_NE(first.windows()[k].winner, "coalesced") << "window " << k;
    EXPECT_FALSE(first.windows()[k].winner.empty()) << "window " << k;
  }
  EXPECT_EQ(second.current_solution().total(),
            first.current_solution().total());
}

TEST(StreamingEngine, RejectsBadStepsAndConfigs) {
  const MachineSpec machine = MachineSpec::local_only({4, 4});
  StreamingConfig zero_window;
  zero_window.window = 0;
  EXPECT_THROW(StreamingEngine(machine, EvalOptions{}, zero_window),
               PreconditionError);

  StreamingEngine engine(machine, EvalOptions{}, fast_config(4, 0));
  EXPECT_THROW(engine.append_step({ContextRequirement{DynamicBitset(4), 0}}),
               PreconditionError);
  // Private demand beyond the machine's (absent) pool.
  EXPECT_THROW(engine.append_step({ContextRequirement{DynamicBitset(4), 1},
                                   ContextRequirement{DynamicBitset(4), 0}}),
               PreconditionError);
  EXPECT_THROW(engine.current_solution(), PreconditionError);
}

TEST(BatchEngineStreaming, ReplayProducesStreamedJobsWithWindowReports) {
  Xoshiro256 rng(0xBa7);
  std::vector<engine::BatchJob> jobs;
  for (const char* family : {"phased", "periodic"}) {
    engine::BatchJob job;
    Xoshiro256 family_rng = rng.split(jobs.size());
    job.trace = workload::make_multi_family(family, 2, 20, 8, family_rng);
    job.machine = MachineSpec::local_only(std::vector<std::size_t>(2, 8));
    job.name = family;
    jobs.push_back(std::move(job));
  }

  engine::BatchEngineConfig config;
  config.parallelism = 2;
  config.portfolio.solvers = {"aligned-dp", "greedy-w8"};
  config.stream.enabled = true;
  config.stream.window = 8;
  config.stream.trigger.every_steps = 5;
  const engine::BatchResult result =
      engine::BatchEngine(std::move(config)).solve(jobs);

  ASSERT_EQ(result.jobs.size(), jobs.size());
  for (const engine::JobResult& job : result.jobs) {
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_TRUE(job.streamed);
    EXPECT_EQ(job.winner, "streaming");
    EXPECT_EQ(job.cache, engine::JobCacheOutcome::kBypass);
    ASSERT_GE(job.windows.size(), 2u);
    EXPECT_EQ(job.windows.front().trigger, TriggerKind::kInitial);
    for (const WindowReport& window : job.windows) {
      EXPECT_TRUE(window.ok) << window.error;
    }
    // The reported solution covers the whole trace (the periodic family
    // rounds the step count up to whole periods) and matches the final
    // published cost.
    ASSERT_NO_THROW(
        job.solution.schedule.validate(2, jobs[job.index].trace.steps()));
    EXPECT_EQ(job.solution.total(), job.windows.back().published_cost);
  }
}

TEST(BatchEngineStreaming, StreamedBatchMatchesDirectStreamingEngine) {
  Xoshiro256 rng(0x1CE);
  const MultiTaskTrace trace =
      workload::make_multi_family("random-walk", 2, 18, 10, rng);
  const MachineSpec machine =
      MachineSpec::local_only(std::vector<std::size_t>(2, 10));

  engine::BatchJob job;
  job.trace = trace;
  job.machine = machine;
  job.name = "replay";
  engine::BatchEngineConfig config;
  config.portfolio.solvers = {"aligned-dp"};
  config.stream.enabled = true;
  config.stream.window = 6;
  config.stream.trigger.every_steps = 4;
  const engine::BatchResult batch =
      engine::BatchEngine(std::move(config)).solve({job});

  StreamingConfig direct = fast_config(6, 4);
  direct.portfolio.solvers = {"aligned-dp"};
  StreamingEngine engine(machine, EvalOptions{}, direct);
  for (std::size_t i = 0; i < trace.steps(); ++i) {
    engine.append_step(trace.step(i));
  }
  engine.flush();

  ASSERT_TRUE(batch.jobs[0].ok) << batch.jobs[0].error;
  EXPECT_EQ(batch.jobs[0].solution.total(), engine.current_solution().total());
  ASSERT_EQ(batch.jobs[0].windows.size(), engine.windows().size());
  for (std::size_t k = 0; k < engine.windows().size(); ++k) {
    EXPECT_EQ(batch.jobs[0].windows[k].published_cost,
              engine.windows()[k].published_cost);
  }
}

}  // namespace
}  // namespace hyperrec::streaming
