// StreamMultiplexer: FIFO-per-stream bit-identity against solo engines,
// epoch-monotonic lock-free snapshots, exact drain accounting, shared-cache
// attribution across identical streams, Xenomai-switchtest-style first
// failure capture (stream id + step), and a concurrent append/read hammer
// that must run clean under TSan.
#include "streaming/stream_multiplexer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/batch_engine.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace hyperrec::streaming {
namespace {

ContextRequirement req_bits(std::size_t universe,
                            std::initializer_list<std::size_t> bits,
                            std::uint32_t demand = 0) {
  ContextRequirement req{DynamicBitset(universe), demand};
  for (const std::size_t b : bits) req.local.set(b);
  return req;
}

StreamingConfig fast_stream(std::size_t window, std::size_t every_steps) {
  StreamingConfig config;
  config.window = window;
  config.trigger.every_steps = every_steps;
  config.portfolio.solvers = {"aligned-dp"};
  return config;
}

MultiplexerConfig mux_config(std::size_t shards, std::size_t window,
                             std::size_t every_steps) {
  MultiplexerConfig config;
  config.shards = shards;
  config.stream = fast_stream(window, every_steps);
  return config;
}

MultiTaskTrace family_trace(const std::string& family, std::size_t tasks,
                            std::size_t steps, std::size_t universe,
                            std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return workload::make_multi_family(family, tasks, steps, universe, rng);
}

bool schedules_equal(const MultiTaskSchedule& a, const MultiTaskSchedule& b) {
  if (a.tasks.size() != b.tasks.size() ||
      a.global_boundaries != b.global_boundaries) {
    return false;
  }
  for (std::size_t j = 0; j < a.tasks.size(); ++j) {
    if (a.tasks[j].n() != b.tasks[j].n() ||
        a.tasks[j].starts() != b.tasks[j].starts()) {
      return false;
    }
  }
  return true;
}

TEST(StreamMultiplexer, MultiplexedStreamsMatchSoloEnginesBitForBit) {
  const std::size_t universe = 10;
  const std::size_t tasks = 2;
  const MachineSpec machine =
      MachineSpec::local_only(std::vector<std::size_t>(tasks, universe));
  std::vector<MultiTaskTrace> traces;
  for (std::uint64_t s = 0; s < 5; ++s) {
    traces.push_back(family_trace("random-walk", tasks, 20, universe, s + 1));
  }

  StreamMultiplexer mux(mux_config(2, 6, 4));
  for (std::size_t i = 0; i < traces.size(); ++i) {
    ASSERT_EQ(mux.open_stream(machine), i);
  }
  // Interleave round-robin so shard lanes genuinely multiplex the streams.
  for (std::size_t s = 0; s < 20; ++s) {
    for (std::size_t i = 0; i < traces.size(); ++i) {
      mux.append_step(i, traces[i].step(s));
    }
  }
  mux.flush_all();
  mux.drain();

  for (std::size_t i = 0; i < traces.size(); ++i) {
    SCOPED_TRACE("stream " + std::to_string(i));
    StreamingEngine solo(machine, EvalOptions{}, fast_stream(6, 4));
    for (std::size_t s = 0; s < 20; ++s) solo.append_step(traces[i].step(s));
    solo.flush();

    const StreamingEngine& muxed = mux.engine(i);
    ASSERT_EQ(muxed.resolve_count(), solo.resolve_count());
    for (std::size_t k = 0; k < solo.windows().size(); ++k) {
      EXPECT_EQ(muxed.windows()[k].trigger, solo.windows()[k].trigger);
      EXPECT_EQ(muxed.windows()[k].published_cost,
                solo.windows()[k].published_cost);
    }
    EXPECT_TRUE(schedules_equal(muxed.schedule(), solo.schedule()));
    EXPECT_EQ(muxed.current_solution().total(), solo.current_solution().total());
  }
}

TEST(StreamMultiplexer, SnapshotsPublishEpochsAndCoverEveryAppliedStep) {
  const MachineSpec machine = MachineSpec::local_only({5});
  StreamMultiplexer mux(mux_config(1, 4, 3));
  const std::size_t id = mux.open_stream(machine);
  EXPECT_EQ(mux.snapshot(id), nullptr) << "no publication before any append";

  for (std::size_t i = 0; i < 11; ++i) {
    mux.append_step(id, {req_bits(5, {i % 5})});
  }
  mux.drain();
  const auto snap = mux.snapshot(id);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->steps, 11u);
  EXPECT_GE(snap->epoch, 11u) << "one publication per applied append";
  ASSERT_TRUE(snap->published_cost.has_value());
  ASSERT_NO_THROW(snap->schedule.validate(1, snap->steps));

  // A flush re-solve publishes again; the epoch strictly advances.
  mux.flush(id);
  mux.drain();
  const auto after = mux.snapshot(id);
  ASSERT_NE(after, nullptr);
  EXPECT_GT(after->epoch, snap->epoch);
  EXPECT_EQ(after->steps, 11u);
}

TEST(StreamMultiplexer, DrainAccountsEveryAcceptedOp) {
  const MachineSpec machine = MachineSpec::local_only({6, 6});
  StreamMultiplexer mux(mux_config(3, 5, 4));
  const std::size_t streams = 7;
  const std::size_t steps = 13;
  for (std::size_t i = 0; i < streams; ++i) mux.open_stream(machine);
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < streams; ++i) {
      mux.append_step(i, {req_bits(6, {s % 6}), req_bits(6, {(s + 1) % 6})});
    }
  }
  mux.flush_all();
  mux.drain();

  const FleetStats stats = mux.fleet_stats();
  EXPECT_EQ(stats.streams, streams);
  EXPECT_EQ(stats.accepted, streams * steps);
  EXPECT_EQ(stats.applied, streams * steps);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(stats.resolves, 0u);
  EXPECT_GT(stats.publications, 0u);
  EXPECT_FALSE(mux.first_failure().has_value());

  const std::vector<StreamSummary> rows = mux.stream_summaries();
  ASSERT_EQ(rows.size(), streams);
  for (const StreamSummary& row : rows) {
    EXPECT_EQ(row.steps, steps);
    EXPECT_FALSE(row.poisoned);
    EXPECT_TRUE(row.published_cost.has_value());
  }
}

TEST(StreamMultiplexer, FirstFailureNamesTheStreamAndStep) {
  // Switchtest idiom: when a lane faults, the harness needs WHICH stream
  // and WHERE.  Stream 1 sends a malformed step (2 requirements into a
  // 1-task engine) after 3 good ones — it is poisoned, its later ops are
  // dropped and counted, the first failure is latched with its id and step,
  // and every other stream finishes untouched.
  const MachineSpec machine = MachineSpec::local_only({4});
  StreamMultiplexer mux(mux_config(2, 4, 2));
  for (std::size_t i = 0; i < 3; ++i) mux.open_stream(machine);

  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < 3; ++i) {
      mux.append_step(i, {req_bits(4, {s % 4})});
    }
  }
  mux.drain();
  mux.append_step(1, {req_bits(4, {0}), req_bits(4, {1})});  // malformed
  mux.drain();
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t i = 0; i < 3; ++i) {
      mux.append_step(i, {req_bits(4, {(s + 1) % 4})});
    }
  }
  mux.flush_all();
  mux.drain();

  const auto failure = mux.first_failure();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->stream, 1u);
  EXPECT_EQ(failure->step, 3u) << "faulted after 3 ingested steps";
  EXPECT_FALSE(failure->what.empty());

  const FleetStats stats = mux.fleet_stats();
  EXPECT_EQ(stats.failures, 1u);
  // The 4 post-fault appends + the flush for stream 1 were dropped.
  EXPECT_EQ(stats.dropped, 5u);

  const std::vector<StreamSummary> rows = mux.stream_summaries();
  EXPECT_TRUE(rows[1].poisoned);
  EXPECT_EQ(rows[1].steps, 3u);
  for (const std::size_t healthy : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_FALSE(rows[healthy].poisoned);
    EXPECT_EQ(rows[healthy].steps, 7u);
    ASSERT_NO_THROW(mux.engine(healthy).current_solution());
  }
}

TEST(StreamMultiplexer, SharedCacheServesIdenticalTenants) {
  // 6 tenants stream the SAME trace concurrently through one shared cache:
  // identical windows must be solved far fewer times than they are needed
  // (hits or coalesced waits cover the rest) while every tenant still
  // publishes the identical result.
  const std::size_t universe = 10;
  const MachineSpec machine = MachineSpec::local_only({universe, universe});
  const MultiTaskTrace trace = family_trace("phased", 2, 16, universe, 0xCAC);

  StreamMultiplexer mux(mux_config(3, 8, 4));
  const std::size_t tenants = 6;
  for (std::size_t i = 0; i < tenants; ++i) mux.open_stream(machine);
  for (std::size_t s = 0; s < trace.steps(); ++s) {
    for (std::size_t i = 0; i < tenants; ++i) {
      mux.append_step(i, trace.step(s));
    }
  }
  mux.flush_all();
  mux.drain();

  const FleetStats stats = mux.fleet_stats();
  EXPECT_GT(stats.resolves, 0u);
  // Every window needed = one per resolve; distinct solves = cache misses.
  EXPECT_LT(stats.cache.misses, stats.resolves);
  EXPECT_GT(stats.cache.hits + stats.cache.coalesced, 0u);

  const Cost reference = mux.engine(0).current_solution().total();
  for (std::size_t i = 1; i < tenants; ++i) {
    EXPECT_EQ(mux.engine(i).current_solution().total(), reference);
    EXPECT_TRUE(
        schedules_equal(mux.engine(i).schedule(), mux.engine(0).schedule()));
  }
  // Attribution: served windows carry a real outcome, never a mislabel.
  for (std::size_t i = 0; i < tenants; ++i) {
    for (const WindowReport& window : mux.engine(i).windows()) {
      ASSERT_TRUE(window.cache.has_value());
      if (*window.cache == cache::CacheOutcome::kHit) {
        EXPECT_EQ(window.winner, "cache");
      } else if (*window.cache == cache::CacheOutcome::kMiss) {
        EXPECT_NE(window.winner, "cache");
        EXPECT_NE(window.winner, "coalesced");
      }
    }
  }
}

TEST(StreamMultiplexer, ShardCountIsClamped) {
  MultiplexerConfig zero = mux_config(0, 4, 0);
  EXPECT_EQ(StreamMultiplexer(zero).shard_count(), 1u);
  MultiplexerConfig huge = mux_config(100000, 4, 0);
  EXPECT_EQ(StreamMultiplexer(huge).shard_count(), 256u);
}

TEST(StreamMultiplexer, ConcurrentAppendAndSnapshotHammer) {
  // 4 producer threads drive 2 streams each while a reader thread spins on
  // snapshot(): epochs must be monotonic per stream, every observed
  // snapshot internally consistent (schedule covers its steps), and the
  // whole dance data-race-free — this test is the TSan workload.
  const std::size_t universe = 6;
  const std::size_t producers = 4;
  const std::size_t per_producer = 2;
  const std::size_t steps = 24;
  const MachineSpec machine = MachineSpec::local_only({universe});

  StreamMultiplexer mux(mux_config(4, 4, 3));
  const std::size_t streams = producers * per_producer;
  for (std::size_t i = 0; i < streams; ++i) mux.open_stream(machine);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> observed{0};
  std::thread reader([&]() {
    std::vector<std::uint64_t> last_epoch(streams, 0);
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t i = 0; i < streams; ++i) {
        const auto snap = mux.snapshot(i);
        if (!snap) continue;
        EXPECT_GE(snap->epoch, last_epoch[i]) << "stream " << i;
        last_epoch[i] = snap->epoch;
        EXPECT_GE(snap->steps, 1u);
        ASSERT_NO_THROW(snap->schedule.validate(1, snap->steps));
        observed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t p = 0; p < producers; ++p) {
    writers.emplace_back([&, p]() {
      for (std::size_t s = 0; s < steps; ++s) {
        for (std::size_t k = 0; k < per_producer; ++k) {
          mux.append_step(p * per_producer + k,
                          {req_bits(universe, {(p + s + k) % universe})});
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  mux.flush_all();
  mux.drain();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(observed.load(), 0u);
  const FleetStats stats = mux.fleet_stats();
  EXPECT_EQ(stats.accepted, streams * steps);
  EXPECT_EQ(stats.applied, streams * steps);
  EXPECT_EQ(stats.failures, 0u);
  for (std::size_t i = 0; i < streams; ++i) {
    const auto snap = mux.snapshot(i);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->steps, steps);
  }
}

TEST(StreamMultiplexer, BatchEngineMultiplexedReplayMatchesPerJobReplay) {
  // The BatchEngine's multiplex mode must produce the same per-job
  // solutions as its inline per-job streaming replay, and additionally
  // carry the fleet summary.
  std::vector<engine::BatchJob> jobs;
  const std::size_t universe = 8;
  for (std::uint64_t s = 0; s < 4; ++s) {
    engine::BatchJob job;
    job.trace = family_trace(workload::family_names()[s % 5], 2, 14, universe,
                             s + 11);
    job.machine = MachineSpec::local_only({universe, universe});
    job.name = "job-" + std::to_string(s);
    jobs.push_back(std::move(job));
  }

  engine::BatchEngineConfig inline_config;
  inline_config.portfolio.solvers = {"aligned-dp"};
  inline_config.stream.enabled = true;
  inline_config.stream.window = 6;
  inline_config.stream.trigger.every_steps = 4;
  engine::BatchEngineConfig mux_engine_config = inline_config;
  mux_engine_config.stream.multiplex = true;
  mux_engine_config.stream.shards = 3;

  const engine::BatchResult inline_result =
      engine::BatchEngine(std::move(inline_config)).solve(jobs);
  const engine::BatchResult mux_result =
      engine::BatchEngine(std::move(mux_engine_config)).solve(jobs);

  EXPECT_FALSE(inline_result.fleet.has_value());
  ASSERT_TRUE(mux_result.fleet.has_value());
  EXPECT_EQ(mux_result.fleet->streams, jobs.size());
  EXPECT_EQ(mux_result.fleet->failures, 0u);
  ASSERT_EQ(mux_result.fleet_streams.size(), jobs.size());
  EXPECT_TRUE(mux_result.cache_enabled);

  ASSERT_EQ(mux_result.jobs.size(), inline_result.jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    ASSERT_TRUE(mux_result.jobs[i].ok) << mux_result.jobs[i].error;
    ASSERT_TRUE(inline_result.jobs[i].ok) << inline_result.jobs[i].error;
    EXPECT_TRUE(mux_result.jobs[i].streamed);
    EXPECT_EQ(mux_result.jobs[i].winner, "streaming");
    EXPECT_EQ(mux_result.jobs[i].solution.total(),
              inline_result.jobs[i].solution.total());
    EXPECT_EQ(mux_result.jobs[i].windows.size(),
              inline_result.jobs[i].windows.size());
    EXPECT_EQ(mux_result.fleet_streams[i].published_cost.has_value(), true);
  }
}

TEST(StreamMultiplexer, ConcurrentSummariesDuringLiveAppends) {
  // Regression for the unguarded per-lane `poisoned` read: stream_summaries()
  // used to peek lane flags without the owning shard's lock and report steps
  // from a live engine.  It now snapshots the `applied` atomic and takes each
  // shard lock for the lane flags, so calling it concurrently with appends is
  // data-race-free (this is part of the TSan `mux` workload) and every row is
  // internally consistent: steps never exceeds what was accepted, and never
  // decreases between observations of the same stream.
  const std::size_t universe = 6;
  const std::size_t streams = 6;
  const std::size_t steps = 24;
  const MachineSpec machine = MachineSpec::local_only({universe});

  StreamMultiplexer mux(mux_config(4, 4, 3));
  for (std::size_t i = 0; i < streams; ++i) mux.open_stream(machine);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> observations{0};
  std::thread reader([&]() {
    std::vector<std::uint64_t> last_steps(streams, 0);
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<StreamSummary> rows = mux.stream_summaries();
      ASSERT_EQ(rows.size(), streams);
      for (std::size_t i = 0; i < streams; ++i) {
        EXPECT_EQ(rows[i].id, i);
        EXPECT_FALSE(rows[i].poisoned) << "stream " << i;
        EXPECT_LE(rows[i].steps, steps) << "stream " << i;
        EXPECT_GE(rows[i].steps, last_steps[i]) << "stream " << i;
        last_steps[i] = rows[i].steps;
      }
      observations.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t i = 0; i < streams; ++i) {
    writers.emplace_back([&, i]() {
      for (std::size_t s = 0; s < steps; ++s) {
        mux.append_step(i, {req_bits(universe, {(i + s) % universe})});
      }
    });
  }
  for (std::thread& w : writers) w.join();
  mux.flush_all();
  mux.drain();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(observations.load(), 0u);
  const std::vector<StreamSummary> rows = mux.stream_summaries();
  for (std::size_t i = 0; i < streams; ++i) {
    EXPECT_EQ(rows[i].steps, steps);
    EXPECT_FALSE(rows[i].poisoned);
  }
}

}  // namespace
}  // namespace hyperrec::streaming
