// BatchEngine × SolveCache: within-batch duplicate coalescing, cross-batch
// hits with bit-identical solutions, JSON-visible stats, and warm-started
// portfolio races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "cache/solve_cache.hpp"
#include "engine/batch_engine.hpp"
#include "io/result_json.hpp"
#include "testutil/workload_instances.hpp"

namespace hyperrec::engine {
namespace {

std::vector<BatchJob> jobs_from_instances(std::size_t tasks, std::size_t steps,
                                          std::size_t universe,
                                          std::uint64_t seed) {
  std::vector<BatchJob> jobs;
  for (auto& instance :
       testutil::seeded_workload_instances(tasks, steps, universe, seed)) {
    BatchJob job;
    job.trace = std::move(instance.trace);
    job.machine = std::move(instance.machine);
    job.name = instance.name;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

BatchEngineConfig cached_config(std::shared_ptr<cache::SolveCache> cache) {
  BatchEngineConfig config;
  config.portfolio.solvers = {"aligned-dp", "greedy-w8"};
  config.cache = std::move(cache);
  return config;
}

TEST(CacheIntegration, CrossBatchRepeatsAreServedFromTheCache) {
  auto cache = std::make_shared<cache::SolveCache>(
      cache::SolveCacheConfig{.capacity = 64});
  const BatchEngine engine(cached_config(cache));
  const std::vector<BatchJob> jobs = jobs_from_instances(2, 16, 8, 0xCAFE);

  const BatchResult first = engine.solve(jobs);
  for (const JobResult& job : first.jobs) {
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.cache, JobCacheOutcome::kMiss) << job.name;
  }
  EXPECT_TRUE(first.cache_enabled);
  EXPECT_EQ(first.cache_stats.hits, 0u);
  EXPECT_EQ(first.cache_stats.misses, jobs.size());

  const BatchResult second = engine.solve(jobs);
  ASSERT_EQ(second.jobs.size(), first.jobs.size());
  for (std::size_t i = 0; i < second.jobs.size(); ++i) {
    const JobResult& warm = second.jobs[i];
    const JobResult& cold = first.jobs[i];
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(warm.cache, JobCacheOutcome::kHit) << warm.name;
    EXPECT_EQ(warm.winner, "cache");
    // Bit-identical: same cost breakdown and the very same schedule.
    EXPECT_EQ(warm.solution.total(), cold.solution.total());
    ASSERT_EQ(warm.solution.schedule.tasks.size(),
              cold.solution.schedule.tasks.size());
    for (std::size_t j = 0; j < warm.solution.schedule.tasks.size(); ++j) {
      EXPECT_EQ(warm.solution.schedule.tasks[j].starts(),
                cold.solution.schedule.tasks[j].starts());
    }
  }
  EXPECT_EQ(second.cache_stats.hits, jobs.size());
  EXPECT_EQ(second.cache_size, jobs.size());
}

TEST(CacheIntegration, DuplicateJobsWithinABatchCostOneSolve) {
  auto cache = std::make_shared<cache::SolveCache>(
      cache::SolveCacheConfig{.capacity = 16});
  BatchEngineConfig config;
  config.parallelism = 4;
  config.cache = cache;
  std::atomic<int> solves{0};
  config.solver = [&solves](const BatchJob& job, const CancelToken&) {
    solves.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    MTSolution solution;
    solution.schedule = MultiTaskSchedule::all_single(job.trace.task_count(),
                                                      job.trace.steps());
    solution.breakdown.total = 11;
    return solution;
  };
  const BatchEngine engine(std::move(config));

  std::vector<BatchJob> jobs = jobs_from_instances(2, 12, 6, 0xD0);
  jobs.resize(1);
  // Eight copies of the same instance in one batch.
  for (int i = 0; i < 7; ++i) {
    BatchJob copy = jobs.front();
    copy.name += "-dup" + std::to_string(i);
    jobs.push_back(std::move(copy));
  }

  const BatchResult result = engine.solve(jobs);
  EXPECT_EQ(solves.load(), 1) << "duplicates must coalesce onto one solve";
  std::size_t misses = 0;
  std::size_t served = 0;
  for (const JobResult& job : result.jobs) {
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.solution.total(), 11);
    if (job.cache == JobCacheOutcome::kMiss) ++misses;
    if (job.cache == JobCacheOutcome::kCoalesced ||
        job.cache == JobCacheOutcome::kHit) {
      ++served;
    }
  }
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(served, jobs.size() - 1);
}

TEST(CacheIntegration, WarmStartSeedsSecondBatchOfSameShape) {
  auto cache = std::make_shared<cache::SolveCache>(
      cache::SolveCacheConfig{.capacity = 64});
  BatchEngineConfig config;
  // Iterative members so the warm start has someone to seed; tiny budgets
  // keep the test fast.
  config.portfolio.solvers = {"aligned-dp", "coord-descent"};
  config.cache = cache;
  config.warm_start = true;
  const BatchEngine engine(std::move(config));

  // Same shape, different seeds → cross-batch near-misses, not hits.
  const std::vector<BatchJob> first = jobs_from_instances(2, 14, 8, 1);
  const std::vector<BatchJob> second = jobs_from_instances(2, 14, 8, 2);

  const BatchResult cold = engine.solve(first);
  for (const JobResult& job : cold.jobs) ASSERT_TRUE(job.ok) << job.error;

  const BatchResult warm = engine.solve(second);
  for (const JobResult& job : warm.jobs) {
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.cache, JobCacheOutcome::kMiss) << job.name;
    EXPECT_TRUE(job.warm_started)
        << job.name << ": a same-shape incumbent was available";
  }
  EXPECT_GE(warm.cache_stats.warm_hits, warm.jobs.size());
}

TEST(CacheIntegration, CancelTruncatedSolvesAreNotMemoized) {
  // An engine whose token has already fired still answers every job (the
  // iterative solvers return fallback incumbents), but those truncated
  // answers must not poison the cache for future full-quality solves.
  auto cache = std::make_shared<cache::SolveCache>(
      cache::SolveCacheConfig{.capacity = 16});
  BatchEngineConfig expired_config;
  expired_config.portfolio.solvers = {"coord-descent"};
  expired_config.cache = cache;
  expired_config.cancel = CancelToken::expired();
  const BatchEngine expired_engine(std::move(expired_config));

  std::vector<BatchJob> jobs = jobs_from_instances(2, 12, 6, 0xBEEF);
  jobs.resize(2);
  const BatchResult truncated = expired_engine.solve(jobs);
  for (const JobResult& job : truncated.jobs) {
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.cache, JobCacheOutcome::kMiss);
  }
  EXPECT_EQ(cache->size(), 0u)
      << "cancel-truncated incumbents must not enter the cache";

  // A healthy engine sharing the cache now computes real solutions and
  // memoizes them.
  const BatchEngine healthy(cached_config(cache));
  const BatchResult fresh = healthy.solve(jobs);
  for (const JobResult& job : fresh.jobs) {
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.cache, JobCacheOutcome::kMiss);
  }
  EXPECT_EQ(cache->size(), jobs.size());
}

TEST(CacheIntegration, CacheStatsSurfaceInResultJson) {
  auto cache = std::make_shared<cache::SolveCache>(
      cache::SolveCacheConfig{.capacity = 32});
  const BatchEngine engine(cached_config(cache));
  std::vector<BatchJob> jobs = jobs_from_instances(2, 12, 6, 0x9);
  jobs.resize(2);
  (void)engine.solve(jobs);
  const BatchResult result = engine.solve(jobs);

  const std::string json = io::batch_result_to_json(result);
  EXPECT_NE(json.find("\"cache\":{\"enabled\":true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"hits\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache\":\"hit\""), std::string::npos) << json;
}

TEST(CacheIntegration, WithoutACacheJobsReportBypass) {
  BatchEngineConfig config;
  config.portfolio.solvers = {"aligned-dp"};
  const BatchEngine engine(std::move(config));
  std::vector<BatchJob> jobs = jobs_from_instances(2, 12, 6, 0x7);
  jobs.resize(1);
  const BatchResult result = engine.solve(jobs);
  ASSERT_TRUE(result.jobs.front().ok) << result.jobs.front().error;
  EXPECT_EQ(result.jobs.front().cache, JobCacheOutcome::kBypass);
  EXPECT_FALSE(result.cache_enabled);
}

}  // namespace
}  // namespace hyperrec::engine
