// SolveCache: hit/miss/insert semantics, full-key verification against
// forged fingerprint collisions, LRU eviction order, TTL expiry,
// single-flight coalescing under concurrency, exception propagation, and
// the warm-start index.
#include "cache/solve_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hyperrec::cache {
namespace {

/// A distinct tiny instance per `tag` (the tag sets the first requirement).
InstanceKey key_for(std::uint32_t tag) {
  MultiTaskTrace trace;
  TaskTrace task(32);
  DynamicBitset first(32);
  for (std::size_t s = 0; s < 32; ++s) {
    if ((tag >> (s % 8)) & 1u) first.set(s);
  }
  task.push_back({std::move(first), tag});
  task.push_back({DynamicBitset(32).set(1), 0});
  trace.add_task(std::move(task));
  return make_instance_key(trace, MachineSpec::local_only({32}), {});
}

/// A recognisable dummy solution; `marker` round-trips through the cache.
MTSolution solution_with(Cost marker) {
  MTSolution solution;
  solution.schedule.tasks.push_back(Partition::single(2));
  solution.breakdown.total = marker;
  return solution;
}

TEST(SolveCache, MissThenInsertThenHit) {
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 2});
  const InstanceKey key = key_for(1);
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, solution_with(42));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->total(), 42);
  EXPECT_EQ(cache.size(), 1u);

  const SolveCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SolveCache, RefreshingALiveEntryIsNotAnInsertion) {
  // Regression: re-storing over a live entry used to bump `insertions`, so
  // fleet metrics overcounted "distinct window instances stored".  A
  // re-store now counts as a refresh; the entry itself stays one entry and
  // serves the newest solution.
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 1});
  const InstanceKey key = key_for(9);
  cache.insert(key, solution_with(10));
  cache.insert(key, solution_with(11));
  cache.insert(key, solution_with(12));

  const SolveCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.refreshes, 2u);
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->total(), 12);

  // A genuinely new key is an insertion again.
  cache.insert(key_for(10), solution_with(1));
  EXPECT_EQ(cache.stats().insertions, 2u);
  EXPECT_EQ(cache.stats().refreshes, 2u);
}

TEST(SolveCache, ForcedFingerprintCollisionIsRejectedByFullKeyCheck) {
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 1});
  const InstanceKey genuine = key_for(2);
  cache.insert(genuine, solution_with(7));

  // Forge a key with the same 128-bit fingerprint but different canonical
  // bytes — the situation an (astronomically unlikely) hash collision
  // would produce.  The full-key verification must treat it as a miss, not
  // silently serve the other instance's solution.
  InstanceKey forged = genuine;
  forged.canonical += "-different-instance";
  EXPECT_FALSE(cache.lookup(forged).has_value());
  EXPECT_EQ(cache.stats().collisions, 1u);

  // The genuine key still hits: rejection must not evict the entry.
  EXPECT_TRUE(cache.lookup(genuine).has_value());
}

TEST(SolveCache, ForcedCollisionInGetOrComputeRecomputesWithoutCaching) {
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 1});
  const InstanceKey genuine = key_for(3);
  cache.insert(genuine, solution_with(1));
  InstanceKey forged = genuine;
  forged.canonical += "x";

  int computes = 0;
  const auto compute = [&]() {
    ++computes;
    return solution_with(99);
  };
  CacheOutcome outcome = CacheOutcome::kHit;
  const MTSolution got = cache.get_or_compute(forged, compute, &outcome);
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  EXPECT_EQ(got.total(), 99);
  EXPECT_EQ(computes, 1);
  // The genuine entry survives and still serves its own solution — the
  // colliding insert must keep the incumbent, not overwrite it.
  const auto genuine_hit = cache.lookup(genuine);
  ASSERT_TRUE(genuine_hit.has_value());
  EXPECT_EQ(genuine_hit->total(), 1);
  // One collision observed on the forged read, one on the colliding store.
  EXPECT_GE(cache.stats().collisions, 2u);
}

TEST(SolveCache, SizeNeverExceedsCapacityAcrossShards) {
  // The budget must partition exactly across however many shards the
  // config ends up with — a ceil-divided per-shard quota would admit more
  // than `capacity` entries in total.
  for (const std::size_t capacity : {6u, 24u, 100u}) {
    SolveCache cache({.capacity = capacity, .ttl = {}, .shards = 8});
    for (std::uint32_t tag = 100; tag < 100 + 2 * capacity + 8; ++tag) {
      cache.insert(key_for(tag), solution_with(tag));
      EXPECT_LE(cache.size(), cache.capacity())
          << "capacity " << capacity << " after tag " << tag;
    }
    EXPECT_EQ(cache.capacity(), capacity);
    EXPECT_GT(cache.stats().evictions, 0u);
  }
}

TEST(SolveCache, SmallCapacityDoesNotThrashAcrossShallowShards) {
  // capacity 8 with the default 8 stripes used to yield 1-entry shards:
  // two keys hashing to the same shard then evicted each other on every
  // round while other shards sat empty.  The shard count must shrink so
  // that a handful of distinct keys within capacity all stay resident.
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 8});
  std::vector<InstanceKey> keys;
  for (std::uint32_t tag = 200; tag < 206; ++tag) {
    keys.push_back(key_for(tag));
  }
  for (int round = 0; round < 3; ++round) {
    for (const InstanceKey& key : keys) {
      if (!cache.lookup(key).has_value()) {
        cache.insert(key, solution_with(1));
      }
    }
  }
  EXPECT_EQ(cache.stats().evictions, 0u)
      << "6 keys within capacity 8 must all stay resident";
  for (const InstanceKey& key : keys) {
    EXPECT_TRUE(cache.lookup(key).has_value());
  }
}

TEST(SolveCache, LruEvictsLeastRecentlyUsedFirst) {
  // shards = 1 makes the LRU order globally exact for the test.
  SolveCache cache({.capacity = 2, .ttl = {}, .shards = 1});
  const InstanceKey a = key_for(10);
  const InstanceKey b = key_for(11);
  const InstanceKey c = key_for(12);
  cache.insert(a, solution_with(1));
  cache.insert(b, solution_with(2));
  ASSERT_TRUE(cache.lookup(a).has_value());  // touch a → b is now LRU

  cache.insert(c, solution_with(3));  // evicts b, not a
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SolveCache, ReinsertRefreshesInsteadOfDuplicating) {
  SolveCache cache({.capacity = 4, .ttl = {}, .shards = 1});
  const InstanceKey key = key_for(20);
  cache.insert(key, solution_with(1));
  cache.insert(key, solution_with(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(key)->total(), 2);
}

TEST(SolveCache, TtlExpiresEntriesOnAccess) {
  SolveCache cache(
      {.capacity = 4, .ttl = std::chrono::milliseconds{2}, .shards = 1});
  const InstanceKey key = key_for(30);
  cache.insert(key, solution_with(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SolveCache, GetOrComputeCachesTheComputedValue) {
  SolveCache cache({.capacity = 4, .ttl = {}, .shards = 2});
  const InstanceKey key = key_for(40);
  int computes = 0;
  const auto compute = [&]() {
    ++computes;
    return solution_with(77);
  };
  CacheOutcome first = CacheOutcome::kHit;
  EXPECT_EQ(cache.get_or_compute(key, compute, &first).total(), 77);
  EXPECT_EQ(first, CacheOutcome::kMiss);
  CacheOutcome second = CacheOutcome::kMiss;
  EXPECT_EQ(cache.get_or_compute(key, compute, &second).total(), 77);
  EXPECT_EQ(second, CacheOutcome::kHit);
  EXPECT_EQ(computes, 1);
}

TEST(SolveCache, NonCacheableComputeIsServedButNotMemoized) {
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 1});
  const InstanceKey key = key_for(45);
  int computes = 0;
  const auto truncated = [&]() {
    ++computes;
    return ComputeResult{solution_with(13), /*cacheable=*/false};
  };
  EXPECT_EQ(cache.get_or_compute_guarded(key, truncated).total(), 13);
  EXPECT_EQ(cache.size(), 0u) << "truncated results must not be memoized";
  EXPECT_FALSE(cache.lookup(key).has_value());
  // A later authoritative compute fills the cache normally.
  EXPECT_EQ(cache
                .get_or_compute_guarded(
                    key, [&]() { return ComputeResult{solution_with(14)}; })
                .total(),
            14);
  EXPECT_EQ(cache.lookup(key)->total(), 14);
  EXPECT_EQ(computes, 1);
}

TEST(SolveCache, NonCacheableComputeStillFeedsCoalescedWaiters) {
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 1});
  const InstanceKey key = key_for(46);
  std::atomic<int> computes{0};
  const auto slow_truncated = [&]() {
    computes.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    return ComputeResult{solution_with(21), /*cacheable=*/false};
  };
  std::vector<std::thread> threads;
  std::vector<Cost> totals(4, 0);
  for (std::size_t t = 0; t < totals.size(); ++t) {
    threads.emplace_back([&, t]() {
      totals[t] = cache.get_or_compute_guarded(key, slow_truncated).total();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const Cost total : totals) EXPECT_EQ(total, 21);
  // Coalesced waiters were fed by the flight, yet nothing was stored —
  // arrivals after the flight ended may have recomputed.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SolveCache, SingleFlightCoalescesConcurrentIdenticalJobs) {
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 4});
  const InstanceKey key = key_for(50);
  std::atomic<int> computes{0};
  const auto compute = [&]() {
    computes.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return solution_with(123);
  };

  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Cost> totals(kThreads, 0);
  std::vector<CacheOutcome> outcomes(kThreads, CacheOutcome::kMiss);
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      totals[t] = cache.get_or_compute(key, compute, &outcomes[t]).total();
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(computes.load(), 1) << "N identical jobs must cost one solve";
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(totals[t], 123) << "thread " << t;
  }
  std::size_t misses = 0;
  std::size_t piggybacked = 0;
  for (const CacheOutcome outcome : outcomes) {
    if (outcome == CacheOutcome::kMiss) ++misses;
    if (outcome == CacheOutcome::kCoalesced) ++piggybacked;
  }
  EXPECT_EQ(misses, 1u);
  // Late arrivals may land after the insert and see a plain hit; everyone
  // who arrived during the flight must have coalesced.
  EXPECT_EQ(piggybacked, cache.stats().coalesced);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SolveCache, ComputeExceptionPropagatesToAllWaitersAndClearsFlight) {
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 1});
  const InstanceKey key = key_for(60);
  std::atomic<int> attempts{0};
  const auto failing = [&]() -> MTSolution {
    attempts.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    throw std::runtime_error("solver blew up");
  };

  std::atomic<int> caught{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      try {
        (void)cache.get_or_compute(key, failing);
      } catch (const std::runtime_error&) {
        caught.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(caught.load(), 4) << "leader and waiters all observe the error";
  EXPECT_GE(attempts.load(), 1);

  // The failed flight must not wedge the key: a later compute succeeds.
  const MTSolution ok = cache.get_or_compute(key, [&]() {
    return solution_with(8);
  });
  EXPECT_EQ(ok.total(), 8);
}

TEST(SolveCache, FailedPiggybackCountsAsCoalescedFailureNotAHit) {
  // Regression: the waiter path bumped `coalesced` before blocking on the
  // flight's future — i.e. the outcome was recorded before the flight
  // resolved.  A leader that threw still left its waiters counted as
  // successful coalesced hits, so /statz overstated cache effectiveness
  // exactly when the portfolio was failing.  The fix records the flight's
  // fate: a rethrowing waiter lands in `coalesced_failures`.
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 1});
  const InstanceKey key = key_for(61);
  std::atomic<bool> leader_in_compute{false};
  std::atomic<bool> release{false};
  std::atomic<int> attempts{0};
  const auto failing = [&]() -> MTSolution {
    attempts.fetch_add(1, std::memory_order_relaxed);
    leader_in_compute.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    throw std::runtime_error("leader blew up");
  };

  std::atomic<int> caught{0};
  std::thread leader([&]() {
    try {
      (void)cache.get_or_compute(key, failing);
    } catch (const std::runtime_error&) {
      caught.fetch_add(1, std::memory_order_relaxed);
    }
  });
  while (!leader_in_compute.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  CacheOutcome waiter_outcome = CacheOutcome::kMiss;
  std::thread waiter([&]() {
    try {
      (void)cache.get_or_compute(key, failing, &waiter_outcome);
    } catch (const std::runtime_error&) {
      caught.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // The flight stays registered while the leader is parked in compute; give
  // the waiter time to find it and block, then let the leader throw.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.store(true, std::memory_order_release);
  leader.join();
  waiter.join();

  EXPECT_EQ(attempts.load(), 1) << "the waiter must piggyback, not recompute";
  EXPECT_EQ(caught.load(), 2);
  // `outcome` still reports the path taken (written before the wait, the
  // documented exits-by-exception contract)...
  EXPECT_EQ(waiter_outcome, CacheOutcome::kCoalesced);
  // ...but the stats record the flight's fate: no successful coalesced hit
  // happened here.
  const SolveCacheStats stats = cache.stats();
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.coalesced_failures, 1u);
}

TEST(SolveCache, WarmStartReturnsSameShapeSchedule) {
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 1});
  // Two same-shape instances with different content.
  const InstanceKey key = key_for(70);
  MTSolution cached;
  cached.schedule.tasks.push_back(Partition::from_starts({0, 1}, 2));
  cached.breakdown.total = 5;
  cache.insert(key, cached);

  MultiTaskTrace other;
  TaskTrace task(32);
  task.push_back({DynamicBitset(32).set(3), 0});
  task.push_back({DynamicBitset(32).set(4), 0});
  other.add_task(std::move(task));

  const auto warm =
      cache.warm_start_for(other, MachineSpec::local_only({32}));
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->tasks.size(), 1u);
  EXPECT_EQ(warm->tasks.front().starts(), (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(warm->global_boundaries.empty())
      << "normalized for a machine without global resources";
  EXPECT_EQ(cache.stats().warm_hits, 1u);

  // A different shape finds nothing.
  MultiTaskTrace longer;
  TaskTrace three(32);
  for (int i = 0; i < 3; ++i) three.push_back({DynamicBitset(32), 0});
  longer.add_task(std::move(three));
  EXPECT_FALSE(
      cache.warm_start_for(longer, MachineSpec::local_only({32})).has_value());
}

TEST(SolveCache, WarmStartNormalizesGlobalBoundariesForGlobalMachines) {
  SolveCache cache({.capacity = 8, .ttl = {}, .shards = 1});
  const InstanceKey key = key_for(80);
  cache.insert(key, solution_with(9));

  MachineSpec with_global = MachineSpec::local_only({32});
  with_global.private_global_units = 2;
  with_global.global_init = 4;

  MultiTaskTrace same_shape;
  TaskTrace task(32);
  task.push_back({DynamicBitset(32).set(0), 1});
  task.push_back({DynamicBitset(32).set(5), 2});
  same_shape.add_task(std::move(task));

  const auto warm = cache.warm_start_for(same_shape, with_global);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->global_boundaries, (std::vector<std::size_t>{0}));
}

TEST(SolveCache, CapacityOfZeroIsRejected) {
  EXPECT_THROW(SolveCache({.capacity = 0}), PreconditionError);
}

TEST(SolveCache, WarmIndexCanBeDisabled) {
  SolveCache cache({.capacity = 4, .ttl = {}, .shards = 1,
                    .warm_capacity = 0});
  const InstanceKey key = key_for(90);
  cache.insert(key, solution_with(3));
  MultiTaskTrace same_shape;
  TaskTrace task(32);
  task.push_back({DynamicBitset(32), 0});
  task.push_back({DynamicBitset(32), 0});
  same_shape.add_task(std::move(task));
  EXPECT_FALSE(cache.warm_start_for(same_shape, MachineSpec::local_only({32}))
                   .has_value());
}

}  // namespace
}  // namespace hyperrec::cache
