// Instance fingerprints: determinism, sensitivity to every field of
// (trace, machine, options), shape fingerprints, and the FNV-1a-128
// primitive itself.
#include "cache/fingerprint.hpp"

#include <gtest/gtest.h>

#include <cctype>

namespace hyperrec::cache {
namespace {

MultiTaskTrace baseline_trace() {
  MultiTaskTrace trace;
  TaskTrace a(4);
  a.push_back({DynamicBitset::from_string("1100"), 0});
  a.push_back({DynamicBitset::from_string("0011"), 2});
  TaskTrace b(3);
  b.push_back({DynamicBitset::from_string("111"), 0});
  b.push_back({DynamicBitset::from_string("001"), 1});
  trace.add_task(std::move(a));
  trace.add_task(std::move(b));
  return trace;
}

MachineSpec baseline_machine() {
  MachineSpec machine;
  machine.tasks = {{4, 4}, {3, 5}};
  machine.private_global_units = 2;
  machine.public_context_size = 1;
  machine.global_init = 6;
  return machine;
}

TEST(Fingerprint, Fnv128MatchesReferenceVectors) {
  // FNV-1a-128 of the empty string is the offset basis.
  const Fingerprint128 empty = fingerprint_bytes("");
  EXPECT_EQ(empty.to_hex(), "6c62272e07bb014262b821756295c58d");
  // Distinct short strings separate and are stable across calls.
  const Fingerprint128 a1 = fingerprint_bytes("a");
  const Fingerprint128 a2 = fingerprint_bytes("a");
  const Fingerprint128 b = fingerprint_bytes("b");
  EXPECT_EQ(a1, a2);
  EXPECT_FALSE(a1 == b);
  EXPECT_FALSE(a1 == empty);
}

TEST(Fingerprint, HexIs32LowercaseHexChars) {
  const std::string hex = fingerprint_bytes("hyperrec").to_hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                !std::isupper(static_cast<unsigned char>(c)))
        << hex;
  }
}

TEST(Fingerprint, DeterministicAcrossIndependentConstructions) {
  // Two instances built independently (fresh allocations, fresh bitsets)
  // must canonicalize and fingerprint identically — nothing address- or
  // order-dependent may leak into the key.
  const InstanceKey first =
      make_instance_key(baseline_trace(), baseline_machine(), {});
  const InstanceKey second =
      make_instance_key(baseline_trace(), baseline_machine(), {});
  EXPECT_EQ(first.canonical, second.canonical);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.shape, second.shape);
}

TEST(Fingerprint, SensitiveToEveryTraceField) {
  const Fingerprint128 base =
      fingerprint_instance(baseline_trace(), baseline_machine(), {});

  {  // flip one requirement bit
    MultiTaskTrace trace;
    TaskTrace a(4);
    a.push_back({DynamicBitset::from_string("1101"), 0});  // was 1100
    a.push_back({DynamicBitset::from_string("0011"), 2});
    TaskTrace b(3);
    b.push_back({DynamicBitset::from_string("111"), 0});
    b.push_back({DynamicBitset::from_string("001"), 1});
    trace.add_task(std::move(a));
    trace.add_task(std::move(b));
    EXPECT_FALSE(fingerprint_instance(trace, baseline_machine(), {}) == base);
  }
  {  // change one private demand
    MultiTaskTrace trace;
    TaskTrace a(4);
    a.push_back({DynamicBitset::from_string("1100"), 0});
    a.push_back({DynamicBitset::from_string("0011"), 1});  // was 2
    TaskTrace b(3);
    b.push_back({DynamicBitset::from_string("111"), 0});
    b.push_back({DynamicBitset::from_string("001"), 1});
    trace.add_task(std::move(a));
    trace.add_task(std::move(b));
    EXPECT_FALSE(fingerprint_instance(trace, baseline_machine(), {}) == base);
  }
  {  // swap task order
    MultiTaskTrace trace;
    TaskTrace b(3);
    b.push_back({DynamicBitset::from_string("111"), 0});
    b.push_back({DynamicBitset::from_string("001"), 1});
    TaskTrace a(4);
    a.push_back({DynamicBitset::from_string("1100"), 0});
    a.push_back({DynamicBitset::from_string("0011"), 2});
    trace.add_task(std::move(b));
    trace.add_task(std::move(a));
    MachineSpec machine = baseline_machine();
    std::swap(machine.tasks[0], machine.tasks[1]);
    EXPECT_FALSE(fingerprint_instance(trace, machine, {}) == base);
  }
  {  // append a step
    MultiTaskTrace trace = baseline_trace();
    MultiTaskTrace longer;
    TaskTrace a(4);
    a.push_back({DynamicBitset::from_string("1100"), 0});
    a.push_back({DynamicBitset::from_string("0011"), 2});
    a.push_back({DynamicBitset::from_string("0000"), 0});
    TaskTrace b(3);
    b.push_back({DynamicBitset::from_string("111"), 0});
    b.push_back({DynamicBitset::from_string("001"), 1});
    b.push_back({DynamicBitset::from_string("000"), 0});
    longer.add_task(std::move(a));
    longer.add_task(std::move(b));
    EXPECT_FALSE(fingerprint_instance(longer, baseline_machine(), {}) == base);
  }
}

TEST(Fingerprint, SensitiveToEveryMachineField) {
  const MultiTaskTrace trace = baseline_trace();
  const Fingerprint128 base =
      fingerprint_instance(trace, baseline_machine(), {});

  MachineSpec machine = baseline_machine();
  machine.tasks[0].local_init = 40;
  EXPECT_FALSE(fingerprint_instance(trace, machine, {}) == base);

  machine = baseline_machine();
  machine.tasks[1].local_switches = 30;  // shape-invalid but must still hash
  EXPECT_FALSE(fingerprint_instance(trace, machine, {}) == base);

  machine = baseline_machine();
  machine.private_global_units = 7;
  EXPECT_FALSE(fingerprint_instance(trace, machine, {}) == base);

  machine = baseline_machine();
  machine.public_context_size = 9;
  EXPECT_FALSE(fingerprint_instance(trace, machine, {}) == base);

  machine = baseline_machine();
  machine.global_init = 123;
  EXPECT_FALSE(fingerprint_instance(trace, machine, {}) == base);
}

TEST(Fingerprint, SensitiveToEveryOption) {
  const MultiTaskTrace trace = baseline_trace();
  const MachineSpec machine = baseline_machine();
  const Fingerprint128 base = fingerprint_instance(trace, machine, {});

  EvalOptions options;
  options.hyper_upload = UploadMode::kTaskSequential;
  EXPECT_FALSE(fingerprint_instance(trace, machine, options) == base);

  options = {};
  options.reconfig_upload = UploadMode::kTaskParallel;
  EXPECT_FALSE(fingerprint_instance(trace, machine, options) == base);

  options = {};
  options.changeover = true;
  EXPECT_FALSE(fingerprint_instance(trace, machine, options) == base);
}

TEST(Fingerprint, ShapeIgnoresContentButNotGeometry) {
  // Same (task count, steps, universes), different bits/costs → same shape.
  MultiTaskTrace other;
  TaskTrace a(4);
  a.push_back({DynamicBitset::from_string("0001"), 1});
  a.push_back({DynamicBitset::from_string("1110"), 0});
  TaskTrace b(3);
  b.push_back({DynamicBitset::from_string("010"), 2});
  b.push_back({DynamicBitset::from_string("100"), 0});
  other.add_task(std::move(a));
  other.add_task(std::move(b));

  EXPECT_EQ(fingerprint_shape(baseline_trace()), fingerprint_shape(other));
  EXPECT_FALSE(fingerprint_instance(baseline_trace(), baseline_machine(), {}) ==
               fingerprint_instance(other, baseline_machine(), {}));

  // Different universe → different shape.
  MultiTaskTrace widened;
  TaskTrace w(5);
  w.push_back({DynamicBitset::from_string("11000"), 0});
  w.push_back({DynamicBitset::from_string("00110"), 2});
  TaskTrace b2(3);
  b2.push_back({DynamicBitset::from_string("111"), 0});
  b2.push_back({DynamicBitset::from_string("001"), 1});
  widened.add_task(std::move(w));
  widened.add_task(std::move(b2));
  EXPECT_FALSE(fingerprint_shape(widened) ==
               fingerprint_shape(baseline_trace()));
}

TEST(Fingerprint, CanonicalKeysArePrefixTagged) {
  const std::string canonical = canonical_instance_key(
      baseline_trace(), baseline_machine(), {});
  EXPECT_EQ(canonical.rfind("hyperrec-instance-v1", 0), 0u);
  const std::string shape = canonical_shape_key(baseline_trace());
  EXPECT_EQ(shape.rfind("hyperrec-shape-v1", 0), 0u);
}

}  // namespace
}  // namespace hyperrec::cache
