#include "io/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "shyra/counter_app.hpp"
#include "shyra/tracer.hpp"
#include "support/ensure.hpp"
#include "workload/generators.hpp"

namespace hyperrec::io {
namespace {

/// Structural equality of two synchronized traces (the library defines no
/// operator== on traces, so the round-trip tests compare field by field).
void expect_traces_equal(const MultiTaskTrace& actual,
                         const MultiTaskTrace& expected) {
  ASSERT_EQ(actual.task_count(), expected.task_count());
  ASSERT_EQ(actual.steps(), expected.steps());
  for (std::size_t j = 0; j < expected.task_count(); ++j) {
    ASSERT_EQ(actual.task(j).local_universe(),
              expected.task(j).local_universe());
    for (std::size_t i = 0; i < expected.steps(); ++i) {
      EXPECT_EQ(actual.task(j).at(i).local, expected.task(j).at(i).local)
          << "task " << j << " step " << i;
      EXPECT_EQ(actual.task(j).at(i).private_demand,
                expected.task(j).at(i).private_demand)
          << "task " << j << " step " << i;
    }
  }
}

MultiTaskTrace sample_trace() {
  workload::MultiPhasedConfig config;
  config.tasks = 3;
  config.task_config.steps = 12;
  config.task_config.universe = 7;
  auto trace = workload::make_multi_phased(config, 5);
  return trace;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const auto original = sample_trace();
  const auto rebuilt = trace_from_string(trace_to_string(original));
  ASSERT_EQ(rebuilt.task_count(), original.task_count());
  ASSERT_EQ(rebuilt.steps(), original.steps());
  for (std::size_t j = 0; j < original.task_count(); ++j) {
    EXPECT_EQ(rebuilt.task(j).local_universe(),
              original.task(j).local_universe());
    for (std::size_t i = 0; i < original.steps(); ++i) {
      EXPECT_EQ(rebuilt.task(j).at(i).local, original.task(j).at(i).local);
      EXPECT_EQ(rebuilt.task(j).at(i).private_demand,
                original.task(j).at(i).private_demand);
    }
  }
}

TEST(TraceIo, RoundTripWithPrivateDemands) {
  MultiTaskTrace trace;
  TaskTrace task(3);
  task.push_back({DynamicBitset::from_string("101"), 7});
  task.push_back({DynamicBitset::from_string("010"), 0});
  trace.add_task(std::move(task));
  const auto rebuilt = trace_from_string(trace_to_string(trace));
  EXPECT_EQ(rebuilt.task(0).at(0).private_demand, 7u);
  EXPECT_EQ(rebuilt.task(0).at(1).private_demand, 0u);
}

TEST(TraceIo, ShyraCounterTraceRoundTrips) {
  const auto run = shyra::CounterApp(10).run();
  const auto original = shyra::to_multi_task_trace(run.trace);
  const auto rebuilt = trace_from_string(trace_to_string(original));
  EXPECT_EQ(rebuilt.steps(), 110u);
  EXPECT_EQ(rebuilt.task(3).local_universe(), 24u);
  for (std::size_t i = 0; i < 110; i += 13) {
    EXPECT_EQ(rebuilt.task(3).at(i).local, original.task(3).at(i).local);
  }
}

TEST(TraceIo, SingleTaskSingleStepRoundTrips) {
  MultiTaskTrace trace;
  TaskTrace task(1);
  task.push_back_local(DynamicBitset::from_string("1"));
  trace.add_task(std::move(task));
  expect_traces_equal(trace_from_string(trace_to_string(trace)), trace);
}

TEST(TraceIo, SingleTaskAllZeroRequirementsRoundTrip) {
  MultiTaskTrace trace;
  TaskTrace task(4);
  task.push_back_local(DynamicBitset(4));
  task.push_back_local(DynamicBitset(4));
  trace.add_task(std::move(task));
  expect_traces_equal(trace_from_string(trace_to_string(trace)), trace);
}

TEST(TraceIo, ZeroUniverseTaskRoundTrips) {
  // A task with no local switches (pure private-global consumer) serialises
  // with the "-" placeholder bitstring and reads back intact.
  MultiTaskTrace trace;
  TaskTrace task(0);
  task.push_back({DynamicBitset(0), 3});
  task.push_back({DynamicBitset(0), 1});
  trace.add_task(std::move(task));
  expect_traces_equal(trace_from_string(trace_to_string(trace)), trace);
}

TEST(TraceIo, RejectsTraceWithNoTasks) {
  const MultiTaskTrace empty;
  EXPECT_THROW((void)trace_to_string(empty), PreconditionError);
}

TEST(TraceIo, RejectsTraceWithNoSteps) {
  // Symmetric with the loader, which rejects n = 0.
  MultiTaskTrace trace;
  trace.add_task(TaskTrace(3));
  EXPECT_THROW((void)trace_to_string(trace), PreconditionError);
}

TEST(TraceIo, StreamSaveLoadRoundTrips) {
  // The stream API (not just the string convenience wrappers) round-trips,
  // and leaves the stream positioned after the trace so payloads can be
  // concatenated.
  const auto original = sample_trace();
  std::stringstream stream;
  save_trace(stream, original);
  save_trace(stream, original);
  expect_traces_equal(load_trace(stream), original);
  expect_traces_equal(load_trace(stream), original);
}

TEST(TraceIo, MidGrowthCheckpointAppendsBackToStraightThroughBuild) {
  const auto full = sample_trace();
  const std::size_t n = full.steps();
  // Checkpoint at every interior step k: save the first k steps, reload,
  // append the remaining steps, and the result must equal the
  // straight-through build exactly.
  for (std::size_t k = 1; k < n; ++k) {
    std::ostringstream os;
    save_trace_prefix(os, full, k);
    std::istringstream is(os.str());
    MultiTaskTrace reloaded = load_trace(is);
    ASSERT_EQ(reloaded.steps(), k);
    for (std::size_t i = k; i < n; ++i) {
      reloaded.append_step(full.step(i));
    }
    expect_traces_equal(reloaded, full);
    // A reloaded-and-grown trace re-serialises identically too.
    EXPECT_EQ(trace_to_string(reloaded), trace_to_string(full));
  }
}

TEST(TraceIo, FullPrefixEqualsSaveTrace) {
  const auto full = sample_trace();
  std::ostringstream prefix;
  save_trace_prefix(prefix, full, full.steps());
  EXPECT_EQ(prefix.str(), trace_to_string(full));
}

TEST(TraceIo, PrefixRejectsZeroAndOversizedCheckpoints) {
  const auto full = sample_trace();
  std::ostringstream os;
  EXPECT_THROW(save_trace_prefix(os, full, 0), PreconditionError);
  EXPECT_THROW(save_trace_prefix(os, full, full.steps() + 1),
               PreconditionError);
}

TEST(TraceIo, ConcatenatedCheckpointStreamLoadsEveryGrowthStage) {
  // A growth journal: successive mid-growth checkpoints of the same trace
  // concatenated into one stream (the existing concatenated-stream path).
  const auto full = sample_trace();
  const std::vector<std::size_t> stages = {3, 7, full.steps()};
  std::ostringstream journal;
  for (const std::size_t k : stages) save_trace_prefix(journal, full, k);

  std::istringstream is(journal.str());
  for (const std::size_t k : stages) {
    MultiTaskTrace stage = load_trace(is);
    ASSERT_EQ(stage.steps(), k);
    // Each stage grows back to the full trace by appending its tail.
    for (std::size_t i = k; i < full.steps(); ++i) {
      stage.append_step(full.step(i));
    }
    expect_traces_equal(stage, full);
  }
  // The journal is fully consumed: one more load hits end-of-stream.
  EXPECT_THROW(load_trace(is), PreconditionError);
}

TEST(TraceIo, RejectsWrongHeader) {
  EXPECT_THROW(trace_from_string("bogus v9\n"), PreconditionError);
}

TEST(TraceIo, RejectsTruncatedBody) {
  const auto text = trace_to_string(sample_trace());
  const auto truncated = text.substr(0, text.size() / 2);
  EXPECT_THROW(trace_from_string(truncated), PreconditionError);
}

TEST(TraceIo, RejectsBitstringLengthMismatch) {
  const std::string text =
      "hyperrec-trace v1\n1\n1\n3\n"
      "1010 0\n";  // 4 bits declared as universe 3
  EXPECT_THROW(trace_from_string(text), PreconditionError);
}

TEST(TraceIo, RejectsUnsynchronizedTrace) {
  MultiTaskTrace trace;
  TaskTrace a(2);
  a.push_back_local(DynamicBitset(2));
  TaskTrace b(2);
  b.push_back_local(DynamicBitset(2));
  b.push_back_local(DynamicBitset(2));
  trace.add_task(std::move(a));
  trace.add_task(std::move(b));
  EXPECT_THROW((void)trace_to_string(trace), PreconditionError);
}

TEST(ScheduleIo, RoundTripPreservesBoundaries) {
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(Partition::from_starts({0, 3, 8}, 12));
  schedule.tasks.push_back(Partition::from_starts({0, 5}, 12));
  schedule.global_boundaries = {0, 5};
  const auto rebuilt = schedule_from_string(schedule_to_string(schedule));
  ASSERT_EQ(rebuilt.tasks.size(), 2u);
  EXPECT_EQ(rebuilt.tasks[0].starts(),
            (std::vector<std::size_t>{0, 3, 8}));
  EXPECT_EQ(rebuilt.tasks[1].starts(), (std::vector<std::size_t>{0, 5}));
  EXPECT_EQ(rebuilt.global_boundaries, (std::vector<std::size_t>{0, 5}));
}

TEST(ScheduleIo, RoundTripWithoutGlobals) {
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(Partition::single(4));
  const auto rebuilt = schedule_from_string(schedule_to_string(schedule));
  EXPECT_TRUE(rebuilt.global_boundaries.empty());
  EXPECT_EQ(rebuilt.tasks[0].interval_count(), 1u);
}

TEST(ScheduleIo, RejectsWrongHeader) {
  EXPECT_THROW(schedule_from_string("hyperrec-trace v1\n"),
               PreconditionError);
}

TEST(ScheduleIo, RejectsMalformedBoundaries) {
  // Starts not beginning at 0 are rejected by Partition::from_starts.
  const std::string text =
      "hyperrec-schedule v1\n1\n6\n"
      "2 1 3\n0\n";
  EXPECT_THROW(schedule_from_string(text), PreconditionError);
}

}  // namespace
}  // namespace hyperrec::io
