// result_json writer: golden output (stable key order is part of the
// contract), RFC 8259 escaping, syntactic validity checked by a strict
// mini-parser, and absence of NaN/Inf (costs and durations are integral).
#include "io/result_json.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "engine/batch_engine.hpp"
#include "testutil/workload_instances.hpp"

namespace hyperrec::io {
namespace {

// --- strict recursive-descent JSON validator (RFC 8259 subset) -----------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + k >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + k]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return true;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

engine::BatchResult handcrafted_result() {
  engine::BatchResult result;
  result.parallelism = 2;
  result.elapsed = std::chrono::microseconds{777};

  result.cache_enabled = true;
  result.cache_capacity = 16;
  result.cache_size = 1;
  result.cache_stats.hits = 3;
  result.cache_stats.misses = 2;
  result.cache_stats.coalesced = 1;
  result.cache_stats.coalesced_failures = 1;
  result.cache_stats.insertions = 2;
  result.cache_stats.refreshes = 4;
  result.cache_stats.evictions = 1;
  result.cache_stats.warm_hits = 1;

  engine::JobResult job;
  job.index = 0;
  job.name = "phased-0";
  job.ok = true;
  job.winner = "coord-descent";
  job.cache = engine::JobCacheOutcome::kMiss;
  job.warm_started = true;
  job.elapsed = std::chrono::microseconds{123};
  job.solution.breakdown.total = 42;
  job.solution.breakdown.hyper = 12;
  job.solution.breakdown.reconfig = 30;
  job.solution.breakdown.global_hyper = 0;
  job.solution.breakdown.partial_hyper_steps = 3;
  job.solution.lower_bound = 40;  // certified: gap = (42-40)*100/40
  job.solution.gap_pct = 5.0;
  engine::PortfolioEntry entry;
  entry.solver = "coord-descent";
  entry.total = 42;
  entry.elapsed = std::chrono::microseconds{99};
  entry.ok = true;
  job.entries.push_back(entry);
  result.jobs.push_back(std::move(job));

  engine::JobResult failed;
  failed.index = 1;
  failed.name = "bad";
  failed.ok = false;
  failed.error = "machine/trace mismatch";
  failed.elapsed = std::chrono::microseconds{4};
  result.jobs.push_back(std::move(failed));
  return result;
}

TEST(ResultJson, GoldenEmptyBatch) {
  engine::BatchResult result;
  result.parallelism = 4;
  result.elapsed = std::chrono::microseconds{0};
  EXPECT_EQ(batch_result_to_json(result),
            "{\"schema\":\"hyperrec-batch-result\",\"version\":6,"
            "\"parallelism\":4,\"elapsed_us\":0,\"job_count\":0,"
            "\"tenant\":null,\"queue\":null,"
            "\"cache\":{\"enabled\":false,\"capacity\":0,\"size\":0,"
            "\"hits\":0,\"misses\":0,\"coalesced\":0,"
            "\"coalesced_failures\":0,\"insertions\":0,"
            "\"refreshes\":0,\"evictions\":0,\"expirations\":0,"
            "\"collisions\":0,\"warm_hits\":0},\"fleet\":null,"
            "\"jobs\":[]}\n");
}

TEST(ResultJson, GoldenTwoJobBatchWithStableKeyOrder) {
  EXPECT_EQ(
      batch_result_to_json(handcrafted_result()),
      "{\"schema\":\"hyperrec-batch-result\",\"version\":6,"
      "\"parallelism\":2,\"elapsed_us\":777,\"job_count\":2,"
      "\"tenant\":null,\"queue\":null,"
      "\"cache\":{\"enabled\":true,\"capacity\":16,\"size\":1,"
      "\"hits\":3,\"misses\":2,\"coalesced\":1,"
      "\"coalesced_failures\":1,\"insertions\":2,"
      "\"refreshes\":4,\"evictions\":1,\"expirations\":0,\"collisions\":0,"
      "\"warm_hits\":1},\"fleet\":null,\"jobs\":["
      "{\"index\":0,\"name\":\"phased-0\",\"ok\":true,\"error\":\"\","
      "\"winner\":\"coord-descent\",\"cache\":\"miss\","
      "\"warm_started\":true,\"streamed\":false,\"elapsed_us\":123,"
      "\"cost\":{\"total\":42,\"hyper\":12,\"reconfig\":30,"
      "\"global_hyper\":0,\"partial_hyper_steps\":3},"
      "\"lower_bound\":40,\"gap_pct\":5.0000,"
      "\"solvers\":[{\"name\":\"coord-descent\",\"ok\":true,\"total\":42,"
      "\"elapsed_us\":99}],\"windows\":[]},"
      "{\"index\":1,\"name\":\"bad\",\"ok\":false,"
      "\"error\":\"machine/trace mismatch\",\"winner\":\"\","
      "\"cache\":\"bypass\",\"warm_started\":false,\"streamed\":false,"
      "\"elapsed_us\":4,\"cost\":{\"total\":0,\"hyper\":0,\"reconfig\":0,"
      "\"global_hyper\":0,\"partial_hyper_steps\":0},"
      "\"lower_bound\":null,\"gap_pct\":null,\"solvers\":[],"
      "\"windows\":[]}]}\n");
}

TEST(ResultJson, GoldenStreamedJobWithWindows) {
  engine::BatchResult result;
  result.parallelism = 1;
  result.elapsed = std::chrono::microseconds{900};

  engine::JobResult job;
  job.index = 0;
  job.name = "stream-0";
  job.ok = true;
  job.winner = "streaming";
  job.streamed = true;
  job.elapsed = std::chrono::microseconds{456};
  job.solution.breakdown.total = 99;
  job.solution.breakdown.hyper = 40;
  job.solution.breakdown.reconfig = 59;
  job.solution.breakdown.partial_hyper_steps = 5;

  streaming::WindowReport first;
  first.index = 0;
  first.trigger = streaming::TriggerKind::kInitial;
  first.window_lo = 0;
  first.window_hi = 1;
  first.ok = true;
  first.winner = "aligned-dp";
  first.elapsed = std::chrono::microseconds{11};
  first.window_cost = 7;
  first.published_cost = 7;
  job.windows.push_back(first);

  streaming::WindowReport second;
  second.index = 1;
  second.trigger = streaming::TriggerKind::kStepCount;
  second.window_lo = 4;
  second.window_hi = 12;
  second.ok = true;
  second.winner = "cache";
  second.cache = cache::CacheOutcome::kHit;
  second.warm_started = true;
  second.elapsed = std::chrono::microseconds{22};
  second.window_cost = 31;
  second.published_cost = 99;
  second.splice_prefix_boundaries = 2;
  job.windows.push_back(second);
  result.jobs.push_back(std::move(job));

  EXPECT_EQ(
      batch_result_to_json(result),
      "{\"schema\":\"hyperrec-batch-result\",\"version\":6,"
      "\"parallelism\":1,\"elapsed_us\":900,\"job_count\":1,"
      "\"tenant\":null,\"queue\":null,"
      "\"cache\":{\"enabled\":false,\"capacity\":0,\"size\":0,"
      "\"hits\":0,\"misses\":0,\"coalesced\":0,"
      "\"coalesced_failures\":0,\"insertions\":0,"
      "\"refreshes\":0,\"evictions\":0,\"expirations\":0,\"collisions\":0,"
      "\"warm_hits\":0},\"fleet\":null,\"jobs\":["
      "{\"index\":0,\"name\":\"stream-0\",\"ok\":true,\"error\":\"\","
      "\"winner\":\"streaming\",\"cache\":\"bypass\","
      "\"warm_started\":false,\"streamed\":true,\"elapsed_us\":456,"
      "\"cost\":{\"total\":99,\"hyper\":40,\"reconfig\":59,"
      "\"global_hyper\":0,\"partial_hyper_steps\":5},"
      "\"lower_bound\":null,\"gap_pct\":null,\"solvers\":[],"
      "\"windows\":["
      "{\"index\":0,\"trigger\":\"initial\",\"lo\":0,\"hi\":1,"
      "\"ok\":true,\"error\":\"\",\"winner\":\"aligned-dp\","
      "\"cache\":\"bypass\","
      "\"warm_started\":false,\"elapsed_us\":11,\"window_cost\":7,"
      "\"published_cost\":7,\"prefix_boundaries\":0},"
      "{\"index\":1,\"trigger\":\"step-count\",\"lo\":4,\"hi\":12,"
      "\"ok\":true,\"error\":\"\",\"winner\":\"cache\","
      "\"cache\":\"hit\","
      "\"warm_started\":true,\"elapsed_us\":22,\"window_cost\":31,"
      "\"published_cost\":99,\"prefix_boundaries\":2}]}]}\n");
}

TEST(ResultJson, GoldenFleetSummary) {
  engine::BatchResult result;
  result.parallelism = 2;
  result.elapsed = std::chrono::microseconds{55};
  result.cache_enabled = true;
  result.cache_capacity = 8;
  result.cache_size = 2;
  result.cache_stats.hits = 5;
  result.cache_stats.misses = 2;
  result.cache_stats.insertions = 2;
  result.cache_stats.refreshes = 1;

  streaming::FleetStats fleet;
  fleet.streams = 2;
  fleet.accepted = 20;
  fleet.applied = 18;
  fleet.resolves = 6;
  fleet.failed_windows = 1;
  fleet.dropped = 2;
  fleet.publications = 19;
  fleet.failures = 1;
  result.fleet = fleet;

  streaming::StreamSummary healthy;
  healthy.id = 0;
  healthy.steps = 10;
  healthy.resolves = 4;
  healthy.epoch = 11;
  healthy.published_cost = 37;
  result.fleet_streams.push_back(healthy);
  streaming::StreamSummary poisoned;
  poisoned.id = 1;
  poisoned.steps = 8;
  poisoned.resolves = 2;
  poisoned.failed_windows = 1;
  poisoned.epoch = 8;
  poisoned.poisoned = true;  // faulted before any successful window
  result.fleet_streams.push_back(poisoned);

  EXPECT_EQ(
      batch_result_to_json(result),
      "{\"schema\":\"hyperrec-batch-result\",\"version\":6,"
      "\"parallelism\":2,\"elapsed_us\":55,\"job_count\":0,"
      "\"tenant\":null,\"queue\":null,"
      "\"cache\":{\"enabled\":true,\"capacity\":8,\"size\":2,"
      "\"hits\":5,\"misses\":2,\"coalesced\":0,"
      "\"coalesced_failures\":0,\"insertions\":2,"
      "\"refreshes\":1,\"evictions\":0,\"expirations\":0,\"collisions\":0,"
      "\"warm_hits\":0},\"fleet\":"
      "{\"streams\":2,\"accepted\":20,\"applied\":18,\"resolves\":6,"
      "\"failed_windows\":1,\"dropped\":2,\"publications\":19,"
      "\"failures\":1,\"per_stream\":["
      "{\"id\":0,\"steps\":10,\"resolves\":4,\"failed_windows\":0,"
      "\"epoch\":11,\"poisoned\":false,\"published_cost\":37},"
      "{\"id\":1,\"steps\":8,\"resolves\":2,\"failed_windows\":1,"
      "\"epoch\":8,\"poisoned\":true,\"published_cost\":null}]},"
      "\"jobs\":[]}\n");
  EXPECT_TRUE(JsonChecker(batch_result_to_json(result)).valid());
}

TEST(ResultJson, GoldenServiceEnvelopeCarriesTenantAndQueue) {
  engine::BatchResult result;
  result.parallelism = 1;
  result.elapsed = std::chrono::microseconds{10};

  ServiceFields service;
  service.tenant = "acme";
  service.priority = 7;
  service.queue_depth = 3;
  service.wait = std::chrono::microseconds{250};
  EXPECT_EQ(batch_result_to_json(result, &service),
            "{\"schema\":\"hyperrec-batch-result\",\"version\":6,"
            "\"parallelism\":1,\"elapsed_us\":10,\"job_count\":0,"
            "\"tenant\":\"acme\","
            "\"queue\":{\"priority\":7,\"depth\":3,\"wait_us\":250},"
            "\"cache\":{\"enabled\":false,\"capacity\":0,\"size\":0,"
            "\"hits\":0,\"misses\":0,\"coalesced\":0,"
            "\"coalesced_failures\":0,\"insertions\":0,"
            "\"refreshes\":0,\"evictions\":0,\"expirations\":0,"
            "\"collisions\":0,\"warm_hits\":0},\"fleet\":null,"
            "\"jobs\":[]}\n");
  EXPECT_TRUE(JsonChecker(batch_result_to_json(result, &service)).valid());

  // The envelope is strictly additive: stripping it yields the CLI document.
  const std::string with = batch_result_to_json(result, &service);
  const std::string without = batch_result_to_json(result);
  EXPECT_NE(with, without);
  EXPECT_NE(without.find("\"tenant\":null,\"queue\":null"),
            std::string::npos);
}

TEST(ResultJson, HostileStringsAreEscapedAndStillValidJson) {
  engine::BatchResult result;
  result.parallelism = 1;
  engine::JobResult job;
  job.index = 0;
  job.name = "quote\" backslash\\ newline\n tab\t bell\x07 end";
  job.error = std::string("nul\x01" "byte");
  job.winner = "naïve-ütf8";
  result.jobs.push_back(std::move(job));

  const std::string json = batch_result_to_json(result);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("quote\\\""), std::string::npos);
  EXPECT_NE(json.find("backslash\\\\"), std::string::npos);
  EXPECT_NE(json.find("newline\\n"), std::string::npos);
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("naïve-ütf8"), std::string::npos);
}

TEST(ResultJson, RealEngineOutputParsesAndIsNaNFree) {
  std::vector<engine::BatchJob> jobs;
  for (auto& instance :
       testutil::seeded_workload_instances(2, 16, 8, 0x10AD)) {
    engine::BatchJob job;
    job.trace = std::move(instance.trace);
    job.machine = std::move(instance.machine);
    job.name = instance.name;
    jobs.push_back(std::move(job));
  }
  engine::BatchEngineConfig config;
  config.portfolio.solvers = {"aligned-dp", "greedy-w8"};
  const engine::BatchResult result =
      engine::BatchEngine(std::move(config)).solve(jobs);

  const std::string json = batch_result_to_json(result);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // A NaN/Inf literal could only sit in a value position — right after a
  // ':', ',' or '['.  (A bare substring scan would trip on the "tenant"
  // key, which contains "nan".)
  for (const std::string forbidden : {"nan", "inf", "NaN", "Inf"}) {
    for (const char before : {':', ',', '['}) {
      EXPECT_EQ(json.find(before + forbidden), std::string::npos)
          << before << forbidden;
    }
  }
}

TEST(ResultJson, StreamAndStringOverloadsAgree) {
  const engine::BatchResult result = handcrafted_result();
  std::ostringstream os;
  save_batch_result_json(os, result);
  EXPECT_EQ(os.str(), batch_result_to_json(result));
}

}  // namespace
}  // namespace hyperrec::io
