#include "shyra/tracer.hpp"

#include <gtest/gtest.h>

#include "model/cost_switch.hpp"
#include "shyra/counter_app.hpp"

namespace hyperrec::shyra {
namespace {

std::vector<ShyraConfig> counter_trace() {
  return CounterApp(10).run().trace;
}

TEST(Tracer, MultiTaskShapeMatchesPaper) {
  const auto trace = to_multi_task_trace(counter_trace());
  ASSERT_EQ(trace.task_count(), 4u);
  EXPECT_TRUE(trace.synchronized());
  EXPECT_EQ(trace.steps(), 110u);
  EXPECT_EQ(trace.task(0).local_universe(), 8u);
  EXPECT_EQ(trace.task(1).local_universe(), 8u);
  EXPECT_EQ(trace.task(2).local_universe(), 8u);
  EXPECT_EQ(trace.task(3).local_universe(), 24u);
}

TEST(Tracer, SingleTaskShape) {
  const auto trace = to_single_task_trace(counter_trace());
  ASSERT_EQ(trace.task_count(), 1u);
  EXPECT_EQ(trace.task(0).local_universe(), 48u);
  EXPECT_EQ(trace.steps(), 110u);
}

TEST(Tracer, PerStepCountsAgreeBetweenDecompositions) {
  const auto configs = counter_trace();
  const auto single = to_single_task_trace(configs);
  const auto multi = to_multi_task_trace(configs);
  for (std::size_t i = 0; i < single.steps(); ++i) {
    std::size_t split_count = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      split_count += multi.task(j).at(i).local.count();
    }
    EXPECT_EQ(split_count, single.task(0).at(i).local.count()) << "step " << i;
  }
}

TEST(Tracer, MachinesMatchPaperParameters) {
  const auto m4 = multi_task_machine();
  ASSERT_EQ(m4.task_count(), 4u);
  EXPECT_EQ(m4.tasks[0].local_switches, 8u);
  EXPECT_EQ(m4.tasks[3].local_switches, 24u);
  EXPECT_EQ(m4.tasks[0].local_init, 8);
  EXPECT_EQ(m4.tasks[3].local_init, 24);
  EXPECT_EQ(m4.total_switches(), 48u);

  const auto m1 = single_task_machine();
  ASSERT_EQ(m1.task_count(), 1u);
  EXPECT_EQ(m1.tasks[0].local_switches, 48u);
  EXPECT_EQ(m1.tasks[0].local_init, 48);
}

TEST(Tracer, NoHyperBaselineIs5280) {
  // 110 steps × 48 switches — the paper's quoted baseline.
  const auto trace = counter_trace();
  EXPECT_EQ(no_hyperreconfiguration_cost(single_task_machine(), trace.size()),
            5280);
  EXPECT_EQ(no_hyperreconfiguration_cost(multi_task_machine(), trace.size()),
            5280);
}

TEST(Tracer, Lut2RequirementsVanishOutsideIncrementCycles) {
  const auto trace = to_multi_task_trace(counter_trace());
  for (std::size_t i = 0; i < trace.steps(); ++i) {
    const std::size_t cycle = i % 10;
    const bool increment_pair_cycle = cycle >= 6 && cycle <= 8;
    EXPECT_EQ(trace.task(1).at(i).local.count() > 0, increment_pair_cycle)
        << "step " << i;
  }
}

TEST(Tracer, MuxSelector5NeverRequired) {
  // LUT2's third input is never live in the counter schedule, so the MUX
  // task's bits 20–23 (selector 5 within the 24-bit task universe) stay 0.
  const auto trace = to_multi_task_trace(counter_trace());
  const auto mux_union = trace.task(3).local_union_naive(0, trace.steps());
  for (std::size_t bit = 20; bit < 24; ++bit) {
    EXPECT_FALSE(mux_union.test(bit));
  }
}

TEST(Tracer, ValidatesAgainstMachines) {
  const auto configs = counter_trace();
  EXPECT_NO_THROW(
      multi_task_machine().validate_trace(to_multi_task_trace(configs)));
  EXPECT_NO_THROW(
      single_task_machine().validate_trace(to_single_task_trace(configs)));
}

}  // namespace
}  // namespace hyperrec::shyra
