#include "shyra/lfsr_app.hpp"

#include <gtest/gtest.h>

#include <set>

#include "shyra/tracer.hpp"
#include "support/ensure.hpp"

namespace hyperrec::shyra {
namespace {

TEST(LfsrApp, SoftwareModelHasPeriodFifteen) {
  std::uint8_t state = 1;
  std::set<std::uint8_t> seen;
  for (int i = 0; i < 15; ++i) {
    seen.insert(state);
    state = LfsrApp::next_state(state);
  }
  EXPECT_EQ(state, 1u) << "returns to the seed after 15 transitions";
  EXPECT_EQ(seen.size(), 15u) << "visits every non-zero state";
}

TEST(LfsrApp, HardwareMatchesSoftwareModel) {
  for (const std::uint8_t seed : {std::uint8_t{1}, std::uint8_t{5},
                                  std::uint8_t{9}, std::uint8_t{15}}) {
    const LfsrApp app(seed);
    const auto result = app.run(20);
    std::uint8_t expected = seed;
    for (std::size_t s = 0; s < 20; ++s) {
      expected = LfsrApp::next_state(expected);
      EXPECT_EQ(result.states[s], expected)
          << "seed " << int(seed) << " step " << s;
    }
  }
}

TEST(LfsrApp, HardwarePeriodFifteen) {
  const LfsrApp app(7);
  const auto result = app.run(15);
  EXPECT_EQ(result.states.back(), 7u);
}

TEST(LfsrApp, ZeroSeedRejected) {
  EXPECT_THROW(LfsrApp(0), PreconditionError);
  EXPECT_THROW(LfsrApp(16), PreconditionError);
}

TEST(LfsrApp, TraceLengthIsThreePerStep) {
  const LfsrApp app(3);
  EXPECT_EQ(app.run(10).trace.size(), 30u);
  EXPECT_EQ(LfsrApp::step_program().size(), 3u);
}

TEST(LfsrApp, EveryConfigValid) {
  for (const ShyraConfig& config : LfsrApp::step_program()) {
    EXPECT_NO_THROW(config.validate());
  }
}

TEST(LfsrApp, ProfileDiffersFromCounter) {
  // The LFSR is shift-heavy: cycle 1 and 2 use both LUTs, cycle 3 one —
  // a 2/3 dual-LUT ratio vs the counter's 3/10.
  const auto program = LfsrApp::step_program();
  EXPECT_TRUE(analyze_usage(program[0]).lut_used[1]);
  EXPECT_TRUE(analyze_usage(program[1]).lut_used[1]);
  EXPECT_FALSE(analyze_usage(program[2]).lut_used[1]);
}

TEST(LfsrApp, TraceFeedsTheCostPipeline) {
  const LfsrApp app(1);
  const auto result = app.run(15);
  const auto multi = to_multi_task_trace(result.trace);
  EXPECT_EQ(multi.steps(), 45u);
  EXPECT_NO_THROW(multi_task_machine().validate_trace(multi));
  // The periodic 3-cycle structure shows up as exact period-3 repetition.
  for (std::size_t i = 3; i < multi.steps(); ++i) {
    EXPECT_EQ(multi.task(0).at(i).local, multi.task(0).at(i - 3).local);
  }
}

}  // namespace
}  // namespace hyperrec::shyra
