#include "shyra/builder.hpp"

#include <gtest/gtest.h>

#include "support/ensure.hpp"

namespace hyperrec::shyra {
namespace {

TEST(TruthTables, Tt3EnumeratesAllEntries) {
  const std::uint8_t and3 =
      tt3([](bool a, bool b, bool c) { return a && b && c; });
  EXPECT_EQ(and3, 0x80) << "only address 7 (all ones) is set";
  const std::uint8_t or3 =
      tt3([](bool a, bool b, bool c) { return a || b || c; });
  EXPECT_EQ(or3, 0xFE) << "every address except 0";
}

TEST(TruthTables, Tt2ReplicatesOverInputTwo) {
  const std::uint8_t xor2 = tt2([](bool a, bool b) { return a != b; });
  for (std::uint8_t address = 0; address < 4; ++address) {
    EXPECT_EQ((xor2 >> address) & 1, (xor2 >> (address + 4)) & 1)
        << "upper half must mirror lower half";
  }
  EXPECT_EQ(xor2 & 0x0F, 0x06);
}

TEST(TruthTables, Tt1ReplicatesOverInputsOneAndTwo) {
  const std::uint8_t not1 = tt1([](bool a) { return !a; });
  EXPECT_EQ(not1, 0x55) << "output = NOT input0 at every address";
}

TEST(TruthTables, ConstantTables) {
  EXPECT_EQ(tt_const(false), 0x00);
  EXPECT_EQ(tt_const(true), 0xFF);
}

TEST(ConfigBuilder, Lut1SetsItsFields) {
  const auto config = ConfigBuilder{}.lut1(0xAB, 1, 2, 3, 4).build();
  EXPECT_EQ(config.lut_tt[0], 0xAB);
  EXPECT_EQ(config.mux_sel[0], 1);
  EXPECT_EQ(config.mux_sel[1], 2);
  EXPECT_EQ(config.mux_sel[2], 3);
  EXPECT_EQ(config.demux_sel[0], 4);
  EXPECT_EQ(config.demux_sel[1], ShyraConfig::kNoWrite)
      << "LUT2 stays disabled";
}

TEST(ConfigBuilder, Lut2SetsItsFields) {
  const auto config = ConfigBuilder{}.lut2(0xCD, 5, 6, 7, 8).build();
  EXPECT_EQ(config.lut_tt[1], 0xCD);
  EXPECT_EQ(config.mux_sel[3], 5);
  EXPECT_EQ(config.mux_sel[4], 6);
  EXPECT_EQ(config.mux_sel[5], 7);
  EXPECT_EQ(config.demux_sel[1], 8);
}

TEST(ConfigBuilder, BuildValidates) {
  EXPECT_THROW((void)ConfigBuilder{}.lut1(0, 10, 0, 0, 1).build(),
               PreconditionError)
      << "mux selector 10 addresses no register";
  EXPECT_THROW((void)ConfigBuilder{}.lut1(0, 0, 0, 0, 3).lut2(0, 0, 0, 0, 3).build(),
               PreconditionError)
      << "write collision";
}

}  // namespace
}  // namespace hyperrec::shyra
