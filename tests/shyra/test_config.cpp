#include "shyra/config.hpp"

#include <gtest/gtest.h>

#include "shyra/builder.hpp"
#include "support/ensure.hpp"

namespace hyperrec::shyra {
namespace {

TEST(ShyraConfig, DefaultIsIdleAndValid) {
  const ShyraConfig config;
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.demux_sel[0], ShyraConfig::kNoWrite);
  EXPECT_EQ(config.demux_sel[1], ShyraConfig::kNoWrite);
}

TEST(ShyraConfig, ValidateRejectsBadMuxSelector) {
  ShyraConfig config;
  config.mux_sel[2] = 10;  // only registers 0–9 exist
  EXPECT_THROW(config.validate(), PreconditionError);
}

TEST(ShyraConfig, ValidateRejectsBadDemuxSelector) {
  ShyraConfig config;
  config.demux_sel[0] = 12;  // neither a register nor kNoWrite
  EXPECT_THROW(config.validate(), PreconditionError);
}

TEST(ShyraConfig, ValidateRejectsWriteCollision) {
  ShyraConfig config;
  config.demux_sel[0] = 3;
  config.demux_sel[1] = 3;
  EXPECT_THROW(config.validate(), PreconditionError);
}

TEST(ShyraConfig, PackUnpackRoundTrip) {
  ShyraConfig config;
  config.lut_tt = {0xA5, 0x3C};
  config.mux_sel = {0, 1, 2, 7, 8, 9};
  config.demux_sel = {4, ShyraConfig::kNoWrite};
  const ShyraConfig rebuilt = ShyraConfig::unpack(config.pack());
  EXPECT_EQ(rebuilt, config);
}

TEST(ShyraConfig, PackUses48Bits) {
  ShyraConfig config;
  config.lut_tt = {0xFF, 0xFF};
  config.mux_sel = {9, 9, 9, 9, 9, 9};
  config.demux_sel = {ShyraConfig::kNoWrite, ShyraConfig::kNoWrite};
  EXPECT_EQ(config.pack() >> kConfigBits, 0u);
}

TEST(ShyraConfig, UnpackRejectsOversizedWord) {
  EXPECT_THROW((void)ShyraConfig::unpack(std::uint64_t{1} << 48),
               PreconditionError);
}

TEST(ShyraConfig, DistanceIsHamming) {
  ShyraConfig a;
  ShyraConfig b = a;
  EXPECT_EQ(a.distance(b), 0u);
  b.lut_tt[0] = 0x01;  // one bit
  EXPECT_EQ(a.distance(b), 1u);
  b.lut_tt[1] = 0x03;  // two more bits
  EXPECT_EQ(a.distance(b), 3u);
}

TEST(AnalyzeUsage, UnusedLutContributesNothing) {
  const ShyraConfig config;  // both demux = kNoWrite
  const ConfigUsage usage = analyze_usage(config);
  EXPECT_FALSE(usage.lut_used[0]);
  EXPECT_FALSE(usage.lut_used[1]);
  EXPECT_EQ(context_requirement(config).count(), 0u);
}

TEST(AnalyzeUsage, TwoInputFunctionHasTwoLiveInputs) {
  const auto config = ConfigBuilder{}
                          .lut1(tt2([](bool a, bool b) { return a != b; }), 0,
                                1, 2, 5)
                          .build();
  const ConfigUsage usage = analyze_usage(config);
  EXPECT_TRUE(usage.lut_used[0]);
  EXPECT_TRUE(usage.input_live[0][0]);
  EXPECT_TRUE(usage.input_live[0][1]);
  EXPECT_FALSE(usage.input_live[0][2]) << "tt2 replicates over input 2";
}

TEST(AnalyzeUsage, ConstantLutHasNoLiveInputs) {
  const auto config = ConfigBuilder{}.lut1(tt_const(true), 0, 1, 2, 5).build();
  const ConfigUsage usage = analyze_usage(config);
  EXPECT_TRUE(usage.lut_used[0]);
  EXPECT_FALSE(usage.input_live[0][0]);
  EXPECT_FALSE(usage.input_live[0][1]);
  EXPECT_FALSE(usage.input_live[0][2]);
}

TEST(ContextRequirement, UsedLutRequiresTruthTableAndDemux) {
  const auto config = ConfigBuilder{}.lut1(tt_const(true), 0, 0, 0, 5).build();
  const DynamicBitset req = context_requirement(config);
  // LUT1 TT bits 0–7 + demux selector bits 16–19; no MUX bits (no live in).
  EXPECT_EQ(req.count(), 12u);
  for (std::size_t bit = 0; bit < 8; ++bit) EXPECT_TRUE(req.test(bit));
  for (std::size_t bit = 16; bit < 20; ++bit) EXPECT_TRUE(req.test(bit));
  for (std::size_t bit = 24; bit < 48; ++bit) EXPECT_FALSE(req.test(bit));
}

TEST(ContextRequirement, LiveInputsAddMuxSelectors) {
  const auto config = ConfigBuilder{}
                          .lut1(tt1([](bool a) { return !a; }), 3, 0, 0, 5)
                          .build();
  const DynamicBitset req = context_requirement(config);
  // 8 TT + 4 demux + 4 mux (selector 0 only) = 16.
  EXPECT_EQ(req.count(), 16u);
  for (std::size_t bit = 24; bit < 28; ++bit) EXPECT_TRUE(req.test(bit));
  for (std::size_t bit = 28; bit < 48; ++bit) EXPECT_FALSE(req.test(bit));
}

TEST(ContextRequirement, Lut2UsesItsOwnBitRanges) {
  const auto config = ConfigBuilder{}
                          .lut2(tt2([](bool a, bool b) { return a && b; }), 1,
                                2, 0, 7)
                          .build();
  const DynamicBitset req = context_requirement(config);
  // LUT2 TT bits 8–15, demux1 bits 20–23, mux selectors 3 and 4
  // (bits 36–43).
  for (std::size_t bit = 8; bit < 16; ++bit) EXPECT_TRUE(req.test(bit));
  for (std::size_t bit = 20; bit < 24; ++bit) EXPECT_TRUE(req.test(bit));
  for (std::size_t bit = 36; bit < 44; ++bit) EXPECT_TRUE(req.test(bit));
  EXPECT_EQ(req.count(), 8u + 4u + 8u);
}

TEST(PerTaskRequirement, SplitsMatchCombinedRequirement) {
  const auto config = ConfigBuilder{}
                          .lut1(tt2([](bool a, bool b) { return a != b; }), 0,
                                1, 0, 4)
                          .lut2(tt2([](bool a, bool b) { return a && b; }), 0,
                                1, 0, 8)
                          .build();
  const auto split = per_task_requirement(config);
  const auto full = context_requirement(config);
  EXPECT_EQ(split[0].count() + split[1].count() + split[2].count() +
                split[3].count(),
            full.count());
  EXPECT_EQ(split[0].size(), 8u);
  EXPECT_EQ(split[3].size(), 24u);
  EXPECT_EQ(split[0].count(), 8u);
  EXPECT_EQ(split[1].count(), 8u);
  EXPECT_EQ(split[2].count(), 8u) << "both demux selectors in use";
  EXPECT_EQ(split[3].count(), 16u) << "two live inputs per LUT";
}

}  // namespace
}  // namespace hyperrec::shyra
