#include "shyra/machine.hpp"

#include <gtest/gtest.h>

#include "shyra/builder.hpp"
#include "support/ensure.hpp"

namespace hyperrec::shyra {
namespace {

TEST(ShyraMachine, RegistersStartClear) {
  const ShyraMachine machine;
  for (std::size_t r = 0; r < kRegisters; ++r) EXPECT_FALSE(machine.reg(r));
}

TEST(ShyraMachine, SetAndReadRegisters) {
  ShyraMachine machine;
  machine.set_reg(3, true);
  EXPECT_TRUE(machine.reg(3));
  EXPECT_FALSE(machine.reg(2));
  EXPECT_THROW((void)machine.reg(10), PreconditionError);
  EXPECT_THROW(machine.set_reg(10, true), PreconditionError);
}

TEST(ShyraMachine, ValueReadWriteRoundTripLsbFirst) {
  ShyraMachine machine;
  machine.write_value(0, 4, 0b1010);
  EXPECT_FALSE(machine.reg(0));
  EXPECT_TRUE(machine.reg(1));
  EXPECT_FALSE(machine.reg(2));
  EXPECT_TRUE(machine.reg(3));
  EXPECT_EQ(machine.read_value(0, 4), 0b1010u);
}

TEST(ShyraMachine, ValueWindowBoundsChecked) {
  ShyraMachine machine;
  EXPECT_THROW(machine.write_value(8, 4, 0), PreconditionError);
  EXPECT_THROW((void)machine.read_value(7, 4), PreconditionError);
}

TEST(ShyraMachine, LutEvaluatesTruthTable) {
  ShyraMachine machine;
  machine.set_reg(0, true);
  machine.set_reg(1, false);
  const auto xor_config =
      ConfigBuilder{}
          .lut1(tt2([](bool a, bool b) { return a != b; }), 0, 1, 0, 5)
          .build();
  machine.step(xor_config);
  EXPECT_TRUE(machine.reg(5)) << "1 XOR 0 = 1";

  machine.set_reg(1, true);
  machine.step(xor_config);
  EXPECT_FALSE(machine.reg(5)) << "1 XOR 1 = 0";
}

TEST(ShyraMachine, BothLutsRunInOneCycle) {
  ShyraMachine machine;
  machine.set_reg(0, true);
  machine.set_reg(1, true);
  const auto config =
      ConfigBuilder{}
          .lut1(tt2([](bool a, bool b) { return a && b; }), 0, 1, 0, 6)
          .lut2(tt2([](bool a, bool b) { return a || b; }), 0, 1, 0, 7)
          .build();
  machine.step(config);
  EXPECT_TRUE(machine.reg(6));
  EXPECT_TRUE(machine.reg(7));
}

TEST(ShyraMachine, ReadsSeePreCycleState) {
  // r0 := NOT r0 — reading and writing the same register must use the old
  // value, so two applications restore the original.
  ShyraMachine machine;
  const auto invert =
      ConfigBuilder{}.lut1(tt1([](bool a) { return !a; }), 0, 0, 0, 0).build();
  machine.step(invert);
  EXPECT_TRUE(machine.reg(0));
  machine.step(invert);
  EXPECT_FALSE(machine.reg(0));
}

TEST(ShyraMachine, SwapViaTwoLutsInOneCycle) {
  // Simultaneous r0←r1 and r1←r0 exercises synchronous semantics fully.
  ShyraMachine machine;
  machine.set_reg(0, true);
  machine.set_reg(1, false);
  const auto swap = ConfigBuilder{}
                        .lut1(tt1([](bool a) { return a; }), 1, 0, 0, 0)
                        .lut2(tt1([](bool a) { return a; }), 0, 0, 0, 1)
                        .build();
  machine.step(swap);
  EXPECT_FALSE(machine.reg(0));
  EXPECT_TRUE(machine.reg(1));
}

TEST(ShyraMachine, NoWriteLeavesRegistersUntouched) {
  ShyraMachine machine;
  machine.set_reg(4, true);
  ShyraConfig idle;  // both demux disabled
  machine.step(idle);
  EXPECT_TRUE(machine.reg(4));
}

TEST(ShyraMachine, RunExecutesWholeProgram) {
  ShyraMachine machine;
  const auto invert =
      ConfigBuilder{}.lut1(tt1([](bool a) { return !a; }), 0, 0, 0, 0).build();
  const std::vector<ShyraConfig> program{invert, invert, invert};
  EXPECT_EQ(machine.run(program), 3u);
  EXPECT_TRUE(machine.reg(0)) << "odd number of inversions";
}

TEST(ShyraMachine, ThreeInputLutAddressing) {
  // Majority function exercises all 8 truth-table entries.
  ShyraMachine machine;
  const auto majority =
      ConfigBuilder{}
          .lut1(tt3([](bool a, bool b, bool c) {
                  return (a && b) || (a && c) || (b && c);
                }),
                0, 1, 2, 9)
          .build();
  struct Case {
    bool r0, r1, r2, expected;
  };
  const Case cases[] = {{false, false, false, false},
                        {true, false, false, false},
                        {true, true, false, true},
                        {true, true, true, true},
                        {false, true, true, true},
                        {false, false, true, false}};
  for (const Case& c : cases) {
    machine.set_reg(0, c.r0);
    machine.set_reg(1, c.r1);
    machine.set_reg(2, c.r2);
    machine.step(majority);
    EXPECT_EQ(machine.reg(9), c.expected)
        << c.r0 << c.r1 << c.r2;
  }
}

}  // namespace
}  // namespace hyperrec::shyra
