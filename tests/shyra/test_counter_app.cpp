#include "shyra/counter_app.hpp"

#include <gtest/gtest.h>

#include "support/ensure.hpp"

namespace hyperrec::shyra {
namespace {

TEST(CounterApp, PaperScenarioProducesExactly110Steps) {
  // §6: initial value 0000, upper bound 1010 → n = 110 reconfigurations.
  const CounterApp app(10);
  const auto result = app.run();
  EXPECT_EQ(result.trace.size(), 110u);
  EXPECT_EQ(result.iterations, 11u);
  EXPECT_TRUE(result.done);
  EXPECT_EQ(result.final_count, 10u);
}

TEST(CounterApp, IterationProgramHasTenCycles) {
  EXPECT_EQ(CounterApp::iteration_program().size(), 10u);
}

class CounterBoundTest : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(CounterBoundTest, CountsExactlyToBound) {
  const std::uint8_t bound = GetParam();
  const CounterApp app(bound);
  const auto result = app.run();
  EXPECT_TRUE(result.done);
  EXPECT_EQ(result.final_count, bound);
  EXPECT_EQ(result.iterations, static_cast<std::size_t>(bound) + 1)
      << "compare-first loop runs bound+1 iterations";
  EXPECT_EQ(result.trace.size(), (static_cast<std::size_t>(bound) + 1) * 10);
}

INSTANTIATE_TEST_SUITE_P(AllBounds, CounterBoundTest,
                         ::testing::Values(0, 1, 2, 3, 5, 7, 8, 10, 12, 15));

TEST(CounterApp, BoundZeroFinishesInOneIteration) {
  const CounterApp app(0);
  const auto result = app.run();
  EXPECT_EQ(result.iterations, 1u);
  EXPECT_EQ(result.final_count, 0u);
}

TEST(CounterApp, MaxIterationCapStopsRunawayRuns) {
  const CounterApp app(15);
  const auto result = app.run(/*max_iterations=*/3);
  EXPECT_FALSE(result.done);
  EXPECT_EQ(result.iterations, 3u);
  EXPECT_EQ(result.trace.size(), 30u);
  EXPECT_EQ(result.final_count, 3u) << "three increments executed";
}

TEST(CounterApp, BoundMustFitInFourBits) {
  EXPECT_THROW(CounterApp(16), PreconditionError);
}

TEST(CounterApp, EveryTracedConfigIsValid) {
  const CounterApp app(10);
  const auto result = app.run();
  for (const ShyraConfig& config : result.trace) {
    EXPECT_NO_THROW(config.validate());
  }
}

TEST(CounterApp, TraceIsPeriodicWithPeriodTen) {
  const CounterApp app(5);
  const auto result = app.run();
  const auto iteration = CounterApp::iteration_program();
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_EQ(result.trace[i], iteration[i % 10]) << "step " << i;
  }
}

TEST(CounterApp, Lut2OnlyUsedInIncrementCycles) {
  // The paper's Figure 2 shows long unused stretches for LUT2; in this
  // schedule LUT2 is live exactly in cycles 7–9 (ripple-carry pairs).
  const auto iteration = CounterApp::iteration_program();
  for (std::size_t cycle = 0; cycle < 10; ++cycle) {
    const ConfigUsage usage = analyze_usage(iteration[cycle]);
    const bool expect_lut2 = cycle >= 6 && cycle <= 8;
    EXPECT_EQ(usage.lut_used[1], expect_lut2) << "cycle " << cycle + 1;
    EXPECT_TRUE(usage.lut_used[0]) << "LUT1 is used every cycle";
  }
}

}  // namespace
}  // namespace hyperrec::shyra
