#include "dag/dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hyperrec {
namespace {

Dag diamond() {
  // 0 → 1, 0 → 2, 1 → 3, 2 → 3.
  Dag dag(4);
  dag.add_edge(0, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 3);
  return dag;
}

TEST(Dag, NodeAndEdgeCounts) {
  const Dag dag = diamond();
  EXPECT_EQ(dag.node_count(), 4u);
  EXPECT_EQ(dag.edge_count(), 4u);
}

TEST(Dag, SelfLoopRejected) {
  Dag dag(2);
  EXPECT_THROW(dag.add_edge(1, 1), PreconditionError);
}

TEST(Dag, EdgeEndpointOutOfRangeRejected) {
  Dag dag(2);
  EXPECT_THROW(dag.add_edge(0, 2), PreconditionError);
  EXPECT_THROW(dag.add_edge(5, 0), PreconditionError);
}

TEST(Dag, TopologicalSortRespectsEdges) {
  const Dag dag = diamond();
  const auto order = dag.topological_sort();
  ASSERT_EQ(order.size(), 4u);
  auto position = [&order](std::size_t v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(position(0), position(1));
  EXPECT_LT(position(0), position(2));
  EXPECT_LT(position(1), position(3));
  EXPECT_LT(position(2), position(3));
}

TEST(Dag, TopologicalSortOnCycleThrows) {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  dag.add_edge(2, 0);
  EXPECT_THROW(dag.topological_sort(), PreconditionError);
  EXPECT_FALSE(dag.is_acyclic());
}

TEST(Dag, IsAcyclicOnDiamond) { EXPECT_TRUE(diamond().is_acyclic()); }

TEST(Dag, EmptyGraphTopoSortIsEmpty) {
  Dag dag(0);
  EXPECT_TRUE(dag.topological_sort().empty());
}

TEST(Dag, IsolatedNodesAllAppear) {
  Dag dag(5);
  EXPECT_EQ(dag.topological_sort().size(), 5u);
}

TEST(Dag, ReachabilityIncludesSelf) {
  const auto reach = diamond().reachability();
  for (std::size_t v = 0; v < 4; ++v) EXPECT_TRUE(reach[v].test(v));
}

TEST(Dag, ReachabilityFollowsPaths) {
  const auto reach = diamond().reachability();
  EXPECT_TRUE(reach[0].test(3)) << "0 reaches 3 via both branches";
  EXPECT_TRUE(reach[1].test(3));
  EXPECT_FALSE(reach[1].test(2)) << "siblings are unreachable";
  EXPECT_FALSE(reach[3].test(0)) << "reachability is directed";
}

TEST(Dag, ReachabilityCountsOnChain) {
  Dag dag(5);
  for (std::size_t v = 0; v + 1 < 5; ++v) dag.add_edge(v, v + 1);
  const auto reach = dag.reachability();
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_EQ(reach[v].count(), 5 - v) << "node reaches itself and the tail";
  }
}

TEST(Dag, MinimalElementsOfAntichain) {
  const Dag dag = diamond();
  const auto reach = dag.reachability();
  const auto minimal = Dag::minimal_elements({1, 2}, reach);
  EXPECT_EQ(minimal.size(), 2u) << "1 and 2 are incomparable";
}

TEST(Dag, MinimalElementsOfChainIsSource) {
  const Dag dag = diamond();
  const auto reach = dag.reachability();
  const auto minimal = Dag::minimal_elements({0, 1, 3}, reach);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 0u);
}

TEST(Dag, MinimalElementsEmptySubset) {
  const auto reach = diamond().reachability();
  EXPECT_TRUE(Dag::minimal_elements({}, reach).empty());
}

TEST(Dag, SuccessorsOutOfRangeThrows) {
  const Dag dag = diamond();
  EXPECT_THROW((void)dag.successors(4), PreconditionError);
}

}  // namespace
}  // namespace hyperrec
