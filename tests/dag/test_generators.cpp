#include "dag/generators.hpp"

#include <gtest/gtest.h>

namespace hyperrec {
namespace {

TEST(MakeChain, ChainHasLinearEdges) {
  const Dag dag = make_chain(5);
  EXPECT_EQ(dag.node_count(), 5u);
  EXPECT_EQ(dag.edge_count(), 4u);
  EXPECT_TRUE(dag.is_acyclic());
  const auto reach = dag.reachability();
  EXPECT_TRUE(reach[0].test(4));
  EXPECT_FALSE(reach[4].test(0));
}

TEST(MakeChain, SingleNodeChain) {
  const Dag dag = make_chain(1);
  EXPECT_EQ(dag.node_count(), 1u);
  EXPECT_EQ(dag.edge_count(), 0u);
}

TEST(MakeLayered, ShapeAndAcyclicity) {
  Xoshiro256 rng(3);
  const Dag dag = make_layered(4, 3, 2, rng);
  EXPECT_EQ(dag.node_count(), 12u);
  EXPECT_TRUE(dag.is_acyclic());
  EXPECT_EQ(dag.edge_count(), 3u * 3u * 2u) << "every non-last layer fans out";
}

TEST(MakeLayered, EdgesOnlyGoForwardOneLayer) {
  Xoshiro256 rng(5);
  const std::size_t width = 4;
  const Dag dag = make_layered(3, width, 2, rng);
  for (std::size_t v = 0; v < dag.node_count(); ++v) {
    for (const std::size_t to : dag.successors(v)) {
      EXPECT_EQ(to / width, v / width + 1);
    }
  }
}

TEST(MakeLayered, ZeroSizesRejected) {
  Xoshiro256 rng(1);
  EXPECT_THROW(make_layered(0, 3, 1, rng), PreconditionError);
  EXPECT_THROW(make_layered(3, 0, 1, rng), PreconditionError);
}

TEST(MakeSubsetLattice, NodeAndEdgeCounts) {
  const Dag dag = make_subset_lattice(3);
  EXPECT_EQ(dag.node_count(), 8u);
  // Each node with k unset bits has k outgoing edges: Σ = bits · 2^{bits-1}.
  EXPECT_EQ(dag.edge_count(), 3u * 4u);
  EXPECT_TRUE(dag.is_acyclic());
}

TEST(MakeSubsetLattice, ReachabilityIsSubsetOrder) {
  const Dag dag = make_subset_lattice(3);
  const auto reach = dag.reachability();
  for (std::size_t u = 0; u < 8; ++u) {
    for (std::size_t v = 0; v < 8; ++v) {
      const bool subset = (u & v) == u;
      EXPECT_EQ(reach[u].test(v), subset)
          << "mask " << u << " should reach exactly its supersets: " << v;
    }
  }
}

TEST(MakeSubsetLattice, TooManyBitsRejected) {
  EXPECT_THROW(make_subset_lattice(21), PreconditionError);
}

}  // namespace
}  // namespace hyperrec
