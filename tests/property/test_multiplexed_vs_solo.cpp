// Multiplexed-vs-solo bit-identity property fuzz: 100 seeded streams across
// every workload family and the word-seam universes ride ONE multiplexer
// (shared cache, interleaved appends, pool-scheduled re-solves) and must
// publish EXACTLY what their solo StreamingEngine runs publish — same window
// count, same trigger sequence, same per-window published cost, same
// schedule boundaries, same final cost.  This is the multiplexer's core
// contract: fleet tenancy is an execution detail, never a result change.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "streaming/stream_multiplexer.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace hyperrec::streaming {
namespace {

constexpr std::size_t kTasks = 2;
constexpr std::size_t kSteps = 18;
constexpr std::size_t kWindow = 6;
constexpr std::size_t kEverySteps = 4;
constexpr std::uint64_t kSeedsPerCell = 5;

struct Scenario {
  MultiTaskTrace trace;
  MachineSpec machine;
  std::string label;
};

/// Mirrors the streaming-vs-offline scenario recipe: per-family traces over
/// word-seam universes, with a private demand ramp on odd seeds so the
/// demand-spike/quota machinery is fuzzed through the multiplexer too.
Scenario make_scenario(const std::string& family, std::size_t universe,
                       std::uint64_t seed) {
  Scenario scenario;
  const bool with_demands = (seed % 2) == 1;
  Xoshiro256 root(seed * 7919 + universe);
  std::vector<std::size_t> universes;
  for (std::size_t j = 0; j < kTasks; ++j) {
    Xoshiro256 rng = root.split(j);
    TaskTrace task = workload::make_family(family, kSteps, universe, rng);
    if (with_demands) workload::add_private_demand(task, 0, 2, 3);
    scenario.trace.add_task(std::move(task));
    universes.push_back(universe);
  }
  scenario.machine = MachineSpec::local_only(universes);
  if (with_demands) {
    scenario.machine.private_global_units = 2 * kTasks;
    scenario.machine.global_init = 5;
  }
  scenario.label =
      family + "/u" + std::to_string(universe) + "/s" + std::to_string(seed);
  return scenario;
}

StreamingConfig stream_config() {
  StreamingConfig config;
  config.window = kWindow;
  config.trigger.every_steps = kEverySteps;
  config.trigger.spike_factor = 2.0;
  config.trigger.spike_min_demand = 2;
  config.portfolio.solvers = {"aligned-dp", "greedy-w8"};
  return config;
}

TEST(MultiplexedVsSolo, FleetTenancyIsBitIdenticalToSoloRuns) {
  // Build all scenarios first: 5 families x 4 universes x 5 seeds = 100.
  std::vector<Scenario> scenarios;
  for (const std::string& family : workload::family_names()) {
    for (const std::size_t universe : {std::size_t{8}, std::size_t{63},
                                       std::size_t{64}, std::size_t{65}}) {
      for (std::uint64_t seed = 0; seed < kSeedsPerCell; ++seed) {
        scenarios.push_back(make_scenario(family, universe, seed));
      }
    }
  }
  ASSERT_EQ(scenarios.size(), 100u);

  // One multiplexer for the whole fleet: every stream shares the cache and
  // the pool, appends interleaved round-robin across all 100 streams.
  MultiplexerConfig config;
  config.shards = 8;
  config.stream = stream_config();
  StreamMultiplexer mux(config);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_EQ(mux.open_stream(scenarios[i].machine), i);
  }
  for (std::size_t s = 0; s < kSteps; ++s) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      mux.append_step(i, scenarios[i].trace.step(s));
    }
  }
  mux.flush_all();
  mux.drain();

  const FleetStats stats = mux.fleet_stats();
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.accepted, scenarios.size() * kSteps);
  EXPECT_EQ(stats.applied, scenarios.size() * kSteps);
  // The shared cache must have been exercised (identical windows recur
  // across same-family seeds) without ever breaking identity below.
  EXPECT_GT(stats.cache.hits + stats.cache.coalesced, 0u);

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].label);
    StreamingEngine solo(scenarios[i].machine, EvalOptions{}, stream_config());
    for (std::size_t s = 0; s < kSteps; ++s) {
      solo.append_step(scenarios[i].trace.step(s));
    }
    solo.flush();

    const StreamingEngine& muxed = mux.engine(i);
    ASSERT_EQ(muxed.steps(), solo.steps());
    ASSERT_EQ(muxed.resolve_count(), solo.resolve_count());
    for (std::size_t k = 0; k < solo.windows().size(); ++k) {
      const WindowReport& a = muxed.windows()[k];
      const WindowReport& b = solo.windows()[k];
      ASSERT_EQ(a.trigger, b.trigger) << "window " << k;
      ASSERT_EQ(a.window_lo, b.window_lo) << "window " << k;
      ASSERT_EQ(a.window_hi, b.window_hi) << "window " << k;
      ASSERT_EQ(a.ok, b.ok) << "window " << k << ": " << a.error;
      ASSERT_EQ(a.window_cost, b.window_cost) << "window " << k;
      ASSERT_EQ(a.published_cost, b.published_cost) << "window " << k;
    }

    const MultiTaskSchedule& fleet_schedule = muxed.schedule();
    const MultiTaskSchedule& solo_schedule = solo.schedule();
    ASSERT_EQ(fleet_schedule.tasks.size(), solo_schedule.tasks.size());
    for (std::size_t j = 0; j < solo_schedule.tasks.size(); ++j) {
      ASSERT_EQ(fleet_schedule.tasks[j].starts(),
                solo_schedule.tasks[j].starts())
          << "task " << j;
    }
    ASSERT_EQ(fleet_schedule.global_boundaries,
              solo_schedule.global_boundaries);
    ASSERT_EQ(muxed.current_solution().total(), solo.current_solution().total());

    // The published snapshot agrees with the engine it mirrors.
    const auto snap = mux.snapshot(i);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->steps, kSteps);
    EXPECT_EQ(snap->resolves, solo.resolve_count());
  }
}

}  // namespace
}  // namespace hyperrec::streaming
