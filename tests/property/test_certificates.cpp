// Property suite for optimality certificates (ISSUE 10): on tiny seeded
// fuzz instances from every workload family and random traces,
//
//     lower_bound ≤ exhaustive optimum ≤ hierarchical cost,
//
// the hierarchical cost equals the evaluator's cost for the spliced
// schedule, and the reported gap is exactly
// (total − lower_bound)·100/lower_bound.
#include <gtest/gtest.h>

#include "core/hierarchical.hpp"
#include "core/lower_bound.hpp"
#include "testutil/oracles.hpp"
#include "testutil/trace_builders.hpp"
#include "testutil/workload_instances.hpp"

namespace hyperrec {
namespace {

void check_certificate_bracket(const MultiTaskTrace& trace,
                               const MachineSpec& machine,
                               const EvalOptions& options,
                               const std::string& label) {
  const Cost optimum =
      testutil::brute_force_multi_task(trace, machine, options);
  const SolveInstance instance(trace, machine, options);
  const auto cert = compute_lower_bound(instance);
  ASSERT_LE(cert.bound, optimum) << label << ": unsound lower bound";

  HierarchicalConfig config;
  config.segment = 3;  // force multiple segments on ≥4-step traces
  config.parallel = false;
  const auto result = solve_hierarchical(instance, config);

  // Spliced schedule must be exactly what the evaluator charges for it.
  EXPECT_EQ(result.solution.total(),
            evaluate_fully_sync_switch(instance, result.solution.schedule)
                .total)
      << label;
  EXPECT_GE(result.solution.total(), optimum) << label;

  ASSERT_TRUE(result.solution.lower_bound.has_value()) << label;
  const Cost lb = *result.solution.lower_bound;
  EXPECT_EQ(lb, cert.bound) << label;
  EXPECT_LE(lb, optimum) << label;
  if (lb > 0) {
    ASSERT_TRUE(result.solution.gap_pct.has_value()) << label;
    const double expected =
        result.solution.total() <= lb
            ? 0.0
            : static_cast<double>(result.solution.total() - lb) * 100.0 /
                  static_cast<double>(lb);
    EXPECT_DOUBLE_EQ(*result.solution.gap_pct, expected) << label;
  }
}

TEST(Certificates, BracketHoldsOnEveryWorkloadFamily) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const auto& wl : testutil::seeded_workload_instances(2, 6, 4, seed)) {
      check_certificate_bracket(wl.trace, wl.machine, {},
                                wl.name + "/" + std::to_string(seed));
    }
  }
}

TEST(Certificates, BracketHoldsAcrossUploadModes) {
  const EvalOptions modes[] = {
      {UploadMode::kTaskParallel, UploadMode::kTaskSequential, false},
      {UploadMode::kTaskSequential, UploadMode::kTaskSequential, false},
      {UploadMode::kTaskParallel, UploadMode::kTaskParallel, false},
      {UploadMode::kTaskSequential, UploadMode::kTaskParallel, false},
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Xoshiro256 rng(seed * 77 + 5);
    const auto trace = testutil::random_multi_trace(rng, 2, 7, 4);
    const MachineSpec machine = MachineSpec::local_only({4, 4});
    for (const EvalOptions& options : modes) {
      check_certificate_bracket(
          trace, machine, options,
          "random/" + std::to_string(seed) + "/mode" +
              std::to_string(static_cast<int>(options.hyper_upload)) +
              std::to_string(static_cast<int>(options.reconfig_upload)));
    }
  }
}

TEST(Certificates, BoundSoundOnChangeoverInstances) {
  // solve_hierarchical declines changeover, but the bound itself must stay
  // sound there (the batch engine certifies changeover jobs too).
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Xoshiro256 rng(seed + 400);
    const auto trace = testutil::random_multi_trace(rng, 2, 5, 4);
    const MachineSpec machine = MachineSpec::local_only({4, 4});
    EvalOptions options;
    options.changeover = true;
    const Cost optimum =
        testutil::brute_force_multi_task(trace, machine, options);
    const SolveInstance instance(trace, machine, options);
    EXPECT_LE(compute_lower_bound(instance).bound, optimum) << seed;
  }
}

}  // namespace
}  // namespace hyperrec
