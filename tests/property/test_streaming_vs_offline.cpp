// Streaming-vs-offline property fuzz: 200 seeded grow-a-trace scenarios
// across every workload family and the word-seam universes.  For each
// scenario the streaming engine ingests the trace step-by-step and must
//
//   * keep its incremental TaskTraceStats bit-identical to a from-scratch
//     rebuild at EVERY appended step (the assert_consistent hooks compare
//     every sparse-table row, presence prefix and demand sum),
//   * publish a schedule that validates over everything seen so far, and
//   * finish with a spliced schedule whose cost is within a bounded factor
//     of the offline portfolio solve (same members) on the same final trace.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/portfolio.hpp"
#include "streaming/streaming_engine.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace hyperrec::streaming {
namespace {

constexpr std::size_t kTasks = 2;
constexpr std::size_t kSteps = 18;
constexpr std::size_t kWindow = 6;
constexpr std::size_t kEverySteps = 4;
// The window solver only sees kWindow steps at a time, so it can misplace
// boundaries an offline solve would avoid.  Most families stay within
// ~1.1x; the worst case is bursty traces over wide universes, where offline
// keeps one hypercontext across long quiet stretches the 6-step window
// cannot see — observed up to ~2.3x there, so the bound is 3x.
constexpr double kCostFactor = 3.0;

/// Scenario trace: a fresh multi-task trace of `family`, with a private
/// demand ramp added on odd seeds so the demand-sum tables and the
/// private-global machinery get fuzzed too.
struct Scenario {
  MultiTaskTrace trace;
  MachineSpec machine;
};

Scenario make_scenario(const std::string& family, std::size_t universe,
                       std::uint64_t seed) {
  Scenario scenario;
  const bool with_demands = (seed % 2) == 1;
  Xoshiro256 root(seed * 7919 + universe);
  std::vector<std::size_t> universes;
  for (std::size_t j = 0; j < kTasks; ++j) {
    Xoshiro256 rng = root.split(j);
    TaskTrace task = workload::make_family(family, kSteps, universe, rng);
    if (with_demands) workload::add_private_demand(task, 0, 2, 3);
    scenario.trace.add_task(std::move(task));
    universes.push_back(universe);
  }
  scenario.machine = MachineSpec::local_only(universes);
  if (with_demands) {
    // Pool large enough that every schedule is quota-feasible — the §4.2
    // evaluator enforces per-block feasibility, and these scenarios fuzz
    // the splice/trigger machinery, not infeasibility handling.
    scenario.machine.private_global_units = 2 * kTasks;
    scenario.machine.global_init = 5;
  }
  return scenario;
}

TEST(StreamingVsOffline, FuzzedGrowingTracesStayConsistentAndCostBounded) {
  const std::vector<std::size_t> universes = {8, 63, 64, 65};
  std::size_t scenarios = 0;
  for (const std::string& family : workload::family_names()) {
    for (const std::size_t universe : universes) {
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        SCOPED_TRACE(family + "/u" + std::to_string(universe) + "/s" +
                     std::to_string(seed));
        const Scenario scenario = make_scenario(family, universe, seed);
        const std::size_t steps = scenario.trace.steps();

        StreamingConfig config;
        config.window = kWindow;
        config.trigger.every_steps = kEverySteps;
        config.portfolio.solvers = {"aligned-dp", "greedy-w8"};
        StreamingEngine engine(scenario.machine, EvalOptions{}, config);

        for (std::size_t i = 0; i < steps; ++i) {
          engine.append_step(scenario.trace.step(i));
          // Incremental stats must be bit-identical to a from-scratch
          // rebuild after every single append.
          ASSERT_NO_THROW(engine.stats().assert_consistent_with_rebuild())
              << "step " << i;
          // The published schedule must cover and validate [0, i].
          ASSERT_NO_THROW(engine.schedule().validate(kTasks, i + 1))
              << "step " << i;
        }
        engine.flush();
        for (const WindowReport& window : engine.windows()) {
          ASSERT_TRUE(window.ok) << window.error;
        }

        const MTSolution streamed = engine.current_solution();
        ASSERT_NO_THROW(streamed.schedule.validate(kTasks, steps));

        engine::PortfolioConfig offline;
        offline.solvers = {"aligned-dp", "greedy-w8"};
        offline.parallel = false;
        const engine::PortfolioResult reference = engine::solve_portfolio(
            scenario.trace, scenario.machine, EvalOptions{}, offline);
        EXPECT_LE(static_cast<double>(streamed.total()),
                  kCostFactor * static_cast<double>(reference.best.total()))
            << "stream " << streamed.total() << " vs offline "
            << reference.best.total();
        ++scenarios;
      }
    }
  }
  EXPECT_EQ(scenarios, 200u);
}

}  // namespace
}  // namespace hyperrec::streaming
