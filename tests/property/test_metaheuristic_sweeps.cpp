// Parameterized robustness sweeps for the stochastic solvers: across GA/SA
// configurations and seeds, solutions must stay valid, consistent with the
// evaluator, and within a bounded factor of the certified optimum
// (Theorem-1 DP provides ground truth at m = 2).
#include <gtest/gtest.h>

#include "core/annealing.hpp"
#include "core/genetic.hpp"
#include "core/theorem1.hpp"
#include "workload/generators.hpp"

namespace hyperrec {
namespace {

struct SweepCase {
  std::uint64_t seed;
  std::size_t population;
  std::size_t generations;
  double crossover;
  double mutation;
};

class GaParameterSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    workload::MultiPhasedConfig config;
    config.tasks = 2;
    config.task_config.steps = 24;
    config.task_config.universe = 8;
    config.task_config.phases = 3;
    trace_ = workload::make_multi_phased(config, 77);
    machine_ = MachineSpec::uniform_local(2, 8);
    options_ = EvalOptions{UploadMode::kTaskParallel,
                           UploadMode::kTaskSequential, false};
    optimum_ = solve_theorem1_dp(trace_, machine_, options_).total();
  }

  MultiTaskTrace trace_;
  MachineSpec machine_;
  EvalOptions options_;
  Cost optimum_ = 0;
};

TEST_P(GaParameterSweep, ValidAndNearOptimal) {
  const SweepCase param = GetParam();
  GaConfig config;
  config.population = param.population;
  config.generations = param.generations;
  config.crossover_rate = param.crossover;
  config.mutation_rate = param.mutation;
  config.seed = param.seed;
  const auto result = solve_genetic(trace_, machine_, options_, config);

  EXPECT_NO_THROW(result.best.schedule.validate(2, 24));
  EXPECT_EQ(result.best.total(),
            evaluate_fully_sync_switch(trace_, machine_,
                                       result.best.schedule, options_)
                .total);
  EXPECT_GE(result.best.total(), optimum_) << "cannot beat the optimum";
  EXPECT_LE(result.best.total(), optimum_ * 12 / 10)
      << "more than 20% off the certified optimum";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GaParameterSweep,
    ::testing::Values(SweepCase{1, 16, 80, 0.9, -1.0},
                      SweepCase{2, 32, 80, 0.9, -1.0},
                      SweepCase{3, 64, 40, 0.9, -1.0},
                      SweepCase{4, 32, 80, 0.5, -1.0},
                      SweepCase{5, 32, 80, 1.0, 0.01},
                      SweepCase{6, 32, 80, 0.9, 0.10},
                      SweepCase{7, 48, 120, 0.7, 0.05},
                      SweepCase{8, 16, 200, 0.9, -1.0}));

class SaParameterSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SaParameterSweep, ValidAcrossCoolingSchedules) {
  workload::MultiPhasedConfig config;
  config.tasks = 3;
  config.task_config.steps = 20;
  config.task_config.universe = 6;
  const auto trace = workload::make_multi_phased(config, GetParam());
  const auto machine = MachineSpec::uniform_local(3, 6);

  for (const double cooling : {0.99, 0.999, 0.9999}) {
    SaConfig sa;
    sa.iterations = 3000;
    sa.cooling = cooling;
    sa.seed = GetParam();
    const auto solution = solve_annealing(trace, machine, {}, sa);
    EXPECT_NO_THROW(solution.schedule.validate(3, 20));
    EXPECT_EQ(
        solution.total(),
        evaluate_fully_sync_switch(trace, machine, solution.schedule, {})
            .total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaParameterSweep,
                         ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace hyperrec
