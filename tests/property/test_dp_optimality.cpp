// Property sweeps: the exact solvers must match brute-force ground truth on
// randomized instances across the parameter grid (TEST_P over seeds ×
// configurations).
#include <gtest/gtest.h>

#include "core/aligned_dp.hpp"
#include "core/exhaustive.hpp"
#include "core/interval_dp.hpp"
#include "support/rng.hpp"
#include "testutil/oracles.hpp"
#include "testutil/trace_builders.hpp"
#include "workload/generators.hpp"

namespace hyperrec {
namespace {

struct DpCase {
  std::uint64_t seed;
  std::size_t steps;
  std::size_t universe;
  Cost init;
};

class SingleTaskDpProperty : public ::testing::TestWithParam<DpCase> {};

TEST_P(SingleTaskDpProperty, MatchesBruteForce) {
  const DpCase param = GetParam();
  Xoshiro256 rng(param.seed);
  const TaskTrace trace =
      testutil::random_task_trace(rng, param.steps, param.universe, 0.35);
  const auto solution = solve_single_task_switch(trace, param.init);
  EXPECT_EQ(solution.total,
            testutil::brute_force_single_task(trace, param.init));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SingleTaskDpProperty,
    ::testing::Values(DpCase{1, 4, 4, 0}, DpCase{2, 6, 4, 2},
                      DpCase{3, 8, 6, 5}, DpCase{4, 10, 6, 10},
                      DpCase{5, 12, 8, 3}, DpCase{6, 12, 8, 20},
                      DpCase{7, 14, 5, 1}, DpCase{8, 14, 5, 7},
                      DpCase{9, 16, 6, 12}, DpCase{10, 16, 10, 4},
                      DpCase{11, 18, 4, 6}, DpCase{12, 18, 12, 9}));

struct MtCase {
  std::uint64_t seed;
  std::size_t tasks;
  std::size_t steps;
  std::size_t universe;
  UploadMode hyper;
  UploadMode reconfig;
};

class ExhaustiveMatchesBruteForce : public ::testing::TestWithParam<MtCase> {};

TEST_P(ExhaustiveMatchesBruteForce, OnRandomPhasedTraces) {
  const MtCase param = GetParam();
  workload::MultiPhasedConfig config;
  config.tasks = param.tasks;
  config.task_config.steps = param.steps;
  config.task_config.universe = param.universe;
  config.task_config.phases = 2;
  const auto trace = workload::make_multi_phased(config, param.seed);
  const auto machine = MachineSpec::uniform_local(param.tasks, param.universe);
  const EvalOptions options{param.hyper, param.reconfig, false};
  const auto exhaustive = solve_exhaustive(trace, machine, options);
  EXPECT_EQ(exhaustive.total(),
            testutil::brute_force_multi_task(trace, machine, options));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExhaustiveMatchesBruteForce,
    ::testing::Values(
        MtCase{1, 2, 5, 4, UploadMode::kTaskParallel,
               UploadMode::kTaskSequential},
        MtCase{2, 2, 6, 4, UploadMode::kTaskParallel,
               UploadMode::kTaskParallel},
        MtCase{3, 2, 6, 5, UploadMode::kTaskSequential,
               UploadMode::kTaskSequential},
        MtCase{4, 3, 5, 4, UploadMode::kTaskParallel,
               UploadMode::kTaskSequential},
        MtCase{5, 3, 5, 6, UploadMode::kTaskSequential,
               UploadMode::kTaskParallel},
        MtCase{6, 2, 7, 4, UploadMode::kTaskParallel,
               UploadMode::kTaskSequential}));

struct AlignedCase {
  std::uint64_t seed;
  std::size_t tasks;
  std::size_t steps;
  std::size_t universe;
};

class AlignedDpProperty : public ::testing::TestWithParam<AlignedCase> {};

TEST_P(AlignedDpProperty, MatchesAlignedBruteForceAllDisciplines) {
  const AlignedCase param = GetParam();
  workload::MultiPhasedConfig config;
  config.tasks = param.tasks;
  config.task_config.steps = param.steps;
  config.task_config.universe = param.universe;
  const auto trace = workload::make_multi_phased(config, param.seed);
  const auto machine = MachineSpec::uniform_local(param.tasks, param.universe);
  for (const auto hyper :
       {UploadMode::kTaskParallel, UploadMode::kTaskSequential}) {
    for (const auto reconfig :
         {UploadMode::kTaskParallel, UploadMode::kTaskSequential}) {
      const EvalOptions options{hyper, reconfig, false};
      EXPECT_EQ(solve_aligned_dp(trace, machine, options).total(),
                testutil::brute_force_aligned(trace, machine, options));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, AlignedDpProperty,
                         ::testing::Values(AlignedCase{21, 2, 9, 5},
                                           AlignedCase{22, 3, 9, 4},
                                           AlignedCase{23, 4, 8, 6},
                                           AlignedCase{24, 2, 11, 8},
                                           AlignedCase{25, 3, 10, 5},
                                           AlignedCase{26, 5, 7, 4}));

}  // namespace
}  // namespace hyperrec
