// Dominance relations between solvers that must hold on every instance:
// exact ≤ heuristics; richer machine classes ≤ restricted classes.
#include <gtest/gtest.h>

#include "core/aligned_dp.hpp"
#include "core/coordinate_descent.hpp"
#include "core/exhaustive.hpp"
#include "core/genetic.hpp"
#include "core/greedy.hpp"
#include "core/interval_dp.hpp"
#include "workload/generators.hpp"

namespace hyperrec {
namespace {

struct OrderingCase {
  std::uint64_t seed;
  std::size_t tasks;
  std::size_t steps;
  std::size_t universe;
};

class SolverOrdering : public ::testing::TestWithParam<OrderingCase> {
 protected:
  void SetUp() override {
    const auto param = GetParam();
    workload::MultiPhasedConfig config;
    config.tasks = param.tasks;
    config.task_config.steps = param.steps;
    config.task_config.universe = param.universe;
    config.task_config.phases = 3;
    trace_ = workload::make_multi_phased(config, param.seed);
    machine_ = MachineSpec::uniform_local(param.tasks, param.universe);
    options_ = EvalOptions{UploadMode::kTaskParallel,
                           UploadMode::kTaskSequential, false};
  }

  MultiTaskTrace trace_;
  MachineSpec machine_;
  EvalOptions options_;
};

TEST_P(SolverOrdering, PartialHyperreconfigurationDominatesAligned) {
  // The partially hyperreconfigurable machine class strictly generalises the
  // partially reconfigurable one (§3), so the best per-task schedule is at
  // most the best aligned schedule.
  const auto aligned = solve_aligned_dp(trace_, machine_, options_);
  const auto descent =
      solve_coordinate_descent(trace_, machine_, options_);
  EXPECT_LE(descent.total(), aligned.total());
}

TEST_P(SolverOrdering, HeuristicsNeverBeatExhaustiveOnTinyPrefix) {
  // Restrict to a 6-step prefix where exhaustive search is feasible.
  const std::size_t prefix = 6;
  MultiTaskTrace small;
  for (std::size_t j = 0; j < trace_.task_count(); ++j) {
    TaskTrace task(trace_.task(j).local_universe());
    for (std::size_t i = 0; i < prefix; ++i) {
      task.push_back(trace_.task(j).at(i));
    }
    small.add_task(std::move(task));
  }
  if (trace_.task_count() * (prefix - 1) > 24) {
    GTEST_SKIP() << "instance too large for exhaustive search";
  }
  const auto exact = solve_exhaustive(small, machine_, options_);
  const auto descent = solve_coordinate_descent(small, machine_, options_);
  const auto greedy = solve_greedy(small, machine_, options_);
  GaConfig ga_config;
  ga_config.population = 24;
  ga_config.generations = 40;
  ga_config.seed = GetParam().seed;
  const auto ga = solve_genetic(small, machine_, options_, ga_config);

  EXPECT_LE(exact.total(), descent.total());
  EXPECT_LE(exact.total(), greedy.total());
  EXPECT_LE(exact.total(), ga.best.total());
}

TEST_P(SolverOrdering, AllSchedulesBeatOrMatchNoHyperBaselineCeiling) {
  // Any schedule of the hyperreconfigurable machine costs at most
  // baseline + the hyper charges it chose; the optimised ones must beat the
  // baseline outright on phased workloads.
  const Cost baseline =
      no_hyperreconfiguration_cost(machine_, trace_.steps());
  const auto descent = solve_coordinate_descent(trace_, machine_, options_);
  EXPECT_LT(descent.total(), baseline);
}

TEST_P(SolverOrdering, SingleTaskViewIsUpperBoundForMultiTaskView) {
  // Merging all tasks into one (the paper's m = 1 comparison) removes the
  // ability to hyperreconfigure components independently; with the paper's
  // §6 disciplines the multi-task optimum is at most the single-task one.
  // Build the merged trace by concatenating the local universes.
  const std::size_t total_universe = machine_.total_local_switches();
  TaskTrace merged(total_universe);
  for (std::size_t i = 0; i < trace_.steps(); ++i) {
    DynamicBitset combined(total_universe);
    std::size_t offset = 0;
    for (std::size_t j = 0; j < trace_.task_count(); ++j) {
      trace_.task(j).at(i).local.for_each_set(
          [&combined, offset](std::size_t pos) { combined.set(offset + pos); });
      offset += trace_.task(j).local_universe();
    }
    merged.push_back_local(std::move(combined));
  }
  const auto single = solve_single_task_switch(
      merged, static_cast<Cost>(total_universe));
  const auto descent = solve_coordinate_descent(trace_, machine_, options_);
  EXPECT_LE(descent.total(), single.total);
}

INSTANTIATE_TEST_SUITE_P(Grid, SolverOrdering,
                         ::testing::Values(OrderingCase{1, 2, 18, 6},
                                           OrderingCase{2, 3, 18, 8},
                                           OrderingCase{3, 4, 16, 6},
                                           OrderingCase{4, 2, 24, 10},
                                           OrderingCase{5, 3, 20, 5},
                                           OrderingCase{6, 4, 14, 4}));

}  // namespace
}  // namespace hyperrec
