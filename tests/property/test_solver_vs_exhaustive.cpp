// Every solver in standard_solvers() cross-checked against the exhaustive
// optimum on randomized tiny instances (≤ 3 tasks, ≤ 5 steps) — seeded, so
// the sweep is deterministic.  Heuristics must (a) produce valid schedules,
// (b) report totals that re-evaluate to themselves, and (c) never beat the
// exhaustive optimum; the aligned DP must additionally hit the optimum
// whenever the optimum is achievable by an aligned schedule (m = 1).
#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "core/solver.hpp"
#include "support/rng.hpp"
#include "testutil/trace_builders.hpp"

namespace hyperrec {
namespace {

class SolverVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverVsExhaustive, NeverBeatsOptimumAndStaysConsistent) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const std::size_t m = 1 + rng.uniform(3);   // ≤ 3 tasks
    const std::size_t n = 2 + rng.uniform(4);   // ≤ 5 steps
    const std::size_t universe = 3 + rng.uniform(3);
    const auto trace =
        testutil::random_multi_trace(rng, m, n, universe, 0.4);
    const auto machine = MachineSpec::uniform_local(m, universe);
    const EvalOptions options{UploadMode::kTaskParallel,
                              UploadMode::kTaskSequential, false};

    const Cost optimum = solve_exhaustive(trace, machine, options).total();
    for (const NamedSolver& solver : standard_solvers()) {
      const MTSolution solution = solver.solve(trace, machine, options);
      EXPECT_NO_THROW(solution.schedule.validate(m, n))
          << solver.name << " round " << round;
      EXPECT_EQ(solution.total(),
                evaluate_fully_sync_switch(trace, machine, solution.schedule,
                                           options)
                    .total)
          << solver.name << " round " << round;
      EXPECT_GE(solution.total(), optimum)
          << solver.name << " claims to beat the exhaustive optimum, round "
          << round;
    }
  }
}

TEST_P(SolverVsExhaustive, SingleTaskSolversHitTheOptimum) {
  // With m = 1 every schedule is aligned, so the exact aligned DP must equal
  // the exhaustive optimum (the iterative heuristics may end in local
  // optima even here, so only the DP is held to exactness).
  Xoshiro256 rng(GetParam() * 977 + 5);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 2 + rng.uniform(4);
    const std::size_t universe = 3 + rng.uniform(3);
    const auto trace = testutil::random_multi_trace(rng, 1, n, universe, 0.4);
    const auto machine = MachineSpec::uniform_local(1, universe);
    const EvalOptions options{UploadMode::kTaskParallel,
                              UploadMode::kTaskSequential, false};
    const Cost optimum = solve_exhaustive(trace, machine, options).total();
    for (const NamedSolver& solver : standard_solvers()) {
      if (solver.name != "aligned-dp") continue;
      EXPECT_EQ(solver.solve(trace, machine, options).total(), optimum)
          << solver.name << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverVsExhaustive,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

}  // namespace
}  // namespace hyperrec
