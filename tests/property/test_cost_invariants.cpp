// Structural invariants of the §4.2 cost model that must hold for every
// schedule on every trace (parameterized random sweeps).
#include <gtest/gtest.h>

#include "model/cost_switch.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace hyperrec {
namespace {

MultiTaskSchedule random_schedule(std::size_t m, std::size_t n,
                                  double density, Xoshiro256& rng) {
  MultiTaskSchedule schedule;
  for (std::size_t j = 0; j < m; ++j) {
    DynamicBitset mask(n);
    mask.set(0);
    for (std::size_t s = 1; s < n; ++s) {
      if (rng.flip(density)) mask.set(s);
    }
    schedule.tasks.push_back(Partition::from_boundary_mask(mask));
  }
  return schedule;
}

class CostInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    workload::MultiPhasedConfig config;
    config.tasks = 3;
    config.task_config.steps = 25;
    config.task_config.universe = 9;
    trace_ = workload::make_multi_phased(config, GetParam());
    machine_ = MachineSpec::uniform_local(3, 9);
    rng_ = Xoshiro256(GetParam() * 977);
  }

  MultiTaskTrace trace_;
  MachineSpec machine_;
  Xoshiro256 rng_{0};
};

TEST_P(CostInvariants, TotalDecomposesIntoParts) {
  for (int round = 0; round < 5; ++round) {
    const auto schedule = random_schedule(3, 25, 0.2, rng_);
    const auto breakdown =
        evaluate_fully_sync_switch(trace_, machine_, schedule, {});
    EXPECT_EQ(breakdown.total, breakdown.hyper + breakdown.reconfig +
                                   breakdown.global_hyper);
    Cost per_step_sum = 0;
    for (const auto& step : breakdown.per_step) {
      per_step_sum += step.hyper + step.reconfig;
    }
    EXPECT_EQ(per_step_sum, breakdown.hyper + breakdown.reconfig);
  }
}

TEST_P(CostInvariants, ParallelUploadNeverExceedsSequential) {
  for (int round = 0; round < 5; ++round) {
    const auto schedule = random_schedule(3, 25, 0.25, rng_);
    const Cost parallel =
        evaluate_fully_sync_switch(trace_, machine_, schedule,
                                   {UploadMode::kTaskParallel,
                                    UploadMode::kTaskParallel, false})
            .total;
    const Cost sequential =
        evaluate_fully_sync_switch(trace_, machine_, schedule,
                                   {UploadMode::kTaskSequential,
                                    UploadMode::kTaskSequential, false})
            .total;
    EXPECT_LE(parallel, sequential);
  }
}

TEST_P(CostInvariants, ChangeoverOnlyIncreasesCost) {
  for (int round = 0; round < 5; ++round) {
    const auto schedule = random_schedule(3, 25, 0.2, rng_);
    EvalOptions plain;
    EvalOptions change = plain;
    change.changeover = true;
    const Cost without =
        evaluate_fully_sync_switch(trace_, machine_, schedule, plain).total;
    const Cost with =
        evaluate_fully_sync_switch(trace_, machine_, schedule, change).total;
    EXPECT_GE(with, without);
  }
}

TEST_P(CostInvariants, RefiningAScheduleNeverRaisesReconfigCost) {
  // Adding one boundary to one task can only shrink that task's interval
  // unions, so the reconfiguration component must not increase.
  for (int round = 0; round < 5; ++round) {
    const auto schedule = random_schedule(3, 25, 0.15, rng_);
    const auto base =
        evaluate_fully_sync_switch(trace_, machine_, schedule, {});

    MultiTaskSchedule refined = schedule;
    const std::size_t j = rng_.uniform(3);
    std::size_t step = 1 + rng_.uniform(24);
    DynamicBitset mask = refined.tasks[j].to_boundary_mask();
    mask.set(step);
    refined.tasks[j] = Partition::from_boundary_mask(mask);

    const auto after =
        evaluate_fully_sync_switch(trace_, machine_, refined, {});
    EXPECT_LE(after.reconfig, base.reconfig);
  }
}

TEST_P(CostInvariants, HypercontextsCoverEveryRequirement) {
  for (int round = 0; round < 5; ++round) {
    const auto schedule = random_schedule(3, 25, 0.3, rng_);
    const auto contexts = derive_local_hypercontexts(trace_, schedule);
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < schedule.tasks[j].interval_count(); ++k) {
        const auto [lo, hi] = schedule.tasks[j].interval_bounds(k);
        for (std::size_t i = lo; i < hi; ++i) {
          EXPECT_TRUE(
              trace_.task(j).at(i).local.subset_of(contexts[j][k].local));
          EXPECT_LE(trace_.task(j).at(i).private_demand,
                    contexts[j][k].private_avail);
        }
      }
    }
  }
}

TEST_P(CostInvariants, EveryStepScheduleCostIsExactPerStepSum) {
  // With a boundary before every step, each interval is one step and the
  // reconfiguration term equals the per-step requirement combine.
  const auto schedule = MultiTaskSchedule::all_every_step(3, 25);
  const auto breakdown = evaluate_fully_sync_switch(
      trace_, machine_, schedule,
      {UploadMode::kTaskParallel, UploadMode::kTaskSequential, false});
  Cost expected = 0;
  for (std::size_t i = 0; i < 25; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      expected += static_cast<Cost>(trace_.task(j).at(i).local.count());
    }
  }
  EXPECT_EQ(breakdown.reconfig, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hyperrec
