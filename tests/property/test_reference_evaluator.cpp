// Differential testing of the §4.2 evaluator against an independent,
// deliberately naive re-implementation.  The production evaluator walks the
// steps with interval cursors; the reference recomputes everything from
// first principles per step.  Any divergence on random (trace, schedule,
// options) triples is a bug in one of them.
#include <gtest/gtest.h>

#include "model/cost_switch.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace hyperrec {
namespace {

/// First-principles §4.2 evaluator: for every step, find each task's
/// interval by scanning the partition, build the minimal hypercontext by
/// re-unioning the requirements, and combine.
Cost reference_fully_sync(const MultiTaskTrace& trace,
                          const MachineSpec& machine,
                          const MultiTaskSchedule& schedule,
                          const EvalOptions& options) {
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  auto combine = [](UploadMode mode, Cost a, Cost b) {
    return mode == UploadMode::kTaskParallel ? std::max(a, b) : a + b;
  };

  Cost total = 0;
  for (std::size_t l = 0; l < n; ++l) {
    Cost hyper = 0;
    Cost reconfig = static_cast<Cost>(machine.public_context_size);
    for (std::size_t j = 0; j < m; ++j) {
      const Partition& partition = schedule.tasks[j];
      const std::size_t k = partition.interval_of(l);
      const auto [lo, hi] = partition.interval_bounds(k);
      const DynamicBitset h = trace.task(j).local_union(lo, hi);
      const std::uint32_t priv = trace.task(j).max_private_demand(lo, hi);

      if (partition.is_boundary(l)) {
        Cost v = machine.tasks[j].local_init;
        if (options.changeover) {
          if (k == 0) {
            v += static_cast<Cost>(h.count());
          } else {
            const auto [plo, phi] = partition.interval_bounds(k - 1);
            const DynamicBitset prev = trace.task(j).local_union(plo, phi);
            v += static_cast<Cost>(h.symmetric_difference_count(prev));
          }
        }
        hyper = combine(options.hyper_upload, hyper, v);
      }
      reconfig = combine(options.reconfig_upload, reconfig,
                         static_cast<Cost>(h.count()) +
                             static_cast<Cost>(priv));
    }
    total += hyper + reconfig;
    for (const std::size_t g : schedule.global_boundaries) {
      if (g == l) total += machine.global_init;
    }
  }
  return total;
}

class ReferenceEvaluator : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReferenceEvaluator, AgreesOnRandomInstances) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const std::size_t m = 1 + rng.uniform(4);
    const std::size_t n = 3 + rng.uniform(20);

    workload::MultiPhasedConfig config;
    config.tasks = m;
    config.task_config.steps = n;
    config.task_config.universe = 4 + rng.uniform(8);
    const auto trace =
        workload::make_multi_phased(config, GetParam() * 131 + round);
    MachineSpec machine =
        MachineSpec::uniform_local(m, config.task_config.universe);
    if (rng.flip(0.5)) {
      machine.public_context_size = 1 + rng.uniform(5);
      machine.global_init = static_cast<Cost>(rng.uniform(20));
    }

    MultiTaskSchedule schedule;
    for (std::size_t j = 0; j < m; ++j) {
      DynamicBitset mask(n);
      mask.set(0);
      for (std::size_t s = 1; s < n; ++s) {
        if (rng.flip(0.25)) mask.set(s);
      }
      schedule.tasks.push_back(Partition::from_boundary_mask(mask));
    }
    if (machine.has_global_resources()) {
      schedule.global_boundaries.push_back(0);
    }

    for (const auto hyper :
         {UploadMode::kTaskParallel, UploadMode::kTaskSequential}) {
      for (const auto reconfig :
           {UploadMode::kTaskParallel, UploadMode::kTaskSequential}) {
        for (const bool changeover : {false, true}) {
          const EvalOptions options{hyper, reconfig, changeover};
          EXPECT_EQ(
              evaluate_fully_sync_switch(trace, machine, schedule, options)
                  .total,
              reference_fully_sync(trace, machine, schedule, options))
              << "m=" << m << " n=" << n << " round=" << round;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceEvaluator,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace hyperrec
