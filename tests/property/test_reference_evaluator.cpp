// Differential testing of the §4.2 evaluator against an independent,
// deliberately naive re-implementation.  The production evaluator walks the
// steps with interval cursors; the reference recomputes everything from
// first principles per step.  Any divergence on random (trace, schedule,
// options) triples is a bug in one of them.
#include <gtest/gtest.h>

#include "model/cost_switch.hpp"
#include "support/rng.hpp"
#include "testutil/reference_eval.hpp"
#include "testutil/trace_builders.hpp"
#include "workload/generators.hpp"

namespace hyperrec {
namespace {

using testutil::reference_fully_sync;

class ReferenceEvaluator : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReferenceEvaluator, AgreesOnRandomInstances) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const std::size_t m = 1 + rng.uniform(4);
    const std::size_t n = 3 + rng.uniform(20);

    workload::MultiPhasedConfig config;
    config.tasks = m;
    config.task_config.steps = n;
    config.task_config.universe = 4 + rng.uniform(8);
    const auto trace =
        workload::make_multi_phased(config, GetParam() * 131 + round);
    MachineSpec machine =
        MachineSpec::uniform_local(m, config.task_config.universe);
    if (rng.flip(0.5)) {
      machine.public_context_size = 1 + rng.uniform(5);
      machine.global_init = static_cast<Cost>(rng.uniform(20));
    }

    const MultiTaskSchedule schedule =
        testutil::random_schedule(rng, trace, machine, 0.25);

    for (const auto hyper :
         {UploadMode::kTaskParallel, UploadMode::kTaskSequential}) {
      for (const auto reconfig :
           {UploadMode::kTaskParallel, UploadMode::kTaskSequential}) {
        for (const bool changeover : {false, true}) {
          const EvalOptions options{hyper, reconfig, changeover};
          EXPECT_EQ(
              evaluate_fully_sync_switch(trace, machine, schedule, options)
                  .total,
              reference_fully_sync(trace, machine, schedule, options))
              << "m=" << m << " n=" << n << " round=" << round;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceEvaluator,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace hyperrec
