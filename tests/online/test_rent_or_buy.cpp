#include "online/rent_or_buy.hpp"

#include <gtest/gtest.h>

#include "core/interval_dp.hpp"
#include "workload/generators.hpp"

namespace hyperrec::online {
namespace {

TaskTrace phased_trace(std::uint64_t seed, std::size_t steps,
                       std::size_t universe) {
  workload::PhasedConfig config;
  config.steps = steps;
  config.universe = universe;
  config.phases = 4;
  Xoshiro256 rng(seed);
  return workload::make_phased(config, rng);
}

TEST(RentOrBuy, FirstStepAlwaysHyperreconfigures) {
  RentOrBuyScheduler scheduler(4, 3);
  const bool hyper = scheduler.step({DynamicBitset::from_string("1100"), 0});
  EXPECT_TRUE(hyper);
  EXPECT_EQ(scheduler.hyper_count(), 1u);
  EXPECT_EQ(scheduler.boundaries().front(), 0u);
}

TEST(RentOrBuy, UncoveredRequirementForcesRefit) {
  RentOrBuyScheduler scheduler(4, 100);  // huge v: voluntary refits disabled
  scheduler.step({DynamicBitset::from_string("1100"), 0});
  const bool hyper = scheduler.step({DynamicBitset::from_string("0011"), 0});
  EXPECT_TRUE(hyper) << "requirement outside the hypercontext";
  EXPECT_TRUE(DynamicBitset::from_string("0011")
                  .subset_of(scheduler.hypercontext()));
}

TEST(RentOrBuy, CoveredStepsAccumulateWasteUntilThreshold) {
  // Hypercontext {s0,s1} serving requirement {s0}: waste 1/step; with v = 4
  // and alpha = 1 the voluntary refit lands once waste reaches 4.
  RentOrBuyConfig config;
  config.fit_window = 1;
  RentOrBuyScheduler scheduler(4, 4, config);
  scheduler.step({DynamicBitset::from_string("1100"), 0});
  const DynamicBitset narrow = DynamicBitset::from_string("1000");
  std::size_t refit_step = 0;
  for (std::size_t i = 1; i <= 6; ++i) {
    if (scheduler.step({narrow, 0})) {
      refit_step = i;
      break;
    }
  }
  EXPECT_EQ(refit_step, 4u) << "waste 1+1+1+1 = 4 = alpha*v at step 4";
  EXPECT_EQ(scheduler.hypercontext().to_string(), "1000");
}

TEST(RentOrBuy, PrivateDemandTriggersRefit) {
  RentOrBuyScheduler scheduler(2, 100);
  scheduler.step({DynamicBitset::from_string("10"), 2});
  const bool hyper = scheduler.step({DynamicBitset::from_string("10"), 5});
  EXPECT_TRUE(hyper) << "private demand above the provisioned amount";
}

TEST(RentOrBuy, OnlineDecisionsArePrefixConsistent) {
  // The online property: decisions for the first k steps must not depend on
  // later steps.
  const TaskTrace trace = phased_trace(3, 40, 10);
  const Partition full = run_online_single(trace, 10);

  TaskTrace prefix(trace.local_universe());
  const std::size_t k = 17;
  for (std::size_t i = 0; i < k; ++i) prefix.push_back(trace.at(i));
  const Partition partial = run_online_single(prefix, 10);

  for (std::size_t s = 0; s < k; ++s) {
    EXPECT_EQ(full.is_boundary(s), partial.is_boundary(s)) << "step " << s;
  }
}

TEST(RentOrBuy, TotalCostMatchesSingleTaskEvaluation) {
  const TaskTrace trace = phased_trace(5, 30, 8);
  const Cost v = 8;
  RentOrBuyScheduler scheduler(8, v);
  for (std::size_t i = 0; i < trace.size(); ++i) scheduler.step(trace.at(i));

  // Re-price the online partition with minimal hypercontexts; the online
  // controller's internal accounting uses its own (possibly wider, windowed)
  // hypercontexts, so the evaluator price is a lower bound.
  MultiTaskTrace wrapper;
  wrapper.add_task(trace);
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(
      Partition::from_starts(scheduler.boundaries(), trace.size()));
  const auto evaluated = evaluate_fully_sync_switch(
      wrapper, MachineSpec::local_only({8}), schedule, {});
  EXPECT_LE(evaluated.total, scheduler.total_cost());
}

TEST(RentOrBuy, CompetitiveAgainstOfflineOptimumOnPhasedLoads) {
  // Empirical competitiveness: within 3× of the offline DP on phased
  // workloads (typically much closer).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TaskTrace trace = phased_trace(seed, 60, 12);
    const Cost v = 12;
    const auto offline = solve_single_task_switch(trace, v);

    RentOrBuyScheduler scheduler(12, v);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      scheduler.step(trace.at(i));
    }
    EXPECT_LE(scheduler.total_cost(), 3 * offline.total) << "seed " << seed;
    EXPECT_GE(scheduler.total_cost(), offline.total)
        << "online can never beat the offline optimum's objective";
  }
}

TEST(RentOrBuy, MultiTaskScheduleIsValidAndEvaluable) {
  workload::MultiPhasedConfig config;
  config.tasks = 3;
  config.task_config.steps = 25;
  config.task_config.universe = 6;
  const auto trace = workload::make_multi_phased(config, 9);
  const auto machine = MachineSpec::uniform_local(3, 6);
  const auto schedule = run_online_multi(trace, machine);
  EXPECT_NO_THROW(schedule.validate(3, 25));
  const auto breakdown =
      evaluate_fully_sync_switch(trace, machine, schedule, {});
  EXPECT_GT(breakdown.total, 0);
}

TEST(RentOrBuy, AlphaZeroRefitsOnlyWhenTheFitActuallyShrinks) {
  // With alpha = 0 any waste crosses the threshold, but a refit is only
  // worth buying when the windowed fit differs from the current
  // hypercontext — at the second step the window still holds the wide first
  // requirement, so refitting would reproduce {s0,s1} exactly and must be
  // skipped (no paid no-op churn).
  RentOrBuyConfig config;
  config.alpha = 0.0;
  config.fit_window = 1;
  RentOrBuyScheduler scheduler(4, 4, config);
  scheduler.step({DynamicBitset::from_string("1100"), 0});
  const DynamicBitset narrow = DynamicBitset::from_string("1000");
  EXPECT_FALSE(scheduler.step({narrow, 0}))
      << "window still forces {s0,s1}: a refit would be a paid no-op";
  EXPECT_TRUE(scheduler.step({narrow, 0}))
      << "window now allows shrinking to {s0}";
  EXPECT_EQ(scheduler.hypercontext().to_string(), "1000");
  EXPECT_EQ(scheduler.hyper_count(), 2u);
}

TEST(RentOrBuy, AlphaZeroDoesNotChurnOnSteadyCoveredSteps) {
  // Steady identical requirements narrower than what the window union can
  // shed: after the one productive shrink, every further covered step must
  // ride the fitted hypercontext without buying more refits.
  RentOrBuyConfig config;
  config.alpha = 0.0;
  config.fit_window = 4;
  RentOrBuyScheduler scheduler(6, 10, config);
  scheduler.step({DynamicBitset::from_string("111100"), 0});
  const DynamicBitset narrow = DynamicBitset::from_string("110000");
  std::size_t refits = 0;
  for (int i = 0; i < 20; ++i) {
    if (scheduler.step({narrow, 0})) ++refits;
  }
  EXPECT_EQ(refits, 1u) << "exactly one shrink once the window drains";
  EXPECT_EQ(scheduler.hyper_count(), 2u);
  EXPECT_EQ(scheduler.hypercontext().to_string(), "110000");
}

TEST(RentOrBuy, AlwaysCoveredTraceBuysExactlyTheMandatoryRefit) {
  // Identical requirements every step: the hypercontext is perfectly
  // fitted from step 0, waste stays 0, and only the boundary-at-0
  // hyperreconfiguration is ever paid — for any alpha.
  for (const double alpha : {0.0, 1.0, 1e9}) {
    RentOrBuyConfig config;
    config.alpha = alpha;
    RentOrBuyScheduler scheduler(4, 7, config);
    const DynamicBitset req = DynamicBitset::from_string("0110");
    for (int i = 0; i < 15; ++i) scheduler.step({req, 1});
    EXPECT_EQ(scheduler.hyper_count(), 1u) << "alpha " << alpha;
    ASSERT_FALSE(scheduler.boundaries().empty());
    EXPECT_EQ(scheduler.boundaries().front(), 0u);
    // Cost: one init + 15 steps of |h| = 2 switches + 1 private unit.
    EXPECT_EQ(scheduler.total_cost(), 7 + 15 * 3);
  }
}

TEST(RentOrBuy, NeverCoveredTraceRefitsEveryStep) {
  // Each step demands a switch the previous hypercontext cannot have (with
  // fit_window = 1 the window is too short to retain it): every step is a
  // mandatory refit and a partition boundary.
  RentOrBuyConfig config;
  config.alpha = 1e9;  // voluntary refits disabled; all refits are forced
  config.fit_window = 1;
  const std::size_t n = 6;
  TaskTrace trace(n);
  for (std::size_t i = 0; i < n; ++i) {
    DynamicBitset req(n);
    req.set(i);
    trace.push_back_local(std::move(req));
  }
  RentOrBuyScheduler scheduler(n, 3, config);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(scheduler.step(trace.at(i))) << "step " << i;
  }
  EXPECT_EQ(scheduler.hyper_count(), n);
  const Partition partition = run_online_single(trace, 3, config);
  EXPECT_EQ(partition.interval_count(), n);
  EXPECT_EQ(partition.starts().front(), 0u);
}

TEST(RentOrBuy, HugeAlphaNeverBuysVoluntaryRefits) {
  // Wide first step then narrow ones: waste accrues every step but can
  // never reach alpha·v, so the only boundaries are forced ones.
  RentOrBuyConfig config;
  config.alpha = 1e12;
  config.fit_window = 1;
  RentOrBuyScheduler scheduler(4, 2, config);
  scheduler.step({DynamicBitset::from_string("1111"), 0});
  const DynamicBitset narrow = DynamicBitset::from_string("1000");
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(scheduler.step({narrow, 0})) << "step " << i;
  }
  EXPECT_EQ(scheduler.hyper_count(), 1u);
  EXPECT_EQ(scheduler.hypercontext().to_string(), "1111");
}

TEST(RentOrBuy, BoundaryAtZeroInvariantHoldsAcrossWorkloads) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskTrace trace = phased_trace(seed, 33, 9);
    for (const double alpha : {0.0, 0.5, 2.0}) {
      RentOrBuyConfig config;
      config.alpha = alpha;
      const Partition partition = run_online_single(trace, 9, config);
      EXPECT_EQ(partition.starts().front(), 0u)
          << "seed " << seed << " alpha " << alpha;
      EXPECT_EQ(partition.n(), trace.size());
    }
  }
}

TEST(RentOrBuy, BadConfigRejected) {
  EXPECT_THROW(RentOrBuyScheduler(4, 1, RentOrBuyConfig{1.0, 0}),
               PreconditionError);
  EXPECT_THROW(RentOrBuyScheduler(4, 1, RentOrBuyConfig{-0.5, 2}),
               PreconditionError);
}

TEST(RentOrBuy, UniverseMismatchRejected) {
  RentOrBuyScheduler scheduler(4, 1);
  EXPECT_THROW(scheduler.step({DynamicBitset(5), 0}), PreconditionError);
}

}  // namespace
}  // namespace hyperrec::online
