// Deadline contracts: a solver interrupted by its CancelToken must still
// hand back a feasible schedule whose stored breakdown matches a fresh
// re-evaluation — never a torn incumbent.
#include <gtest/gtest.h>

#include <chrono>

#include "core/annealing.hpp"
#include "core/coordinate_descent.hpp"
#include "core/genetic.hpp"
#include "engine/portfolio.hpp"
#include "testutil/workload_instances.hpp"

namespace hyperrec {
namespace {

using engine::PortfolioConfig;
using engine::PortfolioResult;
using engine::solve_portfolio;
using testutil::seeded_workload_instances;
using testutil::WorkloadInstance;

std::vector<WorkloadInstance> contract_instances() {
  return seeded_workload_instances(3, 32, 14, 0xDEAD11);
}

/// Feasibility + consistency: the schedule validates against the instance
/// shape and re-evaluating it reproduces the stored breakdown exactly.
void expect_untorn(const WorkloadInstance& instance, const MTSolution& solution,
                   const EvalOptions& options, const std::string& label) {
  ASSERT_NO_THROW(solution.schedule.validate(instance.trace.task_count(),
                                             instance.trace.steps()))
      << label;
  const MTSolution check = make_solution(instance.trace, instance.machine,
                                         solution.schedule, options);
  EXPECT_EQ(check.breakdown.total, solution.breakdown.total) << label;
  EXPECT_EQ(check.breakdown.hyper, solution.breakdown.hyper) << label;
  EXPECT_EQ(check.breakdown.reconfig, solution.breakdown.reconfig) << label;
  EXPECT_EQ(check.breakdown.global_hyper, solution.breakdown.global_hyper)
      << label;
}

TEST(DeadlineContract, AnnealingWithExpiredTokenReturnsUntornIncumbent) {
  for (const WorkloadInstance& instance : contract_instances()) {
    SaConfig config;
    config.cancel = CancelToken::expired();
    const MTSolution solution =
        solve_annealing(instance.trace, instance.machine, {}, config);
    expect_untorn(instance, solution, {}, "annealing/" + instance.name);
  }
}

TEST(DeadlineContract, GeneticWithExpiredTokenReturnsUntornIncumbent) {
  for (const WorkloadInstance& instance : contract_instances()) {
    GaConfig config;
    config.cancel = CancelToken::expired();
    const MTSolution solution =
        solve_genetic(instance.trace, instance.machine, {}, config).best;
    expect_untorn(instance, solution, {}, "genetic/" + instance.name);
  }
}

TEST(DeadlineContract, CoordinateDescentWithExpiredTokenReturnsUntornIncumbent) {
  for (const WorkloadInstance& instance : contract_instances()) {
    CoordinateDescentConfig config;
    config.cancel = CancelToken::expired();
    const MTSolution solution =
        solve_coordinate_descent(instance.trace, instance.machine, {}, config);
    expect_untorn(instance, solution,
                  {}, "coord-descent/" + instance.name);
  }
}

TEST(DeadlineContract, EveryRegistrySolverSurvivesAnExpiredToken) {
  const WorkloadInstance instance = contract_instances()[0];
  for (const NamedSolver& solver : standard_solvers()) {
    const MTSolution solution = solver.solve(instance.trace, instance.machine,
                                             {}, CancelToken::expired());
    expect_untorn(instance, solution, {}, solver.name);
  }
}

TEST(DeadlineContract, MidRunExpiryNeverTearsTheIncumbent) {
  // A token that fires while the solver is iterating (not before, not
  // after) is the interesting race; sweep a few budgets to move the expiry
  // point around.
  const WorkloadInstance instance = contract_instances()[0];
  for (const auto budget :
       {std::chrono::microseconds{200}, std::chrono::microseconds{2000},
        std::chrono::microseconds{20000}}) {
    SaConfig sa_config;
    sa_config.cancel = CancelToken::after(budget);
    expect_untorn(instance,
                  solve_annealing(instance.trace, instance.machine, {},
                                  sa_config),
                  {}, "annealing");
    GaConfig ga_config;
    ga_config.cancel = CancelToken::after(budget);
    expect_untorn(instance,
                  solve_genetic(instance.trace, instance.machine, {},
                                ga_config)
                      .best,
                  {}, "genetic");
    CoordinateDescentConfig cd_config;
    cd_config.cancel = CancelToken::after(budget);
    expect_untorn(instance,
                  solve_coordinate_descent(instance.trace, instance.machine,
                                           {}, cd_config),
                  {}, "coord-descent");
  }
}

TEST(DeadlineContract, PortfolioUnderFiveMsDeadlineIsFeasibleOnEveryFamily) {
  // Acceptance criterion: a 5 ms portfolio race must return a feasible,
  // untorn schedule on every seeded generator workload.
  for (const WorkloadInstance& instance : contract_instances()) {
    PortfolioConfig config;
    config.deadline = std::chrono::milliseconds{5};
    const PortfolioResult result =
        solve_portfolio(instance.trace, instance.machine, {}, config);
    EXPECT_FALSE(result.winner.empty()) << instance.name;
    expect_untorn(instance, result.best, {}, "portfolio/" + instance.name);
  }
}

}  // namespace
}  // namespace hyperrec
