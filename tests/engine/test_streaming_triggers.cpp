// Deterministic trigger-policy coverage for the streaming engine: each
// trigger kind fires exactly when specified, no-trigger streams never
// re-solve past the initial window, and a failed or cancelled window solve
// never tears the published schedule.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "model/cost_switch.hpp"
#include "streaming/streaming_engine.hpp"
#include "support/cancel.hpp"

namespace hyperrec::streaming {
namespace {

ContextRequirement req_bits(std::size_t universe,
                            std::initializer_list<std::size_t> bits,
                            std::uint32_t demand = 0) {
  ContextRequirement req{DynamicBitset(universe), demand};
  for (const std::size_t b : bits) req.local.set(b);
  return req;
}

StreamingConfig base_config(std::size_t window) {
  StreamingConfig config;
  config.window = window;
  config.portfolio.solvers = {"aligned-dp"};
  return config;
}

TEST(StreamingTriggers, StepCountFiresExactlyEveryN) {
  StreamingConfig config = base_config(32);
  config.trigger.every_steps = 4;
  StreamingEngine engine(MachineSpec::local_only({6}), EvalOptions{}, config);

  std::vector<std::size_t> resolve_steps;
  for (std::size_t i = 0; i < 14; ++i) {
    if (engine.append_step({req_bits(6, {i % 6})})) {
      resolve_steps.push_back(i + 1);
      EXPECT_TRUE(engine.windows().back().ok) << engine.windows().back().error;
    }
  }
  // Initial at step 1, then exactly every 4 appended steps: 5, 9, 13.
  EXPECT_EQ(resolve_steps, (std::vector<std::size_t>{1, 5, 9, 13}));
  ASSERT_EQ(engine.resolve_count(), 4u);
  EXPECT_EQ(engine.windows()[0].trigger, TriggerKind::kInitial);
  for (std::size_t k = 1; k < engine.windows().size(); ++k) {
    EXPECT_EQ(engine.windows()[k].trigger, TriggerKind::kStepCount);
  }
}

TEST(StreamingTriggers, DemandSpikeFiresOnTheSpikeStepOnly) {
  // Two tasks over a 4-unit pool; steady per-step demand sum 2, one spike
  // of sum 4 at step index 8.  spike_factor 1.5 ⇒ fire iff sum > 3.
  StreamingConfig config = base_config(32);
  config.trigger.spike_factor = 1.5;
  MachineSpec machine = MachineSpec::local_only({4, 4});
  machine.private_global_units = 4;
  machine.global_init = 3;
  StreamingEngine engine(machine, EvalOptions{}, config);

  std::vector<std::size_t> spike_steps;
  for (std::size_t i = 0; i < 12; ++i) {
    const std::uint32_t demand = i == 8 ? 2 : 1;
    const bool solved = engine.append_step(
        {req_bits(4, {0}, demand), req_bits(4, {1}, demand)});
    if (solved && engine.windows().back().trigger == TriggerKind::kDemandSpike) {
      spike_steps.push_back(i);
    }
  }
  EXPECT_EQ(spike_steps, (std::vector<std::size_t>{8}));
  // Initial solve + the one spike re-solve; the steady steps never fire.
  EXPECT_EQ(engine.resolve_count(), 2u);
  EXPECT_TRUE(engine.windows().back().ok) << engine.windows().back().error;
  // After the spike re-solve the baseline includes the spike, so an equal
  // follow-up spike of sum 4 would need > 6 to fire again: appending more
  // steady steps stays quiet.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(engine.append_step({req_bits(4, {0}, 1), req_bits(4, {1}, 1)}));
  }
}

TEST(StreamingTriggers, PostLullHeartbeatsNeverStormTheSolver) {
  // Regression for the re-solve storm: a stream that alternates quiet
  // stretches with tiny demand-1 heartbeats, with a step-count trigger
  // keeping the last solved window all-quiet.  The old spike baseline was
  // frozen at that last solved window — ~0 after every quiet stretch — so
  // EVERY post-lull heartbeat fired a kDemandSpike re-solve (a storm: one
  // expensive window solve per routine heartbeat).  The fixed trigger
  // applies the absolute floor `spike_min_demand` before any ratio check,
  // so sub-floor heartbeats can never fire however stale the baseline.
  StreamingConfig config = base_config(4);
  config.trigger.every_steps = 4;
  config.trigger.spike_factor = 1.5;
  config.trigger.spike_min_demand = 2;
  MachineSpec machine = MachineSpec::local_only({4});
  machine.private_global_units = 2;
  machine.global_init = 3;
  StreamingEngine engine(machine, EvalOptions{}, config);

  // Busy steps 0-5 (demand 2), quiet steps 6-13, then four heartbeat
  // cycles [demand-1, 0, 0, 0] — heartbeats land between the step-count
  // re-solves, each seeing an all-quiet last solved window.
  std::vector<std::uint32_t> demands;
  for (std::size_t i = 0; i < 6; ++i) demands.push_back(2);
  for (std::size_t i = 0; i < 8; ++i) demands.push_back(0);
  for (std::size_t c = 0; c < 4; ++c) {
    demands.push_back(1);
    for (std::size_t i = 0; i < 3; ++i) demands.push_back(0);
  }
  for (std::size_t i = 0; i < demands.size(); ++i) {
    engine.append_step({req_bits(4, {i % 4}, demands[i])});
  }
  // Deterministic schedule: the initial solve plus one step-count re-solve
  // every 4 steps — and not one demand-spike window.  (The frozen-baseline
  // logic fires 4 extra kDemandSpike windows here, one per heartbeat.)
  EXPECT_EQ(engine.resolve_count(), 8u);
  for (const WindowReport& window : engine.windows()) {
    EXPECT_NE(window.trigger, TriggerKind::kDemandSpike);
    EXPECT_TRUE(window.ok) << window.error;
  }
}

TEST(StreamingTriggers, SpikeAfterLullFiresDespiteStaleBusyBaseline) {
  // Dual of the storm: the frozen baseline also went stale in the other
  // direction.  A busy initial window (demand 4) froze a HIGH baseline, so
  // a genuine post-lull spike of demand 2 stayed below 1.5 x 4 and was
  // missed.  The fixed baseline tracks the trailing `window` steps — all
  // quiet by then — so the spike fires exactly once, at the spike step.
  StreamingConfig config = base_config(4);
  config.trigger.spike_factor = 1.5;
  MachineSpec machine = MachineSpec::local_only({4});
  machine.private_global_units = 4;
  machine.global_init = 3;
  StreamingEngine engine(machine, EvalOptions{}, config);

  engine.append_step({req_bits(4, {0}, 4)});  // initial solve, busy step
  for (std::size_t i = 1; i < 7; ++i) {
    EXPECT_FALSE(engine.append_step({req_bits(4, {i % 4}, 0)}));
  }
  // The demand-2 step after six quiet steps is a spike against the trailing
  // window (baseline 0), however busy the last *solved* window was.
  EXPECT_TRUE(engine.append_step({req_bits(4, {3}, 2)}));
  ASSERT_EQ(engine.resolve_count(), 2u);
  EXPECT_EQ(engine.windows().back().trigger, TriggerKind::kDemandSpike);
  EXPECT_TRUE(engine.windows().back().ok) << engine.windows().back().error;
  // Quiet aftermath: nothing else fires.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(engine.append_step({req_bits(4, {i}, 0)}));
  }
  EXPECT_EQ(engine.resolve_count(), 2u);
}

TEST(StreamingTriggers, QuotaRepairSealsAnOverflowingBlock) {
  // Two tasks over a 2-unit pool.  Steps 0..3 demand (2, 0), steps 4+
  // demand (0, 2): the published schedule's single growing quota block
  // would need Σ_j max = 4 > 2 once both phases are inside it, which the
  // §4.2 evaluator rejects.  The always-on quota-repair trigger must fire
  // at the first overflowing step and — once the sliding window clears the
  // phase boundary — seal the old block behind a global boundary so the
  // published schedule evaluates again.
  StreamingConfig config = base_config(2);  // window 2: clears the seam fast
  MachineSpec machine = MachineSpec::local_only({4, 4});
  machine.private_global_units = 2;
  machine.global_init = 3;
  StreamingEngine engine(machine, EvalOptions{}, config);

  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.append_step({req_bits(4, {0}, 2), req_bits(4, {1}, 0)}),
              i == 0)
        << "step " << i;  // only the initial solve fires in phase one
  }
  std::size_t repairs = 0;
  for (std::size_t i = 4; i < 8; ++i) {
    const bool solved =
        engine.append_step({req_bits(4, {0}, 0), req_bits(4, {1}, 2)});
    if (solved) {
      EXPECT_EQ(engine.windows().back().trigger, TriggerKind::kQuotaRepair);
      ++repairs;
    }
  }
  EXPECT_GE(repairs, 1u);
  // At least one repair succeeded: the published schedule carries a global
  // boundary sealing the phase-one block and evaluates cleanly again.
  EXPECT_TRUE(engine.windows().back().ok) << engine.windows().back().error;
  EXPECT_GT(engine.schedule().global_boundaries.size(), 1u);
  ASSERT_NO_THROW(engine.current_solution());
}

TEST(StreamingTriggers, RentOrBuyFiresOnAForcedRefit) {
  // A single task that needs bit 0 for seven steps and then switches to bit
  // 1: the rent-or-buy controller's hypercontext no longer covers the
  // requirement, forcing a buy exactly there.  A huge alpha disables
  // voluntary re-fits, so no other step can trigger.
  StreamingConfig config = base_config(32);
  config.trigger.rent_or_buy = true;
  config.trigger.rent_or_buy_config.alpha = 1e9;
  config.trigger.rent_or_buy_config.fit_window = 1;
  StreamingEngine engine(MachineSpec::local_only({4}), EvalOptions{}, config);

  std::vector<std::size_t> refit_steps;
  for (std::size_t i = 0; i < 12; ++i) {
    const bool solved =
        engine.append_step({i < 7 ? req_bits(4, {0}) : req_bits(4, {1})});
    if (solved && engine.windows().back().trigger == TriggerKind::kRentOrBuy) {
      refit_steps.push_back(i);
    }
  }
  EXPECT_EQ(refit_steps, (std::vector<std::size_t>{7}));
  EXPECT_EQ(engine.resolve_count(), 2u);  // initial + the forced re-fit
}

TEST(StreamingTriggers, DeadlineTickFiresAfterWallTimePasses) {
  StreamingConfig config = base_config(32);
  config.trigger.tick = std::chrono::milliseconds{15};
  StreamingEngine engine(MachineSpec::local_only({4}), EvalOptions{}, config);

  EXPECT_TRUE(engine.append_step({req_bits(4, {0})}));  // initial
  EXPECT_FALSE(engine.append_step({req_bits(4, {1})}));  // tick not elapsed
  std::this_thread::sleep_for(std::chrono::milliseconds{25});
  EXPECT_TRUE(engine.append_step({req_bits(4, {2})}));
  EXPECT_EQ(engine.windows().back().trigger, TriggerKind::kDeadlineTick);
  EXPECT_TRUE(engine.windows().back().ok) << engine.windows().back().error;
}

TEST(StreamingTriggers, TickClockArmsOnFirstIngestNotAtConstruction) {
  // Regression: the tick baseline used to be stamped in the constructor, so
  // an engine built ahead of traffic (a daemon registers tenant engines
  // before their first request) counted the idle pre-traffic gap as "time
  // since the last solve".  The repro pins the baseline: the engine-wide
  // cancel token is already fired, so the initial solve fails and never
  // re-arms the clock — with the construction-time baseline, the very next
  // append then fired a bogus kDeadlineTick re-solve; with the clock armed
  // on first ingest, back-to-back appends stay far inside the tick budget.
  const CancelToken cancel = CancelToken::manual();
  cancel.cancel();
  StreamingConfig config = base_config(32);
  config.trigger.tick = std::chrono::milliseconds{250};
  config.cancel = cancel;
  StreamingEngine engine(MachineSpec::local_only({4}), EvalOptions{}, config);

  // Idle longer than the tick budget before any traffic arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds{400});

  EXPECT_TRUE(engine.append_step({req_bits(4, {0})}));  // initial (fails)
  ASSERT_EQ(engine.resolve_count(), 1u);
  EXPECT_EQ(engine.windows().back().trigger, TriggerKind::kInitial);
  EXPECT_FALSE(engine.windows().back().ok);

  // Immediately after: nothing solved yet, but also no 250 ms elapsed since
  // the first step arrived — the tick trigger must stay quiet.
  EXPECT_FALSE(engine.append_step({req_bits(4, {1})}));
  EXPECT_EQ(engine.resolve_count(), 1u);
  for (const WindowReport& window : engine.windows()) {
    EXPECT_NE(window.trigger, TriggerKind::kDeadlineTick);
  }
}

TEST(StreamingTriggers, NoTriggerStreamsNeverResolvePastTheInitialWindow) {
  StreamingConfig config = base_config(8);  // all triggers at their defaults
  StreamingEngine engine(MachineSpec::local_only({5}), EvalOptions{}, config);
  EXPECT_TRUE(engine.append_step({req_bits(5, {0})}));
  for (std::size_t i = 1; i < 40; ++i) {
    EXPECT_FALSE(engine.append_step({req_bits(5, {i % 5})})) << "step " << i;
  }
  EXPECT_EQ(engine.resolve_count(), 1u);
  ASSERT_NO_THROW(engine.schedule().validate(1, 40));
}

TEST(StreamingTriggers, CancelledStreamNeverTearsThePublishedSchedule) {
  const CancelToken cancel = CancelToken::manual();
  StreamingConfig config = base_config(16);
  config.trigger.every_steps = 3;
  config.cancel = cancel;
  StreamingEngine engine(MachineSpec::local_only({6}), EvalOptions{}, config);

  for (std::size_t i = 0; i < 7; ++i) {
    engine.append_step({req_bits(6, {i % 6})});
  }
  ASSERT_GE(engine.resolve_count(), 2u);
  const std::vector<std::size_t> starts = engine.schedule().tasks[0].starts();
  const Cost cost_before = engine.current_solution().total();
  const std::size_t resolves_before = engine.resolve_count();

  cancel.cancel();
  for (std::size_t i = 0; i < 6; ++i) {
    engine.append_step({req_bits(6, {(7 + i) % 6})});
  }
  // Triggers still fired, but every cancelled window solve failed without
  // touching the published schedule.
  EXPECT_GT(engine.resolve_count(), resolves_before);
  for (std::size_t k = resolves_before; k < engine.windows().size(); ++k) {
    EXPECT_FALSE(engine.windows()[k].ok);
    EXPECT_NE(engine.windows()[k].error.find("cancel"), std::string::npos);
  }
  EXPECT_EQ(engine.schedule().tasks[0].starts(), starts);
  ASSERT_NO_THROW(engine.schedule().validate(1, 13));
  // The published schedule still extends over (and evaluates on) the steps
  // appended after cancellation.
  EXPECT_GE(engine.current_solution().total(), cost_before);

  // flush() on a cancelled stream is likewise a failed, non-tearing window.
  EXPECT_TRUE(engine.flush());
  EXPECT_FALSE(engine.windows().back().ok);
  EXPECT_EQ(engine.schedule().tasks[0].starts(), starts);
}

TEST(StreamingTriggers, InvalidWindowSolutionIsRejectedWithoutPublishing) {
  // A hostile portfolio member that always "wins" with cost 0 but returns a
  // schedule whose global boundary is out of range: the splice validation
  // must reject it and keep the previous published schedule intact.
  StreamingConfig config = base_config(16);
  config.trigger.every_steps = 2;
  config.portfolio.solvers = {"aligned-dp"};
  NamedSolver hostile;
  hostile.name = "hostile";
  hostile.fn = [](const SolveInstance& instance, const CancelToken&) {
    MTSolution solution;
    solution.schedule = MultiTaskSchedule::all_single(instance.task_count(),
                                                      instance.steps());
    solution.schedule.global_boundaries = {instance.steps() + 7};
    solution.breakdown.total = 0;  // beats every honest member
    return solution;
  };
  config.portfolio.extra.push_back(hostile);
  StreamingEngine engine(MachineSpec::local_only({4}), EvalOptions{}, config);

  engine.append_step({req_bits(4, {0})});
  // The initial window already went through the hostile winner: it failed
  // to publish, so the engine has no published schedule yet...
  ASSERT_EQ(engine.resolve_count(), 1u);
  EXPECT_FALSE(engine.windows()[0].ok);

  // ...and every later re-solve keeps failing the same way without ever
  // publishing a torn schedule.
  for (std::size_t i = 1; i < 6; ++i) {
    engine.append_step({req_bits(4, {i % 4})});
  }
  for (const WindowReport& window : engine.windows()) {
    EXPECT_FALSE(window.ok);
    EXPECT_NE(window.error.find("global boundary"), std::string::npos)
        << window.error;
  }
  EXPECT_TRUE(engine.schedule().tasks.empty());
  EXPECT_THROW(engine.current_solution(), PreconditionError);
}

}  // namespace
}  // namespace hyperrec::streaming
