#include "engine/portfolio.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "core/greedy.hpp"
#include "testutil/workload_instances.hpp"

namespace hyperrec::engine {
namespace {

using testutil::seeded_workload_instances;
using testutil::WorkloadInstance;

WorkloadInstance small_instance() {
  return seeded_workload_instances(3, 24, 12, 0xF01D)[0];
}

TEST(Portfolio, EmptyConfigRacesTheWholeLineUp) {
  const WorkloadInstance instance = small_instance();
  const PortfolioResult result =
      solve_portfolio(instance.trace, instance.machine);
  EXPECT_EQ(result.entries.size(), standard_solvers().size());
  EXPECT_FALSE(result.winner.empty());
}

TEST(Portfolio, WinnerHasTheMinimumTotalAmongMembers) {
  const WorkloadInstance instance = small_instance();
  PortfolioConfig config;
  config.solvers = {"aligned-dp", "greedy-w8", "coord-descent"};
  const PortfolioResult result =
      solve_portfolio(instance.trace, instance.machine, {}, config);
  ASSERT_EQ(result.entries.size(), 3u);
  Cost minimum = result.entries.front().total;
  for (const PortfolioEntry& entry : result.entries) {
    ASSERT_TRUE(entry.ok) << entry.solver << ": " << entry.error;
    minimum = std::min(minimum, entry.total);
  }
  EXPECT_EQ(result.best.total(), minimum);
  const bool winner_requested =
      std::find(config.solvers.begin(), config.solvers.end(), result.winner) !=
      config.solvers.end();
  EXPECT_TRUE(winner_requested) << result.winner;
}

TEST(Portfolio, UnknownMemberNameIsAPreconditionError) {
  const WorkloadInstance instance = small_instance();
  PortfolioConfig config;
  config.solvers = {"aligned-dp", "no-such-solver"};
  EXPECT_THROW(solve_portfolio(instance.trace, instance.machine, {}, config),
               PreconditionError);
}

TEST(Portfolio, SerialAndParallelAgreeWithoutADeadline) {
  // All five members are deterministic given their fixed seeds, so without
  // a deadline the execution mode cannot change any entry's cost.
  const WorkloadInstance instance = small_instance();
  PortfolioConfig serial;
  serial.parallel = false;
  PortfolioConfig parallel;
  parallel.parallel = true;
  const PortfolioResult a =
      solve_portfolio(instance.trace, instance.machine, {}, serial);
  const PortfolioResult b =
      solve_portfolio(instance.trace, instance.machine, {}, parallel);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].solver, b.entries[i].solver);
    EXPECT_EQ(a.entries[i].total, b.entries[i].total) << a.entries[i].solver;
  }
  EXPECT_EQ(a.best.total(), b.best.total());
  EXPECT_EQ(a.winner, b.winner);
}

TEST(Portfolio, CancelLosersStillReportsEveryMember) {
  const WorkloadInstance instance = small_instance();
  PortfolioConfig config;
  config.cancel_losers = true;
  const PortfolioResult result =
      solve_portfolio(instance.trace, instance.machine, {}, config);
  EXPECT_EQ(result.entries.size(), standard_solvers().size());
  for (const PortfolioEntry& entry : result.entries) {
    EXPECT_TRUE(entry.ok) << entry.solver << ": " << entry.error;
  }
}

TEST(Portfolio, SerialCancelLosersSkipsMembersAfterTheFirstWin) {
  const WorkloadInstance instance = small_instance();
  PortfolioConfig config;
  config.solvers = {"greedy-w8", "coord-descent", "annealing"};
  config.cancel_losers = true;
  config.parallel = false;
  const PortfolioResult result =
      solve_portfolio(instance.trace, instance.machine, {}, config);
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_TRUE(result.entries[0].ok) << result.entries[0].error;
  EXPECT_EQ(result.winner, "greedy-w8");
  for (std::size_t i = 1; i < result.entries.size(); ++i) {
    EXPECT_FALSE(result.entries[i].ok);
    EXPECT_NE(result.entries[i].error.find("skipped"), std::string::npos)
        << result.entries[i].error;
  }
}

TEST(Portfolio, RaceFromInsideItsOwnPoolDegradesToSerialInsteadOfDeadlock) {
  // One worker, and the race is started from that worker: without the
  // on_worker_thread() guard the member tasks would sit behind the blocked
  // worker forever.
  const WorkloadInstance instance = small_instance();
  ThreadPool pool(1);
  PortfolioConfig config;
  config.solvers = {"aligned-dp", "greedy-w8"};
  config.parallel = true;
  config.pool = &pool;
  auto future = pool.submit([&]() {
    return solve_portfolio(instance.trace, instance.machine, {}, config);
  });
  const PortfolioResult result = future.get();
  EXPECT_EQ(result.entries.size(), 2u);
  EXPECT_FALSE(result.winner.empty());
}

TEST(Portfolio, ExternalCancelStillYieldsAFeasibleBest) {
  const WorkloadInstance instance = small_instance();
  const PortfolioResult result = solve_portfolio(
      instance.trace, instance.machine, {}, {}, CancelToken::expired());
  EXPECT_NO_THROW(result.best.schedule.validate(instance.trace.task_count(),
                                                instance.trace.steps()));
  const MTSolution check = make_solution(instance.trace, instance.machine,
                                         result.best.schedule, {});
  EXPECT_EQ(check.total(), result.best.total());
}

TEST(Portfolio, AllRacersObserveTheSameSolveInstance) {
  // The whole point of the SolveInstance IR: the race shares one instance
  // (and hence one set of precomputed interval tables) across every member
  // — no per-racer copies.  Probe members record the address they were
  // handed; all must equal the caller's instance.
  const WorkloadInstance workload = small_instance();
  const SolveInstance instance(workload.trace, workload.machine);

  std::mutex mutex;
  std::vector<const SolveInstance*> observed;
  PortfolioConfig config;
  config.solvers = {"aligned-dp"};
  for (int i = 0; i < 3; ++i) {
    config.extra.push_back(NamedSolver{
        "probe-" + std::to_string(i),
        [&mutex, &observed](const SolveInstance& raced, const CancelToken&) {
          {
            const std::lock_guard<std::mutex> lock(mutex);
            observed.push_back(&raced);
          }
          return solve_greedy(raced);
        }});
  }
  const PortfolioResult result = solve_portfolio(instance, config);
  ASSERT_EQ(result.entries.size(), 4u);
  ASSERT_EQ(observed.size(), 3u);
  for (const SolveInstance* seen : observed) {
    EXPECT_EQ(seen, &instance) << "racer saw a per-racer instance copy";
  }
}

TEST(Portfolio, BestBreakdownMatchesReEvaluation) {
  const WorkloadInstance instance = small_instance();
  const PortfolioResult result =
      solve_portfolio(instance.trace, instance.machine);
  const MTSolution check = make_solution(instance.trace, instance.machine,
                                         result.best.schedule, {});
  EXPECT_EQ(check.breakdown.total, result.best.breakdown.total);
  EXPECT_EQ(check.breakdown.hyper, result.best.breakdown.hyper);
  EXPECT_EQ(check.breakdown.reconfig, result.best.breakdown.reconfig);
}

}  // namespace
}  // namespace hyperrec::engine
