#include "engine/batch_engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>

#include "testutil/workload_instances.hpp"

namespace hyperrec::engine {
namespace {

using testutil::seeded_workload_instances;

std::vector<BatchJob> small_batch() {
  std::vector<BatchJob> jobs;
  for (auto& instance : seeded_workload_instances(2, 20, 10, 0xBEEF)) {
    BatchJob job;
    job.trace = std::move(instance.trace);
    job.machine = std::move(instance.machine);
    job.name = instance.name;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(BatchEngine, EmptyBatchYieldsEmptyResult) {
  const BatchEngine engine_instance{BatchEngineConfig{}};
  const BatchResult result = engine_instance.solve({});
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_GT(result.parallelism, 0u);
}

TEST(BatchEngine, ResultsKeepInputOrderAndMatchDirectSolving) {
  const std::vector<BatchJob> jobs = small_batch();
  BatchEngineConfig config;
  config.parallelism = 2;
  config.portfolio.solvers = {"aligned-dp", "coord-descent"};
  const BatchEngine engine_instance(std::move(config));
  const BatchResult result = engine_instance.solve(jobs);

  ASSERT_EQ(result.jobs.size(), jobs.size());
  PortfolioConfig direct;
  direct.solvers = {"aligned-dp", "coord-descent"};
  direct.parallel = false;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobResult& job = result.jobs[i];
    EXPECT_EQ(job.index, i);
    EXPECT_EQ(job.name, jobs[i].name);
    ASSERT_TRUE(job.ok) << job.error;
    const PortfolioResult expected =
        solve_portfolio(jobs[i].trace, jobs[i].machine, jobs[i].options,
                        direct);
    EXPECT_EQ(job.solution.total(), expected.best.total()) << job.name;
    EXPECT_EQ(job.winner, expected.winner) << job.name;
    ASSERT_EQ(job.entries.size(), 2u);
  }
}

TEST(BatchEngine, JobFailureIsIsolatedAndReported) {
  std::vector<BatchJob> jobs = small_batch();
  // Sabotage one job: the machine disagrees with the trace's task count.
  jobs[2].machine = MachineSpec::uniform_local(jobs[2].trace.task_count() + 1,
                                               10);
  BatchEngineConfig config;
  config.portfolio.solvers = {"aligned-dp"};
  const BatchEngine engine_instance(std::move(config));
  const BatchResult result = engine_instance.solve(jobs);

  ASSERT_EQ(result.jobs.size(), jobs.size());
  EXPECT_FALSE(result.jobs[2].ok);
  EXPECT_FALSE(result.jobs[2].error.empty());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(result.jobs[i].ok) << result.jobs[i].error;
  }
}

TEST(BatchEngine, CustomSolverReplacesThePortfolio) {
  const std::vector<BatchJob> jobs = small_batch();
  BatchEngineConfig config;
  config.solver = [](const BatchJob& job, const CancelToken&) {
    MultiTaskSchedule schedule = MultiTaskSchedule::all_single(
        job.trace.task_count(), job.trace.steps());
    return make_solution(job.trace, job.machine, std::move(schedule),
                         job.options);
  };
  const BatchEngine engine_instance(std::move(config));
  const BatchResult result = engine_instance.solve(jobs);
  for (const JobResult& job : result.jobs) {
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.winner, "custom");
    EXPECT_TRUE(job.entries.empty());
  }
}

TEST(BatchEngine, EngineWideCancelReachesEveryJob) {
  const std::vector<BatchJob> jobs = small_batch();
  BatchEngineConfig config;
  config.cancel = CancelToken::expired();
  config.solver = [](const BatchJob& job, const CancelToken& token) {
    // The per-job token must already observe the engine-wide cancellation.
    HYPERREC_ENSURE(token.cancelled(), "engine token did not propagate");
    MultiTaskSchedule schedule = MultiTaskSchedule::all_single(
        job.trace.task_count(), job.trace.steps());
    return make_solution(job.trace, job.machine, std::move(schedule),
                         job.options);
  };
  const BatchEngine engine_instance(std::move(config));
  const BatchResult result = engine_instance.solve(jobs);
  for (const JobResult& job : result.jobs) {
    EXPECT_TRUE(job.ok) << job.error;
  }
}

TEST(BatchEngine, ParallelJobsOverlapOnTheSmokeWorkload) {
  // The engine's whole point: N jobs on W>1 workers must finish in less
  // wall-clock than the sum of the per-job times.  The job body sleeps, so
  // overlap shows even on single-core CI machines.
  constexpr auto kJobTime = std::chrono::milliseconds{20};
  std::vector<BatchJob> jobs = small_batch();  // 5 jobs
  auto sleeping_solver = [&](const BatchJob& job, const CancelToken&) {
    std::this_thread::sleep_for(kJobTime);
    MultiTaskSchedule schedule = MultiTaskSchedule::all_single(
        job.trace.task_count(), job.trace.steps());
    return make_solution(job.trace, job.machine, std::move(schedule),
                         job.options);
  };

  BatchEngineConfig parallel;
  parallel.parallelism = 5;
  parallel.solver = sleeping_solver;
  const BatchResult overlapped = BatchEngine(std::move(parallel)).solve(jobs);

  const auto serial_sum = std::accumulate(
      overlapped.jobs.begin(), overlapped.jobs.end(),
      std::chrono::microseconds{0},
      [](std::chrono::microseconds acc, const JobResult& job) {
        return acc + job.elapsed;
      });
  // 5 jobs x 20 ms: the serial sum is >= 100 ms while five workers finish
  // in ~20 ms; a 2x margin keeps scheduler noise from flaking the test.
  EXPECT_LT(overlapped.elapsed * 2, serial_sum)
      << "batch wall " << overlapped.elapsed.count() << " us vs serial sum "
      << serial_sum.count() << " us";

  BatchEngineConfig serial;
  serial.parallelism = 1;
  serial.solver = sleeping_solver;
  const BatchResult sequential = BatchEngine(std::move(serial)).solve(jobs);
  EXPECT_LT(overlapped.elapsed, sequential.elapsed);
}

}  // namespace
}  // namespace hyperrec::engine
