#include "workload/generators.hpp"

#include <gtest/gtest.h>

namespace hyperrec::workload {
namespace {

TEST(Phased, ShapeAndDeterminism) {
  PhasedConfig config;
  config.steps = 50;
  config.universe = 20;
  Xoshiro256 rng_a(5);
  Xoshiro256 rng_b(5);
  const TaskTrace a = make_phased(config, rng_a);
  const TaskTrace b = make_phased(config, rng_b);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(a.local_universe(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).local, b.at(i).local) << "step " << i;
  }
}

TEST(Phased, WindowBoundsRequirementSizeWithoutNoise) {
  PhasedConfig config;
  config.steps = 40;
  config.universe = 30;
  config.window_fraction = 0.2;  // window of 6
  config.noise = 0.0;
  Xoshiro256 rng(9);
  const TaskTrace trace = make_phased(config, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_LE(trace.at(i).local.count(), 6u);
  }
}

TEST(Phased, ZeroSizesRejected) {
  PhasedConfig config;
  config.steps = 0;
  Xoshiro256 rng(1);
  EXPECT_THROW(make_phased(config, rng), PreconditionError);
}

TEST(Random, DensityControlsExpectedPopcount) {
  RandomConfig config;
  config.steps = 200;
  config.universe = 40;
  config.density = 0.5;
  Xoshiro256 rng(13);
  const TaskTrace trace = make_random(config, rng);
  double total = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    total += static_cast<double>(trace.at(i).local.count());
  }
  const double mean = total / 200.0;
  EXPECT_NEAR(mean, 20.0, 2.0);
}

TEST(RandomWalk, RequirementsStayInsideUniverse) {
  RandomWalkConfig config;
  config.steps = 100;
  config.universe = 16;
  config.window = 5;
  Xoshiro256 rng(21);
  const TaskTrace trace = make_random_walk(config, rng);
  EXPECT_EQ(trace.size(), 100u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_LE(trace.at(i).local.count(), 5u);
  }
}

TEST(RandomWalk, HasTemporalLocality) {
  // Consecutive requirements should overlap much more than distant ones on
  // average; check a weak version: average consecutive union is well below
  // twice the window.
  RandomWalkConfig config;
  config.steps = 200;
  config.universe = 32;
  config.window = 8;
  config.drift = 0.2;
  config.density = 0.9;
  Xoshiro256 rng(33);
  const TaskTrace trace = make_random_walk(config, rng);
  double union_sum = 0;
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    union_sum +=
        static_cast<double>(trace.at(i).local.union_count(trace.at(i + 1).local));
  }
  EXPECT_LT(union_sum / 199.0, 12.0) << "windows drift by at most one switch";
}

TEST(Bursty, QuietPhasesAreNarrow) {
  BurstyConfig config;
  config.steps = 300;
  config.universe = 40;
  config.quiet_switches = 4;
  config.burst_probability = 0.03;
  Xoshiro256 rng(8);
  const TaskTrace trace = make_bursty(config, rng);
  std::size_t narrow = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.at(i).local.count() <= 4) ++narrow;
  }
  EXPECT_GT(narrow, trace.size() / 2) << "most steps should be quiet";
}

TEST(Periodic, RepeatsThePattern) {
  PeriodicConfig config;
  config.repetitions = 5;
  config.period = 7;
  config.universe = 24;
  Xoshiro256 rng(15);
  const TaskTrace trace = make_periodic(config, rng);
  ASSERT_EQ(trace.size(), 35u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).local, trace.at(i % 7).local) << "step " << i;
  }
}

TEST(AddPrivateDemand, AlternatingPlateaus) {
  PeriodicConfig config;
  config.repetitions = 4;
  config.period = 5;
  config.universe = 8;
  Xoshiro256 rng(2);
  TaskTrace trace = make_periodic(config, rng);
  add_private_demand(trace, 1, 6, 4);
  // 20 steps, 4 phases of 5: low, high, low, high.
  EXPECT_EQ(trace.at(0).private_demand, 1u);
  EXPECT_EQ(trace.at(5).private_demand, 6u);
  EXPECT_EQ(trace.at(10).private_demand, 1u);
  EXPECT_EQ(trace.at(15).private_demand, 6u);
}

TEST(AddPrivateDemand, BadArgumentsRejected) {
  TaskTrace trace(4);
  trace.push_back_local(DynamicBitset(4));
  EXPECT_THROW(add_private_demand(trace, 5, 2, 2), PreconditionError);
  EXPECT_THROW(add_private_demand(trace, 1, 2, 0), PreconditionError);
}

TEST(MultiPhased, ProducesSynchronizedIndependentTasks) {
  MultiPhasedConfig config;
  config.tasks = 4;
  config.task_config.steps = 30;
  config.task_config.universe = 12;
  const auto trace = make_multi_phased(config, 99);
  EXPECT_EQ(trace.task_count(), 4u);
  EXPECT_TRUE(trace.synchronized());
  EXPECT_EQ(trace.steps(), 30u);
  // Streams must differ across tasks (overwhelmingly likely).
  bool any_difference = false;
  for (std::size_t i = 0; i < 30 && !any_difference; ++i) {
    any_difference = !(trace.task(0).at(i).local == trace.task(1).at(i).local);
  }
  EXPECT_TRUE(any_difference);
}

TEST(MultiPhased, DeterministicInSeed) {
  MultiPhasedConfig config;
  config.tasks = 2;
  config.task_config.steps = 10;
  config.task_config.universe = 6;
  const auto a = make_multi_phased(config, 7);
  const auto b = make_multi_phased(config, 7);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(a.task(j).at(i).local, b.task(j).at(i).local);
    }
  }
}

}  // namespace
}  // namespace hyperrec::workload
