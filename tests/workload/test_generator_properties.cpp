// Property tests shared by all five workload generators: determinism in
// the seed, sensitivity to the seed, shape bounds, and behaviour at the
// density extremes (0.0 and 1.0) where off-by-one windowing bugs live.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "workload/generators.hpp"

namespace hyperrec::workload {
namespace {

constexpr std::size_t kSteps = 48;
constexpr std::size_t kUniverse = 18;

struct Family {
  std::string name;
  std::function<TaskTrace(std::uint64_t seed)> generate;
};

/// All five generators with mid-range configs and a common shape.
std::vector<Family> families() {
  std::vector<Family> result;
  result.push_back({"phased", [](std::uint64_t seed) {
                      PhasedConfig config;
                      config.steps = kSteps;
                      config.universe = kUniverse;
                      Xoshiro256 rng(seed);
                      return make_phased(config, rng);
                    }});
  result.push_back({"random", [](std::uint64_t seed) {
                      RandomConfig config;
                      config.steps = kSteps;
                      config.universe = kUniverse;
                      Xoshiro256 rng(seed);
                      return make_random(config, rng);
                    }});
  result.push_back({"random-walk", [](std::uint64_t seed) {
                      RandomWalkConfig config;
                      config.steps = kSteps;
                      config.universe = kUniverse;
                      config.window = 6;
                      Xoshiro256 rng(seed);
                      return make_random_walk(config, rng);
                    }});
  result.push_back({"bursty", [](std::uint64_t seed) {
                      BurstyConfig config;
                      config.steps = kSteps;
                      config.universe = kUniverse;
                      config.burst_probability = 0.2;
                      Xoshiro256 rng(seed);
                      return make_bursty(config, rng);
                    }});
  result.push_back({"periodic", [](std::uint64_t seed) {
                      PeriodicConfig config;
                      config.repetitions = 8;
                      config.period = 6;  // 48 steps
                      config.universe = kUniverse;
                      Xoshiro256 rng(seed);
                      return make_periodic(config, rng);
                    }});
  return result;
}

bool identical(const TaskTrace& a, const TaskTrace& b) {
  if (a.size() != b.size() || a.local_universe() != b.local_universe()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a.at(i).local == b.at(i).local) ||
        a.at(i).private_demand != b.at(i).private_demand) {
      return false;
    }
  }
  return true;
}

TEST(GeneratorProperties, SameSeedReproducesTheTraceBitForBit) {
  for (const Family& family : families()) {
    const TaskTrace a = family.generate(0x5EED);
    const TaskTrace b = family.generate(0x5EED);
    EXPECT_TRUE(identical(a, b)) << family.name;
  }
}

TEST(GeneratorProperties, DifferentSeedsProduceDifferentTraces) {
  for (const Family& family : families()) {
    const TaskTrace a = family.generate(1);
    const TaskTrace b = family.generate(2);
    EXPECT_FALSE(identical(a, b)) << family.name;
  }
}

TEST(GeneratorProperties, EveryStepRespectsUniverseAndStepBounds) {
  for (const Family& family : families()) {
    const TaskTrace trace = family.generate(0xB0B);
    EXPECT_EQ(trace.size(), kSteps) << family.name;
    EXPECT_EQ(trace.local_universe(), kUniverse) << family.name;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(trace.at(i).local.size(), kUniverse)
          << family.name << " step " << i;
      EXPECT_LE(trace.at(i).local.count(), kUniverse)
          << family.name << " step " << i;
    }
  }
}

TEST(FamilyFactory, EveryNamedFamilyBuildsAValidTrace) {
  for (const std::string& kind : family_names()) {
    Xoshiro256 rng(0xFA);
    const TaskTrace trace = make_family(kind, 20, 8, rng);
    EXPECT_GE(trace.size(), 20u) << kind;  // periodic rounds up to periods
    EXPECT_EQ(trace.local_universe(), 8u) << kind;
  }
}

TEST(FamilyFactory, MatchesTheUnderlyingGeneratorForPlainConfigs) {
  Xoshiro256 by_name_rng(0xAB);
  const TaskTrace by_name = make_family("random", 15, 7, by_name_rng);
  RandomConfig config;
  config.steps = 15;
  config.universe = 7;
  Xoshiro256 direct_rng(0xAB);
  const TaskTrace direct = make_random(config, direct_rng);
  ASSERT_EQ(by_name.size(), direct.size());
  for (std::size_t i = 0; i < by_name.size(); ++i) {
    EXPECT_EQ(by_name.at(i).local, direct.at(i).local) << "step " << i;
  }
}

TEST(FamilyFactory, UnknownFamilyIsAPreconditionError) {
  Xoshiro256 rng(1);
  EXPECT_THROW(make_family("fractal", 10, 5, rng), PreconditionError);
}

TEST(PhasedExtremes, ZeroDensityAndNoiseYieldEmptyRequirements) {
  PhasedConfig config;
  config.steps = 30;
  config.universe = 12;
  config.density = 0.0;
  config.noise = 0.0;
  Xoshiro256 rng(3);
  const TaskTrace trace = make_phased(config, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).local.count(), 0u) << "step " << i;
  }
}

TEST(PhasedExtremes, FullDensityFillsExactlyTheWindow) {
  PhasedConfig config;
  config.steps = 30;
  config.universe = 12;
  config.window_fraction = 0.25;  // window of 3
  config.density = 1.0;
  config.noise = 0.0;
  Xoshiro256 rng(4);
  const TaskTrace trace = make_phased(config, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).local.count(), 3u) << "step " << i;
  }
}

TEST(PhasedExtremes, FullNoiseFillsTheUniverse) {
  PhasedConfig config;
  config.steps = 10;
  config.universe = 9;
  config.density = 0.0;
  config.noise = 1.0;
  Xoshiro256 rng(5);
  const TaskTrace trace = make_phased(config, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).local.count(), 9u) << "step " << i;
  }
}

TEST(RandomExtremes, DensityZeroIsEmptyAndOneIsFull) {
  RandomConfig config;
  config.steps = 25;
  config.universe = 14;
  config.density = 0.0;
  Xoshiro256 rng(6);
  const TaskTrace empty = make_random(config, rng);
  config.density = 1.0;
  const TaskTrace full = make_random(config, rng);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(empty.at(i).local.count(), 0u) << "step " << i;
    EXPECT_EQ(full.at(i).local.count(), 14u) << "step " << i;
  }
}

TEST(RandomWalkExtremes, FullDensityFillsExactlyTheWindow) {
  RandomWalkConfig config;
  config.steps = 40;
  config.universe = 16;
  config.window = 5;
  config.density = 1.0;
  Xoshiro256 rng(7);
  const TaskTrace trace = make_random_walk(config, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).local.count(), 5u) << "step " << i;
  }
}

TEST(RandomWalkExtremes, ZeroDensityIsEmpty) {
  RandomWalkConfig config;
  config.steps = 40;
  config.universe = 16;
  config.window = 5;
  config.density = 0.0;
  Xoshiro256 rng(8);
  const TaskTrace trace = make_random_walk(config, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).local.count(), 0u) << "step " << i;
  }
}

TEST(RandomWalkExtremes, WindowWiderThanUniverseIsClippedNotFatal) {
  RandomWalkConfig config;
  config.steps = 12;
  config.universe = 4;
  config.window = 9;  // wider than the universe
  config.density = 1.0;
  Xoshiro256 rng(9);
  const TaskTrace trace = make_random_walk(config, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).local.count(), 4u) << "step " << i;
  }
}

TEST(BurstyExtremes, NeverBurstingKeepsEveryStepQuiet) {
  BurstyConfig config;
  config.steps = 50;
  config.universe = 20;
  config.quiet_switches = 3;
  config.burst_probability = 0.0;
  Xoshiro256 rng(10);
  const TaskTrace trace = make_bursty(config, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_LE(trace.at(i).local.count(), 3u) << "step " << i;
  }
}

TEST(BurstyExtremes, AlwaysBurstingAtFullFractionFillsTheUniverse) {
  BurstyConfig config;
  config.steps = 20;
  config.universe = 11;
  config.burst_probability = 1.0;
  config.burst_length = 1;  // re-roll the burst every step
  config.burst_fraction = 1.0;
  Xoshiro256 rng(11);
  const TaskTrace trace = make_bursty(config, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).local.count(), 11u) << "step " << i;
  }
}

TEST(PeriodicExtremes, ZeroWindowFractionStillYieldsAOneSwitchWindow) {
  PeriodicConfig config;
  config.repetitions = 3;
  config.period = 4;
  config.universe = 10;
  config.window_fraction = 0.0;
  Xoshiro256 rng(12);
  const TaskTrace trace = make_periodic(config, rng);
  EXPECT_EQ(trace.size(), 12u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_LE(trace.at(i).local.count(), 1u) << "step " << i;
  }
}

TEST(PeriodicExtremes, FullWindowFractionStaysWithinTheUniverse) {
  PeriodicConfig config;
  config.repetitions = 3;
  config.period = 4;
  config.universe = 10;
  config.window_fraction = 1.0;
  Xoshiro256 rng(13);
  const TaskTrace trace = make_periodic(config, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_LE(trace.at(i).local.count(), 10u) << "step " << i;
    EXPECT_EQ(trace.at(i).local, trace.at(i % 4).local) << "step " << i;
  }
}

}  // namespace
}  // namespace hyperrec::workload
