#include "core/aligned_dp.hpp"

#include <gtest/gtest.h>

#include "core/interval_dp.hpp"
#include "testutil/oracles.hpp"
#include "testutil/trace_builders.hpp"
#include "workload/generators.hpp"

namespace hyperrec {
namespace {

using testutil::phased_pair;

TEST(AlignedDp, AllPartitionsIdenticalAcrossTasks) {
  const auto trace = phased_pair();
  const auto machine = MachineSpec::uniform_local(2, 4);
  const auto solution = solve_aligned_dp(trace, machine, {});
  ASSERT_EQ(solution.schedule.tasks.size(), 2u);
  EXPECT_EQ(solution.schedule.tasks[0].starts(),
            solution.schedule.tasks[1].starts());
}

TEST(AlignedDp, MatchesAlignedBruteForceParallelParallel) {
  const auto trace = phased_pair();
  const auto machine = MachineSpec::uniform_local(2, 4);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskParallel,
                      false};
  const auto solution = solve_aligned_dp(trace, machine, options);
  EXPECT_EQ(solution.total(),
            testutil::brute_force_aligned(trace, machine, options));
}

TEST(AlignedDp, MatchesAlignedBruteForceSequentialSequential) {
  const auto trace = phased_pair();
  const auto machine = MachineSpec::uniform_local(2, 4);
  EvalOptions options{UploadMode::kTaskSequential, UploadMode::kTaskSequential,
                      false};
  const auto solution = solve_aligned_dp(trace, machine, options);
  EXPECT_EQ(solution.total(),
            testutil::brute_force_aligned(trace, machine, options));
}

TEST(AlignedDp, MatchesAlignedBruteForceOnRandomTraces) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    workload::MultiPhasedConfig config;
    config.tasks = 2;
    config.task_config.steps = 8;
    config.task_config.universe = 5;
    config.task_config.phases = 2;
    const auto trace = workload::make_multi_phased(config, seed);
    const auto machine = MachineSpec::uniform_local(2, 5);
    for (const auto hyper :
         {UploadMode::kTaskParallel, UploadMode::kTaskSequential}) {
      for (const auto reconfig :
           {UploadMode::kTaskParallel, UploadMode::kTaskSequential}) {
        EvalOptions options{hyper, reconfig, false};
        const auto solution = solve_aligned_dp(trace, machine, options);
        EXPECT_EQ(solution.total(),
                  testutil::brute_force_aligned(trace, machine, options))
            << "seed " << seed;
      }
    }
  }
}

TEST(AlignedDp, ReducesToSingleTaskDpForOneTask) {
  const auto trace = MultiTaskTrace::from_local(
      {4}, {{DynamicBitset::from_string("1100"),
             DynamicBitset::from_string("1100"),
             DynamicBitset::from_string("0011")}});
  const auto machine = MachineSpec::local_only({4});
  const auto aligned = solve_aligned_dp(trace, machine, {});
  const auto single = solve_single_task_switch(trace.task(0), 4);
  EXPECT_EQ(aligned.total(), single.total);
}

TEST(AlignedDp, ChangeoverRejected) {
  const auto trace = phased_pair();
  const auto machine = MachineSpec::uniform_local(2, 4);
  EvalOptions options;
  options.changeover = true;
  EXPECT_THROW(solve_aligned_dp(trace, machine, options), PreconditionError);
}

TEST(AlignedDp, SolutionEvaluatesToReportedCost) {
  const auto trace = phased_pair();
  const auto machine = MachineSpec::uniform_local(2, 4);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                      false};
  const auto solution = solve_aligned_dp(trace, machine, options);
  EXPECT_EQ(
      solution.total(),
      evaluate_fully_sync_switch(trace, machine, solution.schedule, options)
          .total);
}

}  // namespace
}  // namespace hyperrec
