#include "core/private_global.hpp"

#include <gtest/gtest.h>

namespace hyperrec {
namespace {

/// Two tasks whose private demand swaps halfway: task 0 needs 6 units then
/// 1, task 1 needs 1 then 6, out of a pool of g = 8.  Serving both peaks in
/// one block needs 12 > 8 units — a mid-trace global hyperreconfiguration is
/// mandatory.
MultiTaskTrace swapping_demand_trace(std::size_t half) {
  MultiTaskTrace trace;
  TaskTrace t0(2);
  TaskTrace t1(2);
  for (std::size_t i = 0; i < 2 * half; ++i) {
    const bool first_half = i < half;
    t0.push_back({DynamicBitset::from_string("10"),
                  first_half ? 6u : 1u});
    t1.push_back({DynamicBitset::from_string("01"),
                  first_half ? 1u : 6u});
  }
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  return trace;
}

MachineSpec pooled_machine() {
  MachineSpec machine = MachineSpec::uniform_local(2, 2);
  machine.private_global_units = 8;
  machine.global_init = 5;
  return machine;
}

TEST(PrivateGlobal, InsertsMandatoryGlobalBoundary) {
  const auto trace = swapping_demand_trace(4);
  const auto machine = pooled_machine();
  const auto result = solve_private_global(trace, machine);
  ASSERT_GE(result.solution.schedule.global_boundaries.size(), 2u)
      << "demand swap cannot be served by a single block";
  EXPECT_EQ(result.solution.schedule.global_boundaries.front(), 0u);
}

TEST(PrivateGlobal, QuotasCoverBlockDemands) {
  const auto trace = swapping_demand_trace(4);
  const auto machine = pooled_machine();
  const auto result = solve_private_global(trace, machine);
  for (const auto& quotas : result.quotas) {
    std::uint64_t total = 0;
    for (const auto quota : quotas) total += quota;
    EXPECT_LE(total, machine.private_global_units);
  }
}

TEST(PrivateGlobal, SolutionValidatesUnderEvaluator) {
  const auto trace = swapping_demand_trace(3);
  const auto machine = pooled_machine();
  const auto result = solve_private_global(trace, machine);
  EXPECT_EQ(result.solution.total(),
            evaluate_fully_sync_switch(trace, machine,
                                       result.solution.schedule, {})
                .total);
}

TEST(PrivateGlobal, GlobalInitEnteringTotal) {
  const auto trace = swapping_demand_trace(3);
  MachineSpec cheap = pooled_machine();
  cheap.global_init = 0;
  MachineSpec expensive = pooled_machine();
  expensive.global_init = 50;
  const auto cheap_result = solve_private_global(trace, cheap);
  const auto expensive_result = solve_private_global(trace, expensive);
  EXPECT_LT(cheap_result.solution.total(), expensive_result.solution.total());
}

TEST(PrivateGlobal, FitsInOneBlockWhenPoolIsLarge) {
  const auto trace = swapping_demand_trace(3);
  MachineSpec machine = pooled_machine();
  machine.private_global_units = 14;  // 6+6 fits now…
  machine.global_init = 1000;         // …and extra blocks are prohibitive
  const auto result = solve_private_global(trace, machine);
  EXPECT_EQ(result.solution.schedule.global_boundaries.size(), 1u);
}

TEST(PrivateGlobal, LocalOnlyMachineRejected) {
  const auto trace = MultiTaskTrace::from_local(
      {2, 2}, {{DynamicBitset(2)}, {DynamicBitset(2)}});
  const auto machine = MachineSpec::uniform_local(2, 2);
  EXPECT_THROW(solve_private_global(trace, machine), PreconditionError);
}

TEST(PrivateGlobal, InfeasibleDemandThrows) {
  // Peak joint demand 12 with pool 8, but the peaks coincide — no boundary
  // placement can help.
  MultiTaskTrace trace;
  TaskTrace t0(2);
  TaskTrace t1(2);
  for (int i = 0; i < 4; ++i) {
    t0.push_back({DynamicBitset::from_string("10"), 6});
    t1.push_back({DynamicBitset::from_string("01"), 6});
  }
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  const auto machine = pooled_machine();
  EXPECT_THROW(solve_private_global(trace, machine), PreconditionError);
}

TEST(PrivateGlobal, CandidateRestrictionIsHonoured) {
  const auto trace = swapping_demand_trace(4);
  const auto machine = pooled_machine();
  PrivateGlobalConfig config;
  config.candidates = {0, 4};  // exactly the demand-swap point
  const auto result = solve_private_global(trace, machine, {}, config);
  for (const std::size_t g : result.solution.schedule.global_boundaries) {
    EXPECT_TRUE(g == 0 || g == 4);
  }
}

}  // namespace
}  // namespace hyperrec
