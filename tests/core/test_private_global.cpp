#include "core/private_global.hpp"

#include <gtest/gtest.h>

#include "core/coordinate_descent.hpp"

namespace hyperrec {
namespace {

/// Two tasks whose private demand swaps halfway: task 0 needs 6 units then
/// 1, task 1 needs 1 then 6, out of a pool of g = 8.  Serving both peaks in
/// one block needs 12 > 8 units — a mid-trace global hyperreconfiguration is
/// mandatory.
MultiTaskTrace swapping_demand_trace(std::size_t half) {
  MultiTaskTrace trace;
  TaskTrace t0(2);
  TaskTrace t1(2);
  for (std::size_t i = 0; i < 2 * half; ++i) {
    const bool first_half = i < half;
    t0.push_back({DynamicBitset::from_string("10"),
                  first_half ? 6u : 1u});
    t1.push_back({DynamicBitset::from_string("01"),
                  first_half ? 1u : 6u});
  }
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  return trace;
}

MachineSpec pooled_machine() {
  MachineSpec machine = MachineSpec::uniform_local(2, 2);
  machine.private_global_units = 8;
  machine.global_init = 5;
  return machine;
}

TEST(PrivateGlobal, InsertsMandatoryGlobalBoundary) {
  const auto trace = swapping_demand_trace(4);
  const auto machine = pooled_machine();
  const auto result = solve_private_global(trace, machine);
  ASSERT_GE(result.solution.schedule.global_boundaries.size(), 2u)
      << "demand swap cannot be served by a single block";
  EXPECT_EQ(result.solution.schedule.global_boundaries.front(), 0u);
}

TEST(PrivateGlobal, QuotasCoverBlockDemands) {
  const auto trace = swapping_demand_trace(4);
  const auto machine = pooled_machine();
  const auto result = solve_private_global(trace, machine);
  for (const auto& quotas : result.quotas) {
    std::uint64_t total = 0;
    for (const auto quota : quotas) total += quota;
    EXPECT_LE(total, machine.private_global_units);
  }
}

TEST(PrivateGlobal, SolutionValidatesUnderEvaluator) {
  const auto trace = swapping_demand_trace(3);
  const auto machine = pooled_machine();
  const auto result = solve_private_global(trace, machine);
  EXPECT_EQ(result.solution.total(),
            evaluate_fully_sync_switch(trace, machine,
                                       result.solution.schedule, {})
                .total);
}

TEST(PrivateGlobal, GlobalInitEnteringTotal) {
  const auto trace = swapping_demand_trace(3);
  MachineSpec cheap = pooled_machine();
  cheap.global_init = 0;
  MachineSpec expensive = pooled_machine();
  expensive.global_init = 50;
  const auto cheap_result = solve_private_global(trace, cheap);
  const auto expensive_result = solve_private_global(trace, expensive);
  EXPECT_LT(cheap_result.solution.total(), expensive_result.solution.total());
}

TEST(PrivateGlobal, FitsInOneBlockWhenPoolIsLarge) {
  const auto trace = swapping_demand_trace(3);
  MachineSpec machine = pooled_machine();
  machine.private_global_units = 14;  // 6+6 fits now…
  machine.global_init = 1000;         // …and extra blocks are prohibitive
  const auto result = solve_private_global(trace, machine);
  EXPECT_EQ(result.solution.schedule.global_boundaries.size(), 1u);
}

TEST(PrivateGlobal, LocalOnlyMachineRejected) {
  const auto trace = MultiTaskTrace::from_local(
      {2, 2}, {{DynamicBitset(2)}, {DynamicBitset(2)}});
  const auto machine = MachineSpec::uniform_local(2, 2);
  EXPECT_THROW(solve_private_global(trace, machine), PreconditionError);
}

TEST(PrivateGlobal, InfeasibleDemandThrows) {
  // Peak joint demand 12 with pool 8, but the peaks coincide — no boundary
  // placement can help.
  MultiTaskTrace trace;
  TaskTrace t0(2);
  TaskTrace t1(2);
  for (int i = 0; i < 4; ++i) {
    t0.push_back({DynamicBitset::from_string("10"), 6});
    t1.push_back({DynamicBitset::from_string("01"), 6});
  }
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  const auto machine = pooled_machine();
  EXPECT_THROW(solve_private_global(trace, machine), PreconditionError);
}

// Regression: blocks are solved against the parent machine with its
// private-global pool intact (validate_trace and the evaluator's quota check
// need the real unit count) but with global_init zeroed — the outer DP
// charges w per block itself.  A dead store used to *look* like blocks were
// local-only machines; this pins the actual construction.
TEST(PrivateGlobal, BlockMachineKeepsPoolPublicAndZeroGlobalInit) {
  const auto trace = swapping_demand_trace(3);
  MachineSpec machine = pooled_machine();
  machine.public_context_size = 3;
  std::size_t blocks_seen = 0;
  PrivateGlobalConfig config;
  config.inner = [&](const SolveInstance& block, const CancelToken& cancel) {
    ++blocks_seen;
    EXPECT_EQ(block.machine().private_global_units,
              machine.private_global_units);
    EXPECT_EQ(block.machine().public_context_size, 3u);
    EXPECT_EQ(block.machine().global_init, 0);
    EXPECT_TRUE(block.machine().has_global_resources());
    CoordinateDescentConfig cd;
    cd.cancel = cancel;
    return solve_coordinate_descent(block, cd);
  };
  const auto result = solve_private_global(trace, machine, {}, config);
  EXPECT_GT(blocks_seen, 0u);
  EXPECT_EQ(result.solution.total(),
            evaluate_fully_sync_switch(trace, machine,
                                       result.solution.schedule, {})
                .total);
}

// Regression: the stitch used to *silently drop* any global boundaries an
// inner solver placed beyond the block start, leaving the DP's cost estimate
// and the stitched schedule inconsistent.  Inner solutions must treat each
// block as a single global block; anything else is rejected loudly.
TEST(PrivateGlobal, RejectsInnerSolutionsThatSplitTheBlock) {
  const auto trace = swapping_demand_trace(4);
  const auto machine = pooled_machine();
  PrivateGlobalConfig config;
  config.candidates = {0, 4};
  config.inner = [](const SolveInstance& block, const CancelToken&) {
    const std::size_t steps = block.steps();
    const std::size_t mid = steps / 2;
    MultiTaskSchedule schedule;
    for (std::size_t j = 0; j < block.task_count(); ++j) {
      schedule.tasks.push_back(
          Partition::from_starts({0, mid}, steps));
    }
    schedule.global_boundaries = {0, mid};  // extra mid-block boundary
    return make_solution(block, std::move(schedule));
  };
  EXPECT_THROW(solve_private_global(trace, machine, {}, config),
               PreconditionError);
}

// Regression: feasibility is monotone (range-max quotas only grow with the
// range), so the block scan must `break` at the first infeasible block and
// never solve blocks starting from a candidate the DP cannot reach.  With a
// hot step at index 2 (joint demand 10 > pool 8) the decomposition fails
// overall, after only the three feasible-and-reachable prefix blocks [0,1),
// [0,2) and [1,2) were solved — the old scan solved all 48 feasible blocks.
TEST(PrivateGlobal, MonotoneInfeasibilityPrunesInnerSolves) {
  MultiTaskTrace trace;
  TaskTrace t0(2);
  TaskTrace t1(2);
  for (int i = 0; i < 12; ++i) {
    t0.push_back({DynamicBitset::from_string("10"), i == 2 ? 5u : 1u});
    t1.push_back({DynamicBitset::from_string("01"), i == 2 ? 5u : 1u});
  }
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  const auto machine = pooled_machine();
  std::size_t invocations = 0;
  PrivateGlobalConfig config;
  config.inner = [&](const SolveInstance& block, const CancelToken& cancel) {
    ++invocations;
    CoordinateDescentConfig cd;
    cd.cancel = cancel;
    return solve_coordinate_descent(block, cd);
  };
  EXPECT_THROW(solve_private_global(trace, machine, {}, config),
               PreconditionError);
  EXPECT_EQ(invocations, 3u);
}

TEST(PrivateGlobal, ReportsInnerInvocationCount) {
  const auto trace = swapping_demand_trace(3);
  const auto result = solve_private_global(trace, pooled_machine());
  EXPECT_GT(result.inner_invocations, 0u);
}

TEST(PrivateGlobal, CandidateRestrictionIsHonoured) {
  const auto trace = swapping_demand_trace(4);
  const auto machine = pooled_machine();
  PrivateGlobalConfig config;
  config.candidates = {0, 4};  // exactly the demand-swap point
  const auto result = solve_private_global(trace, machine, {}, config);
  for (const std::size_t g : result.solution.schedule.global_boundaries) {
    EXPECT_TRUE(g == 0 || g == 4);
  }
}

}  // namespace
}  // namespace hyperrec
