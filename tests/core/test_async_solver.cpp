#include "core/async_solver.hpp"

#include <gtest/gtest.h>

#include "testutil/oracles.hpp"
#include "workload/generators.hpp"

namespace hyperrec {
namespace {

using testutil::brute_force_async;

MultiTaskTrace unequal_trace() {
  // Task 0: 5 steps; task 1: 3 steps — asynchronous tasks need not align.
  MultiTaskTrace trace;
  TaskTrace t0(4);
  t0.push_back_local(DynamicBitset::from_string("1100"));
  t0.push_back_local(DynamicBitset::from_string("1100"));
  t0.push_back_local(DynamicBitset::from_string("0011"));
  t0.push_back_local(DynamicBitset::from_string("0011"));
  t0.push_back_local(DynamicBitset::from_string("0011"));
  TaskTrace t1(4);
  t1.push_back_local(DynamicBitset::from_string("1111"));
  t1.push_back_local(DynamicBitset::from_string("1000"));
  t1.push_back_local(DynamicBitset::from_string("1000"));
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  return trace;
}

TEST(AsyncSolver, HandlesUnequalTraceLengths) {
  const auto trace = unequal_trace();
  const auto machine = MachineSpec::uniform_local(2, 4);
  const auto solution = solve_async(trace, machine);
  EXPECT_EQ(solution.schedule.tasks[0].n(), 5u);
  EXPECT_EQ(solution.schedule.tasks[1].n(), 3u);
  EXPECT_GT(solution.total(), 0);
}

TEST(AsyncSolver, MatchesBruteForce) {
  const auto trace = unequal_trace();
  const auto machine = MachineSpec::uniform_local(2, 4);
  const auto solution = solve_async(trace, machine);
  EXPECT_EQ(solution.total(), brute_force_async(trace, machine, {}));
}

TEST(AsyncSolver, MatchesBruteForceOnRandomTraces) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::MultiPhasedConfig config;
    config.tasks = 2;
    config.task_config.steps = 8;
    config.task_config.universe = 5;
    const auto trace = workload::make_multi_phased(config, seed);
    const auto machine = MachineSpec::uniform_local(2, 5);
    const auto solution = solve_async(trace, machine);
    EXPECT_EQ(solution.total(), brute_force_async(trace, machine, {}))
        << "seed " << seed;
  }
}

TEST(AsyncSolver, MatchesBruteForceWithChangeover) {
  const auto trace = unequal_trace();
  const auto machine = MachineSpec::uniform_local(2, 4);
  EvalOptions options;
  options.changeover = true;
  const auto solution = solve_async(trace, machine, options);
  EXPECT_EQ(solution.total(), brute_force_async(trace, machine, options));
}

TEST(AsyncSolver, SlowestTaskDeterminesTotal) {
  const auto trace = unequal_trace();
  const auto machine = MachineSpec::uniform_local(2, 4);
  const auto solution = solve_async(trace, machine);
  const Cost slowest = *std::max_element(solution.breakdown.per_task.begin(),
                                         solution.breakdown.per_task.end());
  EXPECT_EQ(solution.total(), slowest + solution.breakdown.global_hyper);
}

TEST(AsyncSolver, PublicResourcesRejected) {
  const auto trace = unequal_trace();
  auto machine = MachineSpec::uniform_local(2, 4);
  machine.public_context_size = 3;
  EXPECT_THROW(solve_async(trace, machine), PreconditionError);
}

TEST(AsyncSolver, GlobalInitChargedWithPrivatePool) {
  MultiTaskTrace trace;
  TaskTrace t0(2);
  t0.push_back({DynamicBitset::from_string("10"), 2});
  trace.add_task(std::move(t0));
  MachineSpec machine = MachineSpec::uniform_local(1, 2);
  machine.private_global_units = 4;
  machine.global_init = 9;
  const auto solution = solve_async(trace, machine);
  EXPECT_EQ(solution.breakdown.global_hyper, 9);
  // v + (|{s0}| + priv 2)·1 = 2 + 3 = 5, plus w = 9.
  EXPECT_EQ(solution.total(), 14);
}

}  // namespace
}  // namespace hyperrec
