#include "core/general_dp.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "testutil/oracles.hpp"

namespace hyperrec {
namespace {

GeneralCostModel sample_model() {
  // h0: {k0} init 5 cost 1;  h1: {k1} init 5 cost 2;  h2: {k0,k1} init 8
  // cost 4 (universal).
  GeneralCostModel model(3, 2);
  model.set_init(0, 5);
  model.set_cost(0, 1);
  model.set_satisfies(0, 0);
  model.set_init(1, 5);
  model.set_cost(1, 2);
  model.set_satisfies(1, 1);
  model.set_init(2, 8);
  model.set_cost(2, 4);
  model.set_satisfies(2, 0);
  model.set_satisfies(2, 1);
  return model;
}

using testutil::brute_force_general;

TEST(GeneralDp, PhasedSequenceUsesSpecialisedHypercontexts) {
  const auto model = sample_model();
  const std::vector<std::size_t> sequence{0, 0, 0, 1, 1, 1};
  const auto solution = solve_general_dp(model, sequence);
  // Split: (5 + 1·3) + (5 + 2·3) = 19 beats universal 8 + 4·6 = 32.
  EXPECT_EQ(solution.total, 19);
  ASSERT_EQ(solution.schedule.hypercontexts.size(), 2u);
  EXPECT_EQ(solution.schedule.hypercontexts[0], 0u);
  EXPECT_EQ(solution.schedule.hypercontexts[1], 1u);
}

TEST(GeneralDp, AlternatingSequencePrefersUniversal) {
  const auto model = sample_model();
  const std::vector<std::size_t> sequence{0, 1, 0, 1};
  const auto solution = solve_general_dp(model, sequence);
  // Universal single interval: 8 + 4·4 = 24; per-step specialised:
  // (5+1)+(5+2)+(5+1)+(5+2) = 26.  Universal wins.
  EXPECT_EQ(solution.total, 24);
}

TEST(GeneralDp, MatchesBruteForceOnRandomSequences) {
  Xoshiro256 rng(31);
  for (int round = 0; round < 30; ++round) {
    // Random model over 3 kinds / 5 hypercontexts with a universal one.
    GeneralCostModel model(5, 3);
    for (std::size_t h = 0; h < 5; ++h) {
      model.set_init(h, static_cast<Cost>(1 + rng.uniform(10)));
      model.set_cost(h, static_cast<Cost>(1 + rng.uniform(6)));
      for (std::size_t k = 0; k < 3; ++k) {
        if (rng.flip(0.5)) model.set_satisfies(h, k);
      }
    }
    for (std::size_t k = 0; k < 3; ++k) model.set_satisfies(4, k);

    const std::size_t n = 2 + rng.uniform(7);
    std::vector<std::size_t> sequence(n);
    for (auto& kind : sequence) kind = rng.uniform(3);

    const auto solution = solve_general_dp(model, sequence);
    EXPECT_EQ(solution.total, brute_force_general(model, sequence))
        << "round " << round;
    EXPECT_EQ(evaluate_general(model, sequence, solution.schedule),
              solution.total);
  }
}

TEST(GeneralDp, UnsatisfiableSequenceThrows) {
  GeneralCostModel model(1, 2);
  model.set_satisfies(0, 0);
  model.set_cost(0, 1);
  EXPECT_THROW(solve_general_dp(model, {1}), PreconditionError);
}

TEST(GeneralDp, OutOfRangeKindRejected) {
  const auto model = sample_model();
  EXPECT_THROW(solve_general_dp(model, {5}), PreconditionError);
}

TEST(GeneralDp, EmptySequenceRejected) {
  const auto model = sample_model();
  EXPECT_THROW(solve_general_dp(model, {}), PreconditionError);
}

}  // namespace
}  // namespace hyperrec
