#include "core/genetic.hpp"

#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "testutil/trace_builders.hpp"

namespace hyperrec {
namespace {

MultiTaskTrace phased(std::uint64_t seed, std::size_t tasks, std::size_t steps,
                      std::size_t universe) {
  return testutil::phased_multi(seed, tasks, steps, universe, /*phases=*/2);
}

GaConfig small_ga(std::uint64_t seed) {
  GaConfig config;
  config.population = 32;
  config.generations = 60;
  config.seed = seed;
  return config;
}

TEST(Genetic, FindsOptimumOnTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto trace = phased(seed, 2, 6, 4);
    const auto machine = MachineSpec::uniform_local(2, 4);
    EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                        false};
    const auto exact = solve_exhaustive(trace, machine, options);
    const auto ga = solve_genetic(trace, machine, options, small_ga(seed));
    EXPECT_EQ(ga.best.total(), exact.total()) << "seed " << seed;
  }
}

TEST(Genetic, DeterministicForSeed) {
  const auto trace = phased(7, 3, 15, 6);
  const auto machine = MachineSpec::uniform_local(3, 6);
  const auto a = solve_genetic(trace, machine, {}, small_ga(42));
  const auto b = solve_genetic(trace, machine, {}, small_ga(42));
  EXPECT_EQ(a.best.total(), b.best.total());
  EXPECT_EQ(a.history, b.history);
}

TEST(Genetic, ParallelAndSerialFitnessAgree) {
  const auto trace = phased(9, 2, 12, 5);
  const auto machine = MachineSpec::uniform_local(2, 5);
  GaConfig serial = small_ga(5);
  serial.parallel_fitness = false;
  GaConfig parallel = small_ga(5);
  parallel.parallel_fitness = true;
  const auto a = solve_genetic(trace, machine, {}, serial);
  const auto b = solve_genetic(trace, machine, {}, parallel);
  EXPECT_EQ(a.best.total(), b.best.total())
      << "randomness lives outside the parallel section";
}

TEST(Genetic, HistoryIsMonotoneNonIncreasing) {
  const auto trace = phased(11, 3, 20, 6);
  const auto machine = MachineSpec::uniform_local(3, 6);
  const auto result = solve_genetic(trace, machine, {}, small_ga(3));
  for (std::size_t g = 1; g < result.history.size(); ++g) {
    EXPECT_LE(result.history[g], result.history[g - 1]);
  }
}

TEST(Genetic, BestNeverWorseThanSeededSchedules) {
  const auto trace = phased(13, 3, 18, 6);
  const auto machine = MachineSpec::uniform_local(3, 6);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                      false};
  const auto result = solve_genetic(trace, machine, options, small_ga(4));
  const Cost single =
      evaluate_fully_sync_switch(trace, machine,
                                 MultiTaskSchedule::all_single(3, 18), options)
          .total;
  const Cost every = evaluate_fully_sync_switch(
                         trace, machine,
                         MultiTaskSchedule::all_every_step(3, 18), options)
                         .total;
  EXPECT_LE(result.best.total(), std::min(single, every))
      << "both schedules are in the initial population";
}

TEST(Genetic, PatienceStopsEarly) {
  const auto trace = phased(15, 2, 10, 5);
  const auto machine = MachineSpec::uniform_local(2, 5);
  GaConfig config = small_ga(6);
  config.generations = 500;
  config.patience = 5;
  const auto result = solve_genetic(trace, machine, {}, config);
  EXPECT_LT(result.history.size(), 500u) << "patience should trigger";
}

TEST(Genetic, EvaluationsAreCounted) {
  const auto trace = phased(17, 2, 8, 4);
  const auto machine = MachineSpec::uniform_local(2, 4);
  GaConfig config = small_ga(7);
  config.population = 16;
  config.generations = 10;
  const auto result = solve_genetic(trace, machine, {}, config);
  EXPECT_EQ(result.evaluations, 16u * 11u)
      << "initial population + one evaluation per generation";
}

TEST(Genetic, TooSmallPopulationRejected) {
  const auto trace = phased(1, 2, 6, 4);
  const auto machine = MachineSpec::uniform_local(2, 4);
  GaConfig config;
  config.population = 2;
  EXPECT_THROW(solve_genetic(trace, machine, {}, config), PreconditionError);
}

TEST(Genetic, SupportsChangeoverObjective) {
  const auto trace = phased(19, 2, 10, 5);
  const auto machine = MachineSpec::uniform_local(2, 5);
  EvalOptions options;
  options.changeover = true;
  const auto result = solve_genetic(trace, machine, options, small_ga(8));
  EXPECT_EQ(
      result.best.total(),
      evaluate_fully_sync_switch(trace, machine, result.best.schedule, options)
          .total);
}

}  // namespace
}  // namespace hyperrec
