#include "core/dag_dp.hpp"

#include <gtest/gtest.h>

#include "core/interval_dp.hpp"
#include "dag/generators.hpp"
#include "support/rng.hpp"

namespace hyperrec {
namespace {

DagCostModel chain_model() {
  // h0: {k0} cost 1;  h1: {k0,k1} cost 3;  h2: {k0,k1} cost 5.  w = 4.
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset::from_string("10"));
  sat.push_back(DynamicBitset::from_string("11"));
  sat.push_back(DynamicBitset::from_string("11"));
  return DagCostModel(std::move(dag), std::move(sat), {1, 3, 5}, 4);
}

TEST(DagDp, PhasedSequenceSplits) {
  const auto model = chain_model();
  const std::vector<std::size_t> sequence{0, 0, 0, 1, 1, 1};
  const auto solution = solve_dag_dp(model, sequence);
  // Split: (4 + 1·3) + (4 + 3·3) = 20; merged: 4 + 3·6 = 22.
  EXPECT_EQ(solution.total, 20);
  EXPECT_EQ(solution.schedule.hypercontexts[0], 0u);
  EXPECT_EQ(solution.schedule.hypercontexts[1], 1u);
}

TEST(DagDp, SolutionEvaluatesToReportedTotal) {
  const auto model = chain_model();
  const std::vector<std::size_t> sequence{0, 1, 0, 0, 1};
  const auto solution = solve_dag_dp(model, sequence);
  EXPECT_EQ(evaluate_dag_model(model, sequence, solution.schedule),
            solution.total);
}

/// Builds the subset-lattice DAG model equivalent to the switch model over
/// `bits` switches: node mask u satisfies requirement kind r (one kind per
/// observed distinct requirement) iff r's switch set ⊆ u; cost = |u| (+1 to
/// honour the DAG model's cost > 0 with an additive shift on both sides).
TEST(DagDp, SubsetLatticeReproducesSwitchDp) {
  Xoshiro256 rng(5);
  const std::size_t bits = 4;
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = 3 + rng.uniform(6);
    // Random switch-model trace.
    TaskTrace trace(bits);
    std::vector<std::uint32_t> req_masks;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t mask = 0;
      DynamicBitset req(bits);
      for (std::size_t s = 0; s < bits; ++s) {
        if (rng.flip(0.4)) {
          req.set(s);
          mask |= 1u << s;
        }
      }
      trace.push_back_local(std::move(req));
      req_masks.push_back(mask);
    }

    // DAG model over the full subset lattice with one kind per step.
    Dag lattice = make_subset_lattice(bits);
    std::vector<DynamicBitset> sat(16, DynamicBitset(n));
    std::vector<Cost> cost(16, 0);
    for (std::size_t h = 0; h < 16; ++h) {
      cost[h] = static_cast<Cost>(std::popcount(static_cast<unsigned>(h))) + 1;
      for (std::size_t i = 0; i < n; ++i) {
        if ((req_masks[i] & ~static_cast<std::uint32_t>(h)) == 0) {
          sat[h].set(i);
        }
      }
    }
    const Cost w = 7;
    DagCostModel model(std::move(lattice), std::move(sat), std::move(cost), w);
    model.validate();

    std::vector<std::size_t> sequence(n);
    for (std::size_t i = 0; i < n; ++i) sequence[i] = i;

    const auto dag_solution = solve_dag_dp(model, sequence);
    // Switch DP with the +1-per-step shift: every step pays exactly one
    // extra unit, so totals differ by exactly n.
    const auto switch_solution = solve_single_task_switch(trace, w);
    EXPECT_EQ(dag_solution.total,
              switch_solution.total + static_cast<Cost>(n))
        << "round " << round;
  }
}

TEST(MtDagAligned, TwoTasksHandComputed) {
  std::vector<DagCostModel> models;
  models.push_back(chain_model());
  models.push_back(chain_model());
  // Task 0 needs k0 throughout; task 1 switches k0 → k1 halfway.
  const std::vector<std::vector<std::size_t>> sequences{{0, 0, 0, 0},
                                                        {0, 0, 1, 1}};
  const Cost w = 2;
  // Task-parallel: split at 2: (2 + max(1,1)·2) + (2 + max(1,3)·2) = 12;
  // merged: 2 + max(1,3)·4 = 14.  Split wins.
  const auto parallel = solve_mt_dag_aligned(models, sequences, w, true);
  EXPECT_EQ(parallel.total, 12);
  ASSERT_EQ(parallel.starts.size(), 2u);
  EXPECT_EQ(parallel.starts[1], 2u);
  EXPECT_EQ(parallel.hypercontexts[1][0], 0u);
  EXPECT_EQ(parallel.hypercontexts[1][1], 1u);

  // Task-sequential: split: (2 + 2·2) + (2 + 4·2) = 16; merged: 2 + 4·4 = 18.
  const auto sequential = solve_mt_dag_aligned(models, sequences, w, false);
  EXPECT_EQ(sequential.total, 16);
}

TEST(MtDagAligned, UnequalLengthsRejected) {
  std::vector<DagCostModel> models;
  models.push_back(chain_model());
  models.push_back(chain_model());
  EXPECT_THROW(solve_mt_dag_aligned(models, {{0, 0}, {0}}, 1, true),
               PreconditionError);
}

TEST(MtDagAligned, ModelSequenceCountMismatchRejected) {
  std::vector<DagCostModel> models;
  models.push_back(chain_model());
  EXPECT_THROW(solve_mt_dag_aligned(models, {{0}, {0}}, 1, true),
               PreconditionError);
}

}  // namespace
}  // namespace hyperrec
