#include "core/implicit_general.hpp"

#include <gtest/gtest.h>

#include "core/interval_dp.hpp"
#include "support/rng.hpp"

namespace hyperrec {
namespace {

std::vector<DynamicBitset> random_sequence(std::size_t n, std::size_t universe,
                                           Xoshiro256& rng) {
  std::vector<DynamicBitset> sequence;
  for (std::size_t i = 0; i < n; ++i) {
    DynamicBitset req(universe);
    for (std::size_t s = 0; s < universe; ++s) {
      if (rng.flip(0.4)) req.set(s);
    }
    sequence.push_back(std::move(req));
  }
  return sequence;
}

TEST(ImplicitGeneral, MonotoneCostReducesToSwitchDp) {
  Xoshiro256 rng(3);
  const std::size_t universe = 5;
  const Cost w = 4;
  ImplicitGeneralModel model;
  model.universe = universe;
  model.cost = [](const DynamicBitset& h) {
    return static_cast<Cost>(h.count());
  };
  model.init = [w](const DynamicBitset&) { return w; };

  for (int round = 0; round < 10; ++round) {
    const auto sequence = random_sequence(2 + rng.uniform(7), universe, rng);
    TaskTrace trace(universe);
    for (const auto& req : sequence) trace.push_back_local(req);

    const auto implicit = solve_implicit_general(model, sequence);
    const auto switch_dp = solve_single_task_switch(trace, w);
    EXPECT_EQ(implicit.total, switch_dp.total) << "round " << round;
  }
}

TEST(ImplicitGeneral, NonMonotoneCostBeatsMinimalUnionPolicy) {
  // Cost function with a "sweet spot": sets of exactly 3 switches are very
  // cheap, everything else expensive.  The minimal union of a 1-switch
  // interval costs 10; padding it to 3 switches costs 1.
  ImplicitGeneralModel model;
  model.universe = 4;
  model.cost = [](const DynamicBitset& h) {
    return h.count() == 3 ? Cost{1} : Cost{10};
  };
  model.init = [](const DynamicBitset&) { return Cost{2}; };

  std::vector<DynamicBitset> sequence;
  sequence.push_back(DynamicBitset::from_string("1000"));
  sequence.push_back(DynamicBitset::from_string("1000"));

  const auto solution = solve_implicit_general(model, sequence);
  // One interval with a padded 3-set: 2 + 1·2 = 4.
  EXPECT_EQ(solution.total, 4);
  ASSERT_EQ(solution.hypercontexts.size(), 1u);
  EXPECT_EQ(solution.hypercontexts[0].count(), 3u);
  EXPECT_TRUE(sequence[0].subset_of(solution.hypercontexts[0]));
}

TEST(ImplicitGeneral, HypercontextsAlwaysCoverRequirements) {
  Xoshiro256 rng(11);
  ImplicitGeneralModel model;
  model.universe = 6;
  model.cost = [](const DynamicBitset& h) {
    // Arbitrary non-monotone oscillating cost.
    return static_cast<Cost>((h.count() * 7) % 5 + 1);
  };
  model.init = [](const DynamicBitset& h) {
    return static_cast<Cost>(3 + h.count() % 2);
  };
  const auto sequence = random_sequence(8, 6, rng);
  const auto solution = solve_implicit_general(model, sequence);

  std::vector<std::size_t> bounds = solution.starts;
  bounds.push_back(sequence.size());
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    for (std::size_t i = bounds[k]; i < bounds[k + 1]; ++i) {
      EXPECT_TRUE(sequence[i].subset_of(solution.hypercontexts[k]));
    }
  }
}

TEST(ImplicitGeneral, UniverseCapEnforced) {
  ImplicitGeneralModel model;
  model.universe = 21;
  model.cost = [](const DynamicBitset&) { return Cost{1}; };
  model.init = [](const DynamicBitset&) { return Cost{1}; };
  EXPECT_THROW(solve_implicit_general(model, {DynamicBitset(21)}),
               PreconditionError);
}

TEST(ImplicitGeneral, MissingFunctionsRejected) {
  ImplicitGeneralModel model;
  model.universe = 4;
  EXPECT_THROW(solve_implicit_general(model, {DynamicBitset(4)}),
               PreconditionError);
}

TEST(ImplicitGeneral, RequirementUniverseMismatchRejected) {
  ImplicitGeneralModel model;
  model.universe = 4;
  model.cost = [](const DynamicBitset&) { return Cost{1}; };
  model.init = [](const DynamicBitset&) { return Cost{1}; };
  EXPECT_THROW(solve_implicit_general(model, {DynamicBitset(5)}),
               PreconditionError);
}

}  // namespace
}  // namespace hyperrec
