#include "core/annealing.hpp"

#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "testutil/trace_builders.hpp"

namespace hyperrec {
namespace {

MultiTaskTrace phased(std::uint64_t seed, std::size_t tasks, std::size_t steps,
                      std::size_t universe) {
  return testutil::phased_multi(seed, tasks, steps, universe, /*phases=*/2);
}

TEST(Annealing, DeterministicForSeed) {
  const auto trace = phased(3, 2, 12, 5);
  const auto machine = MachineSpec::uniform_local(2, 5);
  SaConfig config;
  config.iterations = 2000;
  config.seed = 77;
  const auto a = solve_annealing(trace, machine, {}, config);
  const auto b = solve_annealing(trace, machine, {}, config);
  EXPECT_EQ(a.total(), b.total());
}

TEST(Annealing, NearOptimalOnTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto trace = phased(seed, 2, 6, 4);
    const auto machine = MachineSpec::uniform_local(2, 4);
    EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                        false};
    const auto exact = solve_exhaustive(trace, machine, options);
    SaConfig config;
    config.iterations = 5000;
    config.seed = seed;
    const auto sa = solve_annealing(trace, machine, options, config);
    EXPECT_GE(sa.total(), exact.total());
    EXPECT_LE(sa.total(), exact.total() * 11 / 10) << "seed " << seed;
  }
}

TEST(Annealing, ImprovesOnSingleIntervalStart) {
  const auto trace = phased(5, 3, 25, 8);
  const auto machine = MachineSpec::uniform_local(3, 8);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                      false};
  const Cost start = evaluate_fully_sync_switch(
                         trace, machine, MultiTaskSchedule::all_single(3, 25),
                         options)
                         .total;
  SaConfig config;
  config.iterations = 8000;
  const auto sa = solve_annealing(trace, machine, options, config);
  EXPECT_LE(sa.total(), start) << "best-so-far tracking cannot regress";
}

TEST(Annealing, RespectsSeedSchedule) {
  const auto trace = phased(6, 2, 10, 4);
  const auto machine = MachineSpec::uniform_local(2, 4);
  SaConfig config;
  config.iterations = 100;
  config.seed_schedule.push_back(MultiTaskSchedule::all_every_step(2, 10));
  const auto sa = solve_annealing(trace, machine, {}, config);
  EXPECT_NO_THROW(sa.schedule.validate(2, 10));
}

TEST(Annealing, ReportedCostMatchesReEvaluation) {
  const auto trace = phased(8, 3, 15, 6);
  const auto machine = MachineSpec::uniform_local(3, 6);
  EvalOptions options{UploadMode::kTaskSequential, UploadMode::kTaskSequential,
                      false};
  const auto sa = solve_annealing(trace, machine, options);
  EXPECT_EQ(
      sa.total(),
      evaluate_fully_sync_switch(trace, machine, sa.schedule, options).total);
}

TEST(Annealing, SupportsChangeoverObjective) {
  const auto trace = phased(9, 2, 12, 5);
  const auto machine = MachineSpec::uniform_local(2, 5);
  EvalOptions options;
  options.changeover = true;
  SaConfig config;
  config.iterations = 3000;
  const auto sa = solve_annealing(trace, machine, options, config);
  EXPECT_EQ(
      sa.total(),
      evaluate_fully_sync_switch(trace, machine, sa.schedule, options).total);
}

}  // namespace
}  // namespace hyperrec
