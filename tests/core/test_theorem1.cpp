#include "core/theorem1.hpp"

#include <gtest/gtest.h>

#include "core/coordinate_descent.hpp"
#include "core/exhaustive.hpp"
#include "core/interval_dp.hpp"
#include "testutil/trace_builders.hpp"

namespace hyperrec {
namespace {

MultiTaskTrace phased(std::uint64_t seed, std::size_t tasks, std::size_t steps,
                      std::size_t universe) {
  return testutil::phased_multi(seed, tasks, steps, universe, /*phases=*/2);
}

TEST(Theorem1Dp, MatchesExhaustiveOnTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto trace = phased(seed, 2, 7, 5);
    const auto machine = MachineSpec::uniform_local(2, 5);
    EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                        false};
    const auto exact = solve_exhaustive(trace, machine, options);
    const auto dp = solve_theorem1_dp(trace, machine, options);
    EXPECT_EQ(dp.total(), exact.total()) << "seed " << seed;
  }
}

TEST(Theorem1Dp, MatchesExhaustiveThreeTasks) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto trace = phased(seed, 3, 6, 4);
    const auto machine = MachineSpec::uniform_local(3, 4);
    EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                        false};
    const auto exact = solve_exhaustive(trace, machine, options);
    const auto dp = solve_theorem1_dp(trace, machine, options);
    EXPECT_EQ(dp.total(), exact.total()) << "seed " << seed;
  }
}

TEST(Theorem1Dp, MatchesExhaustiveAllDisciplines) {
  const auto trace = phased(42, 2, 6, 4);
  const auto machine = MachineSpec::uniform_local(2, 4);
  for (const auto hyper :
       {UploadMode::kTaskParallel, UploadMode::kTaskSequential}) {
    for (const auto reconfig :
         {UploadMode::kTaskParallel, UploadMode::kTaskSequential}) {
      EvalOptions options{hyper, reconfig, false};
      EXPECT_EQ(solve_theorem1_dp(trace, machine, options).total(),
                solve_exhaustive(trace, machine, options).total());
    }
  }
}

TEST(Theorem1Dp, ReducesToIntervalDpForOneTask) {
  const auto trace = phased(7, 1, 20, 8);
  const auto machine = MachineSpec::local_only({8});
  const auto dp = solve_theorem1_dp(trace, machine, {});
  const auto single = solve_single_task_switch(trace.task(0), 8);
  EXPECT_EQ(dp.total(), single.total);
}

TEST(Theorem1Dp, ScalesBeyondExhaustiveReach) {
  // m = 2, n = 40: exhaustive would need 2^78 schedules; the DP is exact in
  // polynomial time.  Cross-check against coordinate descent (a lower bound
  // check: CD can never beat the optimum).
  const auto trace = phased(11, 2, 40, 6);
  const auto machine = MachineSpec::uniform_local(2, 6);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                      false};
  const auto dp = solve_theorem1_dp(trace, machine, options);
  const auto descent = solve_coordinate_descent(trace, machine, options);
  EXPECT_LE(dp.total(), descent.total());
  EXPECT_NO_THROW(dp.schedule.validate(2, 40));
  EXPECT_EQ(dp.total(),
            evaluate_fully_sync_switch(trace, machine, dp.schedule, options)
                .total);
}

TEST(Theorem1Dp, StateSpaceEstimate) {
  const auto trace = phased(1, 2, 10, 4);
  const auto machine = MachineSpec::uniform_local(2, 4);
  // n · (n·(l+1))² = 10 · (10·5)² = 25000.
  EXPECT_DOUBLE_EQ(theorem1_state_space(trace, machine), 25000.0);
}

TEST(Theorem1Dp, GuardsReject) {
  const auto trace = phased(1, 2, 10, 4);
  auto machine = MachineSpec::uniform_local(2, 4);

  EvalOptions changeover;
  changeover.changeover = true;
  EXPECT_THROW(solve_theorem1_dp(trace, machine, changeover),
               PreconditionError);

  machine.private_global_units = 3;
  EXPECT_THROW(solve_theorem1_dp(trace, machine, {}), PreconditionError);
  machine.private_global_units = 0;

  const auto big = phased(1, 2, 65, 4);
  EXPECT_THROW(
      solve_theorem1_dp(big, MachineSpec::uniform_local(2, 4), {}),
      PreconditionError)
      << "n > 64 exceeds the state packing";

  const auto wide = phased(1, 4, 6, 4);
  EXPECT_THROW(
      solve_theorem1_dp(wide, MachineSpec::uniform_local(4, 4), {}),
      PreconditionError)
      << "m > 3 unsupported";
}

}  // namespace
}  // namespace hyperrec
