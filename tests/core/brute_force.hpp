// Brute-force reference implementations shared by solver tests.
//
// These enumerate entire schedule spaces and evaluate them with the library
// evaluator, providing ground truth for the DP/heuristic solvers on small
// instances.
#pragma once

#include <limits>
#include <vector>

#include "model/cost_switch.hpp"
#include "model/machine.hpp"
#include "model/schedule.hpp"
#include "model/trace.hpp"

namespace hyperrec::testing {

/// Minimum cost over all single-task partitions (2^{n-1} of them) under
/// interval cost v + (|U| + maxpriv)·len.
inline Cost brute_force_single_task(const TaskTrace& trace, Cost v) {
  const std::size_t n = trace.size();
  Cost best = std::numeric_limits<Cost>::max();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << (n - 1)); ++mask) {
    std::vector<std::size_t> starts{0};
    for (std::size_t s = 1; s < n; ++s) {
      if ((mask >> (s - 1)) & 1u) starts.push_back(s);
    }
    starts.push_back(n);
    Cost total = 0;
    for (std::size_t k = 0; k + 1 < starts.size(); ++k) {
      const std::size_t lo = starts[k];
      const std::size_t hi = starts[k + 1];
      const Cost size =
          static_cast<Cost>(trace.local_union(lo, hi).count()) +
          static_cast<Cost>(trace.max_private_demand(lo, hi));
      total += v + size * static_cast<Cost>(hi - lo);
    }
    best = std::min(best, total);
  }
  return best;
}

/// Minimum §4.2 cost over all per-task boundary combinations.
inline Cost brute_force_multi_task(const MultiTaskTrace& trace,
                                   const MachineSpec& machine,
                                   const EvalOptions& options) {
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  Cost best = std::numeric_limits<Cost>::max();
  const std::uint64_t limit = std::uint64_t{1} << (m * (n - 1));
  for (std::uint64_t code = 0; code < limit; ++code) {
    MultiTaskSchedule schedule;
    for (std::size_t j = 0; j < m; ++j) {
      DynamicBitset mask(n);
      mask.set(0);
      for (std::size_t s = 1; s < n; ++s) {
        if ((code >> (j * (n - 1) + (s - 1))) & 1u) mask.set(s);
      }
      schedule.tasks.push_back(Partition::from_boundary_mask(mask));
    }
    if (machine.has_global_resources()) {
      schedule.global_boundaries.push_back(0);
    }
    best = std::min(
        best,
        evaluate_fully_sync_switch(trace, machine, schedule, options).total);
  }
  return best;
}

/// Minimum §4.2 cost over aligned (identical across tasks) partitions only.
inline Cost brute_force_aligned(const MultiTaskTrace& trace,
                                const MachineSpec& machine,
                                const EvalOptions& options) {
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  Cost best = std::numeric_limits<Cost>::max();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << (n - 1)); ++mask) {
    DynamicBitset bits(n);
    bits.set(0);
    for (std::size_t s = 1; s < n; ++s) {
      if ((mask >> (s - 1)) & 1u) bits.set(s);
    }
    MultiTaskSchedule schedule;
    schedule.tasks.assign(m, Partition::from_boundary_mask(bits));
    if (machine.has_global_resources()) {
      schedule.global_boundaries.push_back(0);
    }
    best = std::min(
        best,
        evaluate_fully_sync_switch(trace, machine, schedule, options).total);
  }
  return best;
}

}  // namespace hyperrec::testing
