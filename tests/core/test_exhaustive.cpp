#include "core/exhaustive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/aligned_dp.hpp"
#include "testutil/oracles.hpp"
#include "workload/generators.hpp"

namespace hyperrec {
namespace {

TEST(Exhaustive, SearchSpaceFormula) {
  EXPECT_DOUBLE_EQ(exhaustive_search_space(1, 5), 16.0);
  EXPECT_DOUBLE_EQ(exhaustive_search_space(2, 5), 256.0);
  EXPECT_DOUBLE_EQ(exhaustive_search_space(3, 9), std::pow(2.0, 24));
}

TEST(Exhaustive, RejectsOversizedInstances) {
  workload::MultiPhasedConfig config;
  config.tasks = 3;
  config.task_config.steps = 12;  // 3·11 = 33 free bits > 24
  config.task_config.universe = 4;
  const auto trace = workload::make_multi_phased(config, 1);
  const auto machine = MachineSpec::uniform_local(3, 4);
  EXPECT_THROW(solve_exhaustive(trace, machine, {}), PreconditionError);
}

TEST(Exhaustive, MatchesBruteForceHelper) {
  workload::MultiPhasedConfig config;
  config.tasks = 2;
  config.task_config.steps = 6;
  config.task_config.universe = 4;
  config.task_config.phases = 2;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto trace = workload::make_multi_phased(config, seed);
    const auto machine = MachineSpec::uniform_local(2, 4);
    EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                        false};
    const auto solution = solve_exhaustive(trace, machine, options);
    EXPECT_EQ(solution.total(),
              testutil::brute_force_multi_task(trace, machine, options))
        << "seed " << seed;
  }
}

TEST(Exhaustive, NeverWorseThanAlignedDp) {
  workload::MultiPhasedConfig config;
  config.tasks = 2;
  config.task_config.steps = 8;
  config.task_config.universe = 5;
  for (std::uint64_t seed = 10; seed <= 15; ++seed) {
    const auto trace = workload::make_multi_phased(config, seed);
    const auto machine = MachineSpec::uniform_local(2, 5);
    EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                        false};
    EXPECT_LE(solve_exhaustive(trace, machine, options).total(),
              solve_aligned_dp(trace, machine, options).total())
        << "aligned schedules are a subset of the search space";
  }
}

TEST(Exhaustive, SingleTaskSingleStep) {
  const auto trace = MultiTaskTrace::from_local(
      {3}, {{DynamicBitset::from_string("101")}});
  const auto machine = MachineSpec::local_only({3});
  const auto solution = solve_exhaustive(trace, machine, {});
  EXPECT_EQ(solution.total(), 3 + 2);
  EXPECT_EQ(solution.schedule.partial_hyper_steps(), 1u);
}

TEST(Exhaustive, SupportsChangeoverObjective) {
  const auto trace = MultiTaskTrace::from_local(
      {3}, {{DynamicBitset::from_string("110"),
             DynamicBitset::from_string("110"),
             DynamicBitset::from_string("011"),
             DynamicBitset::from_string("011")}});
  const auto machine = MachineSpec::local_only({3});
  EvalOptions options;
  options.changeover = true;
  const auto solution = solve_exhaustive(trace, machine, options);
  // Exhaustive is exact for the changeover objective too; verify the result
  // re-evaluates to its reported total.
  EXPECT_EQ(
      solution.total(),
      evaluate_fully_sync_switch(trace, machine, solution.schedule, options)
          .total);
}

}  // namespace
}  // namespace hyperrec
