#include "core/lower_bound.hpp"

#include <gtest/gtest.h>

#include "core/interval_dp.hpp"
#include "core/solver.hpp"
#include "testutil/oracles.hpp"
#include "testutil/trace_builders.hpp"
#include "testutil/workload_instances.hpp"

namespace hyperrec {
namespace {

const EvalOptions kModeGrid[] = {
    {UploadMode::kTaskParallel, UploadMode::kTaskSequential, false},
    {UploadMode::kTaskSequential, UploadMode::kTaskSequential, false},
    {UploadMode::kTaskParallel, UploadMode::kTaskParallel, false},
    {UploadMode::kTaskSequential, UploadMode::kTaskParallel, false},
};

TEST(LowerBound, ExactForSingleTaskLocalOnly) {
  const auto trace = testutil::trace_from_strings(
      {"1100", "1100", "0011", "0011", "0110"});
  MultiTaskTrace multi;
  multi.add_task(trace);
  const MachineSpec machine = MachineSpec::local_only({4});
  const SolveInstance instance(multi, machine);
  const Cost optimum =
      testutil::brute_force_single_task(trace, machine.tasks[0].local_init);
  const auto cert = compute_lower_bound(instance);
  EXPECT_EQ(cert.bound, optimum)
      << "single task, sequential reconfig: the DP relaxation is exact";
}

TEST(LowerBound, NeverExceedsExhaustiveOptimumAcrossFamiliesAndModes) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const auto& wl : testutil::seeded_workload_instances(2, 6, 4, seed)) {
      for (const EvalOptions& options : kModeGrid) {
        const Cost optimum =
            testutil::brute_force_multi_task(wl.trace, wl.machine, options);
        const SolveInstance instance(wl.trace, wl.machine, options);
        const auto cert = compute_lower_bound(instance);
        EXPECT_LE(cert.bound, optimum)
            << wl.name << " seed " << seed << " hyper "
            << static_cast<int>(options.hyper_upload) << " reconfig "
            << static_cast<int>(options.reconfig_upload);
        EXPECT_LE(cert.per_step_bound, optimum) << wl.name;
        EXPECT_LE(cert.dp_relaxation_bound, optimum) << wl.name;
      }
    }
  }
}

TEST(LowerBound, SoundUnderChangeover) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Xoshiro256 rng(seed);
    const auto trace = testutil::random_multi_trace(rng, 2, 5, 4);
    const MachineSpec machine = MachineSpec::local_only({4, 4});
    EvalOptions options;
    options.changeover = true;
    const Cost optimum =
        testutil::brute_force_multi_task(trace, machine, options);
    const SolveInstance instance(trace, machine, options);
    EXPECT_LE(compute_lower_bound(instance).bound, optimum) << seed;
  }
}

TEST(LowerBound, ChunkingWeakensButStaysSound) {
  Xoshiro256 rng(99);
  const auto trace = testutil::random_multi_trace(rng, 2, 12, 5);
  const MachineSpec machine = MachineSpec::local_only({5, 5});
  const SolveInstance instance(trace, machine);
  LowerBoundConfig full;   // auto: exact DP at this size
  LowerBoundConfig tiny;
  tiny.chunk = 3;
  const Cost full_bound = compute_lower_bound(instance, full).bound;
  const Cost tiny_bound = compute_lower_bound(instance, tiny).bound;
  EXPECT_LE(tiny_bound, full_bound);
  const Cost optimum = testutil::brute_force_multi_task(trace, machine, {});
  EXPECT_LE(full_bound, optimum);
  EXPECT_GT(tiny_bound, 0);
}

TEST(LowerBound, GlobalResourcesAddExactlyOneGlobalInit) {
  const auto trace = testutil::phased_pair();
  MachineSpec with = MachineSpec::uniform_local(2, 4);
  with.private_global_units = 4;
  with.global_init = 7;
  MachineSpec without = with;
  without.global_init = 0;
  const SolveInstance instance_with(trace, with);
  const SolveInstance instance_without(trace, without);
  EXPECT_EQ(compute_lower_bound(instance_with).bound,
            compute_lower_bound(instance_without).bound + 7);
}

TEST(LowerBound, GapArithmetic) {
  EXPECT_EQ(certified_gap_pct(150, 100), std::optional<double>(50.0));
  EXPECT_EQ(certified_gap_pct(100, 100), std::optional<double>(0.0));
  EXPECT_EQ(certified_gap_pct(99, 100), std::optional<double>(0.0));
  EXPECT_EQ(certified_gap_pct(0, 0), std::optional<double>(0.0));
  EXPECT_EQ(certified_gap_pct(5, 0), std::nullopt);
  const auto third = certified_gap_pct(400, 300);
  ASSERT_TRUE(third.has_value());
  EXPECT_DOUBLE_EQ(*third, 100.0 * 100.0 / 300.0);
}

TEST(LowerBound, AttachCertificateStampsSolution) {
  const auto trace = testutil::phased_pair();
  const MachineSpec machine = MachineSpec::local_only({4, 4});
  const SolveInstance instance(trace, machine);
  MTSolution solution = make_solution(
      instance,
      MultiTaskSchedule::all_single(instance.task_count(), instance.steps()));
  EXPECT_FALSE(solution.lower_bound.has_value());
  attach_certificate(instance, solution);
  ASSERT_TRUE(solution.lower_bound.has_value());
  ASSERT_TRUE(solution.gap_pct.has_value());
  EXPECT_LE(*solution.lower_bound, solution.total());
  EXPECT_EQ(*solution.gap_pct,
            *certified_gap_pct(solution.total(), *solution.lower_bound));
}

}  // namespace
}  // namespace hyperrec
