#include "core/solver.hpp"

#include <gtest/gtest.h>

#include "workload/generators.hpp"

namespace hyperrec {
namespace {

TEST(SolverRegistry, ContainsTheStandardLineUp) {
  const auto solvers = standard_solvers();
  ASSERT_EQ(solvers.size(), 5u);
  EXPECT_EQ(solvers[0].name, "aligned-dp");
  EXPECT_EQ(solvers[3].name, "genetic");
}

TEST(SolverRegistry, AllSolversProduceValidConsistentSolutions) {
  workload::MultiPhasedConfig config;
  config.tasks = 3;
  config.task_config.steps = 24;
  config.task_config.universe = 8;
  const auto trace = workload::make_multi_phased(config, 77);
  const auto machine = MachineSpec::uniform_local(3, 8);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                      false};

  for (const auto& solver : standard_solvers()) {
    const MTSolution solution = solver.solve(trace, machine, options);
    EXPECT_NO_THROW(solution.schedule.validate(3, 24)) << solver.name;
    EXPECT_EQ(
        solution.total(),
        evaluate_fully_sync_switch(trace, machine, solution.schedule, options)
            .total)
        << solver.name;
    EXPECT_GT(solution.total(), 0) << solver.name;
  }
}

TEST(MakeSolution, ReEvaluatesSchedule) {
  const auto trace = MultiTaskTrace::from_local(
      {3}, {{DynamicBitset::from_string("111"),
             DynamicBitset::from_string("100")}});
  const auto machine = MachineSpec::local_only({3});
  const auto solution =
      make_solution(trace, machine, MultiTaskSchedule::all_single(1, 2), {});
  EXPECT_EQ(solution.total(), 3 + 3 * 2);
  EXPECT_EQ(solution.breakdown.hyper, 3);
  EXPECT_EQ(solution.breakdown.reconfig, 6);
}

}  // namespace
}  // namespace hyperrec
