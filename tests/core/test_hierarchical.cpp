#include "core/hierarchical.hpp"

#include <gtest/gtest.h>

#include "testutil/oracles.hpp"
#include "testutil/trace_builders.hpp"

namespace hyperrec {
namespace {

HierarchicalConfig serial_config(std::size_t segment) {
  HierarchicalConfig config;
  config.segment = segment;
  config.parallel = false;
  return config;
}

/// Constant trace: every step of every task asks for the same requirement,
/// so all equal-length segments are identical sub-instances.
MultiTaskTrace constant_trace(std::size_t steps) {
  MultiTaskTrace trace;
  TaskTrace t0(3);
  TaskTrace t1(3);
  for (std::size_t i = 0; i < steps; ++i) {
    t0.push_back({DynamicBitset::from_string("110"), 0});
    t1.push_back({DynamicBitset::from_string("011"), 0});
  }
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  return trace;
}

/// Private demand swaps between the tasks at `half` — one global block
/// cannot serve both peaks (pool 8 < 6 + 6).
MultiTaskTrace swapping_demand_trace(std::size_t half) {
  MultiTaskTrace trace;
  TaskTrace t0(2);
  TaskTrace t1(2);
  for (std::size_t i = 0; i < 2 * half; ++i) {
    const bool first = i < half;
    t0.push_back({DynamicBitset::from_string("10"), first ? 6u : 1u});
    t1.push_back({DynamicBitset::from_string("01"), first ? 1u : 6u});
  }
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  return trace;
}

MachineSpec pooled_machine() {
  MachineSpec machine = MachineSpec::uniform_local(2, 2);
  machine.private_global_units = 8;
  machine.global_init = 5;
  return machine;
}

TEST(Hierarchical, MultiSegmentSolveIsValidAndCertified) {
  const auto trace = testutil::phased_multi(7, 2, 24, 6);
  const MachineSpec machine = MachineSpec::local_only({6, 6});
  const SolveInstance instance(trace, machine);
  const auto result = solve_hierarchical(instance, serial_config(6));
  EXPECT_EQ(result.segments, 4u);
  EXPECT_EQ(result.solution.total(),
            evaluate_fully_sync_switch(instance, result.solution.schedule)
                .total);
  ASSERT_TRUE(result.solution.lower_bound.has_value());
  ASSERT_TRUE(result.solution.gap_pct.has_value());
  EXPECT_LE(*result.solution.lower_bound, result.solution.total());
  EXPECT_GE(*result.solution.gap_pct, 0.0);
}

TEST(Hierarchical, CostBracketsTheExhaustiveOptimum) {
  Xoshiro256 rng(11);
  const auto trace = testutil::random_multi_trace(rng, 2, 6, 4);
  const MachineSpec machine = MachineSpec::local_only({4, 4});
  const Cost optimum = testutil::brute_force_multi_task(trace, machine, {});
  const SolveInstance instance(trace, machine);
  const auto result = solve_hierarchical(instance, serial_config(2));
  EXPECT_GE(result.solution.total(), optimum);
  ASSERT_TRUE(result.solution.lower_bound.has_value());
  EXPECT_LE(*result.solution.lower_bound, optimum);
}

TEST(Hierarchical, FlatFallbackWhenOneSegmentCoversTheTrace) {
  const auto trace = testutil::phased_pair();
  const MachineSpec machine = MachineSpec::local_only({4, 4});
  const SolveInstance instance(trace, machine);
  const auto result = solve_hierarchical(instance, serial_config(100));
  EXPECT_EQ(result.segments, 1u);
  ASSERT_TRUE(result.solution.lower_bound.has_value());
}

TEST(Hierarchical, SegmentStartsAreTaskBoundariesWithoutRepair) {
  const auto trace = testutil::phased_multi(3, 2, 20, 5);
  const MachineSpec machine = MachineSpec::local_only({5, 5});
  const SolveInstance instance(trace, machine);
  HierarchicalConfig config = serial_config(5);
  config.seam_repair = false;
  const auto result = solve_hierarchical(instance, config);
  EXPECT_EQ(result.seam_merges, 0u);
  for (const auto& partition : result.solution.schedule.tasks) {
    for (const std::size_t seam : {5u, 10u, 15u}) {
      EXPECT_TRUE(partition.is_boundary(seam)) << "seam " << seam;
    }
  }
}

TEST(Hierarchical, SeamRepairNeverHurts) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Xoshiro256 rng(seed);
    const auto trace = testutil::random_multi_trace(rng, 2, 18, 5);
    const MachineSpec machine = MachineSpec::local_only({5, 5});
    const SolveInstance instance(trace, machine);
    HierarchicalConfig off = serial_config(4);
    off.seam_repair = false;
    HierarchicalConfig on = serial_config(4);
    const Cost cost_off = solve_hierarchical(instance, off).solution.total();
    const Cost cost_on = solve_hierarchical(instance, on).solution.total();
    EXPECT_LE(cost_on, cost_off) << "seed " << seed;
  }
}

TEST(Hierarchical, BoundaryDpPlacesMandatoryGlobalBoundary) {
  const auto trace = swapping_demand_trace(8);  // demand swap at step 8
  const SolveInstance instance(trace, pooled_machine());
  const auto result = solve_hierarchical(instance, serial_config(4));
  EXPECT_EQ(result.segments, 4u);
  const auto& bounds = result.solution.schedule.global_boundaries;
  ASSERT_EQ(bounds.size(), 2u) << "one block per demand phase";
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 8u);
  EXPECT_EQ(result.global_blocks, 2u);
}

TEST(Hierarchical, BoundaryDpMergesBlocksWhenPoolAllows) {
  const auto trace = swapping_demand_trace(8);
  MachineSpec machine = pooled_machine();
  machine.private_global_units = 14;  // both peaks fit one block
  machine.global_init = 1000;
  const SolveInstance instance(trace, machine);
  const auto result = solve_hierarchical(instance, serial_config(4));
  EXPECT_EQ(result.solution.schedule.global_boundaries.size(), 1u);
  EXPECT_EQ(result.global_blocks, 1u);
}

TEST(Hierarchical, InfeasibleSegmentThrowsWithAdvice) {
  MultiTaskTrace trace;
  TaskTrace t0(2);
  TaskTrace t1(2);
  for (int i = 0; i < 8; ++i) {
    t0.push_back({DynamicBitset::from_string("10"), i == 3 ? 5u : 1u});
    t1.push_back({DynamicBitset::from_string("01"), i == 3 ? 5u : 1u});
  }
  trace.add_task(std::move(t0));
  trace.add_task(std::move(t1));
  const SolveInstance instance(trace, pooled_machine());
  try {
    (void)solve_hierarchical(instance, serial_config(4));
    FAIL() << "hot step exceeds the pool; no segmentation can help";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("segment"), std::string::npos);
  }
}

TEST(Hierarchical, ChangeoverIsRejected) {
  const auto trace = testutil::phased_pair();
  const MachineSpec machine = MachineSpec::local_only({4, 4});
  EvalOptions options;
  options.changeover = true;
  const SolveInstance instance(trace, machine, options);
  EXPECT_THROW((void)solve_hierarchical(instance, serial_config(2)),
               PreconditionError);
}

TEST(Hierarchical, SharedCacheServesRepeatedSegmentShapes) {
  const auto trace = constant_trace(16);
  const MachineSpec machine = MachineSpec::local_only({3, 3});
  const SolveInstance instance(trace, machine);
  HierarchicalConfig config = serial_config(4);
  config.cache = std::make_shared<cache::SolveCache>();
  const auto first = solve_hierarchical(instance, config);
  EXPECT_EQ(first.segments, 4u);
  EXPECT_GE(first.cache_hits, 3u) << "all four windows are identical";
  const auto second = solve_hierarchical(instance, config);
  EXPECT_EQ(second.cache_hits, second.segments);
  EXPECT_EQ(second.solution.total(), first.solution.total());
}

TEST(Hierarchical, ParallelMatchesSerial) {
  const auto trace = testutil::phased_multi(21, 3, 40, 6);
  const MachineSpec machine = MachineSpec::local_only({6, 6, 6});
  const SolveInstance instance(trace, machine);
  HierarchicalConfig serial = serial_config(8);
  HierarchicalConfig parallel = serial_config(8);
  parallel.parallel = true;
  const auto a = solve_hierarchical(instance, serial);
  const auto b = solve_hierarchical(instance, parallel);
  EXPECT_EQ(a.solution.total(), b.solution.total());
  EXPECT_EQ(a.solution.schedule.global_boundaries,
            b.solution.schedule.global_boundaries);
  for (std::size_t j = 0; j < instance.task_count(); ++j) {
    EXPECT_EQ(a.solution.schedule.tasks[j].starts(),
              b.solution.schedule.tasks[j].starts());
  }
}

}  // namespace
}  // namespace hyperrec
