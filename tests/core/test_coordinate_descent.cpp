#include "core/coordinate_descent.hpp"

#include <gtest/gtest.h>

#include "core/aligned_dp.hpp"
#include "core/exhaustive.hpp"
#include "testutil/trace_builders.hpp"

namespace hyperrec {
namespace {

MultiTaskTrace phased(std::uint64_t seed, std::size_t tasks, std::size_t steps,
                      std::size_t universe) {
  return testutil::phased_multi(seed, tasks, steps, universe, /*phases=*/2);
}

TEST(CoordinateDescent, NeverWorseThanAlignedSeed) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto trace = phased(seed, 3, 20, 6);
    const auto machine = MachineSpec::uniform_local(3, 6);
    EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                        false};
    const auto aligned = solve_aligned_dp(trace, machine, options);
    const auto descent = solve_coordinate_descent(trace, machine, options);
    EXPECT_LE(descent.total(), aligned.total()) << "seed " << seed;
  }
}

TEST(CoordinateDescent, MatchesExhaustiveOnTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto trace = phased(seed, 2, 7, 4);
    const auto machine = MachineSpec::uniform_local(2, 4);
    EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                        false};
    const auto exact = solve_exhaustive(trace, machine, options);
    const auto descent = solve_coordinate_descent(trace, machine, options);
    EXPECT_GE(descent.total(), exact.total()) << "CD cannot beat the optimum";
    // Local search is not guaranteed optimal, but on these tiny phased
    // instances it should stay within a small factor.
    EXPECT_LE(descent.total(), exact.total() * 11 / 10)
        << "seed " << seed << ": CD more than 10% off the optimum";
  }
}

TEST(CoordinateDescent, RespectsSeedSchedule) {
  const auto trace = phased(3, 2, 10, 5);
  const auto machine = MachineSpec::uniform_local(2, 5);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                      false};
  CoordinateDescentConfig config;
  config.seed.push_back(MultiTaskSchedule::all_every_step(2, 10));
  const auto from_every = solve_coordinate_descent(trace, machine, options,
                                                   config);
  const Cost every_cost =
      evaluate_fully_sync_switch(trace, machine,
                                 MultiTaskSchedule::all_every_step(2, 10),
                                 options)
          .total;
  EXPECT_LE(from_every.total(), every_cost)
      << "descent must not regress from its seed";
}

TEST(CoordinateDescent, TaskParallelReconfigSupported) {
  const auto trace = phased(5, 3, 15, 6);
  const auto machine = MachineSpec::uniform_local(3, 6);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskParallel,
                      false};
  const auto aligned = solve_aligned_dp(trace, machine, options);
  const auto descent = solve_coordinate_descent(trace, machine, options);
  EXPECT_LE(descent.total(), aligned.total());
}

TEST(CoordinateDescent, ChangeoverRejected) {
  const auto trace = phased(1, 2, 6, 4);
  const auto machine = MachineSpec::uniform_local(2, 4);
  EvalOptions options;
  options.changeover = true;
  EXPECT_THROW(solve_coordinate_descent(trace, machine, options),
               PreconditionError);
}

TEST(CoordinateDescent, ReportedCostMatchesReEvaluation) {
  const auto trace = phased(6, 3, 18, 6);
  const auto machine = MachineSpec::uniform_local(3, 6);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                      false};
  const auto descent = solve_coordinate_descent(trace, machine, options);
  EXPECT_EQ(
      descent.total(),
      evaluate_fully_sync_switch(trace, machine, descent.schedule, options)
          .total);
}

TEST(CoordinateDescent, DeterministicAcrossRuns) {
  const auto trace = phased(8, 3, 16, 6);
  const auto machine = MachineSpec::uniform_local(3, 6);
  EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                      false};
  const auto a = solve_coordinate_descent(trace, machine, options);
  const auto b = solve_coordinate_descent(trace, machine, options);
  EXPECT_EQ(a.total(), b.total());
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(a.schedule.tasks[j].starts(), b.schedule.tasks[j].starts());
  }
}

}  // namespace
}  // namespace hyperrec
