#include "core/greedy.hpp"

#include <gtest/gtest.h>

#include "testutil/trace_builders.hpp"

namespace hyperrec {
namespace {

MultiTaskTrace phased(std::uint64_t seed, std::size_t tasks, std::size_t steps,
                      std::size_t universe) {
  return testutil::phased_multi(seed, tasks, steps, universe, /*phases=*/3);
}

TEST(Greedy, ProducesValidSchedules) {
  const auto trace = phased(1, 4, 30, 8);
  const auto machine = MachineSpec::uniform_local(4, 8);
  const auto solution = solve_greedy(trace, machine, {});
  EXPECT_NO_THROW(solution.schedule.validate(4, 30));
  EXPECT_EQ(
      solution.total(),
      evaluate_fully_sync_switch(trace, machine, solution.schedule, {}).total);
}

TEST(Greedy, SplitsOnSharpPhaseChange) {
  // Two crisp phases with disjoint windows: greedy must hyperreconfigure.
  const auto trace = MultiTaskTrace::from_local(
      {6}, {{DynamicBitset::from_string("111000"),
             DynamicBitset::from_string("111000"),
             DynamicBitset::from_string("111000"),
             DynamicBitset::from_string("000111"),
             DynamicBitset::from_string("000111"),
             DynamicBitset::from_string("000111")}});
  const auto machine = MachineSpec::local_only({6});
  GreedyConfig config;
  config.window = 3;
  const auto solution = solve_greedy(trace, machine, {}, config);
  EXPECT_GE(solution.schedule.tasks[0].interval_count(), 2u);
  EXPECT_TRUE(solution.schedule.tasks[0].is_boundary(3))
      << "phase boundary at step 3 must be detected";
}

TEST(Greedy, ConstantTraceStaysSingleInterval) {
  const auto trace = MultiTaskTrace::from_local(
      {4}, {{DynamicBitset::from_string("1100"),
             DynamicBitset::from_string("1100"),
             DynamicBitset::from_string("1100"),
             DynamicBitset::from_string("1100")}});
  const auto machine = MachineSpec::local_only({4});
  const auto solution = solve_greedy(trace, machine, {});
  EXPECT_EQ(solution.schedule.tasks[0].interval_count(), 1u);
}

TEST(Greedy, BeatsNeverHyperreconfiguringOnPhasedLoads) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto trace = phased(seed, 3, 40, 10);
    const auto machine = MachineSpec::uniform_local(3, 10);
    EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                        false};
    const auto greedy = solve_greedy(trace, machine, options);
    const Cost single =
        evaluate_fully_sync_switch(trace, machine,
                                   MultiTaskSchedule::all_single(3, 40),
                                   options)
            .total;
    EXPECT_LE(greedy.total(), single) << "seed " << seed;
  }
}

TEST(Greedy, WindowOneIsPurelyReactive) {
  const auto trace = phased(2, 2, 20, 6);
  const auto machine = MachineSpec::uniform_local(2, 6);
  GreedyConfig config;
  config.window = 1;
  const auto solution = solve_greedy(trace, machine, {}, config);
  EXPECT_NO_THROW(solution.schedule.validate(2, 20));
}

TEST(Greedy, ZeroWindowRejected) {
  const auto trace = phased(1, 2, 10, 4);
  const auto machine = MachineSpec::uniform_local(2, 4);
  GreedyConfig config;
  config.window = 0;
  EXPECT_THROW(solve_greedy(trace, machine, {}, config), PreconditionError);
}

}  // namespace
}  // namespace hyperrec
