#include "core/interval_dp.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "support/cost_math.hpp"
#include "support/rng.hpp"
#include "testutil/oracles.hpp"
#include "testutil/trace_builders.hpp"

namespace hyperrec {
namespace {

TaskTrace trace_from(const std::vector<std::string>& reqs) {
  return testutil::trace_from_strings(reqs);
}

TEST(SingleTaskDp, SingleStepPaysInitPlusSize) {
  const TaskTrace trace = trace_from({"1100"});
  const auto solution = solve_single_task_switch(trace, 10);
  EXPECT_EQ(solution.total, 10 + 2);
  EXPECT_EQ(solution.partition.interval_count(), 1u);
}

TEST(SingleTaskDp, PhasedSequenceSplitsAtPhaseBoundary) {
  // Phase A uses {s0,s1}, phase B uses {s2,s3}; cheap init makes the split
  // worthwhile: split = 2·(2 + 2·3) = 16 < single = 2 + 4·6 = 26.
  const TaskTrace trace =
      trace_from({"1100", "1100", "1100", "0011", "0011", "0011"});
  const auto solution = solve_single_task_switch(trace, 2);
  EXPECT_EQ(solution.total, 16);
  ASSERT_EQ(solution.partition.interval_count(), 2u);
  EXPECT_EQ(solution.partition.starts()[1], 3u);
  EXPECT_EQ(solution.hypercontexts[0].to_string(), "1100");
  EXPECT_EQ(solution.hypercontexts[1].to_string(), "0011");
}

TEST(SingleTaskDp, ExpensiveInitMergesEverything) {
  const TaskTrace trace =
      trace_from({"1100", "1100", "1100", "0011", "0011", "0011"});
  const auto solution = solve_single_task_switch(trace, 100);
  EXPECT_EQ(solution.partition.interval_count(), 1u);
  EXPECT_EQ(solution.total, 100 + 4 * 6);
}

TEST(SingleTaskDp, ZeroInitSplitsEveryStep) {
  const TaskTrace trace = trace_from({"1000", "0100", "0010"});
  const auto solution = solve_single_task_switch(trace, 0);
  EXPECT_EQ(solution.partition.interval_count(), 3u);
  EXPECT_EQ(solution.total, 3);
}

TEST(SingleTaskDp, EmptyRequirementsCostOnlyInit) {
  const TaskTrace trace = trace_from({"0000", "0000"});
  const auto solution = solve_single_task_switch(trace, 5);
  EXPECT_EQ(solution.total, 5);
  EXPECT_EQ(solution.partition.interval_count(), 1u);
}

TEST(SingleTaskDp, EmptyTraceRejected) {
  const TaskTrace trace(4);
  EXPECT_THROW(solve_single_task_switch(trace, 1), PreconditionError);
}

TEST(SingleTaskDp, PrivateDemandEntersIntervalCost) {
  TaskTrace trace(2);
  trace.push_back({DynamicBitset::from_string("10"), 4});
  trace.push_back({DynamicBitset::from_string("10"), 0});
  const auto merged = solve_single_task_switch(trace, 100);
  // One interval: 100 + (1 + 4)·2 = 110.
  EXPECT_EQ(merged.total, 110);
  const auto split = solve_single_task_switch(trace, 1);
  // Two intervals: (1 + 5·1) + (1 + 1·1) = 8.
  EXPECT_EQ(split.total, 8);
  EXPECT_EQ(split.partition.interval_count(), 2u);
}

TEST(SingleTaskDp, MatchesBruteForceOnRandomTraces) {
  Xoshiro256 rng(2024);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 2 + rng.uniform(9);  // up to 10 steps
    TaskTrace trace(6);
    for (std::size_t i = 0; i < n; ++i) {
      DynamicBitset req(6);
      for (std::size_t s = 0; s < 6; ++s) {
        if (rng.flip(0.35)) req.set(s);
      }
      trace.push_back_local(std::move(req));
    }
    const Cost v = static_cast<Cost>(rng.uniform(8));
    const auto solution = solve_single_task_switch(trace, v);
    EXPECT_EQ(solution.total, testutil::brute_force_single_task(trace, v))
        << "round " << round << " n=" << n << " v=" << v;
  }
}

TEST(SingleTaskDp, SolutionHypercontextsCoverRequirements) {
  Xoshiro256 rng(7);
  TaskTrace trace(8);
  for (int i = 0; i < 20; ++i) {
    DynamicBitset req(8);
    for (std::size_t s = 0; s < 8; ++s) {
      if (rng.flip(0.3)) req.set(s);
    }
    trace.push_back_local(std::move(req));
  }
  const auto solution = solve_single_task_switch(trace, 6);
  for (std::size_t k = 0; k < solution.partition.interval_count(); ++k) {
    const auto [lo, hi] = solution.partition.interval_bounds(k);
    for (std::size_t i = lo; i < hi; ++i) {
      EXPECT_TRUE(trace.at(i).local.subset_of(solution.hypercontexts[k]));
    }
  }
}

// --- changeover variant ----------------------------------------------------

TEST(SingleTaskChangeoverDp, FirstHypercontextDiffsAgainstEmpty) {
  const TaskTrace trace = trace_from({"1100"});
  const auto solution = solve_single_task_switch_changeover(trace, 3);
  // v + |{s0,s1} Δ ∅| + |h|·1 = 3 + 2 + 2 = 7.
  EXPECT_EQ(solution.total, 7);
}

TEST(SingleTaskChangeoverDp, OverlapMakesChangeoverCheap) {
  // Phases {s0,s1} → {s1,s2}: changeover 2 instead of 4.
  const TaskTrace trace = trace_from({"110", "110", "011", "011"});
  const auto solution = solve_single_task_switch_changeover(trace, 1);
  // Split: (1+2+2·2) + (1+2+2·2) = 14; merged: 1+3+3·4 = 16.
  EXPECT_EQ(solution.total, 14);
  EXPECT_EQ(solution.partition.interval_count(), 2u);
}

TEST(SingleTaskChangeoverDp, MatchesBruteForceOnRandomTraces) {
  Xoshiro256 rng(99);
  for (int round = 0; round < 30; ++round) {
    const std::size_t n = 2 + rng.uniform(8);
    TaskTrace trace(5);
    for (std::size_t i = 0; i < n; ++i) {
      DynamicBitset req(5);
      for (std::size_t s = 0; s < 5; ++s) {
        if (rng.flip(0.4)) req.set(s);
      }
      trace.push_back_local(std::move(req));
    }
    const Cost v = static_cast<Cost>(rng.uniform(5));
    const auto solution = solve_single_task_switch_changeover(trace, v);
    EXPECT_EQ(solution.total, testutil::brute_force_changeover(trace, v))
        << "round " << round;
  }
}

TEST(SingleTaskChangeoverDp, ChangeoverNeverCheaperThanPlainMinusDiffs) {
  // The changeover objective dominates the plain objective, so its optimum
  // is at least the plain optimum with the same v.
  Xoshiro256 rng(4);
  TaskTrace trace(6);
  for (int i = 0; i < 12; ++i) {
    DynamicBitset req(6);
    for (std::size_t s = 0; s < 6; ++s) {
      if (rng.flip(0.3)) req.set(s);
    }
    trace.push_back_local(std::move(req));
  }
  const auto plain = solve_single_task_switch(trace, 4);
  const auto change = solve_single_task_switch_changeover(trace, 4);
  EXPECT_GE(change.total, plain.total);
}

// --- overflow regressions: near-max costs must saturate, never wrap -------

TEST(SingleTaskDp, AdversarialInitCostSaturatesInsteadOfWrapping) {
  // best[start] + hyper_init + per_step·len with hyper_init near the Cost
  // maximum used to wrap negative (signed overflow, UB) and make the DP
  // "prefer" the corrupted candidate.  With saturating cost arithmetic the
  // total clamps at the kCostInfinity sentinel and stays a valid partition.
  const TaskTrace trace = trace_from({"1100", "1100", "0011", "0011"});
  for (const Cost huge :
       {kCostInfinity - 1, kCostInfinity, kCostInfinity + 7,
        std::numeric_limits<Cost>::max() / 2,
        std::numeric_limits<Cost>::max() - 1,
        std::numeric_limits<Cost>::max()}) {
    const auto solution = solve_single_task_switch(trace, huge);
    EXPECT_GT(solution.total, 0) << "wrapped negative for v = " << huge;
    EXPECT_LE(solution.total, kCostInfinity) << "v = " << huge;
    EXPECT_GE(solution.partition.interval_count(), 1u);
    EXPECT_LE(solution.partition.interval_count(), trace.size());
    // A huge init cost must never buy extra hyperreconfigurations.
    EXPECT_EQ(solution.partition.interval_count(), 1u) << "v = " << huge;
  }
}

TEST(SingleTaskDp, CostsJustBelowSaturationStayExact) {
  // A single interval of 4 steps with |union| = 4: total = v + 16 — check
  // exactness right up to the clamp edge.
  const TaskTrace trace = trace_from({"1100", "1100", "0011", "0011"});
  const Cost v = kCostInfinity - 100;
  const auto solution = solve_single_task_switch(trace, v);
  EXPECT_EQ(solution.total, v + 16) << "still exact just below the sentinel";
  EXPECT_EQ(solution.partition.interval_count(), 1u);
  const Cost exact_v = 1000;
  EXPECT_EQ(solve_single_task_switch(trace, exact_v).total, exact_v + 16);
}

TEST(SingleTaskChangeoverDp, AdversarialInitCostSaturatesInsteadOfWrapping) {
  const TaskTrace trace = trace_from({"1100", "0011", "1100"});
  for (const Cost huge :
       {kCostInfinity, std::numeric_limits<Cost>::max() / 2,
        std::numeric_limits<Cost>::max()}) {
    const auto solution = solve_single_task_switch_changeover(trace, huge);
    EXPECT_GT(solution.total, 0) << "wrapped negative for v = " << huge;
    EXPECT_LE(solution.total, kCostInfinity) << "v = " << huge;
    EXPECT_EQ(solution.partition.interval_count(), 1u) << "v = " << huge;
  }
}

}  // namespace
}  // namespace hyperrec
