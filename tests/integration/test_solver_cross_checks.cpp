// Cross-model consistency checks between independent implementations.
#include <gtest/gtest.h>

#include "core/aligned_dp.hpp"
#include "core/coordinate_descent.hpp"
#include "core/exhaustive.hpp"
#include "core/general_dp.hpp"
#include "core/interval_dp.hpp"
#include "model/cost_switch.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace hyperrec {
namespace {

TEST(CrossCheck, SingleTaskDpEqualsExhaustiveSolver) {
  Xoshiro256 rng(1);
  for (int round = 0; round < 10; ++round) {
    workload::PhasedConfig config;
    config.steps = 9;
    config.universe = 5;
    config.phases = 2;
    Xoshiro256 gen = rng.split(round);
    MultiTaskTrace trace;
    trace.add_task(workload::make_phased(config, gen));
    const auto machine = MachineSpec::local_only({5});

    const auto dp = solve_single_task_switch(trace.task(0), 5);
    const auto exhaustive = solve_exhaustive(trace, machine, {});
    EXPECT_EQ(dp.total, exhaustive.total()) << "round " << round;
  }
}

TEST(CrossCheck, GeneralDpReproducesSwitchDpOnEncodedModel) {
  // Encode a switch-model instance as an explicit general model: one
  // hypercontext per distinct interval union is overkill, so use all 2^5
  // subsets; init = v, cost = |subset|; satisfies = superset.
  Xoshiro256 rng(17);
  const std::size_t universe = 5;
  const Cost v = 4;
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 3 + rng.uniform(6);
    TaskTrace trace(universe);
    std::vector<std::uint32_t> masks;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t mask = 0;
      DynamicBitset req(universe);
      for (std::size_t s = 0; s < universe; ++s) {
        if (rng.flip(0.4)) {
          req.set(s);
          mask |= 1u << s;
        }
      }
      trace.push_back_local(std::move(req));
      masks.push_back(mask);
    }

    GeneralCostModel model(32, n);
    for (std::size_t h = 0; h < 32; ++h) {
      model.set_init(h, v);
      model.set_cost(
          h, static_cast<Cost>(std::popcount(static_cast<unsigned>(h))));
      for (std::size_t i = 0; i < n; ++i) {
        if ((masks[i] & ~static_cast<std::uint32_t>(h)) == 0) {
          model.set_satisfies(h, i);
        }
      }
    }
    std::vector<std::size_t> sequence(n);
    for (std::size_t i = 0; i < n; ++i) sequence[i] = i;

    EXPECT_EQ(solve_general_dp(model, sequence).total,
              solve_single_task_switch(trace, v).total)
        << "round " << round;
  }
}

TEST(CrossCheck, AlignedDpIsUpperBoundForCoordinateDescent) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    workload::MultiPhasedConfig config;
    config.tasks = 4;
    config.task_config.steps = 30;
    config.task_config.universe = 10;
    const auto trace = workload::make_multi_phased(config, seed);
    const auto machine = MachineSpec::uniform_local(4, 10);
    EvalOptions options{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                        false};
    EXPECT_LE(solve_coordinate_descent(trace, machine, options).total(),
              solve_aligned_dp(trace, machine, options).total())
        << "seed " << seed;
  }
}

TEST(CrossCheck, UploadDisciplinesOrderCosts) {
  // For any fixed schedule: max-combining (parallel) ≤ sum-combining
  // (sequential) in both positions.
  workload::MultiPhasedConfig config;
  config.tasks = 3;
  config.task_config.steps = 20;
  config.task_config.universe = 8;
  const auto trace = workload::make_multi_phased(config, 5);
  const auto machine = MachineSpec::uniform_local(3, 8);
  const auto schedule = solve_aligned_dp(trace, machine, {}).schedule;

  const Cost pp = evaluate_fully_sync_switch(
                      trace, machine, schedule,
                      {UploadMode::kTaskParallel, UploadMode::kTaskParallel,
                       false})
                      .total;
  const Cost ps = evaluate_fully_sync_switch(
                      trace, machine, schedule,
                      {UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                       false})
                      .total;
  const Cost ss = evaluate_fully_sync_switch(
                      trace, machine, schedule,
                      {UploadMode::kTaskSequential,
                       UploadMode::kTaskSequential, false})
                      .total;
  EXPECT_LE(pp, ps);
  EXPECT_LE(ps, ss);
}

TEST(CrossCheck, AsyncNeverExceedsFullySyncSequential) {
  // Asynchronous execution overlaps the tasks' reconfiguration work, so the
  // machine-level max-of-sums is at most the fully synchronised sum-of-sums
  // for the same schedule (with sequential hyper upload matching §4.1's
  // per-task v_j accounting).
  workload::MultiPhasedConfig config;
  config.tasks = 3;
  config.task_config.steps = 15;
  config.task_config.universe = 6;
  const auto trace = workload::make_multi_phased(config, 9);
  const auto machine = MachineSpec::uniform_local(3, 6);
  const auto schedule = solve_aligned_dp(trace, machine, {}).schedule;

  const Cost async = evaluate_async_switch(trace, machine, schedule, {}).total;
  const Cost sync =
      evaluate_fully_sync_switch(trace, machine, schedule,
                                 {UploadMode::kTaskSequential,
                                  UploadMode::kTaskSequential, false})
          .total;
  EXPECT_LE(async, sync);
}

}  // namespace
}  // namespace hyperrec
