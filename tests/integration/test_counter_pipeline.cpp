// End-to-end reproduction pipeline: simulate the counter on SHyRA, trace the
// requirements, optimise under the MT-Switch model, and check the paper's
// qualitative results (§6).
#include <gtest/gtest.h>

#include "core/coordinate_descent.hpp"
#include "core/genetic.hpp"
#include "core/greedy.hpp"
#include "core/interval_dp.hpp"
#include "model/cost_switch.hpp"
#include "shyra/counter_app.hpp"
#include "shyra/tracer.hpp"

namespace hyperrec {
namespace {

using shyra::CounterApp;

struct Pipeline {
  MultiTaskTrace single;
  MultiTaskTrace multi;
  MachineSpec m1 = shyra::single_task_machine();
  MachineSpec m4 = shyra::multi_task_machine();
  Cost baseline = 0;

  Pipeline() {
    const auto run = CounterApp(10).run();
    single = shyra::to_single_task_trace(run.trace);
    multi = shyra::to_multi_task_trace(run.trace);
    baseline = no_hyperreconfiguration_cost(m1, run.trace.size());
  }
};

// §6 evaluation setting: fully synchronised, partial hyperreconfigurations
// task-parallel, reconfigurations task-sequential.
EvalOptions paper_options() {
  return EvalOptions{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                     false};
}

TEST(CounterPipeline, BaselineMatchesPaperExactly) {
  const Pipeline pipeline;
  EXPECT_EQ(pipeline.baseline, 5280);
}

TEST(CounterPipeline, SingleTaskOptimumBeatsBaseline) {
  const Pipeline pipeline;
  const auto solution =
      solve_single_task_switch(pipeline.single.task(0), 48);
  EXPECT_LT(solution.total, pipeline.baseline);
  EXPECT_GT(solution.partition.interval_count(), 1u)
      << "hyperreconfiguration must be exercised";
  // Paper: 71.2%.  Our re-derived schedule lands in the same regime; assert
  // a generous envelope to stay robust against schedule tweaks.
  const double ratio = static_cast<double>(solution.total) /
                       static_cast<double>(pipeline.baseline);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 0.95);
}

TEST(CounterPipeline, MultiTaskBeatsSingleTask) {
  const Pipeline pipeline;
  const auto single = solve_single_task_switch(pipeline.single.task(0), 48);
  const auto multi =
      solve_coordinate_descent(pipeline.multi, pipeline.m4, paper_options());
  EXPECT_LT(multi.total(), single.total)
      << "partial hyperreconfiguration must improve on the single-task case "
         "(paper: 2813 < 3761)";
}

TEST(CounterPipeline, GaAndCoordinateDescentAgreeClosely) {
  const Pipeline pipeline;
  const auto descent =
      solve_coordinate_descent(pipeline.multi, pipeline.m4, paper_options());
  GaConfig config;
  config.generations = 250;
  config.population = 96;
  config.seed = 1;
  const auto ga =
      solve_genetic(pipeline.multi, pipeline.m4, paper_options(), config);
  EXPECT_LE(std::abs(ga.best.total() - descent.total()),
            descent.total() / 20)
      << "two independent optimisers should land within 5%";
}

TEST(CounterPipeline, SingleTaskDpAgreesWithEvaluator) {
  const Pipeline pipeline;
  const auto solution = solve_single_task_switch(pipeline.single.task(0), 48);
  MultiTaskSchedule schedule;
  schedule.tasks.push_back(solution.partition);
  const auto breakdown = evaluate_fully_sync_switch(
      pipeline.single, pipeline.m1, schedule, paper_options());
  EXPECT_EQ(breakdown.total, solution.total)
      << "interval DP and §4.2 evaluator must agree for m = 1";
}

TEST(CounterPipeline, MultiTaskUsesCheaperPartialSteps) {
  const Pipeline pipeline;
  const auto multi =
      solve_coordinate_descent(pipeline.multi, pipeline.m4, paper_options());
  // In the multi-task case a partial hyperreconfiguration costs at most
  // max_j v_j = 24 < 48, so the per-step hyper charges must all be ≤ 24.
  for (const auto& step : multi.breakdown.per_step) {
    EXPECT_LE(step.hyper, 24);
  }
}

TEST(CounterPipeline, GreedyIsWeakerButValid) {
  const Pipeline pipeline;
  const auto greedy =
      solve_greedy(pipeline.multi, pipeline.m4, paper_options());
  const auto descent =
      solve_coordinate_descent(pipeline.multi, pipeline.m4, paper_options());
  EXPECT_GE(greedy.total(), descent.total());
  EXPECT_LT(greedy.total(), pipeline.baseline);
}

TEST(CounterPipeline, DifferentBoundsScaleTraceAndCosts) {
  for (const std::uint8_t bound : {std::uint8_t{3}, std::uint8_t{7},
                                   std::uint8_t{12}}) {
    const auto run = CounterApp(bound).run();
    const auto single = shyra::to_single_task_trace(run.trace);
    const Cost baseline =
        no_hyperreconfiguration_cost(shyra::single_task_machine(),
                                     run.trace.size());
    const auto solution = solve_single_task_switch(single.task(0), 48);
    EXPECT_LT(solution.total, baseline) << "bound " << int(bound);
  }
}

}  // namespace
}  // namespace hyperrec
