// Contract tests for support/ensure.hpp: HYPERREC_ENSURE /
// HYPERREC_ASSERT throw the documented exception types with diagnosable
// messages, and violations abort the process when uncaught (death test).
#include "support/ensure.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hyperrec {
namespace {

int ensure_positive(int value) {
  HYPERREC_ENSURE(value > 0, "value must be positive");
  return value;
}

int assert_even(int value) {
  HYPERREC_ASSERT(value % 2 == 0);
  return value;
}

TEST(Ensure, PassingCheckReturnsValue) {
  EXPECT_EQ(ensure_positive(3), 3);
  EXPECT_EQ(assert_even(4), 4);
}

TEST(Ensure, ViolationThrowsPreconditionError) {
  EXPECT_THROW(ensure_positive(0), PreconditionError);
  EXPECT_THROW(ensure_positive(-5), PreconditionError);
}

TEST(Ensure, AssertViolationThrowsInvariantError) {
  EXPECT_THROW(assert_even(3), InvariantError);
}

TEST(Ensure, PreconditionErrorIsALogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(ensure_positive(0), std::logic_error);
}

TEST(Ensure, MessageCarriesExpressionFileAndText) {
  try {
    ensure_positive(0);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value > 0"), std::string::npos) << what;
    EXPECT_NE(what.find("test_ensure.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("value must be positive"), std::string::npos) << what;
  }
}

TEST(Ensure, InvariantMessageCarriesExpression) {
  try {
    assert_even(7);
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("value % 2 == 0"),
              std::string::npos);
  }
}

// A noexcept boundary turns the escaping PreconditionError into
// std::terminate, as it would at any noexcept API edge or thread entry.
void violate_precondition_noexcept() noexcept { ensure_positive(-1); }

TEST(EnsureDeathTest, UncaughtViolationTerminatesProcess) {
  // A violation crossing a noexcept boundary must take the process down —
  // solver pipelines rely on failing loudly, not on silent corruption.
  // (GCC's noexcept terminate path does not echo the what() text, so only
  // the terminate diagnostic is matched; message contents are covered by
  // MessageCarriesExpressionFileAndText above.  "terminat" covers both
  // libstdc++'s "terminate called" and libc++abi's "terminating".)
  EXPECT_DEATH(violate_precondition_noexcept(), "terminat");
}

}  // namespace
}  // namespace hyperrec
