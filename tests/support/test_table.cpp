#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/ensure.hpp"

namespace hyperrec {
namespace {

TEST(Table, PrintsHeadersAndAlignedRows) {
  Table table("Demo");
  table.headers({"name", "value"});
  table.row("alpha", 1);
  table.row("b", 22);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Demo"), std::string::npos);
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table;
  table.headers({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
}

TEST(Table, HeadersAfterRowsThrow) {
  Table table;
  table.headers({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.headers({"x"}), PreconditionError);
}

TEST(Table, CsvOutputIsCommaSeparated) {
  Table table;
  table.headers({"x", "y"});
  table.row(1, 2);
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "x,y\n1,2\n");
}

TEST(Table, FormatsDoublesWithThreeDecimals) {
  EXPECT_EQ(Table::format_cell(1.5), "1.500");
  EXPECT_EQ(Table::format_cell(-0.25), "-0.250");
}

TEST(Table, FormatsIntegers) {
  EXPECT_EQ(Table::format_cell(static_cast<std::int64_t>(-42)), "-42");
  EXPECT_EQ(Table::format_cell(static_cast<std::uint64_t>(7)), "7");
  EXPECT_EQ(Table::format_cell(13), "13");
}

TEST(Table, RowCountTracksRows) {
  Table table;
  table.headers({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.row(1);
  table.row(2);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(PercentOf, MatchesPaperStyle) {
  EXPECT_EQ(percent_of(2813, 5280), "53.3%");
  EXPECT_EQ(percent_of(3761, 5280), "71.2%");
  EXPECT_EQ(percent_of(5280, 5280), "100.0%");
}

TEST(PercentOf, ZeroBaseThrows) {
  EXPECT_THROW(percent_of(1, 0), PreconditionError);
}

}  // namespace
}  // namespace hyperrec
