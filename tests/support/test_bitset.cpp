#include "support/bitset.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace hyperrec {
namespace {

TEST(DynamicBitset, DefaultConstructedIsEmpty) {
  DynamicBitset bits;
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
}

TEST(DynamicBitset, SizedConstructionStartsClear) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.count(), 0u);
  for (std::size_t i = 0; i < 130; i += 17) EXPECT_FALSE(bits.test(i));
}

TEST(DynamicBitset, SetAndTestAcrossWordBoundaries) {
  DynamicBitset bits(130);
  for (const std::size_t pos : {0u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    bits.set(pos);
    EXPECT_TRUE(bits.test(pos)) << pos;
  }
  EXPECT_EQ(bits.count(), 7u);
}

TEST(DynamicBitset, ResetClearsSingleBit) {
  DynamicBitset bits(70);
  bits.set(69).set(1);
  bits.reset(69);
  EXPECT_FALSE(bits.test(69));
  EXPECT_TRUE(bits.test(1));
}

TEST(DynamicBitset, OutOfRangeAccessThrows) {
  DynamicBitset bits(10);
  EXPECT_THROW((void)bits.test(10), PreconditionError);
  EXPECT_THROW(bits.set(10), PreconditionError);
  EXPECT_THROW(bits.reset(11), PreconditionError);
}

TEST(DynamicBitset, SetRangeSetsHalfOpenInterval) {
  DynamicBitset bits(100);
  bits.set_range(60, 70);
  EXPECT_EQ(bits.count(), 10u);
  EXPECT_FALSE(bits.test(59));
  EXPECT_TRUE(bits.test(60));
  EXPECT_TRUE(bits.test(69));
  EXPECT_FALSE(bits.test(70));
}

TEST(DynamicBitset, SetRangeEmptyIsNoop) {
  DynamicBitset bits(10);
  bits.set_range(5, 5);
  EXPECT_EQ(bits.count(), 0u);
}

TEST(DynamicBitset, SetRangeOutOfBoundsThrows) {
  DynamicBitset bits(10);
  EXPECT_THROW(bits.set_range(5, 11), PreconditionError);
  EXPECT_THROW(bits.set_range(7, 3), PreconditionError);
}

TEST(DynamicBitset, SetRangeEmptyAtEveryWordEdge) {
  DynamicBitset bits(200);
  for (const std::size_t pos : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    bits.set_range(pos, pos);
  }
  EXPECT_TRUE(bits.none());
}

TEST(DynamicBitset, SetRangeWithinOneWord) {
  DynamicBitset bits(64);
  bits.set_range(3, 9);
  EXPECT_EQ(bits.count(), 6u);
  EXPECT_FALSE(bits.test(2));
  EXPECT_TRUE(bits.test(3));
  EXPECT_TRUE(bits.test(8));
  EXPECT_FALSE(bits.test(9));
}

TEST(DynamicBitset, SetRangeCrossingManyWords) {
  DynamicBitset bits(300);
  bits.set_range(10, 290);
  EXPECT_EQ(bits.count(), 280u);
  EXPECT_FALSE(bits.test(9));
  EXPECT_TRUE(bits.test(10));
  EXPECT_TRUE(bits.test(289));
  EXPECT_FALSE(bits.test(290));
}

TEST(DynamicBitset, SetRangeExactWordEdges) {
  // Ranges whose endpoints land exactly on the 63/64/65 word seams — the
  // cases a word-masked fill gets wrong when the tail mask is off by one.
  struct Case {
    std::size_t first, last;
  };
  for (const Case c : {Case{0, 63}, Case{0, 64}, Case{0, 65}, Case{63, 64},
                       Case{63, 65}, Case{64, 65}, Case{63, 128},
                       Case{64, 128}, Case{65, 129}}) {
    DynamicBitset bits(129);
    bits.set_range(c.first, c.last);
    EXPECT_EQ(bits.count(), c.last - c.first) << c.first << ".." << c.last;
    for (std::size_t pos = 0; pos < bits.size(); ++pos) {
      EXPECT_EQ(bits.test(pos), pos >= c.first && pos < c.last)
          << "range [" << c.first << "," << c.last << ") at bit " << pos;
    }
  }
}

TEST(DynamicBitset, SetRangeFullUniverseAndTailStaysClear) {
  DynamicBitset bits(70);
  bits.set_range(0, 70);
  EXPECT_EQ(bits.count(), 70u);
  // The tail bits past size() must stay zero (words() exposes them).
  EXPECT_EQ(bits.words().back() >> (70 % 64), 0u);
}

TEST(DynamicBitset, SetRangeMatchesPerBitReference) {
  Xoshiro256 rng(0x5E7A);
  for (int round = 0; round < 50; ++round) {
    const std::size_t size = 1 + rng.uniform(180);
    std::size_t lo = rng.uniform(size + 1);
    std::size_t hi = rng.uniform(size + 1);
    if (lo > hi) std::swap(lo, hi);
    DynamicBitset fast(size);
    fast.set_range(lo, hi);
    DynamicBitset slow(size);
    for (std::size_t pos = lo; pos < hi; ++pos) slow.set(pos);
    EXPECT_EQ(fast, slow) << size << " [" << lo << "," << hi << ")";
  }
}

TEST(DynamicBitset, ResetAllClearsEverything) {
  DynamicBitset bits(90);
  bits.set_range(0, 90);
  bits.reset_all();
  EXPECT_TRUE(bits.none());
}

TEST(DynamicBitset, UnionOperator) {
  auto a = DynamicBitset::from_string("1100");
  auto b = DynamicBitset::from_string("1010");
  EXPECT_EQ((a | b).to_string(), "1110");
}

TEST(DynamicBitset, IntersectionOperator) {
  auto a = DynamicBitset::from_string("1100");
  auto b = DynamicBitset::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
}

TEST(DynamicBitset, SymmetricDifferenceOperator) {
  auto a = DynamicBitset::from_string("1100");
  auto b = DynamicBitset::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
}

TEST(DynamicBitset, DifferenceOperator) {
  auto a = DynamicBitset::from_string("1110");
  auto b = DynamicBitset::from_string("0100");
  EXPECT_EQ((a - b).to_string(), "1010");
}

TEST(DynamicBitset, MixedSizeOperandsThrow) {
  DynamicBitset a(10);
  DynamicBitset b(11);
  EXPECT_THROW(a |= b, PreconditionError);
  EXPECT_THROW(a &= b, PreconditionError);
  EXPECT_THROW((void)a.subset_of(b), PreconditionError);
  EXPECT_THROW((void)a.union_count(b), PreconditionError);
}

TEST(DynamicBitset, SubsetOfReflexiveAndStrict) {
  auto a = DynamicBitset::from_string("0110");
  auto b = DynamicBitset::from_string("0111");
  EXPECT_TRUE(a.subset_of(a));
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
}

TEST(DynamicBitset, EmptySetIsSubsetOfEverything) {
  DynamicBitset empty(8);
  auto b = DynamicBitset::from_string("10101010");
  EXPECT_TRUE(empty.subset_of(b));
  EXPECT_TRUE(empty.subset_of(empty));
}

TEST(DynamicBitset, IntersectsDetectsSharedBit) {
  auto a = DynamicBitset::from_string("1000");
  auto b = DynamicBitset::from_string("1100");
  auto c = DynamicBitset::from_string("0011");
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
}

TEST(DynamicBitset, UnionCountWithoutMaterialising) {
  auto a = DynamicBitset::from_string("110000");
  auto b = DynamicBitset::from_string("011000");
  EXPECT_EQ(a.union_count(b), 3u);
  EXPECT_EQ(a.to_string(), "110000") << "operand must stay unchanged";
}

TEST(DynamicBitset, SymmetricDifferenceCount) {
  auto a = DynamicBitset::from_string("1100");
  auto b = DynamicBitset::from_string("0110");
  EXPECT_EQ(a.symmetric_difference_count(b), 2u);
  EXPECT_EQ(a.symmetric_difference_count(a), 0u);
}

TEST(DynamicBitset, MergeCountingReturnsNewBits) {
  auto a = DynamicBitset::from_string("1100");
  auto b = DynamicBitset::from_string("0110");
  EXPECT_EQ(a.merge_counting(b), 1u);
  EXPECT_EQ(a.to_string(), "1110");
  EXPECT_EQ(a.merge_counting(b), 0u) << "merging again adds nothing";
}

TEST(DynamicBitset, ForEachSetVisitsAscending) {
  DynamicBitset bits(200);
  bits.set(3).set(64).set(199);
  std::vector<std::size_t> seen;
  bits.for_each_set([&seen](std::size_t pos) { seen.push_back(pos); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 64, 199}));
}

TEST(DynamicBitset, FindFirstOnEmptyReturnsSize) {
  DynamicBitset bits(77);
  EXPECT_EQ(bits.find_first(), 77u);
  bits.set(70);
  EXPECT_EQ(bits.find_first(), 70u);
}

TEST(DynamicBitset, StringRoundTrip) {
  const std::string pattern = "0110010111010001";
  EXPECT_EQ(DynamicBitset::from_string(pattern).to_string(), pattern);
}

TEST(DynamicBitset, FromStringRejectsGarbage) {
  EXPECT_THROW(DynamicBitset::from_string("01x1"), PreconditionError);
}

TEST(DynamicBitset, FromStringRejectsInvalidCharactersAnywhere) {
  // Leading, trailing, and middle positions; near-miss characters ('2',
  // space, sign) must all be rejected, not coerced.
  EXPECT_THROW(DynamicBitset::from_string("x011"), PreconditionError);
  EXPECT_THROW(DynamicBitset::from_string("011x"), PreconditionError);
  EXPECT_THROW(DynamicBitset::from_string("0121"), PreconditionError);
  EXPECT_THROW(DynamicBitset::from_string("01 1"), PreconditionError);
  EXPECT_THROW(DynamicBitset::from_string("-011"), PreconditionError);
  EXPECT_THROW(DynamicBitset::from_string("01\n1"), PreconditionError);
}

TEST(DynamicBitset, FromStringEmptyStringYieldsEmptyUniverse) {
  const auto bits = DynamicBitset::from_string("");
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_EQ(bits.to_string(), "");
}

TEST(DynamicBitset, FromStringSpansWordBoundary) {
  // 65 characters forces a second 64-bit word; bit 64 must land in it.
  std::string pattern(65, '0');
  pattern.front() = '1';
  pattern.back() = '1';
  const auto bits = DynamicBitset::from_string(pattern);
  EXPECT_EQ(bits.size(), 65u);
  EXPECT_EQ(bits.count(), 2u);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_EQ(bits.to_string(), pattern);
}

TEST(DynamicBitset, EqualityComparesSizeAndBits) {
  auto a = DynamicBitset::from_string("101");
  auto b = DynamicBitset::from_string("101");
  auto c = DynamicBitset::from_string("1010");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(DynamicBitset, HashDistinguishesTypicalSets) {
  auto a = DynamicBitset::from_string("1010");
  auto b = DynamicBitset::from_string("0101");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), DynamicBitset::from_string("1010").hash());
}

TEST(DynamicBitset, RandomizedUnionCountAgreesWithMaterialisedUnion) {
  Xoshiro256 rng(42);
  for (int round = 0; round < 50; ++round) {
    DynamicBitset a(150);
    DynamicBitset b(150);
    for (std::size_t i = 0; i < 150; ++i) {
      if (rng.flip(0.3)) a.set(i);
      if (rng.flip(0.3)) b.set(i);
    }
    EXPECT_EQ(a.union_count(b), (a | b).count());
    EXPECT_EQ(a.symmetric_difference_count(b), (a ^ b).count());
  }
}

TEST(DynamicBitset, RandomizedMergeCountingMatchesCountDelta) {
  Xoshiro256 rng(7);
  for (int round = 0; round < 50; ++round) {
    DynamicBitset a(99);
    DynamicBitset b(99);
    for (std::size_t i = 0; i < 99; ++i) {
      if (rng.flip(0.4)) a.set(i);
      if (rng.flip(0.4)) b.set(i);
    }
    const std::size_t before = a.count();
    const std::size_t added = a.merge_counting(b);
    EXPECT_EQ(a.count(), before + added);
  }
}

}  // namespace
}  // namespace hyperrec
