// Differential tests for the runtime-dispatched kernel layer.
//
// The contract of support/bitset_kernels.hpp is that every flavour —
// scalar, AVX2, AVX-512 — is bit-identical, so dispatch can never change
// solver output.  These tests prove it kernel-by-kernel on seeded random
// words across universes that straddle every word seam and SIMD stride
// (0/1/63/64/65/127/128/1000 bits → 0..16 words, covering scalar tails of
// every length for the 4-word AVX2 and 8-word AVX-512 strides), check the
// inline wrappers against the tables, and pin down the DynamicBitset
// small-buffer optimisation: universes <= 64 must perform no heap
// allocation (counted via an overridden global operator new), and copies,
// moves and spans must stay correct across the inline/heap boundary.
#include "support/bitset_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "support/bitset.hpp"
#include "support/rng.hpp"

// --- global allocation counter for the SBO tests ---------------------------

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// The replaced operator new above allocates with malloc, so freeing with
// std::free is correct; GCC's -Wmismatched-new-delete can't see that.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace hyperrec {
namespace {

using kernels::KernelTable;
using kernels::Word;

// Universes straddling word seams; word counts 0,1,1,1,2,2,2,16.
constexpr std::size_t kUniverses[] = {0, 1, 63, 64, 65, 127, 128, 1000};

std::size_t words_for(std::size_t universe) {
  return (universe + 63) / 64;
}

Word tail_mask(std::size_t universe) {
  const std::size_t rem = universe % 64;
  return rem == 0 ? ~Word{0} : (Word{1} << rem) - 1;
}

std::vector<Word> random_words(std::size_t universe, Xoshiro256& rng) {
  std::vector<Word> words(words_for(universe));
  for (Word& w : words) w = rng();
  if (!words.empty()) words.back() &= tail_mask(universe);
  return words;
}

class KernelDifferentialTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::size_t universe() const { return GetParam(); }
  std::size_t n() const { return words_for(universe()); }
};

INSTANTIATE_TEST_SUITE_P(Seams, KernelDifferentialTest,
                         ::testing::ValuesIn(kUniverses));

// Every combining kernel, scalar vs SIMD, including dst == a aliasing.
TEST_P(KernelDifferentialTest, CombiningKernelsBitIdentical) {
  const KernelTable* simd = kernels::simd_table();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD flavour on this host";
  const KernelTable& scalar = kernels::scalar_table();

  using Combine = void (*KernelTable::*)(Word*, const Word*, const Word*,
                                         std::size_t);
  const Combine ops[] = {&KernelTable::or_words, &KernelTable::and_words,
                         &KernelTable::andnot_words, &KernelTable::xor_words};
  Xoshiro256 rng(17 + universe());
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<Word> a = random_words(universe(), rng);
    const std::vector<Word> b = random_words(universe(), rng);
    for (const Combine op : ops) {
      std::vector<Word> expect(n(), 0);
      std::vector<Word> got(n(), 0);
      (scalar.*op)(expect.data(), a.data(), b.data(), n());
      (simd->*op)(got.data(), a.data(), b.data(), n());
      EXPECT_EQ(expect, got);

      // dst == a aliasing, the in-place form every operator overload uses.
      std::vector<Word> aliased = a;
      (simd->*op)(aliased.data(), aliased.data(), b.data(), n());
      EXPECT_EQ(expect, aliased);
    }
  }
}

TEST_P(KernelDifferentialTest, CountingKernelsBitIdentical) {
  const KernelTable* simd = kernels::simd_table();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD flavour on this host";
  const KernelTable& scalar = kernels::scalar_table();

  using Count2 = std::size_t (*KernelTable::*)(const Word*, const Word*,
                                               std::size_t);
  const Count2 ops[] = {&KernelTable::or_popcount, &KernelTable::xor_popcount,
                        &KernelTable::andnot_popcount};
  Xoshiro256 rng(29 + universe());
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<Word> a = random_words(universe(), rng);
    const std::vector<Word> b = random_words(universe(), rng);
    const std::vector<Word> c = random_words(universe(), rng);
    EXPECT_EQ(scalar.popcount(a.data(), n()), simd->popcount(a.data(), n()));
    for (const Count2 op : ops) {
      EXPECT_EQ((scalar.*op)(a.data(), b.data(), n()),
                (simd->*op)(a.data(), b.data(), n()));
    }
    EXPECT_EQ(scalar.or3_popcount(a.data(), b.data(), c.data(), n()),
              simd->or3_popcount(a.data(), b.data(), c.data(), n()));
  }
}

TEST_P(KernelDifferentialTest, PredicateKernelsBitIdentical) {
  const KernelTable* simd = kernels::simd_table();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD flavour on this host";
  const KernelTable& scalar = kernels::scalar_table();

  Xoshiro256 rng(43 + universe());
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Word> a = random_words(universe(), rng);
    std::vector<Word> b = random_words(universe(), rng);
    // Random words almost never satisfy subset / miss intersection, so
    // force interesting cases on half the trials.
    if (trial % 4 == 1 && !a.empty()) {
      for (std::size_t i = 0; i < a.size(); ++i) a[i] &= b[i];  // a ⊆ b
    } else if (trial % 4 == 3 && !a.empty()) {
      for (std::size_t i = 0; i < a.size(); ++i) a[i] &= ~b[i];  // disjoint
    }
    EXPECT_EQ(scalar.subset(a.data(), b.data(), n()),
              simd->subset(a.data(), b.data(), n()));
    EXPECT_EQ(scalar.intersects(a.data(), b.data(), n()),
              simd->intersects(a.data(), b.data(), n()));
  }
}

TEST_P(KernelDifferentialTest, MergeCountBitIdentical) {
  const KernelTable* simd = kernels::simd_table();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD flavour on this host";
  const KernelTable& scalar = kernels::scalar_table();

  Xoshiro256 rng(61 + universe());
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<Word> src = random_words(universe(), rng);
    const std::vector<Word> base = random_words(universe(), rng);
    std::vector<Word> scalar_dst = base;
    std::vector<Word> simd_dst = base;
    const std::size_t scalar_added =
        scalar.or_merge_count(scalar_dst.data(), src.data(), n());
    const std::size_t simd_added =
        simd->or_merge_count(simd_dst.data(), src.data(), n());
    EXPECT_EQ(scalar_added, simd_added);
    EXPECT_EQ(scalar_dst, simd_dst);
  }
}

// The inline wrappers must agree with the scalar table (for n <= kInlineWords
// they ARE an inlined scalar loop; beyond that they dispatch, and dispatch is
// bit-identical by the tests above).
TEST_P(KernelDifferentialTest, WrappersMatchScalarTable) {
  const KernelTable& scalar = kernels::scalar_table();
  Xoshiro256 rng(83 + universe());
  const std::vector<Word> a = random_words(universe(), rng);
  const std::vector<Word> b = random_words(universe(), rng);
  const std::vector<Word> c = random_words(universe(), rng);

  std::vector<Word> expect(n(), 0);
  std::vector<Word> got(n(), 0);
  scalar.or_words(expect.data(), a.data(), b.data(), n());
  kernels::or_words(got.data(), a.data(), b.data(), n());
  EXPECT_EQ(expect, got);
  scalar.andnot_words(expect.data(), a.data(), b.data(), n());
  kernels::andnot_words(got.data(), a.data(), b.data(), n());
  EXPECT_EQ(expect, got);

  EXPECT_EQ(scalar.popcount(a.data(), n()), kernels::popcount(a.data(), n()));
  EXPECT_EQ(scalar.or_popcount(a.data(), b.data(), n()),
            kernels::or_popcount(a.data(), b.data(), n()));
  EXPECT_EQ(scalar.or3_popcount(a.data(), b.data(), c.data(), n()),
            kernels::or3_popcount(a.data(), b.data(), c.data(), n()));
  EXPECT_EQ(scalar.xor_popcount(a.data(), b.data(), n()),
            kernels::xor_popcount(a.data(), b.data(), n()));
  EXPECT_EQ(scalar.andnot_popcount(a.data(), b.data(), n()),
            kernels::andnot_popcount(a.data(), b.data(), n()));
  EXPECT_EQ(scalar.subset(a.data(), b.data(), n()),
            kernels::subset(a.data(), b.data(), n()));
  EXPECT_EQ(scalar.intersects(a.data(), b.data(), n()),
            kernels::intersects(a.data(), b.data(), n()));

  std::vector<Word> scalar_dst = a;
  std::vector<Word> wrapper_dst = a;
  EXPECT_EQ(scalar.or_merge_count(scalar_dst.data(), b.data(), n()),
            kernels::or_merge_count(wrapper_dst.data(), b.data(), n()));
  EXPECT_EQ(scalar_dst, wrapper_dst);
}

// --- dispatch plumbing -----------------------------------------------------

TEST(KernelDispatch, TablesAreSelfConsistent) {
  const KernelTable& active = kernels::active_table();
  EXPECT_STREQ(active.name, kernels::active_isa());
  EXPECT_STREQ(kernels::scalar_table().name, "scalar");
  if (kernels::force_scalar_requested()) {
    EXPECT_STREQ(kernels::active_isa(), "scalar");
  } else if (const KernelTable* simd = kernels::simd_table()) {
    EXPECT_STREQ(active.name, simd->name);
  } else {
    EXPECT_STREQ(kernels::active_isa(), "scalar");
  }
}

TEST(KernelDispatch, ForceScalarMatchesEnvironment) {
  // Dispatch latches the environment at first use, and this process has
  // already used it — so the getter must agree with what getenv says now
  // (ctest runs this suite both ways via the `scalar` re-registrations).
  const char* env = std::getenv("HYPERREC_FORCE_SCALAR");
  const bool expect_forced =
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  EXPECT_EQ(kernels::force_scalar_requested(), expect_forced);
}

// --- DynamicBitset small-buffer optimisation -------------------------------

TEST(BitsetSbo, InlineUniversesNeverAllocate) {
  for (const std::size_t universe : {std::size_t{0}, std::size_t{1},
                                     std::size_t{17}, std::size_t{63},
                                     std::size_t{64}}) {
    DynamicBitset seed(universe);
    for (std::size_t b = 0; b < universe; b += 3) seed.set(b);

    const std::size_t before = g_allocations.load(std::memory_order_relaxed);
    DynamicBitset x(universe);
    x.set_range(0, universe / 2);
    DynamicBitset copy(seed);
    copy |= x;
    copy &= seed;
    copy ^= x;
    copy -= seed;
    (void)copy.count();
    (void)copy.union_count(seed);
    (void)copy.symmetric_difference_count(seed);
    (void)copy.subset_of(seed);
    (void)copy.intersects(seed);
    (void)copy.merge_counting(seed);
    DynamicBitset moved(std::move(copy));
    DynamicBitset assigned(universe);
    assigned = moved;
    const std::size_t after = g_allocations.load(std::memory_order_relaxed);

    EXPECT_EQ(before, after) << "universe " << universe << " allocated";
    EXPECT_TRUE(seed.uses_inline_storage());
    EXPECT_TRUE(assigned.uses_inline_storage());
  }
}

TEST(BitsetSbo, HeapUniversesStillWork) {
  DynamicBitset big(65);
  EXPECT_FALSE(big.uses_inline_storage());
  big.set(0).set(64);
  EXPECT_EQ(big.count(), 2u);
  EXPECT_EQ(big.words().size(), 2u);
}

TEST(BitsetSbo, CopyAcrossTheBoundary) {
  DynamicBitset small(60);
  small.set(0).set(59);
  DynamicBitset large(100);
  large.set(0).set(99);

  // Copy-assign heap over inline and inline over heap; both must end up
  // exact copies with the right storage class.
  DynamicBitset a = small;
  a = large;
  EXPECT_EQ(a, large);
  EXPECT_FALSE(a.uses_inline_storage());

  DynamicBitset b = large;
  b = small;
  EXPECT_EQ(b, small);
  EXPECT_TRUE(b.uses_inline_storage());
}

TEST(BitsetSbo, MoveLeavesSourceEmptyAndTargetExact) {
  DynamicBitset small(33);
  small.set(32);
  DynamicBitset moved_small(std::move(small));
  EXPECT_TRUE(moved_small.test(32));
  EXPECT_EQ(moved_small.size(), 33u);

  DynamicBitset large(200);
  large.set(199);
  DynamicBitset moved_large(std::move(large));
  EXPECT_TRUE(moved_large.test(199));
  EXPECT_FALSE(moved_large.uses_inline_storage());

  DynamicBitset target(10);
  target = std::move(moved_large);
  EXPECT_EQ(target.size(), 200u);
  EXPECT_TRUE(target.test(199));
}

TEST(BitsetSbo, WordsSpanIsStableWhileUnmoved) {
  DynamicBitset inline_set(40);
  inline_set.set(5);
  const std::span<const DynamicBitset::Word> before = inline_set.words();
  inline_set.set(20).reset(5).set_range(30, 40);
  const std::span<const DynamicBitset::Word> after = inline_set.words();
  EXPECT_EQ(before.data(), after.data());
  EXPECT_EQ(before.size(), 1u);

  DynamicBitset heap_set(300);
  const std::span<const DynamicBitset::Word> heap_before = heap_set.words();
  heap_set.set(250).set_range(0, 100);
  EXPECT_EQ(heap_before.data(), heap_set.words().data());
  EXPECT_EQ(heap_before.size(), 5u);
}

TEST(BitsetSbo, RoundTripsAcrossSeams) {
  // to_string/from_string and from_or_words agree with bit-level state on
  // both storage classes.
  Xoshiro256 rng(7);
  for (const std::size_t universe : kUniverses) {
    DynamicBitset x(universe);
    DynamicBitset y(universe);
    for (std::size_t b = 0; b < universe; ++b) {
      if (rng() & 1u) x.set(b);
      if (rng() & 1u) y.set(b);
    }
    EXPECT_EQ(DynamicBitset::from_string(x.to_string()), x);
    if (universe > 0) {
      const DynamicBitset expect = x | y;
      const DynamicBitset got = DynamicBitset::from_or_words(
          universe, x.words().data(), y.words().data(), x.words().size());
      EXPECT_EQ(expect, got);
    }
  }
}

}  // namespace
}  // namespace hyperrec
