#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace hyperrec {
namespace {

TEST(ParallelFor, BodyExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("body failure");
                   },
                   pool),
      std::runtime_error);
}

TEST(ParallelFor, SingleThreadPoolRunsSerial) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(0, 10, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  }, pool);
  // With one worker the fallback serial path preserves order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, LargeRangeCoversEverything) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 100000, [&sum](std::size_t i) {
    sum += static_cast<std::int64_t>(i);
  }, pool);
  EXPECT_EQ(sum.load(), 100000ll * 99999 / 2);
}

TEST(ParallelReduce, NonCommutativeCombineStillCorrectForAddition) {
  ThreadPool pool(4);
  const auto total = parallel_reduce<std::int64_t>(
      1, 1001, 0, [](std::size_t i) { return static_cast<std::int64_t>(i); },
      [](std::int64_t a, std::int64_t b) { return a + b; }, pool);
  EXPECT_EQ(total, 500500);
}

TEST(ParallelReduce, MaxReduction) {
  ThreadPool pool(4);
  const auto maximum = parallel_reduce<std::int64_t>(
      0, 1000, std::numeric_limits<std::int64_t>::min(),
      [](std::size_t i) {
        return static_cast<std::int64_t>((i * 7919) % 1000);
      },
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); }, pool);
  EXPECT_EQ(maximum, 999);
}

TEST(ParallelReduce, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_reduce<int>(
                   0, 100, 0,
                   [](std::size_t i) -> int {
                     if (i == 42) throw std::logic_error("fn failure");
                     return 1;
                   },
                   [](int a, int b) { return a + b; }, pool),
               std::logic_error);
}

}  // namespace
}  // namespace hyperrec
