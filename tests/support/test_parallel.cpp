#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>

namespace hyperrec {
namespace {

TEST(ParallelFor, BodyExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("body failure");
                   },
                   pool),
      std::runtime_error);
}

TEST(ParallelFor, SingleThreadPoolRunsSerial) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(0, 10, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  }, pool);
  // With one worker the fallback serial path preserves order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, LargeRangeCoversEverything) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 100000, [&sum](std::size_t i) {
    sum += static_cast<std::int64_t>(i);
  }, pool);
  EXPECT_EQ(sum.load(), 100000ll * 99999 / 2);
}

TEST(ParallelReduce, NonCommutativeCombineStillCorrectForAddition) {
  ThreadPool pool(4);
  const auto total = parallel_reduce<std::int64_t>(
      1, 1001, 0, [](std::size_t i) { return static_cast<std::int64_t>(i); },
      [](std::int64_t a, std::int64_t b) { return a + b; }, pool);
  EXPECT_EQ(total, 500500);
}

TEST(ParallelReduce, MaxReduction) {
  ThreadPool pool(4);
  const auto maximum = parallel_reduce<std::int64_t>(
      0, 1000, std::numeric_limits<std::int64_t>::min(),
      [](std::size_t i) {
        return static_cast<std::int64_t>((i * 7919) % 1000);
      },
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); }, pool);
  EXPECT_EQ(maximum, 999);
}

TEST(ParallelReduce, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_reduce<int>(
                   0, 100, 0,
                   [](std::size_t i) -> int {
                     if (i == 42) throw std::logic_error("fn failure");
                     return 1;
                   },
                   [](int a, int b) { return a + b; }, pool),
               std::logic_error);
}

TEST(ParallelFor, EveryBodyThrowingPropagatesExactlyOneWinner) {
  // All 64 bodies throw a distinct exception; the caller must observe
  // exactly one of them (first future wins) and the rest must be swallowed
  // without terminate() or leaks.
  ThreadPool pool(4);
  std::size_t caught = 0;
  std::string winner;
  try {
    parallel_for(0, 64, [](std::size_t i) {
      throw std::runtime_error(std::to_string(i));
    }, pool);
  } catch (const std::runtime_error& error) {
    ++caught;
    winner = error.what();
  }
  ASSERT_EQ(caught, 1u);
  const int index = std::stoi(winner);
  EXPECT_GE(index, 0);
  EXPECT_LT(index, 64);
}

TEST(ParallelFor, EmptyAndInvertedRangesRunNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&calls](std::size_t) { ++calls; }, pool);
  parallel_for(7, 3, [&calls](std::size_t) { ++calls; }, pool);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleElementRangeRunsOnce) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::atomic<std::size_t> seen{0};
  parallel_for(41, 42, [&](std::size_t i) {
    ++calls;
    seen = i;
  }, pool);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen.load(), 41u);
}

TEST(ParallelFor, GrainLargerThanRangeFallsBackToSerialInOrder) {
  ThreadPool pool(4);
  std::vector<int> order;  // unsynchronised on purpose: must stay serial
  parallel_for(0, 10, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  }, pool, /*grain=*/100);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, NestedFireAndForgetSubmissionToSamePool) {
  // Bodies may submit follow-up work to the pool they run on as long as
  // they do not block on it (the shared queue has no work stealing).  The
  // caller collects the inner futures after the outer loop joins.
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::future<int>> inner;
  parallel_for(0, 32, [&](std::size_t i) {
    auto future = pool.submit([i]() { return static_cast<int>(i) * 2; });
    const std::lock_guard<std::mutex> lock(mutex);
    inner.push_back(std::move(future));
  }, pool);
  ASSERT_EQ(inner.size(), 32u);
  int sum = 0;
  for (auto& future : inner) sum += future.get();
  EXPECT_EQ(sum, 2 * (31 * 32) / 2);
}

TEST(ParallelFor, NestedBlockingLoopOnSamePoolDegradesToSerial) {
  // A body that runs another parallel_for on the SAME pool must not submit
  // nested work (the worker would block on tasks queued behind it and
  // deadlock the shared queue); the reentrancy guard runs it serially.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(0, 16, [&](std::size_t) {
    parallel_for(0, 16, [&count](std::size_t) { ++count; }, pool);
  }, pool);
  EXPECT_EQ(count.load(), 256);
}

TEST(ParallelReduce, NestedReduceOnSamePoolDegradesToSerial) {
  ThreadPool pool(4);
  const auto total = parallel_reduce<std::int64_t>(
      0, 8, 0,
      [&pool](std::size_t) {
        return parallel_reduce<std::int64_t>(
            0, 8, 0,
            [](std::size_t j) { return static_cast<std::int64_t>(j); },
            [](std::int64_t a, std::int64_t b) { return a + b; }, pool);
      },
      [](std::int64_t a, std::int64_t b) { return a + b; }, pool);
  EXPECT_EQ(total, 8 * 28);
}

TEST(ThreadPoolReentrancy, OnWorkerThreadDetectsOwnPoolOnly) {
  ThreadPool a(2);
  ThreadPool b(2);
  EXPECT_FALSE(a.on_worker_thread());
  const bool on_a = a.submit([&a]() { return a.on_worker_thread(); }).get();
  const bool cross = a.submit([&b]() { return b.on_worker_thread(); }).get();
  EXPECT_TRUE(on_a);
  EXPECT_FALSE(cross);
}

TEST(ParallelFor, NestedLoopOnSecondPoolCompletes) {
  // Inner loops must run on their own pool: outer workers block in the
  // inner join, which is safe because the inner pool makes progress.
  ThreadPool outer(3);
  ThreadPool inner(2);
  std::atomic<int> count{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&count](std::size_t) { ++count; }, inner);
  }, outer);
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, ConcurrentLoopsFromManyThreadsShareOnePool) {
  // Hammer one pool from several caller threads at once; every loop must
  // see all of its own iterations exactly once.
  ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::array<std::atomic<std::int64_t>, 6> sums{};
  for (std::size_t t = 0; t < sums.size(); ++t) {
    callers.emplace_back([&pool, &sums, t]() {
      for (int repeat = 0; repeat < 20; ++repeat) {
        sums[t] = 0;
        parallel_for(0, 500, [&sums, t](std::size_t i) {
          sums[t] += static_cast<std::int64_t>(i);
        }, pool);
        ASSERT_EQ(sums[t].load(), 500ll * 499 / 2);
      }
    });
  }
  for (auto& caller : callers) caller.join();
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(4);
  const int result = parallel_reduce<int>(
      9, 9, -7, [](std::size_t) { return 1; },
      [](int a, int b) { return a + b; }, pool);
  EXPECT_EQ(result, -7);
}

TEST(ParallelReduce, GrainLargerThanRangeFallsBackToSerial) {
  ThreadPool pool(4);
  const int result = parallel_reduce<int>(
      0, 10, 0, [](std::size_t i) { return static_cast<int>(i); },
      [](int a, int b) { return a + b; }, pool, /*grain=*/1000);
  EXPECT_EQ(result, 45);
}

TEST(ParallelReduce, SingleElementRange) {
  ThreadPool pool(4);
  const int result = parallel_reduce<int>(
      3, 4, 100, [](std::size_t i) { return static_cast<int>(i); },
      [](int a, int b) { return a + b; }, pool);
  EXPECT_EQ(result, 103);
}

}  // namespace
}  // namespace hyperrec
