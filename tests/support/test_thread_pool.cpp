#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "support/parallel.hpp"

namespace hyperrec {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(4);
  auto future = pool.submit([]() { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ThreadCountMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ManyJobsAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter]() { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto future =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(0, 500, [&hits](std::size_t i) { ++hits[i]; }, pool);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, EmptyRangeDoesNothing) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  parallel_for(5, 5, [&counter](std::size_t) { ++counter; }, pool);
  parallel_for(7, 3, [&counter](std::size_t) { ++counter; }, pool);
  EXPECT_EQ(counter.load(), 0);
}

TEST(ParallelFor, OffsetRangeSeesCorrectIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(40, 60, [&hits](std::size_t i) { ++hits[i]; }, pool);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 40 && i < 60) ? 1 : 0) << i;
  }
}

TEST(ParallelReduce, SumsMatchSerial) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  const auto total = parallel_reduce<std::int64_t>(
      0, n, 0, [](std::size_t i) { return static_cast<std::int64_t>(i); },
      [](std::int64_t a, std::int64_t b) { return a + b; }, pool);
  EXPECT_EQ(total, static_cast<std::int64_t>(n * (n - 1) / 2));
}

TEST(ParallelReduce, EmptyRangeYieldsInit) {
  ThreadPool pool(2);
  const auto total = parallel_reduce<int>(
      3, 3, -7, [](std::size_t) { return 1; },
      [](int a, int b) { return a + b; }, pool);
  EXPECT_EQ(total, -7);
}

TEST(ParallelFor, LargeGrainFallsBackToSerial) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);  // non-atomic: serial path must be used
  parallel_for(0, 10, [&hits](std::size_t i) { ++hits[i]; }, pool,
               /*grain=*/100);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

}  // namespace
}  // namespace hyperrec
