// Saturating cost arithmetic: clamping at the shared DP sentinel, ordering
// preservation, and the adversarial-input contracts the interval DPs rely
// on (see tests/core/test_interval_dp.cpp for the end-to-end regression).
#include "support/cost_math.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace hyperrec {
namespace {

constexpr Cost kMax = std::numeric_limits<Cost>::max();

TEST(CostMath, InfinityLeavesWrapHeadroom) {
  EXPECT_EQ(kCostInfinity, kMax / 4);
  // The historical reason for max/4: a few raw additions of sentinels must
  // not wrap even without the saturating helpers.
  EXPECT_GT(kCostInfinity + kCostInfinity, 0);
}

TEST(CostMath, AddIsExactBelowSaturation) {
  EXPECT_EQ(cost_add(0, 0), 0);
  EXPECT_EQ(cost_add(2, 3), 5);
  EXPECT_EQ(cost_add(-7, 3), -4);
  EXPECT_EQ(cost_add(kCostInfinity - 1, 1), kCostInfinity);
}

TEST(CostMath, AddSaturatesInsteadOfWrapping) {
  EXPECT_EQ(cost_add(kMax, kMax), kCostInfinity);
  EXPECT_EQ(cost_add(kCostInfinity, kCostInfinity), kCostInfinity);
  EXPECT_EQ(cost_add(kMax / 2, kMax / 2), kCostInfinity);
  EXPECT_EQ(cost_add(-kMax, -kMax), -kCostInfinity);
}

TEST(CostMath, MulIsExactBelowSaturation) {
  EXPECT_EQ(cost_mul(0, 12345), 0);
  EXPECT_EQ(cost_mul(6, 7), 42);
  EXPECT_EQ(cost_mul(-6, 7), -42);
}

TEST(CostMath, MulSaturatesInsteadOfWrapping) {
  EXPECT_EQ(cost_mul(kMax, 2), kCostInfinity);
  EXPECT_EQ(cost_mul(kMax, kMax), kCostInfinity);
  EXPECT_EQ(cost_mul(kMax, -2), -kCostInfinity);
  EXPECT_EQ(cost_mul(-kMax, -kMax), kCostInfinity);
  // The minimum is the classic two's-complement negation trap.
  EXPECT_EQ(cost_mul(std::numeric_limits<Cost>::min(), -1), kCostInfinity);
}

TEST(CostMath, SaturationPreservesOrderingUpToTheSentinel) {
  const Cost cheap = cost_add(100, 200);
  const Cost expensive = cost_add(kMax / 2, kMax / 2);
  EXPECT_LT(cheap, expensive);
  EXPECT_EQ(expensive, kCostInfinity);
  // Two saturated values compare equal — both are "unreachably expensive".
  EXPECT_EQ(cost_add(kMax, 1), cost_mul(kMax, 3));
}

TEST(CostMath, HelpersAreConstexpr) {
  static_assert(cost_add(1, 2) == 3);
  static_assert(cost_mul(kMax, kMax) == kCostInfinity);
  static_assert(cost_add(kMax, kMax) == kCostInfinity);
  SUCCEED();
}

}  // namespace
}  // namespace hyperrec
