#include "support/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hyperrec {
namespace {

TEST(CancelToken, DefaultIsInertAndNeverCancels) {
  const CancelToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, CancelOnInertTokenIsAPreconditionError) {
  const CancelToken token;
  EXPECT_THROW(token.cancel(), PreconditionError);
}

TEST(CancelToken, ManualCancelObservedByAllCopies) {
  const CancelToken token = CancelToken::manual();
  const CancelToken copy = token;
  EXPECT_TRUE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(copy.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
}

TEST(CancelToken, ExpiredIsImmediatelyCancelled) {
  EXPECT_TRUE(CancelToken::expired().cancelled());
}

TEST(CancelToken, PastDeadlineCancels) {
  const CancelToken token = CancelToken::with_deadline(
      CancelToken::Clock::now() - std::chrono::milliseconds{1});
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, ZeroBudgetCancels) {
  EXPECT_TRUE(CancelToken::after(std::chrono::nanoseconds{0}).cancelled());
}

TEST(CancelToken, FarDeadlineDoesNotCancelYet) {
  const CancelToken token = CancelToken::after(std::chrono::hours{1});
  EXPECT_TRUE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
  token.cancel();  // manual cancel still works on deadline tokens
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, DeadlineLatchesOnceObserved) {
  const CancelToken token = CancelToken::after(std::chrono::milliseconds{1});
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, LinkedSeesParentCancel) {
  const CancelToken parent = CancelToken::manual();
  const CancelToken child = CancelToken::linked(parent);
  EXPECT_FALSE(child.cancelled());
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
}

TEST(CancelToken, ChildCancelDoesNotPropagateUpwards) {
  const CancelToken parent = CancelToken::manual();
  const CancelToken child = CancelToken::linked(parent);
  child.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(CancelToken, LinkedDeadlineFiresIndependentlyOfParent) {
  const CancelToken parent = CancelToken::manual();
  const CancelToken child = CancelToken::linked(
      parent, CancelToken::Clock::now() - std::chrono::milliseconds{1});
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(CancelToken, LinkedToInertParentBehavesLikePlainToken) {
  const CancelToken child = CancelToken::linked(CancelToken{});
  EXPECT_FALSE(child.cancelled());
  child.cancel();
  EXPECT_TRUE(child.cancelled());
}

TEST(CancelToken, GrandparentCancelReachesGrandchild) {
  const CancelToken root = CancelToken::manual();
  const CancelToken mid = CancelToken::linked(root);
  const CancelToken leaf = CancelToken::linked(mid);
  root.cancel();
  EXPECT_TRUE(leaf.cancelled());
}

TEST(CancelToken, ConcurrentPollersAllObserveOneCancel) {
  const CancelToken token = CancelToken::manual();
  std::atomic<bool> go{false};
  std::atomic<std::size_t> observed{0};
  std::vector<std::thread> pollers;
  for (std::size_t t = 0; t < 4; ++t) {
    pollers.emplace_back([&]() {
      while (!go.load()) std::this_thread::yield();
      while (!token.cancelled()) std::this_thread::yield();
      observed.fetch_add(1);
    });
  }
  go.store(true);
  token.cancel();
  for (auto& poller : pollers) poller.join();
  EXPECT_EQ(observed.load(), 4u);
}

}  // namespace
}  // namespace hyperrec
