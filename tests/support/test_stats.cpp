#include "support/stats.hpp"

#include <gtest/gtest.h>

namespace hyperrec {
namespace {

TEST(Summarize, EmptyInputIsAllZero) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleSample) {
  const Summary s = summarize(std::vector<double>{4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, KnownMeanAndStddev) {
  const Summary s = summarize(std::vector<double>{2.0, 4.0, 4.0, 4.0, 5.0,
                                                  5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, IntegerOverloadMatchesDouble) {
  const Summary a = summarize(std::vector<std::int64_t>{1, 2, 3});
  const Summary b = summarize(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(RunLengths, DetectsMaximalRuns) {
  EXPECT_EQ(run_lengths({1, 1, 1, 2, 2, 3}),
            (std::vector<std::size_t>{3, 2, 1}));
}

TEST(RunLengths, EmptyAndSingleton) {
  EXPECT_TRUE(run_lengths({}).empty());
  EXPECT_EQ(run_lengths({5}), (std::vector<std::size_t>{1}));
}

TEST(RunLengths, AlternatingValues) {
  EXPECT_EQ(run_lengths({1, 2, 1, 2}),
            (std::vector<std::size_t>{1, 1, 1, 1}));
}

}  // namespace
}  // namespace hyperrec
