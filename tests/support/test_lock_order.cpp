// Lockdep-lite validator tests: inversions are caught deterministically on
// the FIRST conflicting acquisition (before the underlying lock can block),
// naming both locks; legitimate nesting — reentrant same-class and strictly
// hierarchical — passes.

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "support/ensure.hpp"
#include "support/lock_order.hpp"
#include "support/thread_annotations.hpp"

namespace hyperrec {
namespace {

using lock_order::ScopedEnable;

TEST(LockOrder, ScopedEnableRestoresPreviousState) {
  // The library default is off unless the build sets HYPERREC_LOCK_ORDER;
  // either way ScopedEnable turns it on and restores the previous state.
  const bool before = lock_order::enabled();
  {
    const ScopedEnable enable;
    EXPECT_TRUE(lock_order::enabled());
  }
  EXPECT_EQ(lock_order::enabled(), before);
}

TEST(LockOrder, HierarchicalAcquisitionPasses) {
  const ScopedEnable enable;
  Mutex outer{"test::outer"};
  Mutex inner{"test::inner"};
  for (int i = 0; i < 3; ++i) {
    const MutexLock hold_outer(outer);
    const MutexLock hold_inner(inner);
  }
  EXPECT_EQ(lock_order::edge_count(), 1u);  // outer→inner, recorded once
  EXPECT_EQ(lock_order::held_count(), 0u);
}

TEST(LockOrder, SameClassNestingPasses) {
  // Sharded/hierarchical locks of one family share a name; nesting them in
  // either order is allowed by construction (no intra-class edges).
  const ScopedEnable enable;
  Mutex shard_a{"test::shard"};
  Mutex shard_b{"test::shard"};
  {
    const MutexLock first(shard_a);
    const MutexLock second(shard_b);
  }
  {
    const MutexLock first(shard_b);
    const MutexLock second(shard_a);
  }
  EXPECT_EQ(lock_order::edge_count(), 0u);
}

TEST(LockOrder, InversionCaughtNamingBothLocks) {
  const ScopedEnable enable;
  Mutex a{"test::A"};
  Mutex b{"test::B"};
  {
    const MutexLock hold_a(a);
    const MutexLock hold_b(b);  // establishes A→B
  }
  const MutexLock hold_b(b);
  try {
    a.lock();
    a.unlock();
    FAIL() << "B→A after A→B must throw";
  } catch (const PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("lock-order inversion"), std::string::npos) << what;
    EXPECT_NE(what.find("\"test::A\""), std::string::npos) << what;
    EXPECT_NE(what.find("\"test::B\""), std::string::npos) << what;
    // The established acquired-before chain is part of the message.
    EXPECT_NE(what.find("\"test::A\" -> \"test::B\""), std::string::npos)
        << what;
  }
  // The failed acquisition holds nothing: only b remains held.
  EXPECT_EQ(lock_order::held_count(), 1u);
}

TEST(LockOrder, TransitiveCycleAcrossThreadsCaught) {
  const ScopedEnable enable;
  Mutex a{"test::A"};
  Mutex b{"test::B"};
  Mutex c{"test::C"};
  // Different threads contribute the edges; the graph is global.
  std::thread([&] {
    const MutexLock hold_a(a);
    const MutexLock hold_b(b);  // A→B
  }).join();
  std::thread([&] {
    const MutexLock hold_b(b);
    const MutexLock hold_c(c);  // B→C
  }).join();
  const MutexLock hold_c(c);
  EXPECT_THROW(a.lock(), PreconditionError);  // C→A closes A→B→C
}

TEST(LockOrder, SameObjectReacquireFailsImmediately) {
  const ScopedEnable enable;
  Mutex a{"test::self"};
  const MutexLock hold(a);
  try {
    a.lock();
    a.unlock();
    FAIL() << "same-object re-acquire is a guaranteed self-deadlock";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("test::self"),
              std::string::npos);
  }
}

TEST(LockOrder, TryLockRecordsHoldButNoEdges) {
  const ScopedEnable enable;
  Mutex a{"test::A"};
  Mutex b{"test::B"};
  {
    const MutexLock hold_a(a);
    ASSERT_TRUE(b.try_lock());  // try_lock never blocks: no A→B edge
    EXPECT_EQ(lock_order::held_count(), 2u);
    b.unlock();
  }
  EXPECT_EQ(lock_order::edge_count(), 0u);
  // With no A→B edge on record, B→A is a legal first order.
  const MutexLock hold_b(b);
  const MutexLock hold_a(a);
  EXPECT_EQ(lock_order::edge_count(), 1u);
}

TEST(LockOrder, ReleaseBalancesWhenEnabledMidHold) {
  // A lock acquired while validation was off is simply untracked; enabling
  // before the release must not corrupt the held set.
  const bool was = lock_order::set_enabled(false);
  Mutex a{"test::toggle"};
  a.lock();
  EXPECT_EQ(lock_order::held_count(), 0u);
  lock_order::set_enabled(true);
  a.unlock();  // no-op removal: was never tracked
  EXPECT_EQ(lock_order::held_count(), 0u);
  lock_order::set_enabled(was);
  lock_order::reset();
}

// The headline guarantee: a would-be AB/BA deadlock between two threads
// surfaces as an exception in the second thread to attempt its inner
// acquisition — BEFORE that thread can block on the underlying mutex — so
// the test finishes without any timeout machinery.  The first thread runs
// to completion alone (fully serialized via join) to make WHICH thread
// fails deterministic; the validator's global graph makes the guarantee
// independent of that choice.
TEST(LockOrder, InversionFiresBeforeDeadlockAcrossThreads) {
  const ScopedEnable enable;
  Mutex a{"test::A"};
  Mutex b{"test::B"};
  std::thread([&] {
    const MutexLock hold_a(a);
    const MutexLock hold_b(b);  // thread 1 establishes A→B and exits
  }).join();
  bool threw = false;
  std::thread([&] {
    const MutexLock hold_b(b);
    try {
      a.lock();  // B→A: must throw instead of proceeding
      a.unlock();
    } catch (const PreconditionError&) {
      threw = true;
    }
  }).join();
  EXPECT_TRUE(threw);
}

TEST(LockOrder, CondVarWaitKeepsLockTracked) {
  const ScopedEnable enable;
  Mutex m{"test::cv"};
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    const MutexLock lock(m);
    ready = true;
    cv.notify_one();
  });
  {
    const MutexLock lock(m);
    while (!ready) cv.wait(m);
    EXPECT_EQ(lock_order::held_count(), 1u);
  }
  waker.join();
  EXPECT_EQ(lock_order::held_count(), 0u);
}

TEST(LockOrder, SharedMutexParticipates) {
  const ScopedEnable enable;
  SharedMutex rw{"test::rw"};
  Mutex m{"test::plain"};
  {
    const ReaderMutexLock read(rw);
    const MutexLock hold(m);  // rw→plain
  }
  const MutexLock hold(m);
  EXPECT_THROW(rw.lock_shared(), PreconditionError);  // plain→rw: cycle
}

}  // namespace
}  // namespace hyperrec
