#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hyperrec {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformRespectsBound) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(7), 7u);
  }
}

TEST(Xoshiro256, UniformBoundOneAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Xoshiro256, UniformZeroBoundThrows) {
  Xoshiro256 rng(5);
  EXPECT_THROW(rng.uniform(0), PreconditionError);
}

TEST(Xoshiro256, UniformIntCoversInclusiveRange) {
  Xoshiro256 rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all five values should appear in 2000 draws";
}

TEST(Xoshiro256, UniformIntBadRangeThrows) {
  Xoshiro256 rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), PreconditionError);
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256, UniformIsRoughlyBalanced) {
  Xoshiro256 rng(23);
  std::vector<int> buckets(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.uniform(10)];
  for (const int count : buckets) {
    EXPECT_NEAR(count, draws / 10, draws / 100);
  }
}

TEST(Xoshiro256, FlipExtremesAreDeterministic) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.flip(0.0));
    EXPECT_TRUE(rng.flip(1.0));
  }
}

TEST(Xoshiro256, SplitStreamsAreIndependentAndReproducible) {
  Xoshiro256 parent_a(77);
  Xoshiro256 parent_b(77);
  Xoshiro256 child_a = parent_a.split(0);
  Xoshiro256 child_b = parent_b.split(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child_a(), child_b());

  Xoshiro256 parent_c(77);
  Xoshiro256 other = parent_c.split(1);
  Xoshiro256 parent_d(77);
  Xoshiro256 base = parent_d.split(0);
  bool diverged = false;
  for (int i = 0; i < 16 && !diverged; ++i) diverged = other() != base();
  EXPECT_TRUE(diverged);
}

TEST(Shuffle, PermutesAllElements) {
  Xoshiro256 rng(9);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  shuffle(items, rng);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b) << "shuffle must be a permutation";
}

TEST(Shuffle, SingleElementAndEmptyAreStable) {
  Xoshiro256 rng(9);
  std::vector<int> empty;
  shuffle(empty, rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  shuffle(one, rng);
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace hyperrec
