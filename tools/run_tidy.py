#!/usr/bin/env python3
"""Runs clang-tidy (config: .clang-tidy) over the src/ translation units.

Needs a build directory with compile_commands.json — every CMake preset
exports one (CMAKE_EXPORT_COMPILE_COMMANDS=ON).  Usage:

    python3 tools/run_tidy.py [--build-dir build] [--jobs N] [files...]

With no files given, every src/**/*.cpp entry from the compilation
database is checked.  Exit code 0 = clean (or tool unavailable — see
below), 1 = findings, 2 = usage/setup error.

When clang-tidy is not installed the script reports that and exits 0 so
the lint pipeline degrades gracefully on toolchains without clang (the
CI clang job is where the check is load-bearing).  Pass --require to
turn a missing tool into a hard error instead.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def compilation_sources(build_dir: Path) -> list[str]:
    database = build_dir / "compile_commands.json"
    if not database.is_file():
        print(f"run_tidy: no compile_commands.json in {build_dir} — "
              "configure with a preset (they export it) first",
              file=sys.stderr)
        raise SystemExit(2)
    entries = json.loads(database.read_text())
    sources = []
    src_root = (REPO_ROOT / "src").resolve()
    for entry in entries:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        if src_root in path.parents and path.suffix == ".cpp":
            sources.append(str(path))
    return sorted(set(sources))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path,
                        default=REPO_ROOT / "build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when clang-tidy is missing "
                             "instead of skipping")
    parser.add_argument("files", nargs="*",
                        help="specific files (default: all src/ TUs in the "
                             "compilation database)")
    args = parser.parse_args(argv)

    tidy = shutil.which("clang-tidy")
    if tidy is None:
        message = "run_tidy: clang-tidy not found on PATH"
        if args.require:
            print(message, file=sys.stderr)
            return 2
        print(f"{message} — skipping (pass --require to make this fatal)")
        return 0

    sources = args.files or compilation_sources(args.build_dir.resolve())
    if not sources:
        print("run_tidy: no src/ translation units in the database",
              file=sys.stderr)
        return 2

    def check(source: str) -> tuple[str, int, str]:
        result = subprocess.run(
            [tidy, "-p", str(args.build_dir), "--quiet", source],
            capture_output=True, text=True)
        return source, result.returncode, result.stdout + result.stderr

    failures = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for source, code, output in pool.map(check, sources):
            shown = Path(source)
            try:
                shown = shown.relative_to(REPO_ROOT)
            except ValueError:
                pass
            if code != 0:
                failures += 1
                print(f"run_tidy: FAIL {shown}\n{output}")
            elif output.strip():
                # Warnings that are not errors still deserve eyeballs.
                print(f"run_tidy: warn {shown}\n{output}")
            else:
                print(f"run_tidy: ok   {shown}")

    if failures:
        print(f"run_tidy: {failures} file(s) failed", file=sys.stderr)
        return 1
    print(f"run_tidy: clean ({len(sources)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
