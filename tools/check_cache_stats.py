#!/usr/bin/env python3
"""CI gate for the solve cache: validate a hyperrec_cli result JSON and
assert the cache reports activity.

Usage: check_cache_stats.py RESULT.json [MIN_HITS]

Runs `python -m json.tool` over the file first (strict syntactic check, the
same gate CI applies to the plain CLI smoke), then asserts the schema-v2
cache object is present, enabled, and reports at least MIN_HITS hits
(default 1) — the contract for a --repeat=2 run over the same batch, where
every second-round job must be served from the cache.
"""
import json
import subprocess
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    min_hits = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    subprocess.run(
        [sys.executable, "-m", "json.tool", path],
        check=True,
        stdout=subprocess.DEVNULL,
    )

    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)

    assert doc["schema"] == "hyperrec-batch-result", doc["schema"]
    assert doc["version"] >= 2, "cache stats need schema v2"
    cache = doc["cache"]
    assert cache["enabled"] is True, "cache should be enabled for this run"
    assert cache["hits"] >= min_hits, (
        f"expected >= {min_hits} cache hits, got {cache['hits']}"
    )
    assert cache["misses"] >= 1, "first round must record misses"

    served = sum(1 for job in doc["jobs"] if job["cache"] == "hit")
    assert served == len(doc["jobs"]), (
        f"every job in the final round should be a hit, got {served}"
        f"/{len(doc['jobs'])}"
    )
    print(
        f"cache smoke OK: {cache['hits']} hits, {cache['misses']} misses, "
        f"{served}/{len(doc['jobs'])} jobs served from cache"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
