#!/usr/bin/env python3
"""Time-sliced differential fuzzing campaign driver for fuzz_harness.

Repeatedly invokes the fuzz_harness binary (all registered solvers vs the
exhaustive oracle on random small instances) with advancing seed ranges
until the time budget is spent.  On the first disagreement the harness's
reproducer dump is forwarded and the exact single-iteration reproducer
command is printed; the exit code is nonzero so CI fails the step.

Usage:
  tools/fuzz_solvers.py --binary build/examples/fuzz_harness --seconds 60
  tools/fuzz_solvers.py --binary ... --seed 1234 --chunk 100   # fixed start
  tools/fuzz_solvers.py --binary ... --mux --seconds 30        # multiplexer
                                                               # vs solo mode
  tools/fuzz_solvers.py --binary ... --hierarchical --seconds 30
                                                               # hierarchical
                                                               # vs exhaustive

CI runs a 60-second slice; the ctest `fuzz` label runs the harness's own
--smoke mode instead (no python needed there).
"""

import argparse
import pathlib
import subprocess
import sys
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="build/examples/fuzz_harness",
                        help="path to the fuzz_harness executable")
    parser.add_argument("--seconds", type=float, default=60.0,
                        help="time budget for the campaign")
    parser.add_argument("--seed", type=int, default=1,
                        help="first seed; chunk i starts at seed + i*chunk")
    parser.add_argument("--chunk", type=int, default=100,
                        help="iterations per harness invocation")
    parser.add_argument("--mux", action="store_true",
                        help="fuzz the StreamMultiplexer against solo "
                             "StreamingEngine replays instead of the "
                             "solver-vs-exhaustive oracle")
    parser.add_argument("--hierarchical", action="store_true",
                        help="fuzz solve_hierarchical (tiny segments, "
                             "certificate bracket) against the exhaustive "
                             "oracle instead of the flat solver line-up")
    args = parser.parse_args()

    binary = pathlib.Path(args.binary)
    if not binary.exists():
        print(f"fuzz_solvers: binary not found: {binary}", file=sys.stderr)
        return 2

    deadline = time.monotonic() + args.seconds
    seed = args.seed
    chunks = 0
    iterations = 0
    while time.monotonic() < deadline:
        command = [str(binary), f"--seed={seed}", f"--iters={args.chunk}"]
        if args.mux:
            command.append("--mux")
        if args.hierarchical:
            command.append("--hierarchical")
        proc = subprocess.run(command, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            print(f"\nfuzz_solvers: FAILED in chunk starting at seed {seed}",
                  file=sys.stderr)
            print("reproduce the chunk with:", file=sys.stderr)
            print(f"  {' '.join(command)}", file=sys.stderr)
            print("(the harness output above names the exact one-iteration "
                  "reproducer seed)", file=sys.stderr)
            return 1
        chunks += 1
        iterations += args.chunk
        seed += args.chunk

    print(f"fuzz_solvers: {iterations} iterations in {chunks} chunks "
          f"(seeds {args.seed}..{seed - 1}), no disagreements")
    return 0


if __name__ == "__main__":
    sys.exit(main())
