#!/usr/bin/env python3
"""End-to-end smoke for hyperrec_serve, the persistent solve daemon.

Starts the daemon on a private Unix socket and walks the whole protocol:

  1. solve: four fresh-shape generated jobs; each daemon response must be
     bit-identical (modulo timing fields) to a one-shot hyperrec_cli solve
     of the same job — same rng derivation, same machine, same winner,
     same schedule cost.
  2. repeat round: the same four jobs again; /statz must show the shared
     cache serving them (hits >= 4) — the whole point of a daemon.
  3. quotas: a tenant with a one-request budget gets reject="rate" with a
     positive retry_after_ms while the default tenant keeps completing.
  4. streaming: open a stream, append steps, flush, read the drained
     summary; malformed and mismatched trigger specs are rejected loudly.
  5. /statz: accounting identity received == admitted + rejected_* holds
     per tenant and fleet-wide; queue drains to depth 0.
  6. shutdown: graceful drain acks, the daemon exits 0.

Usage: serve_smoke.py --serve=BIN --cli=BIN [--socket=PATH]
Exits non-zero on the first failed check.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)


class Client:
    """One line-delimited JSON connection to the daemon."""

    def __init__(self, path, timeout=120.0):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(path)
        self.buffer = b""

    def request(self, payload):
        self.sock.sendall(json.dumps(payload).encode() + b"\n")
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                fail("daemon closed the connection mid-request")
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            fail(f"daemon answered a non-JSON line: {line!r}")

    def close(self):
        self.sock.close()


def strip_volatile(doc):
    """Drops timing/cache-context fields so solve payloads can be compared
    bit-for-bit across daemon and CLI runs."""
    volatile = {"elapsed_us", "cache", "warm_started"}
    if isinstance(doc, dict):
        return {k: strip_volatile(v) for k, v in doc.items()
                if k not in volatile}
    if isinstance(doc, list):
        return [strip_volatile(v) for v in doc]
    return doc


def cli_reference_job(cli, shape):
    """Solves the same generated job one-shot through hyperrec_cli.

    The daemon certifies solves by default, so the CLI reference passes
    --certify to keep the documents bit-identical (the bound is a
    deterministic function of the instance).
    """
    out = subprocess.run(
        [cli, "--batch=1", "--certify", f"--workload={shape['workload']}",
         f"--tasks={shape['tasks']}", f"--steps={shape['steps']}",
         f"--universe={shape['universe']}", f"--seed={shape['seed']}"],
        capture_output=True, text=True, timeout=300)
    check(out.returncode == 0, f"hyperrec_cli failed: {out.stderr}")
    doc = json.loads(out.stdout)
    check(doc["job_count"] == 1, "CLI reference must solve exactly one job")
    return doc["jobs"][0]


def wait_for_socket(path, process, deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if process.poll() is not None:
            fail(f"daemon exited early with status {process.returncode}")
        if os.path.exists(path):
            try:
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                probe.connect(path)
                probe.close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    fail("daemon socket never came up")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--serve", required=True)
    parser.add_argument("--cli", required=True)
    parser.add_argument("--socket", default="")
    args = parser.parse_args()

    sock_path = args.socket or os.path.join(
        tempfile.mkdtemp(prefix="hyperrec-smoke-"), "serve.sock")

    # --- 0. malformed flags are startup errors, never silent policy ------
    for bad in ("--tenant-quota=limited:0.5:1junk",
                "--tenant-quota=limited:0.5:1:9",
                "--tenant-quota=limited:fast:1",
                "--trigger=spkie:2.0"):
        probe = subprocess.run(
            [args.serve, f"--socket={sock_path}.probe", bad],
            capture_output=True, text=True, timeout=30)
        check(probe.returncode == 1,
              f"daemon accepted malformed flag {bad!r} "
              f"(exit {probe.returncode})")
        check("tenant-quota" in probe.stderr or "trigger" in probe.stderr,
              f"startup error for {bad!r} should name the flag, "
              f"got: {probe.stderr!r}")
    print("serve_smoke: malformed flags rejected loudly ok")

    daemon = subprocess.Popen(
        [args.serve, f"--socket={sock_path}", "--workers=2",
         "--queue-capacity=32", "--cache-capacity=64",
         "--tenant-quota=limited:0.000001:1", "--trigger=steps:16",
         "--window=64"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        wait_for_socket(sock_path, daemon)
        client = Client(sock_path)

        # --- 1. fresh-shape solves, bit-identical to the CLI -------------
        # Distinct shapes on purpose: a fresh shape has an empty warm-start
        # index in the daemon, so its solve is exactly the CLI's solve.
        shapes = [
            {"workload": "phased", "tasks": 2, "steps": 24, "universe": 12,
             "seed": 7},
            {"workload": "random", "tasks": 2, "steps": 25, "universe": 12,
             "seed": 7},
            {"workload": "bursty", "tasks": 3, "steps": 20, "universe": 10,
             "seed": 11},
            {"workload": "periodic", "tasks": 2, "steps": 30, "universe": 8,
             "seed": 3},
        ]
        for shape in shapes:
            response = client.request(
                {"op": "solve", "tenant": "acme", "priority": 1,
                 "id": shape["workload"], "job": dict(shape)})
            check(response.get("schema") == "hyperrec-batch-result",
                  f"solve answered {response}")
            check(response["version"] == 6, "result schema must be v6")
            check(response["tenant"] == "acme", "tenant echo missing")
            check(response["queue"]["priority"] == 1, "queue envelope missing")
            check(response["job_count"] == 1, "daemon solves one job per request")
            got = strip_volatile(response["jobs"][0])
            want = strip_volatile(cli_reference_job(args.cli, shape))
            check(got == want,
                  f"daemon/CLI divergence for {shape['workload']}:\n"
                  f"  daemon: {json.dumps(got, sort_keys=True)}\n"
                  f"  cli:    {json.dumps(want, sort_keys=True)}")
        print("serve_smoke: 4 fresh solves bit-identical to hyperrec_cli")

        # --- 2. repeat round must be served by the shared cache ----------
        for shape in shapes:
            response = client.request(
                {"op": "solve", "tenant": "acme", "job": dict(shape)})
            check(response["jobs"][0]["cache"] == "hit",
                  f"repeat of {shape['workload']} was not a cache hit")
        statz = client.request({"op": "statz"})
        check(statz["cache"]["hits"] >= 4,
              f"expected >=4 shared-cache hits, statz says {statz['cache']}")
        print(f"serve_smoke: repeat round hit the shared cache "
              f"({statz['cache']['hits']} hits)")

        # --- 3. tenant quota: limited tenant rejected, others fine -------
        first = client.request(
            {"op": "solve", "tenant": "limited", "id": "q1",
             "job": dict(shapes[0])})
        check(first.get("schema") == "hyperrec-batch-result",
              f"limited tenant's first request should be admitted: {first}")
        rejected = client.request(
            {"op": "solve", "tenant": "limited", "id": "q2",
             "job": dict(shapes[0])})
        check(rejected.get("reject") == "rate",
              f"limited tenant's second request should hit the quota: "
              f"{rejected}")
        check(rejected.get("retry_after_ms", 0) > 0,
              "rate rejection must suggest a positive retry_after_ms")
        ok_again = client.request(
            {"op": "solve", "tenant": "acme", "job": dict(shapes[1])})
        check(ok_again.get("schema") == "hyperrec-batch-result",
              "default-quota tenant must keep completing during rejections")
        print(f"serve_smoke: quota rejection ok "
              f"(retry_after_ms={rejected['retry_after_ms']})")

        # --- 4. streaming tenant through the shared multiplexer ----------
        bad = client.request(
            {"op": "stream_open", "universes": [6, 6],
             "trigger": "spkie:2.0"})
        check("error" in bad and "spkie" in bad["error"],
              f"malformed trigger spec must be rejected loudly: {bad}")
        mismatched = client.request(
            {"op": "stream_open", "universes": [6, 6], "trigger": "steps:4"})
        check("error" in mismatched and "fleet-wide" in mismatched["error"],
              f"mismatched trigger spec must be an explicit error: "
              f"{mismatched}")
        opened = client.request(
            {"op": "stream_open", "tenant": "acme", "universes": [6, 6],
             "trigger": "steps:16"})
        check(opened.get("ok") is True and "stream" in opened,
              f"stream_open failed: {opened}")
        stream = opened["stream"]
        for i in range(40):
            ack = client.request(
                {"op": "stream_append", "stream": stream,
                 "step": [{"bits": [i % 6]}, {"bits": [(i + 1) % 6, 2]}]})
            check(ack.get("ok") is True, f"append {i} failed: {ack}")
        check(client.request(
            {"op": "stream_flush", "stream": stream}).get("ok") is True,
            "stream_flush failed")
        summary = client.request({"op": "stream_result", "stream": stream})
        check(summary.get("ok") is True and summary["steps"] == 40,
              f"stream summary wrong: {summary}")
        check(summary["resolves"] >= 2 and not summary["poisoned"],
              f"stream should have re-solved without poisoning: {summary}")
        print(f"serve_smoke: stream {stream} ran 40 steps, "
              f"{summary['resolves']} resolves")

        # --- 5. /statz accounting identity -------------------------------
        statz = client.request({"op": "statz"})
        req = statz["requests"]
        check(req["received"] == req["admitted"] + req["rejected_rate"]
              + req["rejected_backpressure"] + req["rejected_draining"],
              f"fleet accounting identity broken: {req}")
        for tenant in statz["tenants"]:
            check(tenant["received"] == tenant["admitted"]
                  + tenant["rejected_rate"] + tenant["rejected_backpressure"]
                  + tenant["rejected_draining"],
                  f"tenant accounting identity broken: {tenant}")
        check(statz["queue"]["depth"] == 0, "queue must drain between bursts")
        check(statz["latency"]["solve"]["count"] >= 10,
              "solve latency sketch must have recorded the solves")
        check(statz["latency"]["solve"]["p99_us"]
              >= statz["latency"]["solve"]["p50_us"],
              "latency quantiles must be monotone")
        names = [t["name"] for t in statz["tenants"]]
        check("acme" in names and "limited" in names,
              f"tenants missing from statz: {names}")
        print("serve_smoke: statz accounting identity holds")

        # --- 6. graceful shutdown ----------------------------------------
        bye = client.request({"op": "shutdown", "id": "bye"})
        check(bye.get("ok") is True, f"shutdown not acked: {bye}")
        client.close()
        status = daemon.wait(timeout=60)
        check(status == 0, f"daemon exited with status {status}")
        print("serve_smoke: graceful shutdown, daemon exited 0")
        print("serve_smoke: OK")
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()
        if os.path.exists(sock_path) and not args.socket:
            try:
                os.unlink(sock_path)
                os.rmdir(os.path.dirname(sock_path))
            except OSError:
                pass


if __name__ == "__main__":
    main()
