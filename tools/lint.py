#!/usr/bin/env python3
"""Repo-specific lint rules that grep can prove.

Rules (each reported as ``file:line: [rule-id] message``):

  naive-call     `_naive` oracles are test-only reference implementations;
                 no call may appear in src/, examples/ or bench/.  The
                 definitions live in src/model/trace* (allowlisted).
  raw-mutex      all locking goes through hyperrec::Mutex and friends
                 (support/thread_annotations.hpp) so it is capability-
                 annotated and lock-order validated; raw std lock types are
                 banned in src/ outside the two wrapper files.
  naked-new      no naked `new` / `delete` expressions in src/ — ownership
                 is unique_ptr/shared_ptr/containers.  lock_order.cpp's
                 immortal singleton is the one documented exception.
  hot-loop-alloc no `std::vector` construction inside regions fenced with
                 `// lint: hot-loop begin` ... `// lint: hot-loop end`
                 (the SA/GA/coordinate-descent inner loops — ROADMAP item
                 3's allocation audit, enforced).
  word-kernel    word algebra goes through the runtime-dispatched kernel
                 layer (support/bitset_kernels.hpp) — raw
                 `__builtin_popcount*` / `std::popcount` calls are banned
                 in src/, examples/ and bench/ outside that layer, so hot
                 loops cannot quietly fork from the dispatched kernels
                 (use kernels::popcount_word for one-off words).

Run from anywhere: `python3 tools/lint.py` (add `--root DIR` to lint a
different tree, `--self-test` to prove every rule fires on a seeded
fixture tree).  Exit code 0 = clean, 1 = violations, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

# Relative paths (posix) allowed to hold raw std lock types.
RAW_MUTEX_ALLOWLIST = {
    "src/support/thread_annotations.hpp",
    "src/support/lock_order.hpp",
    "src/support/lock_order.cpp",
}

# Relative paths allowed a naked new/delete (each needs a comment in the
# file explaining why; see lock_order.cpp's immortal-singleton note).
NAKED_NEW_ALLOWLIST = {
    "src/support/lock_order.cpp",
}

# `_naive` definitions live here; everything else may not mention them.
NAIVE_DEF_PREFIX = "src/model/trace"

# The one home for raw popcount intrinsics (the kernel layer itself).
WORD_KERNEL_ALLOWLIST = {
    "src/support/bitset_kernels.hpp",
    "src/support/bitset_kernels.cpp",
}

RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable)\b"
)
NAIVE_RE = re.compile(r"\w*_naive\b")
NEW_RE = re.compile(r"\bnew\b\s*(?:\(|[A-Za-z_:])")
DELETE_RE = re.compile(r"\bdelete\b\s*(?:\[\s*\]\s*)?[A-Za-z_:(*]")
VECTOR_RE = re.compile(r"\bstd::vector\s*<")
POPCOUNT_RE = re.compile(r"__builtin_popcount\w*|\bstd::popcount\b")

HOT_LOOP_BEGIN = "lint: hot-loop begin"
HOT_LOOP_END = "lint: hot-loop end"

STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')


def strip_code_line(line: str) -> str:
    """Removes string/char literals and // comments so the rules match
    code, not prose.  (Block comments are handled by the caller.)"""
    line = STRING_RE.sub('""', line)
    cut = line.find("//")
    if cut >= 0:
        line = line[:cut]
    return line


def code_lines(text: str):
    """Yields (1-based line number, comment/string-stripped code)."""
    in_block = False
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield number, ""
                continue
            line = line[end + 2:]
            in_block = False
        # Strip any /* ... */ runs (possibly several; possibly unclosed).
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " + line[end + 2:]
        yield number, strip_code_line(line)


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self, root: Path) -> str:
        try:
            shown = self.path.relative_to(root)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.rule}] {self.message}"


def lint_file(path: Path, rel: str, violations: list[Violation]) -> None:
    text = path.read_text(encoding="utf-8", errors="replace")
    in_src = rel.startswith("src/")
    check_naive = not rel.startswith(NAIVE_DEF_PREFIX)
    check_mutex = in_src and rel not in RAW_MUTEX_ALLOWLIST
    check_new = in_src and rel not in NAKED_NEW_ALLOWLIST
    check_popcount = rel not in WORD_KERNEL_ALLOWLIST

    # Raw-line scan for the hot-loop fences (they live in comments).
    fenced: set[int] = set()
    depth = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        if HOT_LOOP_BEGIN in raw:
            depth += 1
            continue
        if HOT_LOOP_END in raw:
            depth = max(0, depth - 1)
            continue
        if depth > 0:
            fenced.add(number)

    for number, code in code_lines(text):
        if not code:
            continue
        if check_naive and NAIVE_RE.search(code):
            violations.append(Violation(
                path, number, "naive-call",
                "_naive oracles are test-only; call the indexed/stats "
                "variant instead"))
        if check_mutex and RAW_MUTEX_RE.search(code):
            violations.append(Violation(
                path, number, "raw-mutex",
                "use hyperrec::Mutex/MutexLock/CondVar from "
                "support/thread_annotations.hpp"))
        if check_new and in_src:
            stripped = code.replace("= delete", "")
            if NEW_RE.search(stripped) or DELETE_RE.search(stripped):
                violations.append(Violation(
                    path, number, "naked-new",
                    "no naked new/delete in src/ — use smart pointers or "
                    "containers"))
        if check_popcount and POPCOUNT_RE.search(code):
            violations.append(Violation(
                path, number, "word-kernel",
                "raw popcount outside support/bitset_kernels — use the "
                "kernels:: wrappers (kernels::popcount_word for one word)"))
        if in_src and number in fenced and VECTOR_RE.search(code):
            violations.append(Violation(
                path, number, "hot-loop-alloc",
                "no std::vector construction inside a `lint: hot-loop` "
                "fence — hoist the buffer out of the loop"))


def lint_tree(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    for top in ("src", "examples", "bench"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                rel = path.relative_to(root).as_posix()
                lint_file(path, rel, violations)
    return violations


# --- self-test fixtures: one seeded violation per rule -----------------------

FIXTURES = {
    # rule id -> (relative path, file contents, expected violation line)
    "naive-call": (
        "src/core/bad_naive.cpp",
        "int use() { return helper_naive(0, 1); }\n",
        1,
    ),
    "raw-mutex": (
        "src/core/bad_mutex.cpp",
        "#include <mutex>\nstd::mutex bad;\n",
        2,
    ),
    "naked-new": (
        "src/core/bad_new.cpp",
        "int* leak() { return new int(7); }\n",
        1,
    ),
    "word-kernel": (
        "src/core/bad_popcount.cpp",
        "#include <bit>\n"
        "int count(unsigned long long w) {\n"
        "  return __builtin_popcountll(w) + std::popcount(w);\n"
        "}\n",
        3,
    ),
    "hot-loop-alloc": (
        "src/core/bad_hot.cpp",
        "void f() {\n"
        "  // lint: hot-loop begin\n"
        "  for (int i = 0; i < 8; ++i) {\n"
        "    std::vector<int> scratch(8);\n"
        "  }\n"
        "  // lint: hot-loop end\n"
        "}\n",
        4,
    ),
}

CLEAN_FIXTURE = (
    "src/core/clean.cpp",
    '#include "support/thread_annotations.hpp"\n'
    "// prose may say std::mutex, std::popcount, new ideas or _naive ones\n"
    "hyperrec::Mutex ok{\"clean\"};\n"
    "void g() {\n"
    "  // lint: hot-loop begin\n"
    "  for (int i = 0; i < 8; ++i) { int x = i; (void)x; }\n"
    "  // lint: hot-loop end\n"
    "  std::vector<int> fine_outside_fence(8);\n"
    "}\n"
    "struct S { S(const S&) = delete; };\n",
)


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="hyperrec-lint-") as tmp:
        root = Path(tmp)
        for rule, (rel, contents, line) in FIXTURES.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents)
        clean_path = root / CLEAN_FIXTURE[0]
        clean_path.parent.mkdir(parents=True, exist_ok=True)
        clean_path.write_text(CLEAN_FIXTURE[1])

        found = lint_tree(root)
        by_file = {}
        for violation in found:
            rel = violation.path.relative_to(root).as_posix()
            by_file.setdefault(rel, []).append(violation)

        for rule, (rel, _contents, line) in FIXTURES.items():
            hits = [v for v in by_file.get(rel, []) if v.rule == rule]
            if any(v.line == line for v in hits):
                print(f"self-test: {rule}: fired at {rel}:{line} (ok)")
            else:
                print(f"self-test: {rule}: MISSED expected violation at "
                      f"{rel}:{line}", file=sys.stderr)
                failures += 1

        clean_rel = CLEAN_FIXTURE[0]
        stray = by_file.get(clean_rel, [])
        if stray:
            for violation in stray:
                print(f"self-test: FALSE POSITIVE "
                      f"{violation.render(root)}", file=sys.stderr)
            failures += 1
        else:
            print("self-test: clean fixture: no false positives (ok)")

    if failures:
        print(f"self-test: FAILED ({failures} problem(s))", file=sys.stderr)
        return 1
    print("self-test: all rules fire exactly as expected")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="prove every rule fires on a seeded fixture")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"lint: no src/ under {root}", file=sys.stderr)
        return 2
    violations = lint_tree(root)
    for violation in violations:
        print(violation.render(root))
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
