#!/usr/bin/env python3
"""Compare bench --smoke wall times against bench/BENCH_BASELINE.json.

Runs every bench executable found in <build-dir>/bench in smoke mode,
measures wall time, and flags regressions of more than --threshold
(default 25%) against the recorded baseline.  Small absolute drifts are
ignored (--min-delta, default 0.05 s) because sub-100ms smoke runs are
dominated by process start-up noise on shared CI hardware.

Intended as a *non-blocking* CI step: the exit code is 1 when a regression
is flagged so the step shows red, but the workflow marks it
continue-on-error.

A second, same-session A/B mode compares two build trees of the *same
machine and day* directly — the measurement the baseline's own caveat says
to prefer.  Rounds are interleaved (before, after, before, after, ...) so
neither side monopolises a warm cache or a quiet scheduler slice, and the
per-side minimum over rounds is reported (minimum, not mean: on a shared
1-core box the distribution is one-sided noise over a true floor).
Google-Benchmark benches (bench_solver_scaling) are recognised and run
with --benchmark_format=json so the A/B report covers individual BM_*
timings rather than process wall time.

Usage:
  tools/compare_bench.py --build-dir build              # compare
  tools/compare_bench.py --build-dir build --update     # rewrite baseline
  tools/compare_bench.py --before build-old --after build-new \
      [--rounds 5] [--benches bench_streaming,bench_solver_scaling]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import time

DESCRIPTION = (
    "Smoke-mode (--smoke) baseline per bench: wall time and captured "
    "stdout. Trajectory anchor for future performance PRs; timings "
    "measured on the CI container, 1 core. CAUTION: this box is shared "
    "and absolute timings drift 20%+ between recording days — compare "
    "performance within one session (before/after builds of the same "
    "day), not against these historical numbers; tools/compare_bench.py "
    "applies a relative threshold plus an absolute min-delta for exactly "
    "this reason."
)


def run_bench(executable: pathlib.Path) -> dict:
    start = time.monotonic()
    proc = subprocess.run(
        [str(executable), "--smoke"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    wall = time.monotonic() - start
    return {
        "exit_code": proc.returncode,
        "wall_seconds": round(wall, 3),
        "stdout": proc.stdout.rstrip("\n").split("\n") if proc.stdout else [],
    }


# Benches driven by Google Benchmark: A/B mode runs these with
# --benchmark_format=json and compares per-BM_* real times instead of
# process wall time.
GBENCH_BENCHES = {"bench_solver_scaling"}


def wall_seconds(executable: pathlib.Path, extra_args: list) -> float:
    start = time.monotonic()
    proc = subprocess.run(
        [str(executable)] + extra_args,
        capture_output=True,
        text=True,
        timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{executable} exited {proc.returncode}:\n{proc.stderr}")
    return time.monotonic() - start


def gbench_times(executable: pathlib.Path, bench_filter: str) -> dict:
    """Runs a Google-Benchmark binary, returns {benchmark name: seconds}."""
    cmd = [str(executable), "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=1200)
    if proc.returncode != 0:
        raise RuntimeError(
            f"{executable} exited {proc.returncode}:\n{proc.stderr}")
    report = json.loads(proc.stdout)
    times = {}
    for entry in report.get("benchmarks", []):
        if "real_time" not in entry:  # error / aggregate-only entries
            continue
        scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[
            entry.get("time_unit", "ns")]
        times[entry["name"]] = entry["real_time"] * scale
    return times


def merge_min(totals: dict, sample: dict) -> None:
    for name, seconds in sample.items():
        if name not in totals or seconds < totals[name]:
            totals[name] = seconds


def run_ab(args) -> int:
    before_dir = pathlib.Path(args.before) / "bench"
    after_dir = pathlib.Path(args.after) / "bench"
    if args.benches:
        names = args.benches.split(",")
    else:
        names = sorted(
            p.name for p in after_dir.glob("bench_*")
            if p.is_file() and p.stat().st_mode & 0o111
            and (before_dir / p.name).is_file()
        )
    if not names:
        print("no common bench executables to A/B", file=sys.stderr)
        return 2

    # {report row: [before seconds, after seconds]}; min over rounds.
    before_times, after_times = {}, {}
    for bench in names:
        before_exe = before_dir / bench
        after_exe = after_dir / bench
        for exe, side in ((before_exe, "before"), (after_exe, "after")):
            if not exe.is_file():
                print(f"missing executable: {exe}", file=sys.stderr)
                return 2
        for _ in range(args.rounds):
            if bench in GBENCH_BENCHES:
                merge_min(before_times,
                          {f"{bench}:{k}": v for k, v in
                           gbench_times(before_exe, args.filter).items()})
                merge_min(after_times,
                          {f"{bench}:{k}": v for k, v in
                           gbench_times(after_exe, args.filter).items()})
            else:
                merge_min(before_times,
                          {bench: wall_seconds(before_exe, ["--smoke"])})
                merge_min(after_times,
                          {bench: wall_seconds(after_exe, ["--smoke"])})

    print(f"A/B over {args.rounds} interleaved rounds "
          f"(min per side; negative = faster after):")
    width = max(len(name) for name in after_times)
    for name in sorted(after_times):
        if name not in before_times:
            continue
        before = before_times[name]
        after = after_times[name]
        change = (after / before - 1.0) * 100.0 if before > 0 else 0.0
        print(f"  {name:<{width}}  {before * 1e3:10.3f}ms -> "
              f"{after * 1e3:10.3f}ms  {change:+7.1f}%")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "bench" / "BENCH_BASELINE.json"),
    )
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression threshold (0.25 = +25%%)")
    parser.add_argument("--min-delta", type=float, default=0.05,
                        help="ignore regressions smaller than this many "
                             "seconds of absolute drift")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run instead of "
                             "comparing")
    parser.add_argument("--before",
                        help="A/B mode: build dir of the 'before' tree")
    parser.add_argument("--after",
                        help="A/B mode: build dir of the 'after' tree")
    parser.add_argument("--rounds", type=int, default=5,
                        help="A/B mode: interleaved measurement rounds")
    parser.add_argument("--benches",
                        help="A/B mode: comma-separated bench names "
                             "(default: every bench present in both trees)")
    parser.add_argument("--filter", default="",
                        help="A/B mode: --benchmark_filter for "
                             "Google-Benchmark benches")
    args = parser.parse_args()

    if bool(args.before) != bool(args.after):
        parser.error("--before and --after must be given together")
    if args.before:
        return run_ab(args)

    bench_dir = pathlib.Path(args.build_dir) / "bench"
    executables = sorted(
        p for p in bench_dir.glob("bench_*")
        if p.is_file() and p.stat().st_mode & 0o111
    )
    if not executables:
        print(f"no bench executables under {bench_dir}", file=sys.stderr)
        return 2

    results = {p.name: run_bench(p) for p in executables}

    baseline_path = pathlib.Path(args.baseline)
    if args.update:
        payload = {
            "description": DESCRIPTION,
            "command": "./build/bench/<name> --smoke",
            "benches": results,
        }
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline rewritten: {baseline_path} "
              f"({len(results)} benches)")
        return 0

    baseline = json.loads(baseline_path.read_text())["benches"]
    regressions = []
    for name, result in sorted(results.items()):
        if result["exit_code"] != 0:
            regressions.append(f"{name}: smoke run failed "
                               f"(exit {result['exit_code']})")
            continue
        base = baseline.get(name)
        if base is None:
            print(f"  NEW  {name}: {result['wall_seconds']:.3f}s "
                  "(no baseline entry)")
            continue
        before = base["wall_seconds"]
        after = result["wall_seconds"]
        delta = after - before
        ratio = after / before if before > 0 else float("inf")
        marker = "ok"
        if delta > args.min_delta and ratio > 1.0 + args.threshold:
            marker = "REGRESSION"
            regressions.append(
                f"{name}: {before:.3f}s -> {after:.3f}s "
                f"({(ratio - 1.0) * 100.0:+.0f}%)")
        print(f"  {marker:>10}  {name}: {before:.3f}s -> {after:.3f}s")

    if regressions:
        print("\nflagged smoke-mode regressions (>"
              f"{args.threshold * 100:.0f}% and >{args.min_delta}s):")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("\nno smoke-mode regressions flagged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
