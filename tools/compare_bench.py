#!/usr/bin/env python3
"""Compare bench --smoke wall times against bench/BENCH_BASELINE.json.

Runs every bench executable found in <build-dir>/bench in smoke mode,
measures wall time, and flags regressions of more than --threshold
(default 25%) against the recorded baseline.  Small absolute drifts are
ignored (--min-delta, default 0.05 s) because sub-100ms smoke runs are
dominated by process start-up noise on shared CI hardware.

Intended as a *non-blocking* CI step: the exit code is 1 when a regression
is flagged so the step shows red, but the workflow marks it
continue-on-error.

Usage:
  tools/compare_bench.py --build-dir build              # compare
  tools/compare_bench.py --build-dir build --update     # rewrite baseline
"""

import argparse
import json
import pathlib
import subprocess
import sys
import time

DESCRIPTION = (
    "Smoke-mode (--smoke) baseline per bench: wall time and captured "
    "stdout. Trajectory anchor for future performance PRs; timings "
    "measured on the CI container, 1 core. CAUTION: this box is shared "
    "and absolute timings drift 20%+ between recording days — compare "
    "performance within one session (before/after builds of the same "
    "day), not against these historical numbers; tools/compare_bench.py "
    "applies a relative threshold plus an absolute min-delta for exactly "
    "this reason."
)


def run_bench(executable: pathlib.Path) -> dict:
    start = time.monotonic()
    proc = subprocess.run(
        [str(executable), "--smoke"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    wall = time.monotonic() - start
    return {
        "exit_code": proc.returncode,
        "wall_seconds": round(wall, 3),
        "stdout": proc.stdout.rstrip("\n").split("\n") if proc.stdout else [],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "bench" / "BENCH_BASELINE.json"),
    )
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression threshold (0.25 = +25%%)")
    parser.add_argument("--min-delta", type=float, default=0.05,
                        help="ignore regressions smaller than this many "
                             "seconds of absolute drift")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run instead of "
                             "comparing")
    args = parser.parse_args()

    bench_dir = pathlib.Path(args.build_dir) / "bench"
    executables = sorted(
        p for p in bench_dir.glob("bench_*")
        if p.is_file() and p.stat().st_mode & 0o111
    )
    if not executables:
        print(f"no bench executables under {bench_dir}", file=sys.stderr)
        return 2

    results = {p.name: run_bench(p) for p in executables}

    baseline_path = pathlib.Path(args.baseline)
    if args.update:
        payload = {
            "description": DESCRIPTION,
            "command": "./build/bench/<name> --smoke",
            "benches": results,
        }
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline rewritten: {baseline_path} "
              f"({len(results)} benches)")
        return 0

    baseline = json.loads(baseline_path.read_text())["benches"]
    regressions = []
    for name, result in sorted(results.items()):
        if result["exit_code"] != 0:
            regressions.append(f"{name}: smoke run failed "
                               f"(exit {result['exit_code']})")
            continue
        base = baseline.get(name)
        if base is None:
            print(f"  NEW  {name}: {result['wall_seconds']:.3f}s "
                  "(no baseline entry)")
            continue
        before = base["wall_seconds"]
        after = result["wall_seconds"]
        delta = after - before
        ratio = after / before if before > 0 else float("inf")
        marker = "ok"
        if delta > args.min_delta and ratio > 1.0 + args.threshold:
            marker = "REGRESSION"
            regressions.append(
                f"{name}: {before:.3f}s -> {after:.3f}s "
                f"({(ratio - 1.0) * 100.0:+.0f}%)")
        print(f"  {marker:>10}  {name}: {before:.3f}s -> {after:.3f}s")

    if regressions:
        print("\nflagged smoke-mode regressions (>"
              f"{args.threshold * 100:.0f}% and >{args.min_delta}s):")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("\nno smoke-mode regressions flagged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
