// Scaling study backing Theorem 1's message: the switch-model interval DPs
// are polynomial while the exhaustive/partial and implicitly-specified
// general problems blow up exponentially.
//
// Google-benchmark timings:
//   * BM_SingleTaskDp    — O(n²) in the trace length,
//   * BM_AlignedDp       — O(m·n²),
//   * BM_CoordDescent    — polynomial local search on partial schedules,
//   * BM_Exhaustive      — 2^{m(n−1)} schedules (tiny n only),
//   * BM_ImplicitGeneral — 2^{|X|} hypercontexts per interval (tiny |X|).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/aligned_dp.hpp"
#include "core/coordinate_descent.hpp"
#include "core/exhaustive.hpp"
#include "core/implicit_general.hpp"
#include "core/interval_dp.hpp"
#include "workload/generators.hpp"

namespace {

using namespace hyperrec;

TaskTrace phased_trace(std::size_t steps, std::size_t universe,
                       std::uint64_t seed) {
  workload::PhasedConfig config;
  config.steps = steps;
  config.universe = universe;
  config.phases = std::max<std::size_t>(2, steps / 32);
  Xoshiro256 rng(seed);
  return workload::make_phased(config, rng);
}

void BM_SingleTaskDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const TaskTrace trace = phased_trace(n, 48, 7);
  // Stats built once at the boundary (BM_InstanceBuild prices that step).
  const TaskTraceStats stats(trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_single_task_switch(stats, 48).total);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_SingleTaskDp)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

void BM_AlignedDp(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  workload::MultiPhasedConfig config;
  config.tasks = m;
  config.task_config.steps = 256;
  config.task_config.universe = 16;
  // The instance is built once at the boundary; the timed loop measures
  // pure solving against the shared precomputation.
  const SolveInstance instance(workload::make_multi_phased(config, 11),
                               MachineSpec::uniform_local(m, 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_aligned_dp(instance).total());
  }
}
BENCHMARK(BM_AlignedDp)->DenseRange(1, 8, 1);

void BM_CoordDescent(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  workload::MultiPhasedConfig config;
  config.tasks = 4;
  config.task_config.steps = n;
  config.task_config.universe = 12;
  const SolveInstance instance(workload::make_multi_phased(config, 5),
                               MachineSpec::uniform_local(4, 12));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_coordinate_descent(instance).total());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_CoordDescent)->RangeMultiplier(2)->Range(32, 256)->Complexity();

void BM_Exhaustive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  workload::MultiPhasedConfig config;
  config.tasks = 2;
  config.task_config.steps = n;
  config.task_config.universe = 6;
  const SolveInstance instance(workload::make_multi_phased(config, 3),
                               MachineSpec::uniform_local(2, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_exhaustive(instance).total());
  }
  state.SetLabel("2^{2(n-1)} schedules");
}
BENCHMARK(BM_Exhaustive)->DenseRange(4, 10, 1);

// Cost of building the SolveInstance IR itself (validation + sparse-table
// unions + presence counts) — the one-off price the whole portfolio shares.
void BM_InstanceBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  workload::MultiPhasedConfig config;
  config.tasks = 4;
  config.task_config.steps = n;
  config.task_config.universe = 48;
  const auto trace = workload::make_multi_phased(config, 17);
  const auto machine = MachineSpec::uniform_local(4, 48);
  for (auto _ : state) {
    const SolveInstance instance(trace, machine);
    benchmark::DoNotOptimize(&instance);
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_InstanceBuild)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

void BM_ImplicitGeneral(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  workload::PhasedConfig config;
  config.steps = 12;
  config.universe = universe;
  Xoshiro256 rng(13);
  const TaskTrace trace = workload::make_phased(config, rng);
  std::vector<DynamicBitset> sequence;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sequence.push_back(trace.at(i).local);
  }
  ImplicitGeneralModel model;
  model.universe = universe;
  model.cost = [](const DynamicBitset& h) {
    return static_cast<Cost>(h.count());
  };
  model.init = [](const DynamicBitset&) { return Cost{8}; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_implicit_general(model, sequence).total);
  }
  state.SetLabel("2^{|X|} hypercontexts");
}
BENCHMARK(BM_ImplicitGeneral)->DenseRange(6, 16, 2);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): under --smoke, run only the
// smallest instance of each benchmark family with a minimal measuring time,
// so ctest proves the bench still compiles and runs in well under a second.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string filter = "--benchmark_filter="
      "BM_SingleTaskDp/64$|BM_AlignedDp/1$|BM_CoordDescent/32$|"
      "BM_Exhaustive/4$|BM_ImplicitGeneral/6$|BM_InstanceBuild/64$";
  // Note: plain seconds value — the "0.01s" suffix form needs benchmark
  // >= 1.8, and the floor here is 1.7.
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) {
    args.push_back(filter.data());
    args.push_back(min_time.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
