// Fleet-scale multiplexed streaming study: N concurrent streams through one
// StreamMultiplexer over the shared pool and ONE shared solve cache.
//
// The multiplexer's contract has two halves, and phase 1 gates both:
//
//   * bit-identity: a multiplexed stream publishes exactly the schedule,
//     cost, re-solve count and trigger sequence its solo StreamingEngine
//     run would.  Spot-checked on three streams (first / middle / last of
//     the fleet) against fresh cache-less solo replays.
//
//   * re-solves off the append path: append_step only enqueues — window
//     re-solves run as pool jobs behind the producer.  Proven structurally
//     (no timing thresholds, so the gate holds on a loaded single-core CI
//     box): either at least one sampled snapshot lagged the producer
//     (publication staleness > 0 at the sample point), or the enqueue loop
//     finished in under half of the summed window-solve wall time — a
//     producer that solved windows inline would have absorbed all of it.
//
//   * accounting: accepted == applied == N x steps, no faults, no drops.
//
// Phase 2 (informative) sweeps the fleet size — N = 1k and 10k full-size —
// and reports appends/sec, re-solves/sec and publication staleness, the
// numbers a serving deployment watches.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "streaming/stream_multiplexer.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace hyperrec;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool schedules_equal(const MultiTaskSchedule& a, const MultiTaskSchedule& b) {
  if (a.tasks.size() != b.tasks.size() ||
      a.global_boundaries != b.global_boundaries) {
    return false;
  }
  for (std::size_t j = 0; j < a.tasks.size(); ++j) {
    if (a.tasks[j].n() != b.tasks[j].n() ||
        a.tasks[j].starts() != b.tasks[j].starts()) {
      return false;
    }
  }
  return true;
}

struct FleetRun {
  std::uint64_t appends = 0;
  std::uint64_t resolves = 0;
  double enqueue_s = 0.0;
  double total_s = 0.0;
  double resolve_total_s = 0.0;  ///< summed window-solve wall time
  std::size_t stale_max = 0;     ///< sampled right after the enqueue loop
  double stale_mean = 0.0;
  bool accounted = false;  ///< accepted == applied, no faults, no drops
};

streaming::StreamingConfig stream_config(std::size_t window,
                                         std::size_t every_steps) {
  streaming::StreamingConfig config;
  config.window = window;
  config.trigger.every_steps = every_steps;
  config.portfolio.solvers = {"aligned-dp", "greedy-w8"};
  return config;
}

std::vector<MultiTaskTrace> make_fleet_traces(std::size_t n,
                                              std::size_t tasks,
                                              std::size_t steps,
                                              std::size_t universe) {
  const std::vector<std::string>& families = workload::family_names();
  Xoshiro256 root(0xF1EE7);
  std::vector<MultiTaskTrace> traces;
  traces.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Xoshiro256 rng = root.split(i);
    traces.push_back(workload::make_multi_family(
        families[i % families.size()], tasks, steps, universe, rng));
  }
  return traces;
}

/// Streams every trace through one multiplexer (appends interleaved
/// round-robin, so the fleet is genuinely concurrent) and collects the
/// rates, staleness sample and accounting flags.
FleetRun run_fleet(streaming::StreamMultiplexer& mux,
                   const std::vector<MultiTaskTrace>& traces,
                   std::size_t universe) {
  FleetRun run;
  const std::size_t n = traces.size();
  const MachineSpec machine = MachineSpec::local_only(
      std::vector<std::size_t>(traces[0].task_count(), universe));
  for (std::size_t i = 0; i < n; ++i) mux.open_stream(machine);

  const Clock::time_point start = Clock::now();
  const std::size_t steps = traces[0].steps();
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      mux.append_step(i, traces[i].step(s));
    }
  }
  run.enqueue_s = seconds_since(start);
  run.appends = static_cast<std::uint64_t>(n) * steps;

  std::size_t stale_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto snap = mux.snapshot(i);
    const std::size_t published = snap ? snap->steps : 0;
    const std::size_t stale = steps - std::min(steps, published);
    run.stale_max = std::max(run.stale_max, stale);
    stale_sum += stale;
  }
  run.stale_mean = static_cast<double>(stale_sum) / static_cast<double>(n);

  mux.flush_all();
  mux.drain();
  run.total_s = seconds_since(start);

  const streaming::FleetStats fleet = mux.fleet_stats();
  run.resolves = fleet.resolves;
  run.accounted = fleet.accepted == run.appends &&
                  fleet.applied == run.appends && fleet.failures == 0 &&
                  fleet.dropped == 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const streaming::WindowReport& window : mux.engine(i).windows()) {
      run.resolve_total_s +=
          std::chrono::duration<double>(window.elapsed).count();
    }
  }
  return run;
}

void report_row(Table& table, std::size_t n, const FleetRun& run) {
  table.row(static_cast<std::uint64_t>(n), run.appends,
            run.enqueue_s > 0
                ? static_cast<double>(run.appends) / run.enqueue_s
                : 0.0,
            run.resolves,
            run.total_s > 0 ? static_cast<double>(run.resolves) / run.total_s
                            : 0.0,
            static_cast<std::uint64_t>(run.stale_max), run.stale_mean,
            run.total_s);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  bool ok = true;

  // --- phase 1: bit-identity + off-the-append-path (GATED) ----------------
  const std::size_t tasks = 2;
  const std::size_t universe = 12;
  const std::size_t n1 = bench::pick<std::size_t>(smoke, 1000, 48);
  const std::size_t steps1 = bench::pick<std::size_t>(smoke, 16, 8);
  const std::size_t window = 8;
  const std::size_t every_steps = 8;

  std::printf("=== Multiplexed fleet vs solo streams (%zu streams x %zu "
              "steps, %zu tasks, universe %zu, window %zu, trigger "
              "steps:%zu) ===\n\n",
              n1, steps1, tasks, universe, window, every_steps);

  const std::vector<MultiTaskTrace> traces =
      make_fleet_traces(n1, tasks, steps1, universe);
  streaming::MultiplexerConfig mux_config;
  mux_config.shards = 8;
  mux_config.stream = stream_config(window, every_steps);
  streaming::StreamMultiplexer mux(mux_config);
  const FleetRun run = run_fleet(mux, traces, universe);

  Table table;
  table.headers({"streams", "appends", "appends/s", "resolves", "resolves/s",
                 "stale max", "stale mean", "wall s"});
  report_row(table, n1, run);
  table.print(std::cout);
  std::printf("\n(staleness sampled right after the enqueue loop: appended "
              "steps minus published snapshot steps)\n\n");

  if (!run.accounted) {
    std::fprintf(stderr, "FAIL: fleet accounting off (accepted/applied/"
                         "failures/dropped)\n");
    ok = false;
  }
  // Structural async proof — no timing threshold (see file comment).
  if (run.stale_max == 0 && run.enqueue_s >= 0.5 * run.resolve_total_s) {
    std::fprintf(stderr,
                 "FAIL: no publication lag and enqueue loop (%.3fs) absorbed "
                 "the window-solve time (%.3fs) — re-solves look inline\n",
                 run.enqueue_s, run.resolve_total_s);
    ok = false;
  }

  // Bit-identity spot check: first / middle / last stream vs a fresh,
  // cache-less solo replay of the same trace and configuration.
  for (const std::size_t i : {std::size_t{0}, n1 / 2, n1 - 1}) {
    streaming::StreamingEngine solo(
        MachineSpec::local_only(std::vector<std::size_t>(tasks, universe)),
        EvalOptions{}, stream_config(window, every_steps));
    for (std::size_t s = 0; s < traces[i].steps(); ++s) {
      solo.append_step(traces[i].step(s));
    }
    solo.flush();
    const streaming::StreamingEngine& fleet_engine = mux.engine(i);
    bool same = schedules_equal(solo.schedule(), fleet_engine.schedule()) &&
                solo.resolve_count() == fleet_engine.resolve_count();
    for (std::size_t k = 0; same && k < solo.windows().size(); ++k) {
      same = solo.windows()[k].trigger == fleet_engine.windows()[k].trigger;
    }
    if (same &&
        solo.current_solution().total() !=
            fleet_engine.current_solution().total()) {
      same = false;
    }
    if (!same) {
      std::fprintf(stderr,
                   "FAIL: stream %zu diverged from its solo replay\n", i);
      ok = false;
    }
  }
  std::printf("bit-identity spot check (streams 0, %zu, %zu): %s\n\n", n1 / 2,
              n1 - 1, ok ? "identical" : "DIVERGED");

  // --- phase 2: fleet-size sweep (informative) ----------------------------
  const std::vector<std::size_t> fleet_sizes =
      smoke ? std::vector<std::size_t>{16, 64}
            : std::vector<std::size_t>{1000, 10000};
  const std::size_t steps2 = bench::pick<std::size_t>(smoke, 8, 4);

  std::printf("=== Fleet-size sweep (%zu tasks x %zu steps, universe %zu, "
              "window %zu, initial+flush re-solves) ===\n\n",
              tasks, steps2, universe, window);
  Table sweep;
  sweep.headers({"streams", "appends", "appends/s", "resolves", "resolves/s",
                 "stale max", "stale mean", "wall s"});
  for (const std::size_t n : fleet_sizes) {
    const std::vector<MultiTaskTrace> sweep_traces =
        make_fleet_traces(n, tasks, steps2, universe);
    streaming::MultiplexerConfig sweep_config;
    sweep_config.shards = 16;
    sweep_config.stream = stream_config(window, /*every_steps=*/0);
    streaming::StreamMultiplexer sweep_mux(sweep_config);
    report_row(sweep, n, run_fleet(sweep_mux, sweep_traces, universe));
  }
  sweep.print(std::cout);
  std::printf(
      "\nExpected shape: appends/sec stays flat as the fleet grows (enqueue "
      "is a mutex + deque push, independent of N); re-solves ride the pool "
      "behind the producer, so staleness at the sample point grows with the "
      "backlog and drains to zero by drain().\n");

  return ok ? 0 : 1;
}
