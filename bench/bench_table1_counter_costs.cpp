// Reproduces the headline numbers of §6 ("Table 1" of the reproduction):
//
//   paper:  no hyperreconfiguration 5280; single-task optimum 3761 (71.2%,
//           30 hyperreconfigurations); multi-task GA 2813 (53.3%, 50 partial
//           hyperreconfiguration steps).
//
// Pipeline: run the 4-bit counter (bound 1010) on the SHyRA simulator, trace
// the n = 110 context requirements, and optimise under the fully
// synchronised MT-Switch model with task-parallel partial
// hyperreconfigurations and task-sequential reconfigurations (§6 setting).
// Absolute values depend on the counter mapping (the authors' schedule is
// unpublished); the orderings and regimes are the reproduction target.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/coordinate_descent.hpp"
#include "core/genetic.hpp"
#include "core/interval_dp.hpp"
#include "model/cost_switch.hpp"
#include "shyra/counter_app.hpp"
#include "shyra/tracer.hpp"
#include "support/table.hpp"

namespace {

using namespace hyperrec;

EvalOptions paper_options() {
  return EvalOptions{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                     false};
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const auto run = shyra::CounterApp(10).run();
  const auto single = shyra::to_single_task_trace(run.trace);
  const auto multi = shyra::to_multi_task_trace(run.trace);
  const auto machine1 = shyra::single_task_machine();
  const auto machine4 = shyra::multi_task_machine();

  const Cost baseline =
      no_hyperreconfiguration_cost(machine1, run.trace.size());

  const auto single_opt = solve_single_task_switch(single.task(0), 48);

  GaConfig ga_config;
  ga_config.population = bench::pick<std::size_t>(smoke, 96, 24);
  ga_config.generations = bench::pick<std::size_t>(smoke, 400, 40);
  ga_config.seed = 2004;
  const auto ga = solve_genetic(multi, machine4, paper_options(), ga_config);
  const auto descent =
      solve_coordinate_descent(multi, machine4, paper_options());
  const MTSolution& multi_best =
      ga.best.total() <= descent.total() ? ga.best : descent;

  std::printf("=== Table 1: 4-bit counter on SHyRA, MT-Switch cost model ===\n");
  std::printf("trace: n=%zu reconfiguration steps, %zu iterations, "
              "final count %u, done=%d\n\n",
              run.trace.size(), run.iterations, run.final_count,
              static_cast<int>(run.done));

  Table table;
  table.headers({"configuration", "paper cost", "paper %", "paper #hyper",
                 "ours cost", "ours %", "ours #hyper"});
  table.row("no hyperreconfiguration", 5280, "100.0%", 0,
            baseline, percent_of(baseline, baseline), 0);
  table.row("single task (m=1, optimal DP)", 3761, "71.2%", 30,
            single_opt.total, percent_of(single_opt.total, baseline),
            single_opt.partition.interval_count());
  table.row("multi task (m=4, GA)", 2813, "53.3%", 50, ga.best.total(),
            percent_of(ga.best.total(), baseline),
            ga.best.schedule.partial_hyper_steps());
  table.row("multi task (m=4, coord-descent)", "-", "-", "-", descent.total(),
            percent_of(descent.total(), baseline),
            descent.schedule.partial_hyper_steps());
  table.print(std::cout);

  std::printf("\nshape checks:\n");
  std::printf("  baseline == 110*48 == 5280:         %s\n",
              baseline == 5280 ? "yes" : "NO");
  std::printf("  single-task optimum < baseline:     %s\n",
              single_opt.total < baseline ? "yes" : "NO");
  std::printf("  multi-task best < single-task:      %s (%lld < %lld)\n",
              multi_best.total() < single_opt.total ? "yes" : "NO",
              static_cast<long long>(multi_best.total()),
              static_cast<long long>(single_opt.total));
  std::printf("  multi-task hyper steps cost <= 24:  %s\n",
              [&] {
                for (const auto& step : multi_best.breakdown.per_step) {
                  if (step.hyper > 24) return false;
                }
                return true;
              }()
                  ? "yes"
                  : "NO");
  return 0;
}
