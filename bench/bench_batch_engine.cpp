// Batch-engine throughput study: jobs/s across parallelism levels and
// deadline budgets.
//
// Measures the serving-layer questions the engine exists to answer: how
// much does sharding a batch across workers buy on this hardware, what does
// a per-job deadline cost in solution quality, and which portfolio members
// win on which workload families.  Smoke mode shrinks the batch for CI.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "engine/batch_engine.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace hyperrec;

std::vector<engine::BatchJob> make_batch(std::size_t count, std::size_t tasks,
                                         std::size_t steps,
                                         std::size_t universe) {
  const std::vector<std::string>& kinds = workload::family_names();
  std::vector<engine::BatchJob> jobs;
  Xoshiro256 root(0xBA7C4);
  for (std::size_t i = 0; i < count; ++i) {
    engine::BatchJob job;
    const std::string& kind = kinds[i % kinds.size()];
    Xoshiro256 rng = root.split(i);
    job.trace = workload::make_multi_family(kind, tasks, steps, universe, rng);
    job.machine =
        MachineSpec::local_only(std::vector<std::size_t>(tasks, universe));
    job.name = kind + "-" + std::to_string(i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

double run_config(const std::vector<engine::BatchJob>& jobs,
                  std::size_t parallelism, std::chrono::milliseconds deadline,
                  const std::vector<std::string>& members, Table& table,
                  const char* label) {
  engine::BatchEngineConfig config;
  config.parallelism = parallelism;
  config.portfolio.solvers = members;
  config.portfolio.deadline = deadline;
  const engine::BatchEngine batch_engine(std::move(config));
  const engine::BatchResult result = batch_engine.solve(jobs);

  Cost total_cost = 0;
  std::map<std::string, std::size_t> wins;
  for (const auto& job : result.jobs) {
    total_cost += job.ok ? job.solution.total() : 0;
    if (job.ok) ++wins[job.winner];
  }
  std::string win_summary;
  for (const auto& [name, count] : wins) {
    if (!win_summary.empty()) win_summary += " ";
    win_summary += name + ":" + std::to_string(count);
  }
  const double seconds =
      static_cast<double>(result.elapsed.count()) / 1e6;
  const double throughput =
      seconds > 0 ? static_cast<double>(jobs.size()) / seconds : 0.0;
  table.row(label, result.parallelism,
            static_cast<std::int64_t>(deadline.count()),
            static_cast<std::int64_t>(total_cost), throughput, win_summary);
  return throughput;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const std::size_t batch = bench::pick<std::size_t>(smoke, 24, 6);
  const std::size_t tasks = bench::pick<std::size_t>(smoke, 4, 2);
  const std::size_t steps = bench::pick<std::size_t>(smoke, 96, 20);
  const std::size_t universe = bench::pick<std::size_t>(smoke, 32, 10);

  std::printf("=== Batch engine throughput (%zu jobs, %zu tasks x %zu steps, "
              "universe %zu) ===\n\n",
              batch, tasks, steps, universe);

  const std::vector<engine::BatchJob> jobs =
      make_batch(batch, tasks, steps, universe);
  const std::vector<std::string> fast = {"aligned-dp", "greedy-w8",
                                         "coord-descent"};
  const std::vector<std::string> full = {};  // whole line-up

  Table table;
  table.headers({"config", "workers", "deadline ms", "sum cost", "jobs/s",
                 "winners"});
  const auto budget = std::chrono::milliseconds{smoke ? 25 : 250};
  run_config(jobs, 1, std::chrono::milliseconds{0}, fast, table,
             "fast, serial");
  run_config(jobs, 0, std::chrono::milliseconds{0}, fast, table,
             "fast, sharded");
  run_config(jobs, 0, budget, fast, table, "fast, deadline");
  run_config(jobs, 0, budget, full, table, "full, deadline");
  table.print(std::cout);

  std::printf("\nExpected shape: sharded >= serial throughput (equal on one "
              "hardware thread); deadlines trade cost for latency; the full "
              "line-up wins cost but pays for the metaheuristics.\n");
  return 0;
}
