// Model ablation C: quality of the paper's genetic algorithm against the
// other solvers, plus GA convergence behaviour.
//
//   1. On exactly solvable instances (exhaustive ground truth), report each
//      solver's optimality gap.
//   2. On the SHyRA counter trace (the paper's instance), report all solver
//      costs and the GA's best-cost-per-generation curve.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/exhaustive.hpp"
#include "core/genetic.hpp"
#include "core/solver.hpp"
#include "shyra/counter_app.hpp"
#include "shyra/tracer.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {
using namespace hyperrec;

EvalOptions paper_options() {
  return EvalOptions{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                     false};
}
}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const std::size_t steps = bench::pick<std::size_t>(smoke, 9, 7);
  // --- part 1: optimality gaps on tiny instances --------------------------
  std::printf("=== GA ablation, part 1: optimality gaps "
              "(m=2, n=%zu, exhaustive ground truth) ===\n\n",
              steps);
  {
    Table table;
    table.headers({"solver", "mean gap %", "max gap %", "optimal count"});
    const std::size_t instances = bench::pick<std::size_t>(smoke, 10, 2);

    std::vector<double> mean_gap(standard_solvers().size(), 0.0);
    std::vector<double> max_gap(standard_solvers().size(), 0.0);
    std::vector<std::size_t> optimal(standard_solvers().size(), 0);

    for (std::uint64_t seed = 1; seed <= instances; ++seed) {
      workload::MultiPhasedConfig config;
      config.tasks = 2;
      config.task_config.steps = steps;
      config.task_config.universe = 6;
      config.task_config.phases = 2;
      const auto trace = workload::make_multi_phased(config, seed);
      const auto machine = MachineSpec::uniform_local(2, 6);
      const Cost best =
          solve_exhaustive(trace, machine, paper_options()).total();

      const auto solvers = standard_solvers();
      for (std::size_t s = 0; s < solvers.size(); ++s) {
        const Cost cost =
            solvers[s].solve(trace, machine, paper_options()).total();
        const double gap = 100.0 *
                           static_cast<double>(cost - best) /
                           static_cast<double>(best);
        mean_gap[s] += gap / static_cast<double>(instances);
        max_gap[s] = std::max(max_gap[s], gap);
        if (cost == best) ++optimal[s];
      }
    }
    const auto solvers = standard_solvers();
    for (std::size_t s = 0; s < solvers.size(); ++s) {
      table.row(solvers[s].name, mean_gap[s], max_gap[s],
                std::to_string(optimal[s]) + "/" + std::to_string(instances));
    }
    table.print(std::cout);
  }

  // --- part 2: the paper's instance ---------------------------------------
  // Smoke shrinks the counter bound: the registry solvers run with their
  // full default configurations, so the trace length is the lever.
  const auto run =
      shyra::CounterApp(bench::pick<std::uint8_t>(smoke, 10, 3)).run();
  std::printf("\n=== GA ablation, part 2: SHyRA counter trace "
              "(m=4, n=%zu) ===\n\n",
              run.trace.size());
  const auto multi = shyra::to_multi_task_trace(run.trace);
  const auto machine = shyra::multi_task_machine();
  const Cost baseline = no_hyperreconfiguration_cost(machine, multi.steps());

  Table table;
  table.headers({"solver", "cost", "% of baseline", "partial hyper steps"});
  for (const auto& solver : standard_solvers()) {
    const auto solution = solver.solve(multi, machine, paper_options());
    table.row(solver.name, solution.total(),
              percent_of(solution.total(), baseline),
              solution.schedule.partial_hyper_steps());
  }
  table.print(std::cout);

  // GA convergence curve (sampled every 20 generations).
  GaConfig config;
  config.population = bench::pick<std::size_t>(smoke, 96, 24);
  config.generations = bench::pick<std::size_t>(smoke, 400, 40);
  config.seed = 2004;
  const auto ga = solve_genetic(multi, machine, paper_options(), config);
  std::printf("\nGA convergence (generation, best cost):\n");
  for (std::size_t g = 0; g < ga.history.size(); g += 20) {
    std::printf("  %4zu  %lld\n", g,
                static_cast<long long>(ga.history[g]));
  }
  std::printf("  final %lld after %zu evaluations\n",
              static_cast<long long>(ga.best.total()), ga.evaluations);
  return 0;
}
