// Private-global resources study (§3/§4): tasks share a pool of g
// interchangeable units (the paper's I/O-unit example) whose assignment is
// fixed per global block; re-assignment requires a global
// hyperreconfiguration of cost w that stalls every task.
//
// Workload: two tasks whose private demand alternates between I/O-heavy and
// compute-heavy phases in opposite phase — a tight pool forces global
// hyperreconfigurations at the demand swaps; a large pool needs none.  The
// sweep varies the pool size g and the global cost w.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/private_global.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {
using namespace hyperrec;
}

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const std::size_t repetitions = bench::pick<std::size_t>(smoke, 8, 3);
  std::printf("=== Private-global resources: pool size & global cost sweep "
              "===\n\n");

  // Build the alternating-demand two-task workload (n = repetitions · 8).
  auto build_trace = [repetitions](std::uint32_t low, std::uint32_t high) {
    MultiTaskTrace trace;
    for (std::size_t j = 0; j < 2; ++j) {
      workload::PeriodicConfig config;
      config.repetitions = repetitions;
      config.period = 8;
      config.universe = 8;
      Xoshiro256 rng(50 + j);
      TaskTrace task = workload::make_periodic(config, rng);
      workload::add_private_demand(task, low, high, 4);
      if (j == 1) {
        // Shift task 1's demand phases to oppose task 0's.
        TaskTrace shifted(task.local_universe());
        const std::size_t n = task.size();
        for (std::size_t i = 0; i < n; ++i) {
          ContextRequirement req = task.at(i);
          req.private_demand = task.at((i + n / 4) % n).private_demand;
          shifted.push_back(std::move(req));
        }
        task = std::move(shifted);
      }
      trace.add_task(std::move(task));
    }
    return trace;
  };

  const auto trace = build_trace(1, 6);

  Table table;
  table.headers({"pool g", "global cost w", "total", "global hyperreconfigs",
                 "feasible"});
  for (const std::size_t g : {7, 8, 10, 12}) {
    for (const Cost w : {2, 20, 100}) {
      MachineSpec machine = MachineSpec::uniform_local(2, 8);
      machine.private_global_units = g;
      machine.global_init = w;
      try {
        const auto result = solve_private_global(trace, machine);
        table.row(g, w, result.solution.total(),
                  result.solution.schedule.global_boundaries.size(), "yes");
      } catch (const PreconditionError&) {
        table.row(g, w, "-", "-", "no");
      }
    }
  }
  table.print(std::cout);

  std::printf("\nExpected shape: g = 7 (< peak joint demand) needs "
              "mid-trace global hyperreconfigurations or is infeasible; "
              "g >= 12 (>= sum of peaks) runs in one block; rising w pushes "
              "the solver toward fewer blocks.\n");
  return 0;
}
