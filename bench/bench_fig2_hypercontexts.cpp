// Reproduces Figure 2: the sequence of hypercontexts for the 4-bit counter
// and the time steps of the (partial) hyperreconfigurations, for the single
// task case (upper part of the figure) and the multiple task case (lower).
//
// The paper draws, per component and step, whether each unit is "in use",
// "unused", or "not available in context".  This bench prints the same
// information as compact per-iteration strips plus per-step CSV series
// (hypercontext sizes + hyperreconfiguration markers) suitable for plotting.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/genetic.hpp"
#include "core/interval_dp.hpp"
#include "model/cost_switch.hpp"
#include "shyra/counter_app.hpp"
#include "shyra/tracer.hpp"

namespace {

using namespace hyperrec;

EvalOptions paper_options() {
  return EvalOptions{UploadMode::kTaskParallel, UploadMode::kTaskSequential,
                     false};
}

const char* kTaskNames[4] = {"LUT1 ", "LUT2 ", "DeMUX", "MUX  "};

/// One character per step: '#' hyperreconfiguration here, '|' task uses a
/// non-empty requirement, '.' unused step, all within the hypercontext.
void print_strip(const char* name, const std::vector<char>& strip) {
  std::printf("  %s ", name);
  for (const char c : strip) std::putchar(c);
  std::putchar('\n');
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const auto run = shyra::CounterApp(10).run();
  const std::size_t n = run.trace.size();
  const auto single = shyra::to_single_task_trace(run.trace);
  const auto multi = shyra::to_multi_task_trace(run.trace);

  std::printf("=== Figure 2: hypercontexts for the 4-bit counter ===\n\n");

  // --- single task (upper part of the figure) -----------------------------
  const auto single_opt = solve_single_task_switch(single.task(0), 48);
  std::printf("single task case: %zu hyperreconfigurations, cost %lld\n",
              single_opt.partition.interval_count(),
              static_cast<long long>(single_opt.total));
  {
    std::vector<char> strip(n, '.');
    for (std::size_t i = 0; i < n; ++i) {
      if (single.task(0).at(i).local.count() > 0) strip[i] = '|';
    }
    for (const std::size_t s : single_opt.partition.starts()) strip[s] = '#';
    print_strip("m=1  ", strip);
  }

  // --- multiple task case (lower part; GA as in the paper) ----------------
  GaConfig ga_config;
  ga_config.population = bench::pick<std::size_t>(smoke, 96, 24);
  ga_config.generations = bench::pick<std::size_t>(smoke, 400, 40);
  ga_config.seed = 2004;
  const auto descent =
      solve_genetic(multi, shyra::multi_task_machine(), paper_options(),
                    ga_config)
          .best;
  std::printf("\nmultiple task case: %zu partial hyperreconfiguration steps, "
              "cost %lld\n",
              descent.schedule.partial_hyper_steps(),
              static_cast<long long>(descent.total()));
  for (std::size_t j = 0; j < 4; ++j) {
    std::vector<char> strip(n, '.');
    for (std::size_t i = 0; i < n; ++i) {
      if (multi.task(j).at(i).local.count() > 0) strip[i] = '|';
    }
    for (const std::size_t s : descent.schedule.tasks[j].starts()) {
      strip[s] = '#';
    }
    print_strip(kTaskNames[j], strip);
  }
  std::printf("  legend: '#' partial hyperreconfiguration, '|' unit in use, "
              "'.' unit unused\n");

  // --- per-step series (CSV) ----------------------------------------------
  const auto contexts =
      derive_local_hypercontexts(multi, descent.schedule);
  std::printf("\nper-step series (CSV): step, single_hctx_size, "
              "single_hyper, lut1,lut2,demux,mux hctx sizes, multi_hyper\n");
  std::vector<std::size_t> interval_index(4, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t single_k = single_opt.partition.interval_of(i);
    std::printf("%zu,%zu,%d", i, single_opt.hypercontexts[single_k].count(),
                static_cast<int>(single_opt.partition.is_boundary(i)));
    bool any = false;
    for (std::size_t j = 0; j < 4; ++j) {
      if (i > 0 && descent.schedule.tasks[j].is_boundary(i)) {
        ++interval_index[j];
      }
      any = any || descent.schedule.tasks[j].is_boundary(i);
      std::printf(",%zu", contexts[j][interval_index[j]].local.count());
    }
    std::printf(",%d\n", static_cast<int>(any || i == 0));
  }
  return 0;
}
