// Online-vs-offline study: how much does not knowing the future cost?
//
// The paper's models assume the context-requirement sequence is known (or
// worst-case bounded) in advance; at runtime the demand may be data
// dependent.  This bench runs the rent-or-buy online controller (no
// lookahead) against the offline optimal DP across workload families and α
// settings, reporting the empirical competitive ratio.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/interval_dp.hpp"
#include "online/rent_or_buy.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {
using namespace hyperrec;
}

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const std::size_t steps = bench::pick<std::size_t>(smoke, 200, 40);
  std::printf("=== Online rent-or-buy vs offline optimum "
              "(single task, n=%zu, |X|=24, v=24) ===\n\n",
              steps);

  const Cost v = 24;
  const std::size_t universe = 24;

  struct Family {
    const char* name;
    TaskTrace trace;
  };
  std::vector<Family> families;
  {
    workload::PhasedConfig config;
    config.steps = steps;
    config.universe = universe;
    config.phases = 8;
    Xoshiro256 rng(61);
    families.push_back({"phased", workload::make_phased(config, rng)});
  }
  {
    workload::RandomWalkConfig config;
    config.steps = steps;
    config.universe = universe;
    config.window = 8;
    Xoshiro256 rng(62);
    families.push_back({"random-walk", workload::make_random_walk(config,
                                                                  rng)});
  }
  {
    workload::BurstyConfig config;
    config.steps = steps;
    config.universe = universe;
    Xoshiro256 rng(63);
    families.push_back({"bursty", workload::make_bursty(config, rng)});
  }
  {
    workload::RandomConfig config;
    config.steps = steps;
    config.universe = universe;
    config.density = 0.3;
    Xoshiro256 rng(64);
    families.push_back({"random (hostile)", workload::make_random(config,
                                                                  rng)});
  }

  Table table;
  table.headers({"workload", "offline opt", "online a=0.5", "online a=1",
                 "online a=2", "worst ratio"});
  for (const Family& family : families) {
    const auto offline = solve_single_task_switch(family.trace, v);
    std::vector<Cost> online_costs;
    for (const double alpha : {0.5, 1.0, 2.0}) {
      online::RentOrBuyConfig config;
      config.alpha = alpha;
      online::RentOrBuyScheduler scheduler(universe, v, config);
      for (std::size_t i = 0; i < family.trace.size(); ++i) {
        scheduler.step(family.trace.at(i));
      }
      online_costs.push_back(scheduler.total_cost());
    }
    const Cost worst =
        *std::max_element(online_costs.begin(), online_costs.end());
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2fx",
                  static_cast<double>(worst) /
                      static_cast<double>(offline.total));
    table.row(family.name, offline.total, online_costs[0], online_costs[1],
              online_costs[2], ratio);
  }
  table.print(std::cout);
  std::printf("\nExpected shape: near-offline on phased/drifting loads, "
              "bounded overhead elsewhere; alpha trades refit frequency "
              "against tracking lag.\n");
  return 0;
}
