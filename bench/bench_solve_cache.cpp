// Solve-cache study: hit-path speedup on repeated-instance batches and
// bit-identical replay across every workload family.
//
// Serving workloads repeat — the same (trace, machine, options) instance
// arrives again and again — and the cost models are pure, so the cache can
// answer repeats at hash-lookup cost.  This bench measures exactly the
// acceptance contract of the cache subsystem:
//
//   * cold vs hit throughput on a batch where every instance repeats
//     (asserts the hit path is at least 10× faster than re-solving), and
//   * bit-identical results: for each workload family, the cached solution
//     must equal the fresh solve's cost and schedule exactly.
//
// Exit status is nonzero when either contract is violated, so the --smoke
// ctest registration doubles as a regression gate.
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "cache/solve_cache.hpp"
#include "engine/batch_engine.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace hyperrec;

std::vector<engine::BatchJob> make_distinct_jobs(std::size_t count,
                                                 std::size_t tasks,
                                                 std::size_t steps,
                                                 std::size_t universe) {
  const std::vector<std::string>& kinds = workload::family_names();
  std::vector<engine::BatchJob> jobs;
  Xoshiro256 root(0x5CACE);
  for (std::size_t i = 0; i < count; ++i) {
    engine::BatchJob job;
    const std::string& kind = kinds[i % kinds.size()];
    Xoshiro256 rng = root.split(i);
    job.trace = workload::make_multi_family(kind, tasks, steps, universe, rng);
    job.machine =
        MachineSpec::local_only(std::vector<std::size_t>(tasks, universe));
    job.name = kind + "-" + std::to_string(i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

double seconds_of(std::chrono::microseconds us) {
  return static_cast<double>(us.count()) / 1e6;
}

bool same_solution(const MTSolution& a, const MTSolution& b) {
  if (a.total() != b.total()) return false;
  if (a.schedule.tasks.size() != b.schedule.tasks.size()) return false;
  for (std::size_t j = 0; j < a.schedule.tasks.size(); ++j) {
    if (a.schedule.tasks[j].starts() != b.schedule.tasks[j].starts()) {
      return false;
    }
  }
  return a.schedule.global_boundaries == b.schedule.global_boundaries;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  // Smoke instances stay large enough that a fresh solve dwarfs the
  // hit-path key hashing — the >= 10x contract needs headroom, not luck.
  const std::size_t distinct = bench::pick<std::size_t>(smoke, 10, 5);
  const std::size_t tasks = bench::pick<std::size_t>(smoke, 4, 2);
  const std::size_t steps = bench::pick<std::size_t>(smoke, 96, 64);
  const std::size_t universe = bench::pick<std::size_t>(smoke, 32, 16);

  std::printf("=== Solve cache (%zu distinct jobs, %zu tasks x %zu steps, "
              "universe %zu) ===\n\n",
              distinct, tasks, steps, universe);

  const std::vector<engine::BatchJob> jobs =
      make_distinct_jobs(distinct, tasks, steps, universe);
  // Deterministic members: the bit-identical contract compares replays.
  const std::vector<std::string> members = {"aligned-dp", "greedy-w8",
                                            "coord-descent"};

  bool ok = true;

  // --- phase 1: cold vs hit throughput on the same batch ------------------
  auto cache = std::make_shared<cache::SolveCache>(
      cache::SolveCacheConfig{.capacity = 1024});
  engine::BatchEngineConfig config;
  config.portfolio.solvers = members;
  config.cache = cache;
  const engine::BatchEngine engine(std::move(config));

  const engine::BatchResult cold = engine.solve(jobs);
  // Best-of-N hit rounds: wall time on a loaded machine (ctest runs benches
  // concurrently) can deschedule one round; contention can only slow the
  // hit path, so the minimum is the honest measurement.
  engine::BatchResult hits = engine.solve(jobs);
  std::chrono::microseconds best_hit = hits.elapsed;
  for (int round = 0; round < 4; ++round) {
    engine::BatchResult again = engine.solve(jobs);
    if (again.elapsed < best_hit) best_hit = again.elapsed;
    hits = std::move(again);
  }
  hits.elapsed = best_hit;

  for (const engine::JobResult& job : hits.jobs) {
    if (!job.ok || job.cache != engine::JobCacheOutcome::kHit) {
      std::fprintf(stderr, "FAIL: job %s not served from cache (%s)\n",
                   job.name.c_str(), job.error.c_str());
      ok = false;
    }
  }

  const double cold_s = seconds_of(cold.elapsed);
  const double hit_s = seconds_of(hits.elapsed);
  // A sub-microsecond hit batch reads as 0 s; that is an (immeasurably)
  // infinite speedup, not a failure.
  const double speedup = hit_s > 0 ? cold_s / hit_s : 1e9;

  Table table;
  table.headers({"phase", "jobs", "wall s", "jobs/s", "hits", "misses"});
  table.row("cold solve", jobs.size(), cold_s,
            cold_s > 0 ? static_cast<double>(jobs.size()) / cold_s : 0.0,
            static_cast<std::int64_t>(cold.cache_stats.hits),
            static_cast<std::int64_t>(cold.cache_stats.misses));
  table.row("hit path", jobs.size(), hit_s,
            hit_s > 0 ? static_cast<double>(jobs.size()) / hit_s : 0.0,
            static_cast<std::int64_t>(hits.cache_stats.hits),
            static_cast<std::int64_t>(hits.cache_stats.misses));
  table.print(std::cout);
  std::printf("\nhit-path speedup: %.1fx (contract: >= 10x)\n", speedup);
  if (speedup < 10.0) {
    std::fprintf(stderr, "FAIL: hit path only %.1fx faster than re-solving\n",
                 speedup);
    ok = false;
  }

  // --- phase 2: replay equality on every workload family ------------------
  std::printf("\nbit-identical replay per family:\n");
  for (const engine::JobResult& fresh : cold.jobs) {
    const engine::JobResult& replay = hits.jobs[fresh.index];
    const bool identical =
        fresh.ok && replay.ok && same_solution(fresh.solution, replay.solution);
    std::printf("  %-16s cost %lld  %s\n", fresh.name.c_str(),
                static_cast<long long>(fresh.solution.total()),
                identical ? "identical" : "MISMATCH");
    if (!identical) {
      std::fprintf(stderr, "FAIL: cached result differs for %s\n",
                   fresh.name.c_str());
      ok = false;
    }
  }

  // Cross-check against a cache-free engine: the cached value must equal a
  // from-scratch solve, not merely be self-consistent.
  engine::BatchEngineConfig plain_config;
  plain_config.portfolio.solvers = members;
  const engine::BatchEngine plain(std::move(plain_config));
  const engine::BatchResult scratch = plain.solve(jobs);
  for (const engine::JobResult& job : scratch.jobs) {
    if (!same_solution(job.solution, hits.jobs[job.index].solution)) {
      std::fprintf(stderr, "FAIL: cache diverges from scratch solve for %s\n",
                   job.name.c_str());
      ok = false;
    }
  }

  std::printf("\n%s\n", ok ? "all cache contracts hold" : "CONTRACT VIOLATED");
  return ok ? 0 : 1;
}
