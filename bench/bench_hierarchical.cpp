// Hierarchical segment-parallel solver at scale (ROADMAP item 4).
//
// Two gates, both printed and enforced by exit code:
//
//   1. Quality: on every standard workload family the hierarchical solution
//      carries a certified optimality gap (core/lower_bound.hpp) of at most
//      15% at the bench's largest size.
//   2. Speed (full mode only, at the 1e5-step size): flat coordinate
//      descent on the whole trace, given a cancellation budget of 2x the
//      hierarchical wall time, must fail to converge inside that budget —
//      i.e. the hierarchical tier is at least 2x faster than the flat
//      solver it replaces.  The flat run's (possibly truncated) incumbent
//      cost is printed next to the hierarchical cost for context.
//
// Smoke mode shrinks the traces so ctest finishes in seconds; the speed
// race is reported there but only gated in full mode (at toy sizes the
// fan-out overhead dominates and the race is meaningless).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/coordinate_descent.hpp"
#include "core/hierarchical.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace hyperrec;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

MultiTaskTrace build_trace(const std::string& family, std::size_t steps) {
  Xoshiro256 rng(0xB19C + steps);
  return workload::make_multi_family(family, 4, steps, 16, rng);
}

// Sequential-upload evaluation (one reconfiguration port, the paper's base
// machine): the multi-task cost then decomposes exactly into per-task
// terms, so the DP relaxation bound is tight and the certified gap
// measures real solver slack + chunking looseness.  Under parallel uploads
// the relaxation can only charge one task's hyper cost (max, not sum), so
// a 15% gate there would grade the bound, not the solver.
EvalOptions bench_options() {
  EvalOptions options;
  options.hyper_upload = UploadMode::kTaskSequential;
  options.reconfig_upload = UploadMode::kTaskSequential;
  return options;
}

MachineSpec machine_for(const MultiTaskTrace& trace) {
  std::vector<std::size_t> locals;
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    locals.push_back(trace.task(j).local_universe());
  }
  return MachineSpec::local_only(locals);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1000}
            : std::vector<std::size_t>{10000, 100000};
  const std::size_t race_size = sizes.back();
  constexpr double kMaxGapPct = 15.0;

  std::printf("=== Hierarchical segment-parallel solver: gap & speed gates "
              "===\n\n");

  HierarchicalConfig config;
  config.segment = smoke ? 128 : 512;
  // Fast exact-ish members per segment; the metaheuristics would dominate
  // the fan-out wall time without moving the certified gap.
  config.portfolio.solvers = {"aligned-dp", "greedy-w8", "coord-descent"};

  Table table;
  table.headers({"family", "steps", "segments", "blocks", "seam merges",
                 "cost", "lower bound", "gap %", "wall s"});
  bool gap_gate_ok = true;
  double race_hier_wall = 0.0;
  Cost race_hier_cost = 0;

  for (const std::string& family : workload::family_names()) {
    for (const std::size_t steps : sizes) {
      const MultiTaskTrace trace = build_trace(family, steps);
      const SolveInstance instance(trace, machine_for(trace), bench_options());
      const Clock::time_point start = Clock::now();
      const HierarchicalResult result = solve_hierarchical(instance, config);
      const double wall = seconds_since(start);
      const double gap = result.solution.gap_pct.value_or(-1.0);
      table.row(family, steps, result.segments, result.global_blocks,
                result.seam_merges, result.solution.total(),
                result.solution.lower_bound.value_or(-1), gap, wall);
      if (steps == race_size) {
        if (gap < 0.0 || gap > kMaxGapPct) gap_gate_ok = false;
        if (family == "phased") {
          race_hier_wall = wall;
          race_hier_cost = result.solution.total();
        }
      }
    }
  }
  table.print(std::cout);

  // Speed race: flat coordinate descent on the full phased trace, budget
  // 2x the hierarchical wall.  The incumbent it holds when the budget
  // fires is a genuine answer — just a slow one.
  const MultiTaskTrace race_trace = build_trace("phased", race_size);
  const SolveInstance race_instance(race_trace, machine_for(race_trace),
                                    bench_options());
  const double budget = 2.0 * race_hier_wall;
  const CancelToken deadline = CancelToken::after(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double>(budget)));
  CoordinateDescentConfig flat_config;
  flat_config.cancel = deadline;
  const Clock::time_point flat_start = Clock::now();
  const MTSolution flat = solve_coordinate_descent(race_instance, flat_config);
  const double flat_wall = seconds_since(flat_start);
  const bool flat_converged = !deadline.cancelled();

  std::printf("\nSpeed race (phased, %zu steps): hierarchical %.3fs cost "
              "%lld vs flat coordinate descent %.3fs cost %lld (%s within "
              "the 2x budget of %.3fs)\n",
              race_size, race_hier_wall,
              static_cast<long long>(race_hier_cost), flat_wall,
              static_cast<long long>(flat.total()),
              flat_converged ? "converged" : "cut off", budget);

  const bool speed_gate_ok =
      smoke || !flat_converged || flat.total() >= race_hier_cost;
  std::printf("\nGates: certified gap <= %.0f%% on every family at %zu "
              "steps: %s; hierarchical >= 2x faster than flat coordinate "
              "descent%s: %s\n",
              kMaxGapPct, race_size, gap_gate_ok ? "PASS" : "FAIL",
              smoke ? " (reported only in smoke mode)" : "",
              speed_gate_ok ? "PASS" : "FAIL");
  std::printf("\nExpected shape: segments solve in parallel and the "
              "boundary DP keeps one global block on local-only machines; "
              "the certified gap tightens as traces grow (the per-segment "
              "DP bound dominates), while flat coordinate descent's "
              "full-trace sweeps blow past the 2x budget at 1e5 steps.\n");
  return gap_gate_ok && speed_gate_ok ? 0 : 1;
}
