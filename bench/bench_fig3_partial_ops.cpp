// Reproduces Figure 3: for every step at which at least one task performs a
// partial hyperreconfiguration, which tasks hyperreconfigure (black) and
// which execute a no-hyperreconfiguration operation (white).
//
// The paper's observation to reproduce: because l1 = l2 = l3 (= 8) and
// partial hyperreconfigurations are task parallel (step cost max_j v_j),
// optimal schedules group the three cheap tasks — either all four tasks
// hyperreconfigure together or (subsets of) T1..T3 do, and adding a cheap
// task to a step that already pays for an equal-or-more-expensive one is
// free.
#include <cstdio>

#include "bench_common.hpp"
#include "core/genetic.hpp"
#include "model/cost_switch.hpp"
#include "shyra/counter_app.hpp"
#include "shyra/tracer.hpp"

namespace {
using namespace hyperrec;
const char* kTaskNames[4] = {"LUT1 ", "LUT2 ", "DeMUX", "MUX  "};
}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const auto run = shyra::CounterApp(10).run();
  const auto multi = shyra::to_multi_task_trace(run.trace);
  const auto machine = shyra::multi_task_machine();
  const EvalOptions options{UploadMode::kTaskParallel,
                            UploadMode::kTaskSequential, false};

  // The paper computed the multi-task schedule with a genetic algorithm;
  // use the same method so the figure shows a comparable (near-optimal,
  // slightly noisy) pattern.
  GaConfig ga_config;
  ga_config.population = bench::pick<std::size_t>(smoke, 96, 24);
  ga_config.generations = bench::pick<std::size_t>(smoke, 400, 40);
  ga_config.seed = 2004;
  const auto solution =
      solve_genetic(multi, machine, options, ga_config).best;

  // Collect the steps with at least one partial hyperreconfiguration.
  std::vector<std::size_t> hyper_steps;
  for (std::size_t i = 0; i < multi.steps(); ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (solution.schedule.tasks[j].is_boundary(i)) {
        hyper_steps.push_back(i);
        break;
      }
    }
  }

  std::printf("=== Figure 3: partial hyperreconfiguration operations ===\n");
  std::printf("%zu partial hyperreconfiguration steps (paper: 50)\n\n",
              hyper_steps.size());

  for (std::size_t j = 0; j < 4; ++j) {
    std::printf("  %s ", kTaskNames[j]);
    for (const std::size_t step : hyper_steps) {
      std::putchar(solution.schedule.tasks[j].is_boundary(step) ? '#' : '-');
    }
    std::putchar('\n');
  }
  std::printf("  legend: '#' partial hyperreconfiguration, "
              "'-' no-hyperreconfiguration operation\n\n");

  // Quantify the paper's grouping claim.
  std::size_t all_four = 0;
  std::size_t only_cheap = 0;  // subset of {T1,T2,T3}, T4 idle
  std::size_t with_t4 = 0;
  for (const std::size_t step : hyper_steps) {
    const bool t4 = solution.schedule.tasks[3].is_boundary(step);
    bool cheap = false;
    bool all = t4;
    for (std::size_t j = 0; j < 3; ++j) {
      if (solution.schedule.tasks[j].is_boundary(step)) {
        cheap = true;
      } else {
        all = false;
      }
    }
    if (all) ++all_four;
    if (t4) ++with_t4;
    if (cheap && !t4) ++only_cheap;
  }
  std::printf("grouping: %zu steps hyperreconfigure all four tasks, "
              "%zu steps include MUX (cost 24), %zu steps touch only "
              "T1..T3 (cost 8)\n",
              all_four, with_t4, only_cheap);

  // Per-step cost of a partial hyperreconfiguration never exceeds max v_j.
  bool bounded = true;
  for (const auto& step : solution.breakdown.per_step) {
    bounded = bounded && step.hyper <= 24;
  }
  std::printf("per-step hyper cost <= max_j v_j = 24: %s\n",
              bounded ? "yes" : "NO");
  return 0;
}
