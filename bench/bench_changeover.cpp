// Model ablation B: the changeover-cost variant (§4.1) against the plain
// switch model on single-task workloads with varying phase overlap.
//
// With changeover costs a hyperreconfiguration pays |h Δ h'| on top of the
// fixed v, so gradual window drift (high overlap between consecutive
// hypercontexts) stays cheap while disjoint phase jumps pay the full
// difference.  The table sweeps workload families and compares the plain-DP
// optimum, the changeover-DP optimum and the plain-DP schedule re-priced
// under changeover costs (showing how much the changeover-aware DP saves).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/interval_dp.hpp"
#include "model/cost_switch.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace hyperrec;

Cost reprice_with_changeover(const TaskTrace& trace,
                             const SingleTaskSolution& solution, Cost v) {
  Cost total = 0;
  DynamicBitset previous(trace.local_universe());
  for (std::size_t k = 0; k < solution.partition.interval_count(); ++k) {
    const auto [lo, hi] = solution.partition.interval_bounds(k);
    const DynamicBitset& h = solution.hypercontexts[k];
    total += v + static_cast<Cost>(h.symmetric_difference_count(previous)) +
             static_cast<Cost>(h.count()) * static_cast<Cost>(hi - lo);
    previous = h;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const std::size_t steps = bench::pick<std::size_t>(smoke, 96, 24);
  std::printf("=== Changeover-cost ablation (single task, n=%zu, |X|=24) "
              "===\n\n",
              steps);

  Table table;
  table.headers({"workload", "plain DP", "changeover DP",
                 "plain schedule repriced", "saving", "#hyper plain",
                 "#hyper changeover"});

  struct Row {
    const char* name;
    TaskTrace trace;
  };
  std::vector<Row> rows;

  {
    workload::PhasedConfig config;
    config.steps = steps;
    config.universe = 24;
    config.phases = 6;
    config.noise = 0.0;
    Xoshiro256 rng(21);
    rows.push_back({"phased (disjoint jumps)",
                    workload::make_phased(config, rng)});
  }
  {
    workload::RandomWalkConfig config;
    config.steps = steps;
    config.universe = 24;
    config.window = 8;
    config.drift = 0.3;
    Xoshiro256 rng(22);
    rows.push_back({"random walk (drift)",
                    workload::make_random_walk(config, rng)});
  }
  {
    workload::PeriodicConfig config;
    config.repetitions = steps / 8;
    config.period = 8;
    config.universe = 24;
    Xoshiro256 rng(23);
    rows.push_back({"periodic (loop body)",
                    workload::make_periodic(config, rng)});
  }
  {
    workload::BurstyConfig config;
    config.steps = steps;
    config.universe = 24;
    Xoshiro256 rng(24);
    rows.push_back({"bursty", workload::make_bursty(config, rng)});
  }

  const Cost v = 12;
  for (const Row& row : rows) {
    const auto plain = solve_single_task_switch(row.trace, v);
    const auto change = solve_single_task_switch_changeover(row.trace, v);
    const Cost repriced = reprice_with_changeover(row.trace, plain, v);
    table.row(row.name, plain.total, change.total, repriced,
              repriced - change.total, plain.partition.interval_count(),
              change.partition.interval_count());
  }
  table.print(std::cout);
  std::printf("\nInvariant: changeover DP <= repriced plain schedule "
              "(it optimises the richer objective directly).\n");
  return 0;
}
