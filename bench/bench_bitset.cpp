// Kernel-layer microbench: scalar vs dispatched SIMD word kernels across
// the universe sizes the solver stack actually sees.
//
// Universes 8/63/64/65 probe the small-buffer and word-seam regime (1–2
// words, where the wrappers run the inlined scalar fast path and SIMD
// cannot pay for its call); 256/1024/4096 are the large-universe regime
// where the dispatched AVX2/AVX-512 flavours should win outright.  Each op
// row reports scalar ns/op, dispatched ns/op and the speedup, plus a
// checksum column proving both flavours computed identical results (the
// bit-identity contract of support/bitset_kernels.hpp, enforced here so a
// broken flavour fails the smoke run, not just the unit suite).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/bitset_kernels.hpp"
#include "support/ensure.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace hyperrec;
using kernels::KernelTable;
using kernels::Word;

std::vector<Word> random_words(std::size_t n, Xoshiro256& rng) {
  std::vector<Word> words(n);
  for (Word& w : words) w = rng();
  return words;
}

double ns_per_op(std::uint64_t nanos, std::size_t iters) {
  return static_cast<double>(nanos) / static_cast<double>(iters);
}

/// Times `iters` calls of `op`, folding every result into a checksum so the
/// optimiser cannot drop the loop.
template <typename Op>
std::pair<std::uint64_t, std::size_t> time_op(std::size_t iters, Op&& op) {
  std::size_t checksum = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t it = 0; it < iters; ++it) checksum += op(it);
  const auto stop = std::chrono::steady_clock::now();
  const auto nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
  return {nanos, checksum};
}

struct OpResult {
  double scalar_ns = 0;
  double simd_ns = 0;
  std::size_t scalar_sum = 0;
  std::size_t simd_sum = 0;
};

template <typename MakeOp>
OpResult run_both(std::size_t iters, MakeOp&& make_op) {
  OpResult result;
  // Interleaved rounds so neither flavour monopolises a warm cache.
  const std::size_t rounds = 3;
  const std::size_t chunk = iters / rounds + 1;
  std::uint64_t scalar_nanos = 0;
  std::uint64_t simd_nanos = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    auto scalar = time_op(chunk, make_op(kernels::scalar_table()));
    auto simd = time_op(chunk, make_op(kernels::active_table()));
    scalar_nanos += scalar.first;
    simd_nanos += simd.first;
    result.scalar_sum += scalar.second;
    result.simd_sum += simd.second;
  }
  result.scalar_ns = ns_per_op(scalar_nanos, rounds * chunk);
  result.simd_ns = ns_per_op(simd_nanos, rounds * chunk);
  return result;
}

std::string speedup(const OpResult& r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx",
                r.simd_ns > 0 ? r.scalar_ns / r.simd_ns : 0.0);
  return buf;
}

std::string fmt_ns(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", ns);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const std::size_t base_iters = bench::pick<std::size_t>(smoke, 200000, 2000);

  std::printf("=== Bitset kernel layer: scalar vs dispatched (%s) ===\n",
              kernels::active_isa());
  if (kernels::force_scalar_requested()) {
    std::printf("(HYPERREC_FORCE_SCALAR set — dispatched == scalar)\n");
  }
  std::printf("\n");

  Table table;
  table.headers({"universe", "words", "op", "scalar ns/op", "simd ns/op",
                 "speedup"});

  const std::size_t universes[] = {8, 63, 64, 65, 256, 1024, 4096};
  Xoshiro256 rng(2004);
  for (const std::size_t universe : universes) {
    const std::size_t n = (universe + 63) / 64;
    // Scale iteration counts down for big arrays so full runs stay short.
    const std::size_t iters = base_iters / (1 + n / 8) + 1;
    const std::vector<Word> a = random_words(n, rng);
    const std::vector<Word> b = random_words(n, rng);
    const std::vector<Word> c = random_words(n, rng);
    std::vector<Word> dst(n, 0);

    {
      auto r = run_both(iters, [&](const KernelTable& t) {
        return [&, op = t.or_words](std::size_t) {
          op(dst.data(), a.data(), b.data(), n);
          return static_cast<std::size_t>(dst[0] & 1u);
        };
      });
      HYPERREC_ENSURE(r.scalar_sum == r.simd_sum,
                      "scalar/simd union divergence");
      table.row(universe, n, "union", fmt_ns(r.scalar_ns), fmt_ns(r.simd_ns),
                speedup(r));
    }
    {
      auto r = run_both(iters, [&](const KernelTable& t) {
        return [&, op = t.or_popcount](std::size_t) {
          return op(a.data(), b.data(), n);
        };
      });
      HYPERREC_ENSURE(r.scalar_sum == r.simd_sum,
                      "scalar/simd union-count divergence");
      table.row(universe, n, "union count", fmt_ns(r.scalar_ns),
                fmt_ns(r.simd_ns), speedup(r));
    }
    {
      auto r = run_both(iters, [&](const KernelTable& t) {
        return [&, op = t.xor_popcount](std::size_t) {
          return op(a.data(), b.data(), n);
        };
      });
      HYPERREC_ENSURE(r.scalar_sum == r.simd_sum,
                      "scalar/simd changeover-count divergence");
      table.row(universe, n, "changeover count", fmt_ns(r.scalar_ns),
                fmt_ns(r.simd_ns), speedup(r));
    }
    {
      auto r = run_both(iters, [&](const KernelTable& t) {
        return [&, op = t.or3_popcount](std::size_t) {
          return op(a.data(), b.data(), c.data(), n);
        };
      });
      HYPERREC_ENSURE(r.scalar_sum == r.simd_sum,
                      "scalar/simd fused-union-count divergence");
      table.row(universe, n, "3-way union count", fmt_ns(r.scalar_ns),
                fmt_ns(r.simd_ns), speedup(r));
    }
    {
      auto r = run_both(iters, [&](const KernelTable& t) {
        return [&, op = t.subset](std::size_t) {
          return static_cast<std::size_t>(op(a.data(), b.data(), n));
        };
      });
      HYPERREC_ENSURE(r.scalar_sum == r.simd_sum,
                      "scalar/simd subset divergence");
      table.row(universe, n, "subset", fmt_ns(r.scalar_ns), fmt_ns(r.simd_ns),
                speedup(r));
    }
  }
  table.print(std::cout);
  std::printf(
      "\nWrappers inline the scalar loop for <= %zu words, so universes "
      "<= 128 never pay the dispatch call; speedups above show the table "
      "flavours head-to-head.\n",
      kernels::kInlineWords);
  return 0;
}
