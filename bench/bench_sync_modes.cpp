// Model ablation A: the §3/§4 synchronisation regimes and upload
// disciplines on synthetic multi-task workloads.
//
// For each workload family the coordinate-descent schedule is evaluated
// under every (sync mode × upload discipline) combination, showing
//   * task-parallel uploads dominate task-sequential ones (max ≤ Σ),
//   * asynchronous (non-synchronised) execution overlaps reconfiguration
//     work and is cheapest,
//   * the SHyRA §6 setting (hyper parallel / reconfig sequential) sits in
//     between.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/coordinate_descent.hpp"
#include "model/cost_switch.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {
using namespace hyperrec;
}

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  std::printf("=== Sync-mode / upload-discipline ablation (m=4 tasks) ===\n\n");

  struct Family {
    const char* name;
    std::uint64_t seed;
    std::size_t phases;
  };
  const Family families[] = {{"phased/4", 11, 4},
                             {"phased/8", 12, 8},
                             {"near-random", 13, 64}};

  for (const Family& family : families) {
    workload::MultiPhasedConfig config;
    config.tasks = 4;
    config.task_config.steps = bench::pick<std::size_t>(smoke, 128, 32);
    config.task_config.universe = 16;
    config.task_config.phases = family.phases;
    const auto trace = workload::make_multi_phased(config, family.seed);
    const auto machine = MachineSpec::uniform_local(4, 16);
    const Cost baseline =
        no_hyperreconfiguration_cost(machine, trace.steps());

    // One schedule, optimised for the paper's §6 discipline, evaluated
    // under all regimes (apples-to-apples on the schedule).
    const EvalOptions base_options{UploadMode::kTaskParallel,
                                   UploadMode::kTaskSequential, false};
    const auto schedule =
        solve_coordinate_descent(trace, machine, base_options).schedule;

    Table table(std::string("workload: ") + family.name +
                "  (baseline no-hyper = " + std::to_string(baseline) + ")");
    table.headers({"sync mode", "hyper upload", "reconfig upload", "total",
                   "% of baseline"});

    const struct {
      const char* name;
      SyncMode mode;
      UploadMode hyper;
      UploadMode reconfig;
    } rows[] = {
        {"fully sync", SyncMode::kFullySynchronized, UploadMode::kTaskParallel,
         UploadMode::kTaskParallel},
        {"fully sync (SHyRA §6)", SyncMode::kFullySynchronized,
         UploadMode::kTaskParallel, UploadMode::kTaskSequential},
        {"fully sync", SyncMode::kFullySynchronized,
         UploadMode::kTaskSequential, UploadMode::kTaskSequential},
        {"hypercontext sync", SyncMode::kHypercontextSynchronized,
         UploadMode::kTaskParallel, UploadMode::kTaskSequential},
        {"context sync", SyncMode::kContextSynchronized,
         UploadMode::kTaskSequential, UploadMode::kTaskSequential},
        {"non-sync (async §4.1)", SyncMode::kNonSynchronized,
         UploadMode::kTaskParallel, UploadMode::kTaskParallel},
    };
    for (const auto& row : rows) {
      const Cost total = evaluate_switch_total(
          row.mode, trace, machine, schedule,
          EvalOptions{row.hyper, row.reconfig, false});
      table.row(row.name,
                row.hyper == UploadMode::kTaskParallel ? "parallel" : "seq",
                row.reconfig == UploadMode::kTaskParallel ? "parallel" : "seq",
                total, percent_of(total, baseline));
    }
    table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
