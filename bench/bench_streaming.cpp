// Streaming-layer study: incremental trace-stats updates vs full rebuilds,
// and windowed warm-started re-solves vs one offline solve.
//
// The streaming engine's economics rest on one contract: appending a step
// to the incremental tables (streaming/stream_stats.hpp) must be far
// cheaper than rebuilding the offline MultiTaskTraceStats from scratch —
// that is what makes per-step trigger checks and frequent window re-solves
// affordable.  This bench measures exactly that:
//
//   * phase 1 (GATED): total time to append `extra` steps to a
//     TraceBuilderStats already holding a >= 256-step trace, against the
//     total time of from-scratch MultiTaskTraceStats rebuilds over the same
//     growing prefixes.  The acceptance criterion requires the incremental
//     path to be at least 5x faster; exit status is nonzero otherwise, so
//     the --smoke ctest registration doubles as a regression gate.  (The
//     asymptotic gap is O(log n * words) vs O(n log n * words) per step —
//     the gate holds with two orders of magnitude of headroom.)
//
//   * phase 2 (informative): per workload family, a full streaming replay
//     (window + step-count trigger, fast portfolio) against the offline
//     solve of the same final trace — re-solve count, cost ratio and wall
//     times, the knobs a serving deployment tunes.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "engine/portfolio.hpp"
#include "model/trace_stats.hpp"
#include "streaming/stream_stats.hpp"
#include "streaming/streaming_engine.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace hyperrec;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

MultiTaskTrace prefix_of(const MultiTaskTrace& trace, std::size_t steps) {
  MultiTaskTrace prefix;
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    TaskTrace task(trace.task(j).local_universe());
    for (std::size_t i = 0; i < steps; ++i) task.push_back(trace.task(j).at(i));
    prefix.add_task(std::move(task));
  }
  return prefix;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  bool ok = true;

  // --- phase 1: incremental append vs full rebuild (gated >= 5x) ----------
  const std::size_t tasks = 4;
  const std::size_t universe = 64;
  const std::size_t base = 256;  // the acceptance window floor
  const std::size_t extra = bench::pick<std::size_t>(smoke, 128, 64);

  Xoshiro256 rng(0x57AB1E);
  const MultiTaskTrace full_trace = workload::make_multi_family(
      "phased", tasks, base + extra, universe, rng);

  // Prefix copies are built outside the timed regions; both sides below
  // time only their table maintenance.
  std::vector<MultiTaskTrace> prefixes;
  prefixes.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    prefixes.push_back(prefix_of(full_trace, base + i + 1));
  }
  std::vector<std::vector<ContextRequirement>> appended_steps;
  appended_steps.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    appended_steps.push_back(full_trace.step(base + i));
  }

  streaming::TraceBuilderStats builder(prefix_of(full_trace, base));
  const Clock::time_point inc_start = Clock::now();
  for (std::vector<ContextRequirement>& step : appended_steps) {
    builder.append_step(std::move(step));
  }
  const double inc_s = seconds_since(inc_start);

  const Clock::time_point reb_start = Clock::now();
  std::size_t sink = 0;  // defeat dead-code elimination
  for (const MultiTaskTrace& prefix : prefixes) {
    const MultiTaskTraceStats rebuilt(prefix);
    sink += rebuilt.task(0).support().size();
  }
  const double reb_s = seconds_since(reb_start);

  // The tables the appends produced must match a rebuild bit-identically.
  builder.assert_consistent_with_rebuild();

  const double speedup = inc_s > 0 ? reb_s / inc_s : 1e9;
  std::printf("=== Incremental trace-stats vs full rebuild (%zu tasks, "
              "universe %zu, window %zu -> %zu steps) ===\n\n",
              tasks, universe, base, base + extra);
  Table table;
  table.headers({"maintenance", "steps", "total s", "us/step"});
  table.row("incremental append", static_cast<std::uint64_t>(extra), inc_s,
            inc_s / static_cast<double>(extra) * 1e6);
  table.row("full rebuild", static_cast<std::uint64_t>(extra), reb_s,
            reb_s / static_cast<double>(extra) * 1e6);
  table.print(std::cout);
  std::printf("\nspeedup: %.1fx (gate: >= 5x at window >= 256)%s\n\n",
              speedup, sink == static_cast<std::size_t>(-1) ? "!" : "");
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: incremental update only %.2fx faster than rebuild\n",
                 speedup);
    ok = false;
  }

  // --- phase 2: streaming replay vs offline solve (informative) -----------
  const std::size_t s_steps = bench::pick<std::size_t>(smoke, 192, 48);
  const std::size_t s_window = bench::pick<std::size_t>(smoke, 64, 16);
  const std::size_t s_every = bench::pick<std::size_t>(smoke, 16, 8);
  const std::size_t s_universe = bench::pick<std::size_t>(smoke, 32, 12);
  const std::size_t s_tasks = 2;

  std::printf("=== Streaming replay vs offline portfolio (%zu tasks x %zu "
              "steps, universe %zu, window %zu, trigger steps:%zu) ===\n\n",
              s_tasks, s_steps, s_universe, s_window, s_every);
  Table study;
  study.headers({"family", "resolves", "stream cost", "offline cost",
                 "ratio", "stream s", "offline s"});
  for (const std::string& family : workload::family_names()) {
    Xoshiro256 family_rng(0xBEEF ^ std::hash<std::string>{}(family));
    const MultiTaskTrace trace = workload::make_multi_family(
        family, s_tasks, s_steps, s_universe, family_rng);
    MachineSpec machine = MachineSpec::local_only(
        std::vector<std::size_t>(s_tasks, s_universe));

    streaming::StreamingConfig config;
    config.window = s_window;
    config.trigger.every_steps = s_every;
    config.portfolio.solvers = {"aligned-dp", "greedy-w8"};
    streaming::StreamingEngine engine(machine, EvalOptions{}, config);
    const Clock::time_point stream_start = Clock::now();
    for (std::size_t i = 0; i < trace.steps(); ++i) {
      engine.append_step(trace.step(i));
    }
    engine.flush();
    const double stream_s = seconds_since(stream_start);
    const Cost stream_cost = engine.current_solution().total();

    engine::PortfolioConfig offline;
    offline.solvers = {"aligned-dp", "greedy-w8"};
    offline.parallel = false;
    const Clock::time_point offline_start = Clock::now();
    const engine::PortfolioResult offline_result =
        engine::solve_portfolio(trace, machine, EvalOptions{}, offline);
    const double offline_s = seconds_since(offline_start);

    study.row(family, static_cast<std::uint64_t>(engine.resolve_count()),
              static_cast<std::int64_t>(stream_cost),
              static_cast<std::int64_t>(offline_result.best.total()),
              static_cast<double>(stream_cost) /
                  static_cast<double>(offline_result.best.total()),
              stream_s, offline_s);
  }
  study.print(std::cout);
  std::printf(
      "\nExpected shape: windowed re-solves track the offline cost within a "
      "small factor while each re-solve touches only `window` steps; the "
      "incremental tables make the per-step trigger checks O(1).\n");

  return ok ? 0 : 1;
}
