// Shared command-line handling for the paper-reproduction benches.
//
// Every bench accepts `--smoke`: a fast mode that shrinks instance sizes so
// the whole bench finishes in well under a second while still exercising the
// same code paths.  ctest registers each bench with --smoke (label `bench`),
// so benches can never silently rot; full-size runs remain the default when
// invoked by hand.
#pragma once

#include <cstring>

namespace hyperrec::bench {

/// True when argv contains "--smoke".
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

/// Instance-size selector: `full` normally, `quick` under --smoke.
template <typename T>
inline T pick(bool smoke, T full, T quick) {
  return smoke ? quick : full;
}

}  // namespace hyperrec::bench
