// DAG cost model demonstration (§2, §4 MT-DAG): a coarse-grained machine
// whose hypercontexts form a quality lattice.
//
// Machine story: three capability grades of routing (low/medium/high) ×
// optional DSP support; the precedence DAG orders them by capability, with
// per-reconfiguration cost rising with capability.  Workload phases demand
// different grades; the DAG DP picks hyperreconfiguration points and
// hypercontexts.  The multi-task variant runs m tasks with aligned
// hyperreconfigurations under both upload disciplines.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/dag_dp.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace hyperrec;

/// Kinds: 0 = light routing, 1 = heavy routing, 2 = DSP-light, 3 = DSP-heavy.
/// Hypercontexts: 0 low, 1 medium, 2 high, 3 medium+dsp, 4 high+dsp (top).
DagCostModel coarse_machine() {
  Dag dag(5);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  dag.add_edge(1, 3);
  dag.add_edge(2, 4);
  dag.add_edge(3, 4);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset::from_string("1000"));  // low
  sat.push_back(DynamicBitset::from_string("1100"));  // medium
  sat.push_back(DynamicBitset::from_string("1100"));  // high (same kinds,
                                                      // more headroom)
  sat.push_back(DynamicBitset::from_string("1110"));  // medium+dsp
  sat.push_back(DynamicBitset::from_string("1111"));  // high+dsp = top
  std::vector<Cost> cost{2, 5, 8, 9, 14};
  return DagCostModel(std::move(dag), std::move(sat), std::move(cost),
                      /*w=*/20);
}

std::vector<std::size_t> phased_kinds(std::size_t n, std::uint64_t seed) {
  // Phases: light → heavy → dsp-light → heavy → light …
  const std::size_t pattern[] = {0, 1, 2, 1, 0, 3};
  std::vector<std::size_t> kinds(n);
  Xoshiro256 rng(seed);
  const std::size_t phase_len = 12;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t kind = pattern[(i / phase_len) % 6];
    if (rng.flip(0.05)) kind = rng.uniform(4);  // rare off-phase demand
    kinds[i] = kind;
  }
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const auto model = coarse_machine();
  model.validate();

  std::printf("=== DAG cost model: coarse-grained machine ===\n");
  std::printf("hypercontexts: low(2) -> medium(5) -> high(8), "
              "medium+dsp(9), high+dsp(14); w = 20\n\n");

  // c(H) — the minimal satisfiers per requirement kind.
  const char* kind_names[] = {"light-route", "heavy-route", "dsp-light",
                              "dsp-heavy"};
  std::printf("minimal satisfier sets c(H):\n");
  for (std::size_t kind = 0; kind < 4; ++kind) {
    std::printf("  %-12s:", kind_names[kind]);
    for (const std::size_t h : model.minimal_satisfiers(kind)) {
      std::printf(" h%zu", h);
    }
    std::printf("\n");
  }

  // Single-task sweep over trace lengths.
  std::printf("\nsingle-task DAG DP vs always-top baseline:\n");
  Table table;
  table.headers({"n", "DAG DP cost", "#hyper", "always-top cost", "% saved"});
  const std::vector<std::size_t> lengths =
      smoke ? std::vector<std::size_t>{12, 24}
            : std::vector<std::size_t>{24, 48, 96, 192};
  for (const std::size_t n : lengths) {
    const auto kinds = phased_kinds(n, 42);
    const auto solution = solve_dag_dp(model, kinds);
    // Baseline: a single hyperreconfiguration into the universal top
    // hypercontext (h4, cost 14).
    const Cost top = model.w() + 14 * static_cast<Cost>(n);
    table.row(n, solution.total, solution.schedule.starts.size(), top,
              percent_of(top - solution.total, top));
  }
  table.print(std::cout);

  // Multi-task aligned MT-DAG.
  const std::size_t mt_n = bench::pick<std::size_t>(smoke, 96, 24);
  std::printf("\nMT-DAG (m=3 tasks, aligned hyperreconfigurations, n=%zu):\n",
              mt_n);
  std::vector<DagCostModel> models;
  std::vector<std::vector<std::size_t>> sequences;
  for (std::uint64_t j = 0; j < 3; ++j) {
    models.push_back(coarse_machine());
    sequences.push_back(phased_kinds(mt_n, 100 + j));
  }
  const auto parallel = solve_mt_dag_aligned(models, sequences, 20, true);
  const auto sequential = solve_mt_dag_aligned(models, sequences, 20, false);
  std::printf("  task-parallel reconfig:   cost %lld, %zu "
              "hyperreconfigurations\n",
              static_cast<long long>(parallel.total),
              parallel.starts.size());
  std::printf("  task-sequential reconfig: cost %lld, %zu "
              "hyperreconfigurations\n",
              static_cast<long long>(sequential.total),
              sequential.starts.size());
  std::printf("  parallel <= sequential: %s\n",
              parallel.total <= sequential.total ? "yes" : "NO");
  return 0;
}
