// Theorem 1 in practice: the polynomial DP vs the exponential alternatives.
//
//   * correctness: DP total == exhaustive total where both run,
//   * reach: instance sizes where exhaustive becomes impossible but the DP
//     still answers exactly (m=2, n up to 64),
//   * optimality gaps of the heuristics measured against the DP at sizes
//     the exhaustive solver cannot certify.
#include <cstdio>
#include <iostream>

#include <chrono>

#include "bench_common.hpp"

#include "core/coordinate_descent.hpp"
#include "core/exhaustive.hpp"
#include "core/genetic.hpp"
#include "core/theorem1.hpp"
#include "support/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace hyperrec;

double seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_mode(argc, argv);
  const EvalOptions options{UploadMode::kTaskParallel,
                            UploadMode::kTaskSequential, false};

  std::printf("=== Theorem 1 DP: correctness & reach (m=2 tasks) ===\n\n");
  Table table;
  table.headers({"n", "exhaustive cost", "exhaustive s", "theorem1 cost",
                 "theorem1 s", "agree"});
  const std::vector<std::size_t> tiny =
      smoke ? std::vector<std::size_t>{6, 8}
            : std::vector<std::size_t>{6, 8, 10, 12};
  for (const std::size_t n : tiny) {
    workload::MultiPhasedConfig config;
    config.tasks = 2;
    config.task_config.steps = n;
    config.task_config.universe = 6;
    const auto trace = workload::make_multi_phased(config, 7);
    const auto machine = MachineSpec::uniform_local(2, 6);

    const auto t0 = std::chrono::steady_clock::now();
    const auto exhaustive = solve_exhaustive(trace, machine, options);
    const double exhaustive_s = seconds(t0);

    const auto t1 = std::chrono::steady_clock::now();
    const auto dp = solve_theorem1_dp(trace, machine, options);
    const double dp_s = seconds(t1);

    table.row(n, exhaustive.total(), exhaustive_s, dp.total(), dp_s,
              exhaustive.total() == dp.total() ? "yes" : "NO");
  }
  table.print(std::cout);

  std::printf("\nbeyond exhaustive reach (2^{2(n-1)} schedules):\n");
  Table reach;
  reach.headers({"n", "search space", "theorem1 cost", "theorem1 s",
                 "coord-descent", "genetic", "CD gap %", "GA gap %"});
  const std::vector<std::size_t> reach_sizes =
      smoke ? std::vector<std::size_t>{16}
            : std::vector<std::size_t>{24, 40, 56, 64};
  for (const std::size_t n : reach_sizes) {
    workload::MultiPhasedConfig config;
    config.tasks = 2;
    config.task_config.steps = n;
    config.task_config.universe = 8;
    config.task_config.phases = 4;
    const auto trace = workload::make_multi_phased(config, 13);
    const auto machine = MachineSpec::uniform_local(2, 8);

    const auto t0 = std::chrono::steady_clock::now();
    const auto dp = solve_theorem1_dp(trace, machine, options);
    const double dp_s = seconds(t0);

    const auto descent = solve_coordinate_descent(trace, machine, options);
    GaConfig ga_config;
    ga_config.population = bench::pick<std::size_t>(smoke, 64, 16);
    ga_config.generations = bench::pick<std::size_t>(smoke, 200, 40);
    ga_config.seed = 3;
    const auto ga = solve_genetic(trace, machine, options, ga_config);

    char space[32];
    std::snprintf(space, sizeof space, "2^%zu", 2 * (n - 1));
    auto gap = [&dp](Cost cost) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f%%",
                    100.0 * static_cast<double>(cost - dp.total()) /
                        static_cast<double>(dp.total()));
      return std::string(buf);
    };
    reach.row(n, space, dp.total(), dp_s, descent.total(), ga.best.total(),
              gap(descent.total()), gap(ga.best.total()));
  }
  reach.print(std::cout);
  std::printf("\nThe heuristics' certified gaps at sizes only the "
              "polynomial DP can certify — the practical content of "
              "Theorem 1.\n");
  return 0;
}
