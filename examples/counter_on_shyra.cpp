// The paper's experiment end to end: map a 4-bit bounded counter onto the
// SHyRA architecture, simulate it cycle by cycle, trace the context
// requirements, and optimise the (hyper)reconfiguration schedule in both the
// single-task and the multi-task decomposition (paper §6).
#include <cstdio>

#include "core/coordinate_descent.hpp"
#include "core/interval_dp.hpp"
#include "model/cost_switch.hpp"
#include "shyra/counter_app.hpp"
#include "shyra/machine.hpp"
#include "shyra/tracer.hpp"

int main() {
  using namespace hyperrec;
  using namespace hyperrec::shyra;

  // --- 1. simulate ---------------------------------------------------------
  const std::uint8_t bound = 10;  // binary 1010, as in the paper
  CounterApp app(bound);
  const auto run = app.run();
  std::printf("SHyRA 4-bit counter, bound %u:\n", bound);
  std::printf("  %zu loop iterations, %zu reconfiguration steps\n",
              run.iterations, run.trace.size());
  std::printf("  final count %u, done flag %d\n", run.final_count,
              static_cast<int>(run.done));

  // Peek into the datapath: re-run the first iteration step by step.
  std::printf("\nfirst iteration, register file after each cycle "
              "(count r0-r3 | bound r4-r7 | scratch r8 | done r9):\n");
  ShyraMachine machine;
  machine.write_value(0, 4, 0);
  machine.write_value(4, 4, bound);
  const auto iteration = CounterApp::iteration_program();
  for (std::size_t cycle = 0; cycle < iteration.size(); ++cycle) {
    machine.step(iteration[cycle]);
    std::printf("  cycle %2zu: ", cycle + 1);
    for (std::size_t r = 0; r < kRegisters; ++r) {
      std::printf("%d", static_cast<int>(machine.reg(r)));
      if (r == 3 || r == 7 || r == 8) std::printf(" ");
    }
    std::printf("   requirement: %2zu of 48 bits\n",
                context_requirement(iteration[cycle]).count());
  }

  // --- 2. trace & optimise -------------------------------------------------
  const auto single = to_single_task_trace(run.trace);
  const auto multi = to_multi_task_trace(run.trace);
  const Cost baseline =
      no_hyperreconfiguration_cost(single_task_machine(), run.trace.size());

  const auto single_opt = solve_single_task_switch(single.task(0), 48);

  const EvalOptions options{UploadMode::kTaskParallel,
                            UploadMode::kTaskSequential, false};
  const auto multi_opt =
      solve_coordinate_descent(multi, multi_task_machine(), options);

  std::printf("\nMT-Switch cost model results (cf. paper §6):\n");
  std::printf("  hyperreconfiguration disabled: %5lld (100.0%%)\n",
              static_cast<long long>(baseline));
  std::printf("  single task, optimal DP:       %5lld (%5.1f%%), "
              "%zu hyperreconfigurations\n",
              static_cast<long long>(single_opt.total),
              100.0 * static_cast<double>(single_opt.total) /
                  static_cast<double>(baseline),
              single_opt.partition.interval_count());
  std::printf("  multi task, partial hyper:     %5lld (%5.1f%%), "
              "%zu partial hyperreconfiguration steps\n",
              static_cast<long long>(multi_opt.total()),
              100.0 * static_cast<double>(multi_opt.total()) /
                  static_cast<double>(baseline),
              multi_opt.schedule.partial_hyper_steps());
  return 0;
}
