// Online control scenario: the context requirements arrive one by one at
// runtime (data-dependent demand, cf. paper §2: worst-case bounds vs actual
// demand) and the controller must decide on the fly when to
// hyperreconfigure.
//
// Runs the rent-or-buy controller over a drifting workload and compares
// against (a) never adapting and (b) the offline optimal DP that sees the
// whole future.
#include <cstdio>

#include "core/interval_dp.hpp"
#include "model/trace_stats.hpp"
#include "online/rent_or_buy.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace hyperrec;

  workload::RandomWalkConfig config;
  config.steps = 120;
  config.universe = 20;
  config.window = 6;
  config.drift = 0.25;
  Xoshiro256 rng(2024);
  const TaskTrace trace = workload::make_random_walk(config, rng);
  const Cost v = 20;

  // Online: no lookahead.
  online::RentOrBuyScheduler controller(config.universe, v);
  std::size_t refits = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (controller.step(trace.at(i))) ++refits;
  }

  // Offline references.
  const auto offline = solve_single_task_switch(trace, v);
  const TaskTraceStats stats(trace);
  const Cost never =
      v + static_cast<Cost>(stats.local_union_count(0, trace.size())) *
              static_cast<Cost>(trace.size());

  std::printf("drifting workload, %zu steps over %zu switches, v = %lld\n\n",
              trace.size(), static_cast<std::size_t>(config.universe),
              static_cast<long long>(v));
  std::printf("never adapt (one wide hypercontext): %5lld\n",
              static_cast<long long>(never));
  std::printf("online rent-or-buy:                  %5lld  "
              "(%zu refits, ratio %.2fx vs offline)\n",
              static_cast<long long>(controller.total_cost()), refits,
              static_cast<double>(controller.total_cost()) /
                  static_cast<double>(offline.total));
  std::printf("offline optimum (sees the future):   %5lld  "
              "(%zu hyperreconfigurations)\n",
              static_cast<long long>(offline.total),
              offline.partition.interval_count());

  std::printf("\nThe online controller tracks the drifting window without "
              "any lookahead: it pays for a re-fit only after the "
              "accumulated waste (hypercontext wider than the demand) "
              "exceeds the hyperreconfiguration cost — the ski-rental "
              "rule.\n");
  return 0;
}
