// Batch solving driver: generate or load traces, race solver portfolios
// across a thread pool, emit machine-readable JSON.
//
//   hyperrec_cli [--batch=N] [--workload=KIND] [--tasks=M] [--steps=N]
//                [--universe=L] [--seed=S] [--portfolio=a,b,c]
//                [--deadline-ms=D] [--jobs=P] [--trace=FILE ...]
//                [--cache-capacity=C] [--cache-ttl-ms=T] [--warm-start]
//                [--stream] [--window=W] [--trigger=SPEC]
//                [--streams=N] [--mux-shards=K]
//                [--hierarchical] [--segment=N] [--certify]
//                [--repeat=R] [--out=FILE] [--smoke]
//
//     --batch=N        number of generated jobs (default 8)
//     --workload=KIND  phased | random | random-walk | bursty | periodic |
//                      mixed (default mixed: cycles through all five)
//     --tasks, --steps, --universe
//                      per-job instance shape (defaults 4 / 96 / 32)
//     --seed=S         root seed; job i derives stream i (default 1)
//     --portfolio=...  comma-separated standard_solvers() subset
//                      (default: full line-up)
//     --deadline-ms=D  per-job budget, 0 = none (default 0)
//     --jobs=P         worker threads, 0 = hardware (default 0)
//     --trace=FILE     load a hyperrec-trace v1 file as one job instead of
//                      generating; repeatable, overrides --batch
//     --cache-capacity=C
//                      memoizing solve cache with C entries, 0 = off
//                      (default 0); duplicate jobs coalesce and repeats
//                      return cached schedules
//     --cache-ttl-ms=T cache entry time-to-live, 0 = no expiry (default 0)
//     --warm-start     seed iterative solvers with same-shape cached
//                      incumbents on cache misses (needs --cache-capacity)
//     --stream         streaming replay: feed each job's trace step-by-step
//                      through a windowed streaming engine (warm-started
//                      re-solves + final flush) instead of one offline
//                      solve; the JSON gains per-window reports
//     --window=W       streaming solve window in steps (default 256)
//     --trigger=SPEC   comma-separated re-solve triggers (needs --stream):
//                      steps:N | spike:F | spike-min:D | rent-or-buy |
//                      tick:MS (default steps:16 when --stream is set)
//     --streams=N      multiplexed streaming: N generated traces stream
//                      concurrently through one StreamMultiplexer (implies
//                      --stream, overrides --batch; the JSON gains the
//                      "fleet" object)
//     --mux-shards=K   multiplexer shard lanes (default 4; needs --streams)
//     --hierarchical   solve each job with the hierarchical segment-parallel
//                      solver (core/hierarchical.hpp) instead of a flat
//                      portfolio race; each job's solution carries a
//                      certified lower_bound / gap_pct, and with
//                      --cache-capacity the segment solves share the cache.
//                      Offline only (incompatible with --stream/--streams)
//     --segment=N      hierarchical segment length in steps (default 512;
//                      needs --hierarchical)
//     --certify        attach lower_bound / gap_pct certificates to flat
//                      portfolio solves too (implied by --hierarchical)
//     --repeat=R       solve the batch R times through the same engine and
//                      cache (default 1); the JSON reports the last round,
//                      whose cache stats are cumulative — with a cache,
//                      round 2+ are pure hits
//     --out=FILE       write JSON there instead of stdout
//     --smoke          tiny batch for CI (4 small jobs, 50 ms deadline)
//
// Exit status: 0 on success (including jobs that failed individually —
// inspect "ok" in the JSON), 1 on malformed invocation or I/O errors.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cache/solve_cache.hpp"
#include "core/hierarchical.hpp"
#include "engine/batch_engine.hpp"
#include "io/result_json.hpp"
#include "io/trace_io.hpp"
#include "streaming/streaming_engine.hpp"
#include "streaming/trigger_spec.hpp"
#include "workload/generators.hpp"

namespace {

using namespace hyperrec;

struct CliOptions {
  std::size_t batch = 8;
  std::string workload = "mixed";
  std::size_t tasks = 4;
  std::size_t steps = 96;
  std::size_t universe = 32;
  std::uint64_t seed = 1;
  std::vector<std::string> portfolio;
  std::chrono::milliseconds deadline{0};
  std::size_t jobs = 0;
  std::vector<std::string> trace_files;
  std::size_t cache_capacity = 0;
  std::chrono::milliseconds cache_ttl{0};
  bool warm_start = false;
  bool stream = false;
  std::size_t window = 256;
  std::string trigger;
  std::size_t streams = 0;
  std::size_t mux_shards = 4;
  bool hierarchical = false;
  std::size_t segment = 512;
  bool certify = false;
  std::size_t repeat = 1;
  std::string out;
};

bool parse_flag(const char* arg, const char* name, std::string& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  value = arg + len + 1;
  return true;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

/// Default machine for a trace: local-only, l_j = the task's universe.
MachineSpec machine_for(const MultiTaskTrace& trace) {
  std::vector<std::size_t> locals;
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    locals.push_back(trace.task(j).local_universe());
  }
  return MachineSpec::local_only(locals);
}

engine::BatchJob make_generated_job(const std::string& kind,
                                    const CliOptions& options,
                                    std::uint64_t stream) {
  Xoshiro256 root(options.seed);
  Xoshiro256 rng = root.split(stream);
  engine::BatchJob job;
  job.trace = workload::make_multi_family(kind, options.tasks, options.steps,
                                          options.universe, rng);
  job.machine = machine_for(job.trace);
  job.name = kind + "-" + std::to_string(stream);
  return job;
}

engine::BatchJob make_loaded_job(const std::string& path) {
  std::ifstream file(path);
  HYPERREC_ENSURE(file.good(), "cannot open trace file: " + path);
  engine::BatchJob job;
  job.trace = io::load_trace(file);
  job.machine = machine_for(job.trace);
  job.name = path;
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  try {
    // Apply --smoke first so explicit flags win regardless of their
    // position on the command line.
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) {
        options.batch = 4;
        options.tasks = 2;
        options.steps = 24;
        options.universe = 12;
        options.deadline = std::chrono::milliseconds{50};
      }
    }
    std::string value;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--smoke") == 0) {
        continue;  // handled above
      } else if (parse_flag(arg, "--batch", value)) {
        options.batch = std::stoul(value);
      } else if (parse_flag(arg, "--workload", value)) {
        options.workload = value;
      } else if (parse_flag(arg, "--tasks", value)) {
        options.tasks = std::stoul(value);
      } else if (parse_flag(arg, "--steps", value)) {
        options.steps = std::stoul(value);
      } else if (parse_flag(arg, "--universe", value)) {
        options.universe = std::stoul(value);
      } else if (parse_flag(arg, "--seed", value)) {
        options.seed = std::stoull(value);
      } else if (parse_flag(arg, "--portfolio", value)) {
        options.portfolio = split_csv(value);
      } else if (parse_flag(arg, "--deadline-ms", value)) {
        options.deadline = std::chrono::milliseconds{std::stoll(value)};
      } else if (parse_flag(arg, "--jobs", value)) {
        options.jobs = std::stoul(value);
      } else if (parse_flag(arg, "--trace", value)) {
        options.trace_files.push_back(value);
      } else if (parse_flag(arg, "--cache-capacity", value)) {
        options.cache_capacity = std::stoul(value);
      } else if (parse_flag(arg, "--cache-ttl-ms", value)) {
        options.cache_ttl = std::chrono::milliseconds{std::stoll(value)};
      } else if (std::strcmp(arg, "--warm-start") == 0) {
        options.warm_start = true;
      } else if (std::strcmp(arg, "--stream") == 0) {
        options.stream = true;
      } else if (parse_flag(arg, "--window", value)) {
        options.window = std::stoul(value);
      } else if (parse_flag(arg, "--trigger", value)) {
        options.trigger = value;
      } else if (parse_flag(arg, "--streams", value)) {
        options.streams = std::stoul(value);
      } else if (parse_flag(arg, "--mux-shards", value)) {
        options.mux_shards = std::stoul(value);
      } else if (std::strcmp(arg, "--hierarchical") == 0) {
        options.hierarchical = true;
      } else if (parse_flag(arg, "--segment", value)) {
        options.segment = std::stoul(value);
      } else if (std::strcmp(arg, "--certify") == 0) {
        options.certify = true;
      } else if (parse_flag(arg, "--repeat", value)) {
        options.repeat = std::stoul(value);
      } else if (parse_flag(arg, "--out", value)) {
        options.out = value;
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg);
        std::fprintf(stderr,
                     "usage: %s [--batch=N] [--workload=KIND] [--tasks=M] "
                     "[--steps=N] [--universe=L] [--seed=S] [--portfolio=a,b] "
                     "[--deadline-ms=D] [--jobs=P] [--trace=FILE] "
                     "[--cache-capacity=C] [--cache-ttl-ms=T] [--warm-start] "
                     "[--stream] [--window=W] [--trigger=SPEC] "
                     "[--streams=N] [--mux-shards=K] "
                     "[--hierarchical] [--segment=N] [--certify] "
                     "[--repeat=R] [--out=FILE] [--smoke]\n",
                     argv[0]);
        return 1;
      }
    }
    // --streams=N is multiplexed streaming shorthand: it implies --stream
    // and sizes the generated fleet (loaded --trace files keep their count).
    if (options.streams > 0) {
      options.stream = true;
      options.batch = options.streams;
    }
    const std::vector<std::string>& kinds = workload::family_names();
    std::vector<engine::BatchJob> jobs;
    if (!options.trace_files.empty()) {
      for (const std::string& path : options.trace_files) {
        jobs.push_back(make_loaded_job(path));
      }
    } else {
      for (std::size_t i = 0; i < options.batch; ++i) {
        const std::string kind = options.workload == "mixed"
                                     ? kinds[i % kinds.size()]
                                     : options.workload;
        jobs.push_back(make_generated_job(kind, options, i));
      }
    }

    HYPERREC_ENSURE(options.repeat >= 1, "--repeat must be at least 1");
    HYPERREC_ENSURE(!options.warm_start || options.cache_capacity > 0,
                    "--warm-start requires --cache-capacity > 0");
    HYPERREC_ENSURE(options.trigger.empty() || options.stream,
                    "--trigger requires --stream");
    HYPERREC_ENSURE(!options.hierarchical || !options.stream,
                    "--hierarchical is an offline solver; it cannot be "
                    "combined with --stream/--streams");
    engine::BatchEngineConfig config;
    config.parallelism = options.jobs;
    config.portfolio.solvers = options.portfolio;
    config.portfolio.deadline = options.deadline;
    if (options.stream) {
      config.stream.enabled = true;
      config.stream.window = options.window;
      config.stream.trigger =
          options.trigger.empty()
              ? streaming::parse_trigger_spec("steps:16")
              : streaming::parse_trigger_spec(options.trigger);
      if (options.streams > 0) {
        config.stream.multiplex = true;
        config.stream.shards = options.mux_shards;
      }
    }
    if (options.cache_capacity > 0) {
      cache::SolveCacheConfig cache_config;
      cache_config.capacity = options.cache_capacity;
      cache_config.ttl = options.cache_ttl;
      config.cache = std::make_shared<cache::SolveCache>(cache_config);
      config.warm_start = options.warm_start;
    }
    config.certify = options.certify;
    if (options.hierarchical) {
      // Per-job custom solver: the hierarchical tier fans segments out on
      // the *global* pool (distinct from the engine's job pool, so the two
      // levels of parallelism cannot deadlock each other) and shares the
      // engine's cache for segment memoization.
      config.solver = [segment = options.segment, cache = config.cache,
                       solvers = options.portfolio](
                          const engine::BatchJob& job,
                          const CancelToken& token) {
        const SolveInstance instance(job.trace, job.machine, job.options);
        HierarchicalConfig hier;
        hier.segment = segment;
        hier.portfolio.solvers = solvers;
        hier.cache = cache;
        hier.cancel = token;
        return solve_hierarchical(instance, hier).solution;
      };
    }
    const engine::BatchEngine batch_engine(std::move(config));

    engine::BatchResult result;
    for (std::size_t round = 0; round < options.repeat; ++round) {
      result = batch_engine.solve(jobs);
      std::size_t failed = 0;
      for (const auto& job : result.jobs) {
        if (!job.ok) ++failed;
      }
      std::fprintf(stderr,
                   "round %zu/%zu: %zu jobs (%zu failed) on %zu workers in "
                   "%lld us",
                   round + 1, options.repeat, result.jobs.size(), failed,
                   result.parallelism,
                   static_cast<long long>(result.elapsed.count()));
      if (result.cache_enabled) {
        std::fprintf(stderr,
                     "; cache %zu/%zu entries, %llu hits, %llu misses, "
                     "%llu coalesced",
                     result.cache_size, result.cache_capacity,
                     static_cast<unsigned long long>(result.cache_stats.hits),
                     static_cast<unsigned long long>(result.cache_stats.misses),
                     static_cast<unsigned long long>(
                         result.cache_stats.coalesced));
      }
      if (result.fleet.has_value()) {
        std::fprintf(
            stderr, "; fleet %zu streams, %llu appends, %llu resolves",
            result.fleet->streams,
            static_cast<unsigned long long>(result.fleet->accepted),
            static_cast<unsigned long long>(result.fleet->resolves));
      }
      std::fprintf(stderr, "\n");
    }

    if (options.out.empty()) {
      io::save_batch_result_json(std::cout, result);
    } else {
      std::ofstream file(options.out);
      HYPERREC_ENSURE(file.good(), "cannot open output file: " + options.out);
      io::save_batch_result_json(file, result);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
