// Changeover-cost scenario (§4.1): when only the *difference* between the
// new and old hypercontext has to be loaded, gradual reconfiguration-demand
// drift becomes much cheaper to track than under the plain model.
//
// A window of active switches slides across the device (think a systolic
// kernel marching over a fabric).  The changeover-aware DP keeps
// hyperreconfiguring cheaply (small symmetric difference each time); the
// plain model would have to amortise full hypercontext loads.
#include <cstdio>

#include "core/interval_dp.hpp"
#include "model/trace.hpp"

int main() {
  using namespace hyperrec;

  // 40 steps; the 6-switch active window slides one switch every 4 steps
  // over a 16-switch device.
  const std::size_t universe = 16;
  TaskTrace trace(universe);
  for (std::size_t step = 0; step < 40; ++step) {
    const std::size_t lo = std::min(step / 4, universe - 6);
    DynamicBitset req(universe);
    req.set_range(lo, lo + 6);
    trace.push_back_local(std::move(req));
  }

  const Cost v = 3;  // fixed hyperreconfiguration cost
  const auto plain = solve_single_task_switch(trace, v);
  const auto change = solve_single_task_switch_changeover(trace, v);

  std::printf("sliding-window workload, 40 steps, |X| = 16\n\n");
  std::printf("plain switch model:      cost %4lld, %zu "
              "hyperreconfigurations\n",
              static_cast<long long>(plain.total),
              plain.partition.interval_count());
  std::printf("changeover-cost model:   cost %4lld, %zu "
              "hyperreconfigurations\n",
              static_cast<long long>(change.total),
              change.partition.interval_count());

  std::printf("\nchangeover schedule (hypercontext per interval):\n");
  for (std::size_t k = 0; k < change.hypercontexts.size(); ++k) {
    const auto [lo, hi] = change.partition.interval_bounds(k);
    std::printf("  steps %2zu-%2zu: %s\n", lo, hi - 1,
                change.hypercontexts[k].to_string().c_str());
  }
  std::printf("\nNote how consecutive hypercontexts overlap: under "
              "changeover costs each hyperreconfiguration pays only for the "
              "switches entering/leaving the window.\n");
  return 0;
}
