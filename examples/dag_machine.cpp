// DAG cost model scenario (§2): a coarse-grained reconfigurable machine
// whose hypercontexts are a handful of capability grades ordered by a
// precedence DAG, rather than arbitrary switch subsets.
//
// The machine below has three routing grades; upgrades cost more per
// reconfiguration.  A video-pipeline-like workload alternates between
// scanline passes (light routing) and transform passes (heavy routing).
#include <cstdio>

#include "core/dag_dp.hpp"
#include "model/cost_dag.hpp"

int main() {
  using namespace hyperrec;

  // Hypercontexts: h0 "scanline" (cost 3) → h1 "tile" (cost 6) → h2 "full
  // crossbar" (cost 10, universal).  Requirement kinds: 0 = scanline pass,
  // 1 = tile pass, 2 = global transform.
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  std::vector<DynamicBitset> sat;
  sat.push_back(DynamicBitset::from_string("100"));
  sat.push_back(DynamicBitset::from_string("110"));
  sat.push_back(DynamicBitset::from_string("111"));
  DagCostModel model(std::move(dag), std::move(sat), {3, 6, 10}, /*w=*/12);
  model.validate();

  // Workload: 3 frames of [8 scanline, 4 tile, 2 transform] passes.
  std::vector<std::size_t> sequence;
  for (int frame = 0; frame < 3; ++frame) {
    sequence.insert(sequence.end(), 8, 0);
    sequence.insert(sequence.end(), 4, 1);
    sequence.insert(sequence.end(), 2, 2);
  }

  const DagSolution solution = solve_dag_dp(model, sequence);
  std::printf("workload: %zu passes over 3 frames\n", sequence.size());
  std::printf("optimal cost: %lld (always-full-crossbar would cost %lld)\n",
              static_cast<long long>(solution.total),
              static_cast<long long>(12 + 10 * (Cost)sequence.size()));

  const char* names[] = {"scanline", "tile", "full-crossbar"};
  std::printf("schedule:\n");
  for (std::size_t k = 0; k < solution.schedule.starts.size(); ++k) {
    const std::size_t start = solution.schedule.starts[k];
    const std::size_t end = (k + 1 < solution.schedule.starts.size())
                                ? solution.schedule.starts[k + 1]
                                : sequence.size();
    std::printf("  steps %2zu-%2zu: hypercontext %s\n", start, end - 1,
                names[solution.schedule.hypercontexts[k]]);
  }

  // The c(H) sets — which minimal hypercontexts serve each pass kind.
  std::printf("\nminimal satisfiers c(H):\n");
  const char* kind_names[] = {"scanline pass", "tile pass", "transform"};
  for (std::size_t kind = 0; kind < 3; ++kind) {
    std::printf("  %-14s:", kind_names[kind]);
    for (const std::size_t h : model.minimal_satisfiers(kind)) {
      std::printf(" %s", names[h]);
    }
    std::printf("\n");
  }
  return 0;
}
