// Command-line front end: solve a serialized context-requirement trace.
//
//   solve_trace_cli <trace-file> [solver] [l0 l1 …]
//
//     trace-file  a hyperrec-trace v1 file (see io/trace_io.hpp); "-" reads
//                 from stdin
//     solver      one of: aligned-dp, greedy-w8, coord-descent, genetic,
//                 annealing (default: coord-descent)
//     l0 l1 …     optional per-task local switch counts; default: each
//                 task's trace universe with v_j = l_j
//
// Prints the §4.2 cost breakdown and writes the solved schedule (hyperrec-
// schedule v1) to stdout, so pipelines like
//
//   ./counter_dump | solve_trace_cli - genetic > schedule.txt
//
// work.  Demonstrates the io substrate + the solver registry.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/solver.hpp"
#include "io/trace_io.hpp"
#include "model/cost_switch.hpp"

int main(int argc, char** argv) {
  using namespace hyperrec;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace-file|-> [solver] [l0 l1 ...]\n", argv[0]);
    std::fprintf(stderr, "solvers:");
    for (const auto& solver : standard_solvers()) {
      std::fprintf(stderr, " %s", solver.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  try {
    // --- load ---------------------------------------------------------------
    MultiTaskTrace trace = [&]() {
      const std::string path = argv[1];
      if (path == "-") return io::load_trace(std::cin);
      std::ifstream file(path);
      HYPERREC_ENSURE(file.good(), "cannot open trace file");
      return io::load_trace(file);
    }();

    // --- machine -------------------------------------------------------------
    std::vector<std::size_t> locals;
    for (int a = 3; a < argc; ++a) {
      locals.push_back(static_cast<std::size_t>(std::stoul(argv[a])));
    }
    if (locals.empty()) {
      for (std::size_t j = 0; j < trace.task_count(); ++j) {
        locals.push_back(trace.task(j).local_universe());
      }
    }
    const MachineSpec machine = MachineSpec::local_only(locals);
    machine.validate_trace(trace);

    // --- solve ---------------------------------------------------------------
    const std::string wanted = argc >= 3 ? argv[2] : "coord-descent";
    MTSolverFn solve;
    for (const auto& solver : standard_solvers()) {
      if (solver.name == wanted) solve = solver.fn;
    }
    HYPERREC_ENSURE(static_cast<bool>(solve), "unknown solver name");

    const EvalOptions options{UploadMode::kTaskParallel,
                              UploadMode::kTaskSequential, false};
    // One instance at the CLI boundary; the solver queries its stats.
    const SolveInstance instance(trace, machine, options);
    const MTSolution solution = solve(instance, CancelToken{});
    const Cost baseline =
        no_hyperreconfiguration_cost(machine, trace.steps());

    std::fprintf(stderr,
                 "solver %s: total %lld (%.1f%% of no-hyper %lld), "
                 "hyper %lld + reconfig %lld, %zu partial steps\n",
                 wanted.c_str(), static_cast<long long>(solution.total()),
                 100.0 * static_cast<double>(solution.total()) /
                     static_cast<double>(baseline),
                 static_cast<long long>(baseline),
                 static_cast<long long>(solution.breakdown.hyper),
                 static_cast<long long>(solution.breakdown.reconfig),
                 solution.schedule.partial_hyper_steps());

    io::save_schedule(std::cout, solution.schedule);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
