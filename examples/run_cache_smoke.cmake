# Test driver for cache.hyperrec_cli_cache_smoke (cmake -P script mode):
# run the CLI twice over the same batch through one cache, then hand the
# stats JSON to tools/check_cache_stats.py for validation.  Two steps need
# chaining, which add_test COMMAND cannot express portably on its own.
execute_process(
  COMMAND "${CLI}" --smoke --cache-capacity=64 --warm-start --repeat=2
          "--out=${OUT}"
  RESULT_VARIABLE cli_status)
if(NOT cli_status EQUAL 0)
  message(FATAL_ERROR "hyperrec_cli failed with status ${cli_status}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${OUT}" 1
  RESULT_VARIABLE check_status)
if(NOT check_status EQUAL 0)
  message(FATAL_ERROR "cache stats check failed with status ${check_status}")
endif()
