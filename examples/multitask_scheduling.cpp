// Multi-task scheduling scenario: four tasks of very different sizes share
// a partially hyperreconfigurable machine.  Compares the machine classes of
// §3 (partially reconfigurable = aligned hyperreconfigurations vs partially
// hyperreconfigurable = per-task) and the solver line-up under the §4.2
// fully synchronised cost model.
//
// Task heterogeneity is the point: partial hyperreconfigurations are
// uploaded task-parallel, so a step's hyperreconfiguration charge is
// max_{j∈A} v_j.  With equal v_j, joining an existing step is free and
// aligned schedules are already optimal; with a mix of small and large
// tasks (as on SHyRA, l = 8/8/8/24) the small tasks profit from extra cheap
// hyperreconfiguration steps that would be wasteful for the big one.
#include <cstdio>

#include "core/solver.hpp"
#include "model/cost_switch.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace hyperrec;

  // Four tasks with 6/10/14/18 local switches, phased demand, 200 steps.
  const std::vector<std::size_t> locals{6, 10, 14, 18};
  MultiTaskTrace trace;
  for (std::size_t j = 0; j < locals.size(); ++j) {
    workload::PhasedConfig config;
    config.steps = 200;
    config.universe = locals[j];
    config.phases = 4 + j;  // tasks change phase at different times
    config.window_fraction = 0.4;
    Xoshiro256 rng(1234 + j);
    trace.add_task(workload::make_phased(config, rng));
  }
  const MachineSpec machine = MachineSpec::local_only(locals);

  // §6 disciplines: partial hyperreconfigurations upload task-parallel,
  // reconfigurations task-sequentially.
  const EvalOptions options{UploadMode::kTaskParallel,
                            UploadMode::kTaskSequential, false};

  const Cost baseline = no_hyperreconfiguration_cost(machine, trace.steps());
  std::printf("4 tasks (l = 6/10/14/18) x 200 steps, 48 switches total\n");
  std::printf("baseline (hyperreconfiguration disabled): %lld\n\n",
              static_cast<long long>(baseline));

  std::printf("%-16s %10s %10s %8s\n", "solver", "cost", "% of base",
              "#hyper");
  for (const auto& solver : standard_solvers()) {
    const MTSolution solution = solver.solve(trace, machine, options);
    std::printf("%-16s %10lld %9.1f%% %8zu\n", solver.name.c_str(),
                static_cast<long long>(solution.total()),
                100.0 * static_cast<double>(solution.total()) /
                    static_cast<double>(baseline),
                solution.schedule.partial_hyper_steps());
  }

  std::printf("\nReading the table: 'aligned-dp' is exact for *partially "
              "reconfigurable* machines (all tasks hyperreconfigure "
              "together); the per-task solvers exploit *partial* "
              "hyperreconfiguration (§3) and, with heterogeneous task "
              "sizes, should cost less.\n");
  return 0;
}
