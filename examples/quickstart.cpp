// Quickstart: the 60-second tour of the hyperrec API.
//
// A computation on a hyperreconfigurable machine is a sequence of *context
// requirements* — the switches each reconfiguration step needs.  A
// *hyperreconfiguration* installs a hypercontext (a set of available
// switches); subsequent reconfigurations only pay for the switches the
// hypercontext exposes.  The solver picks when to hyperreconfigure.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/interval_dp.hpp"
#include "model/trace.hpp"

int main() {
  using namespace hyperrec;

  // A machine with 8 reconfigurable switches and a computation with two
  // phases: steps 0–3 route through switches {0,1,2}, steps 4–7 through
  // switches {5,6,7}.
  TaskTrace trace(/*local_universe=*/8);
  for (int i = 0; i < 4; ++i) {
    trace.push_back_local(DynamicBitset::from_string("11100000"));
  }
  for (int i = 0; i < 4; ++i) {
    trace.push_back_local(DynamicBitset::from_string("00000111"));
  }

  // Hyperreconfiguring costs v = 4 (e.g. 4 bits to describe the new
  // hypercontext); a reconfiguration costs |hypercontext| bits.
  const Cost v = 4;
  const SingleTaskSolution solution = solve_single_task_switch(trace, v);

  std::printf("optimal total (hyper)reconfiguration cost: %lld\n",
              static_cast<long long>(solution.total));
  std::printf("hyperreconfigurations at steps:");
  for (const std::size_t s : solution.partition.starts()) {
    std::printf(" %zu", s);
  }
  std::printf("\nhypercontexts:\n");
  for (std::size_t k = 0; k < solution.hypercontexts.size(); ++k) {
    std::printf("  interval %zu: %s  (%zu switches)\n", k,
                solution.hypercontexts[k].to_string().c_str(),
                solution.hypercontexts[k].count());
  }

  // Compare with never adapting: the machine exposes all 8 switches and
  // every one of the 8 steps pays for all of them.
  const Cost never = 8 * 8;
  std::printf("\nwithout hyperreconfiguration: %lld\n",
              static_cast<long long>(never));
  std::printf("saving: %.1f%%\n",
              100.0 * static_cast<double>(never - solution.total) /
                  static_cast<double>(never));
  return 0;
}
