// The persistent solve daemon: a SolveService behind a Unix-socket
// line-delimited JSON protocol (see src/service/protocol.hpp).
//
//   hyperrec_serve --socket=PATH [--workers=N] [--queue-capacity=C]
//                  [--cache-capacity=C] [--cache-ttl-ms=T]
//                  [--portfolio=a,b,c] [--deadline-ms=D]
//                  [--quota-rate=R] [--quota-burst=B]
//                  [--tenant-quota=NAME:RATE:BURST ...]
//                  [--mux-shards=K] [--window=W] [--trigger=SPEC]
//
//     --socket=PATH    Unix socket to listen on (required; an existing
//                      socket file at that path is replaced)
//     --workers=N      solve worker threads (default 2)
//     --queue-capacity=C
//                      admission queue bound; a full queue answers
//                      reject="backpressure" (default 64)
//     --cache-capacity=C
//                      shared solve-cache entries (default 512, 0 = off)
//     --cache-ttl-ms=T cache entry time-to-live, 0 = no expiry (default 0)
//     --portfolio=...  comma-separated standard_solvers() subset
//                      (default: full line-up)
//     --deadline-ms=D  per-job budget, 0 = none (default 0)
//     --quota-rate=R   default tenant rate, requests/second as a decimal;
//                      0 = unlimited (default 0)
//     --quota-burst=B  default tenant burst size (default 8)
//     --tenant-quota=NAME:RATE:BURST
//                      per-tenant override; repeatable
//     --mux-shards=K   streaming multiplexer shard lanes (default 4)
//     --window=W       streaming solve window in steps (default 256)
//     --trigger=SPEC   fleet-wide streaming trigger spec (strict grammar:
//                      steps:N | spike:F | spike-min:D | rent-or-buy |
//                      tick:MS; default steps:16).  A malformed spec is a
//                      startup error, never silently ignored.
//
// The daemon runs until a client sends {"op":"shutdown"} (graceful drain:
// accepted jobs finish, streams flush) or it receives SIGINT/SIGTERM.
// Exit status: 0 on clean shutdown, 1 on malformed invocation.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>

#include "service/socket_server.hpp"
#include "service/solve_service.hpp"
#include "streaming/trigger_spec.hpp"

namespace {

using namespace hyperrec;

// The handler only sets a flag — SocketServer::stop() locks mutexes and
// joins threads, none of which is async-signal-safe.  The main thread
// polls the flag between bounded waits and runs the actual shutdown.
volatile std::sig_atomic_t g_signal_received = 0;

void handle_signal(int) { g_signal_received = 1; }

bool parse_flag(const char* arg, const char* name, std::string& value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  value = arg + len + 1;
  return true;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

/// Full-consumption non-negative decimal parse (the strict-grammar
/// counterpart of trigger_spec's parse_decimal): a typo'd quota must be a
/// startup error, never a silently different policy.
double parse_quota_number(const std::string& text, const std::string& spec) {
  char* end = nullptr;
  errno = 0;
  const double value = text.empty() ? 0.0 : std::strtod(text.c_str(), &end);
  HYPERREC_ENSURE(!text.empty() && end == text.c_str() + text.size() &&
                      errno != ERANGE && value >= 0.0 &&
                      value <= std::numeric_limits<double>::max(),
                  "--tenant-quota needs non-negative decimal RATE and BURST, "
                  "got \"" + spec + "\"");
  return value;
}

/// NAME:RATE:BURST — tenant names must not contain ':'.
void parse_tenant_quota(const std::string& spec,
                        std::map<std::string, service::QuotaConfig>& quotas) {
  const std::size_t first = spec.find(':');
  const std::size_t second =
      first == std::string::npos ? std::string::npos : spec.find(':', first + 1);
  HYPERREC_ENSURE(first != std::string::npos && second != std::string::npos &&
                      first > 0 &&
                      spec.find(':', second + 1) == std::string::npos,
                  "--tenant-quota needs NAME:RATE:BURST, got \"" + spec + "\"");
  service::QuotaConfig quota;
  quota.rate_per_sec =
      parse_quota_number(spec.substr(first + 1, second - first - 1), spec);
  quota.burst = parse_quota_number(spec.substr(second + 1), spec);
  quotas[spec.substr(0, first)] = quota;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  service::ServiceConfig config;
  config.cache.capacity = 512;
  config.default_quota.burst = 8.0;
  try {
    std::string value;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (parse_flag(arg, "--socket", value)) {
        socket_path = value;
      } else if (parse_flag(arg, "--workers", value)) {
        config.workers = std::stoul(value);
      } else if (parse_flag(arg, "--queue-capacity", value)) {
        config.queue_capacity = std::stoul(value);
      } else if (parse_flag(arg, "--cache-capacity", value)) {
        config.cache.capacity = std::stoul(value);
      } else if (parse_flag(arg, "--cache-ttl-ms", value)) {
        config.cache.ttl = std::chrono::milliseconds{std::stoll(value)};
      } else if (parse_flag(arg, "--portfolio", value)) {
        config.portfolio = split_csv(value);
      } else if (parse_flag(arg, "--deadline-ms", value)) {
        config.deadline = std::chrono::milliseconds{std::stoll(value)};
      } else if (parse_flag(arg, "--quota-rate", value)) {
        config.default_quota.rate_per_sec = std::stod(value);
      } else if (parse_flag(arg, "--quota-burst", value)) {
        config.default_quota.burst = std::stod(value);
      } else if (parse_flag(arg, "--tenant-quota", value)) {
        parse_tenant_quota(value, config.tenant_quotas);
      } else if (parse_flag(arg, "--mux-shards", value)) {
        config.mux_shards = std::stoul(value);
      } else if (parse_flag(arg, "--window", value)) {
        config.stream_window = std::stoul(value);
      } else if (parse_flag(arg, "--trigger", value)) {
        // Validate eagerly so a typo aborts startup with a precise message
        // instead of surfacing on the first stream_open.
        (void)streaming::parse_trigger_spec(value);
        config.stream_trigger = value;
      } else {
        HYPERREC_ENSURE(false, std::string("unknown argument: ") + arg);
      }
    }
    HYPERREC_ENSURE(!socket_path.empty(), "--socket=PATH is required");

    service::SolveService solve_service(std::move(config));
    service::SocketServer server(
        socket_path, [&solve_service](const std::string& line) {
          service::SocketServer::LineResponse response;
          response.line = solve_service.handle_line(line);
          response.stop = solve_service.draining();
          return response;
        });
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::cerr << "hyperrec_serve: listening on " << socket_path << "\n";
    // Poll the signal flag between bounded waits: the graceful drain runs
    // here on the main thread, never inside the signal handler.
    while (g_signal_received == 0 &&
           !server.wait_for(std::chrono::milliseconds{200})) {
    }
    server.stop();
    solve_service.shutdown();
    std::cerr << "hyperrec_serve: drained, bye\n";
  } catch (const std::exception& error) {
    std::cerr << "hyperrec_serve: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
