// Differential solver fuzzer: random small instances, every registered
// solver vs the exhaustive oracle.
//
//   fuzz_harness [--seed=S] [--iters=N] [--smoke] [--mux] [--hierarchical]
//
//     --seed=S   root seed (default 1); iteration i fuzzes stream S+i, so a
//                failure's reproducer is `--seed=<printed seed> --iters=1`
//     --iters=N  iterations (default 100)
//     --smoke    25 iterations — the ctest `fuzz` label registration
//     --mux      multiplexer differential mode: each iteration streams a
//                small random fleet through one StreamMultiplexer (shared
//                cache, interleaved appends, randomized window/triggers/
//                shards) and diffs every stream's published windows,
//                schedule and cost against its solo StreamingEngine replay
//     --hierarchical
//                hierarchical differential mode: each iteration solves a
//                random instance through solve_hierarchical with a tiny
//                segment (forcing the fan-out/stitch/boundary-DP/seam-repair
//                path) and checks the spliced schedule, re-evaluated cost
//                and the certificate bracket lower_bound <= optimum <= cost
//
// Each iteration draws a random instance small enough for solve_exhaustive
// (random workload family, task count, step count, universes, machine costs,
// private-global demands, changeover/upload-mode options) and checks every
// standard_solvers() member against three oracles:
//
//   1. the returned schedule validates against the instance shape,
//   2. the reported cost equals an independent re-evaluation of the
//      schedule (solvers cannot mis-report what their schedule costs), and
//   3. the cost is bounded below by the exhaustive optimum (no solver may
//      "beat" the ground truth — that would mean an invalid schedule or a
//      broken evaluator).
//
// On any disagreement the harness prints the failing solver, the full
// instance (trace serialised, machine and options inline) and the exact
// reproducer seed, then exits 1.  tools/fuzz_solvers.py drives time-sliced
// campaigns (CI runs a 60-second slice).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/exhaustive.hpp"
#include "core/hierarchical.hpp"
#include "core/solver.hpp"
#include "io/trace_io.hpp"
#include "model/cost_switch.hpp"
#include "model/instance.hpp"
#include "streaming/stream_multiplexer.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace {

using namespace hyperrec;

struct FuzzInstance {
  MultiTaskTrace trace;
  MachineSpec machine;
  EvalOptions options;
  std::string family;
};

FuzzInstance draw_instance(Xoshiro256& rng) {
  FuzzInstance fuzz;
  const std::vector<std::string>& kinds = workload::family_names();
  fuzz.family = kinds[rng.uniform(kinds.size())];

  const std::size_t tasks = 1 + rng.uniform(2);     // 1..2
  const std::size_t steps = 2 + rng.uniform(7);     // 2..8 (periodic rounds up)
  const std::size_t universe = 1 + rng.uniform(6);  // 1..6
  const std::uint32_t demand_high =
      rng.flip(0.4) ? static_cast<std::uint32_t>(1 + rng.uniform(3)) : 0;

  for (std::size_t j = 0; j < tasks; ++j) {
    Xoshiro256 task_rng = rng.split(j + 1);
    TaskTrace task = workload::make_family(fuzz.family, steps, universe,
                                           task_rng);
    if (demand_high > 0) workload::add_private_demand(task, 0, demand_high, 2);
    fuzz.trace.add_task(std::move(task));
  }

  for (std::size_t j = 0; j < tasks; ++j) {
    TaskSpec spec;
    spec.local_switches = universe;
    spec.local_init = static_cast<Cost>(1 + rng.uniform(2 * universe));
    fuzz.machine.tasks.push_back(spec);
  }
  if (demand_high > 0) {
    // A pool covering the worst-case quota sum keeps every schedule
    // feasible — the fuzzer hunts cost disagreements, not quota rejections.
    fuzz.machine.private_global_units = tasks * demand_high;
    fuzz.machine.global_init = static_cast<Cost>(1 + rng.uniform(6));
  }

  fuzz.options.changeover = rng.flip(0.5);
  fuzz.options.hyper_upload =
      rng.flip(0.5) ? UploadMode::kTaskParallel : UploadMode::kTaskSequential;
  fuzz.options.reconfig_upload =
      rng.flip(0.5) ? UploadMode::kTaskParallel : UploadMode::kTaskSequential;
  return fuzz;
}

void dump_reproducer(const FuzzInstance& fuzz, std::uint64_t seed,
                     const std::string& solver, const std::string& what,
                     bool mux_mode = false) {
  std::fprintf(stderr, "\n=== FUZZ FAILURE ===\n");
  std::fprintf(stderr, "reproduce: fuzz_harness %s--seed=%llu --iters=1\n",
               mux_mode ? "--mux " : "",
               static_cast<unsigned long long>(seed));
  std::fprintf(stderr, "solver: %s\nfamily: %s\nproblem: %s\n", solver.c_str(),
               fuzz.family.c_str(), what.c_str());
  std::fprintf(
      stderr,
      "machine: g=%zu w=%lld locals/init=", fuzz.machine.private_global_units,
      static_cast<long long>(fuzz.machine.global_init));
  for (const TaskSpec& task : fuzz.machine.tasks) {
    std::fprintf(stderr, " %zu/%lld", task.local_switches,
                 static_cast<long long>(task.local_init));
  }
  std::fprintf(stderr,
               "\noptions: changeover=%d hyper_upload=%d reconfig_upload=%d\n",
               fuzz.options.changeover ? 1 : 0,
               static_cast<int>(fuzz.options.hyper_upload),
               static_cast<int>(fuzz.options.reconfig_upload));
  std::fprintf(stderr, "trace:\n%s", io::trace_to_string(fuzz.trace).c_str());
}

/// Checks one solver on one instance; returns false (after dumping the
/// reproducer) on the first disagreement.  `skipped` counts solvers that
/// legitimately declined the instance (the DP members reject changeover
/// costs by documented precondition).
bool check_solver(const NamedSolver& solver, const SolveInstance& instance,
                  const FuzzInstance& fuzz, Cost optimum, std::uint64_t seed,
                  std::size_t& skipped) {
  MTSolution solution;
  try {
    solution = solver.solve(instance);
  } catch (const PreconditionError& error) {
    if (fuzz.options.changeover &&
        std::string(error.what()).find("changeover") != std::string::npos) {
      ++skipped;  // documented "does not support changeover" refusal
      return true;
    }
    dump_reproducer(fuzz, seed, solver.name,
                    std::string("solver threw: ") + error.what());
    return false;
  } catch (const std::exception& error) {
    dump_reproducer(fuzz, seed, solver.name,
                    std::string("solver threw: ") + error.what());
    return false;
  }
  try {
    solution.schedule.validate(instance.task_count(), instance.steps());
  } catch (const std::exception& error) {
    dump_reproducer(fuzz, seed, solver.name,
                    std::string("schedule does not validate: ") +
                        error.what());
    return false;
  }
  try {
    const CostBreakdown replay =
        evaluate_fully_sync_switch(instance, solution.schedule);
    if (replay.total != solution.total()) {
      dump_reproducer(fuzz, seed, solver.name,
                      "reported cost " + std::to_string(solution.total()) +
                          " != re-evaluated cost " +
                          std::to_string(replay.total));
      return false;
    }
  } catch (const std::exception& error) {
    dump_reproducer(fuzz, seed, solver.name,
                    std::string("schedule does not evaluate: ") +
                        error.what());
    return false;
  }
  if (solution.total() < optimum) {
    dump_reproducer(fuzz, seed, solver.name,
                    "cost " + std::to_string(solution.total()) +
                        " beats the exhaustive optimum " +
                        std::to_string(optimum));
    return false;
  }
  return true;
}

/// One --mux iteration: a random fleet rides ONE StreamMultiplexer (shared
/// cache, interleaved appends, randomized window/trigger/shard geometry) and
/// every stream's published windows, schedule and cost must be bit-identical
/// to a cache-less solo StreamingEngine replay of the same trace.  The
/// oracle here is the solo engine, not solve_exhaustive — the mux fuzz hunts
/// sequencing/coalescing bugs, not cost-model bugs.
bool check_mux_iteration(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ull + 0xF1EE7);

  streaming::StreamingConfig stream_config;
  stream_config.window = 1 + rng.uniform(6);            // 1..6
  stream_config.trigger.every_steps = rng.uniform(5);   // 0..4
  if (rng.flip(0.3)) {
    stream_config.trigger.spike_factor = 1.5;
    stream_config.trigger.spike_min_demand = 2;
  }
  stream_config.portfolio.solvers = {"aligned-dp", "greedy-w8"};

  const std::size_t streams = 2 + rng.uniform(4);  // 2..5
  std::vector<FuzzInstance> fleet;
  std::size_t max_steps = 0;
  for (std::size_t j = 0; j < streams; ++j) {
    Xoshiro256 stream_rng = rng.split(j + 17);
    FuzzInstance fuzz = draw_instance(stream_rng);
    // The portfolio's DP members reject changeover by precondition; the mux
    // fuzz targets op sequencing, so keep every instance solvable.
    fuzz.options.changeover = false;
    max_steps = std::max(max_steps, fuzz.trace.steps());
    fleet.push_back(std::move(fuzz));
  }

  streaming::MultiplexerConfig mux_config;
  mux_config.shards = 1 + rng.uniform(4);  // 1..4
  mux_config.stream = stream_config;
  streaming::StreamMultiplexer mux(mux_config);
  for (std::size_t j = 0; j < streams; ++j) {
    mux.open_stream(fleet[j].machine, fleet[j].options);
  }
  for (std::size_t s = 0; s < max_steps; ++s) {
    for (std::size_t j = 0; j < streams; ++j) {
      if (s < fleet[j].trace.steps()) {
        mux.append_step(j, fleet[j].trace.step(s));
      }
    }
  }
  mux.flush_all();
  mux.drain();

  for (std::size_t j = 0; j < streams; ++j) {
    const std::string tag = "stream-multiplexer[" + std::to_string(j) + "]";
    streaming::StreamingEngine solo(fleet[j].machine, fleet[j].options,
                                    stream_config);
    for (std::size_t s = 0; s < fleet[j].trace.steps(); ++s) {
      solo.append_step(fleet[j].trace.step(s));
    }
    solo.flush();

    const streaming::StreamingEngine& muxed = mux.engine(j);
    std::string what;
    if (mux.first_failure() && mux.first_failure()->stream == j) {
      what = "stream poisoned at step " +
             std::to_string(mux.first_failure()->step) + ": " +
             mux.first_failure()->what;
    } else if (muxed.steps() != solo.steps()) {
      what = "applied " + std::to_string(muxed.steps()) + " steps, solo saw " +
             std::to_string(solo.steps());
    } else if (muxed.resolve_count() != solo.resolve_count()) {
      what = "resolve count " + std::to_string(muxed.resolve_count()) +
             " != solo " + std::to_string(solo.resolve_count());
    } else {
      for (std::size_t k = 0; k < solo.windows().size() && what.empty(); ++k) {
        const streaming::WindowReport& a = muxed.windows()[k];
        const streaming::WindowReport& b = solo.windows()[k];
        if (a.trigger != b.trigger || a.window_lo != b.window_lo ||
            a.window_hi != b.window_hi || a.ok != b.ok ||
            a.window_cost != b.window_cost ||
            a.published_cost != b.published_cost) {
          what = "window " + std::to_string(k) +
                 " diverged from the solo replay (trigger/range/cost)";
        }
      }
      if (what.empty()) {
        const MultiTaskSchedule& fs = muxed.schedule();
        const MultiTaskSchedule& ss = solo.schedule();
        for (std::size_t t = 0; t < ss.tasks.size() && what.empty(); ++t) {
          if (fs.tasks[t].starts() != ss.tasks[t].starts()) {
            what = "task " + std::to_string(t) + " schedule starts diverged";
          }
        }
        if (what.empty() && fs.global_boundaries != ss.global_boundaries) {
          what = "global boundaries diverged";
        }
        if (what.empty() &&
            muxed.current_solution().total() != solo.current_solution().total()) {
          what = "final cost " +
                 std::to_string(muxed.current_solution().total()) +
                 " != solo " + std::to_string(solo.current_solution().total());
        }
      }
    }
    if (!what.empty()) {
      dump_reproducer(fleet[j], seed, tag, what, /*mux_mode=*/true);
      return false;
    }
  }
  return true;
}

/// One --hierarchical iteration: a random instance (changeover forced off —
/// the hierarchical tier declines it by documented precondition) is solved
/// through solve_hierarchical with a tiny segment length, so even the 2..8
/// step fuzz traces genuinely exercise the segment fan-out, stitch, boundary
/// DP and seam repair.  Oracles: the spliced schedule validates, the
/// reported cost equals an independent re-evaluation, the cost is bounded
/// below by the exhaustive optimum, and the attached certificate brackets it
/// (lower_bound <= optimum <= hierarchical cost).
bool check_hierarchical_iteration(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ull + 0x41E12);
  FuzzInstance fuzz = draw_instance(rng);
  fuzz.options.changeover = false;

  HierarchicalConfig config;
  config.segment = 2 + rng.uniform(2);  // 2..3: always multi-segment
  config.seam_repair = rng.flip(0.7);
  config.parallel = false;  // deterministic reproducers
  const std::string tag =
      "hierarchical[segment=" + std::to_string(config.segment) +
      (config.seam_repair ? ",repair" : "") + "]";

  const SolveInstance instance(fuzz.trace, fuzz.machine, fuzz.options);
  const Cost optimum = solve_exhaustive(instance).total();
  HierarchicalResult result;
  try {
    result = solve_hierarchical(instance, config);
  } catch (const std::exception& error) {
    dump_reproducer(fuzz, seed, tag,
                    std::string("solver threw: ") + error.what());
    return false;
  }
  const MTSolution& solution = result.solution;
  try {
    solution.schedule.validate(instance.task_count(), instance.steps());
    const CostBreakdown replay =
        evaluate_fully_sync_switch(instance, solution.schedule);
    if (replay.total != solution.total()) {
      dump_reproducer(fuzz, seed, tag,
                      "reported cost " + std::to_string(solution.total()) +
                          " != re-evaluated cost " +
                          std::to_string(replay.total));
      return false;
    }
  } catch (const std::exception& error) {
    dump_reproducer(fuzz, seed, tag,
                    std::string("spliced schedule invalid: ") + error.what());
    return false;
  }
  if (solution.total() < optimum) {
    dump_reproducer(fuzz, seed, tag,
                    "cost " + std::to_string(solution.total()) +
                        " beats the exhaustive optimum " +
                        std::to_string(optimum));
    return false;
  }
  if (!solution.lower_bound.has_value()) {
    dump_reproducer(fuzz, seed, tag, "missing lower_bound certificate");
    return false;
  }
  if (*solution.lower_bound > optimum) {
    dump_reproducer(fuzz, seed, tag,
                    "lower bound " + std::to_string(*solution.lower_bound) +
                        " exceeds the exhaustive optimum " +
                        std::to_string(optimum));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::size_t iters = 100;
  bool mux = false;
  bool hierarchical = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--seed=", 7) == 0) {
        seed = std::stoull(arg + 7);
      } else if (std::strncmp(arg, "--iters=", 8) == 0) {
        iters = std::stoul(arg + 8);
      } else if (std::strcmp(arg, "--smoke") == 0) {
        iters = 25;
      } else if (std::strcmp(arg, "--mux") == 0) {
        mux = true;
      } else if (std::strcmp(arg, "--hierarchical") == 0) {
        hierarchical = true;
      } else {
        std::fprintf(stderr,
                     "usage: %s [--seed=S] [--iters=N] [--smoke] [--mux] "
                     "[--hierarchical]\n",
                     argv[0]);
        return 1;
      }
    }

    if (hierarchical) {
      for (std::size_t iter = 0; iter < iters; ++iter) {
        if (!check_hierarchical_iteration(seed + iter)) return 1;
      }
      std::printf("fuzz_harness: %zu hierarchical solves consistent with the "
                  "exhaustive oracle and their certificates "
                  "(seeds %llu..%llu)\n",
                  iters, static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(seed + iters - 1));
      return 0;
    }

    if (mux) {
      for (std::size_t iter = 0; iter < iters; ++iter) {
        if (!check_mux_iteration(seed + iter)) return 1;
      }
      std::printf("fuzz_harness: %zu multiplexed fleets bit-identical to "
                  "their solo replays (seeds %llu..%llu)\n",
                  iters, static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(seed + iters - 1));
      return 0;
    }

    const std::vector<NamedSolver> solvers = standard_solvers();
    std::size_t checks = 0;
    std::size_t skipped = 0;
    for (std::size_t iter = 0; iter < iters; ++iter) {
      const std::uint64_t stream = seed + iter;
      Xoshiro256 rng(stream * 0x9E3779B97F4A7C15ull + 0xF022);
      const FuzzInstance fuzz = draw_instance(rng);
      const SolveInstance instance(fuzz.trace, fuzz.machine, fuzz.options);
      const Cost optimum = solve_exhaustive(instance).total();
      for (const NamedSolver& solver : solvers) {
        if (!check_solver(solver, instance, fuzz, optimum, stream, skipped)) {
          return 1;
        }
        ++checks;
      }
    }
    std::printf("fuzz_harness: %zu iterations x %zu solvers = %zu checks "
                "(%zu changeover-declines), all consistent with the "
                "exhaustive oracle (seeds %llu..%llu)\n",
                iters, solvers.size(), checks, skipped,
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(seed + iters - 1));
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
