// Machine descriptions for the MT-Switch cost model (paper §4).
//
// A machine is described by its task layout: the number of local switches
// l_j per task (f_j^loc is fixed at initialisation, §3), the local
// hyperreconfiguration cost v_j, the pool of g interchangeable
// private-global units, the size of the public hypercontext, and the global
// hyperreconfiguration cost w.
#pragma once

#include <cstddef>
#include <vector>

#include "model/trace.hpp"
#include "model/types.hpp"

namespace hyperrec {

struct TaskSpec {
  /// l_j — size of the task's fixed local switch set f_j^loc.
  std::size_t local_switches = 0;
  /// v_j — cost of one local (partial) hyperreconfiguration of this task.
  /// The paper's typical special case uses v_j = |h_j| + |f_j^loc|, which for
  /// machines without private-global resources reduces to v_j = l_j.
  Cost local_init = 0;
};

struct MachineSpec {
  std::vector<TaskSpec> tasks;

  /// g — number of interchangeable private-global units (e.g. I/O blocks);
  /// 0 means the machine has no private-global resources.
  std::size_t private_global_units = 0;

  /// |h^pub| — size of the public hypercontext defined by the last global
  /// hyperreconfiguration.  Public resources only exist on context- or
  /// fully-synchronised machines (§3); 0 means none.
  std::size_t public_context_size = 0;

  /// w — cost of a global hyperreconfiguration.  Charged once per global
  /// hyperreconfiguration when the machine has global resources; machines
  /// with only local resources perform no global hyperreconfigurations
  /// (§5: "there are no global hyperreconfigurations in this case").
  Cost global_init = 0;

  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks.size();
  }

  /// Σ_j l_j.
  [[nodiscard]] std::size_t total_local_switches() const noexcept;

  /// Total switch count |X| = Σ l_j + g + |X^pub|; the per-step cost of the
  /// machine when hyperreconfiguration is disabled.
  [[nodiscard]] std::size_t total_switches() const noexcept;

  /// True iff the machine has any global (private or public) resources.
  [[nodiscard]] bool has_global_resources() const noexcept {
    return private_global_units > 0 || public_context_size > 0;
  }

  /// Checks trace shape against the machine: task counts match, local
  /// universes equal l_j, private demands never exceed g.
  void validate_trace(const MultiTaskTrace& trace) const;

  /// Machine of m identical tasks with l local switches each and the default
  /// init cost v_j = l.
  [[nodiscard]] static MachineSpec uniform_local(std::size_t m, std::size_t l);

  /// Machine from a list of per-task local switch counts, v_j = l_j.
  [[nodiscard]] static MachineSpec local_only(
      const std::vector<std::size_t>& locals);
};

}  // namespace hyperrec
