// Shared interval-query precomputation over context-requirement traces.
//
// Every MT-Switch solver and evaluator asks the same three questions about a
// task trace, millions of times, always over step intervals [lo, hi):
//
//   * what is the union of the local requirements?        (hypercontext)
//   * how many switches does that union contain?          (|h^loc|)
//   * what is the maximum private demand?                 (|h^priv|)
//
// TaskTrace::local_union_naive answers them by rescanning the interval —
// O(range·words) per query, called from O(n²) interval loops.  TaskTraceStats
// precomputes once per instance so every later query is cheap:
//
//   * a sparse table of word-level interval unions (binary lifting): any
//     local_union(lo, hi) is the OR of two precomputed rows — O(words) =
//     O(universe/64) per query, and local_union_count folds the popcount
//     into the same two-row pass without materialising a bitset;
//   * per-switch prefix presence counts over the task's *support* (the
//     switches that ever appear), giving O(1) switch_present(b, lo, hi)
//     and popcounts in O(switches touched) — (steps+1)·|support| uint32s,
//     built step-major with bulk row copies so eager construction stays
//     cheap even though today's solvers only exercise the union/demand
//     tables (the presence view serves per-switch analyses and tooling);
//   * a sparse table of prefix maxima of the private demand — O(1) queries;
//   * cached step/universe metadata.
//
// MultiTaskTraceStats bundles one TaskTraceStats per task and, for
// synchronized traces, the per-step sums of private demands across tasks
// (with an O(1) range-max view) — a fast necessary condition for the §3
// private-global feasibility check.
//
// Both classes are immutable views: they hold a pointer to the trace they
// were built from and must not outlive it.  SolveInstance (model/instance.hpp)
// owns trace and stats together and is the unit the solver stack shares.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "model/trace.hpp"
#include "support/bitset.hpp"
#include "support/bitset_kernels.hpp"

namespace hyperrec {

/// Precomputed interval-query structures for one task's trace.
class TaskTraceStats {
 public:
  /// Empty view; every accessor other than assignment is invalid.
  TaskTraceStats() = default;

  /// Builds all tables in O(n·log n·words + n·|support|).
  explicit TaskTraceStats(const TaskTrace& trace);

  [[nodiscard]] const TaskTrace& trace() const noexcept { return *trace_; }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t universe() const noexcept { return universe_; }

  /// Union of local requirements over [lo, hi); O(universe/64).
  [[nodiscard]] DynamicBitset local_union(std::size_t lo,
                                          std::size_t hi) const;

  /// |local_union(lo, hi)| without materialising the union; O(universe/64).
  /// Inline (header-defined): the O(n²) interval DPs call this from other
  /// translation units, and the two-row kernel popcount is cheaper than the
  /// call that would otherwise wrap it.
  [[nodiscard]] std::size_t local_union_count(std::size_t lo,
                                              std::size_t hi) const {
    check_range(lo, hi);
    if (lo == hi || words_ == 0) return 0;
    const RowPair rows = union_rows_for(lo, hi);
    return kernels::or_popcount(rows.a, rows.b, words_);
  }

  /// |base ∪ local_union(lo, hi)| in one fused pass — no materialisation.
  /// `base` must share the task's universe.  Greedy's window scoring uses
  /// this to price extending the current hypercontext.
  [[nodiscard]] std::size_t local_union_count_with(const DynamicBitset& base,
                                                   std::size_t lo,
                                                   std::size_t hi) const {
    check_range(lo, hi);
    HYPERREC_ENSURE(base.size() == universe_,
                    "base universe differs from the task universe");
    if (lo == hi || words_ == 0) return base.count();
    const RowPair rows = union_rows_for(lo, hi);
    return kernels::or3_popcount(rows.a, rows.b, base.words().data(), words_);
  }

  /// True iff switch b appears in some step of [lo, hi); O(1).
  [[nodiscard]] bool switch_present(std::size_t b, std::size_t lo,
                                    std::size_t hi) const;

  /// Number of steps in [lo, hi) that require switch b; O(1).
  [[nodiscard]] std::uint32_t switch_step_count(std::size_t b, std::size_t lo,
                                                std::size_t hi) const;

  /// Maximum private demand over [lo, hi); 0 for an empty range; O(1).
  [[nodiscard]] std::uint32_t max_private_demand(std::size_t lo,
                                                 std::size_t hi) const {
    check_range(lo, hi);
    if (lo == hi) return 0;
    const std::size_t k = log2_[hi - lo];
    const std::size_t span = std::size_t{1} << k;
    return std::max(priv_rows_[row(k, lo)], priv_rows_[row(k, hi - span)]);
  }

  /// Switches that appear in at least one step, ascending.
  [[nodiscard]] const std::vector<std::size_t>& support() const noexcept {
    return support_;
  }

 private:
  void check_range(std::size_t lo, std::size_t hi) const {
    HYPERREC_ENSURE(lo <= hi && hi <= steps_, "stats query range out of bounds");
  }

  const TaskTrace* trace_ = nullptr;
  std::size_t steps_ = 0;
  std::size_t universe_ = 0;
  std::size_t words_ = 0;

  /// Row index of sparse-table entry (level k, start i); level k has
  /// (steps - 2^k + 1) rows covering steps [i, i + 2^k).
  [[nodiscard]] std::size_t row(std::size_t k, std::size_t i) const noexcept {
    return level_row_start_[k] + i;
  }

  /// The two overlapping table rows whose OR covers the non-empty range
  /// [lo, hi) — the one copy of the seam-prone span arithmetic shared by
  /// every union query.
  struct RowPair {
    const DynamicBitset::Word* a;
    const DynamicBitset::Word* b;
  };
  [[nodiscard]] RowPair union_rows_for(std::size_t lo, std::size_t hi) const {
    const std::size_t k = log2_[hi - lo];
    const std::size_t span = std::size_t{1} << k;
    return {union_rows_.data() + row(k, lo) * words_,
            union_rows_.data() + row(k, hi - span) * words_};
  }

  /// floor(log2(len)) for len in [1, steps].
  std::vector<std::uint8_t> log2_;
  /// Per-level row offsets into the flat arenas below (all levels share one
  /// allocation each — stats are built once per instance but on the batch
  /// engine's per-job path, so construction stays allocation-lean).
  std::vector<std::size_t> level_row_start_;
  /// Interval-union rows, `words_` words each, levels concatenated.
  std::vector<DynamicBitset::Word> union_rows_;
  /// priv_rows_[row(k, i)] = max private demand over steps [i, i + 2^k).
  std::vector<std::uint32_t> priv_rows_;
  /// presence_[i·|support| + si] = #steps < i requiring support_[si].
  std::vector<std::uint32_t> presence_;
  std::vector<std::size_t> support_;
  /// universe → index into support_, or npos for never-required switches.
  std::vector<std::size_t> support_index_;
};

/// Per-task stats for all tasks of a multi-task trace, plus cross-task
/// per-step demand sums on synchronized traces.
class MultiTaskTraceStats {
 public:
  MultiTaskTraceStats() = default;
  explicit MultiTaskTraceStats(const MultiTaskTrace& trace);

  [[nodiscard]] const MultiTaskTrace& trace() const noexcept {
    return *trace_;
  }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] const TaskTraceStats& task(std::size_t j) const {
    HYPERREC_ENSURE(j < tasks_.size(), "task index out of range");
    return tasks_[j];
  }
  [[nodiscard]] bool synchronized() const noexcept { return synchronized_; }

  /// Σ_j private demand of task j at step i (synchronized traces only).
  [[nodiscard]] std::uint64_t step_demand_sum(std::size_t i) const;

  /// max over steps [lo, hi) of step_demand_sum — an O(1) *lower bound* on
  /// the §3 per-block quota sum Σ_j max_j (a block whose max step sum
  /// already exceeds the pool is infeasible without any per-task queries).
  [[nodiscard]] std::uint64_t max_step_demand_sum(std::size_t lo,
                                                  std::size_t hi) const;

 private:
  const MultiTaskTrace* trace_ = nullptr;
  std::vector<TaskTraceStats> tasks_;
  bool synchronized_ = true;
  std::vector<std::uint8_t> log2_;
  /// demand_levels_[k][i] = max over steps [i, i + 2^k) of the per-step sums.
  std::vector<std::vector<std::uint64_t>> demand_levels_;
  std::vector<std::uint64_t> demand_sums_;
};

}  // namespace hyperrec
