#include "model/machine.hpp"

namespace hyperrec {

std::size_t MachineSpec::total_local_switches() const noexcept {
  std::size_t total = 0;
  for (const TaskSpec& task : tasks) total += task.local_switches;
  return total;
}

std::size_t MachineSpec::total_switches() const noexcept {
  return total_local_switches() + private_global_units + public_context_size;
}

void MachineSpec::validate_trace(const MultiTaskTrace& trace) const {
  HYPERREC_ENSURE(trace.task_count() == tasks.size(),
                  "trace task count differs from machine task count");
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    const TaskTrace& task = trace.task(j);
    HYPERREC_ENSURE(task.local_universe() == tasks[j].local_switches,
                    "task local universe differs from machine l_j");
    for (std::size_t i = 0; i < task.size(); ++i) {
      HYPERREC_ENSURE(task.at(i).private_demand <= private_global_units,
                      "private demand exceeds the machine's unit pool");
    }
  }
}

MachineSpec MachineSpec::uniform_local(std::size_t m, std::size_t l) {
  MachineSpec spec;
  spec.tasks.assign(m, TaskSpec{l, static_cast<Cost>(l)});
  return spec;
}

MachineSpec MachineSpec::local_only(const std::vector<std::size_t>& locals) {
  MachineSpec spec;
  spec.tasks.reserve(locals.size());
  for (const std::size_t l : locals) {
    spec.tasks.push_back(TaskSpec{l, static_cast<Cost>(l)});
  }
  return spec;
}

}  // namespace hyperrec
