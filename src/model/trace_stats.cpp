#include "model/trace_stats.hpp"

#include <algorithm>

namespace hyperrec {

namespace {

constexpr std::size_t kNoSupport = static_cast<std::size_t>(-1);

std::vector<std::uint8_t> build_log2(std::size_t n) {
  // log2_[len] = floor(log2(len)) for len in [1, n]; index 0 unused.
  std::vector<std::uint8_t> table(n + 1, 0);
  std::uint8_t k = 0;
  for (std::size_t len = 1; len < table.size(); ++len) {
    if ((std::size_t{2} << k) <= len) ++k;
    table[len] = k;
  }
  return table;
}

}  // namespace

TaskTraceStats::TaskTraceStats(const TaskTrace& trace)
    : trace_(&trace),
      steps_(trace.size()),
      universe_(trace.local_universe()),
      words_((universe_ + DynamicBitset::kWordBits - 1) /
             DynamicBitset::kWordBits) {
  log2_ = build_log2(steps_);

  // --- sparse tables (binary lifting) over unions and private maxima ------
  const std::size_t levels = steps_ == 0 ? 0 : std::size_t{log2_[steps_]} + 1;
  level_row_start_.resize(levels);
  std::size_t rows_total = 0;
  for (std::size_t k = 0; k < levels; ++k) {
    level_row_start_[k] = rows_total;
    rows_total += steps_ - (std::size_t{1} << k) + 1;
  }
  union_rows_.assign(rows_total * words_, 0);
  priv_rows_.assign(rows_total, 0);
  for (std::size_t i = 0; i < steps_; ++i) {
    const ContextRequirement& req = trace.at(i);
    std::copy(req.local.words().begin(), req.local.words().end(),
              union_rows_.begin() + static_cast<std::ptrdiff_t>(i * words_));
    priv_rows_[i] = req.private_demand;
  }
  for (std::size_t k = 1; k < levels; ++k) {
    const std::size_t half = std::size_t{1} << (k - 1);
    const std::size_t rows = steps_ - (std::size_t{1} << k) + 1;
    for (std::size_t i = 0; i < rows; ++i) {
      const DynamicBitset::Word* a = union_rows_.data() + row(k - 1, i) * words_;
      const DynamicBitset::Word* b =
          union_rows_.data() + row(k - 1, i + half) * words_;
      DynamicBitset::Word* out = union_rows_.data() + row(k, i) * words_;
      kernels::or_words(out, a, b, words_);
      priv_rows_[row(k, i)] =
          std::max(priv_rows_[row(k - 1, i)], priv_rows_[row(k - 1, i + half)]);
    }
  }

  // --- per-switch prefix presence counts over the support -----------------
  // Step-major rows: row i+1 is a bulk copy of row i plus increments for
  // that step's set bits only, so the build is O(n·|support|/width + set
  // bits) instead of one branchy test per (step, switch).
  support_index_.assign(universe_, kNoSupport);
  if (steps_ > 0 && words_ > 0) {
    // The top sparse-table levels already cover the full range.
    const DynamicBitset ever = local_union(0, steps_);
    ever.for_each_set([this](std::size_t b) {
      support_index_[b] = support_.size();
      support_.push_back(b);
    });
    const std::size_t width = support_.size();
    presence_.assign((steps_ + 1) * width, 0);
    for (std::size_t i = 0; i < steps_; ++i) {
      const std::uint32_t* prev = presence_.data() + i * width;
      std::uint32_t* next = presence_.data() + (i + 1) * width;
      std::copy(prev, prev + width, next);
      trace.at(i).local.for_each_set(
          [this, next](std::size_t b) { ++next[support_index_[b]]; });
    }
  }
}

DynamicBitset TaskTraceStats::local_union(std::size_t lo,
                                          std::size_t hi) const {
  check_range(lo, hi);
  if (lo == hi || words_ == 0) return DynamicBitset(universe_);
  const RowPair rows = union_rows_for(lo, hi);
  // Tail bits past size() are zero in both rows by DynamicBitset's
  // invariant, so the OR of the rows is already a valid word image.
  return DynamicBitset::from_or_words(universe_, rows.a, rows.b, words_);
}

bool TaskTraceStats::switch_present(std::size_t b, std::size_t lo,
                                    std::size_t hi) const {
  return switch_step_count(b, lo, hi) > 0;
}

std::uint32_t TaskTraceStats::switch_step_count(std::size_t b, std::size_t lo,
                                                std::size_t hi) const {
  check_range(lo, hi);
  HYPERREC_ENSURE(b < universe_, "switch index out of range");
  const std::size_t si = support_index_[b];
  if (si == kNoSupport) return 0;
  const std::size_t width = support_.size();
  return presence_[hi * width + si] - presence_[lo * width + si];
}

MultiTaskTraceStats::MultiTaskTraceStats(const MultiTaskTrace& trace)
    : trace_(&trace), synchronized_(trace.synchronized()) {
  tasks_.reserve(trace.task_count());
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    tasks_.emplace_back(trace.task(j));
  }
  if (!synchronized_ || trace.task_count() == 0) return;

  const std::size_t n = trace.task(0).size();
  demand_sums_.assign(n, 0);
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      demand_sums_[i] += trace.task(j).at(i).private_demand;
    }
  }
  log2_ = build_log2(n);
  const std::size_t levels = n == 0 ? 0 : std::size_t{log2_[n]} + 1;
  demand_levels_.resize(levels);
  if (levels > 0) demand_levels_[0] = demand_sums_;
  for (std::size_t k = 1; k < levels; ++k) {
    const std::size_t half = std::size_t{1} << (k - 1);
    const std::size_t rows = n - (std::size_t{1} << k) + 1;
    demand_levels_[k].resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      demand_levels_[k][i] =
          std::max(demand_levels_[k - 1][i], demand_levels_[k - 1][i + half]);
    }
  }
}

std::uint64_t MultiTaskTraceStats::step_demand_sum(std::size_t i) const {
  HYPERREC_ENSURE(synchronized_, "demand sums need a synchronized trace");
  HYPERREC_ENSURE(i < demand_sums_.size(), "step out of range");
  return demand_sums_[i];
}

std::uint64_t MultiTaskTraceStats::max_step_demand_sum(std::size_t lo,
                                                       std::size_t hi) const {
  HYPERREC_ENSURE(synchronized_, "demand sums need a synchronized trace");
  HYPERREC_ENSURE(lo <= hi && hi <= demand_sums_.size(),
                  "stats query range out of bounds");
  if (lo == hi) return 0;
  const std::size_t k = log2_[hi - lo];
  const std::size_t span = std::size_t{1} << k;
  return std::max(demand_levels_[k][lo], demand_levels_[k][hi - span]);
}

}  // namespace hyperrec
