#include "model/cost_dag.hpp"

#include <limits>

namespace hyperrec {

DagCostModel::DagCostModel(Dag dag, std::vector<DynamicBitset> sat,
                           std::vector<Cost> cost, Cost w)
    : dag_(std::move(dag)),
      sat_(std::move(sat)),
      cost_(std::move(cost)),
      w_(w) {
  HYPERREC_ENSURE(dag_.node_count() == sat_.size() &&
                      sat_.size() == cost_.size(),
                  "dag/sat/cost sizes must agree");
}

Cost DagCostModel::cost(std::size_t h) const {
  HYPERREC_ENSURE(h < cost_.size(), "hypercontext id out of range");
  return cost_[h];
}

const DynamicBitset& DagCostModel::context_set(std::size_t h) const {
  HYPERREC_ENSURE(h < sat_.size(), "hypercontext id out of range");
  return sat_[h];
}

void DagCostModel::validate() const {
  HYPERREC_ENSURE(dag_.is_acyclic(), "precedence graph has a cycle");
  for (std::size_t h = 0; h < hypercontext_count(); ++h) {
    HYPERREC_ENSURE(cost_[h] > 0, "DAG model requires cost(h) > 0");
    for (const std::size_t to : dag_.successors(h)) {
      HYPERREC_ENSURE(sat_[h].subset_of(sat_[to]),
                      "edge (h1,h2) requires h1(C) ⊆ h2(C)");
      HYPERREC_ENSURE(cost_[h] <= cost_[to],
                      "edge (h1,h2) requires cost(h1) ≤ cost(h2)");
    }
  }
  bool universal = false;
  for (std::size_t h = 0; h < hypercontext_count() && !universal; ++h) {
    universal = sat_[h].count() == kind_count();
  }
  HYPERREC_ENSURE(universal, "no universal hypercontext with h(C) = C");
}

std::vector<std::size_t> DagCostModel::minimal_satisfiers(
    std::size_t kind) const {
  HYPERREC_ENSURE(kind < kind_count(), "context kind out of range");
  std::vector<std::size_t> satisfying;
  for (std::size_t h = 0; h < hypercontext_count(); ++h) {
    if (sat_[h].test(kind)) satisfying.push_back(h);
  }
  return Dag::minimal_elements(satisfying, dag_.reachability());
}

std::size_t DagCostModel::cheapest_satisfying(
    const DynamicBitset& kinds) const {
  std::size_t best = hypercontext_count();
  Cost best_cost = std::numeric_limits<Cost>::max();
  for (std::size_t h = 0; h < hypercontext_count(); ++h) {
    if (kinds.subset_of(sat_[h]) && cost_[h] < best_cost) {
      best = h;
      best_cost = cost_[h];
    }
  }
  return best;
}

Cost evaluate_dag_model(const DagCostModel& model,
                        const std::vector<std::size_t>& sequence,
                        const DagSchedule& schedule) {
  HYPERREC_ENSURE(!sequence.empty(), "empty context sequence");
  HYPERREC_ENSURE(schedule.starts.size() == schedule.hypercontexts.size(),
                  "one hypercontext per interval required");
  HYPERREC_ENSURE(!schedule.starts.empty() && schedule.starts.front() == 0,
                  "schedule must start at step 0");
  Cost total = 0;
  for (std::size_t k = 0; k < schedule.starts.size(); ++k) {
    const std::size_t start = schedule.starts[k];
    const std::size_t end = (k + 1 < schedule.starts.size())
                                ? schedule.starts[k + 1]
                                : sequence.size();
    HYPERREC_ENSURE(start < end && end <= sequence.size(),
                    "schedule interval out of bounds or empty");
    const std::size_t h = schedule.hypercontexts[k];
    for (std::size_t i = start; i < end; ++i) {
      HYPERREC_ENSURE(model.context_set(h).test(sequence[i]),
                      "hypercontext does not satisfy a requirement in its "
                      "interval");
    }
    total += model.w() + model.cost(h) * static_cast<Cost>(end - start);
  }
  return total;
}

}  // namespace hyperrec
