// MT-Switch cost model evaluators (paper §2 "Switch model", §4.1, §4.2).
//
// Cost semantics
// --------------
// * A task's hypercontext during an interval is minimal: the union of the
//   local requirements in the interval plus (for private-global resources)
//   the maximum private demand in the interval.  Larger hypercontexts are
//   never cheaper under the switch cost |h| = number of switches, so the
//   evaluators always use the minimal ones.  derive_local_hypercontexts()
//   exposes them for figures and tests.
// * Fully synchronised machine (§4.2): every step carries
//       hyper_term(l)    = combine_{j ∈ A_l} v_j          (A_l = tasks with a
//                                                           boundary at l)
//     + reconfig_term(l) = combine'_j (|h_j^loc(l)| + h_j^priv(l)),  with the
//       public context |h^pub| entering the combine' (max with it when
//       task-parallel, added when task-sequential),
//   where combine is max for task-parallel upload and Σ for task-sequential
//   (§4: "task parallel"/"task sequentially").  The SHyRA experiment of §6
//   uses task-parallel partial hyperreconfigurations and task-sequential
//   reconfigurations — the only combination consistent with the paper's
//   quoted baseline 110·48 = 5280 (see EXPERIMENTS.md).
// * Global hyperreconfigurations add w each and require a simultaneous local
//   boundary in every task (§3: the old extended local hypercontexts become
//   invalid).  Machines without global resources perform none and pay no w.
// * Changeover variant (§4.1 end): a local hyperreconfiguration of task j
//   additionally costs |h_new Δ h_old| on top of v_j (difference information
//   loaded onto the machine); the first hypercontext diffs against ∅.
// * The "hyperreconfiguration disabled" baseline of §6 is a machine that is
//   one monolithic context: every step costs |X| = total_switches().
#pragma once

#include <vector>

#include "model/machine.hpp"
#include "model/schedule.hpp"
#include "model/trace.hpp"
#include "model/types.hpp"

namespace hyperrec {

class SolveInstance;        // model/instance.hpp
class MultiTaskTraceStats;  // model/trace_stats.hpp

struct EvalOptions {
  UploadMode hyper_upload = UploadMode::kTaskParallel;
  UploadMode reconfig_upload = UploadMode::kTaskSequential;
  bool changeover = false;
};

/// Hypercontext (minimal) of one task for one schedule interval.
struct LocalHypercontext {
  DynamicBitset local;           ///< union of local requirements
  std::uint32_t private_avail;   ///< max private demand (|h^priv|)
};

/// hypercontexts[j][k] = minimal hypercontext of task j in its interval k.
/// Builds a one-off stats view internally; prefer the stats overload when a
/// SolveInstance (or its MultiTaskTraceStats) is already in hand.
[[nodiscard]] std::vector<std::vector<LocalHypercontext>>
derive_local_hypercontexts(const MultiTaskTrace& trace,
                           const MultiTaskSchedule& schedule);

/// As above, but queries the precomputed stats views — O(words) per
/// interval instead of O(range·words).
[[nodiscard]] std::vector<std::vector<LocalHypercontext>>
derive_local_hypercontexts(const MultiTaskTraceStats& stats,
                           const MultiTaskSchedule& schedule);

struct StepCost {
  Cost hyper = 0;
  Cost reconfig = 0;
};

struct CostBreakdown {
  Cost total = 0;
  Cost hyper = 0;         ///< partial (local) hyperreconfiguration cost
  Cost reconfig = 0;      ///< ordinary reconfiguration cost
  Cost global_hyper = 0;  ///< Σ w over global hyperreconfigurations
  std::size_t partial_hyper_steps = 0;
  std::vector<StepCost> per_step;  ///< length n; for figures/diagnostics
};

/// §4.2 evaluator for fully synchronised machines.  Requires a synchronized
/// trace; validates the schedule, the private-global quota feasibility and
/// the machine/trace shapes.  Builds a one-off stats view internally; the
/// SolveInstance overload below reuses the instance's shared precomputation
/// and is the hot-path entry point.
[[nodiscard]] CostBreakdown evaluate_fully_sync_switch(
    const MultiTaskTrace& trace, const MachineSpec& machine,
    const MultiTaskSchedule& schedule, const EvalOptions& options = {});

/// Instance-backed §4.2 evaluator: identical semantics (bit-identical
/// CostBreakdown), but every interval union/demand query hits the
/// instance's precomputed tables.
[[nodiscard]] CostBreakdown evaluate_fully_sync_switch(
    const SolveInstance& instance, const MultiTaskSchedule& schedule);

struct AsyncCostBreakdown {
  Cost total = 0;
  std::vector<Cost> per_task;  ///< Σ_i (v_j + cost·|S_{j,i}|) per task
  Cost global_hyper = 0;
};

/// §4.1 evaluator for non-synchronised machines: the tasks' reconfiguration
/// work overlaps, so the machine-level cost is the per-task maximum.  Task
/// traces may have different lengths.  Public resources must be absent (§3:
/// they exist only on context-/fully-synchronised machines).  Single global
/// block (at most one global hyperreconfiguration, at the start).
[[nodiscard]] AsyncCostBreakdown evaluate_async_switch(
    const MultiTaskTrace& trace, const MachineSpec& machine,
    const MultiTaskSchedule& schedule, const EvalOptions& options = {});

/// Instance-backed §4.1 evaluator (shared precomputation, same result).
[[nodiscard]] AsyncCostBreakdown evaluate_async_switch(
    const SolveInstance& instance, const MultiTaskSchedule& schedule);

/// §6 baseline: hyperreconfiguration disabled, every reconfiguration loads
/// all |X| switches — n · total_switches().
[[nodiscard]] Cost no_hyperreconfiguration_cost(const MachineSpec& machine,
                                                std::size_t steps);

/// Mode dispatcher.  kFullySynchronized and kNonSynchronized are the paper's
/// §4.2 / §4.1 models verbatim.  For the hybrid modes the paper gives no
/// closed formula; this library interprets them on synchronized traces as:
/// hypercontext-synchronised ⇒ reconfigurations overlap (task-parallel
/// reconfig combine), context-synchronised ⇒ partial hyperreconfigurations
/// overlap (task-parallel hyper combine).
[[nodiscard]] Cost evaluate_switch_total(SyncMode mode,
                                         const MultiTaskTrace& trace,
                                         const MachineSpec& machine,
                                         const MultiTaskSchedule& schedule,
                                         const EvalOptions& options = {});

}  // namespace hyperrec
