// SolveInstance: the immutable solver-facing IR of one MT-Switch problem.
//
// Every §5 solver, the §4.2 evaluator, the portfolio racer, the batch
// engine and the solve cache consume the same validated triple
// (trace, machine, options) — and, before this IR existed, each of them
// re-derived the same interval facts from the raw trace.  SolveInstance
// bundles the triple with eagerly built shared precomputation
// (model/trace_stats.hpp): sparse-table interval unions, O(1) private-demand
// maxima, per-switch presence counts and per-step global demand sums.
// Construct once at the boundary (CLI, engine, bench, test), then share the
// instance by const reference across every racer — the precomputation is
// paid once per instance, not once per solver.
//
// Layering:
//
//   model (trace, machine, cost)        raw domain types
//     └── SolveInstance                 validated triple + TraceStats views
//           └── core solvers            MTSolution f(const SolveInstance&)
//                 └── engine            portfolio race / batch sharding
//                       └── cache, io   fingerprints, memoization, JSON
//
// The instance is move-only; its payload lives behind a unique_ptr so the
// stats' internal pointers stay valid across moves.  Validation
// (machine/trace shape) happens in the constructor, so a SolveInstance in
// hand is always well-formed.
#pragma once

#include <memory>

#include "model/cost_switch.hpp"
#include "model/machine.hpp"
#include "model/trace.hpp"
#include "model/trace_stats.hpp"

namespace hyperrec {

class SolveInstance {
 public:
  /// Validates the triple (machine/trace shape check) and builds the shared
  /// precomputation.  Throws PreconditionError on shape mismatch.
  SolveInstance(MultiTaskTrace trace, MachineSpec machine,
                EvalOptions options = {});

  SolveInstance(SolveInstance&&) noexcept = default;
  SolveInstance& operator=(SolveInstance&&) noexcept = default;
  SolveInstance(const SolveInstance&) = delete;
  SolveInstance& operator=(const SolveInstance&) = delete;

  [[nodiscard]] const MultiTaskTrace& trace() const noexcept {
    return data_->trace;
  }
  [[nodiscard]] const MachineSpec& machine() const noexcept {
    return data_->machine;
  }
  [[nodiscard]] const EvalOptions& options() const noexcept {
    return data_->options;
  }
  [[nodiscard]] const MultiTaskTraceStats& stats() const noexcept {
    return data_->stats;
  }
  [[nodiscard]] const TaskTraceStats& task_stats(std::size_t j) const {
    return data_->stats.task(j);
  }

  [[nodiscard]] std::size_t task_count() const noexcept {
    return data_->trace.task_count();
  }
  [[nodiscard]] bool synchronized() const noexcept {
    return data_->stats.synchronized();
  }
  /// Common step count; requires a synchronized trace.
  [[nodiscard]] std::size_t steps() const { return data_->trace.steps(); }

 private:
  struct Data {
    MultiTaskTrace trace;
    MachineSpec machine;
    EvalOptions options;
    MultiTaskTraceStats stats;
  };
  std::unique_ptr<const Data> data_;
};

}  // namespace hyperrec
