// DAG cost model (paper §2): hypercontexts ordered by a precedence DAG.
//
// Structure required by the model:
//   * for every edge (h1, h2): h1(C) ⊂ h2(C) and cost(h1) ≤ cost(h2),
//   * a universal hypercontext h with h(C) = C exists,
//   * init(h) = w is one constant for all hypercontexts.
// The total reconfiguration time of a computation split into r segments is
// r·w + Σ_i cost(h_i)·|S_i|.
#pragma once

#include <cstddef>
#include <vector>

#include "dag/dag.hpp"
#include "model/types.hpp"
#include "support/bitset.hpp"

namespace hyperrec {

class DagCostModel {
 public:
  /// `dag` orders the hypercontexts; sat[h] = h(C) over `kind_count`
  /// requirement kinds; cost[h] = per-reconfiguration cost; w = init cost.
  DagCostModel(Dag dag, std::vector<DynamicBitset> sat,
               std::vector<Cost> cost, Cost w);

  [[nodiscard]] std::size_t hypercontext_count() const noexcept {
    return cost_.size();
  }
  [[nodiscard]] std::size_t kind_count() const noexcept {
    return sat_.empty() ? 0 : sat_[0].size();
  }
  [[nodiscard]] Cost w() const noexcept { return w_; }
  [[nodiscard]] Cost cost(std::size_t h) const;
  [[nodiscard]] const DynamicBitset& context_set(std::size_t h) const;
  [[nodiscard]] const Dag& dag() const noexcept { return dag_; }

  /// Checks the model's structural requirements listed above; throws a
  /// PreconditionError naming the first violation.
  void validate() const;

  /// c(H): the minimal (w.r.t. the precedence DAG) hypercontexts satisfying
  /// requirement kind c.
  [[nodiscard]] std::vector<std::size_t> minimal_satisfiers(
      std::size_t kind) const;

  /// The cheapest hypercontext satisfying every kind in `kinds`, or
  /// hypercontext_count() if none exists.
  [[nodiscard]] std::size_t cheapest_satisfying(
      const DynamicBitset& kinds) const;

 private:
  Dag dag_;
  std::vector<DynamicBitset> sat_;
  std::vector<Cost> cost_;
  Cost w_;
};

/// Schedule: interval starts plus hypercontext choice per interval.
struct DagSchedule {
  std::vector<std::size_t> starts;
  std::vector<std::size_t> hypercontexts;
};

/// r·w + Σ cost(h_i)·|S_i|; validates satisfaction of every requirement.
[[nodiscard]] Cost evaluate_dag_model(const DagCostModel& model,
                                      const std::vector<std::size_t>& sequence,
                                      const DagSchedule& schedule);

}  // namespace hyperrec
