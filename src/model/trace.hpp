// Context-requirement traces (paper §2, §3).
//
// An algorithm/computation is characterised by a sequence of context
// requirements: for every reconfiguration step, the set of reconfigurable
// features the step needs.  In the (MT-)switch model a requirement of task
// T_j is a subset of the task's local switches f_j^loc plus a demand on the
// shared private-global units.
//
// Private-global resources (the paper's I/O-unit example) are modelled as a
// *count* rather than a set: the units are interchangeable, the global
// hypercontext assigns a quota per task, and all cost formulas only use
// |h^priv| — so the demand per step is the number of units the step needs.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitset.hpp"

namespace hyperrec {

/// One step's requirement for one task.
struct ContextRequirement {
  /// Switches of the task's local resource set f_j^loc needed by this step.
  DynamicBitset local;
  /// Number of private-global units needed by this step (0 if unused).
  std::uint32_t private_demand = 0;
};

/// The requirement sequence of a single task.
class TaskTrace {
 public:
  /// `local_universe` = l_j, the number of local switches of the task.
  explicit TaskTrace(std::size_t local_universe)
      : local_universe_(local_universe) {}

  [[nodiscard]] std::size_t local_universe() const noexcept {
    return local_universe_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return steps_.size(); }
  [[nodiscard]] bool empty() const noexcept { return steps_.empty(); }

  [[nodiscard]] const ContextRequirement& at(std::size_t step) const {
    HYPERREC_ENSURE(step < steps_.size(), "trace step out of range");
    return steps_[step];
  }

  /// Appends a requirement; its local universe must match.
  void push_back(ContextRequirement req);

  /// Convenience: appends a local-only requirement.
  void push_back_local(DynamicBitset local) {
    push_back({std::move(local), 0});
  }

  /// Union of local requirements over steps [first, last) by linear rescan.
  /// O(range·words) — kept as the property-test oracle for the precomputed
  /// TaskTraceStats views (model/trace_stats.hpp), which every solver and
  /// evaluator on the hot path queries instead.
  [[nodiscard]] DynamicBitset local_union_naive(std::size_t first,
                                                std::size_t last) const;

  /// Maximum private demand over steps [first, last) by linear rescan; 0
  /// for an empty range.  Oracle counterpart of
  /// TaskTraceStats::max_private_demand.
  [[nodiscard]] std::uint32_t max_private_demand_naive(std::size_t first,
                                                       std::size_t last) const;

  /// Fresh trace holding copies of steps [first, last) — one bulk vector
  /// copy instead of a push_back per step, for window cutting on hot paths
  /// (the streaming engine slices a window per re-solve trigger).
  [[nodiscard]] TaskTrace slice(std::size_t first, std::size_t last) const;

 private:
  std::size_t local_universe_;
  std::vector<ContextRequirement> steps_;
};

/// Requirement sequences for all m tasks of a multi-task machine.
///
/// On a *synchronised* machine all tasks advance in lock step, so their
/// traces must have equal length (checked by synchronized()).  On a
/// non-synchronised machine (§4.1) lengths may differ.
class MultiTaskTrace {
 public:
  MultiTaskTrace() = default;

  void add_task(TaskTrace trace) { tasks_.push_back(std::move(trace)); }

  /// Appends one synchronized step: requirement j goes to task j.  Requires
  /// at least one task, a synchronized trace, and exactly one requirement
  /// per task (universes checked by TaskTrace::push_back).  This is the
  /// mutation entry point for streams that grow step-by-step (streaming
  /// layer, mid-growth checkpoints reloaded via io::load_trace).
  void append_step(std::vector<ContextRequirement> step);

  /// Read counterpart of append_step: step i of every task, in task order.
  /// Requires a synchronized trace with i < steps().
  [[nodiscard]] std::vector<ContextRequirement> step(std::size_t i) const;

  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] const TaskTrace& task(std::size_t j) const {
    HYPERREC_ENSURE(j < tasks_.size(), "task index out of range");
    return tasks_[j];
  }

  /// True iff all tasks have the same number of steps.
  [[nodiscard]] bool synchronized() const noexcept;

  /// Common step count; requires synchronized().
  [[nodiscard]] std::size_t steps() const;

  /// Builds a local-only multi-task trace from per-task requirement lists.
  /// universes[j] gives l_j.
  [[nodiscard]] static MultiTaskTrace from_local(
      const std::vector<std::size_t>& universes,
      const std::vector<std::vector<DynamicBitset>>& requirements);

 private:
  std::vector<TaskTrace> tasks_;
};

}  // namespace hyperrec
