// Shared scalar types and enums for the cost models of the paper.
#pragma once

#include <cstdint>

namespace hyperrec {

/// Costs are exact integers: in the switch model a cost is a number of
/// switches times a number of steps (paper §2, §4), so no floating point is
/// involved anywhere in cost evaluation or the exact solvers.
using Cost = std::int64_t;

/// §4: whether the reconfiguration bits of the m tasks are uploaded onto the
/// machine in parallel (cost = max over tasks) or sequentially (cost = sum).
enum class UploadMode : std::uint8_t {
  kTaskParallel,
  kTaskSequential,
};

/// §3: synchronisation regimes between tasks of a partially
/// hyperreconfigurable machine.
enum class SyncMode : std::uint8_t {
  kFullySynchronized,        ///< hyper- and context-synchronised (§4.2)
  kHypercontextSynchronized, ///< only partial hyperreconfigurations barrier
  kContextSynchronized,      ///< only reconfigurations barrier
  kNonSynchronized,          ///< §4.1 asynchronous model
};

}  // namespace hyperrec
