// General cost model (paper §2): explicit hypercontext tables.
//
// The general model puts no structure on hypercontexts: each h ∈ H carries
// an arbitrary hyperreconfiguration cost init(h), a per-reconfiguration cost
// cost(h), and an arbitrary satisfaction relation "h satisfies context
// requirement kind c".  The paper notes that finding optimal
// (hyper)reconfigurations is NP-complete in general — the hardness stems
// from *implicitly* specified hypercontext spaces (e.g. all 2^X subsets with
// an arbitrary cost function).  For an explicitly tabulated H the problem is
// polynomial (see core/general_dp.hpp); the exponential-space case is
// exercised by core/implicit_general.hpp and the scaling bench.
//
// Context requirements are interned: a sequence is a vector of kind ids in
// [0, kind_count).
#pragma once

#include <cstddef>
#include <vector>

#include "model/types.hpp"
#include "support/bitset.hpp"

namespace hyperrec {

class GeneralCostModel {
 public:
  GeneralCostModel(std::size_t hypercontext_count, std::size_t kind_count);

  [[nodiscard]] std::size_t hypercontext_count() const noexcept {
    return init_.size();
  }
  [[nodiscard]] std::size_t kind_count() const noexcept { return kinds_; }

  void set_init(std::size_t h, Cost value);
  void set_cost(std::size_t h, Cost value);
  void set_satisfies(std::size_t h, std::size_t kind, bool value = true);

  [[nodiscard]] Cost init(std::size_t h) const;
  [[nodiscard]] Cost cost(std::size_t h) const;
  [[nodiscard]] bool satisfies(std::size_t h, std::size_t kind) const;

  /// The satisfaction row of h as a bitset over kinds (h(C) in the paper).
  [[nodiscard]] const DynamicBitset& context_set(std::size_t h) const;

  /// True iff h satisfies every kind in `kinds`.
  [[nodiscard]] bool satisfies_all(std::size_t h,
                                   const DynamicBitset& kinds) const;

  /// Requires at least one hypercontext satisfying all kinds (the paper's
  /// assumption that some h has h(C) = C); throws otherwise.
  void require_universal_hypercontext() const;

 private:
  std::size_t kinds_;
  std::vector<Cost> init_;
  std::vector<Cost> cost_;
  std::vector<DynamicBitset> satisfies_;
};

/// A schedule for the single-task general model: interval start steps (first
/// must be 0) plus the chosen hypercontext per interval.
struct GeneralSchedule {
  std::vector<std::size_t> starts;
  std::vector<std::size_t> hypercontexts;
};

/// Total reconfiguration time Σ_i (init(h_i) + cost(h_i)·|S_i|) (§2).
/// Throws if some interval's hypercontext misses a requirement in it.
[[nodiscard]] Cost evaluate_general(const GeneralCostModel& model,
                                    const std::vector<std::size_t>& sequence,
                                    const GeneralSchedule& schedule);

}  // namespace hyperrec
