#include "model/cost_general.hpp"

#include "support/ensure.hpp"

namespace hyperrec {

GeneralCostModel::GeneralCostModel(std::size_t hypercontext_count,
                                   std::size_t kind_count)
    : kinds_(kind_count),
      init_(hypercontext_count, 0),
      cost_(hypercontext_count, 0),
      satisfies_(hypercontext_count, DynamicBitset(kind_count)) {}

void GeneralCostModel::set_init(std::size_t h, Cost value) {
  HYPERREC_ENSURE(h < init_.size(), "hypercontext id out of range");
  init_[h] = value;
}

void GeneralCostModel::set_cost(std::size_t h, Cost value) {
  HYPERREC_ENSURE(h < cost_.size(), "hypercontext id out of range");
  cost_[h] = value;
}

void GeneralCostModel::set_satisfies(std::size_t h, std::size_t kind,
                                     bool value) {
  HYPERREC_ENSURE(h < satisfies_.size(), "hypercontext id out of range");
  HYPERREC_ENSURE(kind < kinds_, "context kind out of range");
  if (value) {
    satisfies_[h].set(kind);
  } else {
    satisfies_[h].reset(kind);
  }
}

Cost GeneralCostModel::init(std::size_t h) const {
  HYPERREC_ENSURE(h < init_.size(), "hypercontext id out of range");
  return init_[h];
}

Cost GeneralCostModel::cost(std::size_t h) const {
  HYPERREC_ENSURE(h < cost_.size(), "hypercontext id out of range");
  return cost_[h];
}

bool GeneralCostModel::satisfies(std::size_t h, std::size_t kind) const {
  HYPERREC_ENSURE(h < satisfies_.size(), "hypercontext id out of range");
  HYPERREC_ENSURE(kind < kinds_, "context kind out of range");
  return satisfies_[h].test(kind);
}

const DynamicBitset& GeneralCostModel::context_set(std::size_t h) const {
  HYPERREC_ENSURE(h < satisfies_.size(), "hypercontext id out of range");
  return satisfies_[h];
}

bool GeneralCostModel::satisfies_all(std::size_t h,
                                     const DynamicBitset& kinds) const {
  return kinds.subset_of(context_set(h));
}

void GeneralCostModel::require_universal_hypercontext() const {
  for (std::size_t h = 0; h < hypercontext_count(); ++h) {
    if (context_set(h).count() == kinds_) return;
  }
  HYPERREC_ENSURE(false, "no hypercontext satisfies every context kind");
}

Cost evaluate_general(const GeneralCostModel& model,
                      const std::vector<std::size_t>& sequence,
                      const GeneralSchedule& schedule) {
  HYPERREC_ENSURE(!sequence.empty(), "empty context sequence");
  HYPERREC_ENSURE(schedule.starts.size() == schedule.hypercontexts.size(),
                  "one hypercontext per interval required");
  HYPERREC_ENSURE(!schedule.starts.empty() && schedule.starts.front() == 0,
                  "schedule must start at step 0");

  Cost total = 0;
  for (std::size_t k = 0; k < schedule.starts.size(); ++k) {
    const std::size_t start = schedule.starts[k];
    const std::size_t end = (k + 1 < schedule.starts.size())
                                ? schedule.starts[k + 1]
                                : sequence.size();
    HYPERREC_ENSURE(start < end && end <= sequence.size(),
                    "schedule interval out of bounds or empty");
    const std::size_t h = schedule.hypercontexts[k];
    for (std::size_t i = start; i < end; ++i) {
      HYPERREC_ENSURE(model.satisfies(h, sequence[i]),
                      "hypercontext does not satisfy a requirement in its "
                      "interval");
    }
    total += model.init(h) + model.cost(h) * static_cast<Cost>(end - start);
  }
  return total;
}

}  // namespace hyperrec
