#include "model/cost_switch.hpp"

#include <algorithm>

#include "model/instance.hpp"
#include "model/trace_stats.hpp"

namespace hyperrec {

namespace {

Cost combine(UploadMode mode, Cost acc, Cost value) {
  return mode == UploadMode::kTaskParallel ? std::max(acc, value) : acc + value;
}

/// Cost of task j's local hyperreconfiguration into interval k, including
/// the optional changeover term against the previous hypercontext.
Cost local_hyper_cost(const MachineSpec& machine, std::size_t j,
                      const std::vector<DynamicBitset>& unions, std::size_t k,
                      bool changeover) {
  Cost cost = machine.tasks[j].local_init;
  if (changeover) {
    const DynamicBitset& current = unions[k];
    if (k == 0) {
      cost += static_cast<Cost>(current.count());
    } else {
      cost += static_cast<Cost>(
          current.symmetric_difference_count(unions[k - 1]));
    }
  }
  return cost;
}

/// Validates that within every global block the per-task private quotas fit
/// into the machine's pool of g units (§3: the global hypercontext assigns
/// the private-global resources to the tasks).  All range queries are O(1)
/// against the precomputed stats.
void check_private_feasibility(const MultiTaskTraceStats& stats,
                               const MachineSpec& machine,
                               const MultiTaskSchedule& schedule,
                               std::size_t steps) {
  if (machine.private_global_units == 0) return;
  // Walk block bounds [lo, hi) without materialising a boundary vector —
  // this check runs once per evaluation, and the exhaustive/coordinate-
  // descent loops evaluate millions of schedules.
  const std::vector<std::size_t>& bounds = schedule.global_boundaries;
  const std::size_t blocks = bounds.empty() ? 1 : bounds.size();
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = bounds.empty() ? 0 : bounds[b];
    const std::size_t hi = (b + 1 < bounds.size()) ? bounds[b + 1] : steps;
    std::uint64_t quota_sum = 0;
    // The per-step demand sum is a lower bound on the quota sum, so the
    // O(1) cross-task query short-circuits clearly infeasible blocks.
    if (stats.max_step_demand_sum(lo, hi) <= machine.private_global_units) {
      for (std::size_t j = 0; j < stats.task_count(); ++j) {
        quota_sum += stats.task(j).max_private_demand(lo, hi);
      }
    } else {
      quota_sum = machine.private_global_units + 1;
    }
    HYPERREC_ENSURE(quota_sum <= machine.private_global_units,
                    "private-global demand exceeds the unit pool within a "
                    "global block; insert a global hyperreconfiguration");
  }
}

/// Stats-backed §4.2 evaluation core.  Per task and interval it derives the
/// minimal hypercontext *size* from the precomputed tables (O(words) per
/// interval); the union bitsets themselves are materialised only when the
/// changeover term needs them.
CostBreakdown evaluate_fully_sync_impl(const MultiTaskTrace& trace,
                                       const MultiTaskTraceStats& stats,
                                       const MachineSpec& machine,
                                       const MultiTaskSchedule& schedule,
                                       const EvalOptions& options) {
  machine.validate_trace(trace);
  HYPERREC_ENSURE(trace.synchronized(),
                  "fully synchronised evaluation requires equal-length traces");
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  schedule.validate(m, n);
  if (machine.has_global_resources()) {
    HYPERREC_ENSURE(!schedule.global_boundaries.empty() &&
                        schedule.global_boundaries.front() == 0,
                    "machines with global resources need a global "
                    "hyperreconfiguration at step 0");
  } else {
    HYPERREC_ENSURE(schedule.global_boundaries.empty(),
                    "machines without global resources cannot perform global "
                    "hyperreconfigurations");
  }
  check_private_feasibility(stats, machine, schedule, n);

  // Per task: interval sizes |U| + priv from the stats views, flattened into
  // one arena indexed by a per-task offset + interval cursor (one allocation
  // instead of one per task — the exhaustive and coordinate-descent loops
  // run this evaluation millions of times).  Union bitsets are materialised
  // only under changeover (the Δ term needs the actual sets).
  struct TaskCursor {
    std::size_t offset = 0;  ///< task's first entry in flat_sizes
    std::size_t k = 0;       ///< interval index at the current step
  };
  std::vector<TaskCursor> cursors(m);
  std::size_t total_intervals = 0;
  for (std::size_t j = 0; j < m; ++j) {
    total_intervals += schedule.tasks[j].interval_count();
  }
  std::vector<Cost> flat_sizes;
  flat_sizes.reserve(total_intervals);
  std::vector<std::vector<DynamicBitset>> unions(options.changeover ? m : 0);
  for (std::size_t j = 0; j < m; ++j) {
    const TaskTraceStats& task = stats.task(j);
    const Partition& partition = schedule.tasks[j];
    cursors[j].offset = flat_sizes.size();
    if (options.changeover) unions[j].reserve(partition.interval_count());
    for (std::size_t k = 0; k < partition.interval_count(); ++k) {
      const auto [start, end] = partition.interval_bounds(k);
      flat_sizes.push_back(
          static_cast<Cost>(task.local_union_count(start, end)) +
          static_cast<Cost>(task.max_private_demand(start, end)));
      if (options.changeover) unions[j].push_back(task.local_union(start, end));
    }
  }

  CostBreakdown breakdown;
  breakdown.per_step.resize(n);

  for (std::size_t l = 0; l < n; ++l) {
    bool any_boundary = false;
    Cost hyper_term = 0;
    // |h^pub| participates in the max for task-parallel upload and is added
    // once for task-sequential — both are the combine starting value.
    Cost reconfig_term = static_cast<Cost>(machine.public_context_size);

    for (std::size_t j = 0; j < m; ++j) {
      const Partition& partition = schedule.tasks[j];
      // The cursor knows the next boundary (starts are sorted and walked in
      // step order), so no per-step binary search.
      const std::size_t next = cursors[j].k + 1;
      const bool boundary =
          l == 0 || (next < partition.interval_count() &&
                     partition.starts()[next] == l);
      if (boundary && l > 0) cursors[j].k = next;
      const std::size_t k = cursors[j].k;
      if (boundary) {
        any_boundary = true;
        hyper_term = combine(
            options.hyper_upload, hyper_term,
            options.changeover
                ? local_hyper_cost(machine, j, unions[j], k, true)
                : machine.tasks[j].local_init);
      }
      reconfig_term = combine(options.reconfig_upload, reconfig_term,
                              flat_sizes[cursors[j].offset + k]);
    }

    Cost global_term = 0;
    if (std::binary_search(schedule.global_boundaries.begin(),
                           schedule.global_boundaries.end(), l)) {
      global_term = machine.global_init;
    }

    if (any_boundary) ++breakdown.partial_hyper_steps;
    breakdown.per_step[l] = StepCost{hyper_term, reconfig_term};
    breakdown.hyper += hyper_term;
    breakdown.reconfig += reconfig_term;
    breakdown.global_hyper += global_term;
  }
  breakdown.total =
      breakdown.hyper + breakdown.reconfig + breakdown.global_hyper;
  return breakdown;
}

AsyncCostBreakdown evaluate_async_impl(const MultiTaskTrace& trace,
                                       const MultiTaskTraceStats& stats,
                                       const MachineSpec& machine,
                                       const MultiTaskSchedule& schedule,
                                       const EvalOptions& options) {
  machine.validate_trace(trace);
  HYPERREC_ENSURE(machine.public_context_size == 0,
                  "public resources require a context- or fully-synchronised "
                  "machine (§3)");
  HYPERREC_ENSURE(schedule.tasks.size() == trace.task_count(),
                  "schedule task count mismatch");
  HYPERREC_ENSURE(schedule.global_boundaries.size() <= 1,
                  "asynchronous evaluation covers a single global block");
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    HYPERREC_ENSURE(schedule.tasks[j].n() == trace.task(j).size(),
                    "schedule step count mismatch for task");
  }

  // Private feasibility over the single block.
  if (machine.private_global_units > 0) {
    std::uint64_t quota_sum = 0;
    for (std::size_t j = 0; j < trace.task_count(); ++j) {
      quota_sum += stats.task(j).max_private_demand(0, trace.task(j).size());
    }
    HYPERREC_ENSURE(quota_sum <= machine.private_global_units,
                    "private-global demand exceeds the unit pool");
  }

  AsyncCostBreakdown breakdown;
  breakdown.per_task.resize(trace.task_count(), 0);
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    const TaskTraceStats& task = stats.task(j);
    const Partition& partition = schedule.tasks[j];
    Cost total = 0;
    std::vector<DynamicBitset> unions;
    if (options.changeover) unions.reserve(partition.interval_count());
    for (std::size_t k = 0; k < partition.interval_count(); ++k) {
      const auto [start, end] = partition.interval_bounds(k);
      const Cost reconfig_each =
          static_cast<Cost>(task.local_union_count(start, end)) +
          static_cast<Cost>(task.max_private_demand(start, end));
      if (options.changeover) unions.push_back(task.local_union(start, end));
      total += local_hyper_cost(machine, j, unions, k, options.changeover);
      total += reconfig_each * static_cast<Cost>(end - start);
    }
    breakdown.per_task[j] = total;
  }
  breakdown.global_hyper =
      machine.has_global_resources() ? machine.global_init : 0;
  const Cost slowest = breakdown.per_task.empty()
                           ? 0
                           : *std::max_element(breakdown.per_task.begin(),
                                               breakdown.per_task.end());
  breakdown.total = breakdown.global_hyper + slowest;
  return breakdown;
}

}  // namespace

std::vector<std::vector<LocalHypercontext>> derive_local_hypercontexts(
    const MultiTaskTraceStats& stats, const MultiTaskSchedule& schedule) {
  std::vector<std::vector<LocalHypercontext>> result(stats.task_count());
  for (std::size_t j = 0; j < stats.task_count(); ++j) {
    const TaskTraceStats& task = stats.task(j);
    const Partition& partition = schedule.tasks[j];
    result[j].reserve(partition.interval_count());
    for (std::size_t k = 0; k < partition.interval_count(); ++k) {
      const auto [start, end] = partition.interval_bounds(k);
      result[j].push_back(LocalHypercontext{
          task.local_union(start, end),
          task.max_private_demand(start, end)});
    }
  }
  return result;
}

std::vector<std::vector<LocalHypercontext>> derive_local_hypercontexts(
    const MultiTaskTrace& trace, const MultiTaskSchedule& schedule) {
  return derive_local_hypercontexts(MultiTaskTraceStats(trace), schedule);
}

CostBreakdown evaluate_fully_sync_switch(const MultiTaskTrace& trace,
                                         const MachineSpec& machine,
                                         const MultiTaskSchedule& schedule,
                                         const EvalOptions& options) {
  return evaluate_fully_sync_impl(trace, MultiTaskTraceStats(trace), machine,
                                  schedule, options);
}

CostBreakdown evaluate_fully_sync_switch(const SolveInstance& instance,
                                         const MultiTaskSchedule& schedule) {
  return evaluate_fully_sync_impl(instance.trace(), instance.stats(),
                                  instance.machine(), schedule,
                                  instance.options());
}

AsyncCostBreakdown evaluate_async_switch(const MultiTaskTrace& trace,
                                         const MachineSpec& machine,
                                         const MultiTaskSchedule& schedule,
                                         const EvalOptions& options) {
  return evaluate_async_impl(trace, MultiTaskTraceStats(trace), machine,
                             schedule, options);
}

AsyncCostBreakdown evaluate_async_switch(const SolveInstance& instance,
                                         const MultiTaskSchedule& schedule) {
  return evaluate_async_impl(instance.trace(), instance.stats(),
                             instance.machine(), schedule, instance.options());
}

Cost no_hyperreconfiguration_cost(const MachineSpec& machine,
                                  std::size_t steps) {
  return static_cast<Cost>(machine.total_switches()) *
         static_cast<Cost>(steps);
}

Cost evaluate_switch_total(SyncMode mode, const MultiTaskTrace& trace,
                           const MachineSpec& machine,
                           const MultiTaskSchedule& schedule,
                           const EvalOptions& options) {
  switch (mode) {
    case SyncMode::kFullySynchronized:
      return evaluate_fully_sync_switch(trace, machine, schedule, options)
          .total;
    case SyncMode::kHypercontextSynchronized: {
      EvalOptions adjusted = options;
      adjusted.reconfig_upload = UploadMode::kTaskParallel;
      return evaluate_fully_sync_switch(trace, machine, schedule, adjusted)
          .total;
    }
    case SyncMode::kContextSynchronized: {
      EvalOptions adjusted = options;
      adjusted.hyper_upload = UploadMode::kTaskParallel;
      return evaluate_fully_sync_switch(trace, machine, schedule, adjusted)
          .total;
    }
    case SyncMode::kNonSynchronized:
      return evaluate_async_switch(trace, machine, schedule, options).total;
  }
  HYPERREC_ASSERT(false);
}

}  // namespace hyperrec
