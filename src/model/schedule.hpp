// Schedules: when each task performs (partial) hyperreconfigurations.
//
// A Partition divides a task's step range [0, n) into consecutive intervals;
// a new interval starting at step s means the task performs a local
// hyperreconfiguration immediately before step s.  Every partition contains
// a boundary at step 0: the paper assumes each task must define a local
// hypercontext after the (implicit) initial global hyperreconfiguration.
//
// A MultiTaskSchedule combines one Partition per task plus the steps where
// *global* hyperreconfigurations happen (meaningful only for machines with
// global resources; always at least step 0 in that case).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/bitset.hpp"

namespace hyperrec {

class Partition {
 public:
  /// Single interval covering all n steps (hyperreconfigure once, at start).
  [[nodiscard]] static Partition single(std::size_t n);

  /// A boundary before every step (hyperreconfigure n times).
  [[nodiscard]] static Partition every_step(std::size_t n);

  /// From explicit interval start steps; must begin with 0, be strictly
  /// increasing and below n.
  [[nodiscard]] static Partition from_starts(std::vector<std::size_t> starts,
                                             std::size_t n);

  /// From a boundary bitmask over [0, n): bit s set ⇔ interval starts at s.
  /// Bit 0 is implicitly treated as set.
  [[nodiscard]] static Partition from_boundary_mask(const DynamicBitset& mask);

  /// In-place from_boundary_mask: rebuilds this partition reusing the starts
  /// storage.  The alloc-free rebuild path for enumeration loops that walk
  /// millions of candidate schedules (core/exhaustive.cpp).
  void assign_boundary_mask(const DynamicBitset& mask);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t interval_count() const noexcept {
    return starts_.size();
  }
  [[nodiscard]] const std::vector<std::size_t>& starts() const noexcept {
    return starts_;
  }

  /// Index of the interval containing `step` (binary search, O(log r)).
  [[nodiscard]] std::size_t interval_of(std::size_t step) const;

  /// Half-open bounds [start, end) of interval k.
  [[nodiscard]] std::pair<std::size_t, std::size_t> interval_bounds(
      std::size_t k) const;

  /// True iff an interval starts at `step`.
  [[nodiscard]] bool is_boundary(std::size_t step) const;

  /// Grows the covered range to `new_n` steps (new_n >= n()); the appended
  /// steps join the last interval.  O(1) — the streaming layer extends
  /// every task's published partition once per appended step, so this must
  /// not copy the starts.
  void extend(std::size_t new_n);

  /// Boundary bitmask over [0, n).
  [[nodiscard]] DynamicBitset to_boundary_mask() const;

 private:
  Partition(std::vector<std::size_t> starts, std::size_t n)
      : starts_(std::move(starts)), n_(n) {}

  std::vector<std::size_t> starts_;
  std::size_t n_ = 0;
};

struct MultiTaskSchedule {
  std::vector<Partition> tasks;

  /// Steps with a global hyperreconfiguration; strictly increasing, and a
  /// subset of every task's boundaries (a global hyperreconfiguration
  /// invalidates all local hypercontexts, §3).  Leave empty for machines
  /// without global resources.
  std::vector<std::size_t> global_boundaries;

  /// All tasks hyperreconfigure exactly once, at step 0.
  [[nodiscard]] static MultiTaskSchedule all_single(std::size_t m,
                                                    std::size_t n);

  /// Every task hyperreconfigures before every step.
  [[nodiscard]] static MultiTaskSchedule all_every_step(std::size_t m,
                                                        std::size_t n);

  /// Total number of steps at which at least one task hyperreconfigures.
  [[nodiscard]] std::size_t partial_hyper_steps() const;

  /// Validates shape against a step count and task count; throws on error.
  void validate(std::size_t m, std::size_t n) const;
};

}  // namespace hyperrec
