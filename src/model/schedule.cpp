#include "model/schedule.hpp"

#include <algorithm>

#include "support/ensure.hpp"

namespace hyperrec {

Partition Partition::single(std::size_t n) {
  HYPERREC_ENSURE(n > 0, "partition of an empty range");
  return Partition({0}, n);
}

Partition Partition::every_step(std::size_t n) {
  HYPERREC_ENSURE(n > 0, "partition of an empty range");
  std::vector<std::size_t> starts(n);
  for (std::size_t i = 0; i < n; ++i) starts[i] = i;
  return Partition(std::move(starts), n);
}

Partition Partition::from_starts(std::vector<std::size_t> starts,
                                 std::size_t n) {
  HYPERREC_ENSURE(n > 0, "partition of an empty range");
  HYPERREC_ENSURE(!starts.empty() && starts.front() == 0,
                  "partition must contain a boundary at step 0");
  for (std::size_t i = 1; i < starts.size(); ++i) {
    HYPERREC_ENSURE(starts[i - 1] < starts[i],
                    "partition starts must be strictly increasing");
  }
  HYPERREC_ENSURE(starts.back() < n, "partition start beyond last step");
  return Partition(std::move(starts), n);
}

Partition Partition::from_boundary_mask(const DynamicBitset& mask) {
  HYPERREC_ENSURE(mask.size() > 0, "partition of an empty range");
  std::vector<std::size_t> starts;
  starts.push_back(0);
  mask.for_each_set([&starts](std::size_t pos) {
    if (pos != 0) starts.push_back(pos);
  });
  return Partition(std::move(starts), mask.size());
}

void Partition::assign_boundary_mask(const DynamicBitset& mask) {
  HYPERREC_ENSURE(mask.size() > 0, "partition of an empty range");
  starts_.clear();
  starts_.push_back(0);
  mask.for_each_set([this](std::size_t pos) {
    if (pos != 0) starts_.push_back(pos);
  });
  n_ = mask.size();
}

std::size_t Partition::interval_of(std::size_t step) const {
  HYPERREC_ENSURE(step < n_, "step out of range");
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), step);
  return static_cast<std::size_t>(it - starts_.begin()) - 1;
}

std::pair<std::size_t, std::size_t> Partition::interval_bounds(
    std::size_t k) const {
  HYPERREC_ENSURE(k < starts_.size(), "interval index out of range");
  const std::size_t start = starts_[k];
  const std::size_t end = (k + 1 < starts_.size()) ? starts_[k + 1] : n_;
  return {start, end};
}

bool Partition::is_boundary(std::size_t step) const {
  HYPERREC_ENSURE(step < n_, "step out of range");
  return std::binary_search(starts_.begin(), starts_.end(), step);
}

void Partition::extend(std::size_t new_n) {
  HYPERREC_ENSURE(new_n >= n_, "extend cannot shrink a partition");
  n_ = new_n;
}

DynamicBitset Partition::to_boundary_mask() const {
  DynamicBitset mask(n_);
  for (const std::size_t s : starts_) mask.set(s);
  return mask;
}

MultiTaskSchedule MultiTaskSchedule::all_single(std::size_t m, std::size_t n) {
  MultiTaskSchedule schedule;
  schedule.tasks.assign(m, Partition::single(n));
  return schedule;
}

MultiTaskSchedule MultiTaskSchedule::all_every_step(std::size_t m,
                                                    std::size_t n) {
  MultiTaskSchedule schedule;
  schedule.tasks.assign(m, Partition::every_step(n));
  return schedule;
}

std::size_t MultiTaskSchedule::partial_hyper_steps() const {
  if (tasks.empty()) return 0;
  DynamicBitset any(tasks[0].n());
  for (const Partition& partition : tasks) any |= partition.to_boundary_mask();
  return any.count();
}

void MultiTaskSchedule::validate(std::size_t m, std::size_t n) const {
  HYPERREC_ENSURE(tasks.size() == m, "schedule task count mismatch");
  for (const Partition& partition : tasks) {
    HYPERREC_ENSURE(partition.n() == n, "schedule step count mismatch");
  }
  // The evaluators binary-search this vector, so the contract is strictly
  // increasing — an unsorted or duplicated list would silently mis-count
  // global hyperreconfigurations instead of failing here.
  for (std::size_t b = 1; b < global_boundaries.size(); ++b) {
    HYPERREC_ENSURE(global_boundaries[b - 1] < global_boundaries[b],
                    "global boundaries must be strictly increasing");
  }
  for (const std::size_t g : global_boundaries) {
    HYPERREC_ENSURE(g < n, "global boundary beyond last step");
    for (const Partition& partition : tasks) {
      HYPERREC_ENSURE(partition.is_boundary(g),
                      "global hyperreconfiguration requires a local boundary "
                      "in every task");
    }
  }
}

}  // namespace hyperrec
