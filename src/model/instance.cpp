#include "model/instance.hpp"

namespace hyperrec {

SolveInstance::SolveInstance(MultiTaskTrace trace, MachineSpec machine,
                             EvalOptions options) {
  auto data = std::make_unique<Data>();
  data->trace = std::move(trace);
  data->machine = std::move(machine);
  data->options = options;
  data->machine.validate_trace(data->trace);
  // Bind the stats to the trace only after it rests at its final address.
  data->stats = MultiTaskTraceStats(data->trace);
  data_ = std::move(data);
}

}  // namespace hyperrec
