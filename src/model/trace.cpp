#include "model/trace.hpp"

namespace hyperrec {

void TaskTrace::push_back(ContextRequirement req) {
  HYPERREC_ENSURE(req.local.size() == local_universe_,
                  "requirement universe differs from task universe");
  steps_.push_back(std::move(req));
}

DynamicBitset TaskTrace::local_union_naive(std::size_t first,
                                           std::size_t last) const {
  HYPERREC_ENSURE(first <= last && last <= steps_.size(),
                  "union range out of bounds");
  DynamicBitset result(local_universe_);
  for (std::size_t i = first; i < last; ++i) result |= steps_[i].local;
  return result;
}

std::uint32_t TaskTrace::max_private_demand_naive(std::size_t first,
                                                  std::size_t last) const {
  HYPERREC_ENSURE(first <= last && last <= steps_.size(),
                  "demand range out of bounds");
  std::uint32_t demand = 0;
  for (std::size_t i = first; i < last; ++i)
    demand = std::max(demand, steps_[i].private_demand);
  return demand;
}

TaskTrace TaskTrace::slice(std::size_t first, std::size_t last) const {
  HYPERREC_ENSURE(first <= last && last <= steps_.size(),
                  "slice range out of bounds");
  TaskTrace out(local_universe_);
  out.steps_.assign(steps_.begin() + static_cast<std::ptrdiff_t>(first),
                    steps_.begin() + static_cast<std::ptrdiff_t>(last));
  return out;
}

void MultiTaskTrace::append_step(std::vector<ContextRequirement> step) {
  HYPERREC_ENSURE(!tasks_.empty(), "append_step needs at least one task");
  HYPERREC_ENSURE(step.size() == tasks_.size(),
                  "append_step needs exactly one requirement per task");
  HYPERREC_ENSURE(synchronized(),
                  "append_step requires a synchronized trace");
  // Validate every universe before mutating ANY task: a mismatch surfacing
  // after task 0 pushed would leave the trace permanently unsynchronized.
  for (std::size_t j = 0; j < tasks_.size(); ++j) {
    HYPERREC_ENSURE(step[j].local.size() == tasks_[j].local_universe(),
                    "requirement universe differs from its task's universe");
  }
  for (std::size_t j = 0; j < tasks_.size(); ++j) {
    tasks_[j].push_back(std::move(step[j]));
  }
}

std::vector<ContextRequirement> MultiTaskTrace::step(std::size_t i) const {
  HYPERREC_ENSURE(!tasks_.empty(), "step() needs at least one task");
  HYPERREC_ENSURE(synchronized(), "step() requires a synchronized trace");
  std::vector<ContextRequirement> step;
  step.reserve(tasks_.size());
  for (const TaskTrace& task : tasks_) {
    step.push_back(task.at(i));
  }
  return step;
}

bool MultiTaskTrace::synchronized() const noexcept {
  for (std::size_t j = 1; j < tasks_.size(); ++j)
    if (tasks_[j].size() != tasks_[0].size()) return false;
  return true;
}

std::size_t MultiTaskTrace::steps() const {
  HYPERREC_ENSURE(!tasks_.empty(), "trace has no tasks");
  HYPERREC_ENSURE(synchronized(), "steps() requires a synchronized trace");
  return tasks_[0].size();
}

MultiTaskTrace MultiTaskTrace::from_local(
    const std::vector<std::size_t>& universes,
    const std::vector<std::vector<DynamicBitset>>& requirements) {
  HYPERREC_ENSURE(universes.size() == requirements.size(),
                  "one universe size per task required");
  MultiTaskTrace trace;
  for (std::size_t j = 0; j < universes.size(); ++j) {
    TaskTrace task(universes[j]);
    for (const DynamicBitset& req : requirements[j]) {
      task.push_back_local(req);
    }
    trace.add_task(std::move(task));
  }
  return trace;
}

}  // namespace hyperrec
