#include "model/trace.hpp"

namespace hyperrec {

void TaskTrace::push_back(ContextRequirement req) {
  HYPERREC_ENSURE(req.local.size() == local_universe_,
                  "requirement universe differs from task universe");
  steps_.push_back(std::move(req));
}

DynamicBitset TaskTrace::local_union_naive(std::size_t first,
                                           std::size_t last) const {
  HYPERREC_ENSURE(first <= last && last <= steps_.size(),
                  "union range out of bounds");
  DynamicBitset result(local_universe_);
  for (std::size_t i = first; i < last; ++i) result |= steps_[i].local;
  return result;
}

std::uint32_t TaskTrace::max_private_demand_naive(std::size_t first,
                                                  std::size_t last) const {
  HYPERREC_ENSURE(first <= last && last <= steps_.size(),
                  "demand range out of bounds");
  std::uint32_t demand = 0;
  for (std::size_t i = first; i < last; ++i)
    demand = std::max(demand, steps_[i].private_demand);
  return demand;
}

bool MultiTaskTrace::synchronized() const noexcept {
  for (std::size_t j = 1; j < tasks_.size(); ++j)
    if (tasks_[j].size() != tasks_[0].size()) return false;
  return true;
}

std::size_t MultiTaskTrace::steps() const {
  HYPERREC_ENSURE(!tasks_.empty(), "trace has no tasks");
  HYPERREC_ENSURE(synchronized(), "steps() requires a synchronized trace");
  return tasks_[0].size();
}

MultiTaskTrace MultiTaskTrace::from_local(
    const std::vector<std::size_t>& universes,
    const std::vector<std::vector<DynamicBitset>>& requirements) {
  HYPERREC_ENSURE(universes.size() == requirements.size(),
                  "one universe size per task required");
  MultiTaskTrace trace;
  for (std::size_t j = 0; j < universes.size(); ++j) {
    TaskTrace task(universes[j]);
    for (const DynamicBitset& req : requirements[j]) {
      task.push_back_local(req);
    }
    trace.add_task(std::move(task));
  }
  return trace;
}

}  // namespace hyperrec
