#include "workload/generators.hpp"

#include <algorithm>

#include "support/ensure.hpp"

namespace hyperrec::workload {

namespace {

DynamicBitset window_requirement(std::size_t universe, std::size_t lo,
                                 std::size_t hi, double density, double noise,
                                 Xoshiro256& rng) {
  DynamicBitset bits(universe);
  for (std::size_t s = lo; s < hi && s < universe; ++s) {
    if (rng.flip(density)) bits.set(s);
  }
  if (noise > 0) {
    for (std::size_t s = 0; s < universe; ++s) {
      if (rng.flip(noise)) bits.set(s);
    }
  }
  return bits;
}

}  // namespace

TaskTrace make_phased(const PhasedConfig& config, Xoshiro256& rng) {
  HYPERREC_ENSURE(config.steps > 0 && config.universe > 0 && config.phases > 0,
                  "phased workload needs positive sizes");
  TaskTrace trace(config.universe);
  const std::size_t window = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.window_fraction *
                                  static_cast<double>(config.universe)));
  const std::size_t phase_length =
      (config.steps + config.phases - 1) / config.phases;

  std::size_t window_lo = 0;
  for (std::size_t step = 0; step < config.steps; ++step) {
    if (step % phase_length == 0) {
      window_lo = config.universe > window
                      ? rng.uniform(config.universe - window + 1)
                      : 0;
    }
    trace.push_back_local(window_requirement(config.universe, window_lo,
                                             window_lo + window,
                                             config.density, config.noise,
                                             rng));
  }
  return trace;
}

TaskTrace make_random(const RandomConfig& config, Xoshiro256& rng) {
  HYPERREC_ENSURE(config.steps > 0 && config.universe > 0,
                  "random workload needs positive sizes");
  TaskTrace trace(config.universe);
  for (std::size_t step = 0; step < config.steps; ++step) {
    trace.push_back_local(window_requirement(config.universe, 0,
                                             config.universe, config.density,
                                             0.0, rng));
  }
  return trace;
}

TaskTrace make_random_walk(const RandomWalkConfig& config, Xoshiro256& rng) {
  HYPERREC_ENSURE(config.steps > 0 && config.universe > 0 && config.window > 0,
                  "random-walk workload needs positive sizes");
  TaskTrace trace(config.universe);
  const std::size_t max_lo =
      config.universe > config.window ? config.universe - config.window : 0;
  std::size_t lo = max_lo / 2;
  for (std::size_t step = 0; step < config.steps; ++step) {
    if (rng.flip(config.drift)) {
      if (rng.flip(0.5)) {
        lo = lo > 0 ? lo - 1 : 0;
      } else {
        lo = std::min(max_lo, lo + 1);
      }
    }
    trace.push_back_local(window_requirement(config.universe, lo,
                                             lo + config.window,
                                             config.density, 0.0, rng));
  }
  return trace;
}

TaskTrace make_bursty(const BurstyConfig& config, Xoshiro256& rng) {
  HYPERREC_ENSURE(config.steps > 0 && config.universe > 0,
                  "bursty workload needs positive sizes");
  TaskTrace trace(config.universe);
  std::size_t burst_remaining = 0;
  for (std::size_t step = 0; step < config.steps; ++step) {
    if (burst_remaining == 0 && rng.flip(config.burst_probability)) {
      burst_remaining = config.burst_length;
    }
    if (burst_remaining > 0) {
      --burst_remaining;
      trace.push_back_local(window_requirement(
          config.universe, 0, config.universe, config.burst_fraction, 0.0,
          rng));
    } else {
      trace.push_back_local(window_requirement(
          config.universe, 0, std::min(config.quiet_switches, config.universe),
          0.9, 0.0, rng));
    }
  }
  return trace;
}

TaskTrace make_periodic(const PeriodicConfig& config, Xoshiro256& rng) {
  HYPERREC_ENSURE(config.repetitions > 0 && config.period > 0 &&
                      config.universe > 0,
                  "periodic workload needs positive sizes");
  const std::size_t window = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.window_fraction *
                                  static_cast<double>(config.universe)));
  std::vector<DynamicBitset> pattern;
  pattern.reserve(config.period);
  for (std::size_t p = 0; p < config.period; ++p) {
    const std::size_t lo = config.universe > window
                               ? rng.uniform(config.universe - window + 1)
                               : 0;
    pattern.push_back(
        window_requirement(config.universe, lo, lo + window, 0.8, 0.0, rng));
  }
  TaskTrace trace(config.universe);
  for (std::size_t r = 0; r < config.repetitions; ++r) {
    for (const DynamicBitset& req : pattern) trace.push_back_local(req);
  }
  return trace;
}

void add_private_demand(TaskTrace& trace, std::uint32_t low,
                        std::uint32_t high, std::size_t phases) {
  HYPERREC_ENSURE(phases > 0, "at least one demand phase required");
  HYPERREC_ENSURE(low <= high, "low demand must not exceed high demand");
  const std::size_t n = trace.size();
  const std::size_t phase_length = (n + phases - 1) / phases;
  TaskTrace rebuilt(trace.local_universe());
  for (std::size_t i = 0; i < n; ++i) {
    ContextRequirement req = trace.at(i);
    const bool high_phase = (i / phase_length) % 2 == 1;
    req.private_demand = high_phase ? high : low;
    rebuilt.push_back(std::move(req));
  }
  trace = std::move(rebuilt);
}

const std::vector<std::string>& family_names() {
  static const std::vector<std::string> kNames = {
      "phased", "random", "random-walk", "bursty", "periodic"};
  return kNames;
}

TaskTrace make_family(const std::string& kind, std::size_t steps,
                      std::size_t universe, Xoshiro256& rng) {
  if (kind == "phased") {
    PhasedConfig config;
    config.steps = steps;
    config.universe = universe;
    return make_phased(config, rng);
  }
  if (kind == "random") {
    RandomConfig config;
    config.steps = steps;
    config.universe = universe;
    return make_random(config, rng);
  }
  if (kind == "random-walk") {
    RandomWalkConfig config;
    config.steps = steps;
    config.universe = universe;
    config.window = universe / 4 + 1;
    return make_random_walk(config, rng);
  }
  if (kind == "bursty") {
    BurstyConfig config;
    config.steps = steps;
    config.universe = universe;
    return make_bursty(config, rng);
  }
  if (kind == "periodic") {
    PeriodicConfig config;
    config.period = steps / 8 + 1;
    config.repetitions = (steps + config.period - 1) / config.period;
    config.universe = universe;
    return make_periodic(config, rng);
  }
  HYPERREC_ENSURE(false, "unknown workload family: " + kind);
}

MultiTaskTrace make_multi_family(const std::string& kind, std::size_t tasks,
                                 std::size_t steps, std::size_t universe,
                                 Xoshiro256& rng) {
  HYPERREC_ENSURE(tasks > 0, "at least one task required");
  MultiTaskTrace trace;
  for (std::size_t j = 0; j < tasks; ++j) {
    Xoshiro256 task_rng = rng.split(j);
    trace.add_task(make_family(kind, steps, universe, task_rng));
  }
  return trace;
}

MultiTaskTrace make_multi_phased(const MultiPhasedConfig& config,
                                 std::uint64_t seed) {
  HYPERREC_ENSURE(config.tasks > 0, "at least one task required");
  MultiTaskTrace trace;
  Xoshiro256 root(seed);
  for (std::size_t j = 0; j < config.tasks; ++j) {
    Xoshiro256 rng = root.split(j);
    trace.add_task(make_phased(config.task_config, rng));
  }
  return trace;
}

}  // namespace hyperrec::workload
