// Synthetic context-requirement workloads.
//
// The paper motivates hyperreconfiguration with computations that "typically
// consist of different phases that use only small parts of the whole
// reconfiguration potential".  These generators produce single- and
// multi-task traces with controllable phase structure so benches can sweep
// the regimes between fully phased (hyperreconfiguration-friendly) and fully
// random (hyperreconfiguration-hostile):
//
//   * phased        — piecewise-constant active switch windows with noise,
//   * random        — i.i.d. requirements of a given density,
//   * random_walk   — a slowly drifting active window (temporal locality),
//   * bursty        — long quiet stretches with short wide bursts,
//   * periodic      — a repeating block pattern (loop-like, SHyRA-style).
//
// All generators are deterministic in the seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model/trace.hpp"
#include "support/rng.hpp"

namespace hyperrec::workload {

struct PhasedConfig {
  std::size_t steps = 128;
  std::size_t universe = 48;
  std::size_t phases = 4;
  /// Fraction of the universe active within a phase window.
  double window_fraction = 0.25;
  /// Probability per step that a requirement bit leaks outside the window.
  double noise = 0.02;
  /// Probability that an in-window switch is requested at a given step.
  double density = 0.6;
};

[[nodiscard]] TaskTrace make_phased(const PhasedConfig& config,
                                    Xoshiro256& rng);

struct RandomConfig {
  std::size_t steps = 128;
  std::size_t universe = 48;
  /// Probability that any switch is requested at any step.
  double density = 0.3;
};

[[nodiscard]] TaskTrace make_random(const RandomConfig& config,
                                    Xoshiro256& rng);

struct RandomWalkConfig {
  std::size_t steps = 128;
  std::size_t universe = 48;
  std::size_t window = 12;     ///< width of the drifting active window
  double drift = 0.15;         ///< probability the window moves per step
  double density = 0.7;        ///< request probability inside the window
};

[[nodiscard]] TaskTrace make_random_walk(const RandomWalkConfig& config,
                                         Xoshiro256& rng);

struct BurstyConfig {
  std::size_t steps = 128;
  std::size_t universe = 48;
  std::size_t quiet_switches = 4;   ///< active switches between bursts
  double burst_probability = 0.05;  ///< per-step chance a burst starts
  std::size_t burst_length = 6;
  double burst_fraction = 0.8;      ///< fraction of universe hit in a burst
};

[[nodiscard]] TaskTrace make_bursty(const BurstyConfig& config,
                                    Xoshiro256& rng);

struct PeriodicConfig {
  std::size_t repetitions = 11;
  std::size_t universe = 48;
  /// Per-position requirement pattern of one period; generated once and
  /// repeated (like a loop body such as the SHyRA counter iteration).
  std::size_t period = 10;
  double window_fraction = 0.3;
};

[[nodiscard]] TaskTrace make_periodic(const PeriodicConfig& config,
                                      Xoshiro256& rng);

/// Adds a private-global demand curve to a trace: demand ramps between
/// `low` and `high` in `phases` alternating plateaus (I/O-heavy vs compute-
/// heavy phases — the paper's motivating example for private resources).
void add_private_demand(TaskTrace& trace, std::uint32_t low,
                        std::uint32_t high, std::size_t phases);

/// The five generator family names in canonical order: phased, random,
/// random-walk, bursty, periodic.  The by-name entry points below keep the
/// CLI, benches and test fixtures on one family list.
[[nodiscard]] const std::vector<std::string>& family_names();

/// Builds a trace of the named family with canonical derived parameters
/// for the given shape (e.g. random-walk window = universe/4 + 1, periodic
/// period = steps/8 + 1 with steps rounded up to whole periods).  Unknown
/// names are a precondition error.
[[nodiscard]] TaskTrace make_family(const std::string& kind,
                                    std::size_t steps, std::size_t universe,
                                    Xoshiro256& rng);

/// Synchronized multi-task trace: `tasks` independent make_family streams
/// split off `rng` (stream j for task j).
[[nodiscard]] MultiTaskTrace make_multi_family(const std::string& kind,
                                               std::size_t tasks,
                                               std::size_t steps,
                                               std::size_t universe,
                                               Xoshiro256& rng);

/// Composes a synchronized multi-task trace from per-task generators, all
/// derived deterministically from one seed.
struct MultiPhasedConfig {
  std::size_t tasks = 4;
  PhasedConfig task_config;
};

[[nodiscard]] MultiTaskTrace make_multi_phased(const MultiPhasedConfig& config,
                                               std::uint64_t seed);

}  // namespace hyperrec::workload
