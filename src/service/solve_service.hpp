// The persistent solve service: one shared cache, admission control,
// tenant quotas, streaming multiplexing and /statz — the layer that turns
// the solver library into a long-running system.
//
// A SolveService owns exactly one SolveCache (and through it the warm-start
// index), one BatchEngine for offline solve requests, and one
// StreamMultiplexer for streaming tenants — all alive for the service's
// lifetime, so repetition across requests is exploited instead of dying
// with each process (ROADMAP item 1).  Transport is pluggable: the service
// maps one request line to one response line (handle_line, thread-safe);
// socket_server.hpp pumps a Unix socket through it, tests call it directly.
//
// Request lifecycle for a solve:
//
//   parse ─► draining? ─► tenant token bucket ─► bounded priority queue
//             │ reject         │ reject (retry-after)   │ reject
//             ▼                ▼                        ▼ (backpressure)
//   ...admitted: a worker pops (priority desc, FIFO within), solves the
//   one-job batch through the shared engine+cache, records latency and
//   win-rate metrics, and fulfils the caller's future with the full
//   io/result_json v5 document (tenant/queue envelope filled in).
//
// Graceful drain (shutdown(), idempotent): stop admitting, close the queue
// so workers finish every accepted job, join the workers, then flush and
// drain the multiplexer — no accepted work is ever dropped.  /statz keeps
// answering during and after the drain.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_annotations.hpp"

#include "engine/batch_engine.hpp"
#include "service/admission.hpp"
#include "service/latency_sketch.hpp"
#include "service/protocol.hpp"
#include "streaming/stream_multiplexer.hpp"

namespace hyperrec::service {

struct ServiceConfig {
  /// Worker threads popping the admission queue (each runs its own
  /// single-threaded BatchEngine solve; jobs are the unit of parallelism).
  std::size_t workers = 2;
  /// Admission queue bound; a full queue rejects with backpressure.
  std::size_t queue_capacity = 64;
  /// Suggested client wait after a backpressure rejection.
  std::chrono::milliseconds backpressure_retry{50};
  /// The ONE shared cache: entry budget, TTL, warm-start index budget.
  cache::SolveCacheConfig cache;
  /// Portfolio line-up for solve requests; empty = full standard line-up.
  std::vector<std::string> portfolio;
  /// Per-job solve deadline; 0 = none.
  std::chrono::milliseconds deadline{0};
  /// Seed misses with same-shape cached incumbents (the warm-start index).
  bool warm_start = true;
  /// Stamp optimality certificates (lower_bound / gap_pct, see
  /// core/lower_bound.hpp) on offline solves; /statz then aggregates the
  /// certified count and gap statistics.  On by default — the bound is a
  /// cheap by-product next to a portfolio race.
  bool certify = true;
  /// Default tenant quota; rate_per_sec <= 0 = unlimited.
  QuotaConfig default_quota;
  /// Per-tenant quota overrides by tenant name.
  std::map<std::string, QuotaConfig> tenant_quotas;
  /// Streaming: multiplexer shard lanes, per-stream solve window, and the
  /// fleet-wide trigger spec (strict grammar — see trigger_spec.hpp; parsed
  /// at construction, so a malformed daemon config fails loudly at start).
  std::size_t mux_shards = 4;
  std::size_t stream_window = 256;
  std::string stream_trigger = "steps:16";
};

class SolveService {
 public:
  explicit SolveService(ServiceConfig config);
  ~SolveService();  ///< runs shutdown() when the owner did not

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// One request line in, one response line out (no trailing newline).
  /// Thread-safe; never throws — malformed requests and internal failures
  /// come back as error lines.  A solve blocks the calling thread until a
  /// worker answers (admission happens up front; concurrent callers feel
  /// backpressure through the bounded queue, not through buffering).
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Graceful drain: stop admitting, finish every accepted job, flush and
  /// drain every stream.  Idempotent; blocks until the drain completed.
  void shutdown();

  /// True from the moment shutdown() was requested (new work is rejected
  /// with reject="draining").
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// The /statz metrics document (also served via {"op":"statz"}).
  [[nodiscard]] std::string statz_json() const;

  /// The shared cache — the soak gate asserts entries <= capacity and
  /// inflight() == 0 through this.
  [[nodiscard]] const cache::SolveCache& cache() const noexcept {
    return *cache_;
  }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }

 private:
  /// An admitted solve waiting for a worker.
  struct Pending {
    engine::BatchJob job;
    std::string id;  ///< client request id, echoed on the error path
    std::string tenant;
    std::uint64_t priority = 0;
    std::size_t depth_at_admission = 0;
    std::chrono::steady_clock::time_point enqueued;
    std::shared_ptr<std::promise<std::string>> response;
  };

  std::string handle_request(const Request& request);
  std::string handle_solve(const Request& request);
  std::string handle_stream_open(const Request& request);
  std::string handle_stream_append(const Request& request);
  std::string handle_stream_flush(const Request& request);
  std::string handle_stream_result(const Request& request);
  void worker_loop();

  ServiceConfig config_;
  std::shared_ptr<cache::SolveCache> cache_;
  std::unique_ptr<engine::BatchEngine> engine_;
  std::unique_ptr<streaming::StreamMultiplexer> mux_;

  TenantRegistry tenants_;
  BoundedPriorityQueue<Pending> queue_;
  std::vector<std::thread> workers_;

  /// Stream table: mux stream id → owner tenant and task universes (the
  /// service validates append bits against these).  Shared lock for
  /// appends/flushes, exclusive for open/result/shutdown (stream_result
  /// drains the mux, which needs producers paused).
  struct StreamInfo {
    std::string tenant;
    std::vector<std::size_t> universes;
  };
  mutable SharedMutex streams_mutex_{"SolveService::streams"};
  std::map<std::size_t, StreamInfo> streams_ GUARDED_BY(streams_mutex_);

  // Metrics.
  LatencySketch solve_latency_;
  LatencySketch queue_wait_;
  mutable Mutex wins_mutex_{"SolveService::wins"};
  std::map<std::string, std::uint64_t> solver_wins_
      GUARDED_BY(wins_mutex_);
  // Certificate telemetry (certified offline solves only; cache hits count
  // too when the memoized solution carries a certificate).
  std::uint64_t certified_ GUARDED_BY(wins_mutex_) = 0;
  double gap_sum_pct_ GUARDED_BY(wins_mutex_) = 0.0;
  double gap_max_pct_ GUARDED_BY(wins_mutex_) = 0.0;

  std::atomic<bool> draining_{false};
  std::once_flag shutdown_once_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace hyperrec::service
