#include "service/protocol.hpp"

#include <cstdio>

#include "service/json.hpp"
#include "support/ensure.hpp"
#include "support/rng.hpp"
#include "workload/generators.hpp"

namespace hyperrec::service {

namespace {

std::uint64_t uint_field(const JsonValue& object, const std::string& key,
                         std::uint64_t fallback) {
  const JsonValue* value = object.get(key);
  if (value == nullptr) return fallback;
  HYPERREC_ENSURE(value->kind() == JsonValue::Kind::kInt,
                  "request field \"" + key + "\" must be an integer");
  HYPERREC_ENSURE(value->as_int() >= 0,
                  "request field \"" + key + "\" must be non-negative");
  return value->as_uint();
}

std::string string_field(const JsonValue& object, const std::string& key,
                         std::string fallback) {
  const JsonValue* value = object.get(key);
  if (value == nullptr) return fallback;
  HYPERREC_ENSURE(value->kind() == JsonValue::Kind::kString,
                  "request field \"" + key + "\" must be a string");
  return value->as_string();
}

std::vector<std::size_t> universes_field(const JsonValue& object,
                                         const std::string& key) {
  const JsonValue* value = object.get(key);
  HYPERREC_ENSURE(value != nullptr,
                  "request needs a \"" + key + "\" array");
  std::vector<std::size_t> universes;
  for (const JsonValue& entry : value->as_array()) {
    const std::uint64_t universe = entry.as_uint();
    HYPERREC_ENSURE(universe >= 1, "task universes must be at least 1");
    universes.push_back(static_cast<std::size_t>(universe));
  }
  HYPERREC_ENSURE(!universes.empty(), "\"" + key + "\" must be non-empty");
  return universes;
}

/// One synchronized step: [{"bits":[...], "demand":D?}, ...], requirement j
/// for task j with universe universes[j].
std::vector<ContextRequirement> parse_step(
    const JsonValue& step, const std::vector<std::size_t>& universes) {
  const JsonArray& reqs = step.as_array();
  HYPERREC_ENSURE(reqs.size() == universes.size(),
                  "step must carry exactly one requirement per task");
  std::vector<ContextRequirement> parsed;
  parsed.reserve(reqs.size());
  for (std::size_t j = 0; j < reqs.size(); ++j) {
    DynamicBitset local(universes[j]);
    const JsonValue* bits = reqs[j].get("bits");
    HYPERREC_ENSURE(bits != nullptr,
                    "step requirement needs a \"bits\" array");
    for (const JsonValue& bit : bits->as_array()) {
      const std::uint64_t index = bit.as_uint();
      HYPERREC_ENSURE(index < universes[j],
                      "requirement bit " + std::to_string(index) +
                          " outside the task's universe");
      local.set(static_cast<std::size_t>(index));
    }
    const std::uint64_t demand = uint_field(reqs[j], "demand", 0);
    HYPERREC_ENSURE(demand <= 0xFFFFFFFFull,
                    "requirement demand out of range");
    parsed.push_back(ContextRequirement{
        std::move(local), static_cast<std::uint32_t>(demand)});
  }
  return parsed;
}

JobSpec parse_job(const JsonValue& job) {
  JobSpec spec;
  const JsonValue* trace = job.get("trace");
  if (trace != nullptr) {
    spec.inline_universes = universes_field(*trace, "universes");
    const JsonValue* steps = trace->get("steps");
    HYPERREC_ENSURE(steps != nullptr,
                    "inline trace needs a \"steps\" array");
    MultiTaskTrace parsed;
    std::vector<TaskTrace> tasks;
    tasks.reserve(spec.inline_universes.size());
    for (const std::size_t universe : spec.inline_universes) {
      tasks.emplace_back(universe);
    }
    const JsonArray& rows = steps->as_array();
    HYPERREC_ENSURE(!rows.empty(), "inline trace needs at least one step");
    for (const JsonValue& row : rows) {
      std::vector<ContextRequirement> step =
          parse_step(row, spec.inline_universes);
      for (std::size_t j = 0; j < step.size(); ++j) {
        tasks[j].push_back(std::move(step[j]));
      }
    }
    for (TaskTrace& task : tasks) parsed.add_task(std::move(task));
    spec.inline_trace = std::move(parsed);
    spec.name = string_field(job, "name", "inline");
    return spec;
  }

  const JsonValue* workload = job.get("workload");
  HYPERREC_ENSURE(workload != nullptr,
                  "job needs either \"workload\" or \"trace\"");
  spec.workload = workload->as_string();
  bool known = false;
  for (const std::string& kind : workload::family_names()) {
    known = known || kind == spec.workload;
  }
  HYPERREC_ENSURE(known, "unknown workload family \"" + spec.workload + "\"");
  spec.tasks = static_cast<std::size_t>(uint_field(job, "tasks", 4));
  spec.steps = static_cast<std::size_t>(uint_field(job, "steps", 96));
  spec.universe = static_cast<std::size_t>(uint_field(job, "universe", 32));
  spec.seed = uint_field(job, "seed", 1);
  spec.stream = uint_field(job, "stream", 0);
  HYPERREC_ENSURE(spec.tasks >= 1 && spec.steps >= 1 && spec.universe >= 1,
                  "job shape fields must be at least 1");
  spec.name = string_field(
      job, "name", spec.workload + "-" + std::to_string(spec.stream));
  return spec;
}

}  // namespace

Request parse_request(const std::string& line) {
  const JsonValue doc = parse_json(line);
  HYPERREC_ENSURE(doc.kind() == JsonValue::Kind::kObject,
                  "request must be a JSON object");
  Request request;
  const std::string op = string_field(doc, "op", "");
  HYPERREC_ENSURE(!op.empty(), "request needs an \"op\" field");
  request.tenant = string_field(doc, "tenant", "default");
  HYPERREC_ENSURE(!request.tenant.empty(), "tenant name must be non-empty");
  request.priority = uint_field(doc, "priority", 0);
  request.id = string_field(doc, "id", "");

  if (op == "solve") {
    request.op = Op::kSolve;
    const JsonValue* job = doc.get("job");
    HYPERREC_ENSURE(job != nullptr, "solve request needs a \"job\" object");
    request.job = parse_job(*job);
  } else if (op == "stream_open") {
    request.op = Op::kStreamOpen;
    request.universes = universes_field(doc, "universes");
    request.trigger = string_field(doc, "trigger", "");
  } else if (op == "stream_append") {
    request.op = Op::kStreamAppend;
    request.stream = static_cast<std::size_t>(uint_field(doc, "stream", 0));
    const JsonValue* step = doc.get("step");
    HYPERREC_ENSURE(step != nullptr,
                    "stream_append needs a \"step\" array");
    const JsonArray& reqs = step->as_array();
    HYPERREC_ENSURE(!reqs.empty(), "step must be non-empty");
    for (const JsonValue& req : reqs) {
      StepRequirement parsed;
      const JsonValue* bits = req.get("bits");
      HYPERREC_ENSURE(bits != nullptr,
                      "step requirement needs a \"bits\" array");
      for (const JsonValue& bit : bits->as_array()) {
        parsed.bits.push_back(static_cast<std::size_t>(bit.as_uint()));
      }
      const std::uint64_t demand = uint_field(req, "demand", 0);
      HYPERREC_ENSURE(demand <= 0xFFFFFFFFull,
                      "requirement demand out of range");
      parsed.demand = static_cast<std::uint32_t>(demand);
      request.step.push_back(std::move(parsed));
    }
  } else if (op == "stream_flush") {
    request.op = Op::kStreamFlush;
    request.stream = static_cast<std::size_t>(uint_field(doc, "stream", 0));
  } else if (op == "stream_result") {
    request.op = Op::kStreamResult;
    request.stream = static_cast<std::size_t>(uint_field(doc, "stream", 0));
  } else if (op == "statz") {
    request.op = Op::kStatz;
  } else if (op == "shutdown") {
    request.op = Op::kShutdown;
  } else {
    HYPERREC_ENSURE(false, "unknown op \"" + op + "\"");
  }
  return request;
}

engine::BatchJob make_job(const JobSpec& spec) {
  engine::BatchJob job;
  if (spec.inline_trace.has_value()) {
    job.trace = *spec.inline_trace;
  } else {
    // CLI-identical derivation: root seed, per-job split, same generator.
    Xoshiro256 root(spec.seed);
    Xoshiro256 rng = root.split(spec.stream);
    job.trace = workload::make_multi_family(spec.workload, spec.tasks,
                                            spec.steps, spec.universe, rng);
  }
  std::vector<std::size_t> locals;
  locals.reserve(job.trace.task_count());
  for (std::size_t j = 0; j < job.trace.task_count(); ++j) {
    locals.push_back(job.trace.task(j).local_universe());
  }
  job.machine = MachineSpec::local_only(locals);
  job.name = spec.name;
  return job;
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

std::string service_prefix(const std::string& id) {
  return "{\"schema\":\"hyperrec-service\",\"version\":1,\"id\":" +
         json_quote(id);
}

}  // namespace

std::string error_line(const std::string& id, const std::string& message) {
  return service_prefix(id) + ",\"ok\":false,\"error\":" +
         json_quote(message) + "}";
}

std::string reject_line(const std::string& id, RejectReason reason,
                        std::chrono::milliseconds retry_after) {
  return service_prefix(id) + ",\"ok\":false,\"reject\":\"" +
         to_string(reason) +
         "\",\"retry_after_ms\":" + std::to_string(retry_after.count()) + "}";
}

std::string ack_line(const std::string& id) {
  return service_prefix(id) + ",\"ok\":true}";
}

std::string stream_opened_line(const std::string& id, std::size_t stream) {
  return service_prefix(id) + ",\"ok\":true,\"stream\":" +
         std::to_string(stream) + "}";
}

}  // namespace hyperrec::service
