// Streaming quantile sketch for service latency metrics.
//
// /statz wants p50/p99 over an unbounded stream of solve latencies without
// storing samples.  A histogram with geometric buckets does this in fixed
// memory with a bounded *relative* error: each power-of-two octave is split
// into `kSub` linear sub-buckets, so a bucket's width is at most 1/kSub of
// its magnitude (~12.5% worst-case relative error at kSub = 8 — plenty for
// a latency percentile, which is read at order-of-magnitude granularity).
//
// record() is lock-free (one relaxed fetch_add plus a relaxed CAS for the
// max) and safe from any number of threads; quantile() is a read-side scan
// over the bucket array — monotone, deterministic for a quiesced sketch,
// and conservative (it reports the bucket's upper bound, clamped to the
// true observed max).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace hyperrec::service {

class LatencySketch {
 public:
  /// Records one non-negative sample, in microseconds.
  void record(std::chrono::microseconds sample);

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest sample, clamped to the observed max
  /// (so quantile(1.0) == max()).  0 when nothing was recorded.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t max() const;

 private:
  /// 40 octaves cover [1 us, ~2^40 us ≈ 12.7 days) — beyond any solve.
  static constexpr std::size_t kOctaves = 40;
  static constexpr std::size_t kSub = 8;
  static constexpr std::size_t kBuckets = kOctaves * kSub;

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t us) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace hyperrec::service
