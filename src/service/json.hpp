// Minimal JSON reader for the solve daemon's wire protocol.
//
// The daemon speaks line-delimited JSON over a local socket; requests are
// small, hand-written documents, so this is a strict recursive-descent
// parser over the RFC 8259 grammar — no dependencies, no streaming, no
// comments, no trailing garbage.  Malformed input throws PreconditionError
// with a byte offset: a daemon must answer a broken request with a precise
// error line, never by guessing.
//
// Numbers keep the integer/double distinction: a token without '.'/'e' that
// fits std::int64_t parses as an integer (the protocol's counts, seeds and
// ids are all integral, and the result_json writer guarantees integer
// output), everything else as a double.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hyperrec::service {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Insertion order is irrelevant for requests; a sorted map keeps lookups
/// simple and duplicate keys detectable.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;
  explicit JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  explicit JsonValue(std::int64_t value) : kind_(Kind::kInt), int_(value) {}
  explicit JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}
  explicit JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  explicit JsonValue(JsonArray value)
      : kind_(Kind::kArray), array_(std::move(value)) {}
  explicit JsonValue(JsonObject value)
      : kind_(Kind::kObject),
        object_(std::make_shared<JsonObject>(std::move(value))) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }

  // Typed accessors; the wrong kind throws PreconditionError (the daemon
  // turns that into an error response naming the field).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// as_int plus a non-negative check — sizes, seeds and counts.
  [[nodiscard]] std::uint64_t as_uint() const;
  /// Accepts both integer and double tokens.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent (or when this is not an
  /// object — absent and wrong-shape read the same to an optional field).
  [[nodiscard]] const JsonValue* get(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  JsonArray array_;
  /// shared_ptr breaks the JsonValue→JsonObject→JsonValue size recursion.
  std::shared_ptr<JsonObject> object_;
};

/// Parses exactly one JSON document; trailing non-whitespace throws.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace hyperrec::service
