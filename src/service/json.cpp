#include "service/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "support/ensure.hpp"

namespace hyperrec::service {

namespace {

class Parser {
 public:
  /// Containers deeper than this are rejected.  The parser recurses per
  /// nesting level and reads untrusted socket input, so without a ceiling
  /// a '[[[[…' line turns into a stack overflow that kills the daemon.
  static constexpr int kMaxDepth = 64;

  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    skip_ws();
    JsonValue value = parse_value();
    skip_ws();
    HYPERREC_ENSURE(pos_ == text_.size(),
                    "trailing content after JSON document at byte " +
                        std::to_string(pos_));
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    HYPERREC_ENSURE(false,
                    "malformed JSON: " + what + " at byte " +
                        std::to_string(pos_));
    std::abort();  // unreachable; HYPERREC_ENSURE(false, ...) throws
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) fail("invalid literal");
    pos_ += len;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': literal("true", 4); return JsonValue(true);
      case 'f': literal("false", 5); return JsonValue(false);
      case 'n': literal("null", 4); return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    enter_container();
    JsonObject object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue(std::move(object));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      HYPERREC_ENSURE(object.find(key) == object.end(),
                      "malformed JSON: duplicate key \"" + key + "\"");
      skip_ws();
      expect(':');
      skip_ws();
      object.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    --depth_;
    return JsonValue(std::move(object));
  }

  JsonValue parse_array() {
    expect('[');
    enter_container();
    JsonArray array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue(std::move(array));
    }
    while (true) {
      skip_ws();
      array.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    --depth_;
    return JsonValue(std::move(array));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out.append(parse_unicode_escape()); break;
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    // \uXXXX → UTF-8.  Surrogate pairs are rejected (the protocol is plain
    // ASCII plus UTF-8 payloads that never need them); lone BMP code points
    // encode directly.
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape");
      }
    }
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape");
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number");
    }
    bool integral = true;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      integral = false;
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("invalid number");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("invalid number");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token = text_.substr(begin, pos_ - begin);
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return JsonValue(value);
      }
      // Out of int64 range: fall through to double.
    }
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) fail("non-finite number");
    return JsonValue(value);
  }

  void enter_container() {
    if (++depth_ > kMaxDepth) {
      fail("nesting deeper than " + std::to_string(kMaxDepth) + " levels");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  HYPERREC_ENSURE(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  HYPERREC_ENSURE(kind_ == Kind::kInt, "JSON value is not an integer");
  return int_;
}

std::uint64_t JsonValue::as_uint() const {
  const std::int64_t value = as_int();
  HYPERREC_ENSURE(value >= 0, "JSON value is negative");
  return static_cast<std::uint64_t>(value);
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  HYPERREC_ENSURE(kind_ == Kind::kDouble, "JSON value is not a number");
  return double_;
}

const std::string& JsonValue::as_string() const {
  HYPERREC_ENSURE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  HYPERREC_ENSURE(kind_ == Kind::kArray, "JSON value is not an array");
  return array_;
}

const JsonObject& JsonValue::as_object() const {
  HYPERREC_ENSURE(kind_ == Kind::kObject, "JSON value is not an object");
  return *object_;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace hyperrec::service
