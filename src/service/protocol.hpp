// Wire protocol of the solve daemon: line-delimited JSON requests.
//
// One request per line, one response line per request, in order.  Ops:
//
//   {"op":"solve", "tenant":T?, "priority":P?, "id":I?, "job":{...}}
//       job = {"workload":KIND, "tasks":M?, "steps":N?, "universe":L?,
//              "seed":S?, "stream":J?, "name":NAME?}
//             — generated exactly like `hyperrec_cli --workload=KIND
//               --tasks=M --steps=N --universe=L --seed=S` job J (same rng
//               split, same machine), which is what makes daemon responses
//               bit-identical to one-shot CLI solves; or
//             {"trace":{"universes":[l_0,...],
//                       "steps":[[{"bits":[..],"demand":D?}, ...], ...]},
//              "name":NAME?}
//             — an inline synchronized trace, one requirement per task per
//               step, machine = local_only(universes).
//       → a full io/result_json v5 document (the "tenant"/"queue" fields
//         carry the admission telemetry), or a rejection line.
//   {"op":"stream_open", "tenant":T?, "id":I?, "universes":[l_0,...],
//    "trigger":SPEC?}
//       Opens a multiplexed streaming tenant on machine
//       local_only(universes).  The optional trigger spec is parsed
//       STRICTLY (see streaming/trigger_spec.hpp) and must equal the
//       daemon's fleet-wide spec — streaming policy is per-daemon, and a
//       mismatch is an error, never a silent override.
//       → {"ok":true, "stream":ID}
//   {"op":"stream_append", "stream":ID, "step":[{"bits":[..],"demand":D?},
//    ...], "id":I?}         → {"ok":true} (fire-and-forget into the mux)
//   {"op":"stream_flush", "stream":ID}   → {"ok":true}
//   {"op":"stream_result", "stream":ID}  → the stream's drained summary
//   {"op":"statz"}                       → the /statz metrics document
//   {"op":"shutdown"}                    → ack, then graceful drain
//
// Rejections and errors share one shape:
//   {"schema":"hyperrec-service","version":1,"ok":false,"id":I,
//    "reject":"rate"|"backpressure"|"draining","retry_after_ms":MS}
//   {"schema":"hyperrec-service","version":1,"ok":false,"id":I,
//    "error":"..."}
//
// All strings are RFC 8259-escaped; every number is a decimal integer.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/batch_engine.hpp"
#include "service/admission.hpp"

namespace hyperrec::service {

enum class Op : std::uint8_t {
  kSolve,
  kStreamOpen,
  kStreamAppend,
  kStreamFlush,
  kStreamResult,
  kStatz,
  kShutdown,
};

/// A solve job: either a generated workload (CLI-identical derivation) or
/// an inline trace.  `inline_trace` set means inline.
struct JobSpec {
  std::string workload;  ///< family kind; empty for inline traces
  std::size_t tasks = 4;
  std::size_t steps = 96;
  std::size_t universe = 32;
  std::uint64_t seed = 1;
  std::uint64_t stream = 0;  ///< rng split index (CLI job position)
  std::string name;          ///< defaults to "<kind>-<stream>" / "inline"
  std::optional<MultiTaskTrace> inline_trace;
  std::vector<std::size_t> inline_universes;
};

/// One task's requirement in a stream_append, before it is sized against
/// the stream's machine (the service owns the stream table and validates
/// bit indices against the task's universe when it builds the bitset).
struct StepRequirement {
  std::vector<std::size_t> bits;
  std::uint32_t demand = 0;
};

struct Request {
  Op op = Op::kStatz;
  std::string tenant = "default";
  std::uint64_t priority = 0;
  std::string id;  ///< client correlation id, echoed in service lines
  JobSpec job;                         // kSolve
  std::size_t stream = 0;              // stream ops
  std::vector<std::size_t> universes;  // kStreamOpen
  std::string trigger;                 // kStreamOpen (optional, strict)
  std::vector<StepRequirement> step;   // kStreamAppend
};

/// Parses one request line; malformed JSON, unknown ops, missing or
/// ill-typed fields throw PreconditionError (the daemon answers with an
/// error line naming the problem).
[[nodiscard]] Request parse_request(const std::string& line);

/// Materializes the BatchJob for a spec — the generated path replicates
/// hyperrec_cli's derivation exactly (root seed, split index, machine).
[[nodiscard]] engine::BatchJob make_job(const JobSpec& spec);

// Response lines (no trailing newline; the transport appends it).
[[nodiscard]] std::string error_line(const std::string& id,
                                     const std::string& message);
[[nodiscard]] std::string reject_line(const std::string& id,
                                      RejectReason reason,
                                      std::chrono::milliseconds retry_after);
[[nodiscard]] std::string ack_line(const std::string& id);
[[nodiscard]] std::string stream_opened_line(const std::string& id,
                                             std::size_t stream);

/// Escapes `text` per RFC 8259 and wraps it in quotes.
[[nodiscard]] std::string json_quote(const std::string& text);

}  // namespace hyperrec::service
