#include "service/solve_service.hpp"

#include <algorithm>
#include <cstdio>
#include <future>
#include <sstream>
#include <utility>

#include "io/result_json.hpp"
#include "streaming/trigger_spec.hpp"
#include "support/ensure.hpp"

namespace hyperrec::service {

namespace {

using Clock = std::chrono::steady_clock;

engine::BatchEngineConfig make_engine_config(
    const ServiceConfig& config,
    const std::shared_ptr<cache::SolveCache>& cache) {
  engine::BatchEngineConfig engine;
  // One worker thread per engine solve: the service's queue workers are the
  // unit of parallelism, each solving one-job batches.
  engine.parallelism = 1;
  engine.portfolio.solvers = config.portfolio;
  engine.portfolio.deadline = config.deadline;
  engine.cache = cache;
  engine.warm_start = config.warm_start;
  engine.certify = config.certify;
  return engine;
}

/// Fixed four-decimal rendering for statz gap percentages — finite
/// non-negative ratios of integral costs, so NaN/Inf cannot occur and the
/// output stays a plain JSON number (matching result_json's "gap_pct").
std::string fixed4(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4f", value);
  return buffer;
}

streaming::MultiplexerConfig make_mux_config(
    const ServiceConfig& config,
    const std::shared_ptr<cache::SolveCache>& cache) {
  streaming::MultiplexerConfig mux;
  mux.shards = config.mux_shards;
  mux.cache = cache;
  mux.stream.window = config.stream_window;
  // Strict parse at construction: a daemon flagged with a malformed or
  // typo'd trigger spec must die loudly at startup, not run the wrong
  // re-solve policy for its whole lifetime.
  mux.stream.trigger = streaming::parse_trigger_spec(config.stream_trigger);
  mux.stream.portfolio.solvers = config.portfolio;
  mux.stream.portfolio.deadline = config.deadline;
  return mux;
}

}  // namespace

SolveService::SolveService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(std::make_shared<cache::SolveCache>(config_.cache)),
      engine_(std::make_unique<engine::BatchEngine>(
          make_engine_config(config_, cache_))),
      mux_(std::make_unique<streaming::StreamMultiplexer>(
          make_mux_config(config_, cache_))),
      tenants_(config_.default_quota, config_.tenant_quotas),
      queue_(config_.queue_capacity),
      started_(Clock::now()) {
  HYPERREC_ENSURE(config_.workers >= 1, "service needs at least one worker");
  HYPERREC_ENSURE(config_.queue_capacity >= 1,
                  "queue capacity must be at least 1");
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolveService::~SolveService() { shutdown(); }

void SolveService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    draining_.store(true, std::memory_order_release);
    // close() wakes the workers but lets them pop everything already
    // accepted — an admitted job always gets its answer.
    queue_.close();
    for (std::thread& worker : workers_) worker.join();
    // Producers are rejected (draining) and in-flight appends hold the
    // shared lock; take it exclusively, then flush and drain the fleet.
    const WriterMutexLock lock(streams_mutex_);
    mux_->flush_all();
    mux_->drain();
  });
}

std::string SolveService::handle_line(const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& error) {
    return error_line("", error.what());
  }
  try {
    return handle_request(request);
  } catch (const std::exception& error) {
    return error_line(request.id, error.what());
  }
}

std::string SolveService::handle_request(const Request& request) {
  switch (request.op) {
    case Op::kSolve: return handle_solve(request);
    case Op::kStreamOpen: return handle_stream_open(request);
    case Op::kStreamAppend: return handle_stream_append(request);
    case Op::kStreamFlush: return handle_stream_flush(request);
    case Op::kStreamResult: return handle_stream_result(request);
    case Op::kStatz: return statz_json();
    case Op::kShutdown:
      shutdown();
      return ack_line(request.id);
  }
  return error_line(request.id, "unhandled op");
}

std::string SolveService::handle_solve(const Request& request) {
  if (draining()) {
    tenants_.record_draining(request.tenant);
    return reject_line(request.id, RejectReason::kDraining, {});
  }
  const Admission verdict = tenants_.admit(request.tenant, Clock::now());
  if (!verdict.admitted) {
    return reject_line(request.id, RejectReason::kRate, verdict.retry_after);
  }

  Pending pending;
  pending.job = make_job(request.job);
  pending.id = request.id;
  pending.tenant = request.tenant;
  pending.priority = request.priority;
  pending.depth_at_admission = queue_.depth();
  pending.enqueued = Clock::now();
  pending.response = std::make_shared<std::promise<std::string>>();
  std::future<std::string> response = pending.response->get_future();

  if (!queue_.try_push(std::move(pending), request.priority)) {
    tenants_.record_backpressure(request.tenant);
    return reject_line(request.id, RejectReason::kBackpressure,
                       config_.backpressure_retry);
  }
  tenants_.record_admitted(request.tenant);
  return response.get();
}

void SolveService::worker_loop() {
  while (auto pending = queue_.pop()) {
    const Clock::time_point dequeued = Clock::now();
    const auto wait = std::chrono::duration_cast<std::chrono::microseconds>(
        dequeued - pending->enqueued);
    // Every dequeued job counts: recording only after a successful solve
    // would bias the queue-wait quantiles toward successes.
    queue_wait_.record(wait);
    try {
      const engine::BatchResult result = engine_->solve({pending->job});
      if (!result.jobs.empty()) {
        const engine::JobResult& job = result.jobs.front();
        solve_latency_.record(job.elapsed);
        if (job.ok) {
          tenants_.record_completed(pending->tenant);
          const MutexLock lock(wins_mutex_);
          solver_wins_[job.winner] += 1;
          if (job.solution.gap_pct.has_value()) {
            certified_ += 1;
            gap_sum_pct_ += *job.solution.gap_pct;
            gap_max_pct_ = std::max(gap_max_pct_, *job.solution.gap_pct);
          }
        } else {
          tenants_.record_failed(pending->tenant);
        }
      }
      io::ServiceFields fields;
      fields.tenant = pending->tenant;
      fields.priority = pending->priority;
      fields.queue_depth = pending->depth_at_admission;
      fields.wait = wait;
      std::string document = io::batch_result_to_json(result, &fields);
      // The file writer ends documents with '\n'; on the wire the newline
      // is the line delimiter and the transport owns it.
      while (!document.empty() && document.back() == '\n') document.pop_back();
      pending->response->set_value(std::move(document));
    } catch (const std::exception& error) {
      tenants_.record_failed(pending->tenant);
      pending->response->set_value(error_line(pending->id, error.what()));
    }
  }
}

std::string SolveService::handle_stream_open(const Request& request) {
  if (draining()) {
    tenants_.record_draining(request.tenant);
    return reject_line(request.id, RejectReason::kDraining, {});
  }
  if (!request.trigger.empty()) {
    // Strict parse first — a malformed spec is an error naming the item
    // (the daemon-side counterpart of the CLI's loud rejection)...
    (void)streaming::parse_trigger_spec(request.trigger);
    // ...and a VALID spec must match the fleet policy: the multiplexer
    // runs one trigger config for every stream, so a divergent request is
    // answered honestly instead of silently overridden.
    if (request.trigger != config_.stream_trigger) {
      return error_line(request.id,
                        "stream trigger \"" + request.trigger +
                            "\" does not match the daemon's fleet-wide "
                            "spec \"" + config_.stream_trigger +
                            "\" (per-stream overrides are not supported)");
    }
  }
  const Admission verdict = tenants_.admit(request.tenant, Clock::now());
  if (!verdict.admitted) {
    return reject_line(request.id, RejectReason::kRate, verdict.retry_after);
  }
  tenants_.record_admitted(request.tenant);

  const WriterMutexLock lock(streams_mutex_);
  const std::size_t id =
      mux_->open_stream(MachineSpec::local_only(request.universes));
  streams_.emplace(id, StreamInfo{request.tenant, request.universes});
  return stream_opened_line(request.id, id);
}

std::string SolveService::handle_stream_append(const Request& request) {
  if (draining()) {
    tenants_.record_draining(request.tenant);
    return reject_line(request.id, RejectReason::kDraining, {});
  }
  const ReaderMutexLock lock(streams_mutex_);
  const auto it = streams_.find(request.stream);
  if (it == streams_.end()) {
    return error_line(request.id,
                      "unknown stream " + std::to_string(request.stream));
  }
  const StreamInfo& info = it->second;
  if (request.step.size() != info.universes.size()) {
    return error_line(request.id,
                      "step must carry exactly one requirement per task");
  }
  std::vector<ContextRequirement> step;
  step.reserve(request.step.size());
  for (std::size_t j = 0; j < request.step.size(); ++j) {
    const StepRequirement& req = request.step[j];
    if (req.demand > 0) {
      // Streams run on local-only machines (no private-global pool); a
      // demand would poison the stream's lane deep inside the engine, so
      // answer at the boundary instead.
      return error_line(request.id,
                        "stream machines have no private-global pool; "
                        "demand must be 0");
    }
    DynamicBitset local(info.universes[j]);
    for (const std::size_t bit : req.bits) {
      if (bit >= info.universes[j]) {
        return error_line(request.id,
                          "requirement bit " + std::to_string(bit) +
                              " outside task " + std::to_string(j) +
                              "'s universe");
      }
      local.set(bit);
    }
    step.push_back(ContextRequirement{std::move(local), 0});
  }
  tenants_.record_append(info.tenant);
  mux_->append_step(request.stream, std::move(step));
  return ack_line(request.id);
}

std::string SolveService::handle_stream_flush(const Request& request) {
  const ReaderMutexLock lock(streams_mutex_);
  if (streams_.find(request.stream) == streams_.end()) {
    return error_line(request.id,
                      "unknown stream " + std::to_string(request.stream));
  }
  mux_->flush(request.stream);
  return ack_line(request.id);
}

std::string SolveService::handle_stream_result(const Request& request) {
  // Exclusive: drain() needs producers paused (appends hold the shared
  // lock), and engine-backed summaries need a quiesced fleet.
  const WriterMutexLock lock(streams_mutex_);
  if (streams_.find(request.stream) == streams_.end()) {
    return error_line(request.id,
                      "unknown stream " + std::to_string(request.stream));
  }
  mux_->drain();
  const std::vector<streaming::StreamSummary> rows =
      mux_->stream_summaries();
  HYPERREC_ENSURE(request.stream < rows.size(),
                  "stream summary missing after drain");
  const streaming::StreamSummary& row = rows[request.stream];
  std::ostringstream os;
  os << "{\"schema\":\"hyperrec-service\",\"version\":1,\"id\":"
     << json_quote(request.id) << ",\"ok\":true,\"stream\":" << row.id
     << ",\"steps\":" << row.steps << ",\"resolves\":" << row.resolves
     << ",\"failed_windows\":" << row.failed_windows
     << ",\"epoch\":" << row.epoch
     << ",\"poisoned\":" << (row.poisoned ? "true" : "false")
     << ",\"published_cost\":";
  if (row.published_cost.has_value()) {
    os << *row.published_cost;
  } else {
    os << "null";
  }
  os << '}';
  return os.str();
}

std::string SolveService::statz_json() const {
  const cache::SolveCacheStats cache_stats = cache_->stats();
  const streaming::FleetStats fleet = mux_->fleet_stats();
  const auto uptime = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - started_);

  // Tenant rows come pre-aggregated and the registry's counters obey
  // received == admitted + rejected_* per tenant; the request totals are
  // their sums, so the same identity holds fleet-wide.
  const auto tenant_rows = tenants_.snapshot();
  TenantCounters totals;
  for (const auto& [name, counters] : tenant_rows) {
    totals.received += counters.received;
    totals.admitted += counters.admitted;
    totals.rejected_rate += counters.rejected_rate;
    totals.rejected_backpressure += counters.rejected_backpressure;
    totals.rejected_draining += counters.rejected_draining;
    totals.completed += counters.completed;
    totals.failed += counters.failed;
    totals.appends += counters.appends;
  }

  std::ostringstream os;
  os << "{\"schema\":\"hyperrec-statz\",\"version\":1"
     << ",\"uptime_us\":" << uptime.count()
     << ",\"draining\":" << (draining() ? "true" : "false")
     << ",\"queue\":{\"depth\":" << queue_.depth()
     << ",\"capacity\":" << queue_.capacity()
     << ",\"peak\":" << queue_.peak_depth() << '}'
     << ",\"requests\":{\"received\":" << totals.received
     << ",\"admitted\":" << totals.admitted
     << ",\"rejected_rate\":" << totals.rejected_rate
     << ",\"rejected_backpressure\":" << totals.rejected_backpressure
     << ",\"rejected_draining\":" << totals.rejected_draining
     << ",\"completed\":" << totals.completed
     << ",\"failed\":" << totals.failed
     << ",\"appends\":" << totals.appends << '}'
     << ",\"latency\":{\"solve\":{\"count\":" << solve_latency_.count()
     << ",\"p50_us\":" << solve_latency_.quantile(0.50)
     << ",\"p99_us\":" << solve_latency_.quantile(0.99)
     << ",\"max_us\":" << solve_latency_.max() << '}'
     << ",\"queue_wait\":{\"count\":" << queue_wait_.count()
     << ",\"p50_us\":" << queue_wait_.quantile(0.50)
     << ",\"p99_us\":" << queue_wait_.quantile(0.99)
     << ",\"max_us\":" << queue_wait_.max() << "}}"
     << ",\"cache\":{\"capacity\":" << cache_->capacity()
     << ",\"size\":" << cache_->size()
     << ",\"inflight\":" << cache_->inflight()
     << ",\"hits\":" << cache_stats.hits
     << ",\"misses\":" << cache_stats.misses
     << ",\"coalesced\":" << cache_stats.coalesced
     << ",\"coalesced_failures\":" << cache_stats.coalesced_failures
     << ",\"insertions\":" << cache_stats.insertions
     << ",\"refreshes\":" << cache_stats.refreshes
     << ",\"evictions\":" << cache_stats.evictions
     << ",\"expirations\":" << cache_stats.expirations
     << ",\"collisions\":" << cache_stats.collisions
     << ",\"warm_hits\":" << cache_stats.warm_hits << '}';

  os << ",\"solvers\":[";
  std::uint64_t certified = 0;
  double gap_sum = 0.0;
  double gap_max = 0.0;
  {
    const MutexLock lock(wins_mutex_);
    bool first = true;
    for (const auto& [name, wins] : solver_wins_) {
      if (!first) os << ',';
      first = false;
      os << "{\"name\":" << json_quote(name) << ",\"wins\":" << wins << '}';
    }
    certified = certified_;
    gap_sum = gap_sum_pct_;
    gap_max = gap_max_pct_;
  }
  os << "],\"certificates\":{\"count\":" << certified
     << ",\"gap_avg_pct\":"
     << fixed4(certified > 0 ? gap_sum / static_cast<double>(certified) : 0.0)
     << ",\"gap_max_pct\":" << fixed4(gap_max) << '}';
  os << ",\"tenants\":[";
  bool first = true;
  for (const auto& [name, counters] : tenant_rows) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":" << json_quote(name)
       << ",\"received\":" << counters.received
       << ",\"admitted\":" << counters.admitted
       << ",\"rejected_rate\":" << counters.rejected_rate
       << ",\"rejected_backpressure\":" << counters.rejected_backpressure
       << ",\"rejected_draining\":" << counters.rejected_draining
       << ",\"completed\":" << counters.completed
       << ",\"failed\":" << counters.failed
       << ",\"appends\":" << counters.appends << '}';
  }
  os << "],\"fleet\":{\"streams\":" << fleet.streams
     << ",\"accepted\":" << fleet.accepted
     << ",\"applied\":" << fleet.applied
     << ",\"resolves\":" << fleet.resolves
     << ",\"failed_windows\":" << fleet.failed_windows
     << ",\"dropped\":" << fleet.dropped
     << ",\"publications\":" << fleet.publications
     << ",\"failures\":" << fleet.failures << "}}";
  return os.str();
}

}  // namespace hyperrec::service
