// Unix-domain line transport for the solve daemon.
//
// A SocketServer listens on an AF_UNIX stream socket, spawns one thread per
// connection, and pumps newline-delimited request lines through a handler
// (one response line per request, in order — the wire contract of
// protocol.hpp).  The handler decides when to stop: returning stop = true
// (the solve service does so after a graceful shutdown drain) makes the
// server close the listener and unblock wait().
//
// Scope: a local operational transport, deliberately minimal — no TLS, no
// framing beyond '\n', no partial-write recovery gymnastics.  Tenancy and
// trust live in the service layer; the socket is filesystem-permission
// guarded like any other local daemon control socket.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_annotations.hpp"

namespace hyperrec::service {

class SocketServer {
 public:
  struct LineResponse {
    std::string line;  ///< sent back followed by '\n'
    bool stop = false; ///< close the server after sending this response
  };
  using Handler = std::function<LineResponse(const std::string&)>;

  /// Binds and listens on `path` (an existing socket file is removed first
  /// — a daemon restart must not fail on its own leftovers) and starts the
  /// accept loop.  Throws PreconditionError when the socket cannot be set
  /// up.
  SocketServer(std::string path, Handler handler);
  ~SocketServer();  ///< stop() + join

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Blocks until the server stopped (handler-requested or stop()).
  void wait();

  /// Bounded wait(); returns true when the server stopped within `timeout`.
  /// Lets a driver poll an async-signal-set flag between waits instead of
  /// calling stop() from a signal handler (none of stop() is signal-safe).
  [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout);

  /// Stops accepting, shuts down live connections, joins all threads.
  /// Idempotent and safe from any thread (including a connection thread).
  void stop();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  /// The listening fd is passed in by value: the accept loop must not read
  /// the guarded member unlocked, and the fd it was started with can never
  /// change (stop() only shuts it down, which is exactly how the loop is
  /// told to exit).
  void accept_loop(int listen_fd);
  void serve_connection(int fd);

  std::string path_;
  Handler handler_;
  std::atomic<bool> stopping_{false};

  mutable Mutex mutex_{"SocketServer::mutex"};
  CondVar stopped_cv_;
  bool stopped_ GUARDED_BY(mutex_) = false;
  int listen_fd_ GUARDED_BY(mutex_) = -1;
  /// Live connection fds.  Each connection runs on a detached thread that
  /// closes its fd and removes it here when it ends, so a long-lived
  /// daemon reclaims per-connection resources as it goes instead of
  /// hoarding fds and thread handles until stop().
  std::vector<int> connection_fds_ GUARDED_BY(mutex_);
  std::size_t active_connections_ GUARDED_BY(mutex_) = 0;
  CondVar connections_cv_;  ///< signalled per finished conn
  std::thread acceptor_ GUARDED_BY(mutex_);  ///< swap-claimed in stop()
};

}  // namespace hyperrec::service
