// Admission control for the solve daemon: per-tenant token buckets with
// quota accounting, and a bounded priority queue with backpressure.
//
// The admission pipeline runs in request order, cheapest check first:
//
//   draining? ──reject──► token bucket ──reject + retry-after──►
//   bounded queue try_push ──reject (backpressure)──► admitted
//
// Rejections are answers, not errors: a rate-limited tenant gets an exact
// retry-after (time until its bucket refills one token), and a full queue
// rejects instead of buffering unboundedly — the caller retries, the daemon
// never falls over from memory growth.  Every verdict is counted per
// tenant, and the counters obey `received == admitted + rejected_*` by
// construction (one verdict per request, recorded under one lock).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "support/thread_annotations.hpp"

namespace hyperrec::service {

/// Token-bucket quota: sustained `rate_per_sec` with bursts up to `burst`.
/// rate_per_sec <= 0 disables limiting (the bucket always admits).
struct QuotaConfig {
  double rate_per_sec = 0.0;
  double burst = 1.0;
};

/// One bucket verdict; retry_after is 0 when admitted.
struct Admission {
  bool admitted = false;
  std::chrono::milliseconds retry_after{0};
};

/// Classic token bucket over a steady clock.  Not thread-safe on its own —
/// the TenantRegistry serializes access per tenant.
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TokenBucket(QuotaConfig quota);

  /// Takes one token if available; otherwise reports how long until the
  /// bucket refills one (rounded up to a whole millisecond so a client
  /// sleeping exactly retry_after is admitted, never re-rejected at 0 ms).
  [[nodiscard]] Admission try_acquire(Clock::time_point now);

  [[nodiscard]] double tokens() const noexcept { return tokens_; }

 private:
  QuotaConfig quota_;
  double tokens_;
  Clock::time_point last_;
  bool primed_ = false;  ///< last_ is set lazily on the first acquire
};

/// Why a request was turned away.
enum class RejectReason : std::uint8_t {
  kRate,          ///< tenant token bucket empty
  kBackpressure,  ///< admission queue full
  kDraining,      ///< daemon is shutting down
};

[[nodiscard]] const char* to_string(RejectReason reason) noexcept;

/// Per-tenant admission/outcome counters (monotonic).
struct TenantCounters {
  std::uint64_t received = 0;  ///< == admitted + the three rejected buckets
  std::uint64_t admitted = 0;
  std::uint64_t rejected_rate = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t completed = 0;  ///< admitted jobs that solved ok
  std::uint64_t failed = 0;     ///< admitted jobs whose solve reported !ok
  std::uint64_t appends = 0;    ///< streaming steps accepted (not metered)
};

/// Tenant directory: one token bucket plus counters per tenant name,
/// created on first contact with the default quota (or a configured
/// per-tenant override).  All methods are thread-safe.
class TenantRegistry {
 public:
  TenantRegistry(QuotaConfig default_quota,
                 std::map<std::string, QuotaConfig> overrides);

  /// Bucket verdict for one request; counts received plus, on a rate
  /// rejection, rejected_rate.  The queue verdict is reported separately
  /// (the bucket must be consulted first — see the pipeline above).
  [[nodiscard]] Admission admit(const std::string& tenant,
                                TokenBucket::Clock::time_point now);

  /// Records the queue verdict for an already-bucket-admitted request.
  void record_admitted(const std::string& tenant);
  void record_backpressure(const std::string& tenant);
  /// Counts a request turned away because the daemon is draining (the
  /// bucket is not consulted: received + rejected_draining only).
  void record_draining(const std::string& tenant);

  void record_completed(const std::string& tenant);
  void record_failed(const std::string& tenant);
  void record_append(const std::string& tenant);

  /// Stable snapshot, sorted by tenant name.
  [[nodiscard]] std::vector<std::pair<std::string, TenantCounters>>
  snapshot() const;

 private:
  struct Tenant {
    TokenBucket bucket;
    TenantCounters counters;
    explicit Tenant(QuotaConfig quota) : bucket(quota) {}
  };

  Tenant& tenant_locked(const std::string& name) REQUIRES(mutex_);

  mutable Mutex mutex_{"TenantRegistry::mutex"};
  QuotaConfig default_quota_;
  std::map<std::string, QuotaConfig> overrides_ GUARDED_BY(mutex_);
  std::map<std::string, Tenant> tenants_ GUARDED_BY(mutex_);
};

/// Bounded MPMC priority queue: higher priority pops first, FIFO within a
/// priority level (a sequence number breaks ties — a starving same-priority
/// request can never be overtaken by a later arrival).  try_push never
/// blocks: a full or closed queue is the caller's backpressure signal.
template <typename T>
class BoundedPriorityQueue {
 public:
  explicit BoundedPriorityQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when full or closed — the caller rejects with retry-after.
  bool try_push(T value, std::uint64_t priority) {
    {
      const MutexLock lock(mutex_);
      if (closed_ || heap_.size() >= capacity_) return false;
      heap_.push(Entry{priority, next_seq_++, std::move(value)});
      peak_ = std::max(peak_, heap_.size());
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt once closed AND empty —
  /// close() lets workers finish every accepted item before exiting, which
  /// is what "graceful drain loses no accepted job" rests on.
  std::optional<T> pop() {
    const MutexLock lock(mutex_);
    while (!closed_ && heap_.empty()) cv_.wait(mutex_);
    if (heap_.empty()) return std::nullopt;
    // std::priority_queue::top() is const&; the move is safe because pop()
    // immediately destroys the entry.
    T value = std::move(const_cast<Entry&>(heap_.top()).value);
    heap_.pop();
    return value;
  }

  /// Stops admissions and wakes every waiter; queued items still drain.
  void close() {
    {
      const MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    const MutexLock lock(mutex_);
    return heap_.size();
  }

  [[nodiscard]] std::size_t peak_depth() const {
    const MutexLock lock(mutex_);
    return peak_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] bool closed() const {
    const MutexLock lock(mutex_);
    return closed_;
  }

 private:
  struct Entry {
    std::uint64_t priority = 0;
    std::uint64_t seq = 0;
    T value;
    /// Max-heap order: higher priority first, then earlier seq.
    bool operator<(const Entry& other) const noexcept {
      if (priority != other.priority) return priority < other.priority;
      return seq > other.seq;
    }
  };

  const std::size_t capacity_;
  mutable Mutex mutex_{"BoundedPriorityQueue::mutex"};
  CondVar cv_;
  std::priority_queue<Entry> heap_ GUARDED_BY(mutex_);
  std::uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
  std::size_t peak_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace hyperrec::service
