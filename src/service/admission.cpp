#include "service/admission.hpp"

#include <algorithm>
#include <cmath>

#include "support/ensure.hpp"

namespace hyperrec::service {

const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kRate: return "rate";
    case RejectReason::kBackpressure: return "backpressure";
    case RejectReason::kDraining: return "draining";
  }
  return "rate";
}

TokenBucket::TokenBucket(QuotaConfig quota)
    : quota_(quota), tokens_(std::max(quota.burst, 1.0)) {
  // burst < 1 would deadlock the tenant (no request ever fits); clamp up.
  quota_.burst = std::max(quota_.burst, 1.0);
}

Admission TokenBucket::try_acquire(Clock::time_point now) {
  if (quota_.rate_per_sec <= 0.0) return {true, {}};  // unlimited
  if (!primed_) {
    last_ = now;
    primed_ = true;
  }
  if (now > last_) {
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    tokens_ = std::min(quota_.burst, tokens_ + elapsed * quota_.rate_per_sec);
  }
  last_ = now;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return {true, {}};
  }
  const double deficit_seconds = (1.0 - tokens_) / quota_.rate_per_sec;
  // Round UP to a whole millisecond: a client that sleeps exactly
  // retry_after must find a full token, and a 0 ms answer would invite a
  // hot retry loop.
  const auto retry = std::chrono::milliseconds{
      static_cast<std::int64_t>(std::ceil(deficit_seconds * 1000.0))};
  return {false, std::max(retry, std::chrono::milliseconds{1})};
}

TenantRegistry::TenantRegistry(QuotaConfig default_quota,
                               std::map<std::string, QuotaConfig> overrides)
    : default_quota_(default_quota), overrides_(std::move(overrides)) {}

TenantRegistry::Tenant& TenantRegistry::tenant_locked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    const auto quota = overrides_.find(name);
    it = tenants_
             .emplace(name, Tenant(quota == overrides_.end() ? default_quota_
                                                             : quota->second))
             .first;
  }
  return it->second;
}

Admission TenantRegistry::admit(const std::string& tenant,
                                TokenBucket::Clock::time_point now) {
  const MutexLock lock(mutex_);
  Tenant& entry = tenant_locked(tenant);
  entry.counters.received += 1;
  const Admission verdict = entry.bucket.try_acquire(now);
  if (!verdict.admitted) entry.counters.rejected_rate += 1;
  return verdict;
}

void TenantRegistry::record_admitted(const std::string& tenant) {
  const MutexLock lock(mutex_);
  tenant_locked(tenant).counters.admitted += 1;
}

void TenantRegistry::record_backpressure(const std::string& tenant) {
  const MutexLock lock(mutex_);
  tenant_locked(tenant).counters.rejected_backpressure += 1;
}

void TenantRegistry::record_draining(const std::string& tenant) {
  const MutexLock lock(mutex_);
  Tenant& entry = tenant_locked(tenant);
  entry.counters.received += 1;
  entry.counters.rejected_draining += 1;
}

void TenantRegistry::record_completed(const std::string& tenant) {
  const MutexLock lock(mutex_);
  tenant_locked(tenant).counters.completed += 1;
}

void TenantRegistry::record_failed(const std::string& tenant) {
  const MutexLock lock(mutex_);
  tenant_locked(tenant).counters.failed += 1;
}

void TenantRegistry::record_append(const std::string& tenant) {
  const MutexLock lock(mutex_);
  tenant_locked(tenant).counters.appends += 1;
}

std::vector<std::pair<std::string, TenantCounters>> TenantRegistry::snapshot()
    const {
  const MutexLock lock(mutex_);
  std::vector<std::pair<std::string, TenantCounters>> rows;
  rows.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    rows.emplace_back(name, tenant.counters);  // std::map: already sorted
  }
  return rows;
}

}  // namespace hyperrec::service
