#include "service/socket_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/ensure.hpp"

namespace hyperrec::service {

namespace {

/// send() the whole buffer; MSG_NOSIGNAL turns a dead peer into an error
/// return instead of SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(std::string path, Handler handler)
    : path_(std::move(path)), handler_(std::move(handler)) {
  HYPERREC_ENSURE(handler_ != nullptr, "socket server needs a handler");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  HYPERREC_ENSURE(path_.size() < sizeof(address.sun_path),
                  "socket path too long: " + path_);
  std::memcpy(address.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HYPERREC_ENSURE(listen_fd_ >= 0,
                  std::string("socket() failed: ") + std::strerror(errno));
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    HYPERREC_ENSURE(false, "bind(" + path_ +
                               ") failed: " + std::strerror(saved));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    HYPERREC_ENSURE(false, "listen(" + path_ +
                               ") failed: " + std::strerror(saved));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (stop) or unrecoverable
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void SocketServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool stop_requested = false;
  while (!stop_requested) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed or connection shut down by stop()
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline = 0;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      LineResponse response = handler_(line);
      response.line.push_back('\n');
      if (!send_all(fd, response.line)) {
        stop_requested = response.stop;
        break;
      }
      if (response.stop) {
        stop_requested = true;
        break;
      }
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  if (stop_requested) {
    // Handler asked for shutdown: wake wait() and the acceptor, but leave
    // the joins to stop() — this thread cannot join itself.
    stopping_.store(true, std::memory_order_release);
    ::shutdown(listen_fd_, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
    stopped_cv_.notify_all();
  }
}

void SocketServer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopped_cv_.wait(lock, [this] { return stopped_; });
}

void SocketServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);

  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fds.swap(connection_fds_);
    threads.swap(connections_);
    stopped_ = true;
    stopped_cv_.notify_all();
  }
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& thread : threads) {
    if (thread.get_id() == std::this_thread::get_id()) {
      thread.detach();  // stop() from a connection thread: cannot self-join
    } else if (thread.joinable()) {
      thread.join();
    }
  }
  for (const int fd : fds) ::close(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
  }
}

}  // namespace hyperrec::service
