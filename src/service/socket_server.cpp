#include "service/socket_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "support/ensure.hpp"

namespace hyperrec::service {

namespace {

/// Hard cap on one request line.  The protocol is one JSON document per
/// line; anything past this is a broken or hostile peer whose newline-free
/// stream must not grow daemon memory without bound.
constexpr std::size_t kMaxLineBytes = std::size_t{8} << 20;

/// True on threads running serve_connection(); stop() uses it to avoid
/// waiting for the calling thread's own exit.
thread_local bool t_connection_thread = false;

/// send() the whole buffer; MSG_NOSIGNAL turns a dead peer into an error
/// return instead of SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(std::string path, Handler handler)
    : path_(std::move(path)), handler_(std::move(handler)) {
  HYPERREC_ENSURE(handler_ != nullptr, "socket server needs a handler");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  HYPERREC_ENSURE(path_.size() < sizeof(address.sun_path),
                  "socket path too long: " + path_);
  std::memcpy(address.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HYPERREC_ENSURE(listen_fd_ >= 0,
                  std::string("socket() failed: ") + std::strerror(errno));
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    HYPERREC_ENSURE(false, "bind(" + path_ +
                               ") failed: " + std::strerror(saved));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    HYPERREC_ENSURE(false, "listen(" + path_ +
                               ") failed: " + std::strerror(saved));
  }
  acceptor_ = std::thread([this, fd = listen_fd_] { accept_loop(fd); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::accept_loop(int listen_fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient fd/memory pressure: back off and keep accepting.  A
        // persistent daemon must not silently stop serving forever over a
        // condition that clears as soon as a connection closes.
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
        continue;
      }
      break;  // listener closed (stop) or unrecoverable
    }
    const MutexLock lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    ++active_connections_;
    try {
      std::thread([this, fd] { serve_connection(fd); }).detach();
    } catch (...) {
      connection_fds_.pop_back();
      --active_connections_;
      ::close(fd);
    }
  }
  // Unrecoverable accept failure: wake wait() so the driver can stop()
  // and exit loudly instead of lingering alive but deaf.
  const MutexLock lock(mutex_);
  stopped_ = true;
  stopped_cv_.notify_all();
}

void SocketServer::serve_connection(int fd) {
  t_connection_thread = true;
  std::string buffer;
  char chunk[4096];
  bool stop_requested = false;
  while (!stop_requested) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed or connection shut down by stop()
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline = 0;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      LineResponse response = handler_(line);
      response.line.push_back('\n');
      if (!send_all(fd, response.line)) {
        stop_requested = response.stop;
        break;
      }
      if (response.stop) {
        stop_requested = true;
        break;
      }
    }
    if (buffer.size() > kMaxLineBytes) break;  // oversized line: drop peer
  }
  ::shutdown(fd, SHUT_RDWR);
  if (stop_requested) {
    stopping_.store(true, std::memory_order_release);
  }
  const MutexLock lock(mutex_);
  if (stop_requested && listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // wake the acceptor
  }
  connection_fds_.erase(
      std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
      connection_fds_.end());
  // Close under mutex_, after untracking: stop() snapshots the fd list
  // under the same lock and must never shutdown() a recycled fd number.
  ::close(fd);
  --active_connections_;
  connections_cv_.notify_all();
  if (stop_requested) {
    // Handler asked for shutdown: wake wait(); stop() runs on the waiter.
    stopped_ = true;
    stopped_cv_.notify_all();
  }
}

void SocketServer::wait() {
  const MutexLock lock(mutex_);
  while (!stopped_) stopped_cv_.wait(mutex_);
}

bool SocketServer::wait_for(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const MutexLock lock(mutex_);
  while (!stopped_) {
    if (stopped_cv_.wait_until(mutex_, deadline) ==
        std::cv_status::timeout) {
      return stopped_;
    }
  }
  return true;
}

void SocketServer::stop() {
  stopping_.store(true, std::memory_order_release);
  std::thread acceptor;
  {
    const MutexLock lock(mutex_);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    stopped_ = true;
    stopped_cv_.notify_all();
    acceptor.swap(acceptor_);  // claim the join; stop() may race itself
  }
  if (acceptor.joinable()) acceptor.join();
  // Connection threads are detached and reclaim themselves; wait for the
  // fleet to drain.  From a connection thread stop() cannot wait for its
  // own exit, so that one thread is excluded — it finishes right after.
  const std::size_t self = t_connection_thread ? 1u : 0u;
  const MutexLock lock(mutex_);
  while (active_connections_ > self) connections_cv_.wait(mutex_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
  }
}

}  // namespace hyperrec::service
