#include "service/latency_sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/ensure.hpp"

namespace hyperrec::service {

std::size_t LatencySketch::bucket_index(std::uint64_t us) noexcept {
  if (us == 0) return 0;
  std::size_t octave =
      static_cast<std::size_t>(std::bit_width(us)) - 1;  // 2^octave <= us
  if (octave >= kOctaves) {
    octave = kOctaves - 1;
    us = (std::uint64_t{1} << kOctaves) - 1;  // clamp into the top octave
  }
  // Linear position inside the octave: (us - 2^octave) / 2^octave in kSub
  // slices.  Octaves narrower than kSub collapse onto slice 0 — exact
  // values there anyway.
  const std::uint64_t base = std::uint64_t{1} << octave;
  const std::size_t sub =
      static_cast<std::size_t>(((us - base) * kSub) >> octave);
  return octave * kSub + std::min(sub, kSub - 1);
}

std::uint64_t LatencySketch::bucket_upper(std::size_t index) noexcept {
  const std::size_t octave = index / kSub;
  const std::size_t sub = index % kSub;
  const std::uint64_t base = std::uint64_t{1} << octave;
  // Upper edge of slice `sub`: base * (1 + (sub + 1) / kSub).
  return base + ((base * (sub + 1)) / kSub);
}

void LatencySketch::record(std::chrono::microseconds sample) {
  const std::uint64_t us =
      sample.count() < 0 ? 0 : static_cast<std::uint64_t>(sample.count());
  buckets_[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (us > seen &&
         !max_.compare_exchange_weak(seen, us, std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencySketch::quantile(double q) const {
  HYPERREC_ENSURE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::array<std::uint64_t, kBuckets> local;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    local[i] = buckets_[i].load(std::memory_order_relaxed);
    total += local[i];
  }
  if (total == 0) return 0;
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  const std::uint64_t observed_max = max_.load(std::memory_order_relaxed);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += local[i];
    if (seen >= target) {
      // The last occupied bucket answers with the true max: its nominal
      // upper edge can sit below the max when samples overflowed the top
      // octave, and quantile(1.0) == max() must hold regardless.
      if (seen == total) return observed_max;
      return std::min(bucket_upper(i), observed_max);
    }
  }
  return observed_max;
}

std::uint64_t LatencySketch::count() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t LatencySketch::max() const {
  return max_.load(std::memory_order_relaxed);
}

}  // namespace hyperrec::service
