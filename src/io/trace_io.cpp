#include "io/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/ensure.hpp"

namespace hyperrec::io {

namespace {

constexpr const char* kTraceHeader = "hyperrec-trace v1";
constexpr const char* kScheduleHeader = "hyperrec-schedule v1";

std::string read_line(std::istream& is, const char* what) {
  std::string line;
  HYPERREC_ENSURE(static_cast<bool>(std::getline(is, line)),
                  std::string("unexpected end of input while reading ") +
                      what);
  return line;
}

std::size_t read_size(std::istream& is, const char* what) {
  std::size_t value = 0;
  HYPERREC_ENSURE(static_cast<bool>(is >> value),
                  std::string("failed to parse ") + what);
  return value;
}

}  // namespace

void save_trace(std::ostream& os, const MultiTaskTrace& trace) {
  HYPERREC_ENSURE(trace.task_count() > 0, "cannot save an empty trace");
  HYPERREC_ENSURE(trace.synchronized(),
                  "only synchronized traces are serialisable");
  // Symmetric with load_trace, which rejects n = 0: refuse to emit a stream
  // that cannot be read back.
  HYPERREC_ENSURE(trace.steps() > 0, "cannot save a zero-step trace");
  save_trace_prefix(os, trace, trace.steps());
}

void save_trace_prefix(std::ostream& os, const MultiTaskTrace& trace,
                       std::size_t steps) {
  HYPERREC_ENSURE(trace.task_count() > 0, "cannot save an empty trace");
  HYPERREC_ENSURE(trace.synchronized(),
                  "only synchronized traces are serialisable");
  HYPERREC_ENSURE(steps > 0, "cannot save a zero-step checkpoint");
  HYPERREC_ENSURE(steps <= trace.steps(),
                  "checkpoint step count exceeds the trace");
  os << kTraceHeader << '\n';
  os << trace.task_count() << '\n';
  os << steps << '\n';
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    os << trace.task(j).local_universe()
       << (j + 1 < trace.task_count() ? ' ' : '\n');
  }
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    for (std::size_t i = 0; i < steps; ++i) {
      const ContextRequirement& req = trace.task(j).at(i);
      // A universe-0 task has an empty bitstring; emit "-" so the token is
      // still parseable by operator>> on the way back in.
      const std::string bits = req.local.to_string();
      os << (bits.empty() ? "-" : bits) << ' ' << req.private_demand << '\n';
    }
  }
}

MultiTaskTrace load_trace(std::istream& is) {
  is >> std::ws;  // tolerate leading whitespace (e.g. concatenated payloads)
  HYPERREC_ENSURE(read_line(is, "header") == kTraceHeader,
                  "not a hyperrec-trace v1 stream");
  const std::size_t m = read_size(is, "task count");
  const std::size_t n = read_size(is, "step count");
  HYPERREC_ENSURE(m > 0 && n > 0, "trace must have tasks and steps");
  std::vector<std::size_t> universes(m);
  for (std::size_t j = 0; j < m; ++j) {
    universes[j] = read_size(is, "task universe");
  }

  MultiTaskTrace trace;
  for (std::size_t j = 0; j < m; ++j) {
    TaskTrace task(universes[j]);
    for (std::size_t i = 0; i < n; ++i) {
      std::string bits;
      std::uint32_t priv = 0;
      HYPERREC_ENSURE(static_cast<bool>(is >> bits >> priv),
                      "failed to parse a requirement line");
      if (bits == "-") bits.clear();  // universe-0 placeholder
      HYPERREC_ENSURE(bits.size() == universes[j],
                      "requirement bitstring length differs from the task "
                      "universe");
      task.push_back({DynamicBitset::from_string(bits), priv});
    }
    trace.add_task(std::move(task));
  }
  return trace;
}

void save_schedule(std::ostream& os, const MultiTaskSchedule& schedule) {
  HYPERREC_ENSURE(!schedule.tasks.empty(), "cannot save an empty schedule");
  os << kScheduleHeader << '\n';
  os << schedule.tasks.size() << '\n';
  os << schedule.tasks.front().n() << '\n';
  for (const Partition& partition : schedule.tasks) {
    os << partition.interval_count();
    for (const std::size_t s : partition.starts()) os << ' ' << s;
    os << '\n';
  }
  os << schedule.global_boundaries.size();
  for (const std::size_t g : schedule.global_boundaries) os << ' ' << g;
  os << '\n';
}

MultiTaskSchedule load_schedule(std::istream& is) {
  is >> std::ws;  // tolerate leading whitespace (e.g. concatenated payloads)
  HYPERREC_ENSURE(read_line(is, "header") == kScheduleHeader,
                  "not a hyperrec-schedule v1 stream");
  const std::size_t m = read_size(is, "task count");
  const std::size_t n = read_size(is, "step count");
  HYPERREC_ENSURE(m > 0 && n > 0, "schedule must have tasks and steps");

  MultiTaskSchedule schedule;
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t count = read_size(is, "boundary count");
    std::vector<std::size_t> starts(count);
    for (std::size_t k = 0; k < count; ++k) {
      starts[k] = read_size(is, "boundary start");
    }
    schedule.tasks.push_back(Partition::from_starts(std::move(starts), n));
  }
  const std::size_t globals = read_size(is, "global boundary count");
  schedule.global_boundaries.resize(globals);
  for (std::size_t k = 0; k < globals; ++k) {
    schedule.global_boundaries[k] = read_size(is, "global boundary");
  }
  return schedule;
}

std::string trace_to_string(const MultiTaskTrace& trace) {
  std::ostringstream os;
  save_trace(os, trace);
  return os.str();
}

MultiTaskTrace trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_trace(is);
}

std::string schedule_to_string(const MultiTaskSchedule& schedule) {
  std::ostringstream os;
  save_schedule(os, schedule);
  return os.str();
}

MultiTaskSchedule schedule_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_schedule(is);
}

}  // namespace hyperrec::io
