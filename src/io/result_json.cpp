#include "io/result_json.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace hyperrec::io {

namespace {

/// RFC 8259 string escaping: quote, backslash and control characters; all
/// other bytes pass through (UTF-8 payloads stay intact).
void write_escaped(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_entry(std::ostream& os, const engine::PortfolioEntry& entry) {
  os << "{\"name\":";
  write_escaped(os, entry.solver);
  os << ",\"ok\":" << (entry.ok ? "true" : "false")
     << ",\"total\":" << entry.total
     << ",\"elapsed_us\":" << entry.elapsed.count() << '}';
}

const char* window_cache_outcome(const streaming::WindowReport& window) {
  if (!window.cache.has_value()) return "bypass";
  switch (*window.cache) {
    case cache::CacheOutcome::kMiss: return "miss";
    case cache::CacheOutcome::kHit: return "hit";
    case cache::CacheOutcome::kCoalesced: return "coalesced";
  }
  return "bypass";
}

void write_window(std::ostream& os, const streaming::WindowReport& window) {
  os << "{\"index\":" << window.index << ",\"trigger\":\""
     << streaming::to_string(window.trigger) << '"'
     << ",\"lo\":" << window.window_lo << ",\"hi\":" << window.window_hi
     << ",\"ok\":" << (window.ok ? "true" : "false") << ",\"error\":";
  write_escaped(os, window.error);
  os << ",\"winner\":";
  write_escaped(os, window.winner);
  os << ",\"cache\":\"" << window_cache_outcome(window) << '"'
     << ",\"warm_started\":" << (window.warm_started ? "true" : "false")
     << ",\"elapsed_us\":" << window.elapsed.count()
     << ",\"window_cost\":" << window.window_cost
     << ",\"published_cost\":" << window.published_cost
     << ",\"prefix_boundaries\":" << window.splice_prefix_boundaries << '}';
}

void write_job(std::ostream& os, const engine::JobResult& job) {
  os << "{\"index\":" << job.index << ",\"name\":";
  write_escaped(os, job.name);
  os << ",\"ok\":" << (job.ok ? "true" : "false") << ",\"error\":";
  write_escaped(os, job.error);
  os << ",\"winner\":";
  write_escaped(os, job.winner);
  os << ",\"cache\":\"" << engine::to_string(job.cache) << '"'
     << ",\"warm_started\":" << (job.warm_started ? "true" : "false")
     << ",\"streamed\":" << (job.streamed ? "true" : "false");
  const CostBreakdown& cost = job.solution.breakdown;
  os << ",\"elapsed_us\":" << job.elapsed.count() << ",\"cost\":{\"total\":"
     << cost.total << ",\"hyper\":" << cost.hyper << ",\"reconfig\":"
     << cost.reconfig << ",\"global_hyper\":" << cost.global_hyper
     << ",\"partial_hyper_steps\":" << cost.partial_hyper_steps
     << "},\"lower_bound\":";
  if (job.solution.lower_bound.has_value()) {
    os << *job.solution.lower_bound;
  } else {
    os << "null";
  }
  os << ",\"gap_pct\":";
  if (job.solution.gap_pct.has_value()) {
    // Fixed four-decimal rendering: gap_pct is a finite non-negative ratio
    // of integral costs, so NaN/Inf cannot occur and the output stays a
    // plain JSON number.
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.4f", *job.solution.gap_pct);
    os << buffer;
  } else {
    os << "null";
  }
  os << ",\"solvers\":[";
  for (std::size_t i = 0; i < job.entries.size(); ++i) {
    if (i > 0) os << ',';
    write_entry(os, job.entries[i]);
  }
  os << "],\"windows\":[";
  for (std::size_t i = 0; i < job.windows.size(); ++i) {
    if (i > 0) os << ',';
    write_window(os, job.windows[i]);
  }
  os << "]}";
}

void write_fleet(std::ostream& os, const engine::BatchResult& result) {
  if (!result.fleet.has_value()) {
    os << "null";
    return;
  }
  const streaming::FleetStats& fleet = *result.fleet;
  os << "{\"streams\":" << fleet.streams << ",\"accepted\":" << fleet.accepted
     << ",\"applied\":" << fleet.applied << ",\"resolves\":" << fleet.resolves
     << ",\"failed_windows\":" << fleet.failed_windows
     << ",\"dropped\":" << fleet.dropped
     << ",\"publications\":" << fleet.publications
     << ",\"failures\":" << fleet.failures << ",\"per_stream\":[";
  for (std::size_t i = 0; i < result.fleet_streams.size(); ++i) {
    const streaming::StreamSummary& row = result.fleet_streams[i];
    if (i > 0) os << ',';
    os << "{\"id\":" << row.id << ",\"steps\":" << row.steps
       << ",\"resolves\":" << row.resolves
       << ",\"failed_windows\":" << row.failed_windows
       << ",\"epoch\":" << row.epoch
       << ",\"poisoned\":" << (row.poisoned ? "true" : "false")
       << ",\"published_cost\":";
    if (row.published_cost.has_value()) {
      os << *row.published_cost;
    } else {
      os << "null";
    }
    os << '}';
  }
  os << "]}";
}

}  // namespace

void save_batch_result_json(std::ostream& os,
                            const engine::BatchResult& result,
                            const ServiceFields* service) {
  const cache::SolveCacheStats& stats = result.cache_stats;
  os << "{\"schema\":\"hyperrec-batch-result\",\"version\":6"
     << ",\"parallelism\":" << result.parallelism
     << ",\"elapsed_us\":" << result.elapsed.count()
     << ",\"job_count\":" << result.jobs.size() << ",\"tenant\":";
  if (service != nullptr) {
    write_escaped(os, service->tenant);
  } else {
    os << "null";
  }
  os << ",\"queue\":";
  if (service != nullptr) {
    os << "{\"priority\":" << service->priority
       << ",\"depth\":" << service->queue_depth
       << ",\"wait_us\":" << service->wait.count() << '}';
  } else {
    os << "null";
  }
  os << ",\"cache\":{\"enabled\":" << (result.cache_enabled ? "true" : "false")
     << ",\"capacity\":" << result.cache_capacity
     << ",\"size\":" << result.cache_size << ",\"hits\":" << stats.hits
     << ",\"misses\":" << stats.misses << ",\"coalesced\":" << stats.coalesced
     << ",\"coalesced_failures\":" << stats.coalesced_failures
     << ",\"insertions\":" << stats.insertions
     << ",\"refreshes\":" << stats.refreshes
     << ",\"evictions\":" << stats.evictions
     << ",\"expirations\":" << stats.expirations
     << ",\"collisions\":" << stats.collisions
     << ",\"warm_hits\":" << stats.warm_hits << "},\"fleet\":";
  write_fleet(os, result);
  os << ",\"jobs\":[";
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    if (i > 0) os << ',';
    write_job(os, result.jobs[i]);
  }
  os << "]}\n";
}

std::string batch_result_to_json(const engine::BatchResult& result,
                                 const ServiceFields* service) {
  std::ostringstream os;
  save_batch_result_json(os, result, service);
  return os.str();
}

}  // namespace hyperrec::io
