// JSON serialisation of batch-engine results.
//
// Downstream tooling (dashboards, regression trackers, the hyperrec_cli
// driver) consumes batch results as JSON.  The writer emits a stable,
// documented schema:
//
//   {
//     "schema": "hyperrec-batch-result",
//     "version": 6,
//     "parallelism": <workers>,
//     "elapsed_us": <batch wall time>,
//     "job_count": <n>,
//     "tenant": null,                // solve-service responses only: the
//                                    // requesting tenant name
//     "queue": null,                 // solve-service responses only:
//       // { "priority": p,          // admission priority of the request
//       //   "depth": d,             // queue depth observed at admission
//       //   "wait_us": w }          // time spent queued before a worker
//     "cache": { "enabled": true|false, "capacity": c, "size": s,
//                "hits": h, "misses": m, "coalesced": q,
//                "coalesced_failures": cf, "insertions": i,
//                "refreshes": r, "evictions": e, "expirations": x,
//                "collisions": k, "warm_hits": w },
//                                    // zeros when disabled; counters are
//                                    // cumulative over the cache lifetime
//     "fleet": null,                 // multiplexed streaming replay only:
//       // { "streams": n, "accepted": a,   // appends accepted
//       //   "applied": p,                  // appends applied to engines
//       //   "resolves": r, "failed_windows": f, "dropped": d,
//       //   "publications": u, "failures": x,   // poisoned-stream faults
//       //   "per_stream": [                // one row per stream, id order
//       //     { "id": i, "steps": s, "resolves": r, "failed_windows": f,
//       //       "epoch": e,                // last published snapshot epoch
//       //       "poisoned": true|false,
//       //       "published_cost": c|null }, ... ] }
//     "jobs": [
//       {
//         "index": <input position>,
//         "name": "<label>",
//         "ok": true|false,
//         "error": "<exception text, empty when ok>",
//         "winner": "<solver name, \"cache\", or \"streaming\">",
//         "cache": "bypass"|"miss"|"hit"|"coalesced",
//         "warm_started": true|false,
//         "streamed": true|false,
//         "elapsed_us": <job wall time>,
//         "cost": { "total": t, "hyper": h, "reconfig": r,
//                   "global_hyper": g, "partial_hyper_steps": s },
//         "lower_bound": b|null,    // certified optimality floor
//                                   // (core/lower_bound.hpp); null when the
//                                   // job was not certified
//         "gap_pct": g|null,        // (total - b) * 100 / b, four decimals;
//                                   // null when uncertified or b <= 0
//         "solvers": [
//           { "name": "...", "ok": true|false, "total": t,
//             "elapsed_us": us }, ... ],
//         "windows": [              // streaming replay only; else []
//           { "index": k, "trigger": "initial"|"quota-repair"|"step-count"
//                                    |"demand-spike"|"rent-or-buy"
//                                    |"deadline-tick"|"flush",
//             "lo": a, "hi": b,     // solved steps [a, b)
//             "ok": true|false, "error": "...",
//             "winner": "<portfolio member, \"cache\" or \"coalesced\">",
//             "cache": "bypass"|"miss"|"hit"|"coalesced",
//             "warm_started": true|false,
//             "elapsed_us": us,     // window solve wall time
//             "window_cost": c,     // portfolio best over the window alone
//             "published_cost": p,  // spliced full-schedule cost
//             "prefix_boundaries": f }, ... ]  // boundaries frozen from
//       }, ... ]                               // the stable prefix
//   }
//
// v2 → v3: per-job "streamed" flag and "windows" array (streaming replay
// per-window timings, trigger kinds and splice stats); "winner" may now be
// "streaming".
//
// v3 → v4: top-level "fleet" object (StreamMultiplexer summary; null for
// non-multiplexed batches), cache "refreshes" counter (re-stores of a live
// entry, no longer folded into "insertions"), per-window "cache" outcome
// (a window "winner" may now also be "coalesced").
//
// v4 → v5: top-level "tenant" and "queue" fields (solve-service responses
// carry the requesting tenant and its admission telemetry; null for one-shot
// CLI batches — the rest of the document is bit-identical either way, which
// is how the serve smoke proves daemon answers match CLI answers), cache
// "coalesced_failures" counter (piggybacked waits whose leader threw).
//
// v5 → v6: per-job "lower_bound" / "gap_pct" fields (optimality
// certificates from core/lower_bound.hpp, attached when the engine or the
// hierarchical solver certifies a solve; null when no bound applies).
//
// Guarantees: keys always appear, in exactly this order (goldens may diff
// the output); every number is a decimal integer except "gap_pct", which is
// a finite non-negative decimal rendered with four fractional digits —
// NaN/Inf cannot occur; strings are escaped per RFC 8259.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "engine/batch_engine.hpp"

namespace hyperrec::io {

/// Service-layer envelope for a batch result: who asked and how the request
/// moved through the admission queue.  Serialized into the top-level
/// "tenant" / "queue" fields; a null pointer (the CLI path) writes both as
/// JSON null.
struct ServiceFields {
  std::string tenant;
  std::uint64_t priority = 0;
  std::uint64_t queue_depth = 0;       ///< depth observed at admission
  std::chrono::microseconds wait{0};   ///< admission-to-dequeue latency
};

void save_batch_result_json(std::ostream& os,
                            const engine::BatchResult& result,
                            const ServiceFields* service = nullptr);

/// Convenience: the same document as a string.
[[nodiscard]] std::string batch_result_to_json(
    const engine::BatchResult& result,
    const ServiceFields* service = nullptr);

}  // namespace hyperrec::io
