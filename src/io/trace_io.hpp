// Plain-text serialisation of traces and schedules.
//
// Lets users capture context-requirement traces from real systems (or from
// the SHyRA simulator), feed them to the solvers offline, and archive
// solved schedules.  The format is a deliberately simple line-oriented text
// format, stable and diff-friendly:
//
//   hyperrec-trace v1
//   <m>
//   <n>
//   <l_0> <l_1> … <l_{m-1}>
//   # then n lines per task, task-major:
//   <bitstring of length l_j> <private_demand>
//
//   hyperrec-schedule v1
//   <m>
//   <n>
//   <k_0> <start …>            # per task: boundary count + starts
//   <g> <global starts …>      # global boundaries
//
// Loaders validate shape and reject malformed input with PreconditionError.
#pragma once

#include <iosfwd>
#include <string>

#include "model/schedule.hpp"
#include "model/trace.hpp"

namespace hyperrec::io {

void save_trace(std::ostream& os, const MultiTaskTrace& trace);
[[nodiscard]] MultiTaskTrace load_trace(std::istream& is);

/// Checkpoints a trace mid-growth: serialises only the first `steps` steps
/// (0 < steps <= trace.steps()) as an ordinary hyperrec-trace v1 stream.
/// The reload is append-aware by construction — load_trace the checkpoint,
/// then MultiTaskTrace::append_step the steps recorded after it, and the
/// result is identical to the straight-through build.  save_trace is the
/// steps == trace.steps() special case.
void save_trace_prefix(std::ostream& os, const MultiTaskTrace& trace,
                       std::size_t steps);

void save_schedule(std::ostream& os, const MultiTaskSchedule& schedule);
[[nodiscard]] MultiTaskSchedule load_schedule(std::istream& is);

/// Convenience round-trips through std::string (used by tests and tools).
[[nodiscard]] std::string trace_to_string(const MultiTaskTrace& trace);
[[nodiscard]] MultiTaskTrace trace_from_string(const std::string& text);
[[nodiscard]] std::string schedule_to_string(const MultiTaskSchedule& schedule);
[[nodiscard]] MultiTaskSchedule schedule_from_string(const std::string& text);

}  // namespace hyperrec::io
