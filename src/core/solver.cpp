#include "core/solver.hpp"

#include <memory>

#include "core/aligned_dp.hpp"
#include "core/annealing.hpp"
#include "core/coordinate_descent.hpp"
#include "core/genetic.hpp"
#include "core/greedy.hpp"

namespace hyperrec {

MTSolution make_solution(const SolveInstance& instance,
                         MultiTaskSchedule schedule) {
  MTSolution solution;
  solution.breakdown = evaluate_fully_sync_switch(instance, schedule);
  solution.schedule = std::move(schedule);
  return solution;
}

MTSolution make_solution(const MultiTaskTrace& trace,
                         const MachineSpec& machine,
                         MultiTaskSchedule schedule,
                         const EvalOptions& options) {
  MTSolution solution;
  solution.breakdown =
      evaluate_fully_sync_switch(trace, machine, schedule, options);
  solution.schedule = std::move(schedule);
  return solution;
}

std::vector<NamedSolver> standard_solvers(const SolveHints& hints) {
  HYPERREC_ENSURE(hints.warm_start.size() <= 1,
                  "at most one warm-start schedule");
  // One shared copy of the warm-start incumbent: the three iterative
  // members' closures (and any NamedSolver copies the portfolio makes)
  // alias it instead of deep-copying the schedule per capture; the solver
  // configs copy it only when a member actually runs.
  const std::shared_ptr<const MultiTaskSchedule> warm =
      hints.warm_start.empty()
          ? nullptr
          : std::make_shared<const MultiTaskSchedule>(hints.warm_start.front());
  const auto seed_of = [](const std::shared_ptr<const MultiTaskSchedule>& w) {
    return w == nullptr ? std::vector<MultiTaskSchedule>{}
                        : std::vector<MultiTaskSchedule>{*w};
  };
  std::vector<NamedSolver> solvers;
  solvers.push_back({"aligned-dp",
                     [](const SolveInstance& instance, const CancelToken&) {
                       return solve_aligned_dp(instance);
                     }});
  solvers.push_back({"greedy-w8",
                     [](const SolveInstance& instance, const CancelToken&) {
                       return solve_greedy(instance);
                     }});
  solvers.push_back({"coord-descent",
                     [warm, seed_of](const SolveInstance& instance,
                                     const CancelToken& cancel) {
                       CoordinateDescentConfig config;
                       config.seed = seed_of(warm);
                       config.cancel = cancel;
                       return solve_coordinate_descent(instance, config);
                     }});
  solvers.push_back({"genetic",
                     [warm, seed_of](const SolveInstance& instance,
                                     const CancelToken& cancel) {
                       GaConfig config;
                       config.seed_schedule = seed_of(warm);
                       config.cancel = cancel;
                       return solve_genetic(instance, config).best;
                     }});
  solvers.push_back({"annealing",
                     [warm, seed_of](const SolveInstance& instance,
                                     const CancelToken& cancel) {
                       SaConfig config;
                       config.seed_schedule = seed_of(warm);
                       config.cancel = cancel;
                       return solve_annealing(instance, config);
                     }});
  return solvers;
}

}  // namespace hyperrec
