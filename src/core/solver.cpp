#include "core/solver.hpp"

#include "core/aligned_dp.hpp"
#include "core/annealing.hpp"
#include "core/coordinate_descent.hpp"
#include "core/genetic.hpp"
#include "core/greedy.hpp"

namespace hyperrec {

MTSolution make_solution(const MultiTaskTrace& trace,
                         const MachineSpec& machine,
                         MultiTaskSchedule schedule,
                         const EvalOptions& options) {
  MTSolution solution;
  solution.breakdown =
      evaluate_fully_sync_switch(trace, machine, schedule, options);
  solution.schedule = std::move(schedule);
  return solution;
}

std::vector<NamedSolver> standard_solvers() {
  std::vector<NamedSolver> solvers;
  solvers.push_back({"aligned-dp",
                     [](const MultiTaskTrace& trace, const MachineSpec& machine,
                        const EvalOptions& options, const CancelToken&) {
                       return solve_aligned_dp(trace, machine, options);
                     }});
  solvers.push_back({"greedy-w8",
                     [](const MultiTaskTrace& trace, const MachineSpec& machine,
                        const EvalOptions& options, const CancelToken&) {
                       return solve_greedy(trace, machine, options);
                     }});
  solvers.push_back({"coord-descent",
                     [](const MultiTaskTrace& trace, const MachineSpec& machine,
                        const EvalOptions& options, const CancelToken& cancel) {
                       CoordinateDescentConfig config;
                       config.cancel = cancel;
                       return solve_coordinate_descent(trace, machine, options,
                                                       config);
                     }});
  solvers.push_back({"genetic",
                     [](const MultiTaskTrace& trace, const MachineSpec& machine,
                        const EvalOptions& options, const CancelToken& cancel) {
                       GaConfig config;
                       config.cancel = cancel;
                       return solve_genetic(trace, machine, options, config)
                           .best;
                     }});
  solvers.push_back({"annealing",
                     [](const MultiTaskTrace& trace, const MachineSpec& machine,
                        const EvalOptions& options, const CancelToken& cancel) {
                       SaConfig config;
                       config.cancel = cancel;
                       return solve_annealing(trace, machine, options, config);
                     }});
  return solvers;
}

}  // namespace hyperrec
