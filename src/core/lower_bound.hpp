// Certified lower bounds for the fully synchronised MT-Switch problem.
//
// Production users need "within 8% of optimal" far more than they need
// optimal, so every solution can carry a certificate: a cost no valid
// schedule can beat, and the resulting optimality gap.  Two relaxations are
// combined (both sound under every EvalOptions combination, including
// changeover, because changeover only adds cost):
//
//  1. Per-step demand bound.  Whatever interval serves step l, its
//     hypercontext covers step l's requirement and its quota covers step
//     l's demand, so the step's reconfiguration term is at least
//     combine(reconfig_upload; |h^pub|; per task |req_j(l)| + d_j(l)).
//     Step 0 additionally hyperreconfigures every task, and machines with
//     global resources pay at least one global hyperreconfiguration.
//
//  2. Interval-union relaxation.  For each task the exact single-task DP
//     (core/interval_dp.hpp) lower-bounds that task's share of the hyper +
//     reconfiguration cost in *any* multi-task schedule (extra forced
//     boundaries only cost more).  How the per-task bounds combine depends
//     on the upload modes; see the .cpp for the per-mode algebra.  For long
//     traces the O(n²) DP is chunked: clipping intervals at chunk edges
//     only shrinks unions/demands, and at most one hyperreconfiguration per
//     chunk was paid in an earlier chunk, so the chunked sum stays a valid
//     lower bound.
#pragma once

#include <optional>

#include "core/solver.hpp"

namespace hyperrec {

struct LowerBoundConfig {
  /// Chunk length for the per-task DP relaxation.  0 = auto: exact
  /// full-length DP up to 2048 steps, chunks of 512 beyond.  Smaller chunks
  /// are cheaper and weaker; the bound stays sound for any value ≥ 1.
  std::size_t chunk = 0;
};

struct LowerBoundCertificate {
  /// max(per_step_bound, dp_relaxation_bound) — no valid schedule costs less.
  Cost bound = 0;
  Cost per_step_bound = 0;
  Cost dp_relaxation_bound = 0;
};

/// Computes the certificate.  Requires a synchronized trace (the fully
/// synchronised evaluator does too).
[[nodiscard]] LowerBoundCertificate compute_lower_bound(
    const SolveInstance& instance, const LowerBoundConfig& config = {});

/// Gap arithmetic: (total − lower_bound) · 100 / lower_bound.  Returns 0
/// when total ≤ lower_bound, and nullopt when lower_bound ≤ 0 with a
/// positive total (the gap is unbounded).
[[nodiscard]] std::optional<double> certified_gap_pct(Cost total,
                                                      Cost lower_bound);

/// Computes the bound for `instance` and stamps `solution.lower_bound` /
/// `solution.gap_pct`.  The solution must belong to this instance.
void attach_certificate(const SolveInstance& instance, MTSolution& solution,
                        const LowerBoundConfig& config = {});

}  // namespace hyperrec
