#include "core/aligned_dp.hpp"

#include <limits>

namespace hyperrec {

namespace {
constexpr Cost kInfinity = std::numeric_limits<Cost>::max() / 4;

Cost combine(UploadMode mode, Cost acc, Cost value) {
  return mode == UploadMode::kTaskParallel ? std::max(acc, value) : acc + value;
}
}  // namespace

MTSolution solve_aligned_dp(const MultiTaskTrace& trace,
                            const MachineSpec& machine,
                            const EvalOptions& options) {
  return solve_aligned_dp(SolveInstance(trace, machine, options));
}

MTSolution solve_aligned_dp(const SolveInstance& instance) {
  const MultiTaskTrace& trace = instance.trace();
  const MachineSpec& machine = instance.machine();
  const EvalOptions& options = instance.options();
  HYPERREC_ENSURE(trace.synchronized(), "aligned DP needs equal-length traces");
  HYPERREC_ENSURE(!options.changeover,
                  "aligned DP does not support changeover costs; use the "
                  "genetic or annealing solver");
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  HYPERREC_ENSURE(n > 0 && m > 0, "empty problem");

  // Hyperreconfiguration term is interval-independent for aligned schedules.
  Cost hyper_term = 0;
  for (std::size_t j = 0; j < m; ++j) {
    hyper_term =
        combine(options.hyper_upload, hyper_term, machine.tasks[j].local_init);
  }

  std::vector<Cost> best(n + 1, kInfinity);
  std::vector<std::size_t> parent(n + 1, 0);
  best[0] = 0;

  std::vector<DynamicBitset> running;
  std::vector<std::size_t> union_sizes(m, 0);
  std::vector<std::uint32_t> max_priv(m, 0);

  for (std::size_t end = 1; end <= n; ++end) {
    running.clear();
    for (std::size_t j = 0; j < m; ++j) {
      running.emplace_back(trace.task(j).local_universe());
      union_sizes[j] = 0;
      max_priv[j] = 0;
    }
    for (std::size_t start = end; start-- > 0;) {
      Cost reconfig_term = static_cast<Cost>(machine.public_context_size);
      for (std::size_t j = 0; j < m; ++j) {
        union_sizes[j] +=
            running[j].merge_counting(trace.task(j).at(start).local);
        max_priv[j] =
            std::max(max_priv[j], trace.task(j).at(start).private_demand);
        reconfig_term = combine(options.reconfig_upload, reconfig_term,
                                static_cast<Cost>(union_sizes[j]) +
                                    static_cast<Cost>(max_priv[j]));
      }
      const Cost candidate = best[start] + hyper_term +
                             reconfig_term * static_cast<Cost>(end - start);
      if (candidate < best[end]) {
        best[end] = candidate;
        parent[end] = start;
      }
    }
  }

  std::vector<std::size_t> starts;
  for (std::size_t cursor = n; cursor != 0; cursor = parent[cursor]) {
    starts.push_back(parent[cursor]);
  }
  std::reverse(starts.begin(), starts.end());

  MultiTaskSchedule schedule;
  schedule.tasks.assign(m, Partition::from_starts(starts, n));
  if (machine.has_global_resources()) {
    schedule.global_boundaries.push_back(0);
  }
  return make_solution(instance, std::move(schedule));
}

}  // namespace hyperrec
