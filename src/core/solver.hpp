// Common result type and registry for multi-task MT-Switch solvers.
//
// Every solver for the fully synchronised MT-Switch problem (§5 of the
// paper) consumes a SolveInstance — the immutable IR bundling the validated
// (trace, machine, options) triple with shared interval-query precomputation
// (model/instance.hpp) — and produces a MultiTaskSchedule; MTSolution
// bundles it with its cost breakdown under the instance's evaluation
// options.  The registry lets benches, the portfolio racer and tests
// iterate all solvers uniformly; because solvers take the instance by const
// reference, a portfolio race pays the precomputation once per instance,
// not once per racer.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "model/cost_switch.hpp"
#include "model/instance.hpp"
#include "model/machine.hpp"
#include "model/schedule.hpp"
#include "model/trace.hpp"
#include "support/cancel.hpp"

namespace hyperrec {

struct MTSolution {
  MultiTaskSchedule schedule;
  CostBreakdown breakdown;

  /// Optimality certificate (core/lower_bound.hpp), attached by
  /// attach_certificate — e.g. via solve_hierarchical or a certify-enabled
  /// portfolio/batch run.  nullopt means no bound was computed.
  std::optional<Cost> lower_bound;
  /// (total − lower_bound) · 100 / lower_bound; 0 when the bound is met,
  /// nullopt when no bound was computed or the bound is 0 with total > 0.
  std::optional<double> gap_pct;

  [[nodiscard]] Cost total() const noexcept { return breakdown.total; }
};

/// Re-evaluates a schedule against the instance and packages it as a
/// solution; the evaluation hits the instance's precomputed views.
[[nodiscard]] MTSolution make_solution(const SolveInstance& instance,
                                       MultiTaskSchedule schedule);

/// Boundary convenience: builds a one-off instance.  Prefer the instance
/// overload anywhere a SolveInstance already exists.
[[nodiscard]] MTSolution make_solution(const MultiTaskTrace& trace,
                                       const MachineSpec& machine,
                                       MultiTaskSchedule schedule,
                                       const EvalOptions& options);

/// Solver entry point.  The CancelToken is a cooperative hook: iterative
/// solvers poll it between iterations and return their incumbent when it
/// fires; exact solvers may ignore it (they are fast on the instance sizes
/// they accept).  Callers that do not care pass an inert token.
using MTSolverFn =
    std::function<MTSolution(const SolveInstance&, const CancelToken&)>;

struct NamedSolver {
  std::string name;
  MTSolverFn fn;

  /// Invokes fn; the cancel hook defaults to an inert token.
  [[nodiscard]] MTSolution solve(const SolveInstance& instance,
                                 const CancelToken& cancel = {}) const {
    return fn(instance, cancel);
  }

  /// Boundary convenience: builds a one-off instance for the call.  Tests
  /// and examples use it; the engine/portfolio layers construct one
  /// instance per job and share it across members instead.
  [[nodiscard]] MTSolution solve(const MultiTaskTrace& trace,
                                 const MachineSpec& machine,
                                 const EvalOptions& options,
                                 const CancelToken& cancel = {}) const {
    return fn(SolveInstance(trace, machine, options), cancel);
  }
};

/// Per-instance hints threaded into the solver configurations.
struct SolveHints {
  /// Warm-start incumbent (e.g. from the solve cache): seeds simulated
  /// annealing and coordinate descent and joins the GA's initial
  /// population; the exact solvers ignore it.  0 or 1 entries; must
  /// validate against the instance being solved.
  std::vector<MultiTaskSchedule> warm_start;
};

/// The library's standard solver line-up (aligned DP, coordinate descent,
/// greedy, GA, SA) with default configurations — exhaustive search is
/// excluded because it only handles tiny instances.
[[nodiscard]] std::vector<NamedSolver> standard_solvers(
    const SolveHints& hints = {});

}  // namespace hyperrec
