// Common result type and registry for multi-task MT-Switch solvers.
//
// Every solver for the fully synchronised MT-Switch problem (§5 of the
// paper) produces a MultiTaskSchedule; MTSolution bundles it with its cost
// breakdown under the evaluation options it was optimised for.  The registry
// lets benches and tests iterate all solvers uniformly.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "model/cost_switch.hpp"
#include "model/machine.hpp"
#include "model/schedule.hpp"
#include "model/trace.hpp"

namespace hyperrec {

struct MTSolution {
  MultiTaskSchedule schedule;
  CostBreakdown breakdown;

  [[nodiscard]] Cost total() const noexcept { return breakdown.total; }
};

/// Re-evaluates a schedule and packages it as a solution.
[[nodiscard]] MTSolution make_solution(const MultiTaskTrace& trace,
                                       const MachineSpec& machine,
                                       MultiTaskSchedule schedule,
                                       const EvalOptions& options);

using MTSolverFn = std::function<MTSolution(
    const MultiTaskTrace&, const MachineSpec&, const EvalOptions&)>;

struct NamedSolver {
  std::string name;
  MTSolverFn solve;
};

/// The library's standard solver line-up (aligned DP, coordinate descent,
/// greedy, GA, SA) with default configurations — exhaustive search is
/// excluded because it only handles tiny instances.
[[nodiscard]] std::vector<NamedSolver> standard_solvers();

}  // namespace hyperrec
