// Common result type and registry for multi-task MT-Switch solvers.
//
// Every solver for the fully synchronised MT-Switch problem (§5 of the
// paper) produces a MultiTaskSchedule; MTSolution bundles it with its cost
// breakdown under the evaluation options it was optimised for.  The registry
// lets benches and tests iterate all solvers uniformly.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "model/cost_switch.hpp"
#include "model/machine.hpp"
#include "model/schedule.hpp"
#include "model/trace.hpp"
#include "support/cancel.hpp"

namespace hyperrec {

struct MTSolution {
  MultiTaskSchedule schedule;
  CostBreakdown breakdown;

  [[nodiscard]] Cost total() const noexcept { return breakdown.total; }
};

/// Re-evaluates a schedule and packages it as a solution.
[[nodiscard]] MTSolution make_solution(const MultiTaskTrace& trace,
                                       const MachineSpec& machine,
                                       MultiTaskSchedule schedule,
                                       const EvalOptions& options);

/// Solver entry point.  The CancelToken is a cooperative hook: iterative
/// solvers poll it between iterations and return their incumbent when it
/// fires; exact solvers may ignore it (they are fast on the instance sizes
/// they accept).  Callers that do not care pass an inert token.
using MTSolverFn = std::function<MTSolution(
    const MultiTaskTrace&, const MachineSpec&, const EvalOptions&,
    const CancelToken&)>;

struct NamedSolver {
  std::string name;
  MTSolverFn fn;

  /// Invokes fn; the cancel hook defaults to an inert token so existing
  /// three-argument call sites keep working.
  [[nodiscard]] MTSolution solve(const MultiTaskTrace& trace,
                                 const MachineSpec& machine,
                                 const EvalOptions& options,
                                 const CancelToken& cancel = {}) const {
    return fn(trace, machine, options, cancel);
  }
};

/// Per-instance hints threaded into the solver configurations.
struct SolveHints {
  /// Warm-start incumbent (e.g. from the solve cache): seeds simulated
  /// annealing and coordinate descent and joins the GA's initial
  /// population; the exact solvers ignore it.  0 or 1 entries; must
  /// validate against the instance being solved.
  std::vector<MultiTaskSchedule> warm_start;
};

/// The library's standard solver line-up (aligned DP, coordinate descent,
/// greedy, GA, SA) with default configurations — exhaustive search is
/// excluded because it only handles tiny instances.
[[nodiscard]] std::vector<NamedSolver> standard_solvers(
    const SolveHints& hints = {});

}  // namespace hyperrec
