#include "core/lower_bound.hpp"

#include <algorithm>
#include <vector>

#include "core/interval_dp.hpp"

namespace hyperrec {

namespace {

Cost combine(UploadMode mode, Cost acc, Cost value) {
  return mode == UploadMode::kTaskParallel ? std::max(acc, value) : acc + value;
}

/// Per-step context size |req_j(l)| + d_j(l): whatever interval serves step
/// l, its hypercontext covers the step's requirement and its quota covers
/// the step's demand, so this is a floor on the task's reconfiguration
/// element at step l.
Cost step_size(const TaskTrace& task, std::size_t l) {
  const ContextRequirement& req = task.at(l);
  return static_cast<Cost>(req.local.count()) +
         static_cast<Cost>(req.private_demand);
}

/// Chunked single-task DP bound on task j's share of the hyper +
/// reconfiguration cost in any multi-task schedule.  Restricting the true
/// schedule's intervals to a chunk only shrinks unions and range maxima,
/// and at most one interval per chunk had its hyperreconfiguration paid in
/// an earlier chunk — so Σ_chunks max(DP(chunk) − [not first]·v, Σ step
/// sizes) never exceeds the task's true share.
Cost task_dp_bound(const TaskTrace& task, Cost hyper_init, std::size_t chunk) {
  const std::size_t n = task.size();
  Cost bound = 0;
  for (std::size_t lo = 0; lo < n; lo += chunk) {
    const std::size_t hi = std::min(n, lo + chunk);
    Cost dp;
    if (lo == 0 && hi == n) {
      dp = solve_single_task_switch(task, hyper_init).total;
    } else {
      dp = solve_single_task_switch(task.slice(lo, hi), hyper_init).total;
      if (lo > 0) dp -= hyper_init;
    }
    Cost per_step = 0;
    for (std::size_t l = lo; l < hi; ++l) per_step += step_size(task, l);
    bound += std::max(dp, per_step);
  }
  return bound;
}

}  // namespace

LowerBoundCertificate compute_lower_bound(const SolveInstance& instance,
                                          const LowerBoundConfig& config) {
  HYPERREC_ENSURE(instance.synchronized(),
                  "lower bounds require a synchronized trace");
  const MultiTaskTrace& trace = instance.trace();
  const MachineSpec& machine = instance.machine();
  const EvalOptions& options = instance.options();
  const std::size_t n = instance.steps();
  const std::size_t m = instance.task_count();

  LowerBoundCertificate cert;
  if (n == 0 || m == 0) return cert;  // a zero bound is always sound

  const Cost global_term =
      machine.has_global_resources() ? machine.global_init : 0;
  const Cost pub = static_cast<Cost>(machine.public_context_size);

  // 1. Per-step demand bound.  Step 0 additionally hyperreconfigures every
  // task (under changeover the charge is local_init + |h Δ ∅| ≥ local_init,
  // so using local_init stays sound).
  Cost per_step_total = 0;
  for (std::size_t l = 0; l < n; ++l) {
    Cost term = pub;
    for (std::size_t j = 0; j < m; ++j) {
      term = combine(options.reconfig_upload, term,
                     step_size(trace.task(j), l));
    }
    per_step_total += term;
  }
  Cost first_hyper = 0;
  for (std::size_t j = 0; j < m; ++j) {
    first_hyper = combine(options.hyper_upload, first_hyper,
                          machine.tasks[j].local_init);
  }
  cert.per_step_bound = per_step_total + first_hyper + global_term;

  // 2. Interval-union relaxation.  The exact single-task DP lower-bounds
  // each task's share (forced boundaries from the multi-task schedule only
  // cost more); how the per-task bounds add up depends on the upload modes.
  std::size_t chunk = config.chunk;
  if (chunk == 0) chunk = n <= 2048 ? n : 512;
  std::vector<Cost> dp_bound(m);
  std::vector<Cost> step_sum(m, 0);
  for (std::size_t j = 0; j < m; ++j) {
    dp_bound[j] =
        task_dp_bound(trace.task(j), machine.tasks[j].local_init, chunk);
    for (std::size_t l = 0; l < n; ++l) {
      step_sum[j] += step_size(trace.task(j), l);
    }
  }
  const Cost pub_total = static_cast<Cost>(n) * pub;
  Cost relax = 0;
  if (options.reconfig_upload == UploadMode::kTaskSequential) {
    if (options.hyper_upload == UploadMode::kTaskSequential) {
      // Both terms add across tasks: every task pays its full DP bound.
      relax = pub_total;
      for (std::size_t j = 0; j < m; ++j) relax += dp_bound[j];
    } else {
      // Hyper is a per-step max, so only one task's hyperreconfigurations
      // are guaranteed charged: credit every task's per-step floor plus the
      // best single task's DP surplus over that floor.
      relax = pub_total;
      Cost surplus = 0;
      for (std::size_t j = 0; j < m; ++j) {
        relax += step_sum[j];
        surplus = std::max(surplus, dp_bound[j] - step_sum[j]);
      }
      relax += surplus;
    }
  } else {
    // Per-step reconfig max: the best single task's DP bound, or the public
    // context floor plus the first step's hyperreconfigurations.
    Cost best_task = 0;
    for (std::size_t j = 0; j < m; ++j) {
      best_task = std::max(best_task, dp_bound[j]);
    }
    relax = std::max(best_task, pub_total + first_hyper);
  }
  cert.dp_relaxation_bound = relax + global_term;

  cert.bound = std::max(cert.per_step_bound, cert.dp_relaxation_bound);
  return cert;
}

std::optional<double> certified_gap_pct(Cost total, Cost lower_bound) {
  if (lower_bound <= 0) {
    if (total <= 0) return 0.0;
    return std::nullopt;
  }
  if (total <= lower_bound) return 0.0;
  return static_cast<double>(total - lower_bound) * 100.0 /
         static_cast<double>(lower_bound);
}

void attach_certificate(const SolveInstance& instance, MTSolution& solution,
                        const LowerBoundConfig& config) {
  const LowerBoundCertificate cert = compute_lower_bound(instance, config);
  solution.lower_bound = cert.bound;
  solution.gap_pct = certified_gap_pct(solution.total(), cert.bound);
}

}  // namespace hyperrec
