// Exact solver for the general cost model over an *implicitly* specified
// hypercontext space: H = 2^X with caller-provided cost functions.
//
// This is the regime in which the paper (citing [9]) states the optimal
// (hyper)reconfiguration problem is NP-complete even for a single task: the
// hypercontext space is exponential in |X| and the cost function is
// arbitrary — in particular it need not be monotone, so the minimal union is
// not necessarily the best hypercontext for an interval and every superset
// must be considered.  solve_implicit_general enumerates, for each interval,
// all 2^{|X|−|U|} supersets of the interval union; combined with the
// interval DP this is exponential in |X| and is used by the scaling bench to
// contrast with the polynomial switch-model DP.  |X| is capped at 20.
#pragma once

#include <functional>

#include "model/trace.hpp"
#include "model/types.hpp"

namespace hyperrec {

/// cost(h) per reconfiguration and init(h) per hyperreconfiguration into h.
struct ImplicitGeneralModel {
  std::size_t universe = 0;
  std::function<Cost(const DynamicBitset&)> cost;
  std::function<Cost(const DynamicBitset&)> init;
};

struct ImplicitSolution {
  std::vector<std::size_t> starts;
  std::vector<DynamicBitset> hypercontexts;
  Cost total = 0;
};

[[nodiscard]] ImplicitSolution solve_implicit_general(
    const ImplicitGeneralModel& model,
    const std::vector<DynamicBitset>& sequence);

}  // namespace hyperrec
