#include "core/dag_dp.hpp"

#include <algorithm>
#include <limits>

#include "support/ensure.hpp"

namespace hyperrec {

namespace {
constexpr Cost kInfinity = std::numeric_limits<Cost>::max() / 4;
}

DagSolution solve_dag_dp(const DagCostModel& model,
                         const std::vector<std::size_t>& sequence) {
  const std::size_t n = sequence.size();
  HYPERREC_ENSURE(n > 0, "empty context sequence");
  for (const std::size_t kind : sequence) {
    HYPERREC_ENSURE(kind < model.kind_count(), "context kind out of range");
  }

  std::vector<Cost> best(n + 1, kInfinity);
  std::vector<std::size_t> parent(n + 1, 0);
  std::vector<std::size_t> chosen(n + 1, 0);
  best[0] = 0;

  for (std::size_t end = 1; end <= n; ++end) {
    DynamicBitset needed(model.kind_count());
    for (std::size_t start = end; start-- > 0;) {
      needed.set(sequence[start]);
      const std::size_t h = model.cheapest_satisfying(needed);
      if (h == model.hypercontext_count()) continue;
      const Cost candidate = best[start] + model.w() +
                             model.cost(h) * static_cast<Cost>(end - start);
      if (candidate < best[end]) {
        best[end] = candidate;
        parent[end] = start;
        chosen[end] = h;
      }
    }
  }
  HYPERREC_ENSURE(best[n] < kInfinity,
                  "no hypercontext satisfies some requirement");

  DagSolution solution;
  solution.total = best[n];
  std::vector<std::size_t> starts;
  std::vector<std::size_t> hypers;
  for (std::size_t cursor = n; cursor != 0; cursor = parent[cursor]) {
    starts.push_back(parent[cursor]);
    hypers.push_back(chosen[cursor]);
  }
  std::reverse(starts.begin(), starts.end());
  std::reverse(hypers.begin(), hypers.end());
  solution.schedule = DagSchedule{std::move(starts), std::move(hypers)};
  return solution;
}

MtDagSolution solve_mt_dag_aligned(
    const std::vector<DagCostModel>& models,
    const std::vector<std::vector<std::size_t>>& sequences, Cost w,
    bool task_parallel) {
  HYPERREC_ENSURE(!models.empty() && models.size() == sequences.size(),
                  "one DAG model per task required");
  const std::size_t m = models.size();
  const std::size_t n = sequences[0].size();
  HYPERREC_ENSURE(n > 0, "empty context sequence");
  for (const auto& sequence : sequences) {
    HYPERREC_ENSURE(sequence.size() == n,
                    "aligned MT-DAG requires equal-length sequences");
  }

  std::vector<Cost> best(n + 1, kInfinity);
  std::vector<std::size_t> parent(n + 1, 0);
  std::vector<std::vector<std::size_t>> chosen(n + 1,
                                               std::vector<std::size_t>(m));
  best[0] = 0;

  std::vector<DynamicBitset> needed;
  for (std::size_t end = 1; end <= n; ++end) {
    needed.clear();
    for (std::size_t j = 0; j < m; ++j) {
      needed.emplace_back(models[j].kind_count());
    }
    for (std::size_t start = end; start-- > 0;) {
      Cost reconfig = 0;
      bool feasible = true;
      std::vector<std::size_t> hypers(m);
      for (std::size_t j = 0; j < m && feasible; ++j) {
        needed[j].set(sequences[j][start]);
        const std::size_t h = models[j].cheapest_satisfying(needed[j]);
        if (h == models[j].hypercontext_count()) {
          feasible = false;
          break;
        }
        hypers[j] = h;
        reconfig = task_parallel ? std::max(reconfig, models[j].cost(h))
                                 : reconfig + models[j].cost(h);
      }
      if (!feasible) continue;
      const Cost candidate =
          best[start] + w + reconfig * static_cast<Cost>(end - start);
      if (candidate < best[end]) {
        best[end] = candidate;
        parent[end] = start;
        chosen[end] = hypers;
      }
    }
  }
  HYPERREC_ENSURE(best[n] < kInfinity,
                  "no hypercontext satisfies some requirement");

  MtDagSolution solution;
  solution.total = best[n];
  for (std::size_t cursor = n; cursor != 0; cursor = parent[cursor]) {
    solution.starts.push_back(parent[cursor]);
    solution.hypercontexts.push_back(chosen[cursor]);
  }
  std::reverse(solution.starts.begin(), solution.starts.end());
  std::reverse(solution.hypercontexts.begin(), solution.hypercontexts.end());
  return solution;
}

}  // namespace hyperrec
