#include "core/greedy.hpp"

#include <algorithm>

namespace hyperrec {

MTSolution solve_greedy(const MultiTaskTrace& trace, const MachineSpec& machine,
                        const EvalOptions& options,
                        const GreedyConfig& config) {
  machine.validate_trace(trace);
  HYPERREC_ENSURE(trace.synchronized(), "greedy needs equal-length traces");
  HYPERREC_ENSURE(config.window >= 1, "window must be at least 1");
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();

  MultiTaskSchedule schedule;
  schedule.tasks.reserve(m);

  for (std::size_t j = 0; j < m; ++j) {
    const TaskTrace& task = trace.task(j);
    const Cost v = machine.tasks[j].local_init;
    std::vector<std::size_t> starts{0};

    DynamicBitset current(task.local_universe());
    current |= task.at(0).local;
    std::uint32_t current_priv = task.at(0).private_demand;

    for (std::size_t l = 1; l < n; ++l) {
      const std::size_t window_end = std::min(n, l + config.window);

      DynamicBitset window_union = task.local_union(l, window_end);
      std::uint32_t window_priv = task.max_private_demand(l, window_end);
      const Cost len = static_cast<Cost>(window_end - l);

      const Cost fresh_size = static_cast<Cost>(window_union.count()) +
                              static_cast<Cost>(window_priv);
      const Cost extended_size =
          static_cast<Cost>(current.union_count(window_union)) +
          static_cast<Cost>(std::max(current_priv, window_priv));

      if (v + fresh_size * len < extended_size * len) {
        starts.push_back(l);
        current = std::move(window_union);
        current_priv = window_priv;
      } else {
        current |= task.at(l).local;
        current_priv = std::max(current_priv, task.at(l).private_demand);
      }
    }
    schedule.tasks.push_back(Partition::from_starts(std::move(starts), n));
  }
  if (machine.has_global_resources()) schedule.global_boundaries.push_back(0);
  return make_solution(trace, machine, std::move(schedule), options);
}

}  // namespace hyperrec
