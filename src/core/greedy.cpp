#include "core/greedy.hpp"

#include <algorithm>

namespace hyperrec {

MTSolution solve_greedy(const MultiTaskTrace& trace, const MachineSpec& machine,
                        const EvalOptions& options,
                        const GreedyConfig& config) {
  return solve_greedy(SolveInstance(trace, machine, options), config);
}

MTSolution solve_greedy(const SolveInstance& instance,
                        const GreedyConfig& config) {
  const MultiTaskTrace& trace = instance.trace();
  const MachineSpec& machine = instance.machine();
  HYPERREC_ENSURE(trace.synchronized(), "greedy needs equal-length traces");
  HYPERREC_ENSURE(config.window >= 1, "window must be at least 1");
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();

  MultiTaskSchedule schedule;
  schedule.tasks.reserve(m);

  for (std::size_t j = 0; j < m; ++j) {
    const TaskTrace& task = trace.task(j);
    const TaskTraceStats& stats = instance.task_stats(j);
    const Cost v = machine.tasks[j].local_init;
    std::vector<std::size_t> starts{0};

    DynamicBitset current(task.local_universe());
    current |= task.at(0).local;
    std::uint32_t current_priv = task.at(0).private_demand;

    for (std::size_t l = 1; l < n; ++l) {
      const std::size_t window_end = std::min(n, l + config.window);

      // Window scoring against the precomputed views, allocation-free: the
      // fresh size is the count fast path, the extended size a fused
      // |current ∪ window| pass; the window union is materialised only on
      // the rarer new-interval branch.
      const std::uint32_t window_priv =
          stats.max_private_demand(l, window_end);
      const Cost len = static_cast<Cost>(window_end - l);
      const Cost fresh_size =
          static_cast<Cost>(stats.local_union_count(l, window_end)) +
          static_cast<Cost>(window_priv);
      const Cost extended_size =
          static_cast<Cost>(
              stats.local_union_count_with(current, l, window_end)) +
          static_cast<Cost>(std::max(current_priv, window_priv));

      if (v + fresh_size * len < extended_size * len) {
        starts.push_back(l);
        current = stats.local_union(l, window_end);
        current_priv = window_priv;
      } else {
        current |= task.at(l).local;
        current_priv = std::max(current_priv, task.at(l).private_demand);
      }
    }
    schedule.tasks.push_back(Partition::from_starts(std::move(starts), n));
  }
  if (machine.has_global_resources()) schedule.global_boundaries.push_back(0);
  return make_solution(instance, std::move(schedule));
}

}  // namespace hyperrec
