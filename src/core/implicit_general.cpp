#include "core/implicit_general.hpp"

#include <algorithm>
#include <limits>

#include "support/ensure.hpp"

namespace hyperrec {

namespace {

constexpr Cost kInfinity = std::numeric_limits<Cost>::max() / 4;

DynamicBitset from_mask(std::uint32_t mask, std::size_t universe) {
  DynamicBitset bits(universe);
  for (std::size_t i = 0; i < universe; ++i) {
    if ((mask >> i) & 1u) bits.set(i);
  }
  return bits;
}

std::uint32_t to_mask(const DynamicBitset& bits) {
  std::uint32_t mask = 0;
  bits.for_each_set([&mask](std::size_t pos) { mask |= 1u << pos; });
  return mask;
}

}  // namespace

ImplicitSolution solve_implicit_general(
    const ImplicitGeneralModel& model,
    const std::vector<DynamicBitset>& sequence) {
  HYPERREC_ENSURE(model.universe <= 20,
                  "implicit general solver capped at |X| <= 20");
  HYPERREC_ENSURE(model.cost && model.init, "cost/init functions required");
  const std::size_t n = sequence.size();
  HYPERREC_ENSURE(n > 0, "empty context sequence");
  for (const DynamicBitset& req : sequence) {
    HYPERREC_ENSURE(req.size() == model.universe,
                    "requirement universe mismatch");
  }
  const std::uint32_t full = (model.universe == 32)
                                 ? ~std::uint32_t{0}
                                 : ((std::uint32_t{1} << model.universe) - 1);

  std::vector<Cost> best(n + 1, kInfinity);
  std::vector<std::size_t> parent(n + 1, 0);
  std::vector<std::uint32_t> chosen(n + 1, 0);
  best[0] = 0;

  for (std::size_t end = 1; end <= n; ++end) {
    DynamicBitset needed(model.universe);
    for (std::size_t start = end; start-- > 0;) {
      needed |= sequence[start];
      const std::uint32_t base = to_mask(needed);
      const std::uint32_t spare = full & ~base;
      const Cost len = static_cast<Cost>(end - start);

      // Enumerate all supersets h ⊇ base: h = base | sub, sub ⊆ spare.
      Cost interval_best = kInfinity;
      std::uint32_t interval_h = base;
      std::uint32_t sub = spare;
      for (;;) {
        const std::uint32_t h = base | sub;
        const DynamicBitset h_bits = from_mask(h, model.universe);
        const Cost c = model.init(h_bits) + model.cost(h_bits) * len;
        if (c < interval_best) {
          interval_best = c;
          interval_h = h;
        }
        if (sub == 0) break;
        sub = (sub - 1) & spare;
      }

      const Cost candidate = best[start] + interval_best;
      if (candidate < best[end]) {
        best[end] = candidate;
        parent[end] = start;
        chosen[end] = interval_h;
      }
    }
  }

  ImplicitSolution solution;
  solution.total = best[n];
  std::vector<std::size_t> starts;
  std::vector<std::uint32_t> hypers;
  for (std::size_t cursor = n; cursor != 0; cursor = parent[cursor]) {
    starts.push_back(parent[cursor]);
    hypers.push_back(chosen[cursor]);
  }
  std::reverse(starts.begin(), starts.end());
  std::reverse(hypers.begin(), hypers.end());
  solution.starts = std::move(starts);
  for (const std::uint32_t h : hypers) {
    solution.hypercontexts.push_back(from_mask(h, model.universe));
  }
  return solution;
}

}  // namespace hyperrec
