// Solver for machines with private-global resources (§3, §4).
//
// Private-global units (the paper's I/O-unit example) are assigned to tasks
// by *global* hyperreconfigurations: within a global block the per-task
// quotas are fixed and must jointly fit into the pool of g units.  When a
// phase change shifts demand between tasks, a new global hyperreconfiguration
// (cost w, all tasks stall and must re-establish local hypercontexts) can
// re-assign the quotas.
//
// solve_private_global picks the global boundaries by an outer interval DP
// over candidate steps; each block is solved by the inner solver (default:
// coordinate descent on the sub-trace).  A block is feasible iff
// Σ_j max-demand_j(block) ≤ g.  Exact with respect to the chosen candidate
// set and inner solver.
#pragma once

#include "core/solver.hpp"

namespace hyperrec {

struct PrivateGlobalConfig {
  /// Candidate steps for global boundaries (0 is always included).  Empty
  /// means every step — O(n²) blocks, fine up to a few hundred steps.
  std::vector<std::size_t> candidates;
  /// Inner solver for each block; defaults to coordinate descent.  Each
  /// block is handed its own SolveInstance (the parent machine with its
  /// private-global pool intact but global_init = 0, the block's sub-trace)
  /// with freshly built precomputation.  Inner solutions must keep the block
  /// a single global block (global_boundaries == {0}); anything else throws.
  MTSolverFn inner;
  /// Passed to the inner solver for every block, so a deadline set here
  /// bounds the whole decomposition.  Default: never cancels.
  CancelToken cancel;
};

struct PrivateGlobalSolution {
  MTSolution solution;
  /// quotas[b][j] — private units assigned to task j in global block b.
  std::vector<std::vector<std::uint32_t>> quotas;
  /// Number of inner-solver calls the block scan actually made.  Feasibility
  /// is monotone, so the scan stops at the first infeasible block per row
  /// and skips rows the outer DP cannot reach — this counter pins that.
  std::size_t inner_invocations = 0;
};

[[nodiscard]] PrivateGlobalSolution solve_private_global(
    const MultiTaskTrace& trace, const MachineSpec& machine,
    const EvalOptions& options = {}, const PrivateGlobalConfig& config = {});

}  // namespace hyperrec
