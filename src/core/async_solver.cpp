#include "core/async_solver.hpp"

#include "core/interval_dp.hpp"

namespace hyperrec {

AsyncSolution solve_async(const MultiTaskTrace& trace,
                          const MachineSpec& machine,
                          const EvalOptions& options) {
  machine.validate_trace(trace);
  HYPERREC_ENSURE(machine.public_context_size == 0,
                  "public resources require a context- or fully-synchronised "
                  "machine (§3)");

  AsyncSolution solution;
  for (std::size_t j = 0; j < trace.task_count(); ++j) {
    const TaskTrace& task = trace.task(j);
    const Cost v = machine.tasks[j].local_init;
    const SingleTaskSolution per_task =
        options.changeover ? solve_single_task_switch_changeover(task, v)
                           : solve_single_task_switch(task, v);
    solution.schedule.tasks.push_back(per_task.partition);
  }
  if (machine.has_global_resources()) {
    solution.schedule.global_boundaries.push_back(0);
  }
  solution.breakdown =
      evaluate_async_switch(trace, machine, solution.schedule, options);
  return solution;
}

}  // namespace hyperrec
