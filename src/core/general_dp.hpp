// Optimal single-task solver for the *explicitly tabulated* general cost
// model (§2).  For every interval the cheapest satisfying hypercontext is
// found by scanning H, and an interval DP picks the partition:
//
//   D[j] = min_{i<j} D[i] + min_{h satisfies c_i..c_{j-1}}
//                               (init(h) + cost(h)·(j−i))
//
// O(n²·|H|) subset checks.  The paper's NP-completeness statement concerns
// implicitly specified hypercontext spaces (see implicit_general.hpp); with
// H given as an explicit table the problem is polynomial.
#pragma once

#include "model/cost_general.hpp"

namespace hyperrec {

struct GeneralSolution {
  GeneralSchedule schedule;
  Cost total = 0;
};

/// `sequence` holds context kind ids.  Throws if some interval has no
/// satisfying hypercontext (guaranteed not to happen when the model has a
/// universal hypercontext).
[[nodiscard]] GeneralSolution solve_general_dp(
    const GeneralCostModel& model, const std::vector<std::size_t>& sequence);

}  // namespace hyperrec
