// Hierarchical segment-parallel solver for huge instances (ROADMAP item 4).
//
// Exhaustive and the DPs cap out at toy sizes; 1e6-step traces need a
// divide-and-conquer tier that extends the paper's §4 interval DP exactly
// one level up.  solve_hierarchical
//
//   1. segments the trace into fixed-length windows and solves each window
//      independently through engine::solve_portfolio — in parallel on the
//      ThreadPool, optionally memoized through one shared SolveCache so
//      repeated segment shapes (periodic workloads, multi-tenant batches)
//      are solved once;
//   2. stitches the per-segment partitions back together — every segment
//      start is a boundary of every task, so the splice is always a valid
//      MultiTaskSchedule (the offline analogue of StreamingEngine's window
//      splice);
//   3. places global hyperreconfigurations with a boundary DP over the
//      segment edges, generalizing the outer DP in solve_private_global:
//      given the stitched local partitions, the block structure only
//      decides the w·#blocks term and per-block quota feasibility, so the
//      DP is exact at segment granularity;
//   4. optionally repairs the seams: a forced boundary at a segment edge is
//      dropped again for any task where merging the two adjacent intervals
//      is an exact-cost improvement (computed from the full instance's
//      stats tables — this is where segment-local myopia gets paid back).
//
// Every result carries a certified optimality gap (core/lower_bound.hpp).
//
// Preconditions: synchronized trace, and options.changeover == false — with
// changeover the cost of an interval depends on its predecessor across the
// seam, so segment costs would not be independent.
#pragma once

#include <cstddef>
#include <memory>

#include "cache/solve_cache.hpp"
#include "core/lower_bound.hpp"
#include "core/solver.hpp"
#include "engine/portfolio.hpp"
#include "support/cancel.hpp"
#include "support/thread_pool.hpp"

namespace hyperrec {

struct HierarchicalConfig {
  /// Segment length in steps.  Traces no longer than this are handed to
  /// the portfolio directly.
  std::size_t segment = 512;
  /// Per-segment portfolio; `parallel`/`pool` are ignored (segments, not
  /// members, are the parallel unit here).
  engine::PortfolioConfig portfolio;
  /// Optional shared memoization: segment solves go through
  /// get_or_compute_guarded keyed by the segment's instance fingerprint.
  std::shared_ptr<cache::SolveCache> cache;
  /// Pool for the segment fan-out (nullptr: the global pool).  When the
  /// caller already runs on a worker of that pool, segments are solved
  /// serially (same no-work-stealing rule as the portfolio racer).
  ThreadPool* pool = nullptr;
  bool parallel = true;
  /// Drop forced seam boundaries again where merging adjacent intervals is
  /// an exact-cost win (task-sequential reconfig upload only; under the
  /// per-step-max mode the deltas are not task-separable).
  bool seam_repair = true;
  /// Attach a lower bound + gap certificate to the result.
  bool certify = true;
  LowerBoundConfig bound;
  CancelToken cancel;
};

struct HierarchicalResult {
  MTSolution solution;
  std::size_t segments = 0;       ///< windows solved (1 = flat fallback)
  std::size_t global_blocks = 0;  ///< blocks the boundary DP settled on
  std::size_t seam_merges = 0;    ///< seam boundaries removed by repair
  std::size_t cache_hits = 0;     ///< segment solves served by the cache
};

/// Solves `instance` hierarchically.  The returned schedule is always
/// re-evaluated against the full instance (cost == evaluator cost by
/// construction) and, with `certify`, carries lower_bound / gap_pct.
[[nodiscard]] HierarchicalResult solve_hierarchical(
    const SolveInstance& instance, const HierarchicalConfig& config = {});

}  // namespace hyperrec
