// Genetic algorithm for the fully synchronised MT-Switch problem — the
// method the paper used for its multi-task experiment (§6:
// "(Hyper)reconfiguration costs with partial hyperreconfigurations for the
// multiple task case were computed using a genetic algorithm").
//
// The paper does not publish GA parameters, so this implementation uses a
// conventional generational GA and documents every choice:
//   * chromosome: one boundary bitmask per task (bit s ⇒ the task performs a
//     partial hyperreconfiguration before step s); bit 0 is forced,
//   * fitness: the exact §4.2 cost of the decoded schedule,
//   * tournament selection, per-task two-point crossover, per-bit mutation,
//   * elitism plus random immigrants for diversity,
//   * seeded population: aligned-DP solution, single-interval and
//     every-step schedules alongside random masks,
//   * fitness evaluation parallelised over the population (deterministic:
//     all randomness lives in the serial breeding phase).
#pragma once

#include <cstdint>

#include "core/solver.hpp"

namespace hyperrec {

struct GaConfig {
  std::size_t population = 96;
  std::size_t generations = 400;
  std::size_t tournament = 3;
  double crossover_rate = 0.9;
  /// Per-bit mutation probability; <= 0 selects 1.5/n adaptively.
  double mutation_rate = -1.0;
  std::size_t elites = 2;
  std::size_t immigrants = 2;
  std::uint64_t seed = 0x5EEDF00Dull;
  bool parallel_fitness = true;
  /// Extra seed individual injected into the initial population (e.g. a
  /// cached warm-start incumbent); 0 or 1 entries.
  std::vector<MultiTaskSchedule> seed_schedule;
  /// Stop early when the best cost has not improved for this many
  /// generations; 0 disables early stopping.
  std::size_t patience = 0;
  /// Checked between generations; when it fires the best incumbent found so
  /// far is returned (re-evaluated, never torn).  A token that is already
  /// expired at entry skips even the heuristic seeding and returns the
  /// single-interval schedule.  Default: never cancels.
  CancelToken cancel;
};

struct GaResult {
  MTSolution best;
  /// Best cost after each generation (for convergence plots).
  std::vector<Cost> history;
  std::size_t evaluations = 0;
};

[[nodiscard]] GaResult solve_genetic(const SolveInstance& instance,
                                     const GaConfig& config = {});

/// Boundary convenience: builds a one-off instance.
[[nodiscard]] GaResult solve_genetic(const MultiTaskTrace& trace,
                                     const MachineSpec& machine,
                                     const EvalOptions& options = {},
                                     const GaConfig& config = {});

}  // namespace hyperrec
