#include "core/theorem1.hpp"

#include <limits>
#include <unordered_map>

namespace hyperrec {

namespace {

constexpr Cost kInfinity = std::numeric_limits<Cost>::max() / 4;

Cost combine(UploadMode mode, Cost acc, Cost value) {
  return mode == UploadMode::kTaskParallel ? std::max(acc, value) : acc + value;
}

struct Interval {
  std::uint32_t end;   ///< inclusive last step of the committed interval
  std::uint32_t size;  ///< |U_j| + maxpriv over the interval
};

class Theorem1Solver {
 public:
  Theorem1Solver(const MultiTaskTrace& trace, const MachineSpec& machine,
                 const EvalOptions& options)
      : trace_(trace),
        machine_(machine),
        options_(options),
        n_(trace.steps()),
        m_(trace.task_count()) {
    // Precompute interval sizes: size_[j][s][e] = |U_j(s..e)| (inclusive).
    size_.resize(m_);
    for (std::size_t j = 0; j < m_; ++j) {
      size_[j].assign(n_, std::vector<std::uint32_t>(n_, 0));
      for (std::size_t s = 0; s < n_; ++s) {
        DynamicBitset running(trace_.task(j).local_universe());
        std::uint32_t count = 0;
        for (std::size_t e = s; e < n_; ++e) {
          count += static_cast<std::uint32_t>(
              running.merge_counting(trace_.task(j).at(e).local));
          size_[j][s][e] = count;
        }
      }
    }
  }

  MTSolution solve() {
    // Initial decision: every task enters an interval at step 0.
    std::vector<Interval> state(m_);
    Cost best = kInfinity;
    std::vector<std::uint32_t> best_ends;
    choose_initial(0, state, best, best_ends);
    HYPERREC_ASSERT(best < kInfinity);

    // Reconstruct the schedule by replaying the DP greedily.
    std::vector<std::vector<std::size_t>> starts(m_);
    std::vector<Interval> current(m_);
    {
      // Re-run the initial choice that achieved `best`.
      replay(best_ends, current, starts);
    }

    MultiTaskSchedule schedule;
    for (std::size_t j = 0; j < m_; ++j) {
      schedule.tasks.push_back(Partition::from_starts(std::move(starts[j]),
                                                      n_));
    }
    return make_solution(trace_, machine_, std::move(schedule), options_);
  }

 private:
  /// Enumerates initial ends for all tasks, tracking the best assignment.
  void choose_initial(std::size_t j, std::vector<Interval>& state, Cost& best,
                      std::vector<std::uint32_t>& best_ends) {
    if (j == m_) {
      Cost hyper = 0;
      for (std::size_t t = 0; t < m_; ++t) {
        hyper = combine(options_.hyper_upload, hyper,
                        machine_.tasks[t].local_init);
      }
      const Cost value = hyper + run(0, state);
      if (value < best) {
        best = value;
        best_ends.resize(m_);
        for (std::size_t t = 0; t < m_; ++t) best_ends[t] = state[t].end;
      }
      return;
    }
    for (std::uint32_t e = 0; e < n_; ++e) {
      state[j] = Interval{e, interval_size(j, 0, e)};
      choose_initial(j + 1, state, best, best_ends);
    }
  }

  std::uint32_t interval_size(std::size_t j, std::size_t s,
                              std::size_t e) const {
    std::uint32_t max_priv = 0;
    for (std::size_t i = s; i <= e; ++i) {
      max_priv = std::max(max_priv, trace_.task(j).at(i).private_demand);
    }
    return size_[j][s][e] + max_priv;
  }

  /// Cost of steps t..n-1 given committed intervals (hyper charges for
  /// intervals starting at t already paid by the caller).
  Cost run(std::size_t t, std::vector<Interval>& state) {
    const std::uint64_t key = encode(t, state);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      return it->second;
    }

    Cost step_cost = 0;
    for (std::size_t j = 0; j < m_; ++j) {
      step_cost = combine(options_.reconfig_upload, step_cost,
                          static_cast<Cost>(state[j].size));
    }

    Cost result;
    if (t + 1 == n_) {
      result = step_cost;
    } else {
      // Tasks whose interval ends at t must choose new intervals from t+1.
      std::vector<std::size_t> ending;
      for (std::size_t j = 0; j < m_; ++j) {
        if (state[j].end == t) ending.push_back(j);
      }
      Cost best = kInfinity;
      std::vector<Interval> next = state;
      choose_next(t, 0, ending, next, best);
      result = step_cost + best;
    }
    memo_.emplace(key, result);
    return result;
  }

  /// Enumerates new ends for every task in `ending`, then recurses.
  void choose_next(std::size_t t, std::size_t idx,
                   const std::vector<std::size_t>& ending,
                   std::vector<Interval>& state, Cost& best) {
    if (idx == ending.size()) {
      Cost hyper = 0;
      for (const std::size_t j : ending) {
        hyper = combine(options_.hyper_upload, hyper,
                        machine_.tasks[j].local_init);
      }
      const Cost value = hyper + run(t + 1, state);
      best = std::min(best, value);
      return;
    }
    const std::size_t j = ending[idx];
    const Interval saved = state[j];
    for (std::uint32_t e = static_cast<std::uint32_t>(t + 1); e < n_; ++e) {
      state[j] = Interval{e, interval_size(j, t + 1, e)};
      choose_next(t, idx + 1, ending, state, best);
    }
    state[j] = saved;
  }

  /// Replays the optimal decisions to extract boundary steps per task.
  void replay(const std::vector<std::uint32_t>& initial_ends,
              std::vector<Interval>& state,
              std::vector<std::vector<std::size_t>>& starts) {
    for (std::size_t j = 0; j < m_; ++j) {
      starts[j].push_back(0);
      state[j] = Interval{initial_ends[j], interval_size(j, 0,
                                                         initial_ends[j])};
    }
    for (std::size_t t = 0; t + 1 < n_; ++t) {
      std::vector<std::size_t> ending;
      for (std::size_t j = 0; j < m_; ++j) {
        if (state[j].end == t) ending.push_back(j);
      }
      if (ending.empty()) continue;
      // Pick the argmin assignment for the ending tasks.
      Cost best = kInfinity;
      std::vector<Interval> best_state;
      std::vector<Interval> next = state;
      choose_next_tracking(t, 0, ending, next, best, best_state);
      HYPERREC_ASSERT(best < kInfinity);
      state = best_state;
      for (const std::size_t j : ending) {
        starts[j].push_back(t + 1);
      }
    }
  }

  void choose_next_tracking(std::size_t t, std::size_t idx,
                            const std::vector<std::size_t>& ending,
                            std::vector<Interval>& state, Cost& best,
                            std::vector<Interval>& best_state) {
    if (idx == ending.size()) {
      Cost hyper = 0;
      for (const std::size_t j : ending) {
        hyper = combine(options_.hyper_upload, hyper,
                        machine_.tasks[j].local_init);
      }
      const Cost value = hyper + run(t + 1, state);
      if (value < best) {
        best = value;
        best_state = state;
      }
      return;
    }
    const std::size_t j = ending[idx];
    const Interval saved = state[j];
    for (std::uint32_t e = static_cast<std::uint32_t>(t + 1); e < n_; ++e) {
      state[j] = Interval{e, interval_size(j, t + 1, e)};
      choose_next_tracking(t, idx + 1, ending, state, best, best_state);
    }
    state[j] = saved;
  }

  std::uint64_t encode(std::size_t t, const std::vector<Interval>& state) const {
    // n ≤ 64 and sizes ≤ 127 are enforced by the entry guard, so the packed
    // key fits into 64 bits for m ≤ 3: 6 bits step + m × (6 + 12) bits.
    std::uint64_t key = t;
    for (const Interval& interval : state) {
      key = (key << 6) | interval.end;
      key = (key << 12) | interval.size;
    }
    return key;
  }

  const MultiTaskTrace& trace_;
  const MachineSpec& machine_;
  const EvalOptions options_;
  const std::size_t n_;
  const std::size_t m_;
  std::vector<std::vector<std::vector<std::uint32_t>>> size_;
  std::unordered_map<std::uint64_t, Cost> memo_;
};

}  // namespace

double theorem1_state_space(const MultiTaskTrace& trace,
                            const MachineSpec& machine) {
  const double n = static_cast<double>(trace.steps());
  double states = n;
  for (const TaskSpec& task : machine.tasks) {
    states *= n * static_cast<double>(task.local_switches + 1);
  }
  return states;
}

MTSolution solve_theorem1_dp(const MultiTaskTrace& trace,
                             const MachineSpec& machine,
                             const EvalOptions& options) {
  machine.validate_trace(trace);
  HYPERREC_ENSURE(trace.synchronized(), "Theorem-1 DP needs equal-length "
                                        "traces");
  HYPERREC_ENSURE(!options.changeover,
                  "Theorem-1 DP does not support changeover costs");
  HYPERREC_ENSURE(machine.private_global_units == 0 &&
                      machine.public_context_size == 0,
                  "Theorem-1 DP covers the local-resources-only case (the "
                  "paper's first bound)");
  HYPERREC_ENSURE(trace.task_count() >= 1 && trace.task_count() <= 3,
                  "Theorem-1 DP implemented for m <= 3 tasks");
  HYPERREC_ENSURE(trace.steps() >= 1 && trace.steps() <= 64,
                  "Theorem-1 DP state packing supports n <= 64");
  HYPERREC_ENSURE(theorem1_state_space(trace, machine) <= 5e7,
                  "instance exceeds the Theorem-1 DP state budget");

  Theorem1Solver solver(trace, machine, options);
  return solver.solve();
}

}  // namespace hyperrec
