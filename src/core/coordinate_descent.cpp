#include "core/coordinate_descent.hpp"

#include "core/aligned_dp.hpp"
#include "support/bitset_kernels.hpp"
#include "support/cost_math.hpp"

namespace hyperrec {

namespace {

constexpr Cost kInfinity = kCostInfinity;

Cost combine(UploadMode mode, Cost acc, Cost value) {
  return mode == UploadMode::kTaskParallel ? std::max(acc, value)
                                           : cost_add(acc, value);
}

/// Per-step aggregates of the frozen tasks (all tasks except `t`).
struct FrozenProfile {
  std::vector<Cost> hyper;     ///< combined hyper term of frozen boundaries
  std::vector<Cost> reconfig;  ///< combined reconfig term incl. |h^pub|
};

FrozenProfile freeze(const SolveInstance& instance,
                     const MultiTaskSchedule& schedule, std::size_t t) {
  const MachineSpec& machine = instance.machine();
  const EvalOptions& options = instance.options();
  const std::size_t n = instance.steps();
  const std::size_t m = instance.task_count();
  FrozenProfile profile;
  profile.hyper.assign(n, 0);
  profile.reconfig.assign(n, static_cast<Cost>(machine.public_context_size));

  for (std::size_t j = 0; j < m; ++j) {
    if (j == t) continue;
    const TaskTraceStats& stats = instance.task_stats(j);
    const Partition& partition = schedule.tasks[j];
    for (std::size_t k = 0; k < partition.interval_count(); ++k) {
      const auto [lo, hi] = partition.interval_bounds(k);
      // The no-allocation count fast path: the frozen profile only needs
      // |U| + priv, never the union bitset itself.
      const Cost size =
          static_cast<Cost>(stats.local_union_count(lo, hi)) +
          static_cast<Cost>(stats.max_private_demand(lo, hi));
      profile.hyper[lo] = combine(options.hyper_upload, profile.hyper[lo],
                                  machine.tasks[j].local_init);
      for (std::size_t l = lo; l < hi; ++l) {
        profile.reconfig[l] =
            combine(options.reconfig_upload, profile.reconfig[l], size);
      }
    }
  }
  return profile;
}

/// Exact DP for task t against a frozen profile; returns its new partition.
Partition optimize_task(const SolveInstance& instance,
                        const FrozenProfile& profile, std::size_t t) {
  const TaskTrace& task = instance.trace().task(t);
  const EvalOptions& options = instance.options();
  const std::size_t n = task.size();
  const Cost v = instance.machine().tasks[t].local_init;

  std::vector<Cost> best(n + 1, kInfinity);
  std::vector<std::size_t> parent(n + 1, 0);
  best[0] = 0;

  // For sequential reconfig upload each step of the interval contributes
  // exactly `size` to the delta against the frozen profile — unless
  // cost_add saturates, which can only happen when size pushes some
  // profile.reconfig[l] past the sentinel.  Hoisting the profile maximum
  // lets the DP take the O(1) closed form (size · steps) per candidate
  // interval and fall back to the exact per-step loop only for
  // near-sentinel costs; this turns the dominant O(n³) term into O(n²).
  const bool sequential =
      options.reconfig_upload == UploadMode::kTaskSequential;
  Cost max_reconfig = 0;
  for (const Cost r : profile.reconfig) {
    max_reconfig = std::max(max_reconfig, r);
  }

  // Single-word fast path mirrors interval_dp: hoist each step's local
  // requirement word and private demand into contiguous arrays so the
  // O(n²) pair loop touches no bitset storage.
  const bool single_word = task.local_universe() <= DynamicBitset::kWordBits;
  using Word = DynamicBitset::Word;
  std::vector<Word> locals;
  std::vector<std::uint32_t> demands;
  if (single_word) {
    locals.assign(n, 0);
    demands.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const ContextRequirement& req = task.at(i);
      if (!req.local.words().empty()) locals[i] = req.local.words().front();
      demands[i] = req.private_demand;
    }
  }

  // lint: hot-loop begin
  DynamicBitset running(task.local_universe());
  for (std::size_t end = 1; end <= n; ++end) {
    running.reset_all();
    Word running_word = 0;
    std::size_t union_size = 0;
    std::uint32_t max_priv = 0;
    for (std::size_t start = end; start-- > 0;) {
      if (single_word) {
        const Word local = locals[start];
        union_size += kernels::popcount_word(local & ~running_word);
        running_word |= local;
        max_priv = std::max(max_priv, demands[start]);
      } else {
        union_size += running.merge_counting(task.at(start).local);
        max_priv = std::max(max_priv, task.at(start).private_demand);
      }
      const Cost size =
          static_cast<Cost>(union_size) + static_cast<Cost>(max_priv);

      const Cost hyper_with =
          combine(options.hyper_upload, profile.hyper[start], v);
      Cost interval_cost = hyper_with - profile.hyper[start];
      if (sequential && size <= kInfinity - max_reconfig) {
        interval_cost = cost_add(
            interval_cost, cost_mul(size, static_cast<Cost>(end - start)));
      } else {
        for (std::size_t l = start; l < end; ++l) {
          interval_cost = cost_add(
              interval_cost,
              combine(options.reconfig_upload, profile.reconfig[l], size) -
                  profile.reconfig[l]);
        }
      }
      const Cost candidate = cost_add(best[start], interval_cost);
      if (candidate < best[end]) {
        best[end] = candidate;
        parent[end] = start;
      }
    }
  }
  // lint: hot-loop end

  std::vector<std::size_t> starts;
  for (std::size_t cursor = n; cursor != 0; cursor = parent[cursor]) {
    starts.push_back(parent[cursor]);
  }
  std::reverse(starts.begin(), starts.end());
  return Partition::from_starts(starts, n);
}

}  // namespace

MTSolution solve_coordinate_descent(const MultiTaskTrace& trace,
                                    const MachineSpec& machine,
                                    const EvalOptions& options,
                                    const CoordinateDescentConfig& config) {
  return solve_coordinate_descent(SolveInstance(trace, machine, options),
                                  config);
}

MTSolution solve_coordinate_descent(const SolveInstance& instance,
                                    const CoordinateDescentConfig& config) {
  const MultiTaskTrace& trace = instance.trace();
  const MachineSpec& machine = instance.machine();
  const EvalOptions& options = instance.options();
  HYPERREC_ENSURE(trace.synchronized(),
                  "coordinate descent needs equal-length traces");
  HYPERREC_ENSURE(!options.changeover,
                  "coordinate descent does not support changeover costs");
  HYPERREC_ENSURE(config.seed.size() <= 1, "at most one seed schedule");

  MultiTaskSchedule schedule = [&]() {
    if (!config.seed.empty()) return config.seed.front();
    if (config.cancel.cancelled()) {
      // Expired before any work: skip the aligned-DP seeding (it could blow
      // the deadline) and start from the single-interval schedule.
      MultiTaskSchedule single =
          MultiTaskSchedule::all_single(trace.task_count(), trace.steps());
      if (machine.has_global_resources()) single.global_boundaries.push_back(0);
      return single;
    }
    return solve_aligned_dp(instance).schedule;
  }();
  Cost current = evaluate_fully_sync_switch(instance, schedule).total;

  const std::size_t m = trace.task_count();
  // lint: hot-loop begin
  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    bool improved = false;
    for (std::size_t t = 0; t < m; ++t) {
      if (config.cancel.cancelled()) {
        return make_solution(instance, std::move(schedule));
      }
      const FrozenProfile profile = freeze(instance, schedule, t);
      Partition candidate = optimize_task(instance, profile, t);
      MultiTaskSchedule trial = schedule;
      trial.tasks[t] = std::move(candidate);
      const Cost trial_cost = evaluate_fully_sync_switch(instance, trial).total;
      if (trial_cost < current) {
        schedule = std::move(trial);
        current = trial_cost;
        improved = true;
      }
    }
    if (!improved) break;
  }
  // lint: hot-loop end
  return make_solution(instance, std::move(schedule));
}

}  // namespace hyperrec
