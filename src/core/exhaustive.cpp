#include "core/exhaustive.hpp"

#include <cmath>
#include <limits>

namespace hyperrec {

double exhaustive_search_space(std::size_t m, std::size_t n) {
  return std::pow(2.0, static_cast<double>(m * (n - 1)));
}

MTSolution solve_exhaustive(const MultiTaskTrace& trace,
                            const MachineSpec& machine,
                            const EvalOptions& options) {
  return solve_exhaustive(SolveInstance(trace, machine, options));
}

MTSolution solve_exhaustive(const SolveInstance& instance) {
  const MultiTaskTrace& trace = instance.trace();
  const MachineSpec& machine = instance.machine();
  HYPERREC_ENSURE(trace.synchronized(),
                  "exhaustive search needs equal-length traces");
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  HYPERREC_ENSURE(n > 0 && m > 0, "empty problem");
  const std::size_t free_bits = m * (n - 1);
  HYPERREC_ENSURE(free_bits <= 24,
                  "exhaustive search limited to m(n-1) <= 24 free boundary "
                  "bits");

  Cost best_cost = std::numeric_limits<Cost>::max();
  std::uint64_t best_code = 0;

  // One schedule and one boundary mask, rebuilt in place per code: at
  // 2^{m(n-1)} evaluations the enumeration loop cannot afford per-code
  // allocations (the mask is inline storage for n <= 64, and
  // assign_boundary_mask reuses each partition's starts vector).
  MultiTaskSchedule schedule;
  schedule.tasks.assign(m, Partition::single(n));
  if (machine.has_global_resources()) {
    schedule.global_boundaries.push_back(0);
  }
  DynamicBitset mask(n);
  auto decode_into = [&](std::uint64_t code) {
    for (std::size_t j = 0; j < m; ++j) {
      mask.reset_all();
      mask.set(0);
      for (std::size_t s = 1; s < n; ++s) {
        if ((code >> (j * (n - 1) + (s - 1))) & 1u) mask.set(s);
      }
      schedule.tasks[j].assign_boundary_mask(mask);
    }
  };

  const std::uint64_t limit = std::uint64_t{1} << free_bits;
  for (std::uint64_t code = 0; code < limit; ++code) {
    decode_into(code);
    const Cost total = evaluate_fully_sync_switch(instance, schedule).total;
    if (total < best_cost) {
      best_cost = total;
      best_code = code;
    }
  }
  decode_into(best_code);
  return make_solution(instance, schedule);
}

}  // namespace hyperrec
