#include "core/exhaustive.hpp"

#include <cmath>
#include <limits>

namespace hyperrec {

double exhaustive_search_space(std::size_t m, std::size_t n) {
  return std::pow(2.0, static_cast<double>(m * (n - 1)));
}

MTSolution solve_exhaustive(const MultiTaskTrace& trace,
                            const MachineSpec& machine,
                            const EvalOptions& options) {
  return solve_exhaustive(SolveInstance(trace, machine, options));
}

MTSolution solve_exhaustive(const SolveInstance& instance) {
  const MultiTaskTrace& trace = instance.trace();
  const MachineSpec& machine = instance.machine();
  HYPERREC_ENSURE(trace.synchronized(),
                  "exhaustive search needs equal-length traces");
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  HYPERREC_ENSURE(n > 0 && m > 0, "empty problem");
  const std::size_t free_bits = m * (n - 1);
  HYPERREC_ENSURE(free_bits <= 24,
                  "exhaustive search limited to m(n-1) <= 24 free boundary "
                  "bits");

  Cost best_cost = std::numeric_limits<Cost>::max();
  std::uint64_t best_code = 0;

  auto decode = [&](std::uint64_t code) {
    MultiTaskSchedule schedule;
    schedule.tasks.reserve(m);
    for (std::size_t j = 0; j < m; ++j) {
      DynamicBitset mask(n);
      mask.set(0);
      for (std::size_t s = 1; s < n; ++s) {
        if ((code >> (j * (n - 1) + (s - 1))) & 1u) mask.set(s);
      }
      schedule.tasks.push_back(Partition::from_boundary_mask(mask));
    }
    if (machine.has_global_resources()) {
      schedule.global_boundaries.push_back(0);
    }
    return schedule;
  };

  const std::uint64_t limit = std::uint64_t{1} << free_bits;
  for (std::uint64_t code = 0; code < limit; ++code) {
    const MultiTaskSchedule schedule = decode(code);
    const Cost total = evaluate_fully_sync_switch(instance, schedule).total;
    if (total < best_cost) {
      best_cost = total;
      best_code = code;
    }
  }
  return make_solution(instance, decode(best_code));
}

}  // namespace hyperrec
