#include "core/interval_dp.hpp"

#include "model/trace_stats.hpp"
#include "support/bitset_kernels.hpp"
#include "support/cost_math.hpp"

namespace hyperrec {

namespace {

constexpr Cost kInfinity = kCostInfinity;

SingleTaskSolution reconstruct(const TaskTraceStats& stats,
                               const std::vector<std::size_t>& parent,
                               Cost total) {
  const std::size_t n = stats.steps();
  std::vector<std::size_t> starts;
  for (std::size_t cursor = n; cursor != 0; cursor = parent[cursor]) {
    starts.push_back(parent[cursor]);
  }
  std::reverse(starts.begin(), starts.end());

  SingleTaskSolution solution{Partition::from_starts(starts, n), total, {}};
  for (std::size_t k = 0; k < solution.partition.interval_count(); ++k) {
    const auto [lo, hi] = solution.partition.interval_bounds(k);
    solution.hypercontexts.push_back(stats.local_union(lo, hi));
  }
  return solution;
}

}  // namespace

SingleTaskSolution solve_single_task_switch(const TaskTrace& trace,
                                            Cost hyper_init) {
  return solve_single_task_switch(TaskTraceStats(trace), hyper_init);
}

SingleTaskSolution solve_single_task_switch(const TaskTraceStats& stats,
                                            Cost hyper_init) {
  const TaskTrace& trace = stats.trace();
  const std::size_t n = trace.size();
  HYPERREC_ENSURE(n > 0, "empty trace");

  std::vector<Cost> best(n + 1, kInfinity);
  std::vector<std::size_t> parent(n + 1, 0);
  best[0] = 0;

  if (trace.local_universe() <= DynamicBitset::kWordBits) {
    // Small-universe fast path: every local requirement is one word, so the
    // O(n²) inner loop runs on hoisted raw words — no bounds checks, no
    // storage indirection, and the union merge is two ALU ops plus a
    // popcount.  Most workload families live here (universe 6..64).
    using Word = DynamicBitset::Word;
    std::vector<Word> locals(n, 0);
    std::vector<std::uint32_t> demands(n);
    for (std::size_t i = 0; i < n; ++i) {
      const ContextRequirement& req = trace.at(i);
      if (!req.local.words().empty()) locals[i] = req.local.words().front();
      demands[i] = req.private_demand;
    }
    for (std::size_t end = 1; end <= n; ++end) {
      Word running = 0;
      std::size_t union_size = 0;
      std::uint32_t max_priv = 0;
      // Extend the candidate interval [start, end) leftwards.
      for (std::size_t start = end; start-- > 0;) {
        const Word local = locals[start];
        union_size += kernels::popcount_word(local & ~running);
        running |= local;
        max_priv = std::max(max_priv, demands[start]);
        const Cost per_step =
            static_cast<Cost>(union_size) + static_cast<Cost>(max_priv);
        // Saturating arithmetic: adversarial hyper_init/private_demand must
        // clamp at the sentinel instead of wrapping Cost (UB).
        const Cost candidate =
            cost_add(cost_add(best[start], hyper_init),
                     cost_mul(per_step, static_cast<Cost>(end - start)));
        if (candidate < best[end]) {
          best[end] = candidate;
          parent[end] = start;
        }
      }
    }
    return reconstruct(stats, parent, best[n]);
  }

  // General path: the DP's inner loop keeps its incrementally merged
  // running union (amortised O(words) per extension beats a table query
  // per pair); the stats back the reconstruction-time union queries.
  DynamicBitset running(trace.local_universe());
  for (std::size_t end = 1; end <= n; ++end) {
    running.reset_all();
    std::size_t union_size = 0;
    std::uint32_t max_priv = 0;
    // Extend the candidate interval [start, end) leftwards.
    for (std::size_t start = end; start-- > 0;) {
      union_size += running.merge_counting(trace.at(start).local);
      max_priv = std::max(max_priv, trace.at(start).private_demand);
      const Cost per_step =
          static_cast<Cost>(union_size) + static_cast<Cost>(max_priv);
      // Saturating arithmetic (see the fast path above).
      const Cost candidate =
          cost_add(cost_add(best[start], hyper_init),
                   cost_mul(per_step, static_cast<Cost>(end - start)));
      if (candidate < best[end]) {
        best[end] = candidate;
        parent[end] = start;
      }
    }
  }
  return reconstruct(stats, parent, best[n]);
}

SingleTaskSolution solve_single_task_switch_changeover(const TaskTrace& trace,
                                                       Cost hyper_init) {
  const std::size_t n = trace.size();
  HYPERREC_ENSURE(n > 0, "empty trace");
  HYPERREC_ENSURE(n <= 2048,
                  "changeover DP stores O(n²) unions; trace too long");

  // unions[i*(n+1)+j] = U(i, j) for i < j.
  std::vector<DynamicBitset> unions(
      (n + 1) * (n + 1), DynamicBitset(trace.local_universe()));
  std::vector<std::uint32_t> privs((n + 1) * (n + 1), 0);
  for (std::size_t i = 0; i < n; ++i) {
    DynamicBitset running(trace.local_universe());
    std::uint32_t max_priv = 0;
    for (std::size_t j = i + 1; j <= n; ++j) {
      running |= trace.at(j - 1).local;
      max_priv = std::max(max_priv, trace.at(j - 1).private_demand);
      unions[i * (n + 1) + j] = running;
      privs[i * (n + 1) + j] = max_priv;
    }
  }
  auto interval_base = [&](std::size_t i, std::size_t j) {
    const Cost per_step = static_cast<Cost>(unions[i * (n + 1) + j].count()) +
                          static_cast<Cost>(privs[i * (n + 1) + j]);
    return cost_add(hyper_init, cost_mul(per_step, static_cast<Cost>(j - i)));
  };

  // state[i][j]: min cost of steps [0, j) whose last interval is [i, j).
  std::vector<Cost> state(n * (n + 1), kInfinity);
  std::vector<std::size_t> parent(n * (n + 1), 0);
  auto at = [n](std::size_t i, std::size_t j) { return i * (n + 1) + j; };

  for (std::size_t j = 1; j <= n; ++j) {
    state[at(0, j)] = cost_add(interval_base(0, j),
                               static_cast<Cost>(unions[at(0, j)].count()));
  }
  for (std::size_t j = 1; j < n; ++j) {      // previous interval end
    for (std::size_t i = 0; i < j; ++i) {    // previous interval start
      if (state[at(i, j)] >= kInfinity) continue;
      for (std::size_t k = j + 1; k <= n; ++k) {  // new interval end
        const Cost delta = static_cast<Cost>(
            unions[at(j, k)].symmetric_difference_count(unions[at(i, j)]));
        const Cost candidate =
            cost_add(state[at(i, j)], cost_add(interval_base(j, k), delta));
        if (candidate < state[at(j, k)]) {
          state[at(j, k)] = candidate;
          parent[at(j, k)] = i;
        }
      }
    }
  }

  Cost total = kInfinity;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (state[at(i, n)] < total) {
      total = state[at(i, n)];
      best_i = i;
    }
  }

  std::vector<std::size_t> starts;
  std::size_t i = best_i;
  std::size_t j = n;
  for (;;) {
    starts.push_back(i);
    if (i == 0) break;
    const std::size_t prev_i = parent[at(i, j)];
    j = i;
    i = prev_i;
  }
  std::reverse(starts.begin(), starts.end());

  SingleTaskSolution solution{Partition::from_starts(starts, n), total, {}};
  for (std::size_t k = 0; k < solution.partition.interval_count(); ++k) {
    const auto [lo, hi] = solution.partition.interval_bounds(k);
    // The DP already materialised every interval union; reuse its table.
    solution.hypercontexts.push_back(unions[lo * (n + 1) + hi]);
  }
  return solution;
}

}  // namespace hyperrec
