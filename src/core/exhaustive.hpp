// Exact exhaustive solver for the fully synchronised MT-Switch problem with
// per-task (partial) hyperreconfigurations.
//
// Enumerates every combination of per-task boundary masks — 2^{m(n−1)}
// schedules — and keeps the cheapest.  This is the ground truth the property
// tests measure every heuristic against, and the exponential wall that
// motivates Theorem 1's polynomial DP.  Instances are capped at
// m(n−1) ≤ 24 by precondition.
#pragma once

#include "core/solver.hpp"

namespace hyperrec {

[[nodiscard]] MTSolution solve_exhaustive(const SolveInstance& instance);

/// Boundary convenience: builds a one-off instance.
[[nodiscard]] MTSolution solve_exhaustive(const MultiTaskTrace& trace,
                                          const MachineSpec& machine,
                                          const EvalOptions& options = {});

/// Number of schedules solve_exhaustive would enumerate; lets callers guard.
[[nodiscard]] double exhaustive_search_space(std::size_t m, std::size_t n);

}  // namespace hyperrec
