// Optimal single-task solvers for the Switch cost model.
//
// solve_single_task_switch computes the optimal partition of a context-
// requirement sequence into hypercontext intervals (the single-task problem
// referenced in §6: "for the single task case optimal (hyper)reconfiguration
// costs were computed, cmp. [9]").  An interval [i, j) is served by its
// minimal hypercontext — the union U(i,j) of its requirements — and costs
//     v + (|U(i,j)| + maxpriv(i,j)) · (j − i),
// where v is the hyperreconfiguration cost.  Dynamic programming over prefix
// lengths with an incrementally maintained union gives O(n²) set operations.
//
// solve_single_task_switch_changeover additionally charges the symmetric
// difference |h_k Δ h_{k−1}| at every hyperreconfiguration (§4.1's
// changeover model).  It is exact within the minimal-hypercontext policy
// (hypercontext = union of its interval); allowing arbitrary supersets makes
// the problem a search over 2^X — the implicitly-specified regime in which
// the general problem is NP-complete.  O(n³).
#pragma once

#include "model/cost_switch.hpp"
#include "model/machine.hpp"
#include "model/schedule.hpp"
#include "model/trace.hpp"
#include "model/trace_stats.hpp"
#include "model/types.hpp"

namespace hyperrec {

struct SingleTaskSolution {
  Partition partition;
  Cost total = 0;
  /// Minimal hypercontext (local part) per interval.
  std::vector<DynamicBitset> hypercontexts;
};

/// Optimal partition under interval cost v + (|U| + maxpriv)·len.  The
/// stats overload is the hot-path entry point: callers that solve the same
/// trace repeatedly (benches, the async solver, portfolio members) build
/// the TaskTraceStats once at the boundary and the solver queries its
/// precomputed views for reconstruction.
[[nodiscard]] SingleTaskSolution solve_single_task_switch(
    const TaskTraceStats& stats, Cost hyper_init);

/// Boundary convenience: builds a one-off stats view.
[[nodiscard]] SingleTaskSolution solve_single_task_switch(
    const TaskTrace& trace, Cost hyper_init);

/// Optimal partition under the changeover variant (see header comment).
[[nodiscard]] SingleTaskSolution solve_single_task_switch_changeover(
    const TaskTrace& trace, Cost hyper_init);

}  // namespace hyperrec
