// Simulated annealing for the MT-Switch problem.
//
// A metaheuristic companion to the paper's genetic algorithm: the state is a
// full multi-task schedule (one boundary mask per task), moves flip or slide
// a single boundary, and the temperature follows a geometric schedule.
// Useful both as an ablation point (bench_ga_ablation) and as the only
// local-search solver that supports changeover costs (its evaluation is the
// exact evaluator, which handles them).
#pragma once

#include <cstdint>

#include "core/solver.hpp"

namespace hyperrec {

struct SaConfig {
  std::size_t iterations = 20000;
  double initial_temperature = -1.0;  ///< <=0: derived from machine size
  double cooling = 0.9995;            ///< geometric factor per iteration
  std::uint64_t seed = 0xC0FFEEull;
  /// Initial schedule; if empty, starts from the single-interval schedule.
  std::vector<MultiTaskSchedule> seed_schedule;  // 0 or 1 entries
  /// Checked between iterations; when it fires the best incumbent found so
  /// far is returned (re-evaluated, never torn).  Default: never cancels.
  CancelToken cancel;
};

[[nodiscard]] MTSolution solve_annealing(const SolveInstance& instance,
                                         const SaConfig& config = {});

/// Boundary convenience: builds a one-off instance.
[[nodiscard]] MTSolution solve_annealing(const MultiTaskTrace& trace,
                                         const MachineSpec& machine,
                                         const EvalOptions& options = {},
                                         const SaConfig& config = {});

}  // namespace hyperrec
