#include "core/genetic.hpp"

#include <algorithm>
#include <limits>

#include "core/aligned_dp.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace hyperrec {

namespace {

using Chromosome = std::vector<DynamicBitset>;  // one boundary mask per task

MultiTaskSchedule decode(const Chromosome& genes, bool global_resources) {
  MultiTaskSchedule schedule;
  schedule.tasks.reserve(genes.size());
  for (const DynamicBitset& mask : genes) {
    schedule.tasks.push_back(Partition::from_boundary_mask(mask));
  }
  if (global_resources) schedule.global_boundaries.push_back(0);
  return schedule;
}

Chromosome random_chromosome(std::size_t m, std::size_t n, double density,
                             Xoshiro256& rng) {
  Chromosome genes;
  genes.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    DynamicBitset mask(n);
    mask.set(0);
    for (std::size_t s = 1; s < n; ++s) {
      if (rng.flip(density)) mask.set(s);
    }
    genes.push_back(std::move(mask));
  }
  return genes;
}

Chromosome from_schedule(const MultiTaskSchedule& schedule) {
  Chromosome genes;
  genes.reserve(schedule.tasks.size());
  for (const Partition& partition : schedule.tasks) {
    genes.push_back(partition.to_boundary_mask());
  }
  return genes;
}

/// Two-point crossover applied per task mask; step 0 stays set.
void crossover(Chromosome& a, Chromosome& b, Xoshiro256& rng) {
  const std::size_t n = a.front().size();
  for (std::size_t j = 0; j < a.size(); ++j) {
    std::size_t lo = 1 + rng.uniform(n - 1);
    std::size_t hi = 1 + rng.uniform(n - 1);
    if (lo > hi) std::swap(lo, hi);
    for (std::size_t s = lo; s <= hi; ++s) {
      const bool bit_a = a[j].test(s);
      const bool bit_b = b[j].test(s);
      if (bit_a != bit_b) {
        if (bit_b) {
          a[j].set(s);
          b[j].reset(s);
        } else {
          a[j].reset(s);
          b[j].set(s);
        }
      }
    }
  }
}

void mutate(Chromosome& genes, double rate, Xoshiro256& rng) {
  for (DynamicBitset& mask : genes) {
    for (std::size_t s = 1; s < mask.size(); ++s) {
      if (rng.flip(rate)) {
        if (mask.test(s)) {
          mask.reset(s);
        } else {
          mask.set(s);
        }
      }
    }
  }
}

}  // namespace

GaResult solve_genetic(const MultiTaskTrace& trace, const MachineSpec& machine,
                       const EvalOptions& options, const GaConfig& config) {
  return solve_genetic(SolveInstance(trace, machine, options), config);
}

GaResult solve_genetic(const SolveInstance& instance, const GaConfig& config) {
  const MultiTaskTrace& trace = instance.trace();
  const MachineSpec& machine = instance.machine();
  const EvalOptions& options = instance.options();
  HYPERREC_ENSURE(trace.synchronized(), "GA needs equal-length traces");
  HYPERREC_ENSURE(config.population >= 4, "population too small");
  HYPERREC_ENSURE(config.tournament >= 1, "tournament size must be >= 1");
  HYPERREC_ENSURE(config.seed_schedule.size() <= 1, "at most one seed");
  const std::size_t n = trace.steps();
  const std::size_t m = trace.task_count();
  const bool global_resources = machine.has_global_resources();
  const double mutation_rate = config.mutation_rate > 0
                                   ? config.mutation_rate
                                   : 1.5 / static_cast<double>(n);

  Xoshiro256 rng(config.seed);

  if (config.cancel.cancelled()) {
    // Expired before any work: return the warm-start seed when given (one
    // evaluation, same price as the fallback), else the single-interval
    // schedule (aligned-DP seeding could blow the deadline).
    GaResult result;
    const MultiTaskSchedule incumbent =
        config.seed_schedule.empty() ? MultiTaskSchedule::all_single(m, n)
                                     : config.seed_schedule.front();
    result.best = make_solution(
        instance, decode(from_schedule(incumbent), global_resources));
    return result;
  }

  // --- initial population: heuristic seeds + random densities -------------
  std::vector<Chromosome> population;
  population.reserve(config.population);
  if (!config.seed_schedule.empty()) {
    population.push_back(from_schedule(config.seed_schedule.front()));
  }
  if (!options.changeover) {
    population.push_back(from_schedule(solve_aligned_dp(instance).schedule));
  }
  population.push_back(from_schedule(MultiTaskSchedule::all_single(m, n)));
  population.push_back(from_schedule(MultiTaskSchedule::all_every_step(m, n)));
  while (population.size() < config.population) {
    const double density = 0.02 + 0.38 * rng.uniform01();
    population.push_back(random_chromosome(m, n, density, rng));
  }

  auto fitness_of = [&](const Chromosome& genes) {
    return evaluate_fully_sync_switch(instance, decode(genes, global_resources))
        .total;
  };

  std::vector<Cost> fitness(population.size());
  std::size_t evaluations = 0;
  auto evaluate_population = [&]() {
    if (config.parallel_fitness) {
      parallel_for(0, population.size(),
                   [&](std::size_t i) { fitness[i] = fitness_of(population[i]); });
    } else {
      for (std::size_t i = 0; i < population.size(); ++i) {
        fitness[i] = fitness_of(population[i]);
      }
    }
    evaluations += population.size();
  };
  evaluate_population();

  auto best_index = [&]() {
    return static_cast<std::size_t>(
        std::min_element(fitness.begin(), fitness.end()) - fitness.begin());
  };

  auto tournament_pick = [&]() {
    std::size_t winner = rng.uniform(population.size());
    for (std::size_t k = 1; k < config.tournament; ++k) {
      const std::size_t rival = rng.uniform(population.size());
      if (fitness[rival] < fitness[winner]) winner = rival;
    }
    return winner;
  };

  GaResult result;
  result.history.reserve(config.generations);
  Chromosome best_genes = population[best_index()];
  Cost best_cost = fitness[best_index()];
  std::size_t stale = 0;

  // Hoisted out of the generation loop: the population size is fixed, so
  // clearing and refilling reuses both buffers' capacity every generation.
  std::vector<Chromosome> next;
  next.reserve(population.size());
  std::vector<std::size_t> order(population.size());

  // lint: hot-loop begin
  for (std::size_t gen = 0; gen < config.generations; ++gen) {
    if (config.cancel.cancelled()) break;
    // --- breed the next generation (serial, deterministic) ----------------
    next.clear();
    next.reserve(population.size());

    order.resize(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return fitness[a] < fitness[b];
    });
    for (std::size_t e = 0; e < config.elites && e < order.size(); ++e) {
      next.push_back(population[order[e]]);
    }
    for (std::size_t im = 0; im < config.immigrants; ++im) {
      const double density = 0.02 + 0.38 * rng.uniform01();
      next.push_back(random_chromosome(m, n, density, rng));
    }
    while (next.size() < population.size()) {
      Chromosome child_a = population[tournament_pick()];
      Chromosome child_b = population[tournament_pick()];
      if (rng.flip(config.crossover_rate)) crossover(child_a, child_b, rng);
      mutate(child_a, mutation_rate, rng);
      mutate(child_b, mutation_rate, rng);
      next.push_back(std::move(child_a));
      if (next.size() < population.size()) next.push_back(std::move(child_b));
    }

    population = std::move(next);
    evaluate_population();

    const std::size_t champion = best_index();
    if (fitness[champion] < best_cost) {
      best_cost = fitness[champion];
      best_genes = population[champion];
      stale = 0;
    } else {
      ++stale;
    }
    result.history.push_back(best_cost);
    if (config.patience > 0 && stale >= config.patience) break;
  }
  // lint: hot-loop end

  result.best =
      make_solution(instance, decode(best_genes, global_resources));
  result.evaluations = evaluations;
  return result;
}

}  // namespace hyperrec
